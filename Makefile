# Build, test and benchmark entry points. CI (.github/workflows/ci.yml)
# runs the same commands; keep the two in sync.

GO ?= go

.PHONY: all build examples vet lint fmt-check test race bench bench-smoke bench-compare determinism-smoke campaign-smoke ci clean

all: build

build:
	$(GO) build ./...

# Explicit examples build: go build ./... covers these too, but keeping a
# named target (and CI step) means a config-knob change that breaks an
# example fails loudly as "examples", not somewhere in the package walk.
examples:
	$(GO) build ./examples/...

vet:
	$(GO) vet ./...

# Contracts as lint: build the repository's multichecker (cmd/reprolint)
# and run the four engine-contract analyzers — sessionview, hotalloc,
# determinism, ctxpoll — over every package through the go vet driver,
# so //repro: annotations propagate across package boundaries as facts.
lint:
	$(GO) build -o bin/reprolint ./cmd/reprolint
	$(GO) vet -vettool=bin/reprolint ./...

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full measured run; writes BENCH_<sha>.json + .txt via scripts/bench.sh.
# Override BENCHTIME (e.g. BENCHTIME=2s) for stabler numbers.
bench:
	sh scripts/bench.sh

# One iteration of everything: the CI perf-path smoke job.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# Diff the newest local BENCH_*.json against the committed baseline and
# flag >10% regressions (scripts/benchcmp). Reporting only by default —
# smoke numbers are noisy, the report is the artifact; pass
# BENCHCMP_FLAGS=-strict to gate (exit nonzero on any regression).
bench-compare:
	@base="$$(git ls-files 'BENCH_*.json' | while read -r f; do \
		echo "$$(git log -1 --format=%ct -- "$$f") $$f"; done | sort -n | tail -1 | cut -d' ' -f2-)"; \
	new="$$(ls -t BENCH_*.json 2>/dev/null | head -1)"; \
	if [ -z "$$base" ] || [ -z "$$new" ] || [ "$$base" = "$$new" ]; then \
		echo "bench-compare: need a committed baseline and a fresh BENCH_*.json (run make bench)"; exit 1; fi; \
	echo "comparing $$base -> $$new"; \
	$(GO) run ./scripts/benchcmp $(BENCHCMP_FLAGS) "$$base" "$$new"

# Cross-process determinism: N fresh-process seq top-off runs per worker
# setting, byte-compared (scripts/detsmoke.sh). Each run gets its own map
# seed, which is the point — this catches iteration-order leaks that
# same-process replays cannot. Override: make determinism-smoke RUNS=20.
determinism-smoke:
	sh scripts/detsmoke.sh $(RUNS)

# Campaign service end to end: start a race-instrumented cmd/reprod,
# submit the same job set twice via the mutsample campaign client, and
# assert the second pass is served from the content cache with
# byte-identical reports (scripts/campaignsmoke.sh).
campaign-smoke:
	sh scripts/campaignsmoke.sh

ci: build examples vet lint fmt-check race bench-smoke campaign-smoke

clean:
	rm -f BENCH_*.json BENCH_*.txt BENCH_*.mem.pprof
	rm -rf bin
