# Build, test and benchmark entry points. CI (.github/workflows/ci.yml)
# runs the same commands; keep the two in sync.

GO ?= go

.PHONY: all build vet fmt-check test race bench bench-smoke ci clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full measured run; writes BENCH_<sha>.json + .txt via scripts/bench.sh.
# Override BENCHTIME (e.g. BENCHTIME=2s) for stabler numbers.
bench:
	sh scripts/bench.sh

# One iteration of everything: the CI perf-path smoke job.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

ci: build vet fmt-check race bench-smoke

clean:
	rm -f BENCH_*.json BENCH_*.txt
