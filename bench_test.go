// Benchmark harness: one benchmark per table of the paper's evaluation
// plus the motivation experiment and the engine/discipline ablations.
// Each table benchmark prints the regenerated rows once, so
//
//	go test -bench=. -benchmem
//
// reproduces the paper's numbers alongside the timing profile (README.md
// documents the entry points; scripts/bench.sh records a machine-readable
// summary). The assertions here only guard that the experiments complete
// and stay self-consistent.
package repro

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"repro/internal/atpg"
	"repro/internal/circuits"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/faultsim"
	"repro/internal/hdl"
	"repro/internal/lane"
	"repro/internal/mutation"
	"repro/internal/mutscore"
	"repro/internal/netlist"
	"repro/internal/sampling"
	"repro/internal/sim"
	"repro/internal/synth"
	"repro/internal/tpg"
)

var printOnce sync.Map

// printRows emits a table exactly once per key across all benchmark
// iterations and repetitions.
func printRows(key, text string) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		fmt.Print(text)
	}
}

func benchConfig() core.Config {
	return core.Config{Seed: 1, SampleFrac: 0.10, RandHorizon: 2048, EquivBudget: 1024, Repeats: 5}
}

// --- E1: Table 1 — operator fault coverage efficiency ------------------------

func benchmarkTable1(b *testing.B, name string) {
	for i := 0; i < b.N; i++ {
		flow, err := core.NewFlow(circuits.MustLoad(name), benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		profiles, err := flow.ProfileOperators()
		if err != nil {
			b.Fatal(err)
		}
		if len(profiles) == 0 {
			b.Fatal("no operator profiles")
		}
		printRows("table1/"+name,
			core.FormatTable1([]core.Table1Row{{Circuit: name, Profiles: profiles}}))
	}
}

func BenchmarkTable1B01(b *testing.B)  { benchmarkTable1(b, "b01") }
func BenchmarkTable1B03(b *testing.B)  { benchmarkTable1(b, "b03") }
func BenchmarkTable1C432(b *testing.B) { benchmarkTable1(b, "c432") }
func BenchmarkTable1C499(b *testing.B) { benchmarkTable1(b, "c499") }

// --- E2: Table 2 — test-oriented vs random sampling --------------------------

func benchmarkTable2(b *testing.B, name string) {
	for i := 0; i < b.N; i++ {
		flow, err := core.NewFlow(circuits.MustLoad(name), benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		cmp, err := flow.CompareSampling()
		if err != nil {
			b.Fatal(err)
		}
		if cmp.TestOriented.SampleSize != cmp.Random.SampleSize {
			b.Fatal("strategies drew different sample sizes")
		}
		printRows("table2/"+name, core.FormatTable2([]*core.SamplingComparison{cmp}))
	}
}

func BenchmarkTable2B01(b *testing.B)  { benchmarkTable2(b, "b01") }
func BenchmarkTable2B03(b *testing.B)  { benchmarkTable2(b, "b03") }
func BenchmarkTable2C432(b *testing.B) { benchmarkTable2(b, "c432") }
func BenchmarkTable2C499(b *testing.B) { benchmarkTable2(b, "c499") }

// --- E3: ATPG top-off (the paper's §1 motivation) -----------------------------

func benchmarkTopoff(b *testing.B, name string, cfg core.Config) {
	for i := 0; i < b.N; i++ {
		flow, err := core.NewFlow(circuits.MustLoad(name), cfg)
		if err != nil {
			b.Fatal(err)
		}
		r, err := flow.ATPGTopoff()
		if err != nil {
			b.Fatal(err)
		}
		if r.Topoff.PodemCalls > r.Baseline.PodemCalls {
			b.Fatalf("top-off took more PODEM calls (%d) than scratch (%d)",
				r.Topoff.PodemCalls, r.Baseline.PodemCalls)
		}
		printRows("topoff/"+name, core.FormatTopoff([]*core.TopoffResult{r}))
	}
}

func BenchmarkTopoffC17(b *testing.B)  { benchmarkTopoff(b, "c17", benchConfig()) }
func BenchmarkTopoffC432(b *testing.B) { benchmarkTopoff(b, "c432", benchConfig()) }
func BenchmarkTopoffC499(b *testing.B) { benchmarkTopoff(b, "c499", benchConfig()) }
func BenchmarkTopoffC880(b *testing.B) { benchmarkTopoff(b, "c880", benchConfig()) }

// BenchmarkTopoffC499SinglePair is BenchmarkTopoffC499 with the ATPG
// pack scheduler pinned to one lane pair — the CI-gated ablation twin
// measuring what the other 62 lanes buy the ATPG-heaviest top-off flow.
// Reports are identical either way (detection order is defined by target
// index, not completion time).
func BenchmarkTopoffC499SinglePair(b *testing.B) {
	cfg := benchConfig()
	cfg.PackPairs = 1
	benchmarkTopoff(b, "c499", cfg)
}

// --- E4: sequential ATPG top-off (extension) ----------------------------------

func BenchmarkSeqTopoffB06(b *testing.B) {
	for i := 0; i < b.N; i++ {
		flow, err := core.NewFlow(circuits.MustLoad("b06"), benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		r, err := flow.SequentialATPGTopoff(6)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Topoff.Tests) > len(r.Baseline.Tests) {
			b.Fatalf("top-off regressed: %d vs %d tests", len(r.Topoff.Tests), len(r.Baseline.Tests))
		}
		printRows("seqtopoff/b06", core.FormatSeqTopoff([]*core.SeqTopoffResult{r}))
	}
}

// --- A4: TG-discipline ablation -------------------------------------------------

// BenchmarkTGDisciplines contrasts the three generation disciplines on one
// operator class: dedicated per-mutant (value-rich, longer), mutation-
// adequate per-mutant (hard mutants only), and greedy (near-minimal).
func BenchmarkTGDisciplines(b *testing.B) {
	c := circuits.MustLoad("b01")
	class := mutation.Generate(c, mutation.CR)
	nl, err := synth.Synthesize(c)
	if err != nil {
		b.Fatal(err)
	}
	fs, err := faultsim.New(nl, nil)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		var out string
		for _, d := range []struct {
			label string
			mode  tpg.Mode
		}{
			{"per-mutant", tpg.PerMutant},
			{"adequate", tpg.PerMutantSkip},
			{"greedy", tpg.Greedy},
		} {
			tg, err := tpg.MutationTests(c, class, &tpg.Options{Mode: d.mode, Seed: 11})
			if err != nil {
				b.Fatal(err)
			}
			res, err := fs.Run(tpg.ToPatterns(c, tg.Seq))
			if err != nil {
				b.Fatal(err)
			}
			out += fmt.Sprintf("A4 b01/CR %-11s len %4d kills %3d/%d FC %.2f%%\n",
				d.label, len(tg.Seq), tg.KilledCount(), len(class), 100*res.Coverage())
		}
		printRows("tgmodes/b01", out)
	}
}

// --- TG: session-based generation vs the one-shot API (b03) -------------------

// tgBenchFixture draws the deterministic 120-mutant b03 sample both TG
// benchmarks generate against, plus the synthesized netlist for
// round-by-round fault coverage.
func tgBenchFixture(b *testing.B) (*hdl.Circuit, []*mutation.Mutant, *netlist.Netlist) {
	b.Helper()
	c := circuits.MustLoad("b03")
	sample := sampling.Random(mutation.Generate(c), 120, 9)
	nl, err := synth.Synthesize(c)
	if err != nil {
		b.Fatal(err)
	}
	return c, sample, nl
}

// BenchmarkMutationTests is the session-based TG path (b03): the target
// sample is compiled once into a tpg.Session with an attached
// incremental fault simulator, and every iteration runs a full
// generation campaign whose round-by-round fault coverage is maintained
// by Append — no accepted prefix is ever re-simulated and nothing is
// recompiled between campaigns.
func BenchmarkMutationTests(b *testing.B) {
	c, sample, nl := tgBenchFixture(b)
	s, err := tpg.NewSession(c, sample, &tpg.Options{Seed: 11})
	if err != nil {
		b.Fatal(err)
	}
	fs, err := faultsim.New(nl, nil)
	if err != nil {
		b.Fatal(err)
	}
	s.AttachFaultSim(fs)
	b.ResetTimer()
	cycles := 0
	for i := 0; i < b.N; i++ {
		res, err := s.Generate(nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.RoundCoverage) == 0 || res.FaultSim.Coverage() == 0 {
			b.Fatal("campaign produced no round coverage")
		}
		cycles += len(res.Seq)
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "tgcycles/s")
}

// BenchmarkMutationTestsOneshotResim is the same campaign driven through
// the pre-session API shape: MutationTests compiles the targets on every
// call, and the per-round coverage trajectory is reconstructed afterwards
// by fault-simulating every accepted prefix from scratch — the
// O(rounds × prefix) cost the ISSUE's session redesign eliminates. The
// ratio against BenchmarkMutationTests is the incremental win.
func BenchmarkMutationTestsOneshotResim(b *testing.B) {
	c, sample, nl := tgBenchFixture(b)
	fs, err := faultsim.New(nl, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	cycles := 0
	for i := 0; i < b.N; i++ {
		res, err := tpg.MutationTests(c, sample, &tpg.Options{Seed: 11})
		if err != nil {
			b.Fatal(err)
		}
		pats := tpg.ToPatterns(c, res.Seq)
		cov := make([]float64, 0, len(res.Segments))
		for _, end := range res.Segments {
			pre, err := fs.Run(pats[:end])
			if err != nil {
				b.Fatal(err)
			}
			cov = append(cov, pre.Coverage())
		}
		if len(cov) == 0 || cov[len(cov)-1] == 0 {
			b.Fatal("campaign produced no round coverage")
		}
		cycles += len(res.Seq)
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "tgcycles/s")
}

// --- A1: sampling-rate sweep ---------------------------------------------------

func BenchmarkSweepB01(b *testing.B) {
	for _, frac := range []float64{0.05, 0.10, 0.20, 0.40} {
		b.Run(fmt.Sprintf("frac=%.2f", frac), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := benchConfig()
				cfg.SampleFrac = frac
				flow, err := core.NewFlow(circuits.MustLoad("b01"), cfg)
				if err != nil {
					b.Fatal(err)
				}
				cmp, err := flow.CompareSampling()
				if err != nil {
					b.Fatal(err)
				}
				printRows(fmt.Sprintf("sweep/b01/%.2f", frac),
					fmt.Sprintf("A1 b01 frac %.2f: test-oriented MS %.2f%% NLFCE %+.0f | random MS %.2f%% NLFCE %+.0f\n",
						frac, cmp.TestOriented.MSPct, cmp.TestOriented.Eff.NLFCE,
						cmp.Random.MSPct, cmp.Random.Eff.NLFCE))
			}
		})
	}
}

// --- A2: weight-source ablation -------------------------------------------------

// BenchmarkWeightSources compares three ways to weight the test-oriented
// sample: the paper's NLFCE profile, a mutation-score profile (kill ratio
// per class — a "validation-oriented" alternative), and uniform weights
// (which reduce to the random strategy's expected composition).
func BenchmarkWeightSources(b *testing.B) {
	name := "b01"
	for i := 0; i < b.N; i++ {
		cfg := benchConfig()
		flow, err := core.NewFlow(circuits.MustLoad(name), cfg)
		if err != nil {
			b.Fatal(err)
		}
		profiles, err := flow.ProfileOperators()
		if err != nil {
			b.Fatal(err)
		}
		n := sampling.SampleSize(len(flow.Mutants), cfg.SampleFrac)

		nlfce := core.DeriveWeights(profiles, 0.05)
		msW := make(sampling.Weights)
		for _, p := range profiles {
			msW[p.Op] = float64(p.Killed) / float64(p.Probed)
		}
		uniform := make(sampling.Weights)
		for _, p := range profiles {
			uniform[p.Op] = 1
		}

		var out string
		for _, src := range []struct {
			label string
			w     sampling.Weights
		}{{"nlfce", nlfce}, {"ms", msW}, {"uniform", uniform}} {
			sample := sampling.Weighted(flow.Mutants, n, src.w, cfg.Seed+10)
			tg, err := tpg.MutationTests(flow.Circuit, sample, &tpg.Options{Seed: cfg.Seed + 5})
			if err != nil {
				b.Fatal(err)
			}
			killed, err := mutscore.Kills(flow.Circuit, flow.Mutants, tg.Seq)
			if err != nil {
				b.Fatal(err)
			}
			equiv, err := flow.Equivalent()
			if err != nil {
				b.Fatal(err)
			}
			fres, err := flow.FaultSim(tg.Seq)
			if err != nil {
				b.Fatal(err)
			}
			out += fmt.Sprintf("A2 %s weights=%-8s MS %.2f%%  FC %.2f%%  len %d\n",
				name, src.label, 100*mutscore.Score(killed, equiv),
				100*fres.Coverage(), len(tg.Seq))
		}
		printRows("weights/"+name, out)
	}
}

// --- A3: equivalence-budget sensitivity ------------------------------------------

func BenchmarkEquivalenceBudget(b *testing.B) {
	c := circuits.MustLoad("b01")
	ms := mutation.Generate(c)
	for _, budget := range []int{128, 512, 2048} {
		b.Run(fmt.Sprintf("budget=%d", budget), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eq, err := mutscore.EstimateEquivalence(c, ms, nil,
					&mutscore.EquivalenceOptions{Budget: budget, Seed: 3})
				if err != nil {
					b.Fatal(err)
				}
				n := 0
				for _, e := range eq {
					if e {
						n++
					}
				}
				printRows(fmt.Sprintf("equiv/%d", budget),
					fmt.Sprintf("A3 b01 budget %4d: %d/%d probably equivalent\n", budget, n, len(ms)))
			}
		})
	}
}

// --- microbenchmarks: the inner loops -------------------------------------------

func BenchmarkBehavioralSim(b *testing.B) {
	c := circuits.MustLoad("b03")
	s, err := sim.New(c)
	if err != nil {
		b.Fatal(err)
	}
	seq := tpg.RandomSequence(c, 1024, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Run(seq); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(seq)*b.N)/b.Elapsed().Seconds(), "cycles/s")
}

// BenchmarkBehavioralSimCompiled is BenchmarkBehavioralSim on the
// compiled engine; the ratio between the two is the per-cycle win of flat
// instruction streams over AST walking.
func BenchmarkBehavioralSimCompiled(b *testing.B) {
	c := circuits.MustLoad("b03")
	p, err := sim.Compile(c)
	if err != nil {
		b.Fatal(err)
	}
	m := p.NewMachine()
	seq := tpg.RandomSequence(c, 1024, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Run(seq); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(seq)*b.N)/b.Elapsed().Seconds(), "cycles/s")
}

func BenchmarkSynthesize(b *testing.B) {
	c := circuits.MustLoad("c880")
	for i := 0; i < b.N; i++ {
		if _, err := synth.Synthesize(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMutantGeneration(b *testing.B) {
	c := circuits.MustLoad("b03")
	for i := 0; i < b.N; i++ {
		if got := mutation.Generate(c); len(got) == 0 {
			b.Fatal("no mutants")
		}
	}
}

// benchmarkFaultSimCombinational times combinational fault simulation of
// c880 at a fixed engine setting (Workers semantics per faultsim.Config).
func benchmarkFaultSimCombinational(b *testing.B, workers int) {
	c := circuits.MustLoad("c880")
	nl, err := synth.Synthesize(c)
	if err != nil {
		b.Fatal(err)
	}
	fs, err := faultsim.Config{Options: engine.Options{Workers: workers}}.New(nl, nil)
	if err != nil {
		b.Fatal(err)
	}
	pats := tpg.ToPatterns(c, tpg.RawRandomSequence(c, 256, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fs.Run(pats); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(pats)*len(fs.Faults())*b.N)/b.Elapsed().Seconds(), "faultpatterns/s")
}

// BenchmarkFaultSimCombinational is the production setting: compiled
// engine, all cores.
func BenchmarkFaultSimCombinational(b *testing.B) { benchmarkFaultSimCombinational(b, 0) }

// BenchmarkFaultSimCombinationalReference is the serial single-fault
// Evaluator path kept for differential testing.
func BenchmarkFaultSimCombinationalReference(b *testing.B) { benchmarkFaultSimCombinational(b, 1) }

// benchmarkFaultSimCombinationalLanes is the combinational lane-width
// ablation: c880 under a 256-pattern set on one core. A W=8 vector packs
// all 256 patterns into half a pass, so its extra words are pure waste
// here — the README's "when wider lanes hurt" example.
func benchmarkFaultSimCombinationalLanes(b *testing.B, laneWords int) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	c := circuits.MustLoad("c880")
	nl, err := synth.Synthesize(c)
	if err != nil {
		b.Fatal(err)
	}
	fs, err := faultsim.Config{Options: engine.Options{LaneWords: laneWords}}.New(nl, nil)
	if err != nil {
		b.Fatal(err)
	}
	pats := tpg.ToPatterns(c, tpg.RawRandomSequence(c, 256, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fs.Run(pats); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(pats)*len(fs.Faults())*b.N)/b.Elapsed().Seconds(), "faultpatterns/s")
}

func BenchmarkFaultSimCombinationalLanesW1(b *testing.B) { benchmarkFaultSimCombinationalLanes(b, 1) }
func BenchmarkFaultSimCombinationalLanesW4(b *testing.B) { benchmarkFaultSimCombinationalLanes(b, 4) }
func BenchmarkFaultSimCombinationalLanesW8(b *testing.B) { benchmarkFaultSimCombinationalLanes(b, 8) }

// benchmarkFaultSimSequential times sequential (parallel-fault) fault
// simulation of b03. singleCore pins GOMAXPROCS to 1 so the recorded
// ratio against the reference engine isolates the algorithmic win of
// packing 64 fault machines per pass from the worker-pool multiplier.
func benchmarkFaultSimSequential(b *testing.B, workers int, singleCore bool) {
	if singleCore {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	}
	c := circuits.MustLoad("b03")
	nl, err := synth.Synthesize(c)
	if err != nil {
		b.Fatal(err)
	}
	fs, err := faultsim.Config{Options: engine.Options{Workers: workers}}.New(nl, nil)
	if err != nil {
		b.Fatal(err)
	}
	pats := tpg.ToPatterns(c, tpg.RawRandomSequence(c, 256, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fs.Run(pats); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(pats)*len(fs.Faults())*b.N)/b.Elapsed().Seconds(), "faultcycles/s")
}

// BenchmarkFaultSimSequential is the production setting: parallel-fault
// compiled engine on the full worker pool at the default lane width.
func BenchmarkFaultSimSequential(b *testing.B) { benchmarkFaultSimSequential(b, 0, false) }

// BenchmarkFaultSimSequentialPacked1Core is the parallel-fault engine on
// one core at the default lane width — its ratio over the Reference
// benchmark isolates the algorithmic win from the worker-pool multiplier.
func BenchmarkFaultSimSequentialPacked1Core(b *testing.B) { benchmarkFaultSimSequential(b, 0, true) }

// BenchmarkFaultSimSequentialReference is the serial single-fault
// Evaluator path: one whole-sequence replay per fault.
func BenchmarkFaultSimSequentialReference(b *testing.B) { benchmarkFaultSimSequential(b, 1, true) }

// benchmarkFaultSimSequentialLanes is the lane-width ablation: b03
// sequential fault simulation on one core at a pinned LaneWords, so the
// W=4/8 rows against W=1 measure exactly the multi-word multiplier (the
// ISSUE's acceptance metric, faults×cycles/sec).
func benchmarkFaultSimSequentialLanes(b *testing.B, laneWords int) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	c := circuits.MustLoad("b03")
	nl, err := synth.Synthesize(c)
	if err != nil {
		b.Fatal(err)
	}
	fs, err := faultsim.Config{Options: engine.Options{LaneWords: laneWords}}.New(nl, nil)
	if err != nil {
		b.Fatal(err)
	}
	pats := tpg.ToPatterns(c, tpg.RawRandomSequence(c, 256, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fs.Run(pats); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(pats)*len(fs.Faults())*b.N)/b.Elapsed().Seconds(), "faultcycles/s")
}

func BenchmarkFaultSimSequentialLanesW1(b *testing.B) { benchmarkFaultSimSequentialLanes(b, 1) }
func BenchmarkFaultSimSequentialLanesW4(b *testing.B) { benchmarkFaultSimSequentialLanes(b, 4) }
func BenchmarkFaultSimSequentialLanesW8(b *testing.B) { benchmarkFaultSimSequentialLanes(b, 8) }

// benchmarkFaultSimSeqLongHorizon is the masked-execution ablation: a
// long-horizon b03 drop-sim campaign (2048 cycles appended in 64-cycle
// windows on one core, W=8 lanes) where most faults are detected early,
// so the tail windows run almost entirely on retired lanes. With
// re-planning on, the scheduler compacts survivors onto narrower
// machines between windows; StaticPlan pins the initial W8 plan and
// keeps evaluating the dead words — the ratio between the two rows is
// the win from not simulating them. Results are bit-identical either
// way (pinned in internal/difftest).
func benchmarkFaultSimSeqLongHorizon(b *testing.B, static bool) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	c := circuits.MustLoad("b03")
	nl, err := synth.Synthesize(c)
	if err != nil {
		b.Fatal(err)
	}
	cfg := faultsim.Config{StaticPlan: static, Options: engine.Options{LaneWords: 8}}
	fs, err := cfg.New(nl, nil)
	if err != nil {
		b.Fatal(err)
	}
	pats := tpg.ToPatterns(c, tpg.RawRandomSequence(c, 2048, 17))
	const window = 64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fs.Reset()
		for lo := 0; lo < len(pats); lo += window {
			if _, err := fs.Append(pats[lo : lo+window]); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(len(pats)*len(fs.Faults())*b.N)/b.Elapsed().Seconds(), "faultcycles/s")
}

// BenchmarkFaultSimSeqLongHorizon is the production scheduler: survivors
// are re-packed onto narrower machines as lanes retire.
func BenchmarkFaultSimSeqLongHorizon(b *testing.B) { benchmarkFaultSimSeqLongHorizon(b, false) }

// BenchmarkFaultSimSeqLongHorizonStatic pins the initial plan for the
// whole campaign — dead lanes keep getting evaluated.
func BenchmarkFaultSimSeqLongHorizonStatic(b *testing.B) { benchmarkFaultSimSeqLongHorizon(b, true) }

// BenchmarkPODEM is combinational ATPG on c432. MaxBacktracks is capped
// well below the 4096 default: c432's redundant faults burn the whole
// budget before the verdict, so an uncapped run times abort churn
// instead of search-and-drop throughput.
func BenchmarkPODEM(b *testing.B) {
	c := circuits.MustLoad("c432")
	nl, err := synth.Synthesize(c)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		rep, err := atpg.Generate(nl, nil, &atpg.Options{MaxBacktracks: 256, FillSeed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if rep.Detected == 0 {
			b.Fatal("ATPG detected nothing")
		}
	}
}

// benchmarkSeqATPG is the compiled-ATPG ablation family: full sequential
// ATPG on b03 (model compile + PODEM over the unrolled twin + drop-sim)
// at a fixed engine setting. Workers 1 is the legacy path — the
// three-valued interpreter and a one-shot RunOn per generated test;
// Workers 0 with PackPairs 1 is the single-pair compiled engine —
// dual-rail implications and the incremental reset-per-test drop-sim
// session; PackPairs 0 is the packed engine, up to 32 concurrent
// searches per machine pass under the work-stealing pair scheduler. All
// settings produce identical reports (pinned in atpg and
// internal/difftest); the ratios are the compiled port's and the lane
// pack's wins. MaxBacktracks is capped like the parity tests so aborted
// targets don't dominate the measurement with search effort every
// engine shares anyway.
func benchmarkSeqATPG(b *testing.B, workers, packPairs int) {
	nl, err := synth.Synthesize(circuits.MustLoad("b03"))
	if err != nil {
		b.Fatal(err)
	}
	opts := &atpg.SeqOptions{Frames: 4, MaxBacktracks: 96, FillSeed: 3}
	opts.Workers = workers
	opts.PackPairs = packPairs
	targets := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := atpg.GenerateSequential(nl, nil, opts)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Detected == 0 {
			b.Fatal("sequential ATPG detected nothing")
		}
		targets = rep.Total
	}
	b.ReportMetric(float64(targets*b.N)/b.Elapsed().Seconds(), "targets/s")
}

// BenchmarkSeqATPGPacked is the packed compiled engine (full 32-pair
// capacity) on b03 — the production path.
func BenchmarkSeqATPGPacked(b *testing.B) { benchmarkSeqATPG(b, 0, 0) }

// BenchmarkSeqATPGCompiled is the single-pair compiled engine on b03 —
// the packed scheduler's differential reference and the CI-gated
// ablation twin of BenchmarkSeqATPGPacked.
func BenchmarkSeqATPGCompiled(b *testing.B) { benchmarkSeqATPG(b, 0, 1) }

// BenchmarkSeqATPGLegacy is the legacy interpreter with one-shot
// per-test drop simulation on b03, kept as the differential baseline.
func BenchmarkSeqATPGLegacy(b *testing.B) { benchmarkSeqATPG(b, 1, 0) }

func BenchmarkMutationScore(b *testing.B) {
	c := circuits.MustLoad("b01")
	ms := mutation.Generate(c)
	seq := tpg.RandomSequence(c, 256, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mutscore.Kills(c, ms, seq); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(ms)*len(seq)*b.N)/b.Elapsed().Seconds(), "mutantcycles/s")
}

// benchmarkMutationScoreEngine times one-shot scoring at a fixed worker
// setting, compile included for the pooled engine. Flows amortize that
// compile over many calls via mutscore.Scorer, so this is the pooled
// engine's worst case, not its steady state.
func benchmarkMutationScoreEngine(b *testing.B, workers int) {
	c := circuits.MustLoad("b03")
	ms := mutation.Generate(c)
	seq := tpg.RandomSequence(c, 256, 1)
	cfg := mutscore.Config{Options: engine.Options{Workers: workers}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.Kills(c, ms, seq); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(ms)*len(seq)*b.N)/b.Elapsed().Seconds(), "mutantcycles/s")
}

// BenchmarkMutationScoreSerial is the legacy path: one AST-interpreter
// run per mutant, strictly sequential.
func BenchmarkMutationScoreSerial(b *testing.B) { benchmarkMutationScoreEngine(b, 1) }

// BenchmarkMutationScorePooled is the mutant-parallel compiled engine at
// the production setting (all cores).
func BenchmarkMutationScorePooled(b *testing.B) { benchmarkMutationScoreEngine(b, 0) }

func BenchmarkNetlistEval64Lanes(b *testing.B) {
	c := circuits.MustLoad("c880")
	nl, err := synth.Synthesize(c)
	if err != nil {
		b.Fatal(err)
	}
	ev, err := netlist.NewEvaluator(nl)
	if err != nil {
		b.Fatal(err)
	}
	pis := make([]uint64, len(nl.PIs))
	for i := range pis {
		pis[i] = 0xAAAA5555CCCC3333
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.Eval(pis); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(64*b.N)/b.Elapsed().Seconds(), "patterns/s")
}

// benchmarkNetlistEvalCompiled is BenchmarkNetlistEval64Lanes on the
// compiled Machine at lane width W; against the Evaluator it measures the
// flat-instruction-stream win, and across widths the per-gate decode
// amortization (patterns/s scales with lanes per pass when the W=4/8
// pass costs less than 4/8 W=1 passes).
func benchmarkNetlistEvalCompiled[W lane.Word](b *testing.B) {
	c := circuits.MustLoad("c880")
	nl, err := synth.Synthesize(c)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := netlist.Compile(nl)
	if err != nil {
		b.Fatal(err)
	}
	m := netlist.NewMachine[W](prog)
	pis := make([]W, len(nl.PIs))
	for i := range pis {
		pis[i] = lane.Broadcast[W](0xAAAA5555CCCC3333)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Eval(pis)
	}
	b.ReportMetric(float64(lane.Count[W]()*b.N)/b.Elapsed().Seconds(), "patterns/s")
}

func BenchmarkNetlistEvalCompiled(b *testing.B)   { benchmarkNetlistEvalCompiled[lane.W1](b) }
func BenchmarkNetlistEvalCompiledW4(b *testing.B) { benchmarkNetlistEvalCompiled[lane.W4](b) }
func BenchmarkNetlistEvalCompiledW8(b *testing.B) { benchmarkNetlistEvalCompiled[lane.W8](b) }
