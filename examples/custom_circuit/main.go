// Custom circuit: the flow on a design of your own. This example authors
// a fresh MHDL description inline (a gray-code sequencer with a parity
// guard), pushes it through the full pipeline — parse, mutate, profile
// the operators, run the sampling comparison — and dumps the synthesized
// netlist so you can eyeball what the fault simulator sees.
//
//	go run ./examples/custom_circuit
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/hdl"
	"repro/internal/mutation"
	"repro/internal/netlist"
)

const src = `
circuit grayseq {
  input step : bit;
  input reset : bit;
  output code : bits(4);
  output parity : bit;
  output wrapped : bit;
  reg cnt : bits(4);
  const LAST : bits(4) = 4'd15;
  seq {
    if reset == 1 {
      cnt = 4'd0;
      wrapped = 0;
    } else {
      wrapped = 0;
      if step == 1 {
        if cnt == LAST {
          cnt = 4'd0;
          wrapped = 1;
        } else {
          cnt = cnt + 1;
        }
      }
    }
  }
  comb {
    code = cnt xor (cnt >> 1);
    parity = rxor code;
  }
}
`

func main() {
	circuit, err := hdl.Parse(src)
	if err != nil {
		log.Fatalf("your MHDL does not check: %v", err)
	}
	flow, err := core.NewFlow(circuit, core.Config{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %v, %d mutants (%v)\n\n",
		circuit.Name, flow.Netlist.Stats(), len(flow.Mutants),
		mutation.CountByOperator(flow.Mutants))

	profiles, err := flow.ProfileOperators()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(core.FormatTable1([]core.Table1Row{{Circuit: circuit.Name, Profiles: profiles}}))

	cmp, err := flow.CompareSampling()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(core.FormatTable2([]*core.SamplingComparison{cmp}))

	fmt.Println("\nsynthesized netlist (.bench):")
	if err := netlist.WriteBench(os.Stdout, flow.Netlist); err != nil {
		log.Fatal(err)
	}
}
