// ATPG top-off: the paper's §1 motivation experiment (E3).
// Validation data is "free" by the time structural test generation
// starts; applying it as a pre-test should shrink the deterministic ATPG
// effort (PODEM calls, backtracks) and the number of top-off vectors
// compared to running ATPG from scratch.
//
// Both the baseline and top-off runs share one compiled ATPG model per
// circuit (atpg.Model: PODEM's planes on the dual-rail twin machine,
// fault dropping through an incremental fault-sim session), so the
// second campaign reuses the first one's compiled programs, search
// structures and armed drop-sim scratch instead of rebuilding them.
// -legacy switches to the serial reference engine (Workers: 1), which
// produces the identical tables — that equality is what
// internal/difftest pins.
//
//	go run ./examples/atpg_topoff [-legacy] [combinational circuits...]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/circuits"
	"repro/internal/core"
	"repro/internal/engine"
)

func main() {
	legacy := flag.Bool("legacy", false, "use the serial reference ATPG engine (Workers: 1)")
	flag.Parse()
	names := flag.Args()
	if len(names) == 0 {
		names = []string{"c17", "c432", "c499", "c880"}
	}
	cfg := core.Config{Seed: 1}
	if *legacy {
		cfg.Options = engine.Options{Workers: 1}
	}
	var results []*core.TopoffResult
	for _, name := range names {
		c, err := circuits.Load(name)
		if err != nil {
			log.Fatal(err)
		}
		flow, err := core.NewFlow(c, cfg)
		if err != nil {
			log.Fatal(err)
		}
		r, err := flow.ATPGTopoff()
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, r)
	}
	fmt.Print(core.FormatTopoff(results))
	fmt.Println()
	fmt.Println("Reading the table: the top-off run targets only the faults the")
	fmt.Println("validation pre-test missed, so its PODEM calls, backtracks and")
	fmt.Println("vector counts should all be well below the from-scratch run —")
	fmt.Println("the ATPG-effort reduction the paper's introduction promises.")
}
