// Operator efficiency: regenerates the paper's Table 1 ("Operator Fault
// Coverage Efficiency") — for each benchmark circuit and mutation
// operator, the ΔFC%, ΔL% and NLFCE of validation data generated from
// that operator's mutants alone, measured against a pseudo-random
// baseline on the synthesized netlist.
//
//	go run ./examples/operator_efficiency [circuits...]
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/circuits"
	"repro/internal/core"
	"repro/internal/engine"
)

func main() {
	names := os.Args[1:]
	if len(names) == 0 {
		names = circuits.PaperBenchmarks()
	}
	var rows []core.Table1Row
	for _, name := range names {
		c, err := circuits.Load(name)
		if err != nil {
			log.Fatal(err)
		}
		flow, err := core.NewFlow(c, core.Config{Seed: 1, Options: engine.Options{LaneWords: 4}})
		if err != nil {
			log.Fatal(err)
		}
		profiles, err := flow.ProfileOperators()
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, core.Table1Row{Circuit: name, Profiles: profiles})
	}
	fmt.Print(core.FormatTable1(rows))
	fmt.Println()
	fmt.Println("Paper's qualitative claims to check against the rows above:")
	fmt.Println("  - LOR is the least efficient operator wherever it applies;")
	fmt.Println("  - increasing order LOR < VR < CVR, with CR on top when the")
	fmt.Println("    description declares constants (b01, b03);")
	fmt.Println("  - mutation data beats equal-length pseudo-random data")
	fmt.Println("    (positive ΔFC% and ΔL%).")
}
