// Quickstart: the full mutation-sampling pipeline on one circuit, end to
// end — parse, mutate, sample, generate validation data, score it, and
// re-use it as a structural stuck-at test set.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/circuits"
	"repro/internal/engine"
	"repro/internal/faultsim"
	"repro/internal/metrics"
	"repro/internal/mutation"
	"repro/internal/mutscore"
	"repro/internal/sampling"
	"repro/internal/synth"
	"repro/internal/tpg"
)

func main() {
	// 1. Load a behavioral circuit (the ITC'99 b01 serial-flow comparator
	//    analog) and synthesize its gate-level netlist.
	circuit := circuits.MustLoad("b01")
	nl, err := synth.Synthesize(circuit)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("circuit %s: %v\n", circuit.Name, nl.Stats())

	// 2. Generate the mutant population with all ten operators.
	mutants := mutation.Generate(circuit)
	fmt.Printf("mutants: %d total, by operator %v\n",
		len(mutants), mutation.CountByOperator(mutants))

	// 3. Sample 10% of the mutants (here: classical random sampling; see
	//    examples/sampling_comparison for the paper's weighted strategy).
	n := sampling.SampleSize(len(mutants), 0.10)
	sample := sampling.Random(mutants, n, 42)
	fmt.Printf("sampled %d mutants\n", len(sample))

	// 4. Generate validation data killing the sampled mutants. A Session
	// compiles the targets once and can run any number of campaigns (per
	// -run seeds, modes, subsets); with a fault simulator attached it
	// also tracks the growing sequence's stuck-at coverage round by
	// round, incrementally. tpg.MutationTests is the one-shot shorthand
	// for exactly this.
	session, err := tpg.NewSession(circuit, sample, &tpg.Options{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	// The explicit config pins the parallel-fault engine to 512 lanes
	// per pass (LaneWords: 8); the zero value picks a width
	// automatically. Workers, Progress and Ctx (cancellation) ride on
	// the same embedded engine.Options surface.
	fsim, err := faultsim.Config{Options: engine.Options{LaneWords: 8}}.New(nl, nil)
	if err != nil {
		log.Fatal(err)
	}
	session.AttachFaultSim(fsim)
	tg, err := session.Generate(nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("validation data: %d cycles, kills %d/%d sampled mutants\n",
		len(tg.Seq), tg.KilledCount(), len(sample))
	fmt.Printf("fault coverage grew over %d accepted segments: %.1f%% -> %.1f%%\n",
		len(tg.Segments),
		100*tg.RoundCoverage[0], 100*tg.RoundCoverage[len(tg.RoundCoverage)-1])

	// 5. Mutation score over the FULL population (validation quality). A
	// Scorer compiles the population once and owns the scoring scratch,
	// so both measurements here (and any further sequences you score)
	// reuse the same machines; mutscore.Kills is the one-shot shorthand
	// that builds a throwaway Scorer per call.
	scorer, err := mutscore.Config{}.NewScorer(circuit, mutants)
	if err != nil {
		log.Fatal(err)
	}
	killed, err := scorer.Kills(tg.Seq)
	if err != nil {
		log.Fatal(err)
	}
	equiv, err := scorer.EstimateEquivalence(nil,
		&mutscore.EquivalenceOptions{Budget: 1024, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mutation score on all mutants: %.2f%%\n",
		100*mutscore.Score(killed, equiv))

	// 6. The same data doubles as a structural stuck-at test set — the
	// session already fault-simulated it incrementally while generating,
	// so the cumulative result comes for free.
	mutRes := tg.FaultSim
	fmt.Printf("stuck-at coverage of validation data: %.1f%% of %d collapsed faults\n",
		100*mutRes.Coverage(), len(mutRes.Faults))

	// 7. Compare against a raw pseudo-random test set (the paper's
	// baseline) via the NLFCE metric. Run restarts the same simulator
	// session — the armed fault machines are recycled, not rebuilt — and
	// returns a caller-owned result (tg.FaultSim above is already a
	// detached clone, so the restart can't disturb it).
	randRes, err := fsim.Run(tpg.ToPatterns(circuit, tpg.RawRandomSequence(circuit, 2048, 7)))
	if err != nil {
		log.Fatal(err)
	}
	eff := metrics.Compare(mutRes.Curve(), randRes.Curve())
	fmt.Printf("vs pseudo-random: %v\n", eff)
}
