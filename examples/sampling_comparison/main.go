// Sampling comparison: regenerates the paper's Table 2 ("Our Testing
// Strategy Vs Mutant Sampling") — at a fixed 10% mutant budget, compare
// the test-oriented sampling strategy (per-operator rates proportional to
// the operators' NLFCE profiles) against classical uniform-random
// sampling, on both the mutation score over all mutants (validation
// quality) and NLFCE (structural test quality).
//
//	go run ./examples/sampling_comparison [circuits...]
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/circuits"
	"repro/internal/core"
)

func main() {
	names := os.Args[1:]
	if len(names) == 0 {
		names = circuits.PaperBenchmarks()
	}
	var cmps []*core.SamplingComparison
	for _, name := range names {
		c, err := circuits.Load(name)
		if err != nil {
			log.Fatal(err)
		}
		flow, err := core.NewFlow(c, core.Config{Seed: 1, SampleFrac: 0.10})
		if err != nil {
			log.Fatal(err)
		}
		cmp, err := flow.CompareSampling()
		if err != nil {
			log.Fatal(err)
		}
		cmps = append(cmps, cmp)

		fmt.Printf("%s: derived weights and 10%% allocation\n", name)
		for _, p := range cmp.Profiles {
			fmt.Printf("  %-5s class %4d  NLFCE %+9.1f  drawn %2d (random drew %2d)\n",
				p.Op, p.Mutants, p.Eff.NLFCE,
				cmp.TestOriented.Alloc[p.Op], cmp.Random.Alloc[p.Op])
		}
	}
	fmt.Println()
	fmt.Print(core.FormatTable2(cmps))
	fmt.Println()
	fmt.Println("Paper's qualitative claim: at the same 10% budget the test-")
	fmt.Println("oriented sample yields a higher MS (validation preserved) and")
	fmt.Println("a higher NLFCE (better structural pre-test) than random sampling.")
}
