package hdl

import (
	"fmt"

	"repro/internal/bitvec"
)

// Parse parses MHDL source into a Circuit and runs the width checker in
// strict mode (definite-assignment enforced). It is the entry point used
// for hand-written circuits destined for synthesis.
func Parse(src string) (*Circuit, error) {
	c, err := ParseOnly(src)
	if err != nil {
		return nil, err
	}
	if err := Check(c, Strict); err != nil {
		return nil, err
	}
	return c, nil
}

// ParseOnly parses without semantic checking. Mutants are re-checked in
// Relaxed mode by the mutation engine.
func ParseOnly(src string) (*Circuit, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	c, err := p.parseCircuit()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, p.errorf("unexpected trailing input %s", p.tok)
	}
	return c, nil
}

type parser struct {
	lex *lexer
	tok token
}

func (p *parser) errorf(format string, args ...any) error {
	return &Error{Pos: p.tok.pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) accept(kind tokenKind, text string) (bool, error) {
	if p.tok.kind == kind && p.tok.text == text {
		return true, p.advance()
	}
	return false, nil
}

func (p *parser) expect(kind tokenKind, text string) error {
	if p.tok.kind != kind || p.tok.text != text {
		return p.errorf("expected %q, found %s", text, p.tok)
	}
	return p.advance()
}

func (p *parser) expectIdent() (string, Pos, error) {
	if p.tok.kind != tokIdent {
		return "", p.tok.pos, p.errorf("expected identifier, found %s", p.tok)
	}
	name, pos := p.tok.text, p.tok.pos
	return name, pos, p.advance()
}

func (p *parser) parseCircuit() (*Circuit, error) {
	if err := p.expect(tokKeyword, "circuit"); err != nil {
		return nil, err
	}
	name, _, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	c := &Circuit{Name: name}
	if err := p.expect(tokPunct, "{"); err != nil {
		return nil, err
	}
	for {
		if ok, err := p.accept(tokPunct, "}"); err != nil {
			return nil, err
		} else if ok {
			return c, nil
		}
		if p.tok.kind != tokKeyword {
			return nil, p.errorf("expected declaration or block, found %s", p.tok)
		}
		switch p.tok.text {
		case "input", "output":
			dir := Input
			if p.tok.text == "output" {
				dir = Output
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
			name, pos, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			w, err := p.parseTypeSuffix()
			if err != nil {
				return nil, err
			}
			c.Ports = append(c.Ports, &Port{Name: name, Width: w, Dir: dir, Pos: pos})
		case "reg":
			if err := p.advance(); err != nil {
				return nil, err
			}
			name, pos, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			w, err := p.parseTypeSuffixNoSemi()
			if err != nil {
				return nil, err
			}
			init := bitvec.Zero(w)
			if ok, err := p.accept(tokPunct, "="); err != nil {
				return nil, err
			} else if ok {
				v, vw, err := p.parseConstNumber()
				if err != nil {
					return nil, err
				}
				if vw != 0 && vw != w {
					return nil, p.errorf("reg %s init width %d != declared %d", name, vw, w)
				}
				init = bitvec.New(v, w)
			}
			if err := p.expect(tokPunct, ";"); err != nil {
				return nil, err
			}
			c.Regs = append(c.Regs, &Reg{Name: name, Width: w, Init: init, Pos: pos})
		case "wire":
			if err := p.advance(); err != nil {
				return nil, err
			}
			name, pos, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			w, err := p.parseTypeSuffix()
			if err != nil {
				return nil, err
			}
			c.Wires = append(c.Wires, &Wire{Name: name, Width: w, Pos: pos})
		case "const":
			if err := p.advance(); err != nil {
				return nil, err
			}
			name, pos, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			w, err := p.parseTypeSuffixNoSemi()
			if err != nil {
				return nil, err
			}
			if err := p.expect(tokPunct, "="); err != nil {
				return nil, err
			}
			v, vw, err := p.parseConstNumber()
			if err != nil {
				return nil, err
			}
			if vw != 0 && vw != w {
				return nil, p.errorf("const %s value width %d != declared %d", name, vw, w)
			}
			if err := p.expect(tokPunct, ";"); err != nil {
				return nil, err
			}
			c.Consts = append(c.Consts, &Const{Name: name, Width: w, Value: bitvec.New(v, w), Pos: pos})
		case "seq", "comb":
			kind := Seq
			if p.tok.text == "comb" {
				kind = Comb
			}
			pos := p.tok.pos
			if err := p.advance(); err != nil {
				return nil, err
			}
			body, err := p.parseStmtBlock()
			if err != nil {
				return nil, err
			}
			c.Blocks = append(c.Blocks, &Block{Kind: kind, Stmts: body, Pos: pos})
		default:
			return nil, p.errorf("unexpected keyword %q at circuit level", p.tok.text)
		}
	}
}

// parseTypeSuffix parses `: bit;` or `: bits(N);` including the semicolon.
func (p *parser) parseTypeSuffix() (int, error) {
	w, err := p.parseTypeSuffixNoSemi()
	if err != nil {
		return 0, err
	}
	return w, p.expect(tokPunct, ";")
}

func (p *parser) parseTypeSuffixNoSemi() (int, error) {
	if err := p.expect(tokPunct, ":"); err != nil {
		return 0, err
	}
	if ok, err := p.accept(tokKeyword, "bit"); err != nil {
		return 0, err
	} else if ok {
		return 1, nil
	}
	if err := p.expect(tokKeyword, "bits"); err != nil {
		return 0, err
	}
	if err := p.expect(tokPunct, "("); err != nil {
		return 0, err
	}
	if p.tok.kind != tokNumber {
		return 0, p.errorf("expected width, found %s", p.tok)
	}
	w := int(p.tok.num)
	if w < 1 || w > bitvec.MaxWidth {
		return 0, p.errorf("width %d out of range", w)
	}
	if err := p.advance(); err != nil {
		return 0, err
	}
	return w, p.expect(tokPunct, ")")
}

func (p *parser) parseConstNumber() (uint64, int, error) {
	if p.tok.kind != tokNumber {
		return 0, 0, p.errorf("expected number, found %s", p.tok)
	}
	v, w := p.tok.num, p.tok.numWidth
	return v, w, p.advance()
}

func (p *parser) parseStmtBlock() ([]Stmt, error) {
	if err := p.expect(tokPunct, "{"); err != nil {
		return nil, err
	}
	var out []Stmt
	for {
		if ok, err := p.accept(tokPunct, "}"); err != nil {
			return nil, err
		} else if ok {
			return out, nil
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
}

func (p *parser) parseStmt() (Stmt, error) {
	pos := p.tok.pos
	if p.tok.kind == tokKeyword {
		switch p.tok.text {
		case "if":
			return p.parseIf()
		case "case":
			return p.parseCase()
		case "for":
			return p.parseFor()
		}
		return nil, p.errorf("unexpected keyword %q in statement", p.tok.text)
	}
	// assignment
	name, _, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	lv := &LValue{Name: name, Pos: pos}
	if ok, err := p.accept(tokPunct, "["); err != nil {
		return nil, err
	} else if ok {
		idx, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		lv.Index = idx
		if err := p.expect(tokPunct, "]"); err != nil {
			return nil, err
		}
	}
	if err := p.expect(tokPunct, "="); err != nil {
		return nil, err
	}
	rhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(tokPunct, ";"); err != nil {
		return nil, err
	}
	return &Assign{LHS: lv, RHS: rhs, Pos: pos}, nil
}

func (p *parser) parseIf() (Stmt, error) {
	pos := p.tok.pos
	if err := p.advance(); err != nil { // consume if
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	then, err := p.parseStmtBlock()
	if err != nil {
		return nil, err
	}
	node := &If{Cond: cond, Then: then, Pos: pos}
	if ok, err := p.accept(tokKeyword, "else"); err != nil {
		return nil, err
	} else if ok {
		if p.tok.kind == tokKeyword && p.tok.text == "if" {
			nested, err := p.parseIf()
			if err != nil {
				return nil, err
			}
			node.Else = []Stmt{nested}
		} else {
			els, err := p.parseStmtBlock()
			if err != nil {
				return nil, err
			}
			node.Else = els
		}
	}
	return node, nil
}

func (p *parser) parseCase() (Stmt, error) {
	pos := p.tok.pos
	if err := p.advance(); err != nil { // consume case
		return nil, err
	}
	subj, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	node := &Case{Subject: subj, Pos: pos}
	if err := p.expect(tokPunct, "{"); err != nil {
		return nil, err
	}
	for {
		if ok, err := p.accept(tokPunct, "}"); err != nil {
			return nil, err
		} else if ok {
			return node, nil
		}
		if ok, err := p.accept(tokKeyword, "default"); err != nil {
			return nil, err
		} else if ok {
			if err := p.expect(tokPunct, ":"); err != nil {
				return nil, err
			}
			body, err := p.parseStmtBlock()
			if err != nil {
				return nil, err
			}
			if node.Default != nil {
				return nil, p.errorf("duplicate default arm")
			}
			node.Default = body
			continue
		}
		armPos := p.tok.pos
		if err := p.expect(tokKeyword, "when"); err != nil {
			return nil, err
		}
		arm := &CaseArm{Pos: armPos}
		for {
			lbl, err := p.parsePrimary()
			if err != nil {
				return nil, err
			}
			arm.Labels = append(arm.Labels, lbl)
			if ok, err := p.accept(tokPunct, ","); err != nil {
				return nil, err
			} else if !ok {
				break
			}
		}
		if err := p.expect(tokPunct, ":"); err != nil {
			return nil, err
		}
		body, err := p.parseStmtBlock()
		if err != nil {
			return nil, err
		}
		arm.Body = body
		node.Arms = append(node.Arms, arm)
	}
}

func (p *parser) parseFor() (Stmt, error) {
	pos := p.tok.pos
	if err := p.advance(); err != nil { // consume for
		return nil, err
	}
	name, _, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expect(tokKeyword, "in"); err != nil {
		return nil, err
	}
	if p.tok.kind != tokNumber {
		return nil, p.errorf("expected loop lower bound, found %s", p.tok)
	}
	lo := int(p.tok.num)
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.expect(tokPunct, ".."); err != nil {
		return nil, err
	}
	if p.tok.kind != tokNumber {
		return nil, p.errorf("expected loop upper bound, found %s", p.tok)
	}
	hi := int(p.tok.num)
	if err := p.advance(); err != nil {
		return nil, err
	}
	if hi < lo {
		return nil, &Error{Pos: pos, Msg: fmt.Sprintf("empty loop range %d..%d", lo, hi)}
	}
	body, err := p.parseStmtBlock()
	if err != nil {
		return nil, err
	}
	return &For{Var: name, Lo: lo, Hi: hi, Body: body, Pos: pos}, nil
}

// Expression grammar, lowest precedence first:
//
//	orExpr   := xorExpr  (("or"|"nor") xorExpr)*
//	xorExpr  := andExpr  (("xor"|"xnor") andExpr)*
//	andExpr  := cmpExpr  (("and"|"nand") cmpExpr)*
//	cmpExpr  := catExpr  (("=="|"!="|"<"|"<="|">"|">=") catExpr)?
//	catExpr  := shiftExpr ("++" shiftExpr)*
//	shiftExpr:= addExpr  (("<<"|">>") addExpr)*
//	addExpr  := mulExpr  (("+"|"-") mulExpr)*
//	mulExpr  := unary    ("*" unary)*
//	unary    := ("not"|"-"|"rand"|"ror"|"rxor") unary | postfix
//	postfix  := primary ("[" expr ("]" | ":" num "]") )*
//	primary  := number | ident | "(" expr ")"
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) binLevel(sub func() (Expr, error), ops map[string]BinOp, kw bool) (Expr, error) {
	x, err := sub()
	if err != nil {
		return nil, err
	}
	for {
		var matched string
		var op BinOp
		kind := tokPunct
		if kw {
			kind = tokKeyword
		}
		if p.tok.kind == kind {
			if o, ok := ops[p.tok.text]; ok {
				matched, op = p.tok.text, o
			}
		}
		if matched == "" {
			return x, nil
		}
		pos := p.tok.pos
		if err := p.advance(); err != nil {
			return nil, err
		}
		y, err := sub()
		if err != nil {
			return nil, err
		}
		x = &Binary{Op: op, X: x, Y: y, Pos: pos}
	}
}

func (p *parser) parseOr() (Expr, error) {
	return p.binLevel(p.parseXor, map[string]BinOp{"or": OpOr, "nor": OpNor}, true)
}

func (p *parser) parseXor() (Expr, error) {
	return p.binLevel(p.parseAnd, map[string]BinOp{"xor": OpXor, "xnor": OpXnor}, true)
}

func (p *parser) parseAnd() (Expr, error) {
	return p.binLevel(p.parseCmp, map[string]BinOp{"and": OpAnd, "nand": OpNand}, true)
}

var cmpOps = map[string]BinOp{
	"==": OpEq, "!=": OpNe, "<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe,
}

func (p *parser) parseCmp() (Expr, error) {
	x, err := p.parseCat()
	if err != nil {
		return nil, err
	}
	if p.tok.kind == tokPunct {
		if op, ok := cmpOps[p.tok.text]; ok {
			pos := p.tok.pos
			if err := p.advance(); err != nil {
				return nil, err
			}
			y, err := p.parseCat()
			if err != nil {
				return nil, err
			}
			return &Binary{Op: op, X: x, Y: y, Pos: pos}, nil
		}
	}
	return x, nil
}

func (p *parser) parseCat() (Expr, error) {
	return p.binLevel(p.parseShift, map[string]BinOp{"++": OpConcat}, false)
}

func (p *parser) parseShift() (Expr, error) {
	return p.binLevel(p.parseAdd, map[string]BinOp{"<<": OpShl, ">>": OpShr}, false)
}

func (p *parser) parseAdd() (Expr, error) {
	return p.binLevel(p.parseMul, map[string]BinOp{"+": OpAdd, "-": OpSub}, false)
}

func (p *parser) parseMul() (Expr, error) {
	return p.binLevel(p.parseUnary, map[string]BinOp{"*": OpMul}, false)
}

func (p *parser) parseUnary() (Expr, error) {
	pos := p.tok.pos
	if p.tok.kind == tokKeyword {
		var op UnOp
		switch p.tok.text {
		case "not":
			op = OpNot
		case "rand":
			op = OpRedAnd
		case "ror":
			op = OpRedOr
		case "rxor":
			op = OpRedXor
		default:
			return p.parsePostfix()
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: op, X: x, Pos: pos}, nil
	}
	if p.tok.kind == tokPunct && p.tok.text == "-" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: OpNeg, X: x, Pos: pos}, nil
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		if p.tok.kind != tokPunct || p.tok.text != "[" {
			return x, nil
		}
		pos := p.tok.pos
		if err := p.advance(); err != nil {
			return nil, err
		}
		first, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if ok, err := p.accept(tokPunct, ":"); err != nil {
			return nil, err
		} else if ok {
			hiLit, okLit := first.(*Lit)
			if !okLit {
				return nil, &Error{Pos: pos, Msg: "slice bounds must be literal"}
			}
			if p.tok.kind != tokNumber {
				return nil, p.errorf("expected slice low bound, found %s", p.tok)
			}
			lo := int(p.tok.num)
			if err := p.advance(); err != nil {
				return nil, err
			}
			if err := p.expect(tokPunct, "]"); err != nil {
				return nil, err
			}
			hi := int(hiLit.Raw)
			if hi < lo {
				return nil, &Error{Pos: pos, Msg: fmt.Sprintf("bad slice bounds [%d:%d]", hi, lo)}
			}
			x = &SliceExpr{X: x, Hi: hi, Lo: lo, Pos: pos}
		} else {
			if err := p.expect(tokPunct, "]"); err != nil {
				return nil, err
			}
			x = &Index{X: x, I: first, Pos: pos}
		}
	}
}

func (p *parser) parsePrimary() (Expr, error) {
	pos := p.tok.pos
	switch p.tok.kind {
	case tokNumber:
		v, w := p.tok.num, p.tok.numWidth
		if err := p.advance(); err != nil {
			return nil, err
		}
		lit := &Lit{Raw: v, Pos: pos}
		if w > 0 {
			lit.Sized = true
			lit.Width = w
			lit.Val = bitvec.New(v, w)
		}
		return lit, nil
	case tokIdent:
		name := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &Ref{Name: name, Pos: pos}, nil
	case tokPunct:
		if p.tok.text == "(" {
			if err := p.advance(); err != nil {
				return nil, err
			}
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			return x, p.expect(tokPunct, ")")
		}
	}
	return nil, p.errorf("expected expression, found %s", p.tok)
}
