package hdl

import (
	"fmt"
	"strings"
)

// Format renders a circuit back to parseable MHDL source. The output
// round-trips: Parse(Format(c)) yields a structurally identical circuit.
// Mutant diffs shown to users are produced by formatting original and
// mutant and diffing the lines.
func Format(c *Circuit) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "circuit %s {\n", c.Name)
	for _, p := range c.Ports {
		fmt.Fprintf(&sb, "  %s %s : %s;\n", p.Dir, p.Name, typeName(p.Width))
	}
	for _, r := range c.Regs {
		if r.Init.IsZero() {
			fmt.Fprintf(&sb, "  reg %s : %s;\n", r.Name, typeName(r.Width))
		} else {
			fmt.Fprintf(&sb, "  reg %s : %s = %d'd%d;\n", r.Name, typeName(r.Width), r.Width, r.Init.Uint())
		}
	}
	for _, w := range c.Wires {
		fmt.Fprintf(&sb, "  wire %s : %s;\n", w.Name, typeName(w.Width))
	}
	for _, k := range c.Consts {
		fmt.Fprintf(&sb, "  const %s : %s = %d'd%d;\n", k.Name, typeName(k.Width), k.Width, k.Value.Uint())
	}
	for _, b := range c.Blocks {
		fmt.Fprintf(&sb, "  %s {\n", b.Kind)
		printStmts(&sb, b.Stmts, 2)
		sb.WriteString("  }\n")
	}
	sb.WriteString("}\n")
	return sb.String()
}

func typeName(w int) string {
	if w == 1 {
		return "bit"
	}
	return fmt.Sprintf("bits(%d)", w)
}

func printStmts(sb *strings.Builder, ss []Stmt, depth int) {
	for _, s := range ss {
		printStmt(sb, s, depth)
	}
}

func indent(sb *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		sb.WriteString("  ")
	}
}

func printStmt(sb *strings.Builder, s Stmt, depth int) {
	indent(sb, depth)
	switch s := s.(type) {
	case *Assign:
		sb.WriteString(s.LHS.Name)
		if s.LHS.Index != nil {
			sb.WriteByte('[')
			sb.WriteString(FormatExpr(s.LHS.Index))
			sb.WriteByte(']')
		}
		sb.WriteString(" = ")
		sb.WriteString(FormatExpr(s.RHS))
		sb.WriteString(";\n")
	case *If:
		fmt.Fprintf(sb, "if %s {\n", FormatExpr(s.Cond))
		printStmts(sb, s.Then, depth+1)
		indent(sb, depth)
		if len(s.Else) > 0 {
			sb.WriteString("} else {\n")
			printStmts(sb, s.Else, depth+1)
			indent(sb, depth)
		}
		sb.WriteString("}\n")
	case *Case:
		fmt.Fprintf(sb, "case %s {\n", FormatExpr(s.Subject))
		for _, arm := range s.Arms {
			indent(sb, depth+1)
			sb.WriteString("when ")
			for i, l := range arm.Labels {
				if i > 0 {
					sb.WriteString(", ")
				}
				sb.WriteString(FormatExpr(l))
			}
			sb.WriteString(": {\n")
			printStmts(sb, arm.Body, depth+2)
			indent(sb, depth+1)
			sb.WriteString("}\n")
		}
		if s.Default != nil {
			indent(sb, depth+1)
			sb.WriteString("default: {\n")
			printStmts(sb, s.Default, depth+2)
			indent(sb, depth+1)
			sb.WriteString("}\n")
		}
		indent(sb, depth)
		sb.WriteString("}\n")
	case *For:
		fmt.Fprintf(sb, "for %s in %d .. %d {\n", s.Var, s.Lo, s.Hi)
		printStmts(sb, s.Body, depth+1)
		indent(sb, depth)
		sb.WriteString("}\n")
	}
}

// FormatExpr renders an expression to parseable source. Subexpressions are
// parenthesized conservatively, so output precedence never depends on the
// printing context.
func FormatExpr(e Expr) string {
	switch e := e.(type) {
	case *Lit:
		if e.Sized || e.Width > 0 {
			w := e.Width
			if w == 0 {
				w = naturalWidth(e.Raw)
			}
			return fmt.Sprintf("%d'd%d", w, e.Raw)
		}
		return fmt.Sprintf("%d", e.Raw)
	case *Ref:
		return e.Name
	case *Index:
		return fmt.Sprintf("%s[%s]", formatPostfixBase(e.X), FormatExpr(e.I))
	case *SliceExpr:
		return fmt.Sprintf("%s[%d:%d]", formatPostfixBase(e.X), e.Hi, e.Lo)
	case *Unary:
		if e.Op == OpNeg {
			return fmt.Sprintf("-(%s)", FormatExpr(e.X))
		}
		return fmt.Sprintf("%s (%s)", e.Op, FormatExpr(e.X))
	case *Binary:
		return fmt.Sprintf("(%s %s %s)", FormatExpr(e.X), e.Op, FormatExpr(e.Y))
	default:
		return fmt.Sprintf("<%T>", e)
	}
}

// formatPostfixBase wraps non-primary expressions in parens so that
// indexing binds to the intended operand when re-parsed.
func formatPostfixBase(e Expr) string {
	switch e.(type) {
	case *Ref, *Index, *SliceExpr:
		return FormatExpr(e)
	default:
		return "(" + FormatExpr(e) + ")"
	}
}
