package hdl

import (
	"fmt"
	"math/bits"

	"repro/internal/bitvec"
)

// Mode selects how strict semantic checking is.
type Mode int

const (
	// Strict enforces everything, including definite assignment of all
	// combinational targets. Hand-written circuits destined for synthesis
	// are checked strictly.
	Strict Mode = iota
	// Relaxed checks names and widths only. Mutants are checked in Relaxed
	// mode: an SDL mutant may delete the default assignment of a wire, which
	// the simulator tolerates (wires reset to zero each cycle) but Strict
	// would reject.
	Relaxed
)

type symKind int

const (
	symInput symKind = iota
	symOutput
	symReg
	symWire
	symConst
)

func (k symKind) String() string {
	return [...]string{"input", "output", "reg", "wire", "const"}[k]
}

type symbol struct {
	kind  symKind
	width int
}

type checker struct {
	c       *Circuit
	mode    Mode
	syms    map[string]symbol
	loopVar map[string]bool
	// drivers records which block kind assigns each signal, to reject
	// signals driven from both seq and comb blocks.
	drivers map[string]BlockKind
}

// Check verifies name resolution, width consistency and (in Strict mode)
// definite assignment of combinational targets. It annotates expression
// nodes with their resolved widths as a side effect.
func Check(c *Circuit, mode Mode) error {
	ck := &checker{
		c:       c,
		mode:    mode,
		syms:    make(map[string]symbol),
		loopVar: make(map[string]bool),
		drivers: make(map[string]BlockKind),
	}
	if err := ck.declare(); err != nil {
		return err
	}
	for _, b := range c.Blocks {
		if err := ck.stmts(b.Stmts, b.Kind); err != nil {
			return err
		}
	}
	if mode == Strict {
		if err := ck.definiteAssignment(); err != nil {
			return err
		}
	}
	return nil
}

func (ck *checker) errorf(pos Pos, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (ck *checker) declare() error {
	add := func(name string, kind symKind, width int, pos Pos) error {
		if _, dup := ck.syms[name]; dup {
			return ck.errorf(pos, "duplicate declaration of %q", name)
		}
		ck.syms[name] = symbol{kind: kind, width: width}
		return nil
	}
	for _, p := range ck.c.Ports {
		kind := symInput
		if p.Dir == Output {
			kind = symOutput
		}
		if err := add(p.Name, kind, p.Width, p.Pos); err != nil {
			return err
		}
	}
	for _, r := range ck.c.Regs {
		if err := add(r.Name, symReg, r.Width, r.Pos); err != nil {
			return err
		}
	}
	for _, w := range ck.c.Wires {
		if err := add(w.Name, symWire, w.Width, w.Pos); err != nil {
			return err
		}
	}
	for _, k := range ck.c.Consts {
		if err := add(k.Name, symConst, k.Width, k.Pos); err != nil {
			return err
		}
	}
	return nil
}

func (ck *checker) stmts(ss []Stmt, kind BlockKind) error {
	for _, s := range ss {
		if err := ck.stmt(s, kind); err != nil {
			return err
		}
	}
	return nil
}

func (ck *checker) stmt(s Stmt, kind BlockKind) error {
	switch s := s.(type) {
	case *Assign:
		return ck.assign(s, kind)
	case *If:
		if _, err := ck.expr(s.Cond, 0); err != nil {
			return err
		}
		if err := ck.stmts(s.Then, kind); err != nil {
			return err
		}
		return ck.stmts(s.Else, kind)
	case *Case:
		w, err := ck.expr(s.Subject, 0)
		if err != nil {
			return err
		}
		for _, arm := range s.Arms {
			for _, l := range arm.Labels {
				if !isConstExpr(ck.c, l) {
					return ck.errorf(l.ExprPos(), "case label must be a literal or named constant")
				}
				if _, err := ck.expr(l, w); err != nil {
					return err
				}
			}
			if err := ck.stmts(arm.Body, kind); err != nil {
				return err
			}
		}
		return ck.stmts(s.Default, kind)
	case *For:
		if ck.loopVar[s.Var] {
			return ck.errorf(s.Pos, "nested loops reuse variable %q", s.Var)
		}
		if _, clash := ck.syms[s.Var]; clash {
			return ck.errorf(s.Pos, "loop variable %q shadows a declared signal", s.Var)
		}
		ck.loopVar[s.Var] = true
		err := ck.stmts(s.Body, kind)
		delete(ck.loopVar, s.Var)
		return err
	default:
		return ck.errorf(s.StmtPos(), "unknown statement type %T", s)
	}
}

func (ck *checker) assign(s *Assign, kind BlockKind) error {
	sym, ok := ck.syms[s.LHS.Name]
	if !ok {
		return ck.errorf(s.Pos, "assignment to undeclared signal %q", s.LHS.Name)
	}
	switch sym.kind {
	case symInput:
		return ck.errorf(s.Pos, "cannot assign to input %q", s.LHS.Name)
	case symConst:
		return ck.errorf(s.Pos, "cannot assign to constant %q", s.LHS.Name)
	case symReg:
		if kind != Seq {
			return ck.errorf(s.Pos, "register %q assigned outside a seq block", s.LHS.Name)
		}
	case symWire:
		if kind != Comb {
			return ck.errorf(s.Pos, "wire %q assigned outside a comb block", s.LHS.Name)
		}
	case symOutput:
		if prev, seen := ck.drivers[s.LHS.Name]; seen && prev != kind {
			return ck.errorf(s.Pos, "output %q driven by both seq and comb blocks", s.LHS.Name)
		}
	}
	ck.drivers[s.LHS.Name] = kind

	want := sym.width
	if s.LHS.Index != nil {
		if err := ck.checkIndex(s.LHS.Index); err != nil {
			return err
		}
		if lit, isLit := s.LHS.Index.(*Lit); isLit && lit.Raw >= uint64(sym.width) {
			return ck.errorf(s.Pos, "bit index %d out of range for %q (width %d)", lit.Raw, s.LHS.Name, sym.width)
		}
		want = 1
	}
	_, err := ck.expr(s.RHS, want)
	return err
}

// checkIndex resolves a bit-index expression. Index arithmetic is usually
// built from loop variables and small literals, which have no inherent
// width; such expressions get a fixed 8-bit context (indices never exceed
// MaxWidth-1 = 63, which fits comfortably).
func (ck *checker) checkIndex(e Expr) error {
	ctx := 0
	if isAdaptable(ck.c, e) {
		ctx = 8
	}
	_, err := ck.expr(e, ctx)
	return err
}

// isAdaptable reports whether e has no inherent width and adapts to the
// width demanded by context: unsized literals, loop variables, and
// width-preserving compositions of those.
func isAdaptable(c *Circuit, e Expr) bool {
	switch e := e.(type) {
	case *Lit:
		return !e.Sized
	case *Ref:
		return c.SignalWidth(e.Name) == 0 // loop variable (or undeclared, caught later)
	case *Unary:
		return (e.Op == OpNot || e.Op == OpNeg) && isAdaptable(c, e.X)
	case *Binary:
		if e.Op.IsLogical() || e.Op.IsArithmetic() {
			return isAdaptable(c, e.X) && isAdaptable(c, e.Y)
		}
		return false
	default:
		return false
	}
}

// isConstExpr reports whether e evaluates to a compile-time constant
// (literal or reference to a named constant).
func isConstExpr(c *Circuit, e Expr) bool {
	switch e := e.(type) {
	case *Lit:
		return true
	case *Ref:
		return c.ConstByName(e.Name) != nil
	default:
		return false
	}
}

func naturalWidth(v uint64) int {
	if v == 0 {
		return 1
	}
	return bits.Len64(v)
}

// expr resolves the width of e. ctx > 0 demands that width from adaptable
// subexpressions and cross-checks fixed-width ones; ctx == 0 leaves
// adaptable expressions at their natural width.
func (ck *checker) expr(e Expr, ctx int) (int, error) {
	switch e := e.(type) {
	case *Lit:
		if e.Sized {
			if ctx > 0 && ctx != e.Width {
				return 0, ck.errorf(e.Pos, "literal width %d where %d expected", e.Width, ctx)
			}
			return e.Width, nil
		}
		w := ctx
		if w == 0 {
			w = naturalWidth(e.Raw)
		}
		if e.Raw != 0 && naturalWidth(e.Raw) > w {
			return 0, ck.errorf(e.Pos, "literal %d does not fit in %d bits", e.Raw, w)
		}
		e.Width = w
		e.Val = bitvec.New(e.Raw, w)
		return w, nil
	case *Ref:
		if ck.loopVar[e.Name] {
			w := ctx
			if w == 0 {
				w = 8 // loop indices are small; natural width for unconstrained uses
			}
			e.Width = w
			return w, nil
		}
		sym, ok := ck.syms[e.Name]
		if !ok {
			return 0, ck.errorf(e.Pos, "reference to undeclared signal %q", e.Name)
		}
		if ctx > 0 && ctx != sym.width {
			return 0, ck.errorf(e.Pos, "%s %q has width %d where %d expected", sym.kind, e.Name, sym.width, ctx)
		}
		e.Width = sym.width
		return sym.width, nil
	case *Index:
		xw, err := ck.expr(e.X, 0)
		if err != nil {
			return 0, err
		}
		if err := ck.checkIndex(e.I); err != nil {
			return 0, err
		}
		if lit, isLit := e.I.(*Lit); isLit && lit.Raw >= uint64(xw) {
			return 0, ck.errorf(e.Pos, "bit index %d out of range (width %d)", lit.Raw, xw)
		}
		if ctx > 1 {
			return 0, ck.errorf(e.Pos, "bit select has width 1 where %d expected", ctx)
		}
		return 1, nil
	case *SliceExpr:
		xw, err := ck.expr(e.X, 0)
		if err != nil {
			return 0, err
		}
		if e.Hi >= xw {
			return 0, ck.errorf(e.Pos, "slice [%d:%d] out of range (width %d)", e.Hi, e.Lo, xw)
		}
		w := e.Hi - e.Lo + 1
		if ctx > 0 && ctx != w {
			return 0, ck.errorf(e.Pos, "slice has width %d where %d expected", w, ctx)
		}
		return w, nil
	case *Unary:
		switch e.Op {
		case OpNot, OpNeg:
			w, err := ck.expr(e.X, ctx)
			if err != nil {
				return 0, err
			}
			e.Width = w
			return w, nil
		default: // reductions
			if isAdaptable(ck.c, e.X) {
				return 0, ck.errorf(e.Pos, "cannot infer width of reduction operand")
			}
			if _, err := ck.expr(e.X, 0); err != nil {
				return 0, err
			}
			if ctx > 1 {
				return 0, ck.errorf(e.Pos, "reduction has width 1 where %d expected", ctx)
			}
			e.Width = 1
			return 1, nil
		}
	case *Binary:
		return ck.binary(e, ctx)
	default:
		return 0, ck.errorf(e.ExprPos(), "unknown expression type %T", e)
	}
}

func (ck *checker) binary(e *Binary, ctx int) (int, error) {
	switch {
	case e.Op.IsLogical() || e.Op.IsArithmetic():
		w, err := ck.sameWidth(e, ctx)
		if err != nil {
			return 0, err
		}
		e.Width = w
		return w, nil
	case e.Op.IsRelational():
		if _, err := ck.sameWidth(e, 0); err != nil {
			return 0, err
		}
		if ctx > 1 {
			return 0, ck.errorf(e.Pos, "comparison has width 1 where %d expected", ctx)
		}
		e.Width = 1
		return 1, nil
	case e.Op.IsShift():
		w, err := ck.expr(e.X, ctx)
		if err != nil {
			return 0, err
		}
		if _, err := ck.expr(e.Y, 0); err != nil {
			return 0, err
		}
		e.Width = w
		return w, nil
	case e.Op == OpConcat:
		if isAdaptable(ck.c, e.X) || isAdaptable(ck.c, e.Y) {
			return 0, ck.errorf(e.Pos, "concat operands must have fixed widths")
		}
		xw, err := ck.expr(e.X, 0)
		if err != nil {
			return 0, err
		}
		yw, err := ck.expr(e.Y, 0)
		if err != nil {
			return 0, err
		}
		w := xw + yw
		if w > 64 {
			return 0, ck.errorf(e.Pos, "concat width %d exceeds 64", w)
		}
		if ctx > 0 && ctx != w {
			return 0, ck.errorf(e.Pos, "concat has width %d where %d expected", w, ctx)
		}
		e.Width = w
		return w, nil
	default:
		return 0, ck.errorf(e.Pos, "unknown binary operator")
	}
}

// sameWidth resolves both operands of a same-width operator, letting an
// adaptable side inherit the fixed side's width.
func (ck *checker) sameWidth(e *Binary, ctx int) (int, error) {
	ax, ay := isAdaptable(ck.c, e.X), isAdaptable(ck.c, e.Y)
	switch {
	case ax && !ay:
		yw, err := ck.expr(e.Y, ctx)
		if err != nil {
			return 0, err
		}
		if _, err := ck.expr(e.X, yw); err != nil {
			return 0, err
		}
		return yw, nil
	case !ax && ay:
		xw, err := ck.expr(e.X, ctx)
		if err != nil {
			return 0, err
		}
		if _, err := ck.expr(e.Y, xw); err != nil {
			return 0, err
		}
		return xw, nil
	case ax && ay:
		if ctx == 0 {
			return 0, ck.errorf(e.Pos, "cannot infer operand width for %s", e.Op)
		}
		if _, err := ck.expr(e.X, ctx); err != nil {
			return 0, err
		}
		if _, err := ck.expr(e.Y, ctx); err != nil {
			return 0, err
		}
		return ctx, nil
	default:
		xw, err := ck.expr(e.X, ctx)
		if err != nil {
			return 0, err
		}
		yw, err := ck.expr(e.Y, 0)
		if err != nil {
			return 0, err
		}
		if xw != yw {
			return 0, ck.errorf(e.Pos, "operand widths %d and %d differ for %s", xw, yw, e.Op)
		}
		return xw, nil
	}
}

// --- definite assignment ----------------------------------------------------

// definiteAssignment verifies that every wire and every comb-driven output
// is assigned on all paths through the comb blocks, so that synthesis never
// has to infer a latch.
func (ck *checker) definiteAssignment() error {
	targets := make(map[string]Pos)
	for _, w := range ck.c.Wires {
		targets[w.Name] = w.Pos
	}
	for _, p := range ck.c.Ports {
		if p.Dir == Output && ck.drivers[p.Name] == Comb {
			targets[p.Name] = p.Pos
		}
	}
	assigned := make(map[string]bool)
	for _, b := range ck.c.Blocks {
		if b.Kind != Comb {
			continue
		}
		if err := ck.defStmts(b.Stmts, assigned); err != nil {
			return err
		}
	}
	for name, pos := range targets {
		if !assigned[name] {
			return ck.errorf(pos, "combinational signal %q is not assigned on every path", name)
		}
	}
	return nil
}

// defStmts folds the definitely-assigned set through a statement list,
// checking wire reads against it, and returns via the assigned map.
func (ck *checker) defStmts(ss []Stmt, assigned map[string]bool) error {
	for _, s := range ss {
		if err := ck.defStmt(s, assigned); err != nil {
			return err
		}
	}
	return nil
}

func (ck *checker) defStmt(s Stmt, assigned map[string]bool) error {
	switch s := s.(type) {
	case *Assign:
		if err := ck.defExprRead(s.RHS, assigned); err != nil {
			return err
		}
		if s.LHS.Index == nil {
			assigned[s.LHS.Name] = true
		} else if !assigned[s.LHS.Name] {
			return ck.errorf(s.Pos, "bit assignment to %q before whole-signal initialization", s.LHS.Name)
		}
		return nil
	case *If:
		if err := ck.defExprRead(s.Cond, assigned); err != nil {
			return err
		}
		thenSet := copySet(assigned)
		if err := ck.defStmts(s.Then, thenSet); err != nil {
			return err
		}
		elseSet := copySet(assigned)
		if err := ck.defStmts(s.Else, elseSet); err != nil {
			return err
		}
		intersectInto(assigned, thenSet, elseSet)
		return nil
	case *Case:
		if err := ck.defExprRead(s.Subject, assigned); err != nil {
			return err
		}
		var branches []map[string]bool
		for _, arm := range s.Arms {
			set := copySet(assigned)
			if err := ck.defStmts(arm.Body, set); err != nil {
				return err
			}
			branches = append(branches, set)
		}
		complete := s.Default != nil || ck.caseCovers(s)
		if s.Default != nil {
			set := copySet(assigned)
			if err := ck.defStmts(s.Default, set); err != nil {
				return err
			}
			branches = append(branches, set)
		}
		if complete && len(branches) > 0 {
			intersectInto(assigned, branches...)
		}
		return nil
	case *For:
		// The loop always runs at least once (lo <= hi is enforced by the
		// parser), so its body's assignments are definite.
		return ck.defStmts(s.Body, assigned)
	default:
		return nil
	}
}

// caseCovers reports whether a case's arms enumerate every value of the
// subject's width (only feasible to check for widths up to 16 bits).
func (ck *checker) caseCovers(s *Case) bool {
	w := 0
	if bw, err := ck.expr(s.Subject, 0); err == nil {
		w = bw
	}
	if w == 0 || w > 16 {
		return false
	}
	seen := make(map[uint64]bool)
	for _, arm := range s.Arms {
		for _, l := range arm.Labels {
			switch l := l.(type) {
			case *Lit:
				seen[l.Raw] = true
			case *Ref:
				if k := ck.c.ConstByName(l.Name); k != nil {
					seen[k.Value.Uint()] = true
				}
			}
		}
	}
	return len(seen) >= 1<<uint(w)
}

func (ck *checker) defExprRead(e Expr, assigned map[string]bool) error {
	var readErr error
	walkExpr(e, Visitor{Expr: func(x Expr) {
		if readErr != nil {
			return
		}
		if r, ok := x.(*Ref); ok {
			if sym, exists := ck.syms[r.Name]; exists && sym.kind == symWire && !assigned[r.Name] {
				readErr = ck.errorf(r.Pos, "wire %q read before assignment", r.Name)
			}
		}
	}})
	return readErr
}

func copySet(m map[string]bool) map[string]bool {
	n := make(map[string]bool, len(m))
	for k, v := range m {
		n[k] = v
	}
	return n
}

// intersectInto replaces dst with the intersection of the given sets.
func intersectInto(dst map[string]bool, sets ...map[string]bool) {
	for k := range dst {
		delete(dst, k)
	}
	if len(sets) == 0 {
		return
	}
	for k := range sets[0] {
		inAll := true
		for _, s := range sets[1:] {
			if !s[k] {
				inAll = false
				break
			}
		}
		if inAll {
			dst[k] = true
		}
	}
}

// AssignedSignals returns the set of signal names assigned (anywhere,
// including conditionally) by blocks of the given kind. The simulator and
// synthesizer use it to classify outputs as registered or combinational.
func (c *Circuit) AssignedSignals(kind BlockKind) map[string]bool {
	out := make(map[string]bool)
	for _, b := range c.Blocks {
		if b.Kind != kind {
			continue
		}
		walkStmts(b.Stmts, Visitor{Stmt: func(s Stmt) {
			if a, ok := s.(*Assign); ok {
				out[a.LHS.Name] = true
			}
		}})
	}
	return out
}
