// Package hdl defines MHDL, the small VHDL-like register-transfer language
// that serves as the mutation substrate of this repository. It provides the
// abstract syntax tree, a lexer and recursive-descent parser, a width/type
// checker with definite-assignment analysis, and a source printer.
//
// MHDL deliberately mirrors the syntactic categories that the mutation
// operators of Al-Hayek & Robach (JETTA 1999) act on: named constants,
// variables (signals/registers), logical, relational, arithmetic and shift
// operators, if/case control flow, and clocked processes. A circuit is a
// single module with an implicit clock; sequential blocks (`seq`) update
// registers with two-phase semantics, combinational blocks (`comb`) drive
// wires and outputs within the cycle.
package hdl

import (
	"fmt"

	"repro/internal/bitvec"
)

// Pos is a source position (1-based line and column).
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Dir is a port direction.
type Dir int

// Port directions.
const (
	Input Dir = iota
	Output
)

func (d Dir) String() string {
	if d == Input {
		return "input"
	}
	return "output"
}

// Circuit is a parsed MHDL module: ports, state, named constants and the
// ordered list of seq/comb blocks.
type Circuit struct {
	Name   string
	Ports  []*Port
	Regs   []*Reg
	Wires  []*Wire
	Consts []*Const
	Blocks []*Block
}

// Port is an input or output of the circuit.
type Port struct {
	Name  string
	Width int
	Dir   Dir
	Pos   Pos
}

// Reg is a clocked state element. Init is its power-on value.
type Reg struct {
	Name  string
	Width int
	Init  bitvec.BV
	Pos   Pos
}

// Wire is a combinational intermediate signal driven by comb blocks.
type Wire struct {
	Name  string
	Width int
	Pos   Pos
}

// Const is a named compile-time constant. Constants are first-class
// mutation targets (the CR operator rewrites their uses' values).
type Const struct {
	Name  string
	Width int
	Value bitvec.BV
	Pos   Pos
}

// BlockKind distinguishes clocked from combinational blocks.
type BlockKind int

// Block kinds.
const (
	Seq BlockKind = iota
	Comb
)

func (k BlockKind) String() string {
	if k == Seq {
		return "seq"
	}
	return "comb"
}

// Block is a seq or comb process: an ordered statement list.
type Block struct {
	Kind  BlockKind
	Stmts []Stmt
	Pos   Pos
}

// Stmt is an MHDL statement.
type Stmt interface {
	stmtNode()
	StmtPos() Pos
}

// Assign writes RHS to a target signal, optionally a single bit of it.
type Assign struct {
	LHS *LValue
	RHS Expr
	Pos Pos
}

// LValue is an assignment target: a whole signal or one indexed bit.
type LValue struct {
	Name  string
	Index Expr // nil for whole-signal assignment; else a bit index
	Pos   Pos
}

// If is a two-way conditional. Else may be empty.
type If struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
	Pos  Pos
}

// Case selects an arm whose label list contains the subject's value.
type Case struct {
	Subject Expr
	Arms    []*CaseArm
	Default []Stmt // nil if absent
	Pos     Pos
}

// CaseArm is one `when` clause with one or more constant labels.
type CaseArm struct {
	Labels []Expr // literal or const refs, constant-folded by the checker
	Body   []Stmt
	Pos    Pos
}

// For is a bounded loop `for i in lo .. hi { ... }`, inclusive, unrolled at
// elaboration. The loop variable reads as an adaptable-width constant.
type For struct {
	Var    string
	Lo, Hi int
	Body   []Stmt
	Pos    Pos
}

func (*Assign) stmtNode() {}
func (*If) stmtNode()     {}
func (*Case) stmtNode()   {}
func (*For) stmtNode()    {}

// StmtPos returns the statement's source position.
func (s *Assign) StmtPos() Pos { return s.Pos }

// StmtPos returns the statement's source position.
func (s *If) StmtPos() Pos { return s.Pos }

// StmtPos returns the statement's source position.
func (s *Case) StmtPos() Pos { return s.Pos }

// StmtPos returns the statement's source position.
func (s *For) StmtPos() Pos { return s.Pos }

// Expr is an MHDL expression. Width is assigned by the checker; it is 0 on
// freshly parsed unsized literals until checking resolves the context.
type Expr interface {
	exprNode()
	ExprPos() Pos
	// ResultWidth reports the width assigned by the checker (0 = unresolved).
	ResultWidth() int
}

// Lit is an integer literal. Sized literals (`4'b1010`) carry their width
// from the source; unsized literals adapt to context during checking.
type Lit struct {
	Val   bitvec.BV // value; for unsized literals width is set by checker
	Raw   uint64    // original numeric value before sizing
	Sized bool      // whether the source carried an explicit width
	Width int       // resolved width (checker)
	Pos   Pos
}

// Ref names a port, register, wire, constant or loop variable.
type Ref struct {
	Name  string
	Width int // resolved width (checker); loop vars adapt like unsized lits
	Pos   Pos
}

// Index selects a single bit: X[I]. Result width is 1.
type Index struct {
	X   Expr
	I   Expr
	Pos Pos
}

// SliceExpr selects bits [Hi:Lo] of X, inclusive; width Hi-Lo+1.
type SliceExpr struct {
	X      Expr
	Hi, Lo int
	Pos    Pos
}

// UnOp is a unary operator.
type UnOp int

// Unary operators.
const (
	OpNot UnOp = iota // bitwise complement
	OpNeg             // two's-complement negation
	OpRedAnd
	OpRedOr
	OpRedXor
)

var unOpNames = map[UnOp]string{
	OpNot: "not", OpNeg: "-", OpRedAnd: "rand", OpRedOr: "ror", OpRedXor: "rxor",
}

func (op UnOp) String() string { return unOpNames[op] }

// Unary applies a unary operator.
type Unary struct {
	Op    UnOp
	X     Expr
	Width int
	Pos   Pos
}

// BinOp is a binary operator. The groupings below are exactly the operator
// classes the mutation operators substitute within.
type BinOp int

// Binary operators.
const (
	// logical (bitwise) — LOR class
	OpAnd BinOp = iota
	OpOr
	OpXor
	OpNand
	OpNor
	OpXnor
	// relational — ROR class
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	// arithmetic — AOR class
	OpAdd
	OpSub
	OpMul
	// shifts — SOR class
	OpShl
	OpShr
	// structural
	OpConcat
)

var binOpNames = map[BinOp]string{
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpNand: "nand", OpNor: "nor", OpXnor: "xnor",
	OpEq: "==", OpNe: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpAdd: "+", OpSub: "-", OpMul: "*", OpShl: "<<", OpShr: ">>", OpConcat: "++",
}

func (op BinOp) String() string { return binOpNames[op] }

// IsLogical reports whether op is in the LOR substitution class.
func (op BinOp) IsLogical() bool { return op >= OpAnd && op <= OpXnor }

// IsRelational reports whether op is in the ROR substitution class.
func (op BinOp) IsRelational() bool { return op >= OpEq && op <= OpGe }

// IsArithmetic reports whether op is in the AOR substitution class.
func (op BinOp) IsArithmetic() bool { return op >= OpAdd && op <= OpMul }

// IsShift reports whether op is in the SOR substitution class.
func (op BinOp) IsShift() bool { return op == OpShl || op == OpShr }

// Binary applies a binary operator.
type Binary struct {
	Op    BinOp
	X, Y  Expr
	Width int
	Pos   Pos
}

func (*Lit) exprNode()       {}
func (*Ref) exprNode()       {}
func (*Index) exprNode()     {}
func (*SliceExpr) exprNode() {}
func (*Unary) exprNode()     {}
func (*Binary) exprNode()    {}

// ExprPos returns the expression's source position.
func (e *Lit) ExprPos() Pos { return e.Pos }

// ExprPos returns the expression's source position.
func (e *Ref) ExprPos() Pos { return e.Pos }

// ExprPos returns the expression's source position.
func (e *Index) ExprPos() Pos { return e.Pos }

// ExprPos returns the expression's source position.
func (e *SliceExpr) ExprPos() Pos { return e.Pos }

// ExprPos returns the expression's source position.
func (e *Unary) ExprPos() Pos { return e.Pos }

// ExprPos returns the expression's source position.
func (e *Binary) ExprPos() Pos { return e.Pos }

// ResultWidth reports the checker-resolved width.
func (e *Lit) ResultWidth() int { return e.Width }

// ResultWidth reports the checker-resolved width.
func (e *Ref) ResultWidth() int { return e.Width }

// ResultWidth reports the checker-resolved width.
func (e *Index) ResultWidth() int { return 1 }

// ResultWidth reports the checker-resolved width.
func (e *SliceExpr) ResultWidth() int { return e.Hi - e.Lo + 1 }

// ResultWidth reports the checker-resolved width.
func (e *Unary) ResultWidth() int { return e.Width }

// ResultWidth reports the checker-resolved width.
func (e *Binary) ResultWidth() int { return e.Width }

// --- lookup helpers --------------------------------------------------------

// PortByName returns the named port, or nil.
func (c *Circuit) PortByName(name string) *Port {
	for _, p := range c.Ports {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// Inputs returns the circuit's input ports in declaration order.
func (c *Circuit) Inputs() []*Port {
	var in []*Port
	for _, p := range c.Ports {
		if p.Dir == Input {
			in = append(in, p)
		}
	}
	return in
}

// Outputs returns the circuit's output ports in declaration order.
func (c *Circuit) Outputs() []*Port {
	var out []*Port
	for _, p := range c.Ports {
		if p.Dir == Output {
			out = append(out, p)
		}
	}
	return out
}

// SignalWidth returns the width of a named port, reg, wire or const, or 0
// if the name is unknown.
func (c *Circuit) SignalWidth(name string) int {
	if p := c.PortByName(name); p != nil {
		return p.Width
	}
	for _, r := range c.Regs {
		if r.Name == name {
			return r.Width
		}
	}
	for _, w := range c.Wires {
		if w.Name == name {
			return w.Width
		}
	}
	for _, k := range c.Consts {
		if k.Name == name {
			return k.Width
		}
	}
	return 0
}

// ConstByName returns the named constant, or nil.
func (c *Circuit) ConstByName(name string) *Const {
	for _, k := range c.Consts {
		if k.Name == name {
			return k
		}
	}
	return nil
}

// --- deep clone -------------------------------------------------------------

// Clone returns a deep copy of the circuit. Mutation applies operators to a
// clone so the original AST is never aliased into a mutant.
func (c *Circuit) Clone() *Circuit {
	n := &Circuit{Name: c.Name}
	for _, p := range c.Ports {
		cp := *p
		n.Ports = append(n.Ports, &cp)
	}
	for _, r := range c.Regs {
		cr := *r
		n.Regs = append(n.Regs, &cr)
	}
	for _, w := range c.Wires {
		cw := *w
		n.Wires = append(n.Wires, &cw)
	}
	for _, k := range c.Consts {
		ck := *k
		n.Consts = append(n.Consts, &ck)
	}
	for _, b := range c.Blocks {
		n.Blocks = append(n.Blocks, &Block{Kind: b.Kind, Stmts: cloneStmts(b.Stmts), Pos: b.Pos})
	}
	return n
}

func cloneStmts(ss []Stmt) []Stmt {
	if ss == nil {
		return nil
	}
	out := make([]Stmt, len(ss))
	for i, s := range ss {
		out[i] = CloneStmt(s)
	}
	return out
}

// CloneStmt returns a deep copy of a statement.
func CloneStmt(s Stmt) Stmt {
	switch s := s.(type) {
	case *Assign:
		lv := *s.LHS
		if s.LHS.Index != nil {
			lv.Index = CloneExpr(s.LHS.Index)
		}
		return &Assign{LHS: &lv, RHS: CloneExpr(s.RHS), Pos: s.Pos}
	case *If:
		return &If{Cond: CloneExpr(s.Cond), Then: cloneStmts(s.Then), Else: cloneStmts(s.Else), Pos: s.Pos}
	case *Case:
		n := &Case{Subject: CloneExpr(s.Subject), Default: cloneStmts(s.Default), Pos: s.Pos}
		for _, a := range s.Arms {
			na := &CaseArm{Body: cloneStmts(a.Body), Pos: a.Pos}
			for _, l := range a.Labels {
				na.Labels = append(na.Labels, CloneExpr(l))
			}
			n.Arms = append(n.Arms, na)
		}
		return n
	case *For:
		return &For{Var: s.Var, Lo: s.Lo, Hi: s.Hi, Body: cloneStmts(s.Body), Pos: s.Pos}
	default:
		panic(fmt.Sprintf("hdl: unknown statement %T", s))
	}
}

// CloneExpr returns a deep copy of an expression.
func CloneExpr(e Expr) Expr {
	switch e := e.(type) {
	case *Lit:
		n := *e
		return &n
	case *Ref:
		n := *e
		return &n
	case *Index:
		return &Index{X: CloneExpr(e.X), I: CloneExpr(e.I), Pos: e.Pos}
	case *SliceExpr:
		return &SliceExpr{X: CloneExpr(e.X), Hi: e.Hi, Lo: e.Lo, Pos: e.Pos}
	case *Unary:
		return &Unary{Op: e.Op, X: CloneExpr(e.X), Width: e.Width, Pos: e.Pos}
	case *Binary:
		return &Binary{Op: e.Op, X: CloneExpr(e.X), Y: CloneExpr(e.Y), Width: e.Width, Pos: e.Pos}
	default:
		panic(fmt.Sprintf("hdl: unknown expression %T", e))
	}
}

// --- walking ----------------------------------------------------------------

// Visitor receives every statement and expression of a circuit in a stable
// depth-first, declaration order. The same circuit always produces the same
// visit sequence, which is what lets the mutation engine address sites by
// ordinal.
type Visitor struct {
	// Stmt, if non-nil, is called for every statement before its children.
	Stmt func(s Stmt)
	// Expr, if non-nil, is called for every expression before its children.
	Expr func(e Expr)
}

// Walk traverses the circuit's blocks in order.
func Walk(c *Circuit, v Visitor) {
	for _, b := range c.Blocks {
		walkStmts(b.Stmts, v)
	}
}

func walkStmts(ss []Stmt, v Visitor) {
	for _, s := range ss {
		walkStmt(s, v)
	}
}

func walkStmt(s Stmt, v Visitor) {
	if v.Stmt != nil {
		v.Stmt(s)
	}
	switch s := s.(type) {
	case *Assign:
		if s.LHS.Index != nil {
			walkExpr(s.LHS.Index, v)
		}
		walkExpr(s.RHS, v)
	case *If:
		walkExpr(s.Cond, v)
		walkStmts(s.Then, v)
		walkStmts(s.Else, v)
	case *Case:
		walkExpr(s.Subject, v)
		for _, a := range s.Arms {
			for _, l := range a.Labels {
				walkExpr(l, v)
			}
			walkStmts(a.Body, v)
		}
		walkStmts(s.Default, v)
	case *For:
		walkStmts(s.Body, v)
	}
}

func walkExpr(e Expr, v Visitor) {
	if v.Expr != nil {
		v.Expr(e)
	}
	switch e := e.(type) {
	case *Index:
		walkExpr(e.X, v)
		walkExpr(e.I, v)
	case *SliceExpr:
		walkExpr(e.X, v)
	case *Unary:
		walkExpr(e.X, v)
	case *Binary:
		walkExpr(e.X, v)
		walkExpr(e.Y, v)
	}
}
