package hdl

import (
	"fmt"
	"strconv"
	"strings"
)

// tokenKind enumerates lexical token classes.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber // value in num; sized carries numWidth > 0
	tokPunct  // one of the punctuation/operator strings
	tokKeyword
)

var keywords = map[string]bool{
	"circuit": true, "input": true, "output": true, "reg": true, "wire": true,
	"const": true, "seq": true, "comb": true, "if": true, "else": true,
	"case": true, "when": true, "default": true, "for": true, "in": true,
	"bit": true, "bits": true,
	"and": true, "or": true, "xor": true, "nand": true, "nor": true,
	"xnor": true, "not": true, "rand": true, "ror": true, "rxor": true,
}

type token struct {
	kind     tokenKind
	text     string
	num      uint64
	numWidth int // >0 when the literal carried an explicit width
	pos      Pos
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// Error is a parse or check error with a source position.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

type lexer struct {
	src  string
	off  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

func (l *lexer) errorf(pos Pos, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) peekByte() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) skipSpaceAndComments() error {
	for l.off < len(l.src) {
		c := l.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.off+1 < len(l.src) && l.src[l.off+1] == '/':
			for l.off < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		case c == '/' && l.off+1 < len(l.src) && l.src[l.off+1] == '*':
			pos := Pos{l.line, l.col}
			l.advance()
			l.advance()
			for {
				if l.off >= len(l.src) {
					return l.errorf(pos, "unterminated block comment")
				}
				if l.peekByte() == '*' && l.off+1 < len(l.src) && l.src[l.off+1] == '/' {
					l.advance()
					l.advance()
					break
				}
				l.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
}

func isIdentPart(c byte) bool { return isIdentStart(c) || ('0' <= c && c <= '9') }

func isDigit(c byte) bool { return '0' <= c && c <= '9' }

// multi-byte punctuation, longest first.
var puncts = []string{
	"==", "!=", "<=", ">=", "<<", ">>", "++", "..",
	"{", "}", "(", ")", "[", "]", ":", ";", "=", ",", "+", "-", "*", "<", ">",
}

func (l *lexer) next() (token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return token{}, err
	}
	pos := Pos{l.line, l.col}
	if l.off >= len(l.src) {
		return token{kind: tokEOF, pos: pos}, nil
	}
	c := l.peekByte()
	switch {
	case isIdentStart(c):
		start := l.off
		for l.off < len(l.src) && isIdentPart(l.peekByte()) {
			l.advance()
		}
		text := l.src[start:l.off]
		kind := tokIdent
		if keywords[text] {
			kind = tokKeyword
		}
		return token{kind: kind, text: text, pos: pos}, nil
	case isDigit(c):
		return l.lexNumber(pos)
	}
	for _, p := range puncts {
		if strings.HasPrefix(l.src[l.off:], p) {
			for range p {
				l.advance()
			}
			return token{kind: tokPunct, text: p, pos: pos}, nil
		}
	}
	return token{}, l.errorf(pos, "unexpected character %q", string(c))
}

// lexNumber handles: decimal (123), 0b/0x prefixed, and Verilog-style sized
// literals N'bXXX / N'dNNN / N'hXX.
func (l *lexer) lexNumber(pos Pos) (token, error) {
	start := l.off
	for l.off < len(l.src) && isDigit(l.peekByte()) {
		l.advance()
	}
	dec := l.src[start:l.off]

	// Sized literal: width'<base>digits
	if l.peekByte() == '\'' {
		width, err := strconv.Atoi(dec)
		if err != nil || width < 1 || width > 64 {
			return token{}, l.errorf(pos, "bad literal width %q", dec)
		}
		l.advance() // consume '
		if l.off >= len(l.src) {
			return token{}, l.errorf(pos, "unterminated sized literal")
		}
		base := l.advance()
		var radix int
		switch base {
		case 'b':
			radix = 2
		case 'd':
			radix = 10
		case 'h', 'x':
			radix = 16
		default:
			return token{}, l.errorf(pos, "bad literal base %q", string(base))
		}
		dstart := l.off
		for l.off < len(l.src) && (isIdentPart(l.peekByte()) || l.peekByte() == '_') {
			l.advance()
		}
		digits := strings.ReplaceAll(l.src[dstart:l.off], "_", "")
		v, err := strconv.ParseUint(digits, radix, 64)
		if err != nil {
			return token{}, l.errorf(pos, "bad literal digits %q: %v", digits, err)
		}
		if width < 64 && v >= 1<<uint(width) {
			return token{}, l.errorf(pos, "literal value %d does not fit in %d bits", v, width)
		}
		return token{kind: tokNumber, text: l.src[start:l.off], num: v, numWidth: width, pos: pos}, nil
	}

	// 0b / 0x prefixes.
	if dec == "0" && (l.peekByte() == 'b' || l.peekByte() == 'x') {
		base := l.advance()
		radix := 2
		if base == 'x' {
			radix = 16
		}
		dstart := l.off
		for l.off < len(l.src) && (isIdentPart(l.peekByte()) || l.peekByte() == '_') {
			l.advance()
		}
		digits := strings.ReplaceAll(l.src[dstart:l.off], "_", "")
		v, err := strconv.ParseUint(digits, radix, 64)
		if err != nil {
			return token{}, l.errorf(pos, "bad literal digits %q: %v", digits, err)
		}
		// 0b literals carry their digit count as width, like VHDL bit strings.
		width := 0
		if radix == 2 {
			width = len(digits)
		} else {
			width = 4 * len(digits)
		}
		if width > 64 {
			return token{}, l.errorf(pos, "literal wider than 64 bits")
		}
		return token{kind: tokNumber, text: l.src[start:l.off], num: v, numWidth: width, pos: pos}, nil
	}

	v, err := strconv.ParseUint(dec, 10, 64)
	if err != nil {
		return token{}, l.errorf(pos, "bad number %q: %v", dec, err)
	}
	return token{kind: tokNumber, text: dec, num: v, pos: pos}, nil
}
