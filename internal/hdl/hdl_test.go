package hdl

import (
	"strings"
	"testing"
)

const counterSrc = `
// 3-bit saturating counter with enable.
circuit counter {
  input en : bit;
  input rst : bit;
  output q : bits(3);
  output sat : bit;
  reg cnt : bits(3);
  const LIMIT : bits(3) = 3'd6;
  seq {
    if rst == 1 {
      cnt = 3'd0;
    } else if en == 1 and cnt < LIMIT {
      cnt = cnt + 1;
    }
  }
  comb {
    q = cnt;
    sat = cnt == LIMIT;
  }
}
`

func mustParse(t *testing.T, src string) *Circuit {
	t.Helper()
	c, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return c
}

func TestParseCounter(t *testing.T) {
	c := mustParse(t, counterSrc)
	if c.Name != "counter" {
		t.Errorf("name = %q", c.Name)
	}
	if len(c.Inputs()) != 2 || len(c.Outputs()) != 2 {
		t.Errorf("ports: %d in, %d out", len(c.Inputs()), len(c.Outputs()))
	}
	if len(c.Regs) != 1 || c.Regs[0].Width != 3 {
		t.Errorf("regs = %+v", c.Regs)
	}
	if k := c.ConstByName("LIMIT"); k == nil || k.Value.Uint() != 6 {
		t.Errorf("const LIMIT = %+v", k)
	}
	if len(c.Blocks) != 2 || c.Blocks[0].Kind != Seq || c.Blocks[1].Kind != Comb {
		t.Errorf("blocks wrong: %+v", c.Blocks)
	}
}

func TestSignalWidth(t *testing.T) {
	c := mustParse(t, counterSrc)
	cases := map[string]int{"en": 1, "q": 3, "cnt": 3, "LIMIT": 3, "nosuch": 0}
	for name, want := range cases {
		if got := c.SignalWidth(name); got != want {
			t.Errorf("SignalWidth(%q) = %d, want %d", name, got, want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"garbage", "bogus", "expected"},
		{"dup decl", "circuit x { input a : bit; reg a : bit; seq { a = 1; } }", "duplicate"},
		{"assign input", "circuit x { input a : bit; output o : bit; comb { a = 1; o = a; } }", "cannot assign to input"},
		{"assign const", "circuit x { const K : bit = 1; output o : bit; comb { K = 0; o = K; } }", "cannot assign to constant"},
		{"reg in comb", "circuit x { reg r : bit; output o : bit; comb { r = 1; o = r; } }", "outside a seq block"},
		{"wire in seq", "circuit x { wire w : bit; output o : bit; input i : bit; seq { w = 1; } comb { o = i; } }", "outside a comb block"},
		{"undeclared", "circuit x { output o : bit; comb { o = zz; } }", "undeclared"},
		{"width mismatch", "circuit x { input a : bits(3); input b : bits(4); output o : bit; comb { o = rxor (a xor b); } }", "width"},
		{"lit too wide", "circuit x { input a : bits(2); output o : bit; comb { o = a == 9; } }", "does not fit"},
		{"bad index", "circuit x { input a : bits(3); output o : bit; comb { o = a[5]; } }", "out of range"},
		{"bad slice", "circuit x { input a : bits(3); output o : bits(2); comb { o = a[4:3]; } }", "out of range"},
		{"both drivers", "circuit x { input i : bit; output o : bit; seq { o = i; } comb { o = i; } }", "both seq and comb"},
		{"not definitely assigned", "circuit x { input i : bit; output o : bit; comb { if i == 1 { o = 1; } } }", "not assigned on every path"},
		{"wire read before assign", "circuit x { input i : bit; wire w : bit; output o : bit; comb { o = w; w = i; } }", "read before assignment"},
		{"unterminated comment", "circuit x { /* oops", "unterminated"},
		{"sized literal overflow", "circuit x { output o : bits(2); comb { o = 2'd7; } }", "does not fit"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil {
				t.Fatalf("no error for %q", tc.src)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

func TestCaseCoverageSatisfiesDefiniteAssignment(t *testing.T) {
	src := `
circuit x {
  input s : bits(2);
  output o : bit;
  comb {
    case s {
      when 2'd0, 2'd1: { o = 0; }
      when 2'd2: { o = 1; }
      when 2'd3: { o = 1; }
    }
  }
}`
	if _, err := Parse(src); err != nil {
		t.Fatalf("complete case rejected: %v", err)
	}
	incomplete := strings.Replace(src, "when 2'd3: { o = 1; }", "", 1)
	if _, err := Parse(incomplete); err == nil {
		t.Fatal("incomplete case without default accepted")
	}
}

func TestRelaxedModeToleratesMissingAssignment(t *testing.T) {
	src := "circuit x { input i : bit; output o : bit; comb { if i == 1 { o = 1; } } }"
	c, err := ParseOnly(src)
	if err != nil {
		t.Fatalf("ParseOnly: %v", err)
	}
	if err := Check(c, Relaxed); err != nil {
		t.Fatalf("Relaxed check failed: %v", err)
	}
	if err := Check(c, Strict); err == nil {
		t.Fatal("Strict check passed unexpectedly")
	}
}

func TestFormatRoundTrip(t *testing.T) {
	c1 := mustParse(t, counterSrc)
	src2 := Format(c1)
	c2, err := Parse(src2)
	if err != nil {
		t.Fatalf("re-parse of formatted source failed: %v\n%s", err, src2)
	}
	src3 := Format(c2)
	if src2 != src3 {
		t.Errorf("format not stable:\n%s\nvs\n%s", src2, src3)
	}
}

func TestCloneIsDeep(t *testing.T) {
	c := mustParse(t, counterSrc)
	clone := c.Clone()
	// Mutate the clone's first seq assignment and verify the original is intact.
	var cloneAssign *Assign
	Walk(clone, Visitor{Stmt: func(s Stmt) {
		if a, ok := s.(*Assign); ok && cloneAssign == nil {
			cloneAssign = a
		}
	}})
	if cloneAssign == nil {
		t.Fatal("no assign found in clone")
	}
	cloneAssign.LHS.Name = "HACKED"
	found := false
	Walk(c, Visitor{Stmt: func(s Stmt) {
		if a, ok := s.(*Assign); ok && a.LHS.Name == "HACKED" {
			found = true
		}
	}})
	if found {
		t.Error("mutating clone affected original")
	}
}

func TestWalkOrderIsStable(t *testing.T) {
	c := mustParse(t, counterSrc)
	collect := func(circ *Circuit) []string {
		var seq []string
		Walk(circ, Visitor{
			Stmt: func(s Stmt) { seq = append(seq, "S") },
			Expr: func(e Expr) { seq = append(seq, FormatExpr(e)) },
		})
		return seq
	}
	a := collect(c)
	b := collect(c.Clone())
	if strings.Join(a, "|") != strings.Join(b, "|") {
		t.Errorf("walk order differs between circuit and clone:\n%v\n%v", a, b)
	}
	if len(a) < 10 {
		t.Errorf("walk visited too few nodes: %d", len(a))
	}
}

func TestSizedLiteralForms(t *testing.T) {
	src := `
circuit lits {
  input a : bits(8);
  output o : bit;
  comb {
    o = (a == 8'b0000_1111) or (a == 8'hF0) or (a == 8'd7) or (a == 0x0F);
  }
}`
	if _, err := Parse(src); err != nil {
		t.Fatalf("sized literal forms rejected: %v", err)
	}
}

func TestForLoopParsing(t *testing.T) {
	src := `
circuit parity8 {
  input a : bits(8);
  output p : bit;
  wire acc : bits(9);
  comb {
    acc = 9'd0;
    for i in 0 .. 7 {
      acc[i + 1] = acc[i] xor a[i];
    }
    p = acc[8];
  }
}`
	c := mustParse(t, src)
	var loop *For
	Walk(c, Visitor{Stmt: func(s Stmt) {
		if f, ok := s.(*For); ok {
			loop = f
		}
	}})
	if loop == nil || loop.Lo != 0 || loop.Hi != 7 || loop.Var != "i" {
		t.Fatalf("loop parsed wrong: %+v", loop)
	}
}

func TestElseIfChain(t *testing.T) {
	src := `
circuit chain {
  input a : bits(2);
  output o : bits(2);
  comb {
    if a == 2'd0 { o = 2'd3; }
    else if a == 2'd1 { o = 2'd2; }
    else { o = 2'd0; }
  }
}`
	c := mustParse(t, src)
	ifs := 0
	Walk(c, Visitor{Stmt: func(s Stmt) {
		if _, ok := s.(*If); ok {
			ifs++
		}
	}})
	if ifs != 2 {
		t.Errorf("else-if chain: %d ifs, want 2", ifs)
	}
}

func TestConcatAndSlice(t *testing.T) {
	src := `
circuit cat {
  input hi : bits(4);
  input lo : bits(4);
  output o : bits(8);
  output mid : bits(2);
  comb {
    o = hi ++ lo;
    mid = o[4:3];
  }
}`
	mustParse(t, src)
}

func TestLoopVariableShadowRejected(t *testing.T) {
	src := `
circuit shadow {
  input a : bits(2);
  output o : bits(2);
  comb {
    o = 2'd0;
    for a in 0 .. 1 { o[a] = 1; }
  }
}`
	if _, err := Parse(src); err == nil || !strings.Contains(err.Error(), "shadows") {
		t.Fatalf("want shadow error, got %v", err)
	}
}
