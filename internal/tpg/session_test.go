package tpg

import (
	"fmt"
	"testing"

	"repro/internal/circuits"
	"repro/internal/engine"
	"repro/internal/faultsim"
	"repro/internal/mutation"
	"repro/internal/synth"
)

// sameResult asserts two generation results are bit-identical: the
// sequences, kill flags, round counts and segment boundaries all match.
func sameResult(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if got.Rounds != want.Rounds {
		t.Errorf("%s: rounds %d, want %d", label, got.Rounds, want.Rounds)
	}
	if len(got.Seq) != len(want.Seq) {
		t.Fatalf("%s: sequence length %d, want %d", label, len(got.Seq), len(want.Seq))
	}
	for cyc := range want.Seq {
		if vectorsDiffer(got.Seq[cyc], want.Seq[cyc]) {
			t.Fatalf("%s: cycle %d differs", label, cyc)
		}
	}
	if len(got.Killed) != len(want.Killed) {
		t.Fatalf("%s: %d kill flags, want %d", label, len(got.Killed), len(want.Killed))
	}
	for i := range want.Killed {
		if got.Killed[i] != want.Killed[i] {
			t.Errorf("%s: kill flag %d is %v, want %v", label, i, got.Killed[i], want.Killed[i])
		}
	}
	if len(got.Segments) != len(want.Segments) {
		t.Fatalf("%s: %d segments, want %d", label, len(got.Segments), len(want.Segments))
	}
	for i := range want.Segments {
		if got.Segments[i] != want.Segments[i] {
			t.Errorf("%s: segment %d ends at %d, want %d", label, i, got.Segments[i], want.Segments[i])
		}
	}
}

// TestSessionMatchesMutationTests is the acceptance pin: a Session over
// the full population must reproduce the one-shot MutationTests result
// exactly — for full-population runs, for subset runs against one-shot
// runs over the same subset, for repeated (state-reusing) runs, and at
// several Workers settings (LaneWords is documented inert here, but the
// engine surface is exercised anyway).
func TestSessionMatchesMutationTests(t *testing.T) {
	for _, name := range []string{"b01", "b06"} {
		t.Run(name, func(t *testing.T) {
			c := circuits.MustLoad(name)
			ms := mutation.Generate(c, mutation.CR, mutation.LOR, mutation.ROR)
			if len(ms) < 6 {
				t.Fatalf("population too small: %d", len(ms))
			}
			for _, mode := range []Mode{PerMutant, PerMutantSkip, Greedy} {
				for _, eng := range []engine.Options{{}, {Workers: 1}, {Workers: 3, LaneWords: 4}} {
					label := fmt.Sprintf("mode=%d/workers=%d/lanewords=%d", mode, eng.Workers, eng.LaneWords)
					opts := &Options{Options: eng, Mode: mode, Seed: 17, MaxLen: 200}
					want, err := MutationTests(c, ms, opts)
					if err != nil {
						t.Fatal(err)
					}
					s, err := NewSession(c, ms, opts)
					if err != nil {
						t.Fatal(err)
					}
					got, err := s.Generate(nil, nil)
					if err != nil {
						t.Fatal(err)
					}
					sameResult(t, label+"/full", got, want)

					// Re-running the same campaign on the same session must
					// reproduce it: machine state fully resets between runs.
					again, err := s.Generate(nil, nil)
					if err != nil {
						t.Fatal(err)
					}
					sameResult(t, label+"/rerun", again, want)

					// A subset run must equal a one-shot over that subset.
					subset := []int{0, 2, 3, len(ms) - 1}
					subMuts := make([]*mutation.Mutant, len(subset))
					for i, mi := range subset {
						subMuts[i] = ms[mi]
					}
					wantSub, err := MutationTests(c, subMuts, opts)
					if err != nil {
						t.Fatal(err)
					}
					gotSub, err := s.Generate(subset, opts)
					if err != nil {
						t.Fatal(err)
					}
					sameResult(t, label+"/subset", gotSub, wantSub)
				}
			}
		})
	}
}

// TestSessionGenerateRejectsBadTarget pins target-index validation.
func TestSessionGenerateRejectsBadTarget(t *testing.T) {
	c := circuits.MustLoad("b01")
	ms := mutation.Generate(c, mutation.CR)
	s, err := NewSession(c, ms, &Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Generate([]int{0, len(ms)}, nil); err == nil {
		t.Error("out-of-range target index accepted")
	}
	if _, err := s.Generate([]int{-1}, nil); err == nil {
		t.Error("negative target index accepted")
	}
	if _, err := s.Generate([]int{1, 0, 1}, nil); err == nil {
		t.Error("duplicate target index accepted (would alias one machine)")
	}
}

// TestSessionIncrementalFaultSim pins the round-based integration: the
// cumulative result the attached incremental simulator reports must be
// bit-identical to one-shot fault-simulating the final sequence, and
// every recorded round coverage must equal a one-shot run of that
// prefix. This is exactly the prefix re-simulation the session API
// eliminates.
func TestSessionIncrementalFaultSim(t *testing.T) {
	c := circuits.MustLoad("b01")
	ms := mutation.Generate(c, mutation.CR, mutation.ROR)
	nl, err := synth.Synthesize(c)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := faultsim.New(nl, nil)
	if err != nil {
		t.Fatal(err)
	}
	opts := &Options{Seed: 5, MaxLen: 120}
	s, err := NewSession(c, ms, opts)
	if err != nil {
		t.Fatal(err)
	}
	s.AttachFaultSim(fs)
	res, err := s.Generate(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.FaultSim == nil {
		t.Fatal("no fault-sim result on an attached session")
	}
	if len(res.RoundCoverage) != len(res.Segments) {
		t.Fatalf("%d round coverages for %d segments", len(res.RoundCoverage), len(res.Segments))
	}
	if res.FaultSim.Patterns != len(res.Seq) {
		t.Fatalf("fault sim covered %d cycles for a %d-cycle sequence", res.FaultSim.Patterns, len(res.Seq))
	}

	// One-shot reference: a fresh simulator over the final sequence.
	oneshot, err := faultsim.New(nl, nil)
	if err != nil {
		t.Fatal(err)
	}
	full, err := oneshot.Run(ToPatterns(c, res.Seq))
	if err != nil {
		t.Fatal(err)
	}
	for i := range full.FirstDetected {
		if res.FaultSim.FirstDetected[i] != full.FirstDetected[i] {
			t.Errorf("fault %d: incremental first-detect %d, one-shot %d",
				i, res.FaultSim.FirstDetected[i], full.FirstDetected[i])
		}
	}
	for k, end := range res.Segments {
		prefix, err := oneshot.Run(ToPatterns(c, res.Seq[:end]))
		if err != nil {
			t.Fatal(err)
		}
		if got, want := res.RoundCoverage[k], prefix.Coverage(); got != want {
			t.Errorf("round %d (cycle %d): incremental coverage %v, prefix re-sim %v", k, end, got, want)
		}
	}
}

// TestSessionProgress checks the per-target progress reports of the
// dedicated disciplines: monotone completion counts ending at the
// target-set size.
func TestSessionProgress(t *testing.T) {
	c := circuits.MustLoad("b01")
	ms := mutation.Generate(c, mutation.CR)
	var reports []engine.Stats
	opts := &Options{Seed: 3}
	opts.Progress = func(s engine.Stats) { reports = append(reports, s) }
	s, err := NewSession(c, ms, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Generate(nil, nil); err != nil {
		t.Fatal(err)
	}
	if len(reports) == 0 {
		t.Fatal("no progress reports")
	}
	last := 0
	for _, r := range reports {
		if r.Total != len(ms) {
			t.Fatalf("report total %d, want %d", r.Total, len(ms))
		}
		if r.Done < last {
			t.Fatalf("progress went backwards: %d after %d", r.Done, last)
		}
		last = r.Done
	}
	if last != len(ms) {
		t.Errorf("final progress %d, want %d", last, len(ms))
	}
}
