package tpg

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/bitvec"
	"repro/internal/engine"
	"repro/internal/faultsim"
	"repro/internal/hdl"
	"repro/internal/mutation"
	"repro/internal/sim"
)

// Session owns one circuit's compiled test-generation state across runs:
// the original's compiled machine and one compiled machine per mutant of
// the population. Construction pays for compilation exactly once;
// Generate then runs any number of independent generation campaigns —
// over the whole population or any subset, with per-run seeds, modes and
// limits — without recompiling anything. That is the shape the flow
// experiments need (the same population is targeted over and over with
// different samples, seeds and disciplines) and what the one-shot
// MutationTests API forced them to recompile every time.
//
// A Session can also drive an incremental fault simulator
// (AttachFaultSim): every accepted segment is appended to the simulator
// as it is accepted, so the growing sequence's gate-level coverage is
// maintained round by round against the live-fault frontier instead of
// re-simulating the accepted prefix after (or worse, during) every
// round.
//
// A Session is not safe for concurrent use; run one campaign at a time.
type Session struct {
	c        *hdl.Circuit
	mutants  []*mutation.Mutant
	opts     Options // session defaults, withDefaults applied
	seqShape bool

	orig     *sim.Machine
	machines []*sim.Machine // one per population mutant
	maxOuts  int            // widest output vector across orig and mutants

	fsim *faultsim.Simulator

	sc sessScratch
}

// sessScratch is the session's reusable campaign scratch, following the
// buffer-ownership discipline of internal/engine: the session owns these
// buffers, recycles them across candidate rounds and campaigns, and
// copies anything that escapes into a Result (accepted segment vectors,
// the final fault-sim snapshot), so callers still own everything a
// Generate returns. Without the recycling, every candidate round
// allocated fresh segments, step outputs and register snapshots — the
// dominant allocation source of a campaign by two orders of magnitude.
type sessScratch struct {
	segs     []sim.Sequence     // candidate segments, one buffer per candidate slot
	origOuts []sim.Vector       // original's outputs over the candidate being scored
	snapOrig []bitvec.BV        // original's register snapshot (candidate probe)
	snapMut  []bitvec.BV        // a mutant's register snapshot (candidate probe)
	want     sim.Vector         // original's step output (stepAll)
	got      sim.Vector         // a mutant's step output (stepAll, segKills)
	pats     []faultsim.Pattern // bit-blasted segment for the attached fault sim
}

// NewSession compiles the circuit and the whole mutant population under
// the session options (engine.Options.Workers sizes the compilation
// pool; Mode/Seed/limits become the defaults a nil-opts Generate runs
// with).
func NewSession(c *hdl.Circuit, mutants []*mutation.Mutant, opts *Options) (*Session, error) {
	seqShape := len(c.Regs) > 0 || len(c.AssignedSignals(hdl.Seq)) > 0
	s := &Session{
		c:        c,
		mutants:  mutants,
		opts:     opts.withDefaults(seqShape),
		seqShape: seqShape,
	}
	origProg, err := sim.Compile(c)
	if err != nil {
		return nil, err
	}
	s.orig = origProg.NewMachine()
	cs := make([]*hdl.Circuit, len(mutants))
	for i, m := range mutants {
		cs[i] = m.Circuit
	}
	progs, err := sim.CompileBatch(cs, s.opts.Workers)
	if err != nil {
		var be *sim.BatchError
		if errors.As(err, &be) {
			return nil, fmt.Errorf("tpg: mutant %d: %w", be.Index, be.Err)
		}
		return nil, fmt.Errorf("tpg: %w", err)
	}
	s.machines = make([]*sim.Machine, len(progs))
	s.maxOuts = origProg.NumOutputs()
	for i, p := range progs {
		s.machines[i] = p.NewMachine()
		s.maxOuts = max(s.maxOuts, p.NumOutputs())
	}
	return s, nil
}

// Targets returns the mutant population compiled into the session.
func (s *Session) Targets() []*mutation.Mutant { return s.mutants }

// AttachFaultSim connects an incremental gate-level fault simulator
// (built over the synthesized netlist of the session's circuit, so
// ToPatterns output matches its PI order). Every subsequent Generate
// resets the simulator, appends the reset cycle and then every accepted
// segment as it is accepted, and reports the cumulative coverage in
// Result.FaultSim / Result.RoundCoverage. Passing nil detaches.
func (s *Session) AttachFaultSim(fs *faultsim.Simulator) { s.fsim = fs }

// liveMutant tracks one target mutant's machine during generation.
type liveMutant struct {
	idx int // position in the run's target selection (Killed index)
	sim *sim.Machine
}

// Generate runs one full mutation-driven generation campaign over the
// population subset selected by targets (indices into Targets(); nil
// selects the whole population) and returns its result, with Killed
// indexed like the selection. opts overrides the session defaults for
// this run (nil runs the defaults); compilation is never repeated, so
// per-run options are free. The result is bit-identical to what
// MutationTests returns for the same selection and options — the parity
// is pinned by the session tests.
func (s *Session) Generate(targets []int, opts *Options) (*Result, error) {
	o := s.opts
	if opts != nil {
		o = opts.withDefaults(s.seqShape)
	}
	if targets == nil {
		targets = make([]int, len(s.mutants))
		for i := range targets {
			targets[i] = i
		}
	} else {
		seen := make([]bool, len(s.mutants))
		for _, mi := range targets {
			if mi < 0 || mi >= len(s.mutants) {
				return nil, fmt.Errorf("tpg: target index %d out of range [0,%d)", mi, len(s.mutants))
			}
			// A duplicate would alias one compiled machine across two
			// campaign slots and double-step it — reject it like
			// faultsim.RunOn rejects duplicate fault indices.
			if seen[mi] {
				return nil, fmt.Errorf("tpg: target index %d listed twice", mi)
			}
			seen[mi] = true
		}
	}
	r := &genRun{s: s, o: o, rng: rand.New(rand.NewSource(o.Seed))}
	return r.generate(targets)
}

// genRun is one in-progress generation campaign: the run options, the
// RNG, the live target set and the growing result. Its buffers live on
// the session (sessScratch), so consecutive campaigns recycle them.
type genRun struct {
	s     *Session
	o     Options
	rng   *rand.Rand
	all   []*liveMutant
	res   *Result
	ins   []*hdl.Port
	nOuts int // original's output count (mutants share the port list)
}

func (r *genRun) generate(targets []int) (*Result, error) {
	s := r.s
	if err := r.cancelled(); err != nil {
		return nil, err
	}
	r.all = make([]*liveMutant, 0, len(targets))
	for i, mi := range targets {
		r.all = append(r.all, &liveMutant{idx: i, sim: s.machines[mi]})
	}
	r.res = &Result{Killed: make([]bool, len(targets))}
	r.ins = s.c.Inputs()
	r.nOuts = s.orig.Program().NumOutputs()
	s.sc.want = engine.Grow(s.sc.want, r.nOuts)
	s.sc.got = engine.Grow(s.sc.got, s.maxOuts)

	// Cycle 0: reset vector, applied to everything.
	resetVec := make(sim.Vector, len(r.ins))
	for i, p := range r.ins {
		if p.Name == ResetInputName {
			resetVec[i] = bitvec.New(1, p.Width)
		} else {
			resetVec[i] = bitvec.Zero(p.Width)
		}
	}
	s.orig.Reset()
	for _, lm := range r.all {
		lm.sim.Reset()
	}
	if s.fsim != nil {
		s.fsim.Reset()
	}
	if err := r.stepAll(resetVec); err != nil {
		return nil, err
	}
	r.res.Seq = append(r.res.Seq, resetVec)
	if err := r.faultAppend(sim.Sequence{resetVec}, false); err != nil {
		return nil, err
	}

	if r.o.Mode == Greedy {
		if err := r.greedy(); err != nil {
			return nil, err
		}
		return r.finish(), nil
	}

	// PerMutant: every target gets a dedicated search for a killing
	// segment from the current stream state, whether or not an earlier
	// segment killed it collaterally (PerMutantSkip skips those).
	// Candidates are first screened against the target alone (cheap);
	// only qualifying segments pay for full collateral scoring (used as
	// the tie-break).
	for ti := range targets {
		if len(r.res.Seq) >= r.o.MaxLen {
			break
		}
		if r.o.Mode == PerMutantSkip && r.res.Killed[ti] {
			r.o.Report(ti+1, len(targets))
			continue
		}
		target := r.all[ti]
		found := false
		for round := 0; round < r.o.MaxStall && !found && len(r.res.Seq) < r.o.MaxLen; round++ {
			if err := r.cancelled(); err != nil {
				return nil, err
			}
			r.res.Rounds++
			var bestSeg sim.Sequence
			bestKills := -1
			for ci := 0; ci < r.o.Candidates; ci++ {
				seg := r.newSegment(ci)
				origOuts, err := r.origOutputs(seg)
				if err != nil {
					return nil, err
				}
				hits, err := r.segKills(target, seg, origOuts)
				if err != nil {
					return nil, err
				}
				if !hits {
					continue
				}
				kills, err := r.scoreCandidate(seg, origOuts)
				if err != nil {
					return nil, err
				}
				if kills > bestKills {
					bestSeg, bestKills = seg, kills
				}
			}
			if bestSeg != nil {
				if err := r.appendSegment(bestSeg); err != nil {
					return nil, err
				}
				found = true
			}
		}
		r.o.Report(ti+1, len(targets))
	}
	return r.finish(), nil
}

// finish detaches the result from session-owned state: the cumulative
// fault-sim profile is a view the next Append would overwrite, so the
// caller gets a clone, fetched once here rather than retained round by
// round. Everything else in the result is already fresh.
func (r *genRun) finish() *Result {
	if r.s.fsim != nil {
		r.res.FaultSim = r.s.fsim.Current().Clone()
	}
	return r.res
}

// greedy maximizes fresh kills per appended segment (best of Candidates).
func (r *genRun) greedy() error {
	stall := 0
	for r.liveCount() > 0 && len(r.res.Seq) < r.o.MaxLen && stall < r.o.MaxStall {
		if err := r.cancelled(); err != nil {
			return err
		}
		r.res.Rounds++
		var bestSeg sim.Sequence
		bestKills := 0
		for ci := 0; ci < r.o.Candidates; ci++ {
			seg := r.newSegment(ci)
			origOuts, err := r.origOutputs(seg)
			if err != nil {
				return err
			}
			kills, err := r.scoreCandidate(seg, origOuts)
			if err != nil {
				return err
			}
			if kills > bestKills || bestSeg == nil {
				bestSeg, bestKills = seg, kills
			}
		}
		if bestKills == 0 {
			stall++
			continue
		}
		stall = 0
		if err := r.appendSegment(bestSeg); err != nil {
			return err
		}
	}
	return nil
}

func (r *genRun) cancelled() error {
	if err := r.o.Cancelled(); err != nil {
		return fmt.Errorf("tpg: %w", err)
	}
	return nil
}

// stepAll advances the original and every target simulator (killed
// targets keep stepping so later dedicated segments see true state).
// Outputs land in session scratch; only the kill flags escape. stepAll
// is one machine cycle — //repro:step, so the campaign loop above it
// carries the Ctx polling obligation.
//
//repro:step
func (r *genRun) stepAll(v sim.Vector) error {
	sc := &r.s.sc
	want := sc.want[:r.nOuts]
	if err := r.s.orig.StepInto(v, want); err != nil {
		return err
	}
	for _, lm := range r.all {
		got := sc.got[:lm.sim.Program().NumOutputs()]
		if err := lm.sim.StepInto(v, got); err != nil {
			return err
		}
		if vectorsDiffer(want, got) {
			r.res.Killed[lm.idx] = true
		}
	}
	return nil
}

// fillRand overwrites v with one cycle of pseudo-random stimulus (reset
// held low). The RNG draw order matches the pre-scratch randVec exactly —
// one Uint64 per non-reset input, in declaration order — which keeps
// generated sequences bit-identical across the buffer recycling.
func (r *genRun) fillRand(v sim.Vector) {
	for i, p := range r.ins {
		if p.Name == ResetInputName {
			v[i] = bitvec.Zero(p.Width)
			continue
		}
		v[i] = bitvec.New(r.rng.Uint64(), p.Width)
	}
}

// origOutputs simulates a candidate segment on the original from the
// current state (restored afterwards) and returns its outputs. The rows
// are session scratch, valid until the next candidate is scored. The
// run is bounded by one candidate segment (//repro:step).
//
//repro:step
func (r *genRun) origOutputs(seg sim.Sequence) ([]sim.Vector, error) {
	sc := &r.s.sc
	sc.snapOrig = r.s.orig.SnapshotInto(sc.snapOrig)
	outs := engine.Grow(sc.origOuts, len(seg))
	sc.origOuts = outs
	for k, v := range seg {
		outs[k] = engine.Grow(outs[k], r.nOuts)
		if err := r.s.orig.StepInto(v, outs[k]); err != nil {
			return nil, err
		}
	}
	r.s.orig.Restore(sc.snapOrig)
	return outs, nil
}

// segKills simulates the segment on one live mutant (state restored)
// and reports whether its outputs diverge from the original's. Bounded
// by one candidate segment (//repro:step).
//
//repro:step
func (r *genRun) segKills(lm *liveMutant, seg sim.Sequence, origOuts []sim.Vector) (bool, error) {
	sc := &r.s.sc
	sc.snapMut = lm.sim.SnapshotInto(sc.snapMut)
	defer lm.sim.Restore(sc.snapMut)
	got := sc.got[:lm.sim.Program().NumOutputs()]
	for k, v := range seg {
		if err := lm.sim.StepInto(v, got); err != nil {
			return false, err
		}
		if vectorsDiffer(origOuts[k], got) {
			return true, nil
		}
	}
	return false, nil
}

// scoreCandidate counts fresh (still-live) kills for a candidate.
// Bounded by one candidate over the live mutants (//repro:step).
//
//repro:step
func (r *genRun) scoreCandidate(seg sim.Sequence, origOuts []sim.Vector) (int, error) {
	kills := 0
	for _, lm := range r.all {
		if r.res.Killed[lm.idx] {
			continue
		}
		k, err := r.segKills(lm, seg, origOuts)
		if err != nil {
			return 0, err
		}
		if k {
			kills++
		}
	}
	return kills, nil
}

func (r *genRun) liveCount() int {
	n := 0
	for _, k := range r.res.Killed {
		if !k {
			n++
		}
	}
	return n
}

// newSegment fills candidate slot ci's reusable segment buffer with
// fresh random cycles. The returned sequence stays valid for the whole
// round (each candidate has its own slot), then gets overwritten.
func (r *genRun) newSegment(ci int) sim.Sequence {
	segLen := min(r.o.SegmentLen, r.o.MaxLen-len(r.res.Seq))
	sc := &r.s.sc
	sc.segs = engine.Grow(sc.segs, r.o.Candidates)
	seg := engine.Grow(sc.segs[ci], segLen)
	sc.segs[ci] = seg
	for k := range seg {
		seg[k] = engine.Grow(seg[k], len(r.ins))
		r.fillRand(seg[k])
	}
	return seg
}

// appendSegment commits an accepted segment: the original and every
// target machine advance through it, the sequence grows (by copies — the
// candidate buffer is round scratch, the result is caller-owned), and —
// when a fault simulator is attached — the segment is appended
// incrementally and the round's cumulative coverage recorded. Bounded
// by one accepted segment (//repro:step).
//
//repro:step
func (r *genRun) appendSegment(seg sim.Sequence) error {
	for _, v := range seg {
		if err := r.stepAll(v); err != nil {
			return err
		}
		r.res.Seq = append(r.res.Seq, append(sim.Vector(nil), v...))
	}
	r.res.Segments = append(r.res.Segments, len(r.res.Seq))
	return r.faultAppend(seg, true)
}

// faultAppend extends the attached fault simulator (if any) with the
// given cycles; boundary marks an accepted-segment boundary whose
// cumulative coverage is recorded in RoundCoverage. The bit-blasted
// patterns are session scratch (the simulator does not retain them) and
// the returned Result is the simulator's session-owned view: coverage
// is read off it immediately and the view is dropped — finish() fetches
// and clones the final profile into the campaign result.
func (r *genRun) faultAppend(seg sim.Sequence, boundary bool) error {
	if r.s.fsim == nil {
		return nil
	}
	sc := &r.s.sc
	sc.pats = toPatternsInto(r.s.c, seg, sc.pats)
	fres, err := r.s.fsim.Append(sc.pats)
	if err != nil {
		return fmt.Errorf("tpg: fault sim: %w", err)
	}
	if boundary {
		r.res.RoundCoverage = append(r.res.RoundCoverage, fres.Coverage())
	}
	return nil
}
