// Package tpg generates test data: deterministic pseudo-random sequences
// (the paper's baseline, "pseudo-random test sets generally used as
// initial test sets") and mutation-driven validation sequences (the
// paper's contribution substrate: vectors selected because they kill live
// mutants of the behavioral description).
//
// Both generators produce behavioral sequences (sim.Sequence); ToPatterns
// bit-blasts them into gate-level patterns in the synthesizer's PI order
// so the same data drives the stuck-at fault simulator.
package tpg

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/bitvec"
	"repro/internal/faultsim"
	"repro/internal/hdl"
	"repro/internal/mutation"
	"repro/internal/sim"
)

// ResetInputName is the input-port name treated as a synchronous reset by
// the generators: asserted on the first cycle of every generated sequence
// and deasserted afterwards, which is how the benchmark harnesses of the
// ITC'99 suite drive their reset pins.
const ResetInputName = "reset"

// RandomSequence generates n cycles of pseudo-random stimulus for the
// circuit with a validation-style reset protocol: an input named "reset"
// is asserted only on cycle 0. Use it wherever behavioral test data is
// simulated from power-on (mutation campaigns, equivalence estimation).
func RandomSequence(c *hdl.Circuit, n int, seed int64) sim.Sequence {
	return randomSequence(c, n, seed, false)
}

// RawRandomSequence generates n cycles of fully pseudo-random stimulus —
// every input including reset toggles randomly. This models the paper's
// baseline: a gate-level pseudo-random test set has no notion of which
// primary input is the reset pin, which is precisely why it struggles to
// reach deep sequential states and why validation data re-use pays off.
func RawRandomSequence(c *hdl.Circuit, n int, seed int64) sim.Sequence {
	return randomSequence(c, n, seed, true)
}

func randomSequence(c *hdl.Circuit, n int, seed int64, rawReset bool) sim.Sequence {
	rng := rand.New(rand.NewSource(seed))
	ins := c.Inputs()
	seq := make(sim.Sequence, n)
	for cyc := range seq {
		v := make(sim.Vector, len(ins))
		for i, p := range ins {
			if p.Name == ResetInputName && !rawReset {
				if cyc == 0 {
					v[i] = bitvec.New(1, p.Width)
				} else {
					v[i] = bitvec.Zero(p.Width)
				}
				continue
			}
			v[i] = bitvec.New(rng.Uint64(), p.Width)
		}
		seq[cyc] = v
	}
	return seq
}

// ToPatterns bit-blasts a behavioral sequence into gate-level patterns in
// the synthesizer's PI order (input ports in declaration order, LSB
// first), one pattern per cycle.
func ToPatterns(c *hdl.Circuit, seq sim.Sequence) []faultsim.Pattern {
	ins := c.Inputs()
	nBits := 0
	for _, p := range ins {
		nBits += p.Width
	}
	out := make([]faultsim.Pattern, len(seq))
	for cyc, v := range seq {
		p := make(faultsim.Pattern, 0, nBits)
		for i, port := range ins {
			for b := 0; b < port.Width; b++ {
				p = append(p, uint8(v[i].Bit(b)))
			}
		}
		out[cyc] = p
	}
	return out
}

// Mode selects the mutation-driven generation discipline.
type Mode int

const (
	// PerMutant generates a dedicated killing segment for every target in
	// turn, in the style of constraint-based mutation test generation
	// (DeMillo & Offutt): even a mutant an earlier segment killed
	// collaterally contributes its own value-specific stimulus. This is
	// the default for generating validation data from a mutant sample.
	PerMutant Mode = iota
	// PerMutantSkip is PerMutant with mutation-adequate selection: targets
	// already killed when their turn comes are skipped, so only the
	// *hard* mutants of the target set shape the data. Operator-efficiency
	// profiling uses this mode — an operator's sampling weight should
	// reflect the marginal value of its difficult mutants.
	PerMutantSkip
	// Greedy maximizes kills per appended segment (best of Candidates),
	// producing near-minimal sequences. Kept as an ablation of the
	// generation discipline.
	Greedy
)

// Options tunes the mutation-driven generator.
type Options struct {
	// Mode selects the generation discipline (default PerMutant).
	Mode Mode
	// Seed drives all pseudo-random choices.
	Seed int64
	// SegmentLen is the number of cycles appended per accepted candidate
	// (1 for combinational circuits). Default 4 for sequential circuits,
	// 1 otherwise.
	SegmentLen int
	// Candidates is how many random candidate segments compete per round.
	// Default 8.
	Candidates int
	// MaxLen bounds the produced sequence length. Default 1024.
	MaxLen int
	// MaxStall stops the search after this many consecutive rounds without
	// a new kill. Default 12.
	MaxStall int
}

func (o *Options) withDefaults(sequential bool) Options {
	out := Options{SegmentLen: 1, Candidates: 8, MaxLen: 1024, MaxStall: 12}
	if sequential {
		out.SegmentLen = 4
	}
	if o == nil {
		return out
	}
	out.Mode = o.Mode
	if o.SegmentLen > 0 {
		out.SegmentLen = o.SegmentLen
	}
	if o.Candidates > 0 {
		out.Candidates = o.Candidates
	}
	if o.MaxLen > 0 {
		out.MaxLen = o.MaxLen
	}
	if o.MaxStall > 0 {
		out.MaxStall = o.MaxStall
	}
	out.Seed = o.Seed
	return out
}

// Result is the outcome of mutation-driven test generation.
type Result struct {
	// Seq is the selected validation sequence (starting with the reset
	// cycle). Every appended segment killed at least one target mutant.
	Seq sim.Sequence
	// Killed reports, per target mutant, whether the sequence kills it.
	Killed []bool
	// Rounds is the number of greedy rounds executed.
	Rounds int
}

// liveMutant tracks one target mutant's machine during generation.
type liveMutant struct {
	idx int
	sim *sim.Machine
}

// KilledCount returns the number of killed target mutants.
func (r *Result) KilledCount() int {
	n := 0
	for _, k := range r.Killed {
		if k {
			n++
		}
	}
	return n
}

// MutationTests builds a validation sequence that kills the given target
// mutants. In PerMutant mode (default) every target receives a dedicated
// killing segment — the constraint-based discipline of the paper's
// reference [2] — even when an earlier segment already killed it
// collaterally, which makes the data value-rich per sampled mutant. In
// Greedy mode each appended segment maximizes fresh kills and collaterally
// killed mutants are skipped, yielding near-minimal sequences.
func MutationTests(c *hdl.Circuit, targets []*mutation.Mutant, opts *Options) (*Result, error) {
	o := opts.withDefaults(len(c.Regs) > 0 || len(c.AssignedSignals(hdl.Seq)) > 0)
	rng := rand.New(rand.NewSource(o.Seed))

	// The search below steps the original plus every target on each
	// candidate segment, so the per-cycle cost dominates generation;
	// compiled machines replace the AST interpreter on this path.
	origProg, err := sim.Compile(c)
	if err != nil {
		return nil, err
	}
	orig := origProg.NewMachine()
	cs := make([]*hdl.Circuit, len(targets))
	for i, m := range targets {
		cs[i] = m.Circuit
	}
	progs, err := sim.CompileBatch(cs, 0)
	if err != nil {
		var be *sim.BatchError
		if errors.As(err, &be) {
			return nil, fmt.Errorf("tpg: mutant %d: %w", be.Index, be.Err)
		}
		return nil, fmt.Errorf("tpg: %w", err)
	}
	all := make([]*liveMutant, 0, len(targets))
	for i, p := range progs {
		all = append(all, &liveMutant{idx: i, sim: p.NewMachine()})
	}

	res := &Result{Killed: make([]bool, len(targets))}
	ins := c.Inputs()

	// Cycle 0: reset vector, applied to everything.
	resetVec := make(sim.Vector, len(ins))
	for i, p := range ins {
		if p.Name == ResetInputName {
			resetVec[i] = bitvec.New(1, p.Width)
		} else {
			resetVec[i] = bitvec.Zero(p.Width)
		}
	}
	orig.Reset()
	for _, lm := range all {
		lm.sim.Reset()
	}
	// stepAll advances the original and every target simulator (killed
	// targets keep stepping so later dedicated segments see true state).
	stepAll := func(v sim.Vector) error {
		want, err := orig.Step(v)
		if err != nil {
			return err
		}
		for _, lm := range all {
			got, err := lm.sim.Step(v)
			if err != nil {
				return err
			}
			if vectorsDiffer(want, got) {
				res.Killed[lm.idx] = true
			}
		}
		return nil
	}
	if err := stepAll(resetVec); err != nil {
		return nil, err
	}
	res.Seq = append(res.Seq, resetVec)

	randVec := func() sim.Vector {
		v := make(sim.Vector, len(ins))
		for i, p := range ins {
			if p.Name == ResetInputName {
				v[i] = bitvec.Zero(p.Width)
				continue
			}
			v[i] = bitvec.New(rng.Uint64(), p.Width)
		}
		return v
	}

	// origOutputs simulates a candidate segment on the original from the
	// current state (restored afterwards) and returns its outputs.
	origOutputs := func(seg sim.Sequence) ([]sim.Vector, error) {
		snap := orig.Snapshot()
		outs := make([]sim.Vector, len(seg))
		for k, v := range seg {
			out, err := orig.Step(v)
			if err != nil {
				return nil, err
			}
			outs[k] = out
		}
		orig.Restore(snap)
		return outs, nil
	}

	// segKills simulates the segment on one live mutant (state restored)
	// and reports whether its outputs diverge from the original's.
	segKills := func(lm *liveMutant, seg sim.Sequence, origOuts []sim.Vector) (bool, error) {
		snap := lm.sim.Snapshot()
		defer lm.sim.Restore(snap)
		for k, v := range seg {
			got, err := lm.sim.Step(v)
			if err != nil {
				return false, err
			}
			if vectorsDiffer(origOuts[k], got) {
				return true, nil
			}
		}
		return false, nil
	}

	// scoreCandidate counts fresh (still-live) kills for a candidate.
	scoreCandidate := func(seg sim.Sequence, origOuts []sim.Vector) (int, error) {
		kills := 0
		for _, lm := range all {
			if res.Killed[lm.idx] {
				continue
			}
			k, err := segKills(lm, seg, origOuts)
			if err != nil {
				return 0, err
			}
			if k {
				kills++
			}
		}
		return kills, nil
	}

	liveCount := func() int {
		n := 0
		for _, k := range res.Killed {
			if !k {
				n++
			}
		}
		return n
	}

	newSegment := func() sim.Sequence {
		segLen := min(o.SegmentLen, o.MaxLen-len(res.Seq))
		seg := make(sim.Sequence, segLen)
		for k := range seg {
			seg[k] = randVec()
		}
		return seg
	}

	appendSegment := func(seg sim.Sequence) error {
		for _, v := range seg {
			if err := stepAll(v); err != nil {
				return err
			}
			res.Seq = append(res.Seq, v)
		}
		return nil
	}

	if o.Mode == Greedy {
		stall := 0
		for liveCount() > 0 && len(res.Seq) < o.MaxLen && stall < o.MaxStall {
			res.Rounds++
			var bestSeg sim.Sequence
			bestKills := 0
			for ci := 0; ci < o.Candidates; ci++ {
				seg := newSegment()
				origOuts, err := origOutputs(seg)
				if err != nil {
					return nil, err
				}
				kills, err := scoreCandidate(seg, origOuts)
				if err != nil {
					return nil, err
				}
				if kills > bestKills || bestSeg == nil {
					bestSeg, bestKills = seg, kills
				}
			}
			if bestKills == 0 {
				stall++
				continue
			}
			stall = 0
			if err := appendSegment(bestSeg); err != nil {
				return nil, err
			}
		}
		return res, nil
	}

	// PerMutant: every target gets a dedicated search for a killing
	// segment from the current stream state, whether or not an earlier
	// segment killed it collaterally. Candidates are first screened
	// against the target alone (cheap); only qualifying segments pay for
	// full collateral scoring (used as the tie-break).
	for ti := range targets {
		if len(res.Seq) >= o.MaxLen {
			break
		}
		if o.Mode == PerMutantSkip && res.Killed[ti] {
			continue
		}
		target := all[ti]
		found := false
		for round := 0; round < o.MaxStall && !found && len(res.Seq) < o.MaxLen; round++ {
			res.Rounds++
			var bestSeg sim.Sequence
			bestKills := -1
			for ci := 0; ci < o.Candidates; ci++ {
				seg := newSegment()
				origOuts, err := origOutputs(seg)
				if err != nil {
					return nil, err
				}
				hits, err := segKills(target, seg, origOuts)
				if err != nil {
					return nil, err
				}
				if !hits {
					continue
				}
				kills, err := scoreCandidate(seg, origOuts)
				if err != nil {
					return nil, err
				}
				if kills > bestKills {
					bestSeg, bestKills = seg, kills
				}
			}
			if bestSeg != nil {
				if err := appendSegment(bestSeg); err != nil {
					return nil, err
				}
				found = true
			}
		}
	}
	return res, nil
}

func vectorsDiffer(a, b sim.Vector) bool {
	for i := range a {
		if !a[i].Equal(b[i]) {
			return true
		}
	}
	return false
}
