// Package tpg generates test data: deterministic pseudo-random sequences
// (the paper's baseline, "pseudo-random test sets generally used as
// initial test sets") and mutation-driven validation sequences (the
// paper's contribution substrate: vectors selected because they kill live
// mutants of the behavioral description).
//
// Both generators produce behavioral sequences (sim.Sequence); ToPatterns
// bit-blasts them into gate-level patterns in the synthesizer's PI order
// so the same data drives the stuck-at fault simulator.
package tpg

import (
	"math/rand"

	"repro/internal/bitvec"
	"repro/internal/engine"
	"repro/internal/faultsim"
	"repro/internal/hdl"
	"repro/internal/mutation"
	"repro/internal/sim"
)

// ResetInputName is the input-port name treated as a synchronous reset by
// the generators: asserted on the first cycle of every generated sequence
// and deasserted afterwards, which is how the benchmark harnesses of the
// ITC'99 suite drive their reset pins.
const ResetInputName = "reset"

// RandomSequence generates n cycles of pseudo-random stimulus for the
// circuit with a validation-style reset protocol: an input named "reset"
// is asserted only on cycle 0. Use it wherever behavioral test data is
// simulated from power-on (mutation campaigns, equivalence estimation).
func RandomSequence(c *hdl.Circuit, n int, seed int64) sim.Sequence {
	return randomSequence(c, n, seed, false)
}

// RawRandomSequence generates n cycles of fully pseudo-random stimulus —
// every input including reset toggles randomly. This models the paper's
// baseline: a gate-level pseudo-random test set has no notion of which
// primary input is the reset pin, which is precisely why it struggles to
// reach deep sequential states and why validation data re-use pays off.
func RawRandomSequence(c *hdl.Circuit, n int, seed int64) sim.Sequence {
	return randomSequence(c, n, seed, true)
}

func randomSequence(c *hdl.Circuit, n int, seed int64, rawReset bool) sim.Sequence {
	rng := rand.New(rand.NewSource(seed))
	ins := c.Inputs()
	seq := make(sim.Sequence, n)
	for cyc := range seq {
		v := make(sim.Vector, len(ins))
		for i, p := range ins {
			if p.Name == ResetInputName && !rawReset {
				if cyc == 0 {
					v[i] = bitvec.New(1, p.Width)
				} else {
					v[i] = bitvec.Zero(p.Width)
				}
				continue
			}
			v[i] = bitvec.New(rng.Uint64(), p.Width)
		}
		seq[cyc] = v
	}
	return seq
}

// ToPatterns bit-blasts a behavioral sequence into gate-level patterns in
// the synthesizer's PI order (input ports in declaration order, LSB
// first), one pattern per cycle. The patterns are freshly allocated and
// caller-owned.
func ToPatterns(c *hdl.Circuit, seq sim.Sequence) []faultsim.Pattern {
	return toPatternsInto(c, seq, nil)
}

// toPatternsInto is ToPatterns into a reusable buffer (rows recycled when
// capacity suffices) — the incremental fault-sim hookup bit-blasts every
// accepted segment, and the simulator does not retain the patterns, so
// the session reuses one buffer across rounds.
func toPatternsInto(c *hdl.Circuit, seq sim.Sequence, out []faultsim.Pattern) []faultsim.Pattern {
	ins := c.Inputs()
	nBits := 0
	for _, p := range ins {
		nBits += p.Width
	}
	out = engine.Grow(out, len(seq))
	for cyc, v := range seq {
		p := out[cyc][:0]
		if cap(p) < nBits {
			p = make(faultsim.Pattern, 0, nBits)
		}
		for i, port := range ins {
			for b := 0; b < port.Width; b++ {
				p = append(p, uint8(v[i].Bit(b)))
			}
		}
		out[cyc] = p
	}
	return out
}

// Mode selects the mutation-driven generation discipline.
type Mode int

const (
	// PerMutant generates a dedicated killing segment for every target in
	// turn, in the style of constraint-based mutation test generation
	// (DeMillo & Offutt): even a mutant an earlier segment killed
	// collaterally contributes its own value-specific stimulus. This is
	// the default for generating validation data from a mutant sample.
	PerMutant Mode = iota
	// PerMutantSkip is PerMutant with mutation-adequate selection: targets
	// already killed when their turn comes are skipped, so only the
	// *hard* mutants of the target set shape the data. Operator-efficiency
	// profiling uses this mode — an operator's sampling weight should
	// reflect the marginal value of its difficult mutants.
	PerMutantSkip
	// Greedy maximizes kills per appended segment (best of Candidates),
	// producing near-minimal sequences. Kept as an ablation of the
	// generation discipline.
	Greedy
)

// Options tunes the mutation-driven generator. It embeds the shared
// engine surface (engine.Options): Workers sizes the mutant batch
// compilation pool, Ctx cancels a running generation between candidate
// rounds, and Progress reports completed targets for the per-mutant
// disciplines. LaneWords has no effect here — candidate scoring is
// per-machine, not lane-packed.
type Options struct {
	engine.Options

	// Mode selects the generation discipline (default PerMutant).
	Mode Mode
	// Seed drives all pseudo-random choices.
	Seed int64
	// SegmentLen is the number of cycles appended per accepted candidate
	// (1 for combinational circuits). Default 4 for sequential circuits,
	// 1 otherwise.
	SegmentLen int
	// Candidates is how many random candidate segments compete per round.
	// Default 8.
	Candidates int
	// MaxLen bounds the produced sequence length. Default 1024.
	MaxLen int
	// MaxStall stops the search after this many consecutive rounds without
	// a new kill. Default 12.
	MaxStall int
}

func (o *Options) withDefaults(sequential bool) Options {
	out := Options{SegmentLen: 1, Candidates: 8, MaxLen: 1024, MaxStall: 12}
	if sequential {
		out.SegmentLen = 4
	}
	if o == nil {
		return out
	}
	out.Mode = o.Mode
	if o.SegmentLen > 0 {
		out.SegmentLen = o.SegmentLen
	}
	if o.Candidates > 0 {
		out.Candidates = o.Candidates
	}
	if o.MaxLen > 0 {
		out.MaxLen = o.MaxLen
	}
	if o.MaxStall > 0 {
		out.MaxStall = o.MaxStall
	}
	out.Seed = o.Seed
	out.Options = o.Options
	return out
}

// Result is the outcome of mutation-driven test generation.
type Result struct {
	// Seq is the selected validation sequence (starting with the reset
	// cycle). Every appended segment killed at least one target mutant.
	Seq sim.Sequence
	// Killed reports, per target mutant, whether the sequence kills it.
	Killed []bool
	// Rounds is the number of greedy rounds executed.
	Rounds int
	// Segments lists the sequence length after each accepted segment —
	// the round boundaries of the campaign.
	Segments []int
	// FaultSim is the cumulative gate-level result of the attached
	// incremental fault simulator (nil unless the generating Session had
	// one, see Session.AttachFaultSim): identical to one-shot
	// fault-simulating Seq, but maintained round by round. It is a
	// caller-owned clone, detached from the simulator session.
	FaultSim *faultsim.Result
	// RoundCoverage is the fault coverage after each accepted segment,
	// parallel to Segments (nil without an attached fault simulator).
	RoundCoverage []float64
}

// KilledCount returns the number of killed target mutants.
func (r *Result) KilledCount() int {
	n := 0
	for _, k := range r.Killed {
		if k {
			n++
		}
	}
	return n
}

// MutationTests builds a validation sequence that kills the given target
// mutants. In PerMutant mode (default) every target receives a dedicated
// killing segment — the constraint-based discipline of the paper's
// reference [2] — even when an earlier segment already killed it
// collaterally, which makes the data value-rich per sampled mutant. In
// Greedy mode each appended segment maximizes fresh kills and collaterally
// killed mutants are skipped, yielding near-minimal sequences.
//
// MutationTests is the one-shot convenience over Session: it compiles
// the targets, runs one campaign and discards the compilation. Callers
// that generate repeatedly against one population (different samples,
// seeds or disciplines) should hold a Session instead.
func MutationTests(c *hdl.Circuit, targets []*mutation.Mutant, opts *Options) (*Result, error) {
	s, err := NewSession(c, targets, opts)
	if err != nil {
		return nil, err
	}
	return s.Generate(nil, nil)
}

func vectorsDiffer(a, b sim.Vector) bool {
	for i := range a {
		if !a[i].Equal(b[i]) {
			return true
		}
	}
	return false
}
