package tpg

import (
	"testing"

	"repro/internal/circuits"
	"repro/internal/mutation"
	"repro/internal/sim"
)

func TestRandomSequenceShapeAndReset(t *testing.T) {
	c := circuits.MustLoad("b01")
	seq := RandomSequence(c, 50, 1)
	if len(seq) != 50 {
		t.Fatalf("length %d", len(seq))
	}
	ins := c.Inputs()
	resetIdx := -1
	for i, p := range ins {
		if p.Name == ResetInputName {
			resetIdx = i
		}
	}
	if resetIdx < 0 {
		t.Fatal("b01 has no reset input")
	}
	if !seq[0][resetIdx].IsTrue() {
		t.Error("reset not asserted on cycle 0")
	}
	for cyc := 1; cyc < len(seq); cyc++ {
		if seq[cyc][resetIdx].IsTrue() {
			t.Fatalf("reset asserted at cycle %d", cyc)
		}
	}
}

func TestRandomSequenceDeterministic(t *testing.T) {
	c := circuits.MustLoad("c432")
	a := RandomSequence(c, 20, 7)
	b := RandomSequence(c, 20, 7)
	for cyc := range a {
		for i := range a[cyc] {
			if !a[cyc][i].Equal(b[cyc][i]) {
				t.Fatalf("sequences differ at cycle %d", cyc)
			}
		}
	}
	other := RandomSequence(c, 20, 8)
	same := true
	for cyc := range a {
		for i := range a[cyc] {
			if !a[cyc][i].Equal(other[cyc][i]) {
				same = false
			}
		}
	}
	if same {
		t.Error("different seeds produced identical sequences")
	}
}

func TestToPatternsBitOrder(t *testing.T) {
	c := circuits.MustLoad("c432") // inputs ra,rb,rc,en : bits(9) each
	seq := RandomSequence(c, 3, 2)
	pats := ToPatterns(c, seq)
	if len(pats) != 3 {
		t.Fatalf("pattern count %d", len(pats))
	}
	if len(pats[0]) != 36 {
		t.Fatalf("pattern width %d, want 36", len(pats[0]))
	}
	// Bit k of input i must land at offset sum(widths[:i]) + k.
	for cyc := range seq {
		off := 0
		for i, p := range c.Inputs() {
			for b := 0; b < p.Width; b++ {
				if uint64(pats[cyc][off]) != seq[cyc][i].Bit(b) {
					t.Fatalf("cycle %d input %d bit %d mismatch", cyc, i, b)
				}
				off++
			}
		}
	}
}

func TestMutationTestsKillMostMutants(t *testing.T) {
	c := circuits.MustLoad("b01")
	ms := mutation.Generate(c, mutation.LOR, mutation.CR)
	res, err := MutationTests(c, ms, &Options{Seed: 3, MaxLen: 256})
	if err != nil {
		t.Fatal(err)
	}
	if res.KilledCount() == 0 {
		t.Fatal("no mutants killed")
	}
	frac := float64(res.KilledCount()) / float64(len(ms))
	if frac < 0.5 {
		t.Errorf("killed only %.0f%% of %d targets", 100*frac, len(ms))
	}
	t.Logf("killed %d/%d in %d cycles, %d rounds",
		res.KilledCount(), len(ms), len(res.Seq), res.Rounds)
}

func TestMutationTestsSequenceReplays(t *testing.T) {
	// The Killed flags must agree with an independent replay of Seq.
	c := circuits.MustLoad("b06")
	ms := mutation.Generate(c, mutation.CVR)
	res, err := MutationTests(c, ms, &Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	orig, _ := sim.New(c)
	origOuts, err := orig.Run(res.Seq)
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range ms {
		msim, _ := sim.New(m.Circuit)
		outs, err := msim.Run(res.Seq)
		if err != nil {
			t.Fatal(err)
		}
		killed := false
		for cyc := range outs {
			for j := range outs[cyc] {
				if !outs[cyc][j].Equal(origOuts[cyc][j]) {
					killed = true
				}
			}
		}
		if killed != res.Killed[i] {
			t.Errorf("mutant %d (%s): replay kill=%v, recorded %v", i, m.Desc, killed, res.Killed[i])
		}
	}
}

func TestMutationTestsRespectsMaxLen(t *testing.T) {
	c := circuits.MustLoad("b03")
	ms := mutation.Generate(c)
	res, err := MutationTests(c, ms, &Options{Seed: 1, MaxLen: 40})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seq) > 40 {
		t.Errorf("sequence length %d exceeds MaxLen 40", len(res.Seq))
	}
}

func TestMutationTestsDeterministic(t *testing.T) {
	c := circuits.MustLoad("b02")
	ms := mutation.Generate(c, mutation.ROR)
	r1, err := MutationTests(c, ms, &Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := MutationTests(c, ms, &Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Seq) != len(r2.Seq) || r1.KilledCount() != r2.KilledCount() {
		t.Fatalf("nondeterministic TG: %d/%d vs %d/%d cycles/kills",
			len(r1.Seq), r1.KilledCount(), len(r2.Seq), r2.KilledCount())
	}
}

func TestMutationTestsEmptyTargets(t *testing.T) {
	c := circuits.MustLoad("b02")
	res, err := MutationTests(c, nil, &Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seq) != 1 {
		t.Errorf("expected reset-only sequence, got %d cycles", len(res.Seq))
	}
}

func TestMutationTestsCombinational(t *testing.T) {
	c := circuits.MustLoad("c432")
	ms := mutation.Generate(c, mutation.LOR)
	res, err := MutationTests(c, ms, &Options{Seed: 4, MaxLen: 128})
	if err != nil {
		t.Fatal(err)
	}
	if res.KilledCount() == 0 {
		t.Fatal("no combinational mutants killed")
	}
	t.Logf("c432 LOR: killed %d/%d with %d vectors", res.KilledCount(), len(ms), len(res.Seq))
}

// TestOptionsWithDefaults pins every defaulted Options field, both for a
// nil receiver and for partially-filled options, so the field docs and
// withDefaults cannot drift apart again (MaxLen once said 512 while the
// code set 1024).
func TestOptionsWithDefaults(t *testing.T) {
	// Options embeds engine.Options (whose Progress hook makes the struct
	// non-comparable), so the pins compare the scalar fields explicitly.
	same := func(a, b Options) bool {
		return a.Mode == b.Mode && a.Seed == b.Seed &&
			a.SegmentLen == b.SegmentLen && a.Candidates == b.Candidates &&
			a.MaxLen == b.MaxLen && a.MaxStall == b.MaxStall &&
			a.Workers == b.Workers && a.LaneWords == b.LaneWords
	}
	for _, sequential := range []bool{false, true} {
		got := (*Options)(nil).withDefaults(sequential)
		want := Options{Mode: PerMutant, Seed: 0, SegmentLen: 1, Candidates: 8, MaxLen: 1024, MaxStall: 12}
		if sequential {
			want.SegmentLen = 4
		}
		if !same(got, want) {
			t.Errorf("nil options (sequential=%v): defaults %+v, want %+v", sequential, got, want)
		}
	}
	// Explicit values must pass through untouched — including the
	// embedded engine knobs.
	in := &Options{Mode: Greedy, Seed: 9, SegmentLen: 2, Candidates: 3, MaxLen: 64, MaxStall: 5}
	in.Workers = 3
	in.LaneWords = 4
	if got := in.withDefaults(true); !same(got, *in) {
		t.Errorf("explicit options rewritten: %+v, want %+v", got, *in)
	}
	// Zero fields of a non-nil struct still pick up defaults.
	part := (&Options{Seed: 7}).withDefaults(false)
	if part.MaxLen != 1024 || part.Candidates != 8 || part.MaxStall != 12 || part.SegmentLen != 1 {
		t.Errorf("partial options defaults wrong: %+v", part)
	}
	if part.Seed != 7 || part.Mode != PerMutant {
		t.Errorf("partial options lost explicit fields: %+v", part)
	}
}
