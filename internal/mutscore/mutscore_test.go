package mutscore

import (
	"testing"

	"repro/internal/circuits"
	"repro/internal/mutation"
	"repro/internal/sim"
	"repro/internal/tpg"
)

func TestKillsMatchFirstKillCycles(t *testing.T) {
	c := circuits.MustLoad("b06")
	ms := mutation.Generate(c)
	seq := tpg.RandomSequence(c, 100, 1)
	cycles, err := FirstKillCycles(c, ms, seq)
	if err != nil {
		t.Fatal(err)
	}
	killed, err := Kills(c, ms, seq)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ms {
		if killed[i] != (cycles[i] >= 0) {
			t.Fatalf("mutant %d: killed=%v cycle=%d", i, killed[i], cycles[i])
		}
		if cycles[i] >= len(seq) {
			t.Fatalf("mutant %d: kill cycle %d beyond sequence", i, cycles[i])
		}
	}
}

func TestKillsDeterministicAcrossRuns(t *testing.T) {
	// The worker pool must not introduce nondeterminism.
	c := circuits.MustLoad("b01")
	ms := mutation.Generate(c, mutation.VR, mutation.CR)
	seq := tpg.RandomSequence(c, 200, 2)
	a, err := Kills(c, ms, seq)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Kills(c, ms, seq)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("mutant %d kill flag differs between runs", i)
		}
	}
}

func TestLongerSequencesKillMore(t *testing.T) {
	c := circuits.MustLoad("b03")
	ms := mutation.Generate(c, mutation.LOR)
	short, err := Kills(c, ms, tpg.RandomSequence(c, 10, 3))
	if err != nil {
		t.Fatal(err)
	}
	long, err := Kills(c, ms, tpg.RandomSequence(c, 500, 3))
	if err != nil {
		t.Fatal(err)
	}
	count := func(ks []bool) int {
		n := 0
		for _, k := range ks {
			if k {
				n++
			}
		}
		return n
	}
	if count(long) < count(short) {
		t.Errorf("prefix-extension lost kills: %d -> %d", count(short), count(long))
	}
	if count(long) == 0 {
		t.Error("500 random cycles killed nothing")
	}
}

func TestScoreFormula(t *testing.T) {
	killed := []bool{true, true, false, false, false}
	equiv := []bool{false, false, true, false, false}
	// K=2, M=5, E=1 -> 2/4 = 0.5
	if got := Score(killed, equiv); got != 0.5 {
		t.Errorf("score = %v, want 0.5", got)
	}
	// Killed mutants flagged equivalent must not shrink the denominator.
	equivBad := []bool{true, false, true, false, false}
	if got := Score(killed, equivBad); got != 0.5 {
		t.Errorf("score with bad equiv flags = %v, want 0.5", got)
	}
	if Score(nil, nil) != 0 {
		t.Error("empty score not 0")
	}
}

func TestScorePanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	Score([]bool{true}, []bool{})
}

func TestEstimateEquivalence(t *testing.T) {
	c := circuits.MustLoad("b02")
	ms := mutation.Generate(c)
	equiv, err := EstimateEquivalence(c, ms, nil, &EquivalenceOptions{Budget: 1024, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	nEquiv := 0
	for _, e := range equiv {
		if e {
			nEquiv++
		}
	}
	if nEquiv == len(ms) {
		t.Fatal("campaign killed nothing; equivalence estimate vacuous")
	}
	// Every mutant killed by the campaign is by definition not equivalent;
	// re-running with a superset budget must never flag MORE mutants.
	equiv2, err := EstimateEquivalence(c, ms, nil, &EquivalenceOptions{Budget: 2048, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range equiv {
		if equiv2[i] && !equiv[i] {
			t.Errorf("mutant %d became equivalent with a larger budget", i)
		}
	}
	t.Logf("b02: %d/%d probably equivalent", nEquiv, len(ms))
}

func TestEstimateEquivalenceUsesExtraSequences(t *testing.T) {
	c := circuits.MustLoad("b01")
	ms := mutation.Generate(c, mutation.CR)
	// A tiny random budget leaves many mutants "equivalent"; adding a
	// targeted extra sequence can only clear flags, never add them.
	small, err := EstimateEquivalence(c, ms, nil, &EquivalenceOptions{Budget: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tpg.MutationTests(c, ms, &tpg.Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	withSeq, err := EstimateEquivalence(c, ms, []sim.Sequence{res.Seq}, &EquivalenceOptions{Budget: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	countTrue := func(b []bool) int {
		n := 0
		for _, v := range b {
			if v {
				n++
			}
		}
		return n
	}
	if countTrue(withSeq) > countTrue(small) {
		t.Errorf("extra sequence increased equivalence count: %d > %d",
			countTrue(withSeq), countTrue(small))
	}
	if res.KilledCount() > 0 && countTrue(withSeq) >= countTrue(small) && countTrue(small) > 0 &&
		countTrue(withSeq) == countTrue(small) {
		t.Logf("note: targeted sequence cleared no additional flags (possible but unusual)")
	}
}
