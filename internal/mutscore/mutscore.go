// Package mutscore measures test-set quality against a mutant population:
// killed/live classification, the mutation score MS = K / (M - E), and the
// budgeted-campaign estimate of the equivalent-mutant count E. Mutant
// simulation is embarrassingly parallel and runs on a worker pool.
package mutscore

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/hdl"
	"repro/internal/mutation"
	"repro/internal/sim"
	"repro/internal/tpg"
)

// FirstKillCycles runs every mutant against the sequence and returns, per
// mutant, the first cycle whose outputs differ from the original's, or -1
// if the sequence never distinguishes it.
func FirstKillCycles(c *hdl.Circuit, mutants []*mutation.Mutant, seq sim.Sequence) ([]int, error) {
	origSim, err := sim.New(c)
	if err != nil {
		return nil, err
	}
	origOuts, err := origSim.Run(seq)
	if err != nil {
		return nil, err
	}

	out := make([]int, len(mutants))
	errs := make([]error, len(mutants))
	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0)
	if workers > len(mutants) && len(mutants) > 0 {
		workers = len(mutants)
	}
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i], errs[i] = firstKill(mutants[i], seq, origOuts)
			}
		}()
	}
	for i := range mutants {
		next <- i
	}
	close(next)
	wg.Wait()
	for i, e := range errs {
		if e != nil {
			return nil, fmt.Errorf("mutscore: mutant %d (%s): %w", i, mutants[i].Desc, e)
		}
	}
	return out, nil
}

func firstKill(m *mutation.Mutant, seq sim.Sequence, origOuts []sim.Vector) (int, error) {
	ms, err := sim.New(m.Circuit)
	if err != nil {
		return -1, err
	}
	ms.Reset()
	for cyc, v := range seq {
		got, err := ms.Step(v)
		if err != nil {
			return -1, err
		}
		for j := range got {
			if !got[j].Equal(origOuts[cyc][j]) {
				return cyc, nil
			}
		}
	}
	return -1, nil
}

// Kills classifies each mutant as killed (true) or live under the sequence.
func Kills(c *hdl.Circuit, mutants []*mutation.Mutant, seq sim.Sequence) ([]bool, error) {
	cycles, err := FirstKillCycles(c, mutants, seq)
	if err != nil {
		return nil, err
	}
	out := make([]bool, len(cycles))
	for i, cy := range cycles {
		out[i] = cy >= 0
	}
	return out, nil
}

// Score computes the mutation score MS = K / (M - E). Mutants flagged
// equivalent are excluded from the denominator; a killed mutant is never
// counted equivalent (the caller's equivalence estimate must already
// satisfy that, and Score enforces it defensively).
func Score(killed, equivalent []bool) float64 {
	if len(killed) != len(equivalent) {
		panic(fmt.Sprintf("mutscore: %d kill flags for %d equivalence flags", len(killed), len(equivalent)))
	}
	k, e := 0, 0
	for i := range killed {
		switch {
		case killed[i]:
			k++
		case equivalent[i]:
			e++
		}
	}
	denom := len(killed) - e
	if denom <= 0 {
		return 0
	}
	return float64(k) / float64(denom)
}

// EquivalenceOptions tunes the probable-equivalence campaign.
type EquivalenceOptions struct {
	// Budget is the number of random campaign cycles. Default 2048.
	Budget int
	// Seed drives the campaign stimulus.
	Seed int64
}

// EstimateEquivalence runs a budgeted campaign — a long pseudo-random
// sequence plus any caller-provided sequences — and flags as *probably
// equivalent* every mutant that nothing killed. True equivalence is
// undecidable in general; the paper's E term is approximated this way,
// with the budget as the knob (ablation A3 in DESIGN.md measures its
// sensitivity).
func EstimateEquivalence(c *hdl.Circuit, mutants []*mutation.Mutant, extra []sim.Sequence, opts *EquivalenceOptions) ([]bool, error) {
	o := EquivalenceOptions{Budget: 2048}
	if opts != nil {
		if opts.Budget > 0 {
			o.Budget = opts.Budget
		}
		o.Seed = opts.Seed
	}
	equivalent := make([]bool, len(mutants))
	for i := range equivalent {
		equivalent[i] = true
	}
	campaign := append([]sim.Sequence{tpg.RandomSequence(c, o.Budget, o.Seed)}, extra...)
	for _, seq := range campaign {
		if len(seq) == 0 {
			continue
		}
		killed, err := Kills(c, mutants, seq)
		if err != nil {
			return nil, err
		}
		for i, k := range killed {
			if k {
				equivalent[i] = false
			}
		}
	}
	return equivalent, nil
}
