// Package mutscore measures test-set quality against a mutant population:
// killed/live classification, the mutation score MS = K / (M - E), and the
// budgeted-campaign estimate of the equivalent-mutant count E.
//
// Mutant simulation is embarrassingly parallel. The default engine
// compiles every circuit once (sim.Compile) and scores lane batches of
// LaneWords×64 mutants in lockstep on a worker pool, with early-kill
// dropping against a shared good-circuit trace; Config.Workers sizes the
// pool, Config.LaneWords the batches, and a Scorer carries the
// compilation across calls so campaigns don't recompile. Workers == 1
// selects the legacy serial AST-interpreter path, kept for differential
// testing — all paths produce identical results (see parity_test.go).
package mutscore

import (
	"errors"
	"fmt"

	"repro/internal/engine"
	"repro/internal/hdl"
	"repro/internal/mutation"
	"repro/internal/sim"
	"repro/internal/tpg"
)

// Config tunes mutant scoring. The zero value is the fast default. The
// execution knobs are the shared engine surface (see engine.Options for
// the Workers/LaneWords semantics, the progress hook and cancellation):
// Workers == 1 selects the legacy serial interpreter path kept for
// differential testing, and LaneWords sizes the compiled engine's
// lockstep scoring batches (0 selects lane.DefaultWords). Results are
// identical for every setting (see parity_test.go).
type Config struct {
	engine.Options
}

func (cfg Config) legacy() bool { return cfg.Serial() }

// Scorer scores one mutant population against arbitrary sequences. The
// compiled engine's programs are built once at construction, and the
// execution state — one machine per mutant, the good machine and its
// trace buffer — is built on first use and recycled across calls, so
// callers that score repeatedly (strategy evaluation, equivalence
// campaigns) allocate per campaign, not per sequence. A Scorer is safe
// for sequential reuse only (its scratch is unsynchronized); methods are
// deterministic for every worker count.
type Scorer struct {
	cfg     Config
	c       *hdl.Circuit
	mutants []*mutation.Mutant
	good    *sim.Program   // nil on the legacy path
	progs   []*sim.Program // nil on the legacy path

	// Session-owned scratch (see internal/engine: the session owns its
	// scratch; results handed to callers stay freshly allocated).
	goodM    *sim.Machine   // good-trace machine, reused across calls
	goodOuts []sim.Vector   // good trace rows, reused across calls
	machines []*sim.Machine // per-mutant machines, armed lazily
	subM     []*sim.Machine // subset-call machine selection scratch
}

// NewScorer builds a scorer for the population. Under the legacy
// configuration (Workers == 1) no compilation happens and every call runs
// the serial interpreter.
func (cfg Config) NewScorer(c *hdl.Circuit, mutants []*mutation.Mutant) (*Scorer, error) {
	if _, err := cfg.Lanes(); err != nil {
		return nil, fmt.Errorf("mutscore: %w", err)
	}
	s := &Scorer{cfg: cfg, c: c, mutants: mutants}
	if cfg.legacy() {
		return s, nil
	}
	good, err := sim.Compile(c)
	if err != nil {
		return nil, err
	}
	cs := make([]*hdl.Circuit, len(mutants))
	for i, m := range mutants {
		cs[i] = m.Circuit
	}
	progs, err := sim.CompileBatch(cs, cfg.Workers)
	if err != nil {
		return nil, s.wrapBatchErr(err, nil)
	}
	s.good, s.progs = good, progs
	return s, nil
}

// wrapBatchErr attaches the failing mutant's identity to a pool error.
// idx maps batch positions back to population indices for subset runs.
func (s *Scorer) wrapBatchErr(err error, idx []int) error {
	var be *sim.BatchError
	if !errors.As(err, &be) {
		return err
	}
	mi := be.Index
	if idx != nil {
		mi = idx[be.Index]
	}
	return fmt.Errorf("mutscore: mutant %d (%s): %w", mi, s.mutants[mi].Desc, be.Err)
}

// goodTrace refreshes the scorer's reusable good-circuit trace for the
// sequence; the rows are session scratch, valid until the next call.
func (s *Scorer) goodTrace(seq sim.Sequence) ([]sim.Vector, error) {
	if s.goodM == nil {
		s.goodM = s.good.NewMachine()
	}
	outs, err := s.goodM.RunInto(seq, s.goodOuts)
	if err != nil {
		return nil, err
	}
	s.goodOuts = outs
	return outs, nil
}

// allMachines returns the scorer's per-mutant machine set, arming it on
// first use (one machine per compiled program, recycled across calls).
func (s *Scorer) allMachines() []*sim.Machine {
	if s.machines == nil {
		s.machines = make([]*sim.Machine, len(s.progs))
		for i, p := range s.progs {
			s.machines[i] = p.NewMachine()
		}
	}
	return s.machines
}

// FirstKillCycles runs every mutant against the sequence and returns, per
// mutant, the first cycle whose outputs differ from the original's, or -1
// if the sequence never distinguishes it.
func (s *Scorer) FirstKillCycles(seq sim.Sequence) ([]int, error) {
	if s.cfg.legacy() {
		return firstKillCyclesSerial(s.c, s.mutants, seq, s.cfg.Options)
	}
	goodOuts, err := s.goodTrace(seq)
	if err != nil {
		return nil, err
	}
	cycles, err := sim.FirstKillBatchMachines(s.allMachines(), seq, goodOuts, s.cfg.Options)
	if err != nil {
		return nil, s.wrapBatchErr(err, nil)
	}
	return cycles, nil
}

// Kills classifies each mutant as killed (true) or live under the sequence.
func (s *Scorer) Kills(seq sim.Sequence) ([]bool, error) {
	cycles, err := s.FirstKillCycles(seq)
	if err != nil {
		return nil, err
	}
	out := make([]bool, len(cycles))
	for i, cy := range cycles {
		out[i] = cy >= 0
	}
	return out, nil
}

// killsSubset scores only the mutants listed in idx and reports a kill
// flag per entry of idx, letting a campaign drop already-killed mutants.
func (s *Scorer) killsSubset(idx []int, seq sim.Sequence) ([]bool, error) {
	goodOuts, err := s.goodTrace(seq)
	if err != nil {
		return nil, err
	}
	all := s.allMachines()
	s.subM = engine.Grow(s.subM, len(idx))
	for i, mi := range idx {
		s.subM[i] = all[mi]
	}
	cycles, err := sim.FirstKillBatchMachines(s.subM, seq, goodOuts, s.cfg.Options)
	if err != nil {
		return nil, s.wrapBatchErr(err, idx)
	}
	out := make([]bool, len(cycles))
	for i, cy := range cycles {
		out[i] = cy >= 0
	}
	return out, nil
}

// EstimateEquivalence runs a budgeted campaign — a long pseudo-random
// sequence plus any caller-provided sequences — and flags as *probably
// equivalent* every mutant that nothing killed. True equivalence is
// undecidable in general; the paper's E term is approximated this way,
// with the budget as the knob. The compiled engine reuses the scorer's
// compilation across all campaign sequences and drops mutants at their
// first kill.
func (s *Scorer) EstimateEquivalence(extra []sim.Sequence, opts *EquivalenceOptions) ([]bool, error) {
	o := EquivalenceOptions{Budget: 2048}
	if opts != nil {
		if opts.Budget > 0 {
			o.Budget = opts.Budget
		}
		o.Seed = opts.Seed
	}
	equivalent := make([]bool, len(s.mutants))
	for i := range equivalent {
		equivalent[i] = true
	}
	campaign := append([]sim.Sequence{tpg.RandomSequence(s.c, o.Budget, o.Seed)}, extra...)

	if s.cfg.legacy() {
		for _, seq := range campaign {
			if len(seq) == 0 {
				continue
			}
			if err := s.cfg.Cancelled(); err != nil {
				return nil, fmt.Errorf("mutscore: %w", err)
			}
			killed, err := s.Kills(seq)
			if err != nil {
				return nil, err
			}
			for i, k := range killed {
				if k {
					equivalent[i] = false
				}
			}
		}
		return equivalent, nil
	}

	live := make([]int, len(s.mutants))
	for i := range live {
		live[i] = i
	}
	for _, seq := range campaign {
		if len(seq) == 0 || len(live) == 0 {
			continue
		}
		if err := s.cfg.Cancelled(); err != nil {
			return nil, fmt.Errorf("mutscore: %w", err)
		}
		killed, err := s.killsSubset(live, seq)
		if err != nil {
			return nil, err
		}
		still := live[:0]
		for i, k := range killed {
			if k {
				equivalent[live[i]] = false
			} else {
				still = append(still, live[i])
			}
		}
		live = still
	}
	return equivalent, nil
}

// --- one-shot conveniences ---------------------------------------------------

// FirstKillCycles scores the population against one sequence, compiling
// per call. Build a Scorer instead when scoring the same population
// repeatedly.
func (cfg Config) FirstKillCycles(c *hdl.Circuit, mutants []*mutation.Mutant, seq sim.Sequence) ([]int, error) {
	s, err := cfg.NewScorer(c, mutants)
	if err != nil {
		return nil, err
	}
	return s.FirstKillCycles(seq)
}

// Kills classifies each mutant as killed (true) or live under the sequence.
func (cfg Config) Kills(c *hdl.Circuit, mutants []*mutation.Mutant, seq sim.Sequence) ([]bool, error) {
	s, err := cfg.NewScorer(c, mutants)
	if err != nil {
		return nil, err
	}
	return s.Kills(seq)
}

// EstimateEquivalence runs the equivalence campaign with a freshly built
// scorer.
func (cfg Config) EstimateEquivalence(c *hdl.Circuit, mutants []*mutation.Mutant, extra []sim.Sequence, opts *EquivalenceOptions) ([]bool, error) {
	s, err := cfg.NewScorer(c, mutants)
	if err != nil {
		return nil, err
	}
	return s.EstimateEquivalence(extra, opts)
}

// FirstKillCycles runs every mutant against the sequence with the default
// configuration (compiled engine, all cores).
func FirstKillCycles(c *hdl.Circuit, mutants []*mutation.Mutant, seq sim.Sequence) ([]int, error) {
	return Config{}.FirstKillCycles(c, mutants, seq)
}

// Kills classifies each mutant as killed (true) or live under the
// sequence with the default configuration.
func Kills(c *hdl.Circuit, mutants []*mutation.Mutant, seq sim.Sequence) ([]bool, error) {
	return Config{}.Kills(c, mutants, seq)
}

// EstimateEquivalence runs the campaign with the default configuration.
func EstimateEquivalence(c *hdl.Circuit, mutants []*mutation.Mutant, extra []sim.Sequence, opts *EquivalenceOptions) ([]bool, error) {
	return Config{}.EstimateEquivalence(c, mutants, extra, opts)
}

// --- legacy serial path ------------------------------------------------------

// firstKillCyclesSerial is the original engine: one AST-walking
// interpreter run per mutant, strictly sequential. It is the reference
// the compiled pool is differentially tested against.
func firstKillCyclesSerial(c *hdl.Circuit, mutants []*mutation.Mutant, seq sim.Sequence, opts engine.Options) ([]int, error) {
	origSim, err := sim.New(c)
	if err != nil {
		return nil, err
	}
	origOuts, err := origSim.Run(seq)
	if err != nil {
		return nil, err
	}
	out := make([]int, len(mutants))
	for i, m := range mutants {
		if err := opts.Cancelled(); err != nil {
			return nil, fmt.Errorf("mutscore: %w", err)
		}
		cy, err := firstKillInterpreted(m, seq, origOuts)
		if err != nil {
			return nil, fmt.Errorf("mutscore: mutant %d (%s): %w", i, m.Desc, err)
		}
		out[i] = cy
		opts.Report(i+1, len(mutants))
	}
	return out, nil
}

func firstKillInterpreted(m *mutation.Mutant, seq sim.Sequence, origOuts []sim.Vector) (int, error) {
	ms, err := sim.New(m.Circuit)
	if err != nil {
		return -1, err
	}
	ms.Reset()
	for cyc, v := range seq {
		got, err := ms.Step(v)
		if err != nil {
			return -1, err
		}
		for j := range got {
			if !got[j].Equal(origOuts[cyc][j]) {
				return cyc, nil
			}
		}
	}
	return -1, nil
}

// --- scoring -----------------------------------------------------------------

// Score computes the mutation score MS = K / (M - E). Mutants flagged
// equivalent are excluded from the denominator; a killed mutant is never
// counted equivalent (the caller's equivalence estimate must already
// satisfy that, and Score enforces it defensively).
func Score(killed, equivalent []bool) float64 {
	if len(killed) != len(equivalent) {
		panic(fmt.Sprintf("mutscore: %d kill flags for %d equivalence flags", len(killed), len(equivalent)))
	}
	k, e := 0, 0
	for i := range killed {
		switch {
		case killed[i]:
			k++
		case equivalent[i]:
			e++
		}
	}
	denom := len(killed) - e
	if denom <= 0 {
		return 0
	}
	return float64(k) / float64(denom)
}

// EquivalenceOptions tunes the probable-equivalence campaign.
type EquivalenceOptions struct {
	// Budget is the number of random campaign cycles. Default 2048.
	Budget int
	// Seed drives the campaign stimulus.
	Seed int64
}
