package mutscore

import (
	"fmt"
	"testing"

	"repro/internal/circuits"
	"repro/internal/engine"
	"repro/internal/mutation"
	"repro/internal/sim"
	"repro/internal/tpg"
)

// parityConfigs spans the interesting engine settings: the legacy serial
// interpreter (Workers 1), and the compiled engine at every lane width ×
// {fixed pools, the all-cores default}.
var parityConfigs = []Config{
	cfgOf(1, 0),
	cfgOf(2, 1), cfgOf(5, 1), cfgOf(0, 1),
	cfgOf(2, 4), cfgOf(0, 4),
	cfgOf(2, 8), cfgOf(0, 8),
	cfgOf(0, 0), // LaneWords 0: the lane.DefaultWords production setting
}

// cfgOf abbreviates the embedded engine.Options literal in test tables.
func cfgOf(workers, laneWords int) Config {
	return Config{Options: engine.Options{Workers: workers, LaneWords: laneWords}}
}

// TestEngineParity is the differential guarantee the ISSUE demands:
// Workers: 1 (legacy serial interpreter) and every parallel compiled
// configuration produce identical FirstKillCycles, Kills and
// EstimateEquivalence results, on a combinational and a sequential
// benchmark.
func TestEngineParity(t *testing.T) {
	for _, name := range []string{"c17", "b01", "b06"} {
		t.Run(name, func(t *testing.T) {
			c := circuits.MustLoad(name)
			ms := mutation.Generate(c)
			if len(ms) == 0 {
				t.Fatal("no mutants")
			}
			seq := tpg.RandomSequence(c, 150, 21)

			var refCycles []int
			var refKills []bool
			var refEquiv []bool
			for _, cfg := range parityConfigs {
				label := fmt.Sprintf("workers=%d/lanewords=%d", cfg.Workers, cfg.LaneWords)
				cycles, err := cfg.FirstKillCycles(c, ms, seq)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				kills, err := cfg.Kills(c, ms, seq)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				equiv, err := cfg.EstimateEquivalence(c, ms, nil, &EquivalenceOptions{Budget: 256, Seed: 9})
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				if refCycles == nil {
					refCycles, refKills, refEquiv = cycles, kills, equiv
					continue
				}
				for i := range ms {
					if cycles[i] != refCycles[i] {
						t.Errorf("%s: mutant %d (%s) first-kill %d, serial %d",
							label, i, ms[i].Desc, cycles[i], refCycles[i])
					}
					if kills[i] != refKills[i] {
						t.Errorf("%s: mutant %d kill flag %v, serial %v", label, i, kills[i], refKills[i])
					}
					if equiv[i] != refEquiv[i] {
						t.Errorf("%s: mutant %d equivalence flag %v, serial %v", label, i, equiv[i], refEquiv[i])
					}
				}
				if t.Failed() {
					t.FailNow()
				}
			}
		})
	}
}

// TestEstimateEquivalenceParityWithExtras exercises the early-drop
// campaign path (mutants killed by the random budget are skipped for the
// extra sequences) against the legacy full-rescore path.
func TestEstimateEquivalenceParityWithExtras(t *testing.T) {
	c := circuits.MustLoad("b01")
	ms := mutation.Generate(c, mutation.CR, mutation.LOR)
	res, err := tpg.MutationTests(c, ms, &tpg.Options{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	opts := &EquivalenceOptions{Budget: 64, Seed: 17}
	serial, err := cfgOf(1, 0).EstimateEquivalence(c, ms, []sim.Sequence{res.Seq}, opts)
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := cfgOf(0, 0).EstimateEquivalence(c, ms, []sim.Sequence{res.Seq}, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i] != pooled[i] {
			t.Errorf("mutant %d: serial %v, pooled %v", i, serial[i], pooled[i])
		}
	}
}
