package netlist

import (
	"strings"
	"testing"
)

const fpBench = `# fingerprint fixture
INPUT(a)
INPUT(b)
OUTPUT(y)
t = AND(a, b)
y = OR(t, a)
`

func readBench(t *testing.T, src string) *Netlist {
	t.Helper()
	nl, err := ReadBench(strings.NewReader(src), "fp")
	if err != nil {
		t.Fatal(err)
	}
	return nl
}

// TestFingerprintStable pins that the fingerprint is a pure function of
// content: recomputing it, and re-parsing the same source, yield the
// same hash — the property that lets fingerprints travel between a
// campaign client, a server and its workers.
func TestFingerprintStable(t *testing.T) {
	a := readBench(t, fpBench)
	fp1, err := a.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	fp2, err := a.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fp1 != fp2 {
		t.Fatalf("fingerprint not stable across calls: %s vs %s", fp1, fp2)
	}
	b := readBench(t, fpBench)
	fp3, err := b.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fp1 != fp3 {
		t.Fatalf("fingerprint not stable across parses: %s vs %s", fp1, fp3)
	}
	if len(fp1) != 64 {
		t.Fatalf("fingerprint %q is not a sha256 hex digest", fp1)
	}
}

// TestFingerprintIgnoresNetlistName pins that the fingerprint is a
// content address: renaming the circuit must not invalidate its cached
// results.
func TestFingerprintIgnoresNetlistName(t *testing.T) {
	a := readBench(t, fpBench)
	b, err := ReadBench(strings.NewReader(fpBench), "other-name")
	if err != nil {
		t.Fatal(err)
	}
	fpA, err := a.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	fpB, err := b.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fpA != fpB {
		t.Fatalf("netlist name leaked into the fingerprint: %s vs %s", fpA, fpB)
	}
}

// TestFingerprintSensitivity: structural changes — a different gate
// function, a renamed port — must change the hash.
func TestFingerprintSensitivity(t *testing.T) {
	base := readBench(t, fpBench)
	fpBase, err := base.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	variants := []struct{ label, src string }{
		{"gate function", strings.Replace(fpBench, "AND(a, b)", "OR(a, b)", 1)},
		{"renamed PI", strings.NewReplacer("INPUT(b)", "INPUT(c)", "(a, b)", "(a, c)").Replace(fpBench)},
	}
	for _, v := range variants {
		fp, err := readBench(t, v.src).Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		if fp == fpBase {
			t.Errorf("%s: fingerprint did not change", v.label)
		}
	}
}
