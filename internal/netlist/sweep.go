package netlist

// Sweep returns a copy of the netlist with dead logic removed: every gate
// from which no primary output or flip-flop is reachable is dropped.
// Primary inputs are always kept (the tester drives them whether or not
// they feed live logic), as are all flip-flops' transitive cones.
//
// Synthesized netlists are already dead-free by construction; Sweep
// matters for netlists imported via ReadBench and for experiments that
// carve subcircuits. Fault lists must be regenerated after sweeping —
// gate IDs are renumbered.
func Sweep(n *Netlist) (*Netlist, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	live := make([]bool, len(n.Gates))
	var mark func(id int)
	mark = func(id int) {
		if live[id] {
			return
		}
		live[id] = true
		for _, f := range n.Gates[id].Fanin {
			mark(f)
		}
	}
	for _, id := range n.POs {
		mark(id)
	}
	// A flip-flop that feeds live logic needs its D cone; iterate until no
	// newly-live FFs appear (state chains).
	for {
		grew := false
		for _, id := range n.FFs {
			if live[id] && !live[n.Gates[id].Fanin[0]] {
				mark(n.Gates[id].Fanin[0])
				grew = true
			}
		}
		if !grew {
			break
		}
	}
	for _, id := range n.PIs {
		live[id] = true
	}

	out := New(n.Name)
	remap := make([]int, len(n.Gates))
	for i := range remap {
		remap[i] = -1
	}
	// Recreate gates in original ID order so fanins always resolve.
	for _, g := range n.Gates {
		if !live[g.ID] {
			continue
		}
		switch g.Type {
		case PI:
			remap[g.ID] = out.AddInput(g.Name)
		case DFF:
			remap[g.ID] = out.AddDFF(g.Name, g.Init)
		default:
			fanin := make([]int, len(g.Fanin))
			for j, f := range g.Fanin {
				fanin[j] = remap[f]
			}
			id := out.AddGate(g.Type, fanin...)
			out.Gates[id].Name = g.Name
			remap[g.ID] = id
		}
	}
	for _, id := range n.FFs {
		if live[id] {
			out.SetDFFInput(remap[id], remap[n.Gates[id].Fanin[0]])
		}
	}
	for i, id := range n.POs {
		out.MarkOutput(remap[id], n.PONames[i])
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}
