package netlist

import (
	"math/rand"
	"testing"

	"repro/internal/lane"
)

// randomLaneStates fills every FF vector of a width-W machine with
// random bits and returns the raw vectors for reference.
func randomLaneStates[W lane.Word](m *Machine[W], rng *rand.Rand) []W {
	st := m.State()
	for i := range st {
		for k := 0; k < len(st[i]); k++ {
			st[i][k] = rng.Uint64()
		}
	}
	m.SetState(st)
	return st
}

// laneBit reads FF i of lane ln out of a raw state vector slice.
func laneBit[W lane.Word](st []W, i, ln int) uint64 {
	return st[i][ln>>6] >> uint(ln&63) & 1
}

// testLaneStateRoundTrip pins LaneStateInto/SetLaneState at one width:
// extraction matches the raw vectors bit for bit, implanting into a
// different lane reproduces the source lane there, and no other lane's
// state is disturbed.
func testLaneStateRoundTrip[W lane.Word](t *testing.T, seed int64) {
	nl := randomNetlist(t, seed, 4, 67, 40) // 67 FFs: packed state spills into a second word
	p, err := Compile(nl)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	m := NewMachine[W](p)
	st := randomLaneStates(m, rng)
	L := lane.Count[W]()
	var row []uint64
	for _, src := range []int{0, L / 2, L - 1} {
		row = m.LaneStateInto(src, row)
		for i := range st {
			if got, want := row[i>>6]>>uint(i&63)&1, laneBit(st, i, src); got != want {
				t.Fatalf("lane %d FF %d: extracted %d, state vector has %d", src, i, got, want)
			}
		}
		dst := (src + 1) % L
		other := NewMachine[W](p)
		before := randomLaneStates(other, rng)
		other.SetLaneState(dst, row)
		after := other.State()
		for i := range after {
			for ln := 0; ln < L; ln++ {
				want := laneBit(before, i, ln)
				if ln == dst {
					want = laneBit(st, i, src)
				}
				if got := laneBit(after, i, ln); got != want {
					t.Fatalf("implant into lane %d: FF %d lane %d is %d, want %d", dst, i, ln, got, want)
				}
			}
		}
	}
}

func TestLaneStateRoundTrip(t *testing.T) {
	t.Run("W1", func(t *testing.T) { testLaneStateRoundTrip[lane.W1](t, 41) })
	t.Run("W4", func(t *testing.T) { testLaneStateRoundTrip[lane.W4](t, 42) })
	t.Run("W8", func(t *testing.T) { testLaneStateRoundTrip[lane.W8](t, 43) })
}

func mustPanic(t *testing.T, label string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: no panic", label)
		}
	}()
	f()
}

func TestLaneStateBounds(t *testing.T) {
	nl := randomNetlist(t, 3, 4, 10, 30)
	p, err := Compile(nl)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine[lane.W4](p)
	row := m.LaneStateInto(0, nil)
	mustPanic(t, "extract lane -1", func() { m.LaneStateInto(-1, nil) })
	mustPanic(t, "extract lane 256", func() { m.LaneStateInto(256, nil) })
	mustPanic(t, "implant lane 256", func() { m.SetLaneState(256, row) })
	mustPanic(t, "implant short src", func() { m.SetLaneState(0, row[:0]) })
}

// TestLaneStateCrossWidthTransplant is the property the re-planner rests
// on: carrying one lane's flip-flop state from a wide machine onto a
// narrow one and continuing the sequence there produces exactly the
// outputs the wide machine's lane would have produced.
func TestLaneStateCrossWidthTransplant(t *testing.T) {
	nl := randomNetlist(t, 7, 5, 9, 60)
	p, err := Compile(nl)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	wide := NewMachine[lane.W8](p)
	// Distinct per-lane histories: random state plus a few warm-up
	// cycles of random broadcast stimulus.
	randomLaneStates(wide, rng)
	pis8 := make([]lane.W8, len(nl.PIs))
	for cyc := 0; cyc < 5; cyc++ {
		for i := range pis8 {
			for k := 0; k < len(pis8[i]); k++ {
				pis8[i][k] = rng.Uint64()
			}
		}
		wide.Eval(pis8)
		wide.Clock()
	}
	const src = 131 // an arbitrary lane in word 2
	narrow := NewMachine[lane.W1](p)
	narrow.SetLaneState(0, wide.LaneStateInto(src, nil))
	// Same stimulus bit on every lane of both machines (lane ln reads bit
	// ln&63 of its word, so the replicated word must hold one value in
	// all 64 bit positions); the narrow machine's lane 0 must track the
	// wide machine's lane src cycle for cycle.
	pis1 := make([]lane.W1, len(nl.PIs))
	for cyc := 0; cyc < 8; cyc++ {
		for i := range pis1 {
			var w uint64
			if rng.Intn(2) == 1 {
				w = ^uint64(0)
			}
			pis1[i][0] = w
			pis8[i] = lane.Broadcast[lane.W8](w)
		}
		out1 := narrow.Eval(pis1)
		out8 := wide.Eval(pis8)
		for po := range out1 {
			got := out1[po][0] & 1
			want := out8[po][src>>6] >> uint(src&63) & 1
			if got != want {
				t.Fatalf("cycle %d PO %d: narrow lane 0 = %d, wide lane %d = %d", cyc, po, got, src, want)
			}
		}
		narrow.Clock()
		wide.Clock()
	}
}
