package netlist

import (
	"strings"
	"testing"
	"testing/quick"
)

// buildMux constructs y = (a AND s) OR (b AND NOT s).
func buildMux(t *testing.T) *Netlist {
	t.Helper()
	n := New("mux")
	a := n.AddInput("a")
	b := n.AddInput("b")
	s := n.AddInput("s")
	ns := n.AddGate(Not, s)
	t1 := n.AddGate(And, a, s)
	t2 := n.AddGate(And, b, ns)
	y := n.AddGate(Or, t1, t2)
	n.MarkOutput(y, "y")
	if err := n.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	return n
}

func TestMuxTruthTable(t *testing.T) {
	n := buildMux(t)
	e, err := NewEvaluator(n)
	if err != nil {
		t.Fatal(err)
	}
	// 8 patterns in parallel: lane k carries the k-th input combination.
	var a, b, s uint64
	for k := 0; k < 8; k++ {
		if k&1 != 0 {
			a |= 1 << k
		}
		if k&2 != 0 {
			b |= 1 << k
		}
		if k&4 != 0 {
			s |= 1 << k
		}
	}
	out, err := e.Eval([]uint64{a, b, s})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 8; k++ {
		av, bv, sv := k&1, (k>>1)&1, (k>>2)&1
		want := bv
		if sv == 1 {
			want = av
		}
		if got := int(out[0]>>k) & 1; got != want {
			t.Errorf("pattern a=%d b=%d s=%d: y=%d want %d", av, bv, sv, got, want)
		}
	}
}

func TestGateEvalAllTypes(t *testing.T) {
	n := New("g")
	a := n.AddInput("a")
	b := n.AddInput("b")
	ids := map[string]int{
		"and":  n.AddGate(And, a, b),
		"or":   n.AddGate(Or, a, b),
		"nand": n.AddGate(Nand, a, b),
		"nor":  n.AddGate(Nor, a, b),
		"xor":  n.AddGate(Xor, a, b),
		"xnor": n.AddGate(Xnor, a, b),
		"not":  n.AddGate(Not, a),
		"buf":  n.AddGate(Buf, a),
		"c0":   n.AddGate(Const0),
		"c1":   n.AddGate(Const1),
	}
	n.MarkOutput(ids["and"], "o")
	e, err := NewEvaluator(n)
	if err != nil {
		t.Fatal(err)
	}
	av, bv := uint64(0b1100), uint64(0b1010)
	if _, err := e.Eval([]uint64{av, bv}); err != nil {
		t.Fatal(err)
	}
	mask := uint64(0b1111)
	want := map[string]uint64{
		"and": av & bv, "or": av | bv, "nand": ^(av & bv) & mask,
		"nor": ^(av | bv) & mask, "xor": av ^ bv, "xnor": ^(av ^ bv) & mask,
		"not": ^av & mask, "buf": av, "c0": 0, "c1": mask,
	}
	for name, w := range want {
		if got := e.Value(ids[name]) & mask; got != w {
			t.Errorf("%s = %04b, want %04b", name, got, w)
		}
	}
}

func TestCombCycleDetected(t *testing.T) {
	n := New("cyc")
	a := n.AddInput("a")
	g1 := n.AddGate(And, a, a) // placeholder fanin, rewired below
	g2 := n.AddGate(Or, g1, a)
	n.Gates[g1].Fanin[1] = g2 // creates cycle g1 -> g2 -> g1
	n.MarkOutput(g2, "o")
	if err := n.Validate(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("want cycle error, got %v", err)
	}
}

func TestDFFSequentialBehavior(t *testing.T) {
	// 1-bit toggle: q' = q XOR en
	n := New("toggle")
	en := n.AddInput("en")
	q := n.AddDFF("q", 0)
	d := n.AddGate(Xor, q, en)
	n.SetDFFInput(q, d)
	n.MarkOutput(q, "qo")
	e, err := NewEvaluator(n)
	if err != nil {
		t.Fatal(err)
	}
	var got []uint64
	for i := 0; i < 4; i++ {
		out, _ := e.Eval([]uint64{1}) // enable always on, lane 0
		got = append(got, out[0]&1)
		e.Clock()
	}
	want := []uint64{0, 1, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("toggle sequence = %v, want %v", got, want)
		}
	}
}

func TestDFFInitValue(t *testing.T) {
	n := New("init1")
	a := n.AddInput("a")
	q := n.AddDFF("q", 1)
	n.SetDFFInput(q, a)
	n.MarkOutput(q, "qo")
	e, _ := NewEvaluator(n)
	out, _ := e.Eval([]uint64{0})
	if out[0] != ^uint64(0) {
		t.Errorf("init-1 DFF reads %x at power-on", out[0])
	}
	e.Clock()
	out, _ = e.Eval([]uint64{0})
	if out[0] != 0 {
		t.Errorf("DFF did not capture 0")
	}
}

func TestOutputStuckFaultInjection(t *testing.T) {
	n := buildMux(t)
	e, _ := NewEvaluator(n)
	// With s=1, y follows a. Stuck-at-0 on the final OR output forces y=0.
	orID := n.POs[0]
	out := e.EvalWith([]uint64{^uint64(0), 0, ^uint64(0)}, FaultSite{Gate: orID, Pin: -1, Stuck: 0}, ^uint64(0))
	if out[0] != 0 {
		t.Errorf("stuck-at-0 output: y = %x", out[0])
	}
	// Lane masking: inject only in lane 3.
	out = e.EvalWith([]uint64{^uint64(0), 0, ^uint64(0)}, FaultSite{Gate: orID, Pin: -1, Stuck: 0}, 1<<3)
	if out[0] != ^uint64(0)&^(1<<3) {
		t.Errorf("lane-masked fault: y = %x", out[0])
	}
}

func TestInputPinFaultIsBranchFault(t *testing.T) {
	// y1 = AND(a, b), y2 = OR(a, b). Fault a stuck-at-0 only at the AND's
	// pin: y1 sees the fault, y2 does not.
	n := New("branch")
	a := n.AddInput("a")
	b := n.AddInput("b")
	y1 := n.AddGate(And, a, b)
	y2 := n.AddGate(Or, a, b)
	n.MarkOutput(y1, "y1")
	n.MarkOutput(y2, "y2")
	e, _ := NewEvaluator(n)
	out := e.EvalWith([]uint64{^uint64(0), 0}, FaultSite{Gate: y1, Pin: 0, Stuck: 0}, ^uint64(0))
	if out[0] != 0 {
		t.Errorf("AND with faulted pin = %x, want 0", out[0])
	}
	if out[1] != ^uint64(0) {
		t.Errorf("OR sees the branch fault: %x", out[1])
	}
}

func TestPIStuckFault(t *testing.T) {
	n := buildMux(t)
	e, _ := NewEvaluator(n)
	aID := n.PIs[0]
	// s=1 selects a; a stuck-at-1 with applied a=0 gives y=1.
	out := e.EvalWith([]uint64{0, 0, ^uint64(0)}, FaultSite{Gate: aID, Pin: -1, Stuck: 1}, ^uint64(0))
	if out[0] != ^uint64(0) {
		t.Errorf("PI stuck-at-1: y = %x", out[0])
	}
}

func TestBenchRoundTrip(t *testing.T) {
	n := buildMux(t)
	var sb strings.Builder
	if err := WriteBench(&sb, n); err != nil {
		t.Fatal(err)
	}
	n2, err := ReadBench(strings.NewReader(sb.String()), "mux")
	if err != nil {
		t.Fatalf("ReadBench: %v\n%s", err, sb.String())
	}
	if len(n2.PIs) != 3 || len(n2.POs) != 1 {
		t.Fatalf("round-trip lost ports: %v", n2.Stats())
	}
	// Behavioral equivalence across all 8 input combinations.
	e1, _ := NewEvaluator(n)
	e2, _ := NewEvaluator(n2)
	var a, b, s uint64
	for k := 0; k < 8; k++ {
		if k&1 != 0 {
			a |= 1 << k
		}
		if k&2 != 0 {
			b |= 1 << k
		}
		if k&4 != 0 {
			s |= 1 << k
		}
	}
	o1, _ := e1.Eval([]uint64{a, b, s})
	o2, _ := e2.Eval([]uint64{a, b, s})
	if o1[0]&0xFF != o2[0]&0xFF {
		t.Errorf("round-trip changed behavior: %02x vs %02x", o1[0]&0xFF, o2[0]&0xFF)
	}
}

func TestBenchSequentialRoundTrip(t *testing.T) {
	src := `
# toggle
INPUT(en)
OUTPUT(qo)
q = DFF(d)
d = XOR(q, en)
qo = BUF(q)
`
	n, err := ReadBench(strings.NewReader(src), "toggle")
	if err != nil {
		t.Fatal(err)
	}
	if !n.IsSequential() || len(n.FFs) != 1 {
		t.Fatalf("DFF not parsed: %v", n.Stats())
	}
	e, _ := NewEvaluator(n)
	out, _ := e.Eval([]uint64{1})
	if out[0]&1 != 0 {
		t.Error("initial state wrong")
	}
	e.Clock()
	out, _ = e.Eval([]uint64{1})
	if out[0]&1 != 1 {
		t.Error("toggle failed")
	}
}

func TestBenchErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"undefined output", "INPUT(a)\nOUTPUT(zz)\nb = NOT(a)\n"},
		{"undefined fanin", "INPUT(a)\nOUTPUT(b)\nb = AND(a, qq)\n"},
		{"bad gate", "INPUT(a)\nOUTPUT(b)\nb = FROB(a)\n"},
		{"garbage", "INPUT(a)\nOUTPUT(b)\nwhat is this\n"},
		{"dup", "INPUT(a)\nINPUT(a)\nOUTPUT(a)\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadBench(strings.NewReader(tc.src), "bad"); err == nil {
				t.Error("no error")
			}
		})
	}
}

func TestLevelizeDepth(t *testing.T) {
	n := New("chain")
	a := n.AddInput("a")
	g := a
	for i := 0; i < 5; i++ {
		g = n.AddGate(Not, g)
	}
	n.MarkOutput(g, "o")
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	if d := n.Depth(); d != 5 {
		t.Errorf("depth = %d, want 5", d)
	}
}

func TestStatsString(t *testing.T) {
	n := buildMux(t)
	s := n.Stats()
	if s.PIs != 3 || s.POs != 1 || s.Gates != 4 || s.FFs != 0 {
		t.Errorf("stats = %+v", s)
	}
	if !strings.Contains(s.String(), "mux") {
		t.Errorf("stats string = %q", s.String())
	}
}

// Property: a fault injected with an empty lane mask never changes outputs.
func TestPropEmptyLaneMaskIsFaultFree(t *testing.T) {
	n := buildMux(t)
	e, _ := NewEvaluator(n)
	f := func(a, b, s uint64, gate uint8, stuck bool) bool {
		g := int(gate) % len(n.Gates)
		sv := uint64(0)
		if stuck {
			sv = 1
		}
		ref, _ := e.Eval([]uint64{a, b, s})
		refCopy := append([]uint64(nil), ref...)
		got := e.EvalWith([]uint64{a, b, s}, FaultSite{Gate: g, Pin: -1, Stuck: sv}, 0)
		for i := range refCopy {
			if got[i] != refCopy[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: mux behaves as y = s ? a : b on all 64 lanes at once.
func TestPropMuxParallelLanes(t *testing.T) {
	n := buildMux(t)
	e, _ := NewEvaluator(n)
	f := func(a, b, s uint64) bool {
		out, err := e.Eval([]uint64{a, b, s})
		if err != nil {
			return false
		}
		want := (a & s) | (b &^ s)
		return out[0] == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
