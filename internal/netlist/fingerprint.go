package netlist

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
)

// Fingerprint is a canonical content hash of a netlist: the identity the
// campaign service keys its content-addressed result cache by. It is
// computed over the compiled slot-indexed program — the instruction
// stream, the fanin arena, the flip-flop load plan and the constant
// plan — plus the PI/PO/FF interface (IDs and names, in declaration
// order), so two netlists fingerprint equal exactly when every engine in
// this repository treats them identically. Hashing the compiled form
// leans on the declaration-order determinism work (PR 8): synthesizing
// the same source in two different processes yields the same gate
// numbering, hence the same program, hence the same fingerprint — which
// is what lets fingerprints travel between a campaign client, a server
// and its remote workers.
//
// The netlist name is deliberately excluded: the fingerprint is a
// content address, and renaming a circuit must not invalidate its cached
// results.
//
//repro:deterministic
func (n *Netlist) Fingerprint() (string, error) {
	p, err := Compile(n)
	if err != nil {
		return "", err
	}
	return p.Fingerprint(), nil
}

// Fingerprint returns the canonical content hash of the compiled
// program; see Netlist.Fingerprint. Programs are immutable, so the hash
// is computed once per call over stable state.
//
//repro:deterministic
func (p *Program) Fingerprint() string {
	h := sha256.New()
	// Format tag, versioned: bump when the hashed shape changes, so stale
	// disk caches from an older layout can never alias a new one.
	h.Write([]byte("repro/netlist/fingerprint/v1\n"))
	hashInt(h, len(p.nl.Gates))
	// Instruction stream: opcode, destination slot, direct operands and
	// the fanin arena range per compiled gate, in levelized order.
	hashInt(h, len(p.code))
	for i := range p.code {
		in := &p.code[i]
		hashInt(h, int(in.op))
		hashInt(h, int(in.dst))
		hashInt(h, int(in.a))
		hashInt(h, int(in.b))
		hashInt(h, int(in.off))
		hashInt(h, int(in.n))
	}
	hashInt(h, len(p.args))
	for _, a := range p.args {
		hashInt(h, int(a))
	}
	// Flip-flop load plan: source slot and power-on value per FF, in
	// creation order.
	hashInt(h, len(p.ffSrc))
	for i := range p.ffSrc {
		hashInt(h, int(p.ffSrc[i]))
		hashUint64(h, p.ffInit[i])
	}
	hashInt(h, len(p.consts))
	for _, c := range p.consts {
		hashInt(h, int(c.slot))
		hashUint64(h, c.word)
	}
	// Interface: PI/PO/FF slots and names in declaration order. Names are
	// part of the identity — stimulus generators and reports address
	// ports by name, so a renamed reset pin IS a different workload.
	hashIDNames(h, p.nl.PIs, func(_, id int) string { return p.nl.Gates[id].Name })
	hashIDNames(h, p.nl.POs, func(i, _ int) string { return p.nl.PONames[i] })
	hashIDNames(h, p.nl.FFs, func(_, id int) string { return p.nl.Gates[id].Name })
	return hex.EncodeToString(h.Sum(nil))
}

func hashInt(h hash.Hash, v int) { hashUint64(h, uint64(int64(v))) }

func hashUint64(h hash.Hash, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	h.Write(b[:])
}

func hashStr(h hash.Hash, s string) {
	hashInt(h, len(s))
	h.Write([]byte(s))
}

func hashIDNames(h hash.Hash, ids []int, name func(i, id int) string) {
	hashInt(h, len(ids))
	for i, id := range ids {
		hashInt(h, id)
		hashStr(h, name(i, id))
	}
}
