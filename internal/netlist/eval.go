package netlist

import "fmt"

// FaultSite locates a single stuck-at fault on a gate pin. Pin -1 is the
// gate's output (the stem); Pin >= 0 is the connection feeding fanin j of
// that gate (a fanout branch), which faults only this gate's view of the
// driving net. Stuck is 0 or 1.
type FaultSite struct {
	Gate  int
	Pin   int
	Stuck uint64
}

// NoFault is the sentinel passed to EvalWith for fault-free evaluation.
var NoFault = FaultSite{Gate: -1, Pin: -1}

// Evaluator is the 64-pattern-parallel good-machine simulator. Each net
// carries a 64-bit word; bit k of every word belongs to pattern k, so one
// pass evaluates up to 64 independent input patterns. It injects at most
// one fault site per pass (broadcast across the lanes laneMask selects),
// which makes it the single-fault reference engine: the parallel-fault
// sequential fault simulator instead drives the compiled Machine (see
// Compile), which packs 64 independent fault machines into those lanes
// and is pinned bit-identical to this evaluator differentially.
//
// An Evaluator is not safe for concurrent use.
type Evaluator struct {
	nl    *Netlist
	order []int    // combinational evaluation order
	vals  []uint64 // current net values, indexed by gate ID
	state []uint64 // DFF stored values, indexed by position in nl.FFs
	out   []uint64 // PO scratch buffer, reused across Eval calls
}

// NewEvaluator builds an evaluator; the netlist must validate.
func NewEvaluator(nl *Netlist) (*Evaluator, error) {
	if err := nl.Validate(); err != nil {
		return nil, err
	}
	order, err := nl.Levelize()
	if err != nil {
		return nil, err
	}
	e := &Evaluator{
		nl:    nl,
		order: order,
		vals:  make([]uint64, len(nl.Gates)),
		state: make([]uint64, len(nl.FFs)),
		out:   make([]uint64, len(nl.POs)),
	}
	e.Reset()
	return e, nil
}

// Netlist returns the circuit being evaluated.
func (e *Evaluator) Netlist() *Netlist { return e.nl }

// Reset restores every flip-flop to its power-on value, replicated across
// all 64 pattern lanes.
func (e *Evaluator) Reset() {
	for i, id := range e.nl.FFs {
		if e.nl.Gates[id].Init&1 == 1 {
			e.state[i] = ^uint64(0)
		} else {
			e.state[i] = 0
		}
	}
}

// SetState overwrites the flip-flop state words directly (used by the
// fault simulator to carry fault effects across cycles).
func (e *Evaluator) SetState(s []uint64) {
	if len(s) != len(e.state) {
		panic(fmt.Sprintf("netlist: SetState with %d words for %d FFs", len(s), len(e.state)))
	}
	copy(e.state, s)
}

// State returns a copy of the flip-flop state words.
func (e *Evaluator) State() []uint64 {
	out := make([]uint64, len(e.state))
	copy(out, e.state)
	return out
}

// Eval runs one combinational evaluation with the given PI words (ordered
// like nl.PIs) and returns the PO words (ordered like nl.POs). The result
// slice is reused by the next Eval/EvalWith call. For sequential circuits
// the flip-flop state words feed the logic; call Clock afterwards to
// advance state.
func (e *Evaluator) Eval(pis []uint64) ([]uint64, error) {
	if len(pis) != len(e.nl.PIs) {
		return nil, fmt.Errorf("netlist: %d PI words for %d inputs", len(pis), len(e.nl.PIs))
	}
	return e.EvalWith(pis, NoFault, 0), nil
}

// EvalWith evaluates with a stuck-at fault injected on the given site in
// the pattern lanes selected by laneMask. Pass NoFault for fault-free
// evaluation. The result slice is reused by the next Eval/EvalWith call.
func (e *Evaluator) EvalWith(pis []uint64, f FaultSite, laneMask uint64) []uint64 {
	e.evalInto(pis, f, laneMask)
	for i, id := range e.nl.POs {
		e.out[i] = e.vals[id]
	}
	return e.out
}

// Clock latches each flip-flop's D input into its state, using the values
// from the most recent Eval/EvalWith pass.
func (e *Evaluator) Clock() {
	for i, id := range e.nl.FFs {
		e.state[i] = e.vals[e.nl.Gates[id].Fanin[0]]
	}
}

// ClockWith latches like Clock, but if the fault site is a DFF input pin
// it injects the fault into the latched value (a stuck D pin corrupts the
// state the flop captures).
func (e *Evaluator) ClockWith(f FaultSite, laneMask uint64) {
	e.Clock()
	if f.Gate >= 0 && f.Pin == 0 && e.nl.Gates[f.Gate].Type == DFF {
		for i, id := range e.nl.FFs {
			if id == f.Gate {
				stuck := uint64(0)
				if f.Stuck == 1 {
					stuck = ^uint64(0)
				}
				e.state[i] = (e.state[i] &^ laneMask) | (stuck & laneMask)
			}
		}
	}
}

// Value returns the last computed word on a gate's output.
func (e *Evaluator) Value(id int) uint64 { return e.vals[id] }

func (e *Evaluator) evalInto(pis []uint64, f FaultSite, laneMask uint64) {
	nl := e.nl
	vals := e.vals
	stuckWord := uint64(0)
	if f.Stuck == 1 {
		stuckWord = ^uint64(0)
	}
	for i, id := range nl.PIs {
		vals[id] = pis[i]
	}
	for i, id := range nl.FFs {
		vals[id] = e.state[i]
	}
	for _, g := range nl.Gates {
		switch g.Type {
		case Const0:
			vals[g.ID] = 0
		case Const1:
			vals[g.ID] = ^uint64(0)
		}
	}
	// Output faults on non-combinational gates (PIs, FFs, constants) apply
	// before combinational evaluation.
	if f.Gate >= 0 && f.Pin < 0 && !nl.Gates[f.Gate].Type.IsComb() {
		vals[f.Gate] = (vals[f.Gate] &^ laneMask) | (stuckWord & laneMask)
	}
	for _, id := range e.order {
		g := nl.Gates[id]
		var v uint64
		if id == f.Gate && f.Pin >= 0 && f.Pin < len(g.Fanin) {
			v = e.evalGatePinFault(g, f.Pin, stuckWord, laneMask)
		} else {
			v = e.evalGate(g)
		}
		if id == f.Gate && f.Pin < 0 {
			v = (v &^ laneMask) | (stuckWord & laneMask)
		}
		vals[id] = v
	}
}

func (e *Evaluator) evalGate(g *Gate) uint64 {
	vals := e.vals
	var v uint64
	switch g.Type {
	case Buf:
		v = vals[g.Fanin[0]]
	case Not:
		v = ^vals[g.Fanin[0]]
	case And:
		v = ^uint64(0)
		for _, f := range g.Fanin {
			v &= vals[f]
		}
	case Nand:
		v = ^uint64(0)
		for _, f := range g.Fanin {
			v &= vals[f]
		}
		v = ^v
	case Or:
		for _, f := range g.Fanin {
			v |= vals[f]
		}
	case Nor:
		for _, f := range g.Fanin {
			v |= vals[f]
		}
		v = ^v
	case Xor:
		for _, f := range g.Fanin {
			v ^= vals[f]
		}
	case Xnor:
		for _, f := range g.Fanin {
			v ^= vals[f]
		}
		v = ^v
	}
	return v
}

// evalGatePinFault evaluates g with fanin pin's value overridden by the
// stuck word in the masked lanes (a fanout-branch fault: only this gate
// sees the corrupted value).
func (e *Evaluator) evalGatePinFault(g *Gate, pin int, stuckWord, laneMask uint64) uint64 {
	in := func(j int) uint64 {
		v := e.vals[g.Fanin[j]]
		if j == pin {
			v = (v &^ laneMask) | (stuckWord & laneMask)
		}
		return v
	}
	var v uint64
	switch g.Type {
	case Buf:
		v = in(0)
	case Not:
		v = ^in(0)
	case And:
		v = ^uint64(0)
		for j := range g.Fanin {
			v &= in(j)
		}
	case Nand:
		v = ^uint64(0)
		for j := range g.Fanin {
			v &= in(j)
		}
		v = ^v
	case Or:
		for j := range g.Fanin {
			v |= in(j)
		}
	case Nor:
		for j := range g.Fanin {
			v |= in(j)
		}
		v = ^v
	case Xor:
		for j := range g.Fanin {
			v ^= in(j)
		}
	case Xnor:
		for j := range g.Fanin {
			v ^= in(j)
		}
		v = ^v
	}
	return v
}
