package netlist

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteBench renders the netlist in the ISCAS-89 ".bench" interchange
// format:
//
//	INPUT(a)
//	OUTPUT(y)
//	n3 = AND(a, b)
//	y  = NOT(n3)
//	q  = DFF(d)
//
// Gate names are taken from Gate.Name when present and synthesized as
// "n<id>" otherwise. POs that alias another named gate are emitted as BUF
// lines so every OUTPUT name resolves.
func WriteBench(w io.Writer, n *Netlist) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s\n", n.Name)
	fmt.Fprintf(bw, "# %s\n", n.Stats())

	name := benchNames(n)

	for _, id := range n.PIs {
		fmt.Fprintf(bw, "INPUT(%s)\n", name[id])
	}
	// POs whose name differs from the driving gate's emitted name need a
	// BUF alias line. Several POs may alias the same gate, so collect
	// (name, gate) pairs rather than a per-gate map.
	type alias struct {
		name string
		gate int
	}
	var outAliases []alias
	seenAlias := make(map[string]bool)
	for i, id := range n.POs {
		poName := n.PONames[i]
		fmt.Fprintf(bw, "OUTPUT(%s)\n", poName)
		if name[id] != poName && !seenAlias[poName] {
			seenAlias[poName] = true
			outAliases = append(outAliases, alias{name: poName, gate: id})
		}
	}
	for _, g := range n.Gates {
		switch g.Type {
		case PI:
			continue
		case Const0:
			fmt.Fprintf(bw, "%s = CONST0()\n", name[g.ID])
		case Const1:
			fmt.Fprintf(bw, "%s = CONST1()\n", name[g.ID])
		case DFF:
			fmt.Fprintf(bw, "%s = DFF(%s)\n", name[g.ID], name[g.Fanin[0]])
			if g.Init&1 == 1 {
				// Power-on value directive; plain .bench readers skip the
				// comment, ReadBench honors it.
				fmt.Fprintf(bw, "# @init %s 1\n", name[g.ID])
			}
		default:
			fanins := make([]string, len(g.Fanin))
			for j, f := range g.Fanin {
				fanins[j] = name[f]
			}
			fmt.Fprintf(bw, "%s = %s(%s)\n", name[g.ID], g.Type, strings.Join(fanins, ", "))
		}
	}
	// Alias BUFs for POs whose gate already carries a different name.
	sort.Slice(outAliases, func(i, j int) bool { return outAliases[i].name < outAliases[j].name })
	for _, a := range outAliases {
		fmt.Fprintf(bw, "%s = BUF(%s)\n", a.name, name[a.gate])
	}
	return bw.Flush()
}

// benchNames assigns a unique textual name to every gate.
func benchNames(n *Netlist) []string {
	used := make(map[string]bool)
	names := make([]string, len(n.Gates))
	for _, g := range n.Gates {
		if g.Name != "" && !used[g.Name] {
			names[g.ID] = g.Name
			used[g.Name] = true
		}
	}
	for _, g := range n.Gates {
		if names[g.ID] == "" {
			cand := fmt.Sprintf("n%d", g.ID)
			for used[cand] {
				cand = "x" + cand
			}
			names[g.ID] = cand
			used[cand] = true
		}
	}
	return names
}

// ReadBench parses the ".bench" format produced by WriteBench (and the
// common ISCAS-89 dialect: INPUT/OUTPUT declarations and gate assignments
// with AND/OR/NAND/NOR/XOR/XNOR/NOT/BUF/BUFF/DFF/CONST0/CONST1).
func ReadBench(r io.Reader, name string) (*Netlist, error) {
	n := New(name)
	type pending struct {
		target string
		op     string
		args   []string
		line   int
	}
	var defs []pending
	var outputs []string
	ids := make(map[string]int)

	inits := make(map[string]uint64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(line, "# @init ") {
			fields := strings.Fields(strings.TrimPrefix(line, "# @init "))
			if len(fields) == 2 && fields[1] == "1" {
				inits[fields[0]] = 1
			}
			continue
		}
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		switch {
		case strings.HasPrefix(line, "INPUT(") && strings.HasSuffix(line, ")"):
			nm := strings.TrimSuffix(strings.TrimPrefix(line, "INPUT("), ")")
			nm = strings.TrimSpace(nm)
			if _, dup := ids[nm]; dup {
				return nil, fmt.Errorf("bench line %d: duplicate definition of %q", lineNo, nm)
			}
			ids[nm] = n.AddInput(nm)
		case strings.HasPrefix(line, "OUTPUT(") && strings.HasSuffix(line, ")"):
			nm := strings.TrimSuffix(strings.TrimPrefix(line, "OUTPUT("), ")")
			outputs = append(outputs, strings.TrimSpace(nm))
		default:
			eq := strings.Index(line, "=")
			if eq < 0 {
				return nil, fmt.Errorf("bench line %d: cannot parse %q", lineNo, line)
			}
			target := strings.TrimSpace(line[:eq])
			rhs := strings.TrimSpace(line[eq+1:])
			open := strings.Index(rhs, "(")
			if open < 0 || !strings.HasSuffix(rhs, ")") {
				return nil, fmt.Errorf("bench line %d: cannot parse gate %q", lineNo, rhs)
			}
			op := strings.ToUpper(strings.TrimSpace(rhs[:open]))
			argStr := strings.TrimSuffix(rhs[open+1:], ")")
			var args []string
			for _, a := range strings.Split(argStr, ",") {
				a = strings.TrimSpace(a)
				if a != "" {
					args = append(args, a)
				}
			}
			defs = append(defs, pending{target: target, op: op, args: args, line: lineNo})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	// First pass: create DFFs (they may be referenced before their D nets
	// exist) and reserve IDs for every defined net.
	for _, d := range defs {
		if _, dup := ids[d.target]; dup {
			return nil, fmt.Errorf("bench line %d: duplicate definition of %q", d.line, d.target)
		}
		if d.op == "DFF" {
			ids[d.target] = n.AddDFF(d.target, inits[d.target])
		}
	}
	// Combinational gates must be created after their fanins; iterate until
	// all are resolved (the format permits forward references).
	remaining := make([]pending, 0, len(defs))
	for _, d := range defs {
		if d.op != "DFF" {
			remaining = append(remaining, d)
		}
	}
	for len(remaining) > 0 {
		progress := false
		var next []pending
		for _, d := range remaining {
			ready := true
			fanin := make([]int, len(d.args))
			for j, a := range d.args {
				id, ok := ids[a]
				if !ok {
					ready = false
					break
				}
				fanin[j] = id
			}
			if !ready {
				next = append(next, d)
				continue
			}
			id, err := buildBenchGate(n, d.op, d.target, fanin)
			if err != nil {
				return nil, fmt.Errorf("bench line %d: %v", d.line, err)
			}
			ids[d.target] = id
			progress = true
		}
		if !progress {
			return nil, fmt.Errorf("bench: unresolved references (combinational cycle or undefined nets) in %d definitions, e.g. %q", len(next), next[0].target)
		}
		remaining = next
	}
	// Connect DFF data inputs.
	for _, d := range defs {
		if d.op != "DFF" {
			continue
		}
		if len(d.args) != 1 {
			return nil, fmt.Errorf("bench line %d: DFF needs 1 input", d.line)
		}
		src, ok := ids[d.args[0]]
		if !ok {
			return nil, fmt.Errorf("bench line %d: DFF input %q undefined", d.line, d.args[0])
		}
		n.SetDFFInput(ids[d.target], src)
	}
	for _, o := range outputs {
		id, ok := ids[o]
		if !ok {
			return nil, fmt.Errorf("bench: OUTPUT(%s) never defined", o)
		}
		n.MarkOutput(id, o)
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return n, nil
}

func buildBenchGate(n *Netlist, op, target string, fanin []int) (int, error) {
	var t GateType
	switch op {
	case "AND":
		t = And
	case "OR":
		t = Or
	case "NAND":
		t = Nand
	case "NOR":
		t = Nor
	case "XOR":
		t = Xor
	case "XNOR":
		t = Xnor
	case "NOT", "INV":
		t = Not
	case "BUF", "BUFF":
		t = Buf
	case "CONST0":
		t = Const0
	case "CONST1":
		t = Const1
	default:
		return 0, fmt.Errorf("unknown gate type %q", op)
	}
	// Single-input AND/OR degrade to BUF; this appears in some benchmarks.
	if len(fanin) == 1 && (t == And || t == Or) {
		t = Buf
	}
	if len(fanin) == 1 && (t == Nand || t == Nor) {
		t = Not
	}
	id := n.AddGate(t, fanin...)
	n.Gates[id].Name = target
	return id, nil
}
