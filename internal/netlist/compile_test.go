package netlist

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/lane"
)

// randomNetlist builds a random levelizable netlist with nPIs inputs,
// nFFs flip-flops (with feedback through the combinational cloud) and
// nGates gates drawn from every combinational type with arities 1..4, so
// the compiled program exercises every opcode including the N-ary forms.
func randomNetlist(t *testing.T, seed int64, nPIs, nFFs, nGates int) *Netlist {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	n := New(fmt.Sprintf("rand%d", seed))
	for i := 0; i < nPIs; i++ {
		n.AddInput(fmt.Sprintf("i%d", i))
	}
	for i := 0; i < nFFs; i++ {
		n.AddDFF(fmt.Sprintf("ff%d", i), uint64(rng.Intn(2)))
	}
	if rng.Intn(2) == 0 {
		n.AddGate(Const0)
	}
	if rng.Intn(2) == 0 {
		n.AddGate(Const1)
	}
	comb := []GateType{Buf, Not, And, Or, Nand, Nor, Xor, Xnor}
	for i := 0; i < nGates; i++ {
		t1 := comb[rng.Intn(len(comb))]
		arity := 2 + rng.Intn(3)
		if t1 == Buf || t1 == Not {
			arity = 1
		}
		fanin := make([]int, arity)
		for j := range fanin {
			fanin[j] = rng.Intn(len(n.Gates)) // only existing gates: acyclic
		}
		n.AddGate(t1, fanin...)
	}
	// Feedback: every FF's D comes from anywhere in the cloud.
	for _, ff := range n.FFs {
		n.SetDFFInput(ff, rng.Intn(len(n.Gates)))
	}
	// Observe a handful of random gates plus the last one.
	for i := 0; i < 3; i++ {
		id := rng.Intn(len(n.Gates))
		n.MarkOutput(id, fmt.Sprintf("o%d", i))
	}
	n.MarkOutput(len(n.Gates)-1, "olast")
	if err := n.Validate(); err != nil {
		t.Fatalf("random netlist invalid: %v", err)
	}
	return n
}

// allSites enumerates every stem and pin fault site of a netlist, both
// polarities — a superset of the collapsed fault list, so the differential
// tests also cover sites the fault simulator would normally skip.
func allSites(nl *Netlist) []FaultSite {
	var out []FaultSite
	for _, g := range nl.Gates {
		for v := uint64(0); v <= 1; v++ {
			out = append(out, FaultSite{Gate: g.ID, Pin: -1, Stuck: v})
			for j := range g.Fanin {
				out = append(out, FaultSite{Gate: g.ID, Pin: j, Stuck: v})
			}
		}
	}
	return out
}

func randWords(rng *rand.Rand, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = rng.Uint64()
	}
	return out
}

// w1 lifts single-word PI values into W=1 lane vectors.
func w1(words []uint64) []lane.W1 {
	out := make([]lane.W1, len(words))
	for i, w := range words {
		out[i] = lane.W1{w}
	}
	return out
}

// TestMachineMatchesEvaluatorFaultFree pins the compiled fast path
// against the Evaluator over multiple clocked cycles of random stimuli.
func TestMachineMatchesEvaluatorFaultFree(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		nl := randomNetlist(t, seed, 3+int(seed%4), int(seed%5), 12+int(seed)*3)
		ev, err := NewEvaluator(nl)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := Compile(nl)
		if err != nil {
			t.Fatal(err)
		}
		m := NewMachine[lane.W1](prog)
		rng := rand.New(rand.NewSource(seed + 100))
		for cyc := 0; cyc < 8; cyc++ {
			pis := randWords(rng, len(nl.PIs))
			want, err := ev.Eval(pis)
			if err != nil {
				t.Fatal(err)
			}
			got := m.Eval(w1(pis))
			for po := range want {
				if got[po][0] != want[po] {
					t.Fatalf("seed %d cyc %d PO %d: machine %x, evaluator %x", seed, cyc, po, got[po][0], want[po])
				}
			}
			ev.Clock()
			m.Clock()
			for i, s := range ev.State() {
				if m.State()[i][0] != s {
					t.Fatalf("seed %d cyc %d FF %d: state %x, evaluator %x", seed, cyc, i, m.State()[i][0], s)
				}
			}
		}
	}
}

// TestMachineMatchesEvaluatorSingleFault checks that injecting one fault
// into an arbitrary lane subset reproduces EvalWith/ClockWith exactly, for
// every fault site of random sequential netlists.
func TestMachineMatchesEvaluatorSingleFault(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		nl := randomNetlist(t, seed, 4, 3, 15)
		ev, err := NewEvaluator(nl)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := Compile(nl)
		if err != nil {
			t.Fatal(err)
		}
		m := NewMachine[lane.W1](prog)
		rng := rand.New(rand.NewSource(seed + 500))
		for _, site := range allSites(nl) {
			mask := rng.Uint64()
			stim := make([][]uint64, 4)
			for c := range stim {
				stim[c] = randWords(rng, len(nl.PIs))
			}
			ev.Reset()
			m.ClearFaults()
			m.InjectFault(site, lane.W1{mask})
			m.Reset()
			for cyc, pis := range stim {
				want := ev.EvalWith(pis, site, mask)
				got := m.Eval(w1(pis))
				for po := range want {
					if got[po][0] != want[po] {
						t.Fatalf("seed %d site %+v mask %x cyc %d PO %d: machine %x, evaluator %x",
							seed, site, mask, cyc, po, got[po][0], want[po])
					}
				}
				ev.ClockWith(site, mask)
				m.Clock()
			}
		}
	}
}

// machineMultiFaultLanes is the parallel-fault guarantee at width W: up
// to W×64 distinct faults injected one per lane evolve as independent
// fault machines. Each lane must match a dedicated single-fault Evaluator
// run.
func machineMultiFaultLanes[W lane.Word](t *testing.T, seedBase int64) {
	t.Helper()
	L := lane.Count[W]()
	for seed := seedBase; seed < seedBase+5; seed++ {
		// Bigger clouds for wider machines, so wide batches actually fill
		// lanes beyond the first word.
		nl := randomNetlist(t, seed+50, 4, 4, 20+L/4)
		prog, err := Compile(nl)
		if err != nil {
			t.Fatal(err)
		}
		sites := allSites(nl)
		batch := sites
		if len(batch) > L {
			batch = batch[:L]
		}
		m := NewMachine[W](prog)
		for ln, site := range batch {
			m.InjectFault(site, lane.Bit[W](ln))
		}
		m.Reset()
		rng := rand.New(rand.NewSource(seed + 900))
		stim := make([][]uint64, 6)
		for c := range stim {
			// Broadcast stimuli: every lane sees the same 0/1 input.
			stim[c] = make([]uint64, len(nl.PIs))
			for i := range stim[c] {
				if rng.Intn(2) == 1 {
					stim[c][i] = ^uint64(0)
				}
			}
		}
		got := make([][]W, len(stim))
		for cyc, pis := range stim {
			wide := make([]W, len(pis))
			for i, w := range pis {
				wide[i] = lane.Broadcast[W](w)
			}
			got[cyc] = append([]W(nil), m.Eval(wide)...)
			m.Clock()
		}
		ev, err := NewEvaluator(nl)
		if err != nil {
			t.Fatal(err)
		}
		for ln, site := range batch {
			ev.Reset()
			for cyc, pis := range stim {
				want := ev.EvalWith(pis, site, ^uint64(0))
				for po := range want {
					wbit := want[po] >> 0 & 1
					gbit := got[cyc][po][ln>>6] >> uint(ln&63) & 1
					if gbit != wbit {
						t.Fatalf("W=%d seed %d lane %d site %+v cyc %d PO %d: lane bit %d, reference %d",
							L/64, seed, ln, site, cyc, po, gbit, wbit)
					}
				}
				ev.ClockWith(site, ^uint64(0))
			}
		}
	}
}

// TestMachineMultiFaultLanes pins the per-lane independence at every
// supported width against the Evaluator.
func TestMachineMultiFaultLanes(t *testing.T) {
	t.Run("W=1", func(t *testing.T) { machineMultiFaultLanes[lane.W1](t, 0) })
	t.Run("W=4", func(t *testing.T) { machineMultiFaultLanes[lane.W4](t, 10) })
	t.Run("W=8", func(t *testing.T) { machineMultiFaultLanes[lane.W8](t, 20) })
}

// TestMachineWidthAgreement runs identical fault batches on all three
// widths (faults confined to the first 64 lanes) and demands bit-identical
// first-word trajectories — the W=1 machine is the pinned reference, so
// this transitively pins W=4/8 against the Evaluator too.
func TestMachineWidthAgreement(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		nl := randomNetlist(t, seed+300, 5, 3, 30)
		prog, err := Compile(nl)
		if err != nil {
			t.Fatal(err)
		}
		m1 := NewMachine[lane.W1](prog)
		m4 := NewMachine[lane.W4](prog)
		m8 := NewMachine[lane.W8](prog)
		sites := allSites(nl)
		if len(sites) > 64 {
			sites = sites[:64]
		}
		for ln, site := range sites {
			m1.InjectFault(site, lane.Bit[lane.W1](ln))
			m4.InjectFault(site, lane.Bit[lane.W4](ln))
			m8.InjectFault(site, lane.Bit[lane.W8](ln))
		}
		m1.Reset()
		m4.Reset()
		m8.Reset()
		rng := rand.New(rand.NewSource(seed + 77))
		for cyc := 0; cyc < 8; cyc++ {
			word := make([]uint64, len(nl.PIs))
			for i := range word {
				if rng.Intn(2) == 1 {
					word[i] = ^uint64(0)
				}
			}
			pis4 := make([]lane.W4, len(word))
			pis8 := make([]lane.W8, len(word))
			for i, w := range word {
				pis4[i] = lane.Broadcast[lane.W4](w)
				pis8[i] = lane.Broadcast[lane.W8](w)
			}
			o1 := m1.Eval(w1(word))
			o4 := m4.Eval(pis4)
			o8 := m8.Eval(pis8)
			for po := range o1 {
				if o4[po][0] != o1[po][0] || o8[po][0] != o1[po][0] {
					t.Fatalf("seed %d cyc %d PO %d: W1 %x, W4 %x, W8 %x",
						seed, cyc, po, o1[po][0], o4[po][0], o8[po][0])
				}
			}
			m1.Clock()
			m4.Clock()
			m8.Clock()
		}
	}
}

// TestMachineClearFaults verifies a cleared machine returns to the
// fault-free fast path bit-identically.
func TestMachineClearFaults(t *testing.T) {
	nl := randomNetlist(t, 7, 4, 2, 15)
	prog, err := Compile(nl)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := NewEvaluator(nl)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine[lane.W4](prog)
	for ln, site := range allSites(nl) {
		m.InjectFault(site, lane.Bit[lane.W4](ln%256))
	}
	m.ClearFaults()
	m.Reset()
	rng := rand.New(rand.NewSource(77))
	for cyc := 0; cyc < 4; cyc++ {
		pis := randWords(rng, len(nl.PIs))
		want, err := ev.Eval(pis)
		if err != nil {
			t.Fatal(err)
		}
		wide := make([]lane.W4, len(pis))
		for i, w := range pis {
			wide[i] = lane.Broadcast[lane.W4](w)
		}
		got := m.Eval(wide)
		for po := range want {
			for k := 0; k < 4; k++ {
				if got[po][k] != want[po] {
					t.Fatalf("cyc %d PO %d word %d: cleared machine %x, evaluator %x", cyc, po, k, got[po][k], want[po])
				}
			}
		}
		ev.Clock()
		m.Clock()
	}
}

// TestMachineClearFaultLanes pins the pair-scoped clearing the ATPG pack
// scheduler re-arms through: clearing one lane subset must fully retire
// those lanes' injections (they return to the fault-free path) while the
// other lanes' fault machines evolve untouched, across repeated
// clear/re-inject cycles on the same machine.
func TestMachineClearFaultLanes(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		nl := randomNetlist(t, seed+40, 4, 3, 15)
		prog, err := Compile(nl)
		if err != nil {
			t.Fatal(err)
		}
		ev, err := NewEvaluator(nl)
		if err != nil {
			t.Fatal(err)
		}
		m := NewMachine[lane.W1](prog)
		sites := allSites(nl)
		if len(sites) > 64 {
			sites = sites[:64]
		}
		rng := rand.New(rand.NewSource(seed + 33))
		for round := 0; round < 3; round++ {
			for ln, site := range sites {
				m.InjectFault(site, lane.Bit[lane.W1](ln))
			}
			// Clear a round-dependent subset lane by lane (the scheduler
			// clears one pair at a time).
			cleared := make([]bool, len(sites))
			for ln := range sites {
				if (ln+round)%3 == 0 {
					m.ClearFaultLanes(lane.Bit[lane.W1](ln))
					cleared[ln] = true
				}
			}
			m.Reset()
			stim := make([][]uint64, 4)
			for c := range stim {
				stim[c] = make([]uint64, len(nl.PIs))
				for i := range stim[c] {
					if rng.Intn(2) == 1 {
						stim[c][i] = ^uint64(0)
					}
				}
			}
			got := make([][]lane.W1, len(stim))
			for cyc, pis := range stim {
				wide := make([]lane.W1, len(pis))
				for i, w := range pis {
					wide[i] = lane.Broadcast[lane.W1](w)
				}
				got[cyc] = append([]lane.W1(nil), m.Eval(wide)...)
				m.Clock()
			}
			for ln, site := range sites {
				ev.Reset()
				for cyc, pis := range stim {
					var want []uint64
					if cleared[ln] {
						want, err = ev.Eval(pis)
						if err != nil {
							t.Fatal(err)
						}
						ev.Clock()
					} else {
						want = ev.EvalWith(pis, site, ^uint64(0))
						ev.ClockWith(site, ^uint64(0))
					}
					for po := range want {
						wbit := want[po] & 1
						gbit := got[cyc][po][0] >> uint(ln) & 1
						if gbit != wbit {
							t.Fatalf("seed %d round %d lane %d (cleared=%v) site %+v cyc %d PO %d: lane bit %d, reference %d",
								seed, round, ln, cleared[ln], site, cyc, po, gbit, wbit)
						}
					}
				}
			}
			// Retire everything before the next round re-injects: the
			// machine must land back on the fault-free fast path.
			m.ClearFaultLanes(lane.Broadcast[lane.W1](^uint64(0)))
		}
	}
}

// TestMachinePIWordCountPanics pins the documented panic on shape misuse.
func TestMachinePIWordCountPanics(t *testing.T) {
	nl := buildMux(t)
	prog, err := Compile(nl)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine[lane.W1](prog)
	defer func() {
		if recover() == nil {
			t.Fatal("short PI slice did not panic")
		}
	}()
	m.Eval([]lane.W1{{1}})
}
