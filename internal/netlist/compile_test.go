package netlist

import (
	"fmt"
	"math/rand"
	"testing"
)

// randomNetlist builds a random levelizable netlist with nPIs inputs,
// nFFs flip-flops (with feedback through the combinational cloud) and
// nGates gates drawn from every combinational type with arities 1..4, so
// the compiled program exercises every opcode including the N-ary forms.
func randomNetlist(t *testing.T, seed int64, nPIs, nFFs, nGates int) *Netlist {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	n := New(fmt.Sprintf("rand%d", seed))
	for i := 0; i < nPIs; i++ {
		n.AddInput(fmt.Sprintf("i%d", i))
	}
	for i := 0; i < nFFs; i++ {
		n.AddDFF(fmt.Sprintf("ff%d", i), uint64(rng.Intn(2)))
	}
	if rng.Intn(2) == 0 {
		n.AddGate(Const0)
	}
	if rng.Intn(2) == 0 {
		n.AddGate(Const1)
	}
	comb := []GateType{Buf, Not, And, Or, Nand, Nor, Xor, Xnor}
	for i := 0; i < nGates; i++ {
		t1 := comb[rng.Intn(len(comb))]
		arity := 2 + rng.Intn(3)
		if t1 == Buf || t1 == Not {
			arity = 1
		}
		fanin := make([]int, arity)
		for j := range fanin {
			fanin[j] = rng.Intn(len(n.Gates)) // only existing gates: acyclic
		}
		n.AddGate(t1, fanin...)
	}
	// Feedback: every FF's D comes from anywhere in the cloud.
	for _, ff := range n.FFs {
		n.SetDFFInput(ff, rng.Intn(len(n.Gates)))
	}
	// Observe a handful of random gates plus the last one.
	for i := 0; i < 3; i++ {
		id := rng.Intn(len(n.Gates))
		n.MarkOutput(id, fmt.Sprintf("o%d", i))
	}
	n.MarkOutput(len(n.Gates)-1, "olast")
	if err := n.Validate(); err != nil {
		t.Fatalf("random netlist invalid: %v", err)
	}
	return n
}

// allSites enumerates every stem and pin fault site of a netlist, both
// polarities — a superset of the collapsed fault list, so the differential
// tests also cover sites the fault simulator would normally skip.
func allSites(nl *Netlist) []FaultSite {
	var out []FaultSite
	for _, g := range nl.Gates {
		for v := uint64(0); v <= 1; v++ {
			out = append(out, FaultSite{Gate: g.ID, Pin: -1, Stuck: v})
			for j := range g.Fanin {
				out = append(out, FaultSite{Gate: g.ID, Pin: j, Stuck: v})
			}
		}
	}
	return out
}

func randWords(rng *rand.Rand, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = rng.Uint64()
	}
	return out
}

// TestMachineMatchesEvaluatorFaultFree pins the compiled fast path
// against the Evaluator over multiple clocked cycles of random stimuli.
func TestMachineMatchesEvaluatorFaultFree(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		nl := randomNetlist(t, seed, 3+int(seed%4), int(seed%5), 12+int(seed)*3)
		ev, err := NewEvaluator(nl)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := Compile(nl)
		if err != nil {
			t.Fatal(err)
		}
		m := prog.NewMachine()
		rng := rand.New(rand.NewSource(seed + 100))
		for cyc := 0; cyc < 8; cyc++ {
			pis := randWords(rng, len(nl.PIs))
			want, err := ev.Eval(pis)
			if err != nil {
				t.Fatal(err)
			}
			got := m.Eval(pis)
			for po := range want {
				if got[po] != want[po] {
					t.Fatalf("seed %d cyc %d PO %d: machine %x, evaluator %x", seed, cyc, po, got[po], want[po])
				}
			}
			ev.Clock()
			m.Clock()
			for i, s := range ev.State() {
				if m.State()[i] != s {
					t.Fatalf("seed %d cyc %d FF %d: state %x, evaluator %x", seed, cyc, i, m.State()[i], s)
				}
			}
		}
	}
}

// TestMachineMatchesEvaluatorSingleFault checks that injecting one fault
// into an arbitrary lane subset reproduces EvalWith/ClockWith exactly, for
// every fault site of random sequential netlists.
func TestMachineMatchesEvaluatorSingleFault(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		nl := randomNetlist(t, seed, 4, 3, 15)
		ev, err := NewEvaluator(nl)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := Compile(nl)
		if err != nil {
			t.Fatal(err)
		}
		m := prog.NewMachine()
		rng := rand.New(rand.NewSource(seed + 500))
		for _, site := range allSites(nl) {
			mask := rng.Uint64()
			stim := make([][]uint64, 4)
			for c := range stim {
				stim[c] = randWords(rng, len(nl.PIs))
			}
			ev.Reset()
			m.ClearFaults()
			m.InjectFault(site, mask)
			m.Reset()
			for cyc, pis := range stim {
				want := ev.EvalWith(pis, site, mask)
				got := m.Eval(pis)
				for po := range want {
					if got[po] != want[po] {
						t.Fatalf("seed %d site %+v mask %x cyc %d PO %d: machine %x, evaluator %x",
							seed, site, mask, cyc, po, got[po], want[po])
					}
				}
				ev.ClockWith(site, mask)
				m.Clock()
			}
		}
	}
}

// TestMachineMultiFaultLanes is the parallel-fault guarantee: 64 distinct
// faults injected one per lane evolve as 64 independent fault machines.
// Each lane must match a dedicated single-fault Evaluator run.
func TestMachineMultiFaultLanes(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		nl := randomNetlist(t, seed+50, 4, 4, 20)
		prog, err := Compile(nl)
		if err != nil {
			t.Fatal(err)
		}
		sites := allSites(nl)
		batch := sites
		if len(batch) > 64 {
			batch = batch[:64]
		}
		m := prog.NewMachine()
		for lane, site := range batch {
			m.InjectFault(site, 1<<uint(lane))
		}
		m.Reset()
		rng := rand.New(rand.NewSource(seed + 900))
		stim := make([][]uint64, 6)
		for c := range stim {
			// Broadcast stimuli: every lane sees the same 0/1 input.
			stim[c] = make([]uint64, len(nl.PIs))
			for i := range stim[c] {
				if rng.Intn(2) == 1 {
					stim[c][i] = ^uint64(0)
				}
			}
		}
		got := make([][]uint64, len(stim))
		for cyc, pis := range stim {
			got[cyc] = append([]uint64(nil), m.Eval(pis)...)
			m.Clock()
		}
		ev, err := NewEvaluator(nl)
		if err != nil {
			t.Fatal(err)
		}
		for lane, site := range batch {
			ev.Reset()
			for cyc, pis := range stim {
				want := ev.EvalWith(pis, site, ^uint64(0))
				for po := range want {
					wbit := want[po] >> 0 & 1
					gbit := got[cyc][po] >> uint(lane) & 1
					if gbit != wbit {
						t.Fatalf("seed %d lane %d site %+v cyc %d PO %d: lane bit %d, reference %d",
							seed, lane, site, cyc, po, gbit, wbit)
					}
				}
				ev.ClockWith(site, ^uint64(0))
			}
		}
	}
}

// TestMachineClearFaults verifies a cleared machine returns to the
// fault-free fast path bit-identically.
func TestMachineClearFaults(t *testing.T) {
	nl := randomNetlist(t, 7, 4, 2, 15)
	prog, err := Compile(nl)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := NewEvaluator(nl)
	if err != nil {
		t.Fatal(err)
	}
	m := prog.NewMachine()
	for lane, site := range allSites(nl) {
		m.InjectFault(site, 1<<uint(lane%64))
	}
	m.ClearFaults()
	m.Reset()
	rng := rand.New(rand.NewSource(77))
	for cyc := 0; cyc < 4; cyc++ {
		pis := randWords(rng, len(nl.PIs))
		want, err := ev.Eval(pis)
		if err != nil {
			t.Fatal(err)
		}
		got := m.Eval(pis)
		for po := range want {
			if got[po] != want[po] {
				t.Fatalf("cyc %d PO %d: cleared machine %x, evaluator %x", cyc, po, got[po], want[po])
			}
		}
		ev.Clock()
		m.Clock()
	}
}

// TestMachinePIWordCountPanics pins the documented panic on shape misuse.
func TestMachinePIWordCountPanics(t *testing.T) {
	nl := buildMux(t)
	prog, err := Compile(nl)
	if err != nil {
		t.Fatal(err)
	}
	m := prog.NewMachine()
	defer func() {
		if recover() == nil {
			t.Fatal("short PI slice did not panic")
		}
	}()
	m.Eval([]uint64{1})
}
