// Dual-rail three-valued expansion: evaluating Kleene (0/1/X) logic on
// the compiled two-valued Machine.
//
// PODEM's implication step is a forward simulation of the circuit in
// three-valued logic — every net is 0, 1 or X — once per decision, on two
// planes (good machine and faulty machine). The compiled engine only
// speaks two-valued words, so TriExpand translates the circuit instead of
// the engine: every net splits into two rails, hi ("the value is 1") and
// lo ("the value is 0"), with X encoded as both rails low. Kleene
// semantics then reduce to plain gates over rails — AND's hi rail is the
// AND of the input hi rails, its lo rail the OR of the input lo rails;
// inversion swaps rails; the XOR family adds a definedness term — so one
// pass of a compiled Machine over the twin reproduces the three-valued
// interpreter gate for gate, bit for bit.
//
// Stuck-at faults translate too: forcing a net to the definite value v is
// forcing its hi rail to (v == 1) and its lo rail to (v == 0), so one
// source fault site becomes two twin sites, injectable with
// Machine.InjectFault like any other stuck-at pair. Lanes stay lanes:
// the ATPG engine runs the good plane in lane 0 and the faulty plane in
// lane 1 of a single W=1 Machine pass (see internal/atpg).
package netlist

import "fmt"

// TriMap relates gates of a source combinational netlist to their rail
// gates in the dual-rail twin produced by TriExpand.
type TriMap struct {
	// Hi[id] and Lo[id] are the twin gates computing "source gate id is
	// 1" and "source gate id is 0". Every source gate has both rails.
	Hi, Lo []int
	// pinHi/pinLo map an (XOR-family gate, pin) pair to the dedicated
	// rail buffers inserted for that pin, so fanout-branch faults on
	// XOR inputs translate to stem faults confined to this gate's view.
	pinHi, pinLo map[[2]int]int
}

// TriExpand builds the dual-rail twin of a combinational netlist. The
// twin's primary inputs are the source PIs' rails, interleaved in source
// PI order (hi rail of PI 0, lo rail of PI 0, hi rail of PI 1, ...), and
// its primary outputs are the source POs' rails in the same interleaving.
// Driving a PI pair (1,0)/(0,1)/(0,0) presents the source input as
// 1/0/X; each output pair decodes the same way, and (1,1) cannot arise.
func TriExpand(n *Netlist) (*Netlist, *TriMap, error) {
	if n.IsSequential() {
		return nil, nil, fmt.Errorf("netlist: TriExpand needs a combinational netlist; %s has flip-flops", n.Name)
	}
	order, err := n.Levelize()
	if err != nil {
		return nil, nil, err
	}
	tw := New(n.Name + "_3v")
	m := &TriMap{
		Hi:    make([]int, len(n.Gates)),
		Lo:    make([]int, len(n.Gates)),
		pinHi: make(map[[2]int]int),
		pinLo: make(map[[2]int]int),
	}
	for i := range m.Hi {
		m.Hi[i], m.Lo[i] = -1, -1
	}
	for _, id := range n.PIs {
		name := n.Gates[id].Name
		m.Hi[id] = tw.AddInput(name + ".h")
		m.Lo[id] = tw.AddInput(name + ".l")
	}
	for _, g := range n.Gates {
		switch g.Type {
		case Const0:
			m.Hi[g.ID] = tw.AddGate(Const0)
			m.Lo[g.ID] = tw.AddGate(Const1)
		case Const1:
			m.Hi[g.ID] = tw.AddGate(Const1)
			m.Lo[g.ID] = tw.AddGate(Const0)
		}
	}
	for _, id := range order {
		g := n.Gates[id]
		his := make([]int, len(g.Fanin))
		los := make([]int, len(g.Fanin))
		for j, f := range g.Fanin {
			his[j], los[j] = m.Hi[f], m.Lo[f]
			if his[j] < 0 || los[j] < 0 {
				return nil, nil, fmt.Errorf("netlist: TriExpand: gate %d fanin %d unmapped", id, f)
			}
		}
		switch g.Type {
		case Buf:
			m.Hi[id] = tw.AddGate(Buf, his[0])
			m.Lo[id] = tw.AddGate(Buf, los[0])
		case Not:
			m.Hi[id] = tw.AddGate(Buf, los[0])
			m.Lo[id] = tw.AddGate(Buf, his[0])
		case And:
			m.Hi[id] = tw.AddGate(And, his...)
			m.Lo[id] = tw.AddGate(Or, los...)
		case Nand:
			m.Hi[id] = tw.AddGate(Or, los...)
			m.Lo[id] = tw.AddGate(And, his...)
		case Or:
			m.Hi[id] = tw.AddGate(Or, his...)
			m.Lo[id] = tw.AddGate(And, los...)
		case Nor:
			m.Hi[id] = tw.AddGate(And, los...)
			m.Lo[id] = tw.AddGate(Or, his...)
		case Xor, Xnor:
			// Kleene XOR is X as soon as one input is X, else the parity
			// of the definite values. Each pin gets dedicated rail
			// buffers so a fanout-branch fault on the pin stays a stem
			// fault on gates only this XOR reads.
			defs := make([]int, len(g.Fanin))
			hbs := make([]int, len(g.Fanin))
			for j := range g.Fanin {
				hb := tw.AddGate(Buf, his[j])
				lb := tw.AddGate(Buf, los[j])
				m.pinHi[[2]int{id, j}] = hb
				m.pinLo[[2]int{id, j}] = lb
				hbs[j] = hb
				defs[j] = tw.AddGate(Or, hb, lb)
			}
			def := tw.AddGate(And, defs...)
			p := tw.AddGate(Xor, hbs...)
			np := tw.AddGate(Not, p)
			if g.Type == Xor {
				m.Hi[id] = tw.AddGate(And, def, p)
				m.Lo[id] = tw.AddGate(And, def, np)
			} else {
				m.Hi[id] = tw.AddGate(And, def, np)
				m.Lo[id] = tw.AddGate(And, def, p)
			}
		default:
			return nil, nil, fmt.Errorf("netlist: TriExpand: unsupported gate type %s", g.Type)
		}
	}
	for i, id := range n.POs {
		tw.MarkOutput(m.Hi[id], n.PONames[i]+".h")
		tw.MarkOutput(m.Lo[id], n.PONames[i]+".l")
	}
	if err := tw.Validate(); err != nil {
		return nil, nil, fmt.Errorf("netlist: dual-rail twin invalid: %w", err)
	}
	return tw, m, nil
}

// FaultSites translates a stuck-at site of the source netlist into the
// twin sites that force the faulted connection's rails to the stuck
// value's encoding. Sites with no effect under the source semantics
// (pin faults on gates without that pin) translate to nothing.
func (m *TriMap) FaultSites(n *Netlist, site FaultSite) []FaultSite {
	g := n.Gates[site.Gate]
	hs := uint64(0) // hi rail stuck value
	ls := uint64(0) // lo rail stuck value
	if site.Stuck == 1 {
		hs = 1
	} else {
		ls = 1
	}
	if site.Pin < 0 {
		// Stem fault: force the net's rails, wherever they live (comb
		// gate outputs, PIs or constants all inject the same way).
		return []FaultSite{
			{Gate: m.Hi[site.Gate], Pin: -1, Stuck: hs},
			{Gate: m.Lo[site.Gate], Pin: -1, Stuck: ls},
		}
	}
	if !g.Type.IsComb() || site.Pin >= len(g.Fanin) {
		return nil // inert under the source semantics
	}
	switch g.Type {
	case Buf, And, Or:
		// Rail gates read (hi, lo) fanins positionally.
		return []FaultSite{
			{Gate: m.Hi[site.Gate], Pin: site.Pin, Stuck: hs},
			{Gate: m.Lo[site.Gate], Pin: site.Pin, Stuck: ls},
		}
	case Not, Nand, Nor:
		// Inverting gates swap rails: the hi twin reads lo fanins.
		return []FaultSite{
			{Gate: m.Hi[site.Gate], Pin: site.Pin, Stuck: ls},
			{Gate: m.Lo[site.Gate], Pin: site.Pin, Stuck: hs},
		}
	case Xor, Xnor:
		// The pin's dedicated rail buffers carry this gate's view.
		return []FaultSite{
			{Gate: m.pinHi[[2]int{site.Gate, site.Pin}], Pin: -1, Stuck: hs},
			{Gate: m.pinLo[[2]int{site.Gate, site.Pin}], Pin: -1, Stuck: ls},
		}
	}
	return nil
}
