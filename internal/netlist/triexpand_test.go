package netlist

import (
	"testing"

	"repro/internal/lane"
)

// The reference three-valued (Kleene) interpreter the twin must
// reproduce. It mirrors the ATPG engine's evaluator: 0, 1, or X per net,
// X as soon as a controlling value cannot be decided.
const kX = 2 // reference X value; 0 and 1 are themselves

func kNot(v uint8) uint8 {
	if v == kX {
		return kX
	}
	return v ^ 1
}

// kEval evaluates one gate in Kleene logic, optionally overriding input
// pin fpin with fval (fpin -1 for no override).
func kEval(g *Gate, vals []uint8, fpin int, fval uint8) uint8 {
	in := func(j int) uint8 {
		if j == fpin {
			return fval
		}
		return vals[g.Fanin[j]]
	}
	switch g.Type {
	case Buf:
		return in(0)
	case Not:
		return kNot(in(0))
	case And, Nand:
		v := uint8(1)
		for j := range g.Fanin {
			switch in(j) {
			case 0:
				v = 0
			case kX:
				if v != 0 {
					v = kX
				}
			}
		}
		if g.Type == Nand {
			return kNot(v)
		}
		return v
	case Or, Nor:
		v := uint8(0)
		for j := range g.Fanin {
			switch in(j) {
			case 1:
				v = 1
			case kX:
				if v != 1 {
					v = kX
				}
			}
		}
		if g.Type == Nor {
			return kNot(v)
		}
		return v
	case Xor, Xnor:
		v := uint8(0)
		for j := range g.Fanin {
			iv := in(j)
			if iv == kX {
				return kX
			}
			v ^= iv
		}
		if g.Type == Xnor {
			return kNot(v)
		}
		return v
	}
	return vals[g.ID]
}

// kSimulate forward-simulates the netlist in Kleene logic with at most
// one fault site injected (Gate < 0 for none), mirroring the ATPG
// implication semantics: non-combinational stems apply before gate
// evaluation, pin overrides during, combinational stems after.
func kSimulate(t *testing.T, n *Netlist, assign []uint8, f FaultSite) []uint8 {
	t.Helper()
	order, err := n.Levelize()
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]uint8, len(n.Gates))
	for i := range vals {
		vals[i] = kX
	}
	for i, id := range n.PIs {
		vals[id] = assign[i]
	}
	for _, g := range n.Gates {
		switch g.Type {
		case Const0:
			vals[g.ID] = 0
		case Const1:
			vals[g.ID] = 1
		}
	}
	if f.Gate >= 0 && f.Pin < 0 && !n.Gates[f.Gate].Type.IsComb() {
		vals[f.Gate] = uint8(f.Stuck)
	}
	for _, id := range order {
		g := n.Gates[id]
		fpin, fval := -1, kX
		if id == f.Gate && f.Pin >= 0 && f.Pin < len(g.Fanin) {
			fpin, fval = f.Pin, int(f.Stuck)
		}
		vals[id] = kEval(g, vals, fpin, uint8(fval))
		if id == f.Gate && f.Pin < 0 {
			vals[id] = uint8(f.Stuck)
		}
	}
	return vals
}

// triCircuits builds the gate-type coverage set for the twin pin:
// every primitive, n-ary forms, constants, duplicated fanins and
// reconvergence.
func triCircuits() []*Netlist {
	var out []*Netlist

	n := New("alltypes")
	a := n.AddInput("a")
	b := n.AddInput("b")
	c := n.AddInput("c")
	c0 := n.AddGate(Const0)
	c1 := n.AddGate(Const1)
	nb := n.AddGate(Not, b)
	bb := n.AddGate(Buf, a)
	g1 := n.AddGate(And, a, nb, c)
	g2 := n.AddGate(Or, bb, c, c0)
	g3 := n.AddGate(Nand, g1, g2)
	g4 := n.AddGate(Nor, a, g2)
	g5 := n.AddGate(Xor, g3, g4, c)
	g6 := n.AddGate(Xnor, g5, c1)
	n.MarkOutput(g5, "y0")
	n.MarkOutput(g6, "y1")
	out = append(out, n)

	n = New("dupfanin")
	a = n.AddInput("a")
	b = n.AddInput("b")
	g1 = n.AddGate(And, a, a)
	g2 = n.AddGate(Xor, a, b, a)
	g3 = n.AddGate(Or, g1, g2)
	n.MarkOutput(g3, "y")
	out = append(out, n)

	n = New("reconv")
	a = n.AddInput("a")
	b = n.AddInput("b")
	na := n.AddGate(Not, a)
	g1 = n.AddGate(And, a, na) // constant 0 in two-valued logic, X-prone in Kleene
	g2 = n.AddGate(Xnor, a, b)
	g3 = n.AddGate(Nor, g1, g2)
	n.MarkOutput(g3, "y")
	out = append(out, n)

	return out
}

// triSites enumerates every stem and pin fault of the netlist, plus an
// out-of-range pin per gate (which must be inert on both engines).
func triSites(n *Netlist) []FaultSite {
	var out []FaultSite
	for _, g := range n.Gates {
		for _, v := range []uint64{0, 1} {
			out = append(out, FaultSite{Gate: g.ID, Pin: -1, Stuck: v})
			for j := range g.Fanin {
				out = append(out, FaultSite{Gate: g.ID, Pin: j, Stuck: v})
			}
		}
		out = append(out, FaultSite{Gate: g.ID, Pin: len(g.Fanin), Stuck: 1})
	}
	return out
}

// TestTriExpandMatchesKleene pins the dual-rail twin bit-identical to the
// reference Kleene interpreter: over exhaustive three-valued input
// assignments and every fault site, a single two-lane Machine pass (good
// plane in lane 0, faulty plane in lane 1) must decode to exactly the
// interpreter's good and faulty values on every net.
func TestTriExpandMatchesKleene(t *testing.T) {
	const goodLane, faultyLane = 0, 1
	for _, n := range triCircuits() {
		t.Run(n.Name, func(t *testing.T) {
			tw, tm, err := TriExpand(n)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := Compile(tw)
			if err != nil {
				t.Fatal(err)
			}
			m := NewMachine[lane.W1](prog)
			pis := make([]lane.W1, len(tw.PIs))
			assign := make([]uint8, len(n.PIs))
			nAssign := 1
			for range n.PIs {
				nAssign *= 3
			}
			for _, site := range triSites(n) {
				m.ClearFaults()
				for _, ts := range tm.FaultSites(n, site) {
					m.InjectFault(ts, lane.Bit[lane.W1](faultyLane))
				}
				for code := 0; code < nAssign; code++ {
					x := code
					for i := range assign {
						assign[i] = uint8(x % 3) // 0, 1, or kX
						x /= 3
					}
					good := kSimulate(t, n, assign, FaultSite{Gate: -1, Pin: -1})
					bad := kSimulate(t, n, assign, site)
					for i, v := range assign {
						var hw, lw uint64
						switch v {
						case 1:
							hw = ^uint64(0)
						case 0:
							lw = ^uint64(0)
						}
						pis[2*i] = lane.W1{hw}
						pis[2*i+1] = lane.W1{lw}
					}
					m.Eval(pis)
					for id := range n.Gates {
						hv := m.Value(tm.Hi[id])[0]
						lv := m.Value(tm.Lo[id])[0]
						gotG := decodeRails(hv&(1<<goodLane) != 0, lv&(1<<goodLane) != 0)
						gotF := decodeRails(hv&(1<<faultyLane) != 0, lv&(1<<faultyLane) != 0)
						if gotG != good[id] || gotF != bad[id] {
							t.Fatalf("%s: site %+v assign %v gate %d: twin (good %d, faulty %d), reference (%d, %d)",
								n.Name, site, assign, id, gotG, gotF, good[id], bad[id])
						}
					}
				}
			}
		})
	}
}

func decodeRails(h, l bool) uint8 {
	switch {
	case h && l:
		return 99 // invalid encoding; must never appear
	case h:
		return 1
	case l:
		return 0
	}
	return kX
}

// TestTriExpandShape checks the structural contract: interleaved PI/PO
// rails in source order, a rail pair for every source gate, and rejection
// of sequential netlists.
func TestTriExpandShape(t *testing.T) {
	n := triCircuits()[0]
	tw, tm, err := TriExpand(n)
	if err != nil {
		t.Fatal(err)
	}
	if len(tw.PIs) != 2*len(n.PIs) {
		t.Errorf("twin has %d PIs for %d source PIs", len(tw.PIs), len(n.PIs))
	}
	if len(tw.POs) != 2*len(n.POs) {
		t.Errorf("twin has %d POs for %d source POs", len(tw.POs), len(n.POs))
	}
	for i, id := range n.PIs {
		if tw.PIs[2*i] != tm.Hi[id] || tw.PIs[2*i+1] != tm.Lo[id] {
			t.Errorf("PI %d rails not interleaved at positions %d/%d", i, 2*i, 2*i+1)
		}
	}
	for id := range n.Gates {
		if tm.Hi[id] < 0 || tm.Lo[id] < 0 {
			t.Errorf("source gate %d has no rails", id)
		}
	}
	seq := New("seq")
	d := seq.AddInput("d")
	q := seq.AddDFF("q", 0)
	seq.SetDFFInput(q, d)
	seq.MarkOutput(q, "q")
	if _, _, err := TriExpand(seq); err == nil {
		t.Fatal("sequential netlist accepted")
	}
}
