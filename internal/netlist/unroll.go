package netlist

import "fmt"

// UnrollMap relates gates of a sequential netlist to their copies in the
// combinational time-frame expansion produced by Unroll.
type UnrollMap struct {
	Frames int
	// GateAt[f][orig] is the unrolled gate implementing original gate
	// `orig` in frame f.
	GateAt [][]int
	// PIsPerFrame is the number of original primary inputs (the unrolled
	// netlist's PIs are ordered frame-major: frame 0's inputs first).
	PIsPerFrame int
}

// Unroll expands a sequential netlist into `frames` combinational time
// frames: frame 0 sees the power-on flip-flop values as constants, frame
// f>0 sees frame f-1's next-state logic through buffers, every frame gets
// its own copy of the primary inputs, and every frame's primary outputs
// are observable. The result is a purely combinational netlist suitable
// for PODEM; stuck-at faults of the original map to one fault site per
// frame (see SitesInFrames).
func Unroll(n *Netlist, frames int) (*Netlist, *UnrollMap, error) {
	if frames < 1 {
		return nil, nil, fmt.Errorf("netlist: unroll needs >= 1 frame")
	}
	order, err := n.Levelize()
	if err != nil {
		return nil, nil, err
	}
	u := New(fmt.Sprintf("%s_x%d", n.Name, frames))
	m := &UnrollMap{
		Frames:      frames,
		GateAt:      make([][]int, frames),
		PIsPerFrame: len(n.PIs),
	}
	for f := 0; f < frames; f++ {
		m.GateAt[f] = make([]int, len(n.Gates))
		for i := range m.GateAt[f] {
			m.GateAt[f][i] = -1
		}
	}

	for f := 0; f < frames; f++ {
		at := m.GateAt[f]
		// Inputs, constants and state first (they are fanin-free in-frame).
		for _, id := range n.PIs {
			at[id] = u.AddInput(fmt.Sprintf("%s#%d", n.Gates[id].Name, f))
		}
		for _, g := range n.Gates {
			switch g.Type {
			case Const0, Const1:
				at[g.ID] = u.AddGate(g.Type)
			}
		}
		for _, id := range n.FFs {
			g := n.Gates[id]
			if f == 0 {
				t := Const0
				if g.Init&1 == 1 {
					t = Const1
				}
				at[id] = u.AddGate(t)
			} else {
				prevD := m.GateAt[f-1][g.Fanin[0]]
				if prevD < 0 {
					return nil, nil, fmt.Errorf("netlist: unroll: frame %d DFF %s input unmapped", f, g.Name)
				}
				at[id] = u.AddGate(Buf, prevD)
				u.Gates[at[id]].Name = fmt.Sprintf("%s#%d", g.Name, f)
			}
		}
		// Combinational gates in topological order.
		for _, id := range order {
			g := n.Gates[id]
			fanin := make([]int, len(g.Fanin))
			for j, src := range g.Fanin {
				fanin[j] = at[src]
				if fanin[j] < 0 {
					return nil, nil, fmt.Errorf("netlist: unroll: frame %d gate %d fanin unmapped", f, id)
				}
			}
			// Single-input gate arities collapse (AddGate enforces >= 2
			// fanins for AND-class gates, which cannot happen here since
			// the source validated).
			at[id] = u.AddGate(g.Type, fanin...)
		}
		for i, id := range n.POs {
			u.MarkOutput(at[id], fmt.Sprintf("%s#%d", n.PONames[i], f))
		}
	}
	if err := u.Validate(); err != nil {
		return nil, nil, fmt.Errorf("netlist: unrolled netlist invalid: %w", err)
	}
	return u, m, nil
}

// SitesInFrames translates a fault site of the original netlist into its
// unrolled copies, one per frame. Sites that have no representation in a
// frame (a DFF output fault in frame 0 lands on the init constant whose
// stuck value equals the constant, or a DFF D-pin fault in frame 0) are
// omitted.
func (m *UnrollMap) SitesInFrames(n *Netlist, site FaultSite) []FaultSite {
	var out []FaultSite
	g := n.Gates[site.Gate]
	for f := 0; f < m.Frames; f++ {
		ug := m.GateAt[f][site.Gate]
		if ug < 0 {
			continue
		}
		if g.Type == DFF {
			if site.Pin == 0 {
				// D-pin fault: frame 0's state is a constant with no D pin;
				// later frames model the pin on the buffer.
				if f == 0 {
					continue
				}
				out = append(out, FaultSite{Gate: ug, Pin: 0, Stuck: site.Stuck})
				continue
			}
			// Output fault: applies in every frame (on the const or buf).
			out = append(out, FaultSite{Gate: ug, Pin: -1, Stuck: site.Stuck})
			continue
		}
		out = append(out, FaultSite{Gate: ug, Pin: site.Pin, Stuck: site.Stuck})
	}
	return out
}
