package netlist

import "testing"

func TestSweepRemovesDeadLogic(t *testing.T) {
	n := New("dead")
	a := n.AddInput("a")
	b := n.AddInput("b")
	live := n.AddGate(And, a, b)
	// Dead cone: feeds nothing observable.
	d1 := n.AddGate(Or, a, b)
	_ = n.AddGate(Not, d1)
	n.MarkOutput(live, "y")

	s, err := Sweep(n)
	if err != nil {
		t.Fatal(err)
	}
	if s.CombGateCount() != 1 {
		t.Errorf("swept gate count = %d, want 1", s.CombGateCount())
	}
	if len(s.PIs) != 2 || len(s.POs) != 1 {
		t.Errorf("interface changed: %v", s.Stats())
	}
}

func TestSweepKeepsFFCones(t *testing.T) {
	// q feeds the PO; its D cone (through a NOT) must survive even though
	// the NOT does not reach a PO combinationally.
	n := New("ffcone")
	a := n.AddInput("a")
	q := n.AddDFF("q", 1)
	inv := n.AddGate(Not, a)
	n.SetDFFInput(q, inv)
	n.MarkOutput(q, "qo")
	// Dead second FF.
	q2 := n.AddDFF("q2", 0)
	n.SetDFFInput(q2, a)

	s, err := Sweep(n)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.FFs) != 1 {
		t.Fatalf("FF count = %d, want 1", len(s.FFs))
	}
	if s.CombGateCount() != 1 {
		t.Fatalf("comb count = %d, want 1 (the NOT)", s.CombGateCount())
	}
	// Behavior preserved: q starts at 1, then captures NOT(a).
	e, err := NewEvaluator(s)
	if err != nil {
		t.Fatal(err)
	}
	out, _ := e.Eval([]uint64{0})
	if out[0]&1 != 1 {
		t.Error("init value lost")
	}
	e.Clock()
	out, _ = e.Eval([]uint64{0})
	if out[0]&1 != 1 {
		t.Error("NOT(0) should latch 1")
	}
}

func TestSweepPreservesBehavior(t *testing.T) {
	n := buildMux(t)
	// Add dead logic on top.
	d := n.AddGate(Xor, n.PIs[0], n.PIs[1])
	_ = n.AddGate(Not, d)
	s, err := Sweep(n)
	if err != nil {
		t.Fatal(err)
	}
	e1, _ := NewEvaluator(n)
	e2, _ := NewEvaluator(s)
	for trial := uint64(0); trial < 8; trial++ {
		pis := []uint64{trial * 0x9E3779B97F4A7C15, trial ^ 0xABCD, ^trial}
		o1, _ := e1.Eval(pis)
		o1c := append([]uint64(nil), o1...)
		o2, _ := e2.Eval(pis)
		if o1c[0] != o2[0] {
			t.Fatalf("sweep changed behavior at trial %d", trial)
		}
	}
	if s.CombGateCount() >= n.CombGateCount() {
		t.Errorf("sweep removed nothing: %d >= %d", s.CombGateCount(), n.CombGateCount())
	}
}

func TestSweepIdempotent(t *testing.T) {
	n := buildMux(t)
	s1, err := Sweep(n)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Sweep(s1)
	if err != nil {
		t.Fatal(err)
	}
	if s1.CombGateCount() != s2.CombGateCount() || len(s1.Gates) != len(s2.Gates) {
		t.Errorf("sweep not idempotent: %v vs %v", s1.Stats(), s2.Stats())
	}
}
