// Package netlist represents gate-level circuits: the structural view on
// which stuck-at faults are defined. A netlist is a flat graph of primitive
// gates (AND/OR/NAND/NOR/XOR/XNOR/NOT/BUF, constants, D flip-flops) with
// named primary inputs and outputs, in the spirit of the ISCAS/ITC
// benchmark netlists. The package also reads and writes the ISCAS-89
// ".bench" interchange format and provides a 64-pattern-parallel
// good-machine simulator that the fault simulator builds on.
package netlist

import (
	"fmt"
	"sort"
)

// GateType enumerates primitive gate kinds.
type GateType int

// Gate kinds.
const (
	PI GateType = iota // primary input (no fanin)
	Const0
	Const1
	Buf
	Not
	And
	Or
	Nand
	Nor
	Xor
	Xnor
	DFF // one fanin (D); output is the stored state
)

var gateNames = map[GateType]string{
	PI: "INPUT", Const0: "CONST0", Const1: "CONST1", Buf: "BUF", Not: "NOT",
	And: "AND", Or: "OR", Nand: "NAND", Nor: "NOR", Xor: "XOR", Xnor: "XNOR",
	DFF: "DFF",
}

func (t GateType) String() string { return gateNames[t] }

// IsComb reports whether the gate computes combinationally from its fanins.
func (t GateType) IsComb() bool {
	switch t {
	case Buf, Not, And, Or, Nand, Nor, Xor, Xnor:
		return true
	}
	return false
}

// Gate is one node of the netlist. Gates are identified by their index in
// Netlist.Gates.
type Gate struct {
	ID    int
	Type  GateType
	Name  string // non-empty for PIs, POs and DFFs; synthesized names elsewhere
	Fanin []int
	Init  uint64 // DFF power-on value (0 or 1)
}

// Netlist is a flat gate-level circuit.
type Netlist struct {
	Name  string
	Gates []*Gate
	// PIs and POs list gate IDs in declaration order. A PO entry may be any
	// gate; its observed value is that gate's output.
	PIs []int
	POs []int
	// PONames parallels POs.
	PONames []string
	// FFs lists DFF gate IDs in creation order.
	FFs []int

	levels    []int // topological levels, computed by Levelize
	levelized bool
}

// New returns an empty netlist.
func New(name string) *Netlist { return &Netlist{Name: name} }

// AddInput creates a primary input gate and returns its ID.
func (n *Netlist) AddInput(name string) int {
	id := n.add(&Gate{Type: PI, Name: name})
	n.PIs = append(n.PIs, id)
	return id
}

// AddGate creates a gate of the given type with the given fanins and
// returns its ID. Fanin IDs must already exist.
func (n *Netlist) AddGate(t GateType, fanin ...int) int {
	if t == PI || t == DFF {
		panic("netlist: use AddInput / AddDFF")
	}
	for _, f := range fanin {
		if f < 0 || f >= len(n.Gates) {
			panic(fmt.Sprintf("netlist: fanin %d out of range", f))
		}
	}
	switch t {
	case Const0, Const1:
		if len(fanin) != 0 {
			panic("netlist: constant with fanin")
		}
	case Buf, Not:
		if len(fanin) != 1 {
			panic(fmt.Sprintf("netlist: %s needs exactly 1 fanin, got %d", t, len(fanin)))
		}
	default:
		if len(fanin) < 2 {
			panic(fmt.Sprintf("netlist: %s needs >= 2 fanins, got %d", t, len(fanin)))
		}
	}
	return n.add(&Gate{Type: t, Fanin: fanin})
}

// AddDFF creates a D flip-flop with an unset data input (set it later with
// SetDFFInput, which permits feedback) and the given power-on value.
func (n *Netlist) AddDFF(name string, init uint64) int {
	id := n.add(&Gate{Type: DFF, Name: name, Fanin: []int{-1}, Init: init & 1})
	n.FFs = append(n.FFs, id)
	return id
}

// SetDFFInput connects the D input of a flip-flop created by AddDFF.
func (n *Netlist) SetDFFInput(ff, d int) {
	g := n.Gates[ff]
	if g.Type != DFF {
		panic(fmt.Sprintf("netlist: gate %d is %s, not DFF", ff, g.Type))
	}
	if d < 0 || d >= len(n.Gates) {
		panic(fmt.Sprintf("netlist: DFF input %d out of range", d))
	}
	g.Fanin[0] = d
	n.levelized = false
}

// MarkOutput declares gate id as a primary output with the given name.
func (n *Netlist) MarkOutput(id int, name string) {
	if id < 0 || id >= len(n.Gates) {
		panic(fmt.Sprintf("netlist: output gate %d out of range", id))
	}
	n.POs = append(n.POs, id)
	n.PONames = append(n.PONames, name)
}

func (n *Netlist) add(g *Gate) int {
	g.ID = len(n.Gates)
	n.Gates = append(n.Gates, g)
	n.levelized = false
	return g.ID
}

// NumGates returns the total gate count, including PIs and DFFs.
func (n *Netlist) NumGates() int { return len(n.Gates) }

// CombGateCount returns the number of combinational gates (the usual
// "gate count" reported for benchmark circuits).
func (n *Netlist) CombGateCount() int {
	c := 0
	for _, g := range n.Gates {
		if g.Type.IsComb() {
			c++
		}
	}
	return c
}

// IsSequential reports whether the netlist contains flip-flops.
func (n *Netlist) IsSequential() bool { return len(n.FFs) > 0 }

// Validate checks structural invariants: fanins connected and in range,
// DFF inputs set, no combinational cycles.
func (n *Netlist) Validate() error {
	for _, g := range n.Gates {
		for _, f := range g.Fanin {
			if f < 0 || f >= len(n.Gates) {
				return fmt.Errorf("netlist %s: gate %d (%s) has unconnected or bad fanin %d", n.Name, g.ID, g.Type, f)
			}
		}
	}
	if len(n.POs) == 0 {
		return fmt.Errorf("netlist %s: no primary outputs", n.Name)
	}
	_, err := n.Levelize()
	return err
}

// Levelize computes topological levels for combinational evaluation: PIs,
// constants and DFF outputs are level 0; every combinational gate is one
// more than its deepest fanin. It returns the evaluation order (gate IDs
// sorted by level, ties by ID) and errors on combinational cycles.
func (n *Netlist) Levelize() ([]int, error) {
	if n.levelized {
		return n.evalOrder(), nil
	}
	levels := make([]int, len(n.Gates))
	state := make([]int, len(n.Gates)) // 0 unvisited, 1 in progress, 2 done
	var visit func(id int) error
	for i := range levels {
		levels[i] = -1
	}
	visit = func(id int) error {
		g := n.Gates[id]
		if state[id] == 2 {
			return nil
		}
		if state[id] == 1 {
			return fmt.Errorf("netlist %s: combinational cycle through gate %d (%s %s)", n.Name, id, g.Type, g.Name)
		}
		state[id] = 1
		lvl := 0
		if g.Type.IsComb() {
			for _, f := range g.Fanin {
				if f < 0 {
					return fmt.Errorf("netlist %s: gate %d has unset fanin", n.Name, id)
				}
				if err := visit(f); err != nil {
					return err
				}
				if levels[f]+1 > lvl {
					lvl = levels[f] + 1
				}
			}
		}
		// PIs, constants and DFFs break the traversal: their values are
		// available at the start of a cycle.
		levels[id] = lvl
		state[id] = 2
		return nil
	}
	for id := range n.Gates {
		if err := visit(id); err != nil {
			return nil, err
		}
	}
	// DFF D-inputs must themselves be acyclic through comb logic; visiting
	// every gate above covers them.
	n.levels = levels
	n.levelized = true
	return n.evalOrder(), nil
}

func (n *Netlist) evalOrder() []int {
	order := make([]int, 0, len(n.Gates))
	for id, g := range n.Gates {
		if g.Type.IsComb() {
			order = append(order, id)
		}
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if n.levels[a] != n.levels[b] {
			return n.levels[a] < n.levels[b]
		}
		return a < b
	})
	return order
}

// Depth returns the maximum combinational level (0 for an empty netlist).
// Levelize must have succeeded first.
func (n *Netlist) Depth() int {
	if !n.levelized {
		if _, err := n.Levelize(); err != nil {
			return 0
		}
	}
	d := 0
	for _, l := range n.levels {
		if l > d {
			d = l
		}
	}
	return d
}

// Stats summarizes a netlist for reports.
type Stats struct {
	Name     string
	PIs, POs int
	FFs      int
	Gates    int // combinational gates
	Depth    int
}

// Stats returns summary statistics.
func (n *Netlist) Stats() Stats {
	return Stats{
		Name: n.Name, PIs: len(n.PIs), POs: len(n.POs), FFs: len(n.FFs),
		Gates: n.CombGateCount(), Depth: n.Depth(),
	}
}

func (s Stats) String() string {
	return fmt.Sprintf("%s: %d PI, %d PO, %d FF, %d gates, depth %d",
		s.Name, s.PIs, s.POs, s.FFs, s.Gates, s.Depth)
}
