// Flat-program compilation of netlists, with multi-fault lane injection.
//
// The Evaluator walks the gate array with a per-gate type switch, a fanin
// slice loop and two fault-site comparisons per gate — and it can inject
// only ONE fault site per pass, broadcast across whichever lanes the mask
// selects. Fault simulation executes the same circuit once per fault per
// cycle, so that shape wastes both instruction-level and lane-level
// parallelism. Compile translates a levelized netlist once into a flat
// slot-indexed instruction stream (two-input gates get dedicated opcodes;
// wider gates read a shared fanin arena), and Machine carries the mutable
// state plus a per-batch fault-injection plan: up to lane.Count distinct
// fault sites, each masked to its own subset of lanes, so one pass
// evaluates that many independent fault machines.
//
// Machine is generic over the lane vector width (lane.Word, W ∈ {1,4,8}):
// every net value is a W-word vector, so one instruction-stream pass
// carries W×64 lanes, amortizing the per-gate decode over up to 512 fault
// machines. Each width stencils its own exec loop with constant-length
// inner loops. The fault-free path pays no injection cost (a separate
// exec loop), and injected gates re-evaluate through a generic masked
// path that reproduces Evaluator.EvalWith bit-for-bit in every lane.
//
// Semantics are pinned against the Evaluator differentially: every lane of
// a Machine pass — at every width — must equal the corresponding
// single-fault EvalWith pass (see compile_test.go), which is what lets the
// fault simulator treat the engines as interchangeable references.
package netlist

import (
	"fmt"

	"repro/internal/lane"
)

type gop uint8

// Gate opcodes. The two-input forms avoid the fanin loop entirely; the
// N-ary forms iterate the arena. Buf/Not read a single slot.
const (
	gopBuf gop = iota
	gopNot
	gopAnd2
	gopNand2
	gopOr2
	gopNor2
	gopXor2
	gopXnor2
	gopAndN
	gopNandN
	gopOrN
	gopNorN
	gopXorN
	gopXnorN
)

// ginstr is one compiled gate. dst and the fanin references are gate IDs
// (value slots are indexed by gate ID, exactly like Evaluator.vals). The
// arena range off/n is valid for every opcode — the injected path uses it
// even when the fast path reads a and b directly.
type ginstr struct {
	op     gop
	dst    int32
	a, b   int32
	off, n int32
}

// Program is a compiled netlist: the levelized instruction stream plus the
// load/latch plans the Machine executes around it. It is immutable after
// Compile and safe to share between any number of Machines, of any lane
// width.
type Program struct {
	nl     *Netlist
	code   []ginstr
	args   []int32 // shared fanin arena
	codeOf []int32 // gate ID -> instruction index, -1 for non-comb gates
	ffIdx  []int32 // gate ID -> index in nl.FFs, -1 elsewhere
	ffSrc  []int32 // D-input gate ID per FF state index
	ffInit []uint64
	consts []slotWord
}

type slotWord struct {
	slot int32
	word uint64
}

// Compile translates a netlist (which must validate) into a Program.
func Compile(nl *Netlist) (*Program, error) {
	if err := nl.Validate(); err != nil {
		return nil, err
	}
	order, err := nl.Levelize()
	if err != nil {
		return nil, err
	}
	p := &Program{
		nl:     nl,
		code:   make([]ginstr, 0, len(order)),
		codeOf: make([]int32, len(nl.Gates)),
		ffIdx:  make([]int32, len(nl.Gates)),
		ffSrc:  make([]int32, len(nl.FFs)),
		ffInit: make([]uint64, len(nl.FFs)),
	}
	for i := range p.codeOf {
		p.codeOf[i] = -1
		p.ffIdx[i] = -1
	}
	for i, id := range nl.FFs {
		g := nl.Gates[id]
		p.ffIdx[id] = int32(i)
		p.ffSrc[i] = int32(g.Fanin[0])
		if g.Init&1 == 1 {
			p.ffInit[i] = ^uint64(0)
		}
	}
	for _, g := range nl.Gates {
		switch g.Type {
		case Const0:
			p.consts = append(p.consts, slotWord{slot: int32(g.ID)})
		case Const1:
			p.consts = append(p.consts, slotWord{slot: int32(g.ID), word: ^uint64(0)})
		}
	}
	for _, id := range order {
		g := nl.Gates[id]
		in := ginstr{
			dst: int32(g.ID),
			off: int32(len(p.args)),
			n:   int32(len(g.Fanin)),
		}
		for _, f := range g.Fanin {
			p.args = append(p.args, int32(f))
		}
		in.a = int32(g.Fanin[0])
		if len(g.Fanin) >= 2 {
			in.b = int32(g.Fanin[1])
		}
		op, err := opFor(g.Type, len(g.Fanin))
		if err != nil {
			return nil, fmt.Errorf("netlist: compile %s: gate %d: %w", nl.Name, g.ID, err)
		}
		in.op = op
		p.codeOf[g.ID] = int32(len(p.code))
		p.code = append(p.code, in)
	}
	return p, nil
}

func opFor(t GateType, fanins int) (gop, error) {
	two := fanins == 2
	switch t {
	case Buf:
		return gopBuf, nil
	case Not:
		return gopNot, nil
	case And:
		if two {
			return gopAnd2, nil
		}
		return gopAndN, nil
	case Nand:
		if two {
			return gopNand2, nil
		}
		return gopNandN, nil
	case Or:
		if two {
			return gopOr2, nil
		}
		return gopOrN, nil
	case Nor:
		if two {
			return gopNor2, nil
		}
		return gopNorN, nil
	case Xor:
		if two {
			return gopXor2, nil
		}
		return gopXorN, nil
	case Xnor:
		if two {
			return gopXnor2, nil
		}
		return gopXnorN, nil
	}
	return 0, fmt.Errorf("no opcode for %s", t)
}

// Netlist returns the compiled circuit.
func (p *Program) Netlist() *Netlist { return p.nl }

// injRec is the injection plan for one compiled gate: per-pin overrides
// (fanout-branch faults as seen by this gate) and an output mask (stem
// faults). All masks are per-lane, so one record carries many faults.
// dirty marks the words any of the record's masks touch: lanes are
// independent, so a fault confined to word k can only ever disturb word k
// of any value in the circuit, and the faulty exec loop re-evaluates
// exactly the dirty words — the injection cost per pass stays
// proportional to the fault count, not to the fault count times W.
type injRec[W lane.Word] struct {
	pins    []pinInj[W]
	outMask W      // lanes with a stem fault on this gate's output
	outVal  W      // the stuck word, restricted to outMask
	dirty   uint16 // bit k: word k carries a fault at this gate
	code    int32  // owning instruction index (for lane-scoped compaction)
}

type pinInj[W lane.Word] struct {
	pin       int32
	mask, val W
}

type slotInj[W lane.Word] struct {
	slot      int32
	mask, val W
}

type ffInj[W lane.Word] struct {
	ff        int32
	mask, val W
}

// Machine is the mutable execution state of one Program at one lane
// width: net values, FF state, and the current fault-injection batch.
// Machines are cheap; a worker pool creates one per worker. Not safe for
// concurrent use.
type Machine[W lane.Word] struct {
	p     *Program
	vals  []W
	state []W
	out   []W

	inj      []int32 // per instruction: index into recs, or -1
	recs     []injRec[W]
	touched  []int32      // instruction indices with inj set, for O(batch) clearing
	loadInj  []slotInj[W] // stem faults on PIs, FFs and constants
	clockInj []ffInj[W]   // DFF D-pin faults, applied at Clock
	faulty   bool
}

// NewMachine creates fresh execution state at lane width W in power-on
// reset, with no faults injected. NewMachine[lane.W1] reproduces the
// original single-word machine bit for bit.
func NewMachine[W lane.Word](p *Program) *Machine[W] {
	m := &Machine[W]{
		p:     p,
		vals:  make([]W, len(p.nl.Gates)),
		state: make([]W, len(p.nl.FFs)),
		out:   make([]W, len(p.nl.POs)),
		inj:   make([]int32, len(p.code)),
	}
	for i := range m.inj {
		m.inj[i] = -1
	}
	m.Reset()
	return m
}

// Program returns the compiled program this machine executes.
func (m *Machine[W]) Program() *Program { return m.p }

// Reset restores every flip-flop to its power-on value in all lanes.
// Injected faults survive a Reset; use ClearFaults to remove them.
func (m *Machine[W]) Reset() {
	for i, w := range m.p.ffInit {
		m.state[i] = lane.Broadcast[W](w)
	}
}

// SetState overwrites the flip-flop state vectors directly.
func (m *Machine[W]) SetState(s []W) {
	if len(s) != len(m.state) {
		panic(fmt.Sprintf("netlist: SetState with %d vectors for %d FFs", len(s), len(m.state)))
	}
	copy(m.state, s)
}

// State returns a copy of the flip-flop state vectors.
func (m *Machine[W]) State() []W {
	out := make([]W, len(m.state))
	copy(out, m.state)
	return out
}

// LaneStateInto extracts one lane's flip-flop state as packed bits — bit
// i%64 of word i/64 is flip-flop i — growing dst as needed and returning
// it. The vector-shaped State/SetState pair cannot carry a single lane
// between machines of different widths; the fault scheduler's
// mid-campaign re-planner uses this pair to move a surviving fault
// machine onto a narrower vector without replaying its trace.
func (m *Machine[W]) LaneStateInto(ln int, dst []uint64) []uint64 {
	var zero W
	if ln < 0 || ln >= len(zero)*64 {
		panic(fmt.Sprintf("netlist: lane %d out of range [0,%d)", ln, len(zero)*64))
	}
	w, b := ln>>6, uint(ln&63)
	n := (len(m.state) + 63) / 64
	if cap(dst) < n {
		dst = make([]uint64, n)
	} else {
		dst = dst[:n]
		for i := range dst {
			dst[i] = 0
		}
	}
	for i := range m.state {
		dst[i>>6] |= (m.state[i][w] >> b & 1) << uint(i&63)
	}
	return dst
}

// SetLaneState implants packed flip-flop bits (LaneStateInto's layout)
// into one lane, leaving every other lane's state untouched.
func (m *Machine[W]) SetLaneState(ln int, src []uint64) {
	var zero W
	if ln < 0 || ln >= len(zero)*64 {
		panic(fmt.Sprintf("netlist: lane %d out of range [0,%d)", ln, len(zero)*64))
	}
	if need := (len(m.state) + 63) / 64; len(src) < need {
		panic(fmt.Sprintf("netlist: SetLaneState with %d words for %d FFs", len(src), len(m.state)))
	}
	w, b := ln>>6, uint(ln&63)
	for i := range m.state {
		bit := src[i>>6] >> uint(i&63) & 1
		m.state[i][w] = m.state[i][w]&^(1<<b) | bit<<b
	}
}

// InjectFault adds a stuck-at fault to the machine's current batch,
// confined to the lanes selected by laneMask. Distinct faults injected
// into disjoint lanes evaluate as independent fault machines in one pass.
// Sites that cannot influence anything (NoFault, out-of-range pins, pin
// faults on gates without pins) are ignored, matching Evaluator.EvalWith.
func (m *Machine[W]) InjectFault(f FaultSite, laneMask W) {
	if f.Gate < 0 || lane.None(laneMask) {
		return
	}
	var val W
	if f.Stuck == 1 {
		val = laneMask
	}
	g := m.p.nl.Gates[f.Gate]
	switch {
	case f.Pin < 0 && g.Type.IsComb():
		r := m.rec(m.p.codeOf[f.Gate])
		r.outMask = lane.Or(r.outMask, laneMask)
		r.outVal = lane.Merge(r.outVal, laneMask, val)
		r.markDirty(laneMask)
	case f.Pin < 0:
		m.mergeLoadInj(int32(f.Gate), laneMask, val)
	case g.Type == DFF && f.Pin == 0:
		m.mergeClockInj(m.p.ffIdx[f.Gate], laneMask, val)
	case g.Type.IsComb() && f.Pin < len(g.Fanin):
		r := m.rec(m.p.codeOf[f.Gate])
		r.mergePin(int32(f.Pin), laneMask, val)
		r.markDirty(laneMask)
	default:
		return // inert site: keep the fault-free fast path
	}
	m.faulty = true
}

func (r *injRec[W]) markDirty(laneMask W) {
	for k := 0; k < len(laneMask); k++ {
		if laneMask[k] != 0 {
			r.dirty |= 1 << uint(k)
		}
	}
}

// ClearFaultLanes removes the injected faults confined to the lanes in
// laneMask, leaving every other lane's batch armed: records whose masks
// empty out are compacted away, partially-covered records shrink to their
// surviving lanes, and per-record dirty words are recomputed. Cost is
// proportional to the batch size, like ClearFaults. The packed ATPG
// scheduler uses it to retire one search's lane pair and re-arm the next
// target without disturbing the concurrent searches' injections.
func (m *Machine[W]) ClearFaultLanes(laneMask W) {
	kept := m.touched[:0]
	for _, ci := range m.touched {
		r := &m.recs[m.inj[ci]]
		r.outMask = lane.AndNot(r.outMask, laneMask)
		r.outVal = lane.AndNot(r.outVal, laneMask)
		pins := r.pins[:0]
		for _, p := range r.pins {
			p.mask = lane.AndNot(p.mask, laneMask)
			p.val = lane.AndNot(p.val, laneMask)
			if !lane.None(p.mask) {
				pins = append(pins, p)
			}
		}
		r.pins = pins
		remain := r.outMask
		for _, p := range r.pins {
			remain = lane.Or(remain, p.mask)
		}
		if lane.None(remain) {
			// Swap-compact the emptied record out of recs, fixing the
			// moved record's inj back-pointer via its code field.
			ri := m.inj[ci]
			last := int32(len(m.recs) - 1)
			if ri != last {
				m.recs[ri] = m.recs[last]
				m.inj[m.recs[ri].code] = ri
			}
			m.recs = m.recs[:last]
			m.inj[ci] = -1
			continue
		}
		r.dirty = 0
		r.markDirty(remain)
		kept = append(kept, ci)
	}
	m.touched = kept
	loads := m.loadInj[:0]
	for _, li := range m.loadInj {
		li.mask = lane.AndNot(li.mask, laneMask)
		li.val = lane.AndNot(li.val, laneMask)
		if !lane.None(li.mask) {
			loads = append(loads, li)
		}
	}
	m.loadInj = loads
	clocks := m.clockInj[:0]
	for _, ci := range m.clockInj {
		ci.mask = lane.AndNot(ci.mask, laneMask)
		ci.val = lane.AndNot(ci.val, laneMask)
		if !lane.None(ci.mask) {
			clocks = append(clocks, ci)
		}
	}
	m.clockInj = clocks
	m.faulty = len(m.touched) > 0 || len(m.loadInj) > 0 || len(m.clockInj) > 0
}

// ClearFaults removes every injected fault, restoring the fault-free fast
// path. Cost is proportional to the batch size, not the circuit size.
func (m *Machine[W]) ClearFaults() {
	for _, ci := range m.touched {
		m.inj[ci] = -1
	}
	m.touched = m.touched[:0]
	m.recs = m.recs[:0]
	m.loadInj = m.loadInj[:0]
	m.clockInj = m.clockInj[:0]
	m.faulty = false
}

func (m *Machine[W]) rec(codeIdx int32) *injRec[W] {
	if m.inj[codeIdx] < 0 {
		m.inj[codeIdx] = int32(len(m.recs))
		m.recs = append(m.recs, injRec[W]{code: codeIdx})
		m.touched = append(m.touched, codeIdx)
	}
	return &m.recs[m.inj[codeIdx]]
}

func (r *injRec[W]) mergePin(pin int32, mask, val W) {
	for i := range r.pins {
		if r.pins[i].pin == pin {
			r.pins[i].mask = lane.Or(r.pins[i].mask, mask)
			r.pins[i].val = lane.Merge(r.pins[i].val, mask, val)
			return
		}
	}
	r.pins = append(r.pins, pinInj[W]{pin: pin, mask: mask, val: val})
}

func (m *Machine[W]) mergeLoadInj(slot int32, mask, val W) {
	for i := range m.loadInj {
		if m.loadInj[i].slot == slot {
			m.loadInj[i].mask = lane.Or(m.loadInj[i].mask, mask)
			m.loadInj[i].val = lane.Merge(m.loadInj[i].val, mask, val)
			return
		}
	}
	m.loadInj = append(m.loadInj, slotInj[W]{slot: slot, mask: mask, val: val})
}

func (m *Machine[W]) mergeClockInj(ff int32, mask, val W) {
	for i := range m.clockInj {
		if m.clockInj[i].ff == ff {
			m.clockInj[i].mask = lane.Or(m.clockInj[i].mask, mask)
			m.clockInj[i].val = lane.Merge(m.clockInj[i].val, mask, val)
			return
		}
	}
	m.clockInj = append(m.clockInj, ffInj[W]{ff: ff, mask: mask, val: val})
}

// Eval runs one combinational pass with the given PI vectors (ordered
// like the netlist's PIs) under the machine's current fault batch and
// returns the PO vectors. The result slice is reused by the next Eval
// call. It panics when the PI count is wrong (the caller validates
// pattern shapes once, not per pass).
//
//repro:session-owned
//repro:step
//repro:hotpath
func (m *Machine[W]) Eval(pis []W) []W {
	nl := m.p.nl
	if len(pis) != len(nl.PIs) {
		panic(fmt.Sprintf("netlist: %d PI vectors for %d inputs", len(pis), len(nl.PIs)))
	}
	vals := m.vals
	for i, id := range nl.PIs {
		vals[id] = pis[i]
	}
	for i, id := range nl.FFs {
		vals[id] = m.state[i]
	}
	for _, c := range m.p.consts {
		vals[c.slot] = lane.Broadcast[W](c.word)
	}
	if m.faulty {
		for i := range m.loadInj {
			li := &m.loadInj[i]
			vals[li.slot] = lane.Merge(vals[li.slot], li.mask, li.val)
		}
		m.execFaulty()
	} else {
		m.execClean()
	}
	for i, id := range nl.POs {
		m.out[i] = vals[id]
	}
	return m.out
}

// Clock latches each flip-flop's D value from the most recent Eval pass,
// applying any injected D-pin faults to the captured state.
//
//repro:step
//repro:hotpath
func (m *Machine[W]) Clock() {
	for i, src := range m.p.ffSrc {
		m.state[i] = m.vals[src]
	}
	for i := range m.clockInj {
		ci := &m.clockInj[i]
		m.state[ci.ff] = lane.Merge(m.state[ci.ff], ci.mask, ci.val)
	}
}

// Value returns the last computed vector on a gate's output.
func (m *Machine[W]) Value(id int) W { return m.vals[id] }

//repro:hotpath
func (m *Machine[W]) execClean() {
	var w W
	if len(w) == 1 {
		// Shape-constant dispatch: the branch folds per instantiation.
		m.execClean1()
		return
	}
	vals := m.vals
	code := m.p.code
	args := m.p.args
	ones := lane.Broadcast[W](^uint64(0))
	for i := range code {
		in := &code[i]
		var v W
		switch in.op {
		case gopBuf:
			v = vals[in.a]
		case gopNot:
			a := vals[in.a]
			for k := 0; k < len(v); k++ {
				v[k] = ^a[k]
			}
		case gopAnd2:
			a, b := vals[in.a], vals[in.b]
			for k := 0; k < len(v); k++ {
				v[k] = a[k] & b[k]
			}
		case gopNand2:
			a, b := vals[in.a], vals[in.b]
			for k := 0; k < len(v); k++ {
				v[k] = ^(a[k] & b[k])
			}
		case gopOr2:
			a, b := vals[in.a], vals[in.b]
			for k := 0; k < len(v); k++ {
				v[k] = a[k] | b[k]
			}
		case gopNor2:
			a, b := vals[in.a], vals[in.b]
			for k := 0; k < len(v); k++ {
				v[k] = ^(a[k] | b[k])
			}
		case gopXor2:
			a, b := vals[in.a], vals[in.b]
			for k := 0; k < len(v); k++ {
				v[k] = a[k] ^ b[k]
			}
		case gopXnor2:
			a, b := vals[in.a], vals[in.b]
			for k := 0; k < len(v); k++ {
				v[k] = ^(a[k] ^ b[k])
			}
		case gopAndN:
			v = ones
			for _, s := range args[in.off : in.off+in.n] {
				sv := vals[s]
				for k := 0; k < len(v); k++ {
					v[k] &= sv[k]
				}
			}
		case gopNandN:
			v = ones
			for _, s := range args[in.off : in.off+in.n] {
				sv := vals[s]
				for k := 0; k < len(v); k++ {
					v[k] &= sv[k]
				}
			}
			for k := 0; k < len(v); k++ {
				v[k] = ^v[k]
			}
		case gopOrN:
			for _, s := range args[in.off : in.off+in.n] {
				sv := vals[s]
				for k := 0; k < len(v); k++ {
					v[k] |= sv[k]
				}
			}
		case gopNorN:
			for _, s := range args[in.off : in.off+in.n] {
				sv := vals[s]
				for k := 0; k < len(v); k++ {
					v[k] |= sv[k]
				}
			}
			for k := 0; k < len(v); k++ {
				v[k] = ^v[k]
			}
		case gopXorN:
			for _, s := range args[in.off : in.off+in.n] {
				sv := vals[s]
				for k := 0; k < len(v); k++ {
					v[k] ^= sv[k]
				}
			}
		case gopXnorN:
			for _, s := range args[in.off : in.off+in.n] {
				sv := vals[s]
				for k := 0; k < len(v); k++ {
					v[k] ^= sv[k]
				}
			}
			for k := 0; k < len(v); k++ {
				v[k] = ^v[k]
			}
		}
		vals[in.dst] = v
	}
}

// execFaulty is execClean plus a per-instruction injection check: every
// gate takes the fast path first, then gates with an injection record
// re-evaluate their dirty words through the scalar masked path.
//
//repro:hotpath
func (m *Machine[W]) execFaulty() {
	var w W
	if len(w) == 1 {
		m.execFaulty1()
		return
	}
	vals := m.vals
	code := m.p.code
	args := m.p.args
	inj := m.inj
	ones := lane.Broadcast[W](^uint64(0))
	for i := range code {
		in := &code[i]
		var v W
		switch in.op {
		case gopBuf:
			v = vals[in.a]
		case gopNot:
			a := vals[in.a]
			for k := 0; k < len(v); k++ {
				v[k] = ^a[k]
			}
		case gopAnd2:
			a, b := vals[in.a], vals[in.b]
			for k := 0; k < len(v); k++ {
				v[k] = a[k] & b[k]
			}
		case gopNand2:
			a, b := vals[in.a], vals[in.b]
			for k := 0; k < len(v); k++ {
				v[k] = ^(a[k] & b[k])
			}
		case gopOr2:
			a, b := vals[in.a], vals[in.b]
			for k := 0; k < len(v); k++ {
				v[k] = a[k] | b[k]
			}
		case gopNor2:
			a, b := vals[in.a], vals[in.b]
			for k := 0; k < len(v); k++ {
				v[k] = ^(a[k] | b[k])
			}
		case gopXor2:
			a, b := vals[in.a], vals[in.b]
			for k := 0; k < len(v); k++ {
				v[k] = a[k] ^ b[k]
			}
		case gopXnor2:
			a, b := vals[in.a], vals[in.b]
			for k := 0; k < len(v); k++ {
				v[k] = ^(a[k] ^ b[k])
			}
		case gopAndN:
			v = ones
			for _, s := range args[in.off : in.off+in.n] {
				sv := vals[s]
				for k := 0; k < len(v); k++ {
					v[k] &= sv[k]
				}
			}
		case gopNandN:
			v = ones
			for _, s := range args[in.off : in.off+in.n] {
				sv := vals[s]
				for k := 0; k < len(v); k++ {
					v[k] &= sv[k]
				}
			}
			for k := 0; k < len(v); k++ {
				v[k] = ^v[k]
			}
		case gopOrN:
			for _, s := range args[in.off : in.off+in.n] {
				sv := vals[s]
				for k := 0; k < len(v); k++ {
					v[k] |= sv[k]
				}
			}
		case gopNorN:
			for _, s := range args[in.off : in.off+in.n] {
				sv := vals[s]
				for k := 0; k < len(v); k++ {
					v[k] |= sv[k]
				}
			}
			for k := 0; k < len(v); k++ {
				v[k] = ^v[k]
			}
		case gopXorN:
			for _, s := range args[in.off : in.off+in.n] {
				sv := vals[s]
				for k := 0; k < len(v); k++ {
					v[k] ^= sv[k]
				}
			}
		case gopXnorN:
			for _, s := range args[in.off : in.off+in.n] {
				sv := vals[s]
				for k := 0; k < len(v); k++ {
					v[k] ^= sv[k]
				}
			}
			for k := 0; k < len(v); k++ {
				v[k] = ^v[k]
			}
		}
		vals[in.dst] = v
		if ri := inj[i]; ri >= 0 {
			m.patchInjected(in, &m.recs[ri])
		}
	}
}

// patchInjected re-evaluates the dirty words of one injected gate with
// the record's per-pin overrides applied, then applies the output stem
// mask — single-word scalar work per fault-carrying word, leaving the
// clean words on their fast-path result. Recomputing a whole dirty word
// is safe because its unfaulted lanes re-derive the fast-path bits, and
// pin overrides only disturb their own lanes, so every lane stays an
// independent fault machine. This is what keeps the per-pass injection
// cost proportional to the batch's fault count rather than fault count
// times W.
//
//repro:hotpath
func (m *Machine[W]) patchInjected(in *ginstr, rec *injRec[W]) {
	vals := m.vals
	if len(rec.pins) == 0 {
		// Stem-only record (the common case — most collapsed faults are
		// output stuck-ats): the fast-path value is already correct in
		// every unfaulted lane, so the patch is a masked overwrite.
		for k, dirty := 0, rec.dirty; dirty != 0; k, dirty = k+1, dirty>>1 {
			if dirty&1 == 1 {
				vals[in.dst][k] = vals[in.dst][k]&^rec.outMask[k] | rec.outVal[k]
			}
		}
		return
	}
	fanin := m.p.args[in.off : in.off+in.n]
	for k, dirty := 0, rec.dirty; dirty != 0; k, dirty = k+1, dirty>>1 {
		if dirty&1 == 0 {
			continue
		}
		read := func(j int) uint64 { //repro:ok hotalloc non-escaping closure, inlined; AllocsPerRun pins the path at zero
			v := vals[fanin[j]][k]
			for pi := range rec.pins {
				if int(rec.pins[pi].pin) == j {
					v = v&^rec.pins[pi].mask[k] | rec.pins[pi].val[k]
				}
			}
			return v
		}
		var v uint64
		switch in.op {
		case gopBuf:
			v = read(0)
		case gopNot:
			v = ^read(0)
		case gopAnd2, gopAndN:
			v = ^uint64(0)
			for j := range fanin {
				v &= read(j)
			}
		case gopNand2, gopNandN:
			v = ^uint64(0)
			for j := range fanin {
				v &= read(j)
			}
			v = ^v
		case gopOr2, gopOrN:
			for j := range fanin {
				v |= read(j)
			}
		case gopNor2, gopNorN:
			for j := range fanin {
				v |= read(j)
			}
			v = ^v
		case gopXor2, gopXorN:
			for j := range fanin {
				v ^= read(j)
			}
		case gopXnor2, gopXnorN:
			for j := range fanin {
				v ^= read(j)
			}
			v = ^v
		}
		vals[in.dst][k] = v&^rec.outMask[k] | rec.outVal[k]
	}
}

// execClean1 and execFaulty1 are the scalar specializations for the
// single-word instantiation (W = [1]uint64): array-of-one locals keep
// values in memory form and defeat the register allocator, so W=1 —
// the combinational production width and the ragged-tail machine — runs
// the original uint64 loop on word 0. The generic loops above serve
// W=4/8, and the width-agreement and parity tests pin all paths
// bit-identical. The [0] accessors are valid for every W; the callers'
// shape-constant dispatch makes them reachable only when len(W) == 1.
//
//repro:hotpath
func (m *Machine[W]) execClean1() {
	vals := m.vals
	code := m.p.code
	args := m.p.args
	for i := range code {
		in := &code[i]
		var v uint64
		switch in.op {
		case gopBuf:
			v = vals[in.a][0]
		case gopNot:
			v = ^vals[in.a][0]
		case gopAnd2:
			v = vals[in.a][0] & vals[in.b][0]
		case gopNand2:
			v = ^(vals[in.a][0] & vals[in.b][0])
		case gopOr2:
			v = vals[in.a][0] | vals[in.b][0]
		case gopNor2:
			v = ^(vals[in.a][0] | vals[in.b][0])
		case gopXor2:
			v = vals[in.a][0] ^ vals[in.b][0]
		case gopXnor2:
			v = ^(vals[in.a][0] ^ vals[in.b][0])
		case gopAndN:
			v = ^uint64(0)
			for _, s := range args[in.off : in.off+in.n] {
				v &= vals[s][0]
			}
		case gopNandN:
			v = ^uint64(0)
			for _, s := range args[in.off : in.off+in.n] {
				v &= vals[s][0]
			}
			v = ^v
		case gopOrN:
			for _, s := range args[in.off : in.off+in.n] {
				v |= vals[s][0]
			}
		case gopNorN:
			for _, s := range args[in.off : in.off+in.n] {
				v |= vals[s][0]
			}
			v = ^v
		case gopXorN:
			for _, s := range args[in.off : in.off+in.n] {
				v ^= vals[s][0]
			}
		case gopXnorN:
			for _, s := range args[in.off : in.off+in.n] {
				v ^= vals[s][0]
			}
			v = ^v
		}
		vals[in.dst][0] = v
	}
}

//repro:hotpath
func (m *Machine[W]) execFaulty1() {
	vals := m.vals
	code := m.p.code
	args := m.p.args
	inj := m.inj
	for i := range code {
		in := &code[i]
		var v uint64
		switch in.op {
		case gopBuf:
			v = vals[in.a][0]
		case gopNot:
			v = ^vals[in.a][0]
		case gopAnd2:
			v = vals[in.a][0] & vals[in.b][0]
		case gopNand2:
			v = ^(vals[in.a][0] & vals[in.b][0])
		case gopOr2:
			v = vals[in.a][0] | vals[in.b][0]
		case gopNor2:
			v = ^(vals[in.a][0] | vals[in.b][0])
		case gopXor2:
			v = vals[in.a][0] ^ vals[in.b][0]
		case gopXnor2:
			v = ^(vals[in.a][0] ^ vals[in.b][0])
		case gopAndN:
			v = ^uint64(0)
			for _, s := range args[in.off : in.off+in.n] {
				v &= vals[s][0]
			}
		case gopNandN:
			v = ^uint64(0)
			for _, s := range args[in.off : in.off+in.n] {
				v &= vals[s][0]
			}
			v = ^v
		case gopOrN:
			for _, s := range args[in.off : in.off+in.n] {
				v |= vals[s][0]
			}
		case gopNorN:
			for _, s := range args[in.off : in.off+in.n] {
				v |= vals[s][0]
			}
			v = ^v
		case gopXorN:
			for _, s := range args[in.off : in.off+in.n] {
				v ^= vals[s][0]
			}
		case gopXnorN:
			for _, s := range args[in.off : in.off+in.n] {
				v ^= vals[s][0]
			}
			v = ^v
		}
		vals[in.dst][0] = v
		if ri := inj[i]; ri >= 0 {
			m.patchInjected(in, &m.recs[ri])
		}
	}
}
