// Flat-program compilation of netlists, with multi-fault lane injection.
//
// The Evaluator walks the gate array with a per-gate type switch, a fanin
// slice loop and two fault-site comparisons per gate — and it can inject
// only ONE fault site per pass, broadcast across whichever lanes the mask
// selects. Fault simulation executes the same circuit once per fault per
// cycle, so that shape wastes both instruction-level and lane-level
// parallelism. Compile translates a levelized netlist once into a flat
// slot-indexed instruction stream (two-input gates get dedicated opcodes;
// wider gates read a shared fanin arena), and Machine carries the mutable
// state plus a per-batch fault-injection plan: up to 64 *different* fault
// sites, each masked to its own subset of lanes, so one pass evaluates 64
// independent fault machines. The fault-free path pays no injection cost
// (a separate exec loop), and injected gates re-evaluate through a generic
// masked path that reproduces Evaluator.EvalWith bit-for-bit.
//
// Semantics are pinned against the Evaluator differentially: every lane of
// a Machine pass must equal the corresponding single-fault EvalWith pass
// (see compile_test.go), which is what lets the fault simulator treat the
// two engines as interchangeable references.
package netlist

import "fmt"

type gop uint8

// Gate opcodes. The two-input forms avoid the fanin loop entirely; the
// N-ary forms iterate the arena. Buf/Not read a single slot.
const (
	gopBuf gop = iota
	gopNot
	gopAnd2
	gopNand2
	gopOr2
	gopNor2
	gopXor2
	gopXnor2
	gopAndN
	gopNandN
	gopOrN
	gopNorN
	gopXorN
	gopXnorN
)

// ginstr is one compiled gate. dst and the fanin references are gate IDs
// (value slots are indexed by gate ID, exactly like Evaluator.vals). The
// arena range off/n is valid for every opcode — the injected path uses it
// even when the fast path reads a and b directly.
type ginstr struct {
	op     gop
	dst    int32
	a, b   int32
	off, n int32
}

// Program is a compiled netlist: the levelized instruction stream plus the
// load/latch plans the Machine executes around it. It is immutable after
// Compile and safe to share between any number of Machines.
type Program struct {
	nl     *Netlist
	code   []ginstr
	args   []int32 // shared fanin arena
	codeOf []int32 // gate ID -> instruction index, -1 for non-comb gates
	ffIdx  []int32 // gate ID -> index in nl.FFs, -1 elsewhere
	ffSrc  []int32 // D-input gate ID per FF state index
	ffInit []uint64
	consts []slotWord
}

type slotWord struct {
	slot int32
	word uint64
}

// Compile translates a netlist (which must validate) into a Program.
func Compile(nl *Netlist) (*Program, error) {
	if err := nl.Validate(); err != nil {
		return nil, err
	}
	order, err := nl.Levelize()
	if err != nil {
		return nil, err
	}
	p := &Program{
		nl:     nl,
		code:   make([]ginstr, 0, len(order)),
		codeOf: make([]int32, len(nl.Gates)),
		ffIdx:  make([]int32, len(nl.Gates)),
		ffSrc:  make([]int32, len(nl.FFs)),
		ffInit: make([]uint64, len(nl.FFs)),
	}
	for i := range p.codeOf {
		p.codeOf[i] = -1
		p.ffIdx[i] = -1
	}
	for i, id := range nl.FFs {
		g := nl.Gates[id]
		p.ffIdx[id] = int32(i)
		p.ffSrc[i] = int32(g.Fanin[0])
		if g.Init&1 == 1 {
			p.ffInit[i] = ^uint64(0)
		}
	}
	for _, g := range nl.Gates {
		switch g.Type {
		case Const0:
			p.consts = append(p.consts, slotWord{slot: int32(g.ID)})
		case Const1:
			p.consts = append(p.consts, slotWord{slot: int32(g.ID), word: ^uint64(0)})
		}
	}
	for _, id := range order {
		g := nl.Gates[id]
		in := ginstr{
			dst: int32(g.ID),
			off: int32(len(p.args)),
			n:   int32(len(g.Fanin)),
		}
		for _, f := range g.Fanin {
			p.args = append(p.args, int32(f))
		}
		in.a = int32(g.Fanin[0])
		if len(g.Fanin) >= 2 {
			in.b = int32(g.Fanin[1])
		}
		op, err := opFor(g.Type, len(g.Fanin))
		if err != nil {
			return nil, fmt.Errorf("netlist: compile %s: gate %d: %w", nl.Name, g.ID, err)
		}
		in.op = op
		p.codeOf[g.ID] = int32(len(p.code))
		p.code = append(p.code, in)
	}
	return p, nil
}

func opFor(t GateType, fanins int) (gop, error) {
	two := fanins == 2
	switch t {
	case Buf:
		return gopBuf, nil
	case Not:
		return gopNot, nil
	case And:
		if two {
			return gopAnd2, nil
		}
		return gopAndN, nil
	case Nand:
		if two {
			return gopNand2, nil
		}
		return gopNandN, nil
	case Or:
		if two {
			return gopOr2, nil
		}
		return gopOrN, nil
	case Nor:
		if two {
			return gopNor2, nil
		}
		return gopNorN, nil
	case Xor:
		if two {
			return gopXor2, nil
		}
		return gopXorN, nil
	case Xnor:
		if two {
			return gopXnor2, nil
		}
		return gopXnorN, nil
	}
	return 0, fmt.Errorf("no opcode for %s", t)
}

// Netlist returns the compiled circuit.
func (p *Program) Netlist() *Netlist { return p.nl }

// injRec is the injection plan for one compiled gate: per-pin overrides
// (fanout-branch faults as seen by this gate) and an output mask (stem
// faults). All masks are per-lane, so one record carries many faults.
type injRec struct {
	pins    []pinInj
	outMask uint64 // lanes with a stem fault on this gate's output
	outVal  uint64 // the stuck word, restricted to outMask
}

type pinInj struct {
	pin  int32
	mask uint64
	val  uint64
}

type slotInj struct {
	slot      int32
	mask, val uint64
}

type ffInj struct {
	ff        int32
	mask, val uint64
}

// Machine is the mutable execution state of one Program: net values, FF
// state, and the current fault-injection batch. Machines are cheap; a
// worker pool creates one per worker. Not safe for concurrent use.
type Machine struct {
	p     *Program
	vals  []uint64
	state []uint64
	out   []uint64

	inj      []int32 // per instruction: index into recs, or -1
	recs     []injRec
	touched  []int32   // instruction indices with inj set, for O(batch) clearing
	loadInj  []slotInj // stem faults on PIs, FFs and constants
	clockInj []ffInj   // DFF D-pin faults, applied at Clock
	faulty   bool
}

// NewMachine creates fresh execution state in power-on reset, with no
// faults injected.
func (p *Program) NewMachine() *Machine {
	m := &Machine{
		p:     p,
		vals:  make([]uint64, len(p.nl.Gates)),
		state: make([]uint64, len(p.nl.FFs)),
		out:   make([]uint64, len(p.nl.POs)),
		inj:   make([]int32, len(p.code)),
	}
	for i := range m.inj {
		m.inj[i] = -1
	}
	m.Reset()
	return m
}

// Program returns the compiled program this machine executes.
func (m *Machine) Program() *Program { return m.p }

// Reset restores every flip-flop to its power-on value in all 64 lanes.
// Injected faults survive a Reset; use ClearFaults to remove them.
func (m *Machine) Reset() {
	copy(m.state, m.p.ffInit)
}

// SetState overwrites the flip-flop state words directly.
func (m *Machine) SetState(s []uint64) {
	if len(s) != len(m.state) {
		panic(fmt.Sprintf("netlist: SetState with %d words for %d FFs", len(s), len(m.state)))
	}
	copy(m.state, s)
}

// State returns a copy of the flip-flop state words.
func (m *Machine) State() []uint64 {
	out := make([]uint64, len(m.state))
	copy(out, m.state)
	return out
}

// InjectFault adds a stuck-at fault to the machine's current batch,
// confined to the lanes selected by laneMask. Distinct faults injected
// into disjoint lanes evaluate as independent fault machines in one pass.
// Sites that cannot influence anything (NoFault, out-of-range pins, pin
// faults on gates without pins) are ignored, matching Evaluator.EvalWith.
func (m *Machine) InjectFault(f FaultSite, laneMask uint64) {
	if f.Gate < 0 || laneMask == 0 {
		return
	}
	val := uint64(0)
	if f.Stuck == 1 {
		val = laneMask
	}
	g := m.p.nl.Gates[f.Gate]
	switch {
	case f.Pin < 0 && g.Type.IsComb():
		r := m.rec(m.p.codeOf[f.Gate])
		r.outMask |= laneMask
		r.outVal = r.outVal&^laneMask | val
	case f.Pin < 0:
		m.mergeLoadInj(int32(f.Gate), laneMask, val)
	case g.Type == DFF && f.Pin == 0:
		m.mergeClockInj(m.p.ffIdx[f.Gate], laneMask, val)
	case g.Type.IsComb() && f.Pin < len(g.Fanin):
		r := m.rec(m.p.codeOf[f.Gate])
		r.mergePin(int32(f.Pin), laneMask, val)
	default:
		return // inert site: keep the fault-free fast path
	}
	m.faulty = true
}

// ClearFaults removes every injected fault, restoring the fault-free fast
// path. Cost is proportional to the batch size, not the circuit size.
func (m *Machine) ClearFaults() {
	for _, ci := range m.touched {
		m.inj[ci] = -1
	}
	m.touched = m.touched[:0]
	m.recs = m.recs[:0]
	m.loadInj = m.loadInj[:0]
	m.clockInj = m.clockInj[:0]
	m.faulty = false
}

func (m *Machine) rec(codeIdx int32) *injRec {
	if m.inj[codeIdx] < 0 {
		m.inj[codeIdx] = int32(len(m.recs))
		m.recs = append(m.recs, injRec{})
		m.touched = append(m.touched, codeIdx)
	}
	return &m.recs[m.inj[codeIdx]]
}

func (r *injRec) mergePin(pin int32, mask, val uint64) {
	for i := range r.pins {
		if r.pins[i].pin == pin {
			r.pins[i].mask |= mask
			r.pins[i].val = r.pins[i].val&^mask | val
			return
		}
	}
	r.pins = append(r.pins, pinInj{pin: pin, mask: mask, val: val})
}

func (m *Machine) mergeLoadInj(slot int32, mask, val uint64) {
	for i := range m.loadInj {
		if m.loadInj[i].slot == slot {
			m.loadInj[i].mask |= mask
			m.loadInj[i].val = m.loadInj[i].val&^mask | val
			return
		}
	}
	m.loadInj = append(m.loadInj, slotInj{slot: slot, mask: mask, val: val})
}

func (m *Machine) mergeClockInj(ff int32, mask, val uint64) {
	for i := range m.clockInj {
		if m.clockInj[i].ff == ff {
			m.clockInj[i].mask |= mask
			m.clockInj[i].val = m.clockInj[i].val&^mask | val
			return
		}
	}
	m.clockInj = append(m.clockInj, ffInj{ff: ff, mask: mask, val: val})
}

// Eval runs one combinational pass with the given PI words (ordered like
// the netlist's PIs) under the machine's current fault batch and returns
// the PO words. The result slice is reused by the next Eval call. It
// panics when the PI count is wrong (the caller validates pattern shapes
// once, not per pass).
func (m *Machine) Eval(pis []uint64) []uint64 {
	nl := m.p.nl
	if len(pis) != len(nl.PIs) {
		panic(fmt.Sprintf("netlist: %d PI words for %d inputs", len(pis), len(nl.PIs)))
	}
	vals := m.vals
	for i, id := range nl.PIs {
		vals[id] = pis[i]
	}
	for i, id := range nl.FFs {
		vals[id] = m.state[i]
	}
	for _, c := range m.p.consts {
		vals[c.slot] = c.word
	}
	if m.faulty {
		for i := range m.loadInj {
			li := &m.loadInj[i]
			vals[li.slot] = vals[li.slot]&^li.mask | li.val
		}
		m.execFaulty()
	} else {
		m.execClean()
	}
	for i, id := range nl.POs {
		m.out[i] = vals[id]
	}
	return m.out
}

// Clock latches each flip-flop's D value from the most recent Eval pass,
// applying any injected D-pin faults to the captured state.
func (m *Machine) Clock() {
	for i, src := range m.p.ffSrc {
		m.state[i] = m.vals[src]
	}
	for i := range m.clockInj {
		ci := &m.clockInj[i]
		m.state[ci.ff] = m.state[ci.ff]&^ci.mask | ci.val
	}
}

// Value returns the last computed word on a gate's output.
func (m *Machine) Value(id int) uint64 { return m.vals[id] }

func (m *Machine) execClean() {
	vals := m.vals
	code := m.p.code
	args := m.p.args
	for i := range code {
		in := &code[i]
		var v uint64
		switch in.op {
		case gopBuf:
			v = vals[in.a]
		case gopNot:
			v = ^vals[in.a]
		case gopAnd2:
			v = vals[in.a] & vals[in.b]
		case gopNand2:
			v = ^(vals[in.a] & vals[in.b])
		case gopOr2:
			v = vals[in.a] | vals[in.b]
		case gopNor2:
			v = ^(vals[in.a] | vals[in.b])
		case gopXor2:
			v = vals[in.a] ^ vals[in.b]
		case gopXnor2:
			v = ^(vals[in.a] ^ vals[in.b])
		case gopAndN:
			v = ^uint64(0)
			for _, s := range args[in.off : in.off+in.n] {
				v &= vals[s]
			}
		case gopNandN:
			v = ^uint64(0)
			for _, s := range args[in.off : in.off+in.n] {
				v &= vals[s]
			}
			v = ^v
		case gopOrN:
			for _, s := range args[in.off : in.off+in.n] {
				v |= vals[s]
			}
		case gopNorN:
			for _, s := range args[in.off : in.off+in.n] {
				v |= vals[s]
			}
			v = ^v
		case gopXorN:
			for _, s := range args[in.off : in.off+in.n] {
				v ^= vals[s]
			}
		case gopXnorN:
			for _, s := range args[in.off : in.off+in.n] {
				v ^= vals[s]
			}
			v = ^v
		}
		vals[in.dst] = v
	}
}

// execFaulty is execClean plus a per-instruction injection check; gates
// with an injection record re-evaluate through the generic masked path.
func (m *Machine) execFaulty() {
	vals := m.vals
	code := m.p.code
	args := m.p.args
	inj := m.inj
	for i := range code {
		in := &code[i]
		if ri := inj[i]; ri >= 0 {
			vals[in.dst] = m.evalInjected(in, &m.recs[ri])
			continue
		}
		var v uint64
		switch in.op {
		case gopBuf:
			v = vals[in.a]
		case gopNot:
			v = ^vals[in.a]
		case gopAnd2:
			v = vals[in.a] & vals[in.b]
		case gopNand2:
			v = ^(vals[in.a] & vals[in.b])
		case gopOr2:
			v = vals[in.a] | vals[in.b]
		case gopNor2:
			v = ^(vals[in.a] | vals[in.b])
		case gopXor2:
			v = vals[in.a] ^ vals[in.b]
		case gopXnor2:
			v = ^(vals[in.a] ^ vals[in.b])
		case gopAndN:
			v = ^uint64(0)
			for _, s := range args[in.off : in.off+in.n] {
				v &= vals[s]
			}
		case gopNandN:
			v = ^uint64(0)
			for _, s := range args[in.off : in.off+in.n] {
				v &= vals[s]
			}
			v = ^v
		case gopOrN:
			for _, s := range args[in.off : in.off+in.n] {
				v |= vals[s]
			}
		case gopNorN:
			for _, s := range args[in.off : in.off+in.n] {
				v |= vals[s]
			}
			v = ^v
		case gopXorN:
			for _, s := range args[in.off : in.off+in.n] {
				v ^= vals[s]
			}
		case gopXnorN:
			for _, s := range args[in.off : in.off+in.n] {
				v ^= vals[s]
			}
			v = ^v
		}
		vals[in.dst] = v
	}
}

// evalInjected evaluates one gate with the record's per-pin overrides,
// then applies the output stem mask. Pin overrides only disturb their own
// lanes, so every lane of the result stays an independent fault machine.
func (m *Machine) evalInjected(in *ginstr, rec *injRec) uint64 {
	vals := m.vals
	fanin := m.p.args[in.off : in.off+in.n]
	read := func(j int) uint64 {
		v := vals[fanin[j]]
		for k := range rec.pins {
			if int(rec.pins[k].pin) == j {
				v = v&^rec.pins[k].mask | rec.pins[k].val
			}
		}
		return v
	}
	var v uint64
	switch in.op {
	case gopBuf:
		v = read(0)
	case gopNot:
		v = ^read(0)
	case gopAnd2, gopAndN:
		v = ^uint64(0)
		for j := range fanin {
			v &= read(j)
		}
	case gopNand2, gopNandN:
		v = ^uint64(0)
		for j := range fanin {
			v &= read(j)
		}
		v = ^v
	case gopOr2, gopOrN:
		for j := range fanin {
			v |= read(j)
		}
	case gopNor2, gopNorN:
		for j := range fanin {
			v |= read(j)
		}
		v = ^v
	case gopXor2, gopXorN:
		for j := range fanin {
			v ^= read(j)
		}
	case gopXnor2, gopXnorN:
		for j := range fanin {
			v ^= read(j)
		}
		v = ^v
	}
	return v&^rec.outMask | rec.outVal
}
