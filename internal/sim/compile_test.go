package sim_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/circuits"
	"repro/internal/engine"
	"repro/internal/hdl"
	"repro/internal/mutation"
	"repro/internal/sim"
)

// randomSeq builds stimulus directly (tpg depends on sim, so the test
// rolls its own to avoid an import cycle), with the reset input asserted
// on cycle 0 only.
func randomSeq(c *hdl.Circuit, n int, seed int64) sim.Sequence {
	rng := rand.New(rand.NewSource(seed))
	ins := c.Inputs()
	seq := make(sim.Sequence, n)
	for cyc := range seq {
		v := make(sim.Vector, len(ins))
		for i, p := range ins {
			if p.Name == "reset" {
				v[i] = bitvec.New(0, p.Width)
				if cyc == 0 {
					v[i] = bitvec.New(1, p.Width)
				}
				continue
			}
			v[i] = bitvec.New(rng.Uint64(), p.Width)
		}
		seq[cyc] = v
	}
	return seq
}

func diffStep(t *testing.T, label string, cyc int, want, got sim.Vector) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s cycle %d: %d outputs interpreted, %d compiled", label, cyc, len(want), len(got))
	}
	for j := range want {
		if !want[j].Equal(got[j]) {
			t.Fatalf("%s cycle %d output %d: interpreter %s, compiled %s",
				label, cyc, j, want[j], got[j])
		}
	}
}

// TestMachineMatchesSimulator locks the compiled engine to the AST
// interpreter, cycle by cycle, over every circuit in the inventory.
func TestMachineMatchesSimulator(t *testing.T) {
	for _, name := range circuits.Names() {
		c := circuits.MustLoad(name)
		s, err := sim.New(c)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		p, err := sim.Compile(c)
		if err != nil {
			t.Fatalf("%s: compile: %v", name, err)
		}
		m := p.NewMachine()
		seq := randomSeq(c, 200, 7)
		s.Reset()
		m.Reset()
		for cyc, v := range seq {
			want, err := s.Step(v)
			if err != nil {
				t.Fatal(err)
			}
			got, err := m.Step(v)
			if err != nil {
				t.Fatal(err)
			}
			diffStep(t, name, cyc, want, got)
		}
		// Register state must agree too, not just the sampled outputs.
		snapS, snapM := s.Snapshot(), m.Snapshot()
		for i := range snapS {
			if !snapS[i].Equal(snapM[i]) {
				t.Fatalf("%s: register %d differs after run: %s vs %s", name, i, snapS[i], snapM[i])
			}
		}
	}
}

// TestMachineMatchesSimulatorOnMutants is the load-bearing parity test:
// relaxed-mode mutants exercise every defensive path (missing names,
// width mismatches, unchecked literals), so the whole population of every
// sequential benchmark runs differentially on both engines.
func TestMachineMatchesSimulatorOnMutants(t *testing.T) {
	for _, name := range []string{"b01", "b02", "b06"} {
		c := circuits.MustLoad(name)
		ms := mutation.Generate(c)
		if len(ms) == 0 {
			t.Fatalf("%s: no mutants", name)
		}
		seq := randomSeq(c, 60, 11)
		for _, mut := range ms {
			s, err := sim.New(mut.Circuit)
			if err != nil {
				t.Fatalf("%s mutant %d: %v", name, mut.ID, err)
			}
			p, err := sim.Compile(mut.Circuit)
			if err != nil {
				t.Fatalf("%s mutant %d: compile: %v", name, mut.ID, err)
			}
			m := p.NewMachine()
			label := fmt.Sprintf("%s mutant %d (%s)", name, mut.ID, mut.Desc)
			for cyc, v := range seq {
				want, err := s.Step(v)
				if err != nil {
					t.Fatal(err)
				}
				got, err := m.Step(v)
				if err != nil {
					t.Fatal(err)
				}
				diffStep(t, label, cyc, want, got)
			}
		}
	}
}

// TestMachineSnapshotRestore verifies the pool's exploration contract:
// restoring a snapshot rewinds a machine to the exact trajectory the
// interpreter produces from the same state.
func TestMachineSnapshotRestore(t *testing.T) {
	c := circuits.MustLoad("b03")
	p, err := sim.Compile(c)
	if err != nil {
		t.Fatal(err)
	}
	m := p.NewMachine()
	seq := randomSeq(c, 50, 3)
	if _, err := m.Run(seq); err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()
	tail := randomSeq(c, 20, 4)
	first := make([]sim.Vector, 0, len(tail))
	for _, v := range tail {
		o, err := m.Step(v)
		if err != nil {
			t.Fatal(err)
		}
		first = append(first, o)
	}
	m.Restore(snap)
	for cyc, v := range tail {
		o, err := m.Step(v)
		if err != nil {
			t.Fatal(err)
		}
		diffStep(t, "replay", cyc, first[cyc], o)
	}
}

// TestFirstKillBatchDeterministic locks batch scoring results across
// worker counts.
func TestFirstKillBatchDeterministic(t *testing.T) {
	c := circuits.MustLoad("b01")
	ms := mutation.Generate(c)
	cs := make([]*hdl.Circuit, len(ms))
	for i, mut := range ms {
		cs[i] = mut.Circuit
	}
	seq := randomSeq(c, 100, 5)
	good, err := sim.Compile(c)
	if err != nil {
		t.Fatal(err)
	}
	goodOuts, err := good.NewMachine().Run(seq)
	if err != nil {
		t.Fatal(err)
	}
	progs, err := sim.CompileBatch(cs, 0)
	if err != nil {
		t.Fatal(err)
	}
	var ref []int
	for _, workers := range []int{1, 2, 7, 0} {
		for _, laneWords := range []int{0, 1, 4, 8} {
			got, err := sim.FirstKillBatch(progs, seq, goodOuts, engine.Options{Workers: workers, LaneWords: laneWords})
			if err != nil {
				t.Fatal(err)
			}
			if ref == nil {
				ref = got
				continue
			}
			for i := range got {
				if got[i] != ref[i] {
					t.Fatalf("workers=%d lanewords=%d: mutant %d first-kill %d, want %d",
						workers, laneWords, i, got[i], ref[i])
				}
			}
		}
	}
	if _, err := sim.FirstKillBatch(progs, seq, goodOuts, engine.Options{LaneWords: 3}); err == nil {
		t.Error("unsupported lane width accepted")
	}
}
