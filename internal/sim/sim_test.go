package sim

import (
	"testing"
	"testing/quick"

	"repro/internal/bitvec"
	"repro/internal/hdl"
)

const counterSrc = `
circuit counter {
  input en : bit;
  input rst : bit;
  output q : bits(3);
  output sat : bit;
  reg cnt : bits(3);
  const LIMIT : bits(3) = 3'd6;
  seq {
    if rst == 1 {
      cnt = 3'd0;
    } else if en == 1 and cnt < LIMIT {
      cnt = cnt + 1;
    }
  }
  comb {
    q = cnt;
    sat = cnt == LIMIT;
  }
}
`

func mustSim(t *testing.T, src string) *Simulator {
	t.Helper()
	c, err := hdl.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	s, err := New(c)
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	return s
}

func vec(vals ...bitvec.BV) Vector { return Vector(vals) }

func b1(v uint64) bitvec.BV { return bitvec.New(v, 1) }

func TestCounterCounts(t *testing.T) {
	s := mustSim(t, counterSrc)
	// reset cycle
	out, err := s.Step(vec(b1(0), b1(1)))
	if err != nil {
		t.Fatal(err)
	}
	// count 6 cycles with enable
	for i := 1; i <= 6; i++ {
		out, err = s.Step(vec(b1(1), b1(0)))
		if err != nil {
			t.Fatal(err)
		}
		if got := out[0].Uint(); got != uint64(i-1) {
			t.Fatalf("cycle %d: q = %d, want %d", i, got, i-1)
		}
	}
	// now cnt holds 6; q reflects it on the next cycle and saturates
	out, _ = s.Step(vec(b1(1), b1(0)))
	if out[0].Uint() != 6 || !out[1].IsTrue() {
		t.Fatalf("expected saturation at 6, got q=%d sat=%v", out[0].Uint(), out[1])
	}
	out, _ = s.Step(vec(b1(1), b1(0)))
	if out[0].Uint() != 6 {
		t.Fatalf("counter ran past limit: q=%d", out[0].Uint())
	}
}

func TestStepInputValidation(t *testing.T) {
	s := mustSim(t, counterSrc)
	if _, err := s.Step(vec(b1(0))); err == nil {
		t.Error("short vector accepted")
	}
	if _, err := s.Step(vec(bitvec.New(0, 2), b1(0))); err == nil {
		t.Error("wrong-width input accepted")
	}
}

func TestRegisteredOutput(t *testing.T) {
	src := `
circuit dff {
  input d : bit;
  output q : bit;
  seq { q = d; }
}`
	s := mustSim(t, src)
	out, _ := s.Step(vec(b1(1)))
	if out[0].IsTrue() {
		t.Error("registered output visible in same cycle")
	}
	out, _ = s.Step(vec(b1(0)))
	if !out[0].IsTrue() {
		t.Error("registered output did not appear next cycle")
	}
}

func TestSeqSignalSemantics(t *testing.T) {
	// Swap without temporaries relies on reads seeing pre-cycle values.
	src := `
circuit swap {
  input go : bit;
  output oa : bits(4);
  output ob : bits(4);
  reg a : bits(4) = 4'd3;
  reg b : bits(4) = 4'd12;
  seq {
    if go == 1 { a = b; b = a; }
  }
  comb { oa = a; ob = b; }
}`
	s := mustSim(t, src)
	out, _ := s.Step(vec(b1(1)))
	if out[0].Uint() != 3 || out[1].Uint() != 12 {
		t.Fatalf("pre-swap read wrong: %v %v", out[0], out[1])
	}
	out, _ = s.Step(vec(b1(0)))
	if out[0].Uint() != 12 || out[1].Uint() != 3 {
		t.Fatalf("swap failed: a=%d b=%d", out[0].Uint(), out[1].Uint())
	}
}

func TestCombChaining(t *testing.T) {
	src := `
circuit chain {
  input a : bits(4);
  output o : bits(4);
  wire t1 : bits(4);
  wire t2 : bits(4);
  comb {
    t1 = a xor 4'b1111;
    t2 = t1 + 4'd1;
    o = t2;
  }
}`
	s := mustSim(t, src)
	out, _ := s.Step(vec(bitvec.New(5, 4)))
	want := ((5 ^ 0xF) + 1) & 0xF
	if out[0].Uint() != uint64(want) {
		t.Fatalf("chain = %d, want %d", out[0].Uint(), want)
	}
}

func TestCaseDispatch(t *testing.T) {
	src := `
circuit decode {
  input s : bits(2);
  output o : bits(4);
  const TWO : bits(2) = 2'd2;
  comb {
    case s {
      when 2'd0: { o = 4'b0001; }
      when 2'd1: { o = 4'b0010; }
      when TWO: { o = 4'b0100; }
      default: { o = 4'b1000; }
    }
  }
}`
	s := mustSim(t, src)
	want := []uint64{1, 2, 4, 8}
	for i, w := range want {
		out, _ := s.Step(vec(bitvec.New(uint64(i), 2)))
		if out[0].Uint() != w {
			t.Errorf("s=%d: o=%04b want %04b", i, out[0].Uint(), w)
		}
	}
}

func TestForLoopParity(t *testing.T) {
	src := `
circuit parity8 {
  input a : bits(8);
  output p : bit;
  wire acc : bits(9);
  comb {
    acc = 9'd0;
    for i in 0 .. 7 {
      acc[i + 1] = acc[i] xor a[i];
    }
    p = acc[8];
  }
}`
	s := mustSim(t, src)
	f := func(v uint8) bool {
		out, err := s.Step(vec(bitvec.New(uint64(v), 8)))
		if err != nil {
			return false
		}
		return out[0].IsTrue() == (bitvec.New(uint64(v), 8).PopCount()%2 == 1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDynamicIndexOutOfRangeIsZero(t *testing.T) {
	src := `
circuit dyn {
  input a : bits(4);
  input i : bits(3);
  output o : bit;
  comb { o = a[i]; }
}`
	s := mustSim(t, src)
	out, _ := s.Step(vec(bitvec.Ones(4), bitvec.New(6, 3)))
	if out[0].IsTrue() {
		t.Error("out-of-range dynamic index read non-zero")
	}
	out, _ = s.Step(vec(bitvec.Ones(4), bitvec.New(2, 3)))
	if !out[0].IsTrue() {
		t.Error("in-range dynamic index read zero")
	}
}

func TestRunResets(t *testing.T) {
	s := mustSim(t, counterSrc)
	seq := Sequence{vec(b1(1), b1(0)), vec(b1(1), b1(0)), vec(b1(1), b1(0))}
	out1, err := s.Run(seq)
	if err != nil {
		t.Fatal(err)
	}
	out2, err := s.Run(seq)
	if err != nil {
		t.Fatal(err)
	}
	for i := range out1 {
		for j := range out1[i] {
			if !out1[i][j].Equal(out2[i][j]) {
				t.Fatalf("Run not deterministic after reset at cycle %d", i)
			}
		}
	}
}

func TestPeek(t *testing.T) {
	s := mustSim(t, counterSrc)
	if v, ok := s.Peek("LIMIT"); !ok || v.Uint() != 6 {
		t.Errorf("Peek(LIMIT) = %v, %v", v, ok)
	}
	if _, ok := s.Peek("nosuch"); ok {
		t.Error("Peek of unknown signal succeeded")
	}
}

func TestSequenceClone(t *testing.T) {
	seq := Sequence{vec(b1(1), b1(0))}
	cl := seq.Clone()
	cl[0][0] = b1(0)
	if !seq[0][0].IsTrue() {
		t.Error("Clone aliases original")
	}
}

func TestShiftOps(t *testing.T) {
	src := `
circuit sh {
  input a : bits(8);
  input n : bits(3);
  output l : bits(8);
  output r : bits(8);
  comb {
    l = a << n;
    r = a >> n;
  }
}`
	s := mustSim(t, src)
	out, _ := s.Step(vec(bitvec.New(0b10010110, 8), bitvec.New(2, 3)))
	if out[0].Uint() != 0b01011000 {
		t.Errorf("shl = %08b", out[0].Uint())
	}
	if out[1].Uint() != 0b00100101 {
		t.Errorf("shr = %08b", out[1].Uint())
	}
}

func TestConcatSliceEval(t *testing.T) {
	src := `
circuit cs {
  input hi : bits(4);
  input lo : bits(4);
  output o : bits(8);
  output mid : bits(2);
  comb {
    o = hi ++ lo;
    mid = (hi ++ lo)[4:3];
  }
}`
	s := mustSim(t, src)
	out, _ := s.Step(vec(bitvec.New(0xA, 4), bitvec.New(0x5, 4)))
	if out[0].Uint() != 0xA5 {
		t.Errorf("concat = %02x", out[0].Uint())
	}
	if out[1].Uint() != 0b00 {
		t.Errorf("mid = %02b", out[1].Uint())
	}
}
