package sim_test

import (
	"sync"
	"testing"

	"repro/internal/engine"
	"repro/internal/sim"
)

// TestFirstKillBatchConcurrentPool hammers the package-level scratch
// pool (lockstepScratch recycles through an engine.Pool because batch
// jobs land on arbitrary worker goroutines): several scorings run
// concurrently, each fanning many narrow batches over its own worker
// pool, so pooled buffers are constantly handed between goroutines. The
// CI -race pass pins that no buffer is ever live in two jobs at once;
// every scoring must still reproduce the serial reference profile.
func TestFirstKillBatchConcurrentPool(t *testing.T) {
	fx := newScoringFixture(t)
	ref, err := sim.FirstKillBatch(fx.progs, fx.seq, fx.goodOuts, engine.Options{Workers: 1, LaneWords: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Duplicate programs well past one lane batch so each scoring cycles
	// the pool many times (LaneWords 1 → 64 machines per batch).
	n := 3*64 + 17
	progs := make([]*sim.Program, n)
	for i := range progs {
		progs[i] = fx.progs[i%len(fx.progs)]
	}
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := sim.FirstKillBatch(progs, fx.seq, fx.goodOuts, engine.Options{Workers: 3, LaneWords: 1})
			if err != nil {
				t.Error(err)
				return
			}
			for i, cyc := range got {
				if want := ref[i%len(fx.progs)]; cyc != want {
					t.Errorf("program %d: first-kill %d, want %d", i, cyc, want)
					return
				}
			}
		}()
	}
	wg.Wait()
}
