// Mutant-parallel batch execution. Scoring a mutant population is
// embarrassingly parallel — every mutant runs the same stimulus against
// the same reference trace — so the pool fans circuits out over a fixed
// worker count with per-worker machine state and drops each mutant at its
// first divergence (early kill). Results are written by index, so the
// outcome is deterministic and independent of the worker count.
package sim

import (
	"fmt"

	"repro/internal/hdl"
	"repro/internal/par"
)

// BatchError reports which item of a batch operation failed, so callers
// can attach their own context (mutant descriptions, say) via errors.As.
type BatchError struct {
	Index int // position in the batch
	Err   error
}

func (e *BatchError) Error() string { return fmt.Sprintf("batch item %d: %v", e.Index, e.Err) }

// Unwrap returns the underlying error.
func (e *BatchError) Unwrap() error { return e.Err }

// firstBatchError wraps the lowest-index failure, keeping the reported
// error deterministic under any worker count.
func firstBatchError(errs []error) error {
	for i, err := range errs {
		if err != nil {
			return &BatchError{Index: i, Err: err}
		}
	}
	return nil
}

// CompileBatch compiles circuits concurrently, preserving order. workers
// follows the usual knob convention (<= 0 means all cores).
func CompileBatch(cs []*hdl.Circuit, workers int) ([]*Program, error) {
	progs := make([]*Program, len(cs))
	errs := make([]error, len(cs))
	par.Indexed(len(cs), workers, func(_, i int) {
		progs[i], errs[i] = Compile(cs[i])
	})
	if err := firstBatchError(errs); err != nil {
		return nil, err
	}
	return progs, nil
}

// FirstKillBatch runs every program against the sequence and returns, per
// program, the first cycle whose outputs differ from goodOuts (the
// reference circuit's trace over the same sequence), or -1 if the
// sequence never distinguishes it. A program stops simulating at its
// first divergence.
func FirstKillBatch(progs []*Program, seq Sequence, goodOuts []Vector, workers int) ([]int, error) {
	out := make([]int, len(progs))
	errs := make([]error, len(progs))
	workers = par.Workers(workers, len(progs))
	scratch := make([]Vector, workers)
	par.Indexed(len(progs), workers, func(w, i int) {
		out[i], errs[i] = firstKillCompiled(progs[i], seq, goodOuts, &scratch[w])
	})
	if err := firstBatchError(errs); err != nil {
		return nil, err
	}
	return out, nil
}

// firstKillCompiled simulates one mutant program against the good trace,
// reusing the worker's output scratch buffer across mutants.
func firstKillCompiled(p *Program, seq Sequence, goodOuts []Vector, scratch *Vector) (int, error) {
	m := p.NewMachine()
	if cap(*scratch) < p.NumOutputs() {
		*scratch = make(Vector, p.NumOutputs())
	}
	got := (*scratch)[:p.NumOutputs()]
	for cyc, v := range seq {
		if err := m.StepInto(v, got); err != nil {
			return -1, err
		}
		want := goodOuts[cyc]
		for j := range got {
			if !got[j].Equal(want[j]) {
				return cyc, nil
			}
		}
	}
	return -1, nil
}
