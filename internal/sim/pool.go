// Mutant-parallel batch execution. Scoring a mutant population is
// embarrassingly parallel — every mutant runs the same stimulus against
// the same reference trace — so the pool packs mutants into lane batches
// of laneWords×64 machines, fans the batches out over a fixed worker
// count, and steps each batch through the sequence in lockstep: the
// reference output row stays hot across the whole batch, each mutant
// drops at its first divergence (early kill), and a batch exits as soon
// as every lane has dropped. Results are written by index, so the outcome
// is deterministic and independent of both the worker count and the lane
// width.
package sim

import (
	"context"
	"fmt"
	"math/bits"

	"repro/internal/engine"
	"repro/internal/hdl"
	"repro/internal/par"
)

// BatchError reports which item of a batch operation failed, so callers
// can attach their own context (mutant descriptions, say) via errors.As.
type BatchError struct {
	Index int // position in the batch
	Err   error
}

func (e *BatchError) Error() string { return fmt.Sprintf("batch item %d: %v", e.Index, e.Err) }

// Unwrap returns the underlying error.
func (e *BatchError) Unwrap() error { return e.Err }

// firstBatchError wraps the lowest-index failure, keeping the reported
// error deterministic under any worker count.
func firstBatchError(errs []error) error {
	for i, err := range errs {
		if err != nil {
			return &BatchError{Index: i, Err: err}
		}
	}
	return nil
}

// CompileBatch compiles circuits concurrently, preserving order. workers
// follows the usual knob convention (<= 0 means all cores).
func CompileBatch(cs []*hdl.Circuit, workers int) ([]*Program, error) {
	progs := make([]*Program, len(cs))
	errs := make([]error, len(cs))
	par.Indexed(len(cs), workers, func(_, i int) {
		progs[i], errs[i] = Compile(cs[i])
	})
	if err := firstBatchError(errs); err != nil {
		return nil, err
	}
	return progs, nil
}

// FirstKillBatch runs every program against the sequence and returns, per
// program, the first cycle whose outputs differ from goodOuts (the
// reference circuit's trace over the same sequence), or -1 if the
// sequence never distinguishes it. The engine options size the pool
// (Workers) and the lane batches (LaneWords×64 programs per pool job, 0
// selecting lane.DefaultWords); each batch is stepped in lockstep with
// early per-mutant dropping and early batch exit, the progress hook
// fires per completed batch, and a cancelled Ctx aborts between batches
// (and between cycles inside a batch) with the context's error. A
// program that fails mid-sequence reports its error and drops; the rest
// of its batch keeps scoring.
//
// FirstKillBatch instantiates one Machine per program per call. Callers
// that score the same programs repeatedly (equivalence campaigns) hold
// the machines themselves and use FirstKillBatchMachines.
func FirstKillBatch(progs []*Program, seq Sequence, goodOuts []Vector, opts engine.Options) ([]int, error) {
	machines := make([]*Machine, len(progs))
	for i, p := range progs {
		machines[i] = p.NewMachine()
	}
	return FirstKillBatchMachines(machines, seq, goodOuts, opts)
}

// FirstKillBatchMachines is FirstKillBatch over caller-owned machines
// (one per program, reused across calls — each is Reset to power-on
// before it scores). Within a call every machine belongs to exactly one
// lane batch, so concurrent pool jobs never share one; the machines are
// free for the caller to reuse as soon as the call returns. The result
// slice is freshly allocated and caller-owned.
func FirstKillBatchMachines(machines []*Machine, seq Sequence, goodOuts []Vector, opts engine.Options) ([]int, error) {
	words, err := opts.Lanes()
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	L := words * 64
	out := make([]int, len(machines))
	errs := make([]error, len(machines))
	nBatches := (len(machines) + L - 1) / L
	ctxErrs := make([]error, nBatches)
	err = par.IndexedCtx(opts.Ctx, nBatches, opts.Workers, func(_, b int) {
		lo := b * L
		hi := min(lo+L, len(machines))
		sc := lockstepPool.Get()
		ctxErrs[b] = firstKillLockstep(machines[lo:hi], seq, goodOuts, out[lo:hi], errs[lo:hi], sc, opts.Ctx)
		lockstepPool.Put(sc)
	}, func(done int) { opts.Report(done, nBatches) })
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	for _, e := range ctxErrs {
		if e != nil {
			return nil, fmt.Errorf("sim: %w", e)
		}
	}
	if err := firstBatchError(errs); err != nil {
		return nil, err
	}
	return out, nil
}

// lockstepScratch is the per-batch scratch of one lockstep job: the
// output vector every lane steps into and the per-lane alive mask. Jobs
// land on arbitrary pool workers, so the buffers cross goroutines and
// are recycled through an engine.Pool — each job owns its scratch
// exclusively between Get and Put (the -race pool tests pin this).
type lockstepScratch struct {
	out   Vector
	alive []uint64
}

var lockstepPool = engine.NewPool(func() *lockstepScratch { return &lockstepScratch{} })

// firstKillLockstep scores one lane batch: every machine advances one
// cycle before any machine sees the next, so the reference row goodOuts
// is read once per cycle for the whole batch. alive is a per-lane mask;
// killed and failed lanes drop out of the stepping loop immediately, and
// the batch returns once no lane is alive.
func firstKillLockstep(machines []*Machine, seq Sequence, goodOuts []Vector, out []int, errs []error, sc *lockstepScratch, ctx context.Context) error {
	maxOuts := 0
	for j, m := range machines {
		m.Reset()
		out[j] = -1
		maxOuts = max(maxOuts, m.p.NumOutputs())
	}
	sc.out = engine.Grow(sc.out, maxOuts)
	alive := engine.GrowZero(sc.alive, (len(machines)+63)/64)
	sc.alive = alive
	for j := range machines {
		alive[j>>6] |= 1 << uint(j&63)
	}
	remaining := len(machines)
	for cyc, v := range seq {
		if ctx != nil && cyc&31 == 31 && ctx.Err() != nil {
			return ctx.Err()
		}
		for k := range alive {
			rest := alive[k]
			for rest != 0 {
				bit := uint(bits.TrailingZeros64(rest))
				rest &^= 1 << bit
				j := k*64 + int(bit)
				m := machines[j]
				got := sc.out[:m.p.NumOutputs()]
				if err := m.StepInto(v, got); err != nil {
					errs[j] = err
					alive[k] &^= 1 << bit
					remaining--
					continue
				}
				want := goodOuts[cyc]
				for o := range got {
					if !got[o].Equal(want[o]) {
						out[j] = cyc
						alive[k] &^= 1 << bit
						remaining--
						break
					}
				}
			}
		}
		if remaining == 0 {
			return nil
		}
	}
	return nil
}
