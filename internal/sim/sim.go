// Package sim is the cycle-accurate behavioral simulator for MHDL
// circuits. It is the engine on which both the original description and
// its mutants execute during validation-data generation, so the hot path
// (Step) avoids allocation: every signal is resolved to an integer slot at
// construction time and a single flat value array serves as the
// environment.
//
// Cycle semantics (two-phase, implicit clock):
//
//  1. wires are cleared to zero,
//  2. input values are written,
//  3. comb blocks execute in declaration order with immediate updates,
//  4. outputs are sampled (registered outputs still hold last cycle's
//     values, like VHDL clocked-process outputs),
//  5. seq blocks execute reading pre-cycle register values and writing a
//     shadow "next" array (VHDL signal-assignment semantics),
//  6. registers and registered outputs commit their next values.
package sim

import (
	"fmt"
	"math/bits"

	"repro/internal/bitvec"
	"repro/internal/hdl"
)

// Vector is one input (or output) assignment, ordered by the circuit's
// input (or output) declaration order.
type Vector []bitvec.BV

// Sequence is a test: one input vector per clock cycle, applied after
// power-on reset state.
type Sequence []Vector

// Clone returns a deep copy of the sequence.
func (s Sequence) Clone() Sequence {
	out := make(Sequence, len(s))
	for i, v := range s {
		out[i] = append(Vector(nil), v...)
	}
	return out
}

// Simulator executes one circuit instance. It is not safe for concurrent
// use; create one Simulator per goroutine.
type Simulator struct {
	c     *hdl.Circuit
	slots map[string]int
	env   []bitvec.BV // current values, indexed by slot
	next  []bitvec.BV // shadow values for seq writes
	width []int

	inSlots   []int // input ports, declaration order
	outSlots  []int // output ports, declaration order
	regSlots  []int // regs plus registered outputs
	wireSlots []int
	regInit   []bitvec.BV

	loopVars map[string]uint64
}

// New builds a simulator for a checked circuit. The circuit must have been
// through hdl.Check (either mode); widths on expression nodes are trusted.
func New(c *hdl.Circuit) (*Simulator, error) {
	s := &Simulator{
		c:        c,
		slots:    make(map[string]int),
		loopVars: make(map[string]uint64),
	}
	alloc := func(name string, width int) (int, error) {
		if _, dup := s.slots[name]; dup {
			return 0, fmt.Errorf("sim: duplicate signal %q", name)
		}
		id := len(s.env)
		s.slots[name] = id
		s.env = append(s.env, bitvec.Zero(width))
		s.width = append(s.width, width)
		return id, nil
	}

	registered := c.AssignedSignals(hdl.Seq)
	for _, p := range c.Ports {
		id, err := alloc(p.Name, p.Width)
		if err != nil {
			return nil, err
		}
		if p.Dir == hdl.Input {
			s.inSlots = append(s.inSlots, id)
		} else {
			s.outSlots = append(s.outSlots, id)
			if registered[p.Name] {
				s.regSlots = append(s.regSlots, id)
				s.regInit = append(s.regInit, bitvec.Zero(p.Width))
			}
		}
	}
	for _, r := range c.Regs {
		id, err := alloc(r.Name, r.Width)
		if err != nil {
			return nil, err
		}
		s.regSlots = append(s.regSlots, id)
		s.regInit = append(s.regInit, r.Init)
	}
	for _, w := range c.Wires {
		id, err := alloc(w.Name, w.Width)
		if err != nil {
			return nil, err
		}
		s.wireSlots = append(s.wireSlots, id)
	}
	for _, k := range c.Consts {
		id, err := alloc(k.Name, k.Width)
		if err != nil {
			return nil, err
		}
		s.env[id] = k.Value
	}
	s.next = make([]bitvec.BV, len(s.env))
	s.Reset()
	return s, nil
}

// Circuit returns the circuit being simulated.
func (s *Simulator) Circuit() *hdl.Circuit { return s.c }

// NumInputs returns the number of input ports.
func (s *Simulator) NumInputs() int { return len(s.inSlots) }

// NumOutputs returns the number of output ports.
func (s *Simulator) NumOutputs() int { return len(s.outSlots) }

// InputWidths returns the widths of the input ports in declaration order.
func (s *Simulator) InputWidths() []int {
	ws := make([]int, len(s.inSlots))
	for i, id := range s.inSlots {
		ws[i] = s.width[id]
	}
	return ws
}

// Reset restores power-on state: registers to their declared init values,
// registered outputs to zero.
func (s *Simulator) Reset() {
	for i, id := range s.regSlots {
		s.env[id] = s.regInit[i]
	}
}

// Snapshot captures the register state (registers and registered outputs)
// so a caller can explore candidate input segments and roll back. The
// returned slice is owned by the caller.
func (s *Simulator) Snapshot() []bitvec.BV {
	out := make([]bitvec.BV, len(s.regSlots))
	for i, id := range s.regSlots {
		out[i] = s.env[id]
	}
	return out
}

// Restore rewinds the register state to a snapshot taken on this simulator.
func (s *Simulator) Restore(snap []bitvec.BV) {
	if len(snap) != len(s.regSlots) {
		panic(fmt.Sprintf("sim: snapshot of %d registers for %d", len(snap), len(s.regSlots)))
	}
	for i, id := range s.regSlots {
		s.env[id] = snap[i]
	}
}

// Peek returns the current value of a named signal (register, port, wire
// or constant), for debugging and tests.
func (s *Simulator) Peek(name string) (bitvec.BV, bool) {
	id, ok := s.slots[name]
	if !ok {
		return bitvec.BV{}, false
	}
	return s.env[id], true
}

// Step applies one input vector, advances one clock cycle, and returns the
// sampled output vector. The returned slice is freshly allocated.
func (s *Simulator) Step(in Vector) (Vector, error) {
	if len(in) != len(s.inSlots) {
		return nil, fmt.Errorf("sim: %d input values for %d inputs", len(in), len(s.inSlots))
	}
	for i, id := range s.inSlots {
		if in[i].Width() != s.width[id] {
			return nil, fmt.Errorf("sim: input %d has width %d, want %d", i, in[i].Width(), s.width[id])
		}
		s.env[id] = in[i]
	}
	for _, id := range s.wireSlots {
		s.env[id] = bitvec.Zero(s.width[id])
	}
	for _, b := range s.c.Blocks {
		if b.Kind == hdl.Comb {
			s.execStmts(b.Stmts, true)
		}
	}
	out := make(Vector, len(s.outSlots))
	for i, id := range s.outSlots {
		out[i] = s.env[id]
	}
	for _, id := range s.regSlots {
		s.next[id] = s.env[id]
	}
	for _, b := range s.c.Blocks {
		if b.Kind == hdl.Seq {
			s.execStmts(b.Stmts, false)
		}
	}
	for _, id := range s.regSlots {
		s.env[id] = s.next[id]
	}
	return out, nil
}

// Run resets the simulator and applies the whole sequence, returning one
// output vector per cycle.
func (s *Simulator) Run(seq Sequence) ([]Vector, error) {
	s.Reset()
	out := make([]Vector, 0, len(seq))
	for i, vec := range seq {
		o, err := s.Step(vec)
		if err != nil {
			return nil, fmt.Errorf("cycle %d: %w", i, err)
		}
		out = append(out, o)
	}
	return out, nil
}

// execStmts runs a statement list. immediate selects comb semantics (writes
// visible to later statements) versus seq semantics (writes to the shadow
// array, reads see pre-cycle values).
func (s *Simulator) execStmts(ss []hdl.Stmt, immediate bool) {
	for _, st := range ss {
		s.execStmt(st, immediate)
	}
}

func (s *Simulator) execStmt(st hdl.Stmt, immediate bool) {
	switch st := st.(type) {
	case *hdl.Assign:
		s.execAssign(st, immediate)
	case *hdl.If:
		if s.eval(st.Cond).IsTrue() {
			s.execStmts(st.Then, immediate)
		} else {
			s.execStmts(st.Else, immediate)
		}
	case *hdl.Case:
		subj := s.eval(st.Subject)
		for _, arm := range st.Arms {
			for _, l := range arm.Labels {
				if s.eval(l).Equal(subj) {
					s.execStmts(arm.Body, immediate)
					return
				}
			}
		}
		s.execStmts(st.Default, immediate)
	case *hdl.For:
		for v := st.Lo; v <= st.Hi; v++ {
			s.loopVars[st.Var] = uint64(v)
			s.execStmts(st.Body, immediate)
		}
		delete(s.loopVars, st.Var)
	}
}

func (s *Simulator) execAssign(st *hdl.Assign, immediate bool) {
	id, ok := s.slots[st.LHS.Name]
	if !ok {
		return // mutants may reference deleted names; tolerate
	}
	val := s.eval(st.RHS)
	target := &s.next[id]
	if immediate {
		target = &s.env[id]
	}
	if st.LHS.Index == nil {
		if val.Width() != s.width[id] {
			val = val.Resize(s.width[id])
		}
		*target = val
		return
	}
	idx := s.eval(st.LHS.Index).Uint()
	if idx >= uint64(s.width[id]) {
		return // out-of-range dynamic bit write is a no-op
	}
	*target = target.SetBit(int(idx), val.Uint()&1)
}

// eval computes an expression's value. Widths were resolved by the checker;
// dynamic indices out of range read as zero.
func (s *Simulator) eval(e hdl.Expr) bitvec.BV {
	switch e := e.(type) {
	case *hdl.Lit:
		if e.Width == 0 {
			// Unchecked literal (possible in relaxed-mode mutants): use
			// natural width.
			return bitvec.New(e.Raw, max(1, bits.Len64(e.Raw)))
		}
		return e.Val
	case *hdl.Ref:
		if v, ok := s.loopVars[e.Name]; ok {
			w := e.Width
			if w == 0 {
				w = 8
			}
			return bitvec.New(v, w)
		}
		id, ok := s.slots[e.Name]
		if !ok {
			w := e.Width
			if w == 0 {
				w = 1
			}
			return bitvec.Zero(w)
		}
		return s.env[id]
	case *hdl.Index:
		x := s.eval(e.X)
		i := s.eval(e.I).Uint()
		if i >= uint64(x.Width()) {
			return bitvec.Zero(1)
		}
		return bitvec.New(x.Bit(int(i)), 1)
	case *hdl.SliceExpr:
		return s.eval(e.X).Slice(e.Hi, e.Lo)
	case *hdl.Unary:
		x := s.eval(e.X)
		switch e.Op {
		case hdl.OpNot:
			return x.Not()
		case hdl.OpNeg:
			return x.Neg()
		case hdl.OpRedAnd:
			return x.ReduceAnd()
		case hdl.OpRedOr:
			return x.ReduceOr()
		case hdl.OpRedXor:
			return x.ReduceXor()
		}
	case *hdl.Binary:
		x := s.eval(e.X)
		y := s.eval(e.Y)
		// Mutants can combine signals whose widths the original context
		// fixed differently (VR in relaxed mode); resize defensively.
		if x.Width() != y.Width() && e.Op != hdl.OpConcat && !e.Op.IsShift() {
			y = y.Resize(x.Width())
		}
		switch e.Op {
		case hdl.OpAnd:
			return x.And(y)
		case hdl.OpOr:
			return x.Or(y)
		case hdl.OpXor:
			return x.Xor(y)
		case hdl.OpNand:
			return x.Nand(y)
		case hdl.OpNor:
			return x.Nor(y)
		case hdl.OpXnor:
			return x.Xnor(y)
		case hdl.OpEq:
			return x.Eq(y)
		case hdl.OpNe:
			return x.Ne(y)
		case hdl.OpLt:
			return x.Lt(y)
		case hdl.OpLe:
			return x.Le(y)
		case hdl.OpGt:
			return x.Gt(y)
		case hdl.OpGe:
			return x.Ge(y)
		case hdl.OpAdd:
			return x.Add(y)
		case hdl.OpSub:
			return x.Sub(y)
		case hdl.OpMul:
			return x.Mul(y)
		case hdl.OpShl:
			return x.Shl(y.Resize(x.Width()))
		case hdl.OpShr:
			return x.Shr(y.Resize(x.Width()))
		case hdl.OpConcat:
			return x.Concat(y)
		}
	}
	panic(fmt.Sprintf("sim: cannot evaluate %T", e))
}
