package sim_test

import (
	"fmt"
	"testing"

	"repro/internal/circuits"
	"repro/internal/engine"
	"repro/internal/hdl"
	"repro/internal/mutation"
	"repro/internal/sim"
	"repro/internal/tpg"
)

// scoringFixture compiles a mutant population and the good trace once for
// the ragged-tail batch tests.
type scoringFixture struct {
	progs    []*sim.Program
	seq      sim.Sequence
	goodOuts []sim.Vector
}

func newScoringFixture(t *testing.T) *scoringFixture {
	t.Helper()
	c := circuits.MustLoad("b01")
	ms := mutation.Generate(c)
	if len(ms) == 0 {
		t.Fatal("no mutants")
	}
	cs := make([]*hdl.Circuit, len(ms))
	for i, m := range ms {
		cs[i] = m.Circuit
	}
	progs, err := sim.CompileBatch(cs, 0)
	if err != nil {
		t.Fatal(err)
	}
	seq := tpg.RandomSequence(c, 60, 3)
	good, err := sim.Compile(c)
	if err != nil {
		t.Fatal(err)
	}
	goodOuts, err := good.NewMachine().Run(seq)
	if err != nil {
		t.Fatal(err)
	}
	return &scoringFixture{progs: progs, seq: seq, goodOuts: goodOuts}
}

// TestFirstKillBatchRaggedTails pins lane batching on mutant counts of
// 0, 1, 63, 64, 65 and W×64±1 (duplicating programs past the population
// size — the same program may ride in many lanes): every count at every
// width must reproduce the per-program profile of the W=1 single-worker
// run.
func TestFirstKillBatchRaggedTails(t *testing.T) {
	fx := newScoringFixture(t)

	// Reference profile per distinct program.
	ref, err := sim.FirstKillBatch(fx.progs, fx.seq, fx.goodOuts, engine.Options{Workers: 1, LaneWords: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, W := range []int{1, 4, 8} {
		L := W * 64
		for _, n := range []int{0, 1, 63, 64, 65, L - 1, L, L + 1} {
			t.Run(fmt.Sprintf("W=%d/n=%d", W, n), func(t *testing.T) {
				progs := make([]*sim.Program, n)
				for i := range progs {
					progs[i] = fx.progs[i%len(fx.progs)]
				}
				got, err := sim.FirstKillBatch(progs, fx.seq, fx.goodOuts, engine.Options{Workers: 2, LaneWords: W})
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != n {
					t.Fatalf("%d results for %d programs", len(got), n)
				}
				for i, cyc := range got {
					if want := ref[i%len(fx.progs)]; cyc != want {
						t.Errorf("program %d: first-kill %d, want %d", i, cyc, want)
					}
				}
			})
		}
	}
}
