// Flat-program compilation of MHDL circuits.
//
// The AST-walking Simulator pays an interface dispatch, a type switch and a
// map probe per node per cycle, which dominates mutation scoring: a
// campaign executes the same small circuit millions of times. Compile
// translates a checked circuit once into a linear instruction stream over
// integer value slots — expression trees become register-machine ops,
// if/case become conditional jumps, for loops are unrolled, and every
// literal, loop-variable value and out-of-scope reference is interned into
// a constant pool. A compiled Program is immutable and shareable; Machine
// carries the per-goroutine mutable state (two value arrays), so a worker
// pool scores many mutants concurrently from one compilation each.
//
// Semantics are bit-identical to Simulator.Step — including the
// relaxed-mode tolerances mutants need (missing names, width mismatches,
// out-of-range dynamic indices) — which TestMachineMatchesSimulator
// enforces differentially across whole mutant populations.
package sim

import (
	"fmt"
	"math/bits"

	"repro/internal/bitvec"
	"repro/internal/engine"
	"repro/internal/hdl"
)

type opcode uint8

// Opcodes. The binary group must stay contiguous and in hdl.BinOp order:
// binary instructions are encoded as opBinBase + opcode(hdl.BinOp).
const (
	opCopy       opcode = iota // env[dst] = resize(env[a], c)
	opCopyNext                 // next[dst] = resize(env[a], c)
	opSetBit                   // env[dst] bit env[a] = env[b]&1, width guard c
	opSetBitNext               // same against next[dst]
	opResize                   // env[dst] = env[a].Resize(c)
	opIndex                    // env[dst] = env[a][env[b]], 0 when out of range
	opSlice                    // env[dst] = env[a].Slice(c, d)
	opNot
	opNeg
	opRedAnd
	opRedOr
	opRedXor
	opJmp // pc = c
	opJz  // if env[a] == 0: pc = c
	opJeq // if env[a].Equal(env[b]): pc = c
	opBinBase
)

// instr is one compiled operation. Meanings of a, b, c, d vary by opcode;
// all value operands are slot indices into the machine's env array.
type instr struct {
	op   opcode
	dst  int32
	a, b int32
	c, d int32 // width, jump target, or slice bounds
}

// Program is a compiled circuit: named slots laid out exactly like
// Simulator's, a constant pool, scratch slots, and two instruction
// streams (comb-phase and seq-phase). It is immutable after Compile and
// safe for concurrent use through per-goroutine Machines.
type Program struct {
	c     *hdl.Circuit
	comb  []instr
	seq   []instr
	init  []bitvec.BV // initial env: consts, pool values, zeros elsewhere
	width []int       // declared width per named slot

	slots     map[string]int
	inSlots   []int
	outSlots  []int
	regSlots  []int
	wireSlots []int
	regInit   []bitvec.BV
	wireZero  []bitvec.BV
}

// Circuit returns the compiled circuit.
func (p *Program) Circuit() *hdl.Circuit { return p.c }

// NumInputs returns the number of input ports.
func (p *Program) NumInputs() int { return len(p.inSlots) }

// NumOutputs returns the number of output ports.
func (p *Program) NumOutputs() int { return len(p.outSlots) }

// compiler accumulates one instruction stream. Expression results live in
// scratch slots addressed by tree depth, so temporaries are reused across
// statements and the env array stays small.
type compiler struct {
	p        *Program
	code     []instr
	next     bool // emitting a seq block: named stores hit the next array
	loopVars map[string]uint64
	temps    []int         // scratch slot per expression depth
	pool     map[bvKey]int // interned constants
	readW    []int         // actual value width per named slot (consts!)
}

type bvKey struct {
	bits  uint64
	width int
}

// Compile translates a checked circuit into a Program. The circuit may be
// a relaxed-mode mutant; the generated code reproduces the interpreter's
// defensive semantics exactly.
func Compile(c *hdl.Circuit) (*Program, error) {
	p := &Program{c: c, slots: make(map[string]int)}
	alloc := func(name string, width int) (int, error) {
		if _, dup := p.slots[name]; dup {
			return 0, fmt.Errorf("sim: duplicate signal %q", name)
		}
		id := len(p.init)
		p.slots[name] = id
		p.init = append(p.init, bitvec.Zero(width))
		p.width = append(p.width, width)
		return id, nil
	}
	registered := c.AssignedSignals(hdl.Seq)
	for _, port := range c.Ports {
		id, err := alloc(port.Name, port.Width)
		if err != nil {
			return nil, err
		}
		if port.Dir == hdl.Input {
			p.inSlots = append(p.inSlots, id)
		} else {
			p.outSlots = append(p.outSlots, id)
			if registered[port.Name] {
				p.regSlots = append(p.regSlots, id)
				p.regInit = append(p.regInit, bitvec.Zero(port.Width))
			}
		}
	}
	for _, r := range c.Regs {
		id, err := alloc(r.Name, r.Width)
		if err != nil {
			return nil, err
		}
		p.regSlots = append(p.regSlots, id)
		p.regInit = append(p.regInit, r.Init)
	}
	for _, w := range c.Wires {
		id, err := alloc(w.Name, w.Width)
		if err != nil {
			return nil, err
		}
		p.wireSlots = append(p.wireSlots, id)
		p.wireZero = append(p.wireZero, bitvec.Zero(w.Width))
	}
	k := &compiler{
		p:        p,
		loopVars: make(map[string]uint64),
		pool:     make(map[bvKey]int),
	}
	for _, kst := range c.Consts {
		id, err := alloc(kst.Name, kst.Width)
		if err != nil {
			return nil, err
		}
		p.init[id] = kst.Value
	}
	// The interpreter's width decisions follow the value actually held in
	// a slot, which for constants is the declared value's own width.
	k.readW = make([]int, len(p.init))
	copy(k.readW, p.width)
	for _, kst := range c.Consts {
		k.readW[p.slots[kst.Name]] = kst.Value.Width()
	}

	for _, kind := range []hdl.BlockKind{hdl.Comb, hdl.Seq} {
		k.code = nil
		k.next = kind == hdl.Seq
		for _, b := range c.Blocks {
			if b.Kind == kind {
				k.stmts(b.Stmts)
			}
		}
		if kind == hdl.Comb {
			p.comb = k.code
		} else {
			p.seq = k.code
		}
	}
	return p, nil
}

func (k *compiler) emit(in instr) int {
	k.code = append(k.code, in)
	return len(k.code) - 1
}

func (k *compiler) patch(at int) { k.code[at].c = int32(len(k.code)) }

// temp returns the scratch slot for the given expression depth, allocating
// it on first use.
func (k *compiler) temp(depth int) int {
	for len(k.temps) <= depth {
		k.temps = append(k.temps, len(k.p.init))
		k.p.init = append(k.p.init, bitvec.Zero(1))
		k.p.width = append(k.p.width, 0)
		k.readW = append(k.readW, 0)
	}
	return k.temps[depth]
}

// constSlot interns a constant value into the pool.
func (k *compiler) constSlot(v bitvec.BV) int {
	key := bvKey{v.Uint(), v.Width()}
	if id, ok := k.pool[key]; ok {
		return id
	}
	id := len(k.p.init)
	k.p.init = append(k.p.init, v)
	k.p.width = append(k.p.width, v.Width())
	k.readW = append(k.readW, v.Width())
	k.pool[key] = id
	return id
}

func (k *compiler) stmts(ss []hdl.Stmt) {
	for _, st := range ss {
		k.stmt(st)
	}
}

func (k *compiler) stmt(st hdl.Stmt) {
	switch st := st.(type) {
	case *hdl.Assign:
		k.assign(st)
	case *hdl.If:
		cond, _ := k.expr(st.Cond, 0)
		jz := k.emit(instr{op: opJz, a: int32(cond)})
		k.stmts(st.Then)
		jmp := k.emit(instr{op: opJmp})
		k.patch(jz)
		k.stmts(st.Else)
		k.patch(jmp)
	case *hdl.Case:
		// The subject stays live in depth-0 scratch while labels evaluate
		// at depth 1; label comparison is the interpreter's exact Equal
		// (width and bits).
		subj, _ := k.expr(st.Subject, 0)
		armJumps := make([][]int, len(st.Arms))
		for ai, arm := range st.Arms {
			for _, l := range arm.Labels {
				ls, _ := k.expr(l, 1)
				armJumps[ai] = append(armJumps[ai],
					k.emit(instr{op: opJeq, a: int32(subj), b: int32(ls)}))
			}
		}
		k.stmts(st.Default)
		endJumps := []int{k.emit(instr{op: opJmp})}
		for ai, arm := range st.Arms {
			for _, at := range armJumps[ai] {
				k.patch(at)
			}
			k.stmts(arm.Body)
			endJumps = append(endJumps, k.emit(instr{op: opJmp}))
		}
		for _, at := range endJumps {
			k.patch(at)
		}
	case *hdl.For:
		for v := st.Lo; v <= st.Hi; v++ {
			k.loopVars[st.Var] = uint64(v)
			k.stmts(st.Body)
		}
		delete(k.loopVars, st.Var)
	}
}

func (k *compiler) assign(st *hdl.Assign) {
	id, ok := k.p.slots[st.LHS.Name]
	if !ok {
		return // mutants may reference deleted names; tolerate
	}
	store, setBit := opCopy, opSetBit
	if k.next {
		store, setBit = opCopyNext, opSetBitNext
	}
	if st.LHS.Index == nil {
		val, _ := k.expr(st.RHS, 0)
		k.emit(instr{op: store, dst: int32(id), a: int32(val), c: int32(k.p.width[id])})
		return
	}
	val, _ := k.expr(st.RHS, 0)
	idx, _ := k.expr(st.LHS.Index, 1)
	k.emit(instr{op: setBit, dst: int32(id), a: int32(idx), b: int32(val), c: int32(k.p.width[id])})
}

// expr compiles an expression and returns the slot holding its value plus
// that value's statically known width. Scratch lives at the given depth;
// subexpressions use depth+1 so live operands never collide.
func (k *compiler) expr(e hdl.Expr, depth int) (int, int) {
	switch e := e.(type) {
	case *hdl.Lit:
		if e.Width == 0 {
			// Unchecked literal (possible in relaxed-mode mutants): use
			// natural width.
			v := bitvec.New(e.Raw, max(1, bits.Len64(e.Raw)))
			return k.constSlot(v), v.Width()
		}
		return k.constSlot(e.Val), e.Val.Width()
	case *hdl.Ref:
		if v, ok := k.loopVars[e.Name]; ok {
			w := e.Width
			if w == 0 {
				w = 8
			}
			return k.constSlot(bitvec.New(v, w)), w
		}
		id, ok := k.p.slots[e.Name]
		if !ok {
			w := e.Width
			if w == 0 {
				w = 1
			}
			return k.constSlot(bitvec.Zero(w)), w
		}
		return id, k.readW[id]
	case *hdl.Index:
		x, _ := k.expr(e.X, depth)
		i, _ := k.expr(e.I, depth+1)
		dst := k.temp(depth)
		k.emit(instr{op: opIndex, dst: int32(dst), a: int32(x), b: int32(i)})
		return dst, 1
	case *hdl.SliceExpr:
		x, _ := k.expr(e.X, depth)
		dst := k.temp(depth)
		k.emit(instr{op: opSlice, dst: int32(dst), a: int32(x), c: int32(e.Hi), d: int32(e.Lo)})
		return dst, e.Hi - e.Lo + 1
	case *hdl.Unary:
		x, xw := k.expr(e.X, depth)
		dst := k.temp(depth)
		var op opcode
		w := xw
		switch e.Op {
		case hdl.OpNot:
			op = opNot
		case hdl.OpNeg:
			op = opNeg
		case hdl.OpRedAnd:
			op, w = opRedAnd, 1
		case hdl.OpRedOr:
			op, w = opRedOr, 1
		case hdl.OpRedXor:
			op, w = opRedXor, 1
		default:
			panic(fmt.Sprintf("sim: cannot compile unary op %v", e.Op))
		}
		k.emit(instr{op: op, dst: int32(dst), a: int32(x)})
		return dst, w
	case *hdl.Binary:
		x, xw := k.expr(e.X, depth)
		y, yw := k.expr(e.Y, depth+1)
		// Mutants can combine signals whose widths the original context
		// fixed differently (VR in relaxed mode); resize defensively, and
		// bring shift counts to the operand width like the interpreter.
		if xw != yw && e.Op != hdl.OpConcat {
			t := k.temp(depth + 1)
			k.emit(instr{op: opResize, dst: int32(t), a: int32(y), c: int32(xw)})
			y = t
			if !e.Op.IsShift() {
				yw = xw
			}
		}
		dst := k.temp(depth)
		k.emit(instr{op: opBinBase + opcode(e.Op), dst: int32(dst), a: int32(x), b: int32(y)})
		switch {
		case e.Op.IsRelational():
			return dst, 1
		case e.Op == hdl.OpConcat:
			return dst, xw + yw
		default:
			return dst, xw
		}
	}
	panic(fmt.Sprintf("sim: cannot compile %T", e))
}

// Machine is the mutable execution state of one Program instance: the
// value array, the seq-phase shadow array, nothing else. Machines are
// cheap (two slice allocations), so a scoring pool creates one per mutant
// per worker without pressure. Not safe for concurrent use.
type Machine struct {
	p    *Program
	env  []bitvec.BV
	next []bitvec.BV
}

// NewMachine creates fresh execution state in power-on reset.
func (p *Program) NewMachine() *Machine {
	m := &Machine{
		p:    p,
		env:  append([]bitvec.BV(nil), p.init...),
		next: make([]bitvec.BV, len(p.init)),
	}
	m.Reset()
	return m
}

// Program returns the compiled program this machine executes.
func (m *Machine) Program() *Program { return m.p }

// Reset restores power-on state: registers to their declared init values,
// registered outputs to zero.
func (m *Machine) Reset() {
	for i, id := range m.p.regSlots {
		m.env[id] = m.p.regInit[i]
	}
}

// Snapshot captures the register state in the same order as
// Simulator.Snapshot, so snapshots from either engine are interchangeable.
// The returned slice is freshly allocated; hot loops use SnapshotInto.
func (m *Machine) Snapshot() []bitvec.BV {
	return m.SnapshotInto(nil)
}

// SnapshotInto is Snapshot into a reusable buffer: dst's storage is kept
// when its capacity suffices, so a candidate-probe loop snapshots without
// allocating after warm-up. The returned slice (which may differ from
// dst) is valid until the next SnapshotInto on the same buffer.
func (m *Machine) SnapshotInto(dst []bitvec.BV) []bitvec.BV {
	dst = engine.Grow(dst, len(m.p.regSlots))
	for i, id := range m.p.regSlots {
		dst[i] = m.env[id]
	}
	return dst
}

// Restore rewinds the register state to a snapshot taken on this program.
func (m *Machine) Restore(snap []bitvec.BV) {
	if len(snap) != len(m.p.regSlots) {
		panic(fmt.Sprintf("sim: snapshot of %d registers for %d", len(snap), len(m.p.regSlots)))
	}
	for i, id := range m.p.regSlots {
		m.env[id] = snap[i]
	}
}

// Peek returns the current value of a named signal, for debugging and
// tests.
func (m *Machine) Peek(name string) (bitvec.BV, bool) {
	id, ok := m.p.slots[name]
	if !ok {
		return bitvec.BV{}, false
	}
	return m.env[id], true
}

// Step applies one input vector, advances one clock cycle, and returns the
// sampled output vector, exactly like Simulator.Step.
//
//repro:step
func (m *Machine) Step(in Vector) (Vector, error) {
	out := make(Vector, len(m.p.outSlots))
	if err := m.StepInto(in, out); err != nil {
		return nil, err
	}
	return out, nil
}

// StepInto is Step without allocating: outputs are written into out, which
// must hold NumOutputs elements. The scoring pool's inner loop uses it.
//
//repro:step
func (m *Machine) StepInto(in Vector, out Vector) error {
	p := m.p
	if len(in) != len(p.inSlots) {
		return fmt.Errorf("sim: %d input values for %d inputs", len(in), len(p.inSlots))
	}
	for i, id := range p.inSlots {
		if in[i].Width() != p.width[id] {
			return fmt.Errorf("sim: input %d has width %d, want %d", i, in[i].Width(), p.width[id])
		}
		m.env[id] = in[i]
	}
	for i, id := range p.wireSlots {
		m.env[id] = p.wireZero[i]
	}
	m.exec(p.comb)
	for i, id := range p.outSlots {
		out[i] = m.env[id]
	}
	for _, id := range p.regSlots {
		m.next[id] = m.env[id]
	}
	m.exec(p.seq)
	for _, id := range p.regSlots {
		m.env[id] = m.next[id]
	}
	return nil
}

// Run resets the machine and applies the whole sequence, returning one
// output vector per cycle. The rows are freshly allocated; trace loops
// that rerun the same machine use RunInto. Run is //repro:step — it is
// bounded by its sequence, so the Ctx polling obligation sits with the
// campaign loops that call it.
//
//repro:step
func (m *Machine) Run(seq Sequence) ([]Vector, error) {
	return m.RunInto(seq, nil)
}

// RunInto is Run into a reusable trace buffer: outs and its rows are
// recycled when their capacity suffices, so a campaign that re-traces the
// good circuit every round stops allocating after warm-up. The returned
// trace (which may differ from outs) is valid until the next RunInto on
// the same buffer.
//
//repro:step
func (m *Machine) RunInto(seq Sequence, outs []Vector) ([]Vector, error) {
	m.Reset()
	outs = engine.Grow(outs, len(seq))
	for i, vec := range seq {
		outs[i] = engine.Grow(outs[i], len(m.p.outSlots))
		if err := m.StepInto(vec, outs[i]); err != nil {
			return nil, fmt.Errorf("cycle %d: %w", i, err)
		}
	}
	return outs, nil
}

// exec interprets one instruction stream against the machine state.
//
//repro:hotpath
func (m *Machine) exec(code []instr) {
	env, next := m.env, m.next
	for pc := 0; pc < len(code); pc++ {
		in := &code[pc]
		switch in.op {
		case opCopy:
			v := env[in.a]
			if v.Width() != int(in.c) {
				v = v.Resize(int(in.c))
			}
			env[in.dst] = v
		case opCopyNext:
			v := env[in.a]
			if v.Width() != int(in.c) {
				v = v.Resize(int(in.c))
			}
			next[in.dst] = v
		case opSetBit:
			if idx := env[in.a].Uint(); idx < uint64(in.c) {
				env[in.dst] = env[in.dst].SetBit(int(idx), env[in.b].Uint()&1)
			}
		case opSetBitNext:
			if idx := env[in.a].Uint(); idx < uint64(in.c) {
				next[in.dst] = next[in.dst].SetBit(int(idx), env[in.b].Uint()&1)
			}
		case opResize:
			env[in.dst] = env[in.a].Resize(int(in.c))
		case opIndex:
			x := env[in.a]
			if i := env[in.b].Uint(); i < uint64(x.Width()) {
				env[in.dst] = bitvec.New(x.Bit(int(i)), 1)
			} else {
				env[in.dst] = bitvec.Zero(1)
			}
		case opSlice:
			env[in.dst] = env[in.a].Slice(int(in.c), int(in.d))
		case opNot:
			env[in.dst] = env[in.a].Not()
		case opNeg:
			env[in.dst] = env[in.a].Neg()
		case opRedAnd:
			env[in.dst] = env[in.a].ReduceAnd()
		case opRedOr:
			env[in.dst] = env[in.a].ReduceOr()
		case opRedXor:
			env[in.dst] = env[in.a].ReduceXor()
		case opJmp:
			pc = int(in.c) - 1
		case opJz:
			if env[in.a].IsZero() {
				pc = int(in.c) - 1
			}
		case opJeq:
			if env[in.a].Equal(env[in.b]) {
				pc = int(in.c) - 1
			}
		default:
			x, y := env[in.a], env[in.b]
			var v bitvec.BV
			switch hdl.BinOp(in.op - opBinBase) {
			case hdl.OpAnd:
				v = x.And(y)
			case hdl.OpOr:
				v = x.Or(y)
			case hdl.OpXor:
				v = x.Xor(y)
			case hdl.OpNand:
				v = x.Nand(y)
			case hdl.OpNor:
				v = x.Nor(y)
			case hdl.OpXnor:
				v = x.Xnor(y)
			case hdl.OpEq:
				v = x.Eq(y)
			case hdl.OpNe:
				v = x.Ne(y)
			case hdl.OpLt:
				v = x.Lt(y)
			case hdl.OpLe:
				v = x.Le(y)
			case hdl.OpGt:
				v = x.Gt(y)
			case hdl.OpGe:
				v = x.Ge(y)
			case hdl.OpAdd:
				v = x.Add(y)
			case hdl.OpSub:
				v = x.Sub(y)
			case hdl.OpMul:
				v = x.Mul(y)
			case hdl.OpShl:
				v = x.Shl(y)
			case hdl.OpShr:
				v = x.Shr(y)
			case hdl.OpConcat:
				v = x.Concat(y)
			default:
				panic(fmt.Sprintf("sim: bad opcode %d", in.op))
			}
			env[in.dst] = v
		}
	}
}
