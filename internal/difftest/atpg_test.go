package difftest

import (
	"fmt"
	"testing"

	"repro/internal/atpg"
	"repro/internal/engine"
	"repro/internal/faultsim"
	"repro/internal/synth"
)

// atpgConfigs spans the compiled ATPG engine's knob space; each entry is
// compared against the legacy serial reference (Workers 1: three-valued
// interpreter + one-shot drop-sim). Workers > 1 exercises the pooled
// drop-sim schedulers, LaneWords the per-width batch machines, and
// packPairs the lane-pack scheduler: 1 is the single-pair reference
// engine, 4 forces heavy pair turnover (every fourth target re-arms a
// pair), 32 the full pack, 0 the auto setting. The target-index commit
// order makes every width byte-identical — this matrix is the lock on
// that contract.
var atpgConfigs = []engineConfig{
	{workers: 2, laneWords: 1, packPairs: 1},
	{workers: 0, laneWords: 1, packPairs: 4},
	{workers: 2, laneWords: 4, packPairs: 32},
	{workers: 0, laneWords: 8, packPairs: 4},
	{workers: 2, laneWords: 4, packPairs: 1},
	{workers: 0, laneWords: 8, packPairs: 32},
	{workers: 0, laneWords: 0, packPairs: 0}, // production auto setting
}

// assertSameSeqReport compares two sequential ATPG reports field by field,
// including the generated test sets pattern for pattern.
func assertSameSeqReport(t *testing.T, label string, got, want *atpg.SeqReport) {
	t.Helper()
	if got.Detected != want.Detected || got.Untestable != want.Untestable ||
		got.Aborted != want.Aborted || got.Backtracks != want.Backtracks ||
		got.PodemCalls != want.PodemCalls || got.Total != want.Total ||
		got.Frames != want.Frames {
		t.Fatalf("%s: report %+v, reference %+v (tests elided)", label, summarizeSeq(got), summarizeSeq(want))
	}
	if len(got.Tests) != len(want.Tests) {
		t.Fatalf("%s: %d tests, reference %d", label, len(got.Tests), len(want.Tests))
	}
	for ti := range want.Tests {
		if len(got.Tests[ti]) != len(want.Tests[ti]) {
			t.Fatalf("%s: test %d has %d cycles, reference %d", label, ti, len(got.Tests[ti]), len(want.Tests[ti]))
		}
		for cyc := range want.Tests[ti] {
			for pi := range want.Tests[ti][cyc] {
				if got.Tests[ti][cyc][pi] != want.Tests[ti][cyc][pi] {
					t.Fatalf("%s: test %d cycle %d PI %d: %d, reference %d",
						label, ti, cyc, pi, got.Tests[ti][cyc][pi], want.Tests[ti][cyc][pi])
				}
			}
		}
	}
}

func summarizeSeq(r *atpg.SeqReport) string {
	return fmt.Sprintf("{Detected:%d Untestable:%d Aborted:%d Backtracks:%d PodemCalls:%d Total:%d Frames:%d Tests:%d}",
		r.Detected, r.Untestable, r.Aborted, r.Backtracks, r.PodemCalls, r.Total, r.Frames, len(r.Tests))
}

func assertSameReport(t *testing.T, label string, got, want *atpg.Report) {
	t.Helper()
	if got.Detected != want.Detected || got.Redundant != want.Redundant ||
		got.Aborted != want.Aborted || got.Backtracks != want.Backtracks ||
		got.PodemCalls != want.PodemCalls || got.Total != want.Total {
		t.Fatalf("%s: report %+v, reference %+v (vectors elided)",
			label,
			atpg.Report{Detected: got.Detected, Redundant: got.Redundant, Aborted: got.Aborted, Backtracks: got.Backtracks, PodemCalls: got.PodemCalls, Total: got.Total},
			atpg.Report{Detected: want.Detected, Redundant: want.Redundant, Aborted: want.Aborted, Backtracks: want.Backtracks, PodemCalls: want.PodemCalls, Total: want.Total})
	}
	if len(got.Vectors) != len(want.Vectors) {
		t.Fatalf("%s: %d vectors, reference %d", label, len(got.Vectors), len(want.Vectors))
	}
	for vi := range want.Vectors {
		for pi := range want.Vectors[vi] {
			if got.Vectors[vi][pi] != want.Vectors[vi][pi] {
				t.Fatalf("%s: vector %d PI %d: %d, reference %d",
					label, vi, pi, got.Vectors[vi][pi], want.Vectors[vi][pi])
			}
		}
	}
}

// strideFaults subsamples a fault list (keeps runtime bounded on the
// larger random circuits without losing site-kind coverage — collapsed
// lists interleave stem and branch faults across the whole netlist).
func strideFaults(all []faultsim.Fault, stride int) []faultsim.Fault {
	var out []faultsim.Fault
	for i := 0; i < len(all); i += stride {
		out = append(out, all[i])
	}
	return out
}

// fuzzBacktracks keeps the per-target search budget small: random
// XOR-heavy circuits make PODEM abort often, and an abort costs its
// whole budget, so the production default would burn minutes proving
// nothing parity doesn't already prove — the bound is shared by both
// engines, and a small one still exercises the aborted classification.
const fuzzBacktracks = 24

// TestATPGSequentialParity fuzzes the compiled sequential ATPG against
// the legacy path on random sequential circuits × unroll depths × engine
// configurations: identical generated test sets, effort counters and
// coverage, target by target. This is the lock on the compiled port — a
// single diverging implication or drop would shift every later target.
func TestATPGSequentialParity(t *testing.T) {
	for seed := int64(0); seed < 6; seed += 2 { // even seeds: sequential shapes
		c := fuzzCircuit(t, seed)
		nl, err := synth.Synthesize(c)
		if err != nil {
			t.Fatal(err)
		}
		faults := strideFaults(faultsim.Faults(nl), 5)
		for _, frames := range []int{1, 3} {
			ref, err := atpg.GenerateSequential(nl, faults, &atpg.SeqOptions{
				Frames: frames, MaxBacktracks: fuzzBacktracks, FillSeed: seed,
				Options: engine.Options{Workers: 1},
			})
			if err != nil {
				t.Fatalf("seed %d frames %d legacy: %v", seed, frames, err)
			}
			for _, ec := range atpgConfigs {
				label := fmt.Sprintf("seed=%d/frames=%d/%s", seed, frames, ec)
				rep, err := atpg.GenerateSequential(nl, faults, &atpg.SeqOptions{
					Frames: frames, MaxBacktracks: fuzzBacktracks, FillSeed: seed,
					Options: ec.options(),
				})
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				assertSameSeqReport(t, label, rep, ref)
			}
		}
	}
}

// TestATPGCombinationalParity is the combinational counterpart: compiled
// dual-rail PODEM with the incremental drop-sim session vs the legacy
// interpreter with per-fault Evaluator drops, on random combinational
// circuits, including targeted fault subsets.
func TestATPGCombinationalParity(t *testing.T) {
	for seed := int64(1); seed < 8; seed += 2 { // odd seeds: combinational shapes
		c := fuzzCircuit(t, seed)
		nl, err := synth.Synthesize(c)
		if err != nil {
			t.Fatal(err)
		}
		all := faultsim.Faults(nl)
		subsets := [][]faultsim.Fault{strideFaults(all, 3), all[:len(all)/2]}
		for si, faults := range subsets {
			ref, err := atpg.Generate(nl, faults, &atpg.Options{
				MaxBacktracks: fuzzBacktracks, FillSeed: seed,
				Options: engine.Options{Workers: 1},
			})
			if err != nil {
				t.Fatalf("seed %d legacy: %v", seed, err)
			}
			for _, ec := range atpgConfigs {
				label := fmt.Sprintf("seed=%d/subset=%d/%s", seed, si, ec)
				rep, err := atpg.Generate(nl, faults, &atpg.Options{
					MaxBacktracks: fuzzBacktracks, FillSeed: seed,
					Options: ec.options(),
				})
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				assertSameReport(t, label, rep, ref)
			}
		}
	}
}

// TestATPGModelReuseParity pins the compile-once contract: one Model
// running baseline and subset campaigns back to back must produce
// exactly what fresh per-call models produce (the model carries no state
// between runs), for both engines.
func TestATPGModelReuseParity(t *testing.T) {
	c := fuzzCircuit(t, 0)
	nl, err := synth.Synthesize(c)
	if err != nil {
		t.Fatal(err)
	}
	const frames = 4
	model, err := atpg.NewSequentialModel(nl, frames)
	if err != nil {
		t.Fatal(err)
	}
	all := faultsim.Faults(nl)
	for _, workers := range []int{0, 1} {
		// MaxBacktracks capped like the other fuzz legs: the random
		// circuit's abort-heavy targets prove nothing about model reuse.
		opts := &atpg.SeqOptions{Frames: frames, MaxBacktracks: fuzzBacktracks, FillSeed: 9,
			Options: engine.Options{Workers: workers}}
		label := fmt.Sprintf("workers=%d", workers)
		first, err := model.GenerateSequential(all, opts)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := atpg.GenerateSequential(nl, all, opts)
		if err != nil {
			t.Fatal(err)
		}
		assertSameSeqReport(t, label+"/baseline", first, fresh)
		sub := all[:len(all)/3]
		again, err := model.GenerateSequential(sub, opts)
		if err != nil {
			t.Fatal(err)
		}
		freshSub, err := atpg.GenerateSequential(nl, sub, opts)
		if err != nil {
			t.Fatal(err)
		}
		assertSameSeqReport(t, label+"/subset", again, freshSub)
	}
	if _, err := model.GenerateSequential(nil, &atpg.SeqOptions{Frames: frames + 1}); err == nil {
		t.Fatal("depth-mismatched options accepted")
	}
	if _, err := model.Generate(nil, nil); err == nil {
		t.Fatal("combinational Generate accepted on a sequential model")
	}
}
