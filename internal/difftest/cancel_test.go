// Cancellation contract tests: a Ctx cancelled mid-campaign must surface
// context.Canceled promptly from every engine — fault simulation, mutant
// scoring and test generation — and must not leak pool goroutines (CI
// runs this file under -race, which also shakes out unsynchronized
// shutdown paths).
package difftest

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/faultsim"
	"repro/internal/mutation"
	"repro/internal/mutscore"
	"repro/internal/synth"
	"repro/internal/tpg"
)

// checkGoroutines asserts the goroutine count settles back to the
// baseline after a cancelled run; pool workers must always be joined
// before the engines return.
func checkGoroutines(t *testing.T, baseline int) {
	t.Helper()
	for i := 0; i < 50; i++ {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d running, baseline %d", runtime.NumGoroutine(), baseline)
}

// cancelConfigs covers the serial reference engines and a pooled
// compiled setting — cancellation must work on every path, not just the
// worker pool's dispatch loop.
var cancelConfigs = []engineConfig{
	{workers: 1, laneWords: 1}, // serial reference
	{workers: 2, laneWords: 1},
	{workers: 0, laneWords: 0}, // production setting
}

func TestFaultSimCancellation(t *testing.T) {
	for _, seed := range []int64{2, 3} { // sequential and combinational shapes
		c := fuzzCircuit(t, seed)
		nl, err := synth.Synthesize(c)
		if err != nil {
			t.Fatal(err)
		}
		pats := tpg.ToPatterns(c, tpg.RawRandomSequence(c, 2048, seed+50))
		for _, ec := range cancelConfigs {
			t.Run(fmt.Sprintf("seed=%d/%s", seed, ec), func(t *testing.T) {
				baseline := runtime.NumGoroutine()

				// Pre-cancelled: nothing runs, the error is immediate.
				ctx, cancel := context.WithCancel(context.Background())
				cancel()
				opts := ec.options()
				opts.Ctx = ctx
				s, err := faultsim.Config{Options: opts}.New(nl, nil)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := s.Run(pats); !errors.Is(err, context.Canceled) {
					t.Fatalf("pre-cancelled Run returned %v", err)
				}

				// Mid-campaign: the first progress report pulls the plug.
				ctx2, cancel2 := context.WithCancel(context.Background())
				defer cancel2()
				var fired atomic.Bool
				opts = ec.options()
				opts.Ctx = ctx2
				opts.Progress = func(engine.Stats) {
					if fired.CompareAndSwap(false, true) {
						cancel2()
					}
				}
				s2, err := faultsim.Config{Options: opts}.New(nl, nil)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := s2.Run(pats); !errors.Is(err, context.Canceled) {
					t.Fatalf("mid-campaign cancel returned %v", err)
				}
				checkGoroutines(t, baseline)
			})
		}
	}
}

func TestMutScoreCancellation(t *testing.T) {
	c := fuzzCircuit(t, 2)
	ms := mutation.Generate(c)
	if len(ms) == 0 {
		t.Skip("population empty for this circuit")
	}
	seq := tpg.RandomSequence(c, 1024, 7)
	for _, ec := range cancelConfigs {
		t.Run(ec.String(), func(t *testing.T) {
			baseline := runtime.NumGoroutine()

			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			opts := ec.options()
			opts.Ctx = ctx
			if _, err := (mutscore.Config{Options: opts}).Kills(c, ms, seq); !errors.Is(err, context.Canceled) {
				t.Fatalf("pre-cancelled Kills returned %v", err)
			}

			ctx2, cancel2 := context.WithCancel(context.Background())
			defer cancel2()
			var fired atomic.Bool
			opts = ec.options()
			opts.Ctx = ctx2
			opts.Progress = func(engine.Stats) {
				if fired.CompareAndSwap(false, true) {
					cancel2()
				}
			}
			_, err := (mutscore.Config{Options: opts}).EstimateEquivalence(c, ms, nil,
				&mutscore.EquivalenceOptions{Budget: 2048, Seed: 3})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("mid-campaign EstimateEquivalence returned %v", err)
			}
			checkGoroutines(t, baseline)
		})
	}
}

func TestTPGCancellation(t *testing.T) {
	c := fuzzCircuit(t, 2)
	ms := mutation.Generate(c)
	if len(ms) == 0 {
		t.Skip("population empty for this circuit")
	}
	baseline := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := &tpg.Options{Seed: 5}
	opts.Ctx = ctx
	if _, err := tpg.MutationTests(c, ms, opts); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled MutationTests returned %v", err)
	}

	// Mid-campaign: cancel after the first target completes; the next
	// round's poll must stop the run.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	var fired atomic.Bool
	opts2 := &tpg.Options{Seed: 5}
	opts2.Ctx = ctx2
	opts2.Progress = func(engine.Stats) {
		if fired.CompareAndSwap(false, true) {
			cancel2()
		}
	}
	s, err := tpg.NewSession(c, ms, opts2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Generate(nil, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-campaign Generate returned %v", err)
	}
	checkGoroutines(t, baseline)
}
