package difftest

import (
	"fmt"
	"testing"

	"repro/internal/circuits"
	"repro/internal/core"
	"repro/internal/faultsim"
	"repro/internal/mutation"
	"repro/internal/synth"
	"repro/internal/tpg"
)

// These tests replay the same flow several times in one process and
// byte-compare the reports. One-shot parity pins cannot catch
// nondeterminism whose source is per-process randomization — Go's map
// iteration order being the canonical one: every engine in a single run
// sees the same (randomized) order, so cross-engine comparisons agree
// while run-to-run results differ. That is exactly how the seq top-off
// flake (PR 8) escaped the difftest matrix: the harness never ran the
// same flow twice in-process. Now it does.

const replays = 3

// replayCheck runs the flow `replays` times and fails on the first
// byte-level report difference.
func replayCheck(t *testing.T, label string, flow func() (string, error)) {
	t.Helper()
	var ref string
	for r := 0; r < replays; r++ {
		rep, err := flow()
		if err != nil {
			t.Fatalf("%s: replay %d: %v", label, r, err)
		}
		if r == 0 {
			ref = rep
			continue
		}
		if rep != ref {
			t.Fatalf("%s: replay %d diverged from replay 0:\n--- replay 0\n%s\n--- replay %d\n%s",
				label, r, ref, r, rep)
		}
	}
}

// TestRepeatedFaultSimDeterminism replays fault simulation (fresh
// session each time) on random circuits across the engine matrix.
func TestRepeatedFaultSimDeterminism(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			c := fuzzCircuit(t, seed)
			nl, err := synth.Synthesize(c)
			if err != nil {
				t.Fatal(err)
			}
			pats := tpg.ToPatterns(c, tpg.RawRandomSequence(c, 64, seed+2500))
			for _, ec := range engineConfigs {
				replayCheck(t, ec.String(), func() (string, error) {
					s, err := faultsim.Config{Options: ec.options()}.New(nl, nil)
					if err != nil {
						return "", err
					}
					res, err := s.Run(pats)
					if err != nil {
						return "", err
					}
					return fmt.Sprint(res.FirstDetected), nil
				})
			}
		})
	}
}

// TestRepeatedGenerateDeterminism replays the mutation-TG campaign —
// synthesis included, since gate numbering feeds every downstream order.
func TestRepeatedGenerateDeterminism(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			c := fuzzCircuit(t, seed)
			replayCheck(t, "mutationtests", func() (string, error) {
				ms := mutation.Generate(c)
				if len(ms) == 0 {
					return "", nil
				}
				if len(ms) > 24 {
					ms = ms[:24]
				}
				res, err := tpg.MutationTests(c, ms, &tpg.Options{Seed: 23, MaxLen: 96})
				if err != nil {
					return "", err
				}
				return fmt.Sprint(res.Seq, res.Killed, res.Segments), nil
			})
		})
	}
}

// TestRepeatedSeqTopoffDeterminism is the regression guard for the PR-8
// flake itself: Flow.SequentialATPGTopoff on b01 replayed in-process,
// full formatted report byte-compared, at both worker settings. Before
// the synthesis-ordering fix this diverged about one run in four.
func TestRepeatedSeqTopoffDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second end-to-end flow")
	}
	// Compiled engines only (Workers: 0). The legacy Workers:1 path is
	// ~16x slower here and adds nothing in-process: parity pins already
	// hold legacy ≡ compiled on every run, so compiled replay stability
	// transfers to it, and scripts/detsmoke.sh replays the full CLI
	// repro at both worker settings across fresh processes.
	replayCheck(t, "seqtopoff/b01", func() (string, error) {
		// Smaller budgets than the CLI repro (scripts/detsmoke.sh
		// runs that one) — the bug class this guards, per-process
		// iteration order leaking into the flow, does not depend
		// on the search depth.
		cfg := core.Config{Seed: 1, SampleFrac: 0.10, RandHorizon: 128, EquivBudget: 32, Repeats: 1}
		flow, err := core.NewFlow(circuits.MustLoad("b01"), cfg)
		if err != nil {
			return "", err
		}
		r, err := flow.SequentialATPGTopoff(3)
		if err != nil {
			return "", err
		}
		return core.FormatSeqTopoff([]*core.SeqTopoffResult{r}), nil
	})
}
