// Package difftest is the cross-engine differential fuzz harness: random
// behavioral circuits (randcirc) × random stimuli, asserting that every
// engine configuration — the serial reference engines, and the compiled
// engines at every lane width × several worker counts — produces
// identical FirstDetected (fault simulation) and FirstKill (mutant
// scoring) profiles. CI runs this under -race, so the harness also
// shakes out data races in the batch schedulers.
//
// The package-level parity tests in faultsim and mutscore pin the engines
// on the paper's benchmark circuits; this harness covers the circuit
// space those benchmarks don't: generated corner cases with odd widths,
// degenerate blocks, and whatever else randcirc mutates into existence.
package difftest

import (
	"fmt"
	"testing"

	"repro/internal/engine"
	"repro/internal/faultsim"
	"repro/internal/hdl"
	"repro/internal/mutation"
	"repro/internal/mutscore"
	"repro/internal/randcirc"
	"repro/internal/synth"
	"repro/internal/tpg"
)

// engineConfigs spans the serial reference (Workers 1) and the compiled
// engines at {W=1, W=4, W=8, auto} × worker counts. Both Config types
// share the same knob shape, so one table drives both harnesses.
type engineConfig struct {
	workers   int
	laneWords int
	packPairs int // ATPG pack width (only the test generator reads it)
}

var engineConfigs = []engineConfig{
	{workers: 1, laneWords: 1}, // serial reference (LaneWords ignored)
	{workers: 2, laneWords: 1},
	{workers: 0, laneWords: 1},
	{workers: 2, laneWords: 4},
	{workers: 3, laneWords: 4},
	{workers: 0, laneWords: 4},
	{workers: 2, laneWords: 8},
	{workers: 0, laneWords: 8},
	{workers: 0, laneWords: 0}, // production auto setting
}

// options projects the table entry onto the shared engine surface.
func (e engineConfig) options() engine.Options {
	return engine.Options{Workers: e.workers, LaneWords: e.laneWords, PackPairs: e.packPairs}
}

func (e engineConfig) String() string {
	return fmt.Sprintf("workers=%d/lanewords=%d/packpairs=%d", e.workers, e.laneWords, e.packPairs)
}

// fuzzCircuit generates one deterministic random circuit. Sequential and
// combinational shapes alternate by seed so both fault-sim schedulers are
// fuzzed.
func fuzzCircuit(t *testing.T, seed int64) *hdl.Circuit {
	t.Helper()
	cfg := randcirc.Config{
		Seed:       seed,
		Inputs:     2 + int(seed%3),
		Outputs:    2,
		Wires:      3,
		ExtraStmts: 5,
	}
	if seed%2 == 1 {
		cfg.Regs = -1 // combinational
	} else {
		cfg.Regs = 3
	}
	c, err := randcirc.Generate(cfg)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	return c
}

// TestFaultSimProfiles fuzzes the fault simulator: every engine
// configuration must reproduce the serial reference's FirstDetected
// profile exactly, on random circuits × random gate-level test sets.
func TestFaultSimProfiles(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			c := fuzzCircuit(t, seed)
			nl, err := synth.Synthesize(c)
			if err != nil {
				t.Fatal(err)
			}
			pats := tpg.ToPatterns(c, tpg.RawRandomSequence(c, 96, seed+500))
			var ref *faultsim.Result
			var refCfg engineConfig
			for _, ec := range engineConfigs {
				s, err := faultsim.Config{Options: ec.options()}.New(nl, nil)
				if err != nil {
					t.Fatalf("%s: %v", ec, err)
				}
				res, err := s.Run(pats)
				if err != nil {
					t.Fatalf("%s: %v", ec, err)
				}
				if ref == nil {
					ref, refCfg = res, ec
					continue
				}
				for i := range ref.FirstDetected {
					if res.FirstDetected[i] != ref.FirstDetected[i] {
						t.Errorf("%s: fault %d (%s) first detected at %d, %s says %d",
							ec, i, s.Faults()[i].Desc, res.FirstDetected[i], refCfg, ref.FirstDetected[i])
					}
				}
				if t.Failed() {
					t.FailNow()
				}
			}
		})
	}
}

// TestFirstKillProfiles fuzzes mutant scoring: every engine configuration
// must reproduce the serial interpreter's FirstKillCycles profile
// exactly, on random circuits × random behavioral sequences.
func TestFirstKillProfiles(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			c := fuzzCircuit(t, seed)
			ms := mutation.Generate(c)
			if len(ms) == 0 {
				t.Skip("population empty for this circuit")
			}
			seq := tpg.RandomSequence(c, 80, seed+900)
			var ref []int
			var refCfg engineConfig
			for _, ec := range engineConfigs {
				cycles, err := mutscore.Config{Options: ec.options()}.
					FirstKillCycles(c, ms, seq)
				if err != nil {
					t.Fatalf("%s: %v", ec, err)
				}
				if ref == nil {
					ref, refCfg = cycles, ec
					continue
				}
				for i := range ref {
					if cycles[i] != ref[i] {
						t.Errorf("%s: mutant %d (%s) first-kill %d, %s says %d",
							ec, i, ms[i].Desc, cycles[i], refCfg, ref[i])
					}
				}
				if t.Failed() {
					t.FailNow()
				}
			}
		})
	}
}

// TestCrossSubstrateCoverage is the harness's end-to-end anchor: for a
// sequential random circuit, the behavioral sequence that kills mutants
// must fault-simulate identically through every engine configuration all
// the way to the coverage curve (the quantity the paper's tables are
// built from).
func TestCrossSubstrateCoverage(t *testing.T) {
	c := fuzzCircuit(t, 2) // sequential shape
	nl, err := synth.Synthesize(c)
	if err != nil {
		t.Fatal(err)
	}
	seq := tpg.RandomSequence(c, 64, 7)
	pats := tpg.ToPatterns(c, seq)
	var refCurve []float64
	for _, ec := range engineConfigs {
		s, err := faultsim.Config{Options: ec.options()}.New(nl, nil)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(pats)
		if err != nil {
			t.Fatal(err)
		}
		curve := res.Curve()
		if refCurve == nil {
			refCurve = curve
			continue
		}
		for k := range refCurve {
			if curve[k] != refCurve[k] {
				t.Fatalf("%s: coverage after %d cycles %.6f, reference %.6f",
					ec, k+1, curve[k], refCurve[k])
			}
		}
	}
}
