package difftest

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/faultsim"
	"repro/internal/mutation"
	"repro/internal/synth"
	"repro/internal/tpg"
)

// chunkLens carves total cycles into random Append chunk lengths,
// deliberately mixing empty and 1-cycle chunks in with larger ones.
func chunkLens(total int, rng *rand.Rand) []int {
	var out []int
	left := total
	for left > 0 {
		var n int
		switch rng.Intn(5) {
		case 0:
			n = 0
		case 1:
			n = 1
		default:
			n = 1 + rng.Intn(left)
		}
		out = append(out, n)
		left -= n
	}
	return append(out, 0) // trailing empty Append
}

// TestIncrementalAppendParity fuzzes the session contract across the
// whole engine matrix: for random circuits × random stimuli × random
// split points (empty and 1-cycle chunks included), the final Append
// result must be bit-identical to the one-shot Run of the whole set, at
// every lane width and worker count — and each intermediate result must
// equal a one-shot Run of its prefix.
func TestIncrementalAppendParity(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			c := fuzzCircuit(t, seed)
			nl, err := synth.Synthesize(c)
			if err != nil {
				t.Fatal(err)
			}
			pats := tpg.ToPatterns(c, tpg.RawRandomSequence(c, 90, seed+1700))
			rng := rand.New(rand.NewSource(seed + 31))
			lens := chunkLens(len(pats), rng)
			// One randomly chosen intermediate boundary gets the full
			// prefix-equality check (checking all of them at every config
			// would square the test's cost for no extra coverage).
			checkAt := rng.Intn(len(lens))
			for _, ec := range engineConfigs {
				oneshot, err := faultsim.Config{Options: ec.options()}.New(nl, nil)
				if err != nil {
					t.Fatalf("%s: %v", ec, err)
				}
				want, err := oneshot.Run(pats)
				if err != nil {
					t.Fatalf("%s: %v", ec, err)
				}
				inc, err := faultsim.Config{Options: ec.options()}.New(nl, nil)
				if err != nil {
					t.Fatalf("%s: %v", ec, err)
				}
				var got *faultsim.Result
				lo := 0
				for k, n := range lens {
					if got, err = inc.Append(pats[lo : lo+n]); err != nil {
						t.Fatalf("%s: Append: %v", ec, err)
					}
					lo += n
					if k == checkAt {
						prefix, err := oneshot.Run(pats[:lo])
						if err != nil {
							t.Fatalf("%s: %v", ec, err)
						}
						for i := range prefix.FirstDetected {
							if got.FirstDetected[i] != prefix.FirstDetected[i] {
								t.Fatalf("%s: after %d cycles fault %d detected at %d, prefix run says %d",
									ec, lo, i, got.FirstDetected[i], prefix.FirstDetected[i])
							}
						}
					}
				}
				if got.Patterns != want.Patterns {
					t.Fatalf("%s: applied %d, one-shot %d", ec, got.Patterns, want.Patterns)
				}
				for i := range want.FirstDetected {
					if got.FirstDetected[i] != want.FirstDetected[i] {
						t.Errorf("%s: fault %d detected at %d via Append, one-shot %d",
							ec, i, got.FirstDetected[i], want.FirstDetected[i])
					}
				}
				if t.Failed() {
					t.FailNow()
				}
				// Second campaign on the same session: Reset recycles the
				// armed machines, stimulus buffers and the result view
				// instead of allocating fresh ones, and the replay must
				// stay bit-identical to the first pass.
				inc.Reset()
				lo = 0
				for _, n := range lens {
					if got, err = inc.Append(pats[lo : lo+n]); err != nil {
						t.Fatalf("%s: recycled Append: %v", ec, err)
					}
					lo += n
				}
				for i := range want.FirstDetected {
					if got.FirstDetected[i] != want.FirstDetected[i] {
						t.Errorf("%s: fault %d detected at %d on the recycled session, want %d",
							ec, i, got.FirstDetected[i], want.FirstDetected[i])
					}
				}
				if t.Failed() {
					t.FailNow()
				}
				// Same chunked campaign with mid-campaign re-planning
				// pinned off: the scheduler's lane compaction (see
				// faultsim.Config.StaticPlan) must be invisible in the
				// results at every engine setting and chunking.
				stat, err := faultsim.Config{StaticPlan: true, Options: ec.options()}.New(nl, nil)
				if err != nil {
					t.Fatalf("%s: %v", ec, err)
				}
				lo = 0
				for _, n := range lens {
					if got, err = stat.Append(pats[lo : lo+n]); err != nil {
						t.Fatalf("%s: StaticPlan Append: %v", ec, err)
					}
					lo += n
				}
				for i := range want.FirstDetected {
					if got.FirstDetected[i] != want.FirstDetected[i] {
						t.Errorf("%s: fault %d detected at %d under StaticPlan, want %d",
							ec, i, got.FirstDetected[i], want.FirstDetected[i])
					}
				}
				if t.Failed() {
					t.FailNow()
				}
			}
		})
	}
}

// TestSessionGenerateAcrossEngines pins the second acceptance surface:
// tpg.Session (and so MutationTests, which is built on it) produces the
// same sequence, kill flags and rounds at every Workers/LaneWords
// setting, with the attached incremental fault simulator agreeing with a
// one-shot simulation of the final sequence.
func TestSessionGenerateAcrossEngines(t *testing.T) {
	c := fuzzCircuit(t, 2) // sequential shape
	ms := mutation.Generate(c)
	if len(ms) == 0 {
		t.Skip("population empty for this circuit")
	}
	if len(ms) > 24 {
		ms = ms[:24] // enough targets to accept several segments cheaply
	}
	nl, err := synth.Synthesize(c)
	if err != nil {
		t.Fatal(err)
	}
	var refSeq []int // per-cycle hash stand-in: sequence lengths + kills
	var refKilled []bool
	var refCov float64
	for _, ec := range engineConfigs {
		opts := &tpg.Options{Seed: 23, MaxLen: 96}
		opts.Options = ec.options()
		fs, err := faultsim.Config{Options: ec.options()}.New(nl, nil)
		if err != nil {
			t.Fatal(err)
		}
		s, err := tpg.NewSession(c, ms, opts)
		if err != nil {
			t.Fatal(err)
		}
		s.AttachFaultSim(fs)
		res, err := s.Generate(nil, nil)
		if err != nil {
			t.Fatalf("%s: %v", ec, err)
		}
		lens := []int{len(res.Seq), res.Rounds, len(res.Segments)}
		if refSeq == nil {
			refSeq, refKilled, refCov = lens, res.Killed, res.FaultSim.Coverage()
			continue
		}
		for i := range lens {
			if lens[i] != refSeq[i] {
				t.Fatalf("%s: shape %v, reference %v", ec, lens, refSeq)
			}
		}
		for i := range refKilled {
			if res.Killed[i] != refKilled[i] {
				t.Errorf("%s: kill flag %d = %v, reference %v", ec, i, res.Killed[i], refKilled[i])
			}
		}
		if cov := res.FaultSim.Coverage(); cov != refCov {
			t.Errorf("%s: incremental coverage %v, reference %v", ec, cov, refCov)
		}
	}
}
