package difftest

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"repro/internal/campaign"
	"repro/internal/engine"
	"repro/internal/netlist"
	"repro/internal/synth"
)

// benchSource renders a fuzz circuit's synthesized netlist as .bench
// text — the inline-netlist form campaign specs carry over the wire.
func benchSource(t *testing.T, seed int64) string {
	t.Helper()
	nl, err := synth.Synthesize(fuzzCircuit(t, seed))
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	var buf bytes.Buffer
	if err := netlist.WriteBench(&buf, nl); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestCampaignCachedVsFresh fuzzes the campaign cache-soundness
// invariant: the report a cache would serve (computed once, under one
// engine configuration) must equal a fresh computation under every
// other configuration and window choice, byte for byte — on random
// circuits, where one divergent scheduler path would split the cache.
func TestCampaignCachedVsFresh(t *testing.T) {
	cache, err := campaign.NewCache(0, "")
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 6; seed++ {
		for _, kind := range []campaign.Kind{campaign.FaultSim, campaign.ATPG} {
			if kind == campaign.ATPG && seed%2 == 0 {
				// Sequential ATPG time-frame expansion on random circuits is
				// too slow for a fuzz matrix; the combinational seeds cover
				// the campaign adapter, the atpg parity suites cover the rest.
				continue
			}
			sp := campaign.Spec{Kind: kind, Bench: benchSource(t, seed), Seed: seed}
			if kind == campaign.FaultSim {
				sp.Horizon = 60
			} else {
				sp.MaxBacktracks = 64
			}
			key, err := campaign.JobKey(sp)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, kind, err)
			}
			configs := engineConfigs
			if kind == campaign.ATPG {
				// The serial reference, one mid-shape, and the production
				// setting; the full matrix is faultsim's job.
				configs = []engineConfig{engineConfigs[0], engineConfigs[3], engineConfigs[8]}
			}
			for _, ec := range configs {
				for _, win := range []int{0, 13} {
					if kind != campaign.FaultSim && win != 0 {
						continue
					}
					run := sp
					run.Window = win
					rep, err := campaign.Execute(run, &campaign.ExecConfig{Options: ec.options()})
					if err != nil {
						t.Fatalf("seed %d %s %s: %v", seed, kind, ec, err)
					}
					fresh, err := rep.Encode()
					if err != nil {
						t.Fatal(err)
					}
					cached := cache.Get(key)
					if cached == nil {
						if err := cache.Put(key, fresh); err != nil {
							t.Fatal(err)
						}
						continue
					}
					if !bytes.Equal(cached, fresh) {
						t.Errorf("seed %d %s %s win=%d: fresh report diverges from cached\nfresh:  %s\ncached: %s",
							seed, kind, ec, win, fresh, cached)
					}
				}
			}
		}
	}
}

// TestCampaignKillResume fuzzes checkpoint/resume on random sequential
// circuits: a windowed campaign killed after k windows (cancellation
// raised from the progress hook, like a dying worker) must resume from
// its checkpoint to the byte-identical final report — under a different
// engine configuration than the one that died.
func TestCampaignKillResume(t *testing.T) {
	for seed := int64(2); seed <= 6; seed += 2 { // even seeds are sequential
		sp := campaign.Spec{
			Kind:    campaign.FaultSim,
			Bench:   benchSource(t, seed),
			Seed:    seed,
			Horizon: 70,
			Window:  10,
		}
		want, err := campaign.Execute(sp, nil)
		if err != nil {
			t.Fatal(err)
		}
		wantBytes, err := want.Encode()
		if err != nil {
			t.Fatal(err)
		}
		for ki, killAfter := range []int{1, 2, 5} {
			label := fmt.Sprintf("seed %d killAfter=%d", seed, killAfter)
			store, err := campaign.NewCheckpointStore(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			windows := 0
			cfg := &campaign.ExecConfig{Checkpoints: store}
			cfg.Ctx = ctx
			cfg.Workers = 2
			cfg.Progress = func(engine.Stats) {
				if windows++; windows >= killAfter {
					cancel()
				}
			}
			if _, err := campaign.Execute(sp, cfg); err == nil {
				t.Fatalf("%s: interrupted run reported no error", label)
			}
			cancel()

			resumed := &campaign.ExecConfig{Checkpoints: store}
			resumed.Options = engineConfigs[ki%len(engineConfigs)].options()
			rep, err := campaign.Execute(sp, resumed)
			if err != nil {
				t.Fatalf("%s: resume: %v", label, err)
			}
			got, err := rep.Encode()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, wantBytes) {
				t.Errorf("%s: resumed report differs\n got: %s\nwant: %s", label, got, wantBytes)
			}
		}
	}
}
