package atpg

import (
	"testing"

	"repro/internal/faultsim"
	"repro/internal/netlist"
)

// buildToggle returns q' = q XOR en with q observed.
func buildToggle(t *testing.T) *netlist.Netlist {
	t.Helper()
	n := netlist.New("toggle")
	en := n.AddInput("en")
	q := n.AddDFF("q", 0)
	d := n.AddGate(netlist.Xor, q, en)
	n.SetDFFInput(q, d)
	n.MarkOutput(q, "qo")
	return n
}

// buildShift2 returns a 2-stage shift register.
func buildShift2(t *testing.T) *netlist.Netlist {
	t.Helper()
	n := netlist.New("shift2")
	d := n.AddInput("d")
	f1 := n.AddDFF("f1", 0)
	f2 := n.AddDFF("f2", 0)
	b := n.AddGate(netlist.Buf, d)
	n.SetDFFInput(f1, b)
	mid := n.AddGate(netlist.Not, f1)
	n.SetDFFInput(f2, mid)
	n.MarkOutput(f2, "q")
	return n
}

func TestUnrollShape(t *testing.T) {
	nl := buildToggle(t)
	u, m, err := netlist.Unroll(nl, 4)
	if err != nil {
		t.Fatal(err)
	}
	if u.IsSequential() {
		t.Fatal("unrolled netlist has flip-flops")
	}
	if len(u.PIs) != 4*len(nl.PIs) {
		t.Errorf("PIs = %d, want %d", len(u.PIs), 4*len(nl.PIs))
	}
	if len(u.POs) != 4*len(nl.POs) {
		t.Errorf("POs = %d, want %d", len(u.POs), 4*len(nl.POs))
	}
	if m.Frames != 4 || m.PIsPerFrame != 1 {
		t.Errorf("map = %+v", m)
	}
}

// TestUnrollMatchesSequentialSim drives the same stimulus through the
// sequential evaluator and the unrolled combinational one.
func TestUnrollMatchesSequentialSim(t *testing.T) {
	for _, build := range []func(*testing.T) *netlist.Netlist{buildToggle, buildShift2} {
		nl := build(t)
		const frames = 5
		u, m, err := netlist.Unroll(nl, frames)
		if err != nil {
			t.Fatal(err)
		}
		seqEval, err := netlist.NewEvaluator(nl)
		if err != nil {
			t.Fatal(err)
		}
		combEval, err := netlist.NewEvaluator(u)
		if err != nil {
			t.Fatal(err)
		}
		// Stimulus: lane-0 bit pattern per cycle per PI.
		stim := [][]uint64{{1}, {0}, {1}, {1}, {0}}
		var want [][]uint64
		seqEval.Reset()
		for _, in := range stim {
			out, err := seqEval.Eval(in)
			if err != nil {
				t.Fatal(err)
			}
			cp := make([]uint64, len(out))
			for i := range out {
				cp[i] = out[i] & 1
			}
			want = append(want, cp)
			seqEval.Clock()
		}
		flat := make([]uint64, 0, frames*m.PIsPerFrame)
		for _, in := range stim {
			for _, v := range in {
				flat = append(flat, v&1)
			}
		}
		got, err := combEval.Eval(flat)
		if err != nil {
			t.Fatal(err)
		}
		nPOs := len(nl.POs)
		for f := 0; f < frames; f++ {
			for p := 0; p < nPOs; p++ {
				if got[f*nPOs+p]&1 != want[f][p] {
					t.Fatalf("%s frame %d PO %d: unrolled %d sequential %d",
						nl.Name, f, p, got[f*nPOs+p]&1, want[f][p])
				}
			}
		}
	}
}

func TestGenerateSequentialToggle(t *testing.T) {
	nl := buildToggle(t)
	rep, err := GenerateSequential(nl, nil, &SeqOptions{Frames: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Detected == 0 {
		t.Fatal("no faults detected")
	}
	if rep.Coverage() < 0.8 {
		t.Errorf("toggle coverage %.2f; want high", rep.Coverage())
	}
	// Verify the reported coverage by independent simulation.
	cov, err := RunTestSet(nl, faultsim.Faults(nl), rep.Tests)
	if err != nil {
		t.Fatal(err)
	}
	if cov < rep.Coverage() {
		t.Errorf("replayed coverage %.2f < reported %.2f", cov, rep.Coverage())
	}
}

func TestGenerateSequentialShift2NeedsFrames(t *testing.T) {
	nl := buildShift2(t)
	// One frame cannot propagate input faults through two flops.
	shallow, err := GenerateSequential(nl, nil, &SeqOptions{Frames: 1})
	if err != nil {
		t.Fatal(err)
	}
	deep, err := GenerateSequential(nl, nil, &SeqOptions{Frames: 4})
	if err != nil {
		t.Fatal(err)
	}
	if deep.Coverage() <= shallow.Coverage() {
		t.Errorf("deeper horizon did not help: %.2f vs %.2f",
			deep.Coverage(), shallow.Coverage())
	}
	if deep.Coverage() < 0.9 {
		t.Errorf("4-frame coverage %.2f on a depth-2 pipeline", deep.Coverage())
	}
}

func TestGenerateSequentialRejectsCombinational(t *testing.T) {
	nl := buildMux(t)
	if _, err := GenerateSequential(nl, nil, nil); err == nil {
		t.Fatal("combinational netlist accepted")
	}
}

func TestSitesInFramesDFFPins(t *testing.T) {
	nl := buildToggle(t)
	_, m, err := netlist.Unroll(nl, 3)
	if err != nil {
		t.Fatal(err)
	}
	var q int
	for _, g := range nl.Gates {
		if g.Type == netlist.DFF {
			q = g.ID
		}
	}
	// D-pin fault skips frame 0 (constant state has no D pin).
	pinSites := m.SitesInFrames(nl, netlist.FaultSite{Gate: q, Pin: 0, Stuck: 1})
	if len(pinSites) != 2 {
		t.Errorf("D-pin fault maps to %d sites, want 2", len(pinSites))
	}
	// Output fault appears in every frame.
	outSites := m.SitesInFrames(nl, netlist.FaultSite{Gate: q, Pin: -1, Stuck: 1})
	if len(outSites) != 3 {
		t.Errorf("output fault maps to %d sites, want 3", len(outSites))
	}
}

func TestUnrollRejectsZeroFrames(t *testing.T) {
	if _, _, err := netlist.Unroll(buildToggle(t), 0); err == nil {
		t.Fatal("0 frames accepted")
	}
}
