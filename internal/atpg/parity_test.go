package atpg

import (
	"reflect"
	"testing"

	"repro/internal/circuits"
	"repro/internal/engine"
	"repro/internal/faultsim"
	"repro/internal/synth"
)

// packWidths is the pack-scheduler matrix every parity anchor runs: the
// single-pair reference, a narrow pack that forces heavy pair turnover,
// and the full-capacity auto setting. Detection order is defined by
// target index, so every width must reproduce the legacy reports
// byte for byte.
var packWidths = []int{1, 4, 0}

// TestGenerateParityBenchmarks pins the compiled combinational engine to
// the legacy path on the paper's benchmark circuits at every pack width:
// identical vectors and effort counters. The difftest fuzz covers the
// random-circuit space; this is the named-circuit anchor.
func TestGenerateParityBenchmarks(t *testing.T) {
	for _, tc := range []struct {
		name       string
		backtracks int // 0 = default; capped where aborts dominate runtime
	}{
		{"c17", 0}, {"c432", 128}, {"c499", 48},
	} {
		t.Run(tc.name, func(t *testing.T) {
			nl, err := synth.Synthesize(circuits.MustLoad(tc.name))
			if err != nil {
				t.Fatal(err)
			}
			legacy, err := Generate(nl, nil, &Options{MaxBacktracks: tc.backtracks,
				FillSeed: 7, Options: engine.Options{Workers: 1}})
			if err != nil {
				t.Fatal(err)
			}
			for _, pairs := range packWidths {
				compiled, err := Generate(nl, nil, &Options{MaxBacktracks: tc.backtracks, FillSeed: 7,
					Options: engine.Options{PackPairs: pairs}})
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(compiled, legacy) {
					t.Fatalf("packpairs=%d disagrees with legacy:\ncompiled %+v\nlegacy   %+v",
						pairs, compiled, legacy)
				}
			}
		})
	}
}

// TestGenerateSequentialParityBenchmarks is the sequential anchor: the
// compiled dual-rail engine with the incremental reset-per-test drop-sim
// session must reproduce the legacy interpreter with one-shot drops on
// every sequential benchmark circuit, test set and all.
func TestGenerateSequentialParityBenchmarks(t *testing.T) {
	for _, tc := range []struct {
		name       string
		frames     int
		backtracks int // 0 = default; capped where aborts dominate runtime
	}{
		{"b01", 6, 48}, {"b02", 6, 0}, {"b03", 4, 48},
		{"b04", 3, 32}, {"b06", 4, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			nl, err := synth.Synthesize(circuits.MustLoad(tc.name))
			if err != nil {
				t.Fatal(err)
			}
			opts := func(workers, pairs int) *SeqOptions {
				return &SeqOptions{Frames: tc.frames, MaxBacktracks: tc.backtracks,
					FillSeed: 3, Options: engine.Options{Workers: workers, PackPairs: pairs}}
			}
			legacy, err := GenerateSequential(nl, nil, opts(1, 0))
			if err != nil {
				t.Fatal(err)
			}
			var compiled *SeqReport
			for _, pairs := range packWidths {
				compiled, err = GenerateSequential(nl, nil, opts(0, pairs))
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(compiled, legacy) {
					t.Fatalf("packpairs=%d disagrees with legacy:\ncompiled %+v\nlegacy   %+v",
						pairs, compiled, legacy)
				}
			}
			// The reported coverage must replay: simulate the generated
			// test set independently.
			cov, err := RunTestSet(nl, faultsim.Faults(nl), compiled.Tests)
			if err != nil {
				t.Fatal(err)
			}
			if cov < compiled.Coverage() {
				t.Errorf("replayed coverage %.3f < reported %.3f", cov, compiled.Coverage())
			}
		})
	}
}
