package atpg

import (
	"fmt"
	"math/rand"

	"repro/internal/engine"
	"repro/internal/faultsim"
	"repro/internal/netlist"
)

// Model is the reusable ATPG evaluation model for one circuit: the PODEM
// search structures (levelization, fanout, SCOAP) over the model netlist
// — the circuit itself for combinational sources, its time-frame
// expansion for sequential ones — plus, built on first compiled use, the
// dual-rail twin program the compiled engine evaluates. Compiling is per
// (netlist, unroll depth), so callers that run several campaigns against
// one circuit (the top-off experiments run baseline and top-off back to
// back) build one Model and share everything but the per-call state.
// A Model is not safe for concurrent use.
type Model struct {
	nl     *netlist.Netlist // source circuit
	um     *netlist.UnrollMap
	frames int // 0 for combinational models
	eng    *search
	comp   *twin     // lazily built: TriExpand + Compile of the model netlist
	packed []*cursor // pack-scheduler cursors, grown to PackPairs on first use
}

// dropSimConfig projects the ATPG engine options onto the drop-sim
// session: Workers/LaneWords/Ctx forward, but the progress hook does not
// — ATPG reports resolved targets on it, and interleaving the inner
// simulator's batch counts would make one hook carry two incompatible
// (Done, Total) streams.
func dropSimConfig(o engine.Options) faultsim.Config {
	o.Progress = nil
	return faultsim.Config{Options: o}
}

// resolvePackPairs validates the PackPairs knob: 0 selects the full
// 32-pair capacity of the W=1 dual-rail machine, 1 the single-pair
// reference engine, and 2..32 an explicit pack width. Values beyond the
// lane capacity are rejected — a pair is two lanes of one 64-lane word.
func resolvePackPairs(p int) (int, error) {
	switch {
	case p == 0:
		return packMaxPairs, nil
	case p >= 1 && p <= packMaxPairs:
		return p, nil
	}
	return 0, fmt.Errorf("atpg: unsupported PackPairs %d (want 0 (auto) or 1..%d)", p, packMaxPairs)
}

// NewModel builds the ATPG model of a combinational netlist.
func NewModel(nl *netlist.Netlist) (*Model, error) {
	if nl.IsSequential() {
		return nil, fmt.Errorf("atpg: sequential netlist %s not supported by the combinational model (use NewSequentialModel)", nl.Name)
	}
	eng, err := newSearch(nl)
	if err != nil {
		return nil, err
	}
	return &Model{nl: nl, eng: eng}, nil
}

// NewSequentialModel builds the ATPG model of a sequential netlist at the
// given time-frame expansion depth (8 frames when frames <= 0, matching
// SeqOptions).
func NewSequentialModel(nl *netlist.Netlist, frames int) (*Model, error) {
	if !nl.IsSequential() {
		return nil, fmt.Errorf("atpg: %s is combinational; use Generate (NewModel)", nl.Name)
	}
	if frames <= 0 {
		frames = 8
	}
	unrolled, um, err := netlist.Unroll(nl, frames)
	if err != nil {
		return nil, err
	}
	eng, err := newSearch(unrolled)
	if err != nil {
		return nil, err
	}
	return &Model{nl: nl, um: um, frames: frames, eng: eng}, nil
}

// Frames returns the model's unroll depth (0 for combinational models).
func (m *Model) Frames() int { return m.frames }

// compiled returns the dual-rail compiled backend, building it on first
// use so legacy-only runs never pay for the twin compilation.
func (m *Model) compiled() (*twin, error) {
	if m.comp == nil {
		tw, err := newTwin(m.eng.nl)
		if err != nil {
			return nil, err
		}
		m.comp = tw
	}
	return m.comp, nil
}

// packCursors returns at least pairs search cursors, allocated on first
// use and reused across campaigns on the same model.
func (m *Model) packCursors(pairs int) []*cursor {
	for len(m.packed) < pairs {
		m.packed = append(m.packed, newCursor(m.eng.nl))
	}
	return m.packed[:pairs]
}

// Generate runs combinational PODEM with fault dropping over the model's
// circuit; see the package function Generate. The fault list defaults to
// all collapsed faults when nil.
func (m *Model) Generate(faults []faultsim.Fault, opts *Options) (*Report, error) {
	if m.frames != 0 {
		return nil, fmt.Errorf("atpg: %s is a sequential model; use GenerateSequential", m.nl.Name)
	}
	o := opts.withDefaults()
	if faults == nil {
		faults = faultsim.Faults(m.nl)
	}
	if o.Serial() {
		return m.generateLegacy(faults, o)
	}
	pairs, err := resolvePackPairs(o.PackPairs)
	if err != nil {
		return nil, err
	}
	if pairs == 1 {
		return m.generateCompiled(faults, o)
	}
	return m.generatePacked(faults, o, pairs)
}

// --- pack scheduler ----------------------------------------------------------

// packResult buffers one search's outcome between its completion and the
// moment the commit pointer reaches its target. Searches are pure
// functions of (netlist, sites, MaxBacktracks) — they read nothing from
// the drop-sim session — so a speculatively completed result is exactly
// what the sequential schedule would have computed, and buffering it
// until its index-ordered turn preserves the engines' byte-identity.
type packResult struct {
	done       bool
	noSearch   bool // resolved without a search (sequential out-of-horizon targets)
	status     podemStatus
	backtracks int
	cube       []tri // detected targets only: a copy of the final PI cube
}

// packSlot binds one lane pair to its in-flight search.
type packSlot struct {
	target int
	cur    *cursor
	active bool
}

// packHorizonFactor bounds speculation: the scheduler never arms a
// target more than packHorizonFactor × pairs indices ahead of the commit
// pointer, which caps both the buffered-result memory and the searches
// wasted when an earlier target's committed test drops a speculated one.
const packHorizonFactor = 4

// packRun drives up to pairs concurrent PODEM searches over n targets in
// lockstep rounds: every round broadcasts one dual-rail machine pass,
// decodes each active pair's planes, and advances each search by one
// decision. When a pair's search terminates its result is buffered and
// the pair immediately re-arms the next pending target (work stealing —
// searches backtrack at very different depths, so pairs turn over
// independently). Commits happen strictly in target-index order through
// the commit callback, which owns the drop-sim handoff and marks dropped
// targets dead in alive; the scheduler then cancels any in-flight search
// whose target died and skips dead targets at both arm and commit time —
// exactly the targets the sequential schedule never searches. sitesOf
// returning an empty site list resolves the target without a search.
func (m *Model) packRun(
	tw *twin,
	n, pairs, maxBacktracks int,
	o engine.Options,
	alive []bool,
	sitesOf func(t int) []netlist.FaultSite,
	commit func(t int, r *packResult) error,
) error {
	cursors := m.packCursors(pairs)
	slots := make([]packSlot, pairs)
	for k := range slots {
		slots[k].cur = cursors[k]
	}
	results := make([]packResult, n)
	horizon := pairs * packHorizonFactor
	next, commitAt, active := 0, 0, 0
	for commitAt < n {
		// Re-arm free pairs from the shared target queue, up to the
		// speculation horizon.
		for k := range slots {
			if slots[k].active {
				continue
			}
			for next < n && next < commitAt+horizon {
				t := next
				next++
				if !alive[t] || results[t].done {
					continue
				}
				sites := sitesOf(t)
				if len(sites) == 0 {
					results[t].done = true
					results[t].noSearch = true
					continue
				}
				slots[k].target = t
				slots[k].active = true
				slots[k].cur.arm(m.eng.nl, sites)
				tw.armPair(k, sites)
				active++
				break
			}
		}
		if err := o.Cancelled(); err != nil {
			return fmt.Errorf("atpg: %w", err)
		}
		if active > 0 {
			// One broadcast implication pass serves every active search.
			for k := range slots {
				if slots[k].active {
					tw.gather(slots[k].cur.assign, k)
				}
			}
			tw.m.Eval(tw.pis)
			for k := range slots {
				if !slots[k].active {
					continue
				}
				tw.decode(slots[k].cur, k)
				done, status := m.eng.step(slots[k].cur, maxBacktracks)
				if !done {
					continue
				}
				t := slots[k].target
				r := &results[t]
				r.done = true
				r.status = status
				r.backtracks = slots[k].cur.backtracks
				if status == statusDetected {
					r.cube = append(r.cube[:0], slots[k].cur.assign...)
				}
				slots[k].active = false
				active--
				tw.clearPair(k)
			}
		}
		// Drain every committable target: detection order is defined by
		// target index, not completion time.
		for commitAt < n {
			t := commitAt
			if !alive[t] {
				commitAt++
				continue
			}
			if !results[t].done {
				break
			}
			if err := commit(t, &results[t]); err != nil {
				return err
			}
			commitAt++
			// The committed test may have dropped speculated targets:
			// cancel their searches so the pairs re-arm live work.
			for k := range slots {
				if slots[k].active && !alive[slots[k].target] {
					slots[k].active = false
					active--
					tw.clearPair(k)
				}
			}
		}
	}
	return nil
}

// generatePacked is the packed combinational path: up to pairs PODEM
// searches share every dual-rail machine pass, and the commit callback
// replays generateCompiled's per-target bookkeeping — same counters, same
// random fill draws, same drop-sim session calls, in the same target
// order — so the report and test set are byte-identical to the
// single-pair engine and the legacy interpreter.
func (m *Model) generatePacked(faults []faultsim.Fault, o Options, pairs int) (*Report, error) {
	tw, err := m.compiled()
	if err != nil {
		return nil, err
	}
	tw.m.ClearFaults()
	sess, err := dropSimConfig(o.Options).New(m.nl, faults)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(o.FillSeed))
	rep := &Report{Total: len(faults)}
	alive := make([]bool, len(faults))
	for i := range alive {
		alive[i] = true
	}
	resolved := 0
	sitesOf := func(t int) []netlist.FaultSite {
		return []netlist.FaultSite{faults[t].Site}
	}
	commit := func(t int, r *packResult) error {
		rep.PodemCalls++
		rep.Backtracks += r.backtracks
		if r.status != statusDetected {
			if r.status == statusRedundant {
				rep.Redundant++
			} else {
				rep.Aborted++
			}
			alive[t] = false
			resolved++
			if err := sess.Retire(t); err != nil {
				return err
			}
			o.Report(resolved, len(faults))
			return nil
		}
		pat := fillCube(r.cube, rng)
		rep.Vectors = append(rep.Vectors, pat)
		res, err := sess.Append([]faultsim.Pattern{pat})
		if err != nil {
			return err
		}
		for fj := range faults {
			if alive[fj] && res.FirstDetected[fj] >= 0 {
				alive[fj] = false
				rep.Detected++
				resolved++
			}
		}
		o.Report(resolved, len(faults))
		return nil
	}
	if err := m.packRun(tw, len(faults), pairs, o.MaxBacktracks, o.Options, alive, sitesOf, commit); err != nil {
		return nil, err
	}
	return rep, nil
}

// generateCompiled is the single-pair compiled combinational path
// (PackPairs == 1, the packed engine's differential reference): PODEM
// planes on the compiled twin, fault dropping through an incremental
// fault-sim session that appends each generated vector and prunes its
// frontier, so every later vector simulates only still-undetected
// targets. Targets the search resolves without a vector retire their
// session lane.
func (m *Model) generateCompiled(faults []faultsim.Fault, o Options) (*Report, error) {
	tw, err := m.compiled()
	if err != nil {
		return nil, err
	}
	sim := &compiledSim{e: m.eng, t: tw}
	sess, err := dropSimConfig(o.Options).New(m.nl, faults)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(o.FillSeed))
	rep := &Report{Total: len(faults)}
	alive := make([]bool, len(faults))
	for i := range alive {
		alive[i] = true
	}
	resolved := 0
	for fi := range faults {
		if !alive[fi] {
			continue
		}
		if err := o.Cancelled(); err != nil {
			return nil, fmt.Errorf("atpg: %w", err)
		}
		rep.PodemCalls++
		cube, backtracks, status := m.eng.podem(sim, []netlist.FaultSite{faults[fi].Site}, o.MaxBacktracks)
		rep.Backtracks += backtracks
		if status != statusDetected {
			if status == statusRedundant {
				rep.Redundant++
			} else {
				rep.Aborted++
			}
			alive[fi] = false
			resolved++
			if err := sess.Retire(fi); err != nil {
				return nil, err
			}
			o.Report(resolved, len(faults))
			continue
		}
		pat := fillCube(cube, rng)
		rep.Vectors = append(rep.Vectors, pat)
		res, err := sess.Append([]faultsim.Pattern{pat})
		if err != nil {
			return nil, err
		}
		for fj := range faults {
			if alive[fj] && res.FirstDetected[fj] >= 0 {
				alive[fj] = false
				rep.Detected++
				resolved++
			}
		}
		o.Report(resolved, len(faults))
	}
	return rep, nil
}

// generateLegacy is the serial reference combinational path: interpreter
// planes and a one-shot single-pattern drop simulation per vector on a
// shared Evaluator pair, exactly the pre-compiled shape.
func (m *Model) generateLegacy(faults []faultsim.Fault, o Options) (*Report, error) {
	rng := rand.New(rand.NewSource(o.FillSeed))
	rep := &Report{Total: len(faults)}
	alive := make([]bool, len(faults))
	for i := range alive {
		alive[i] = true
	}
	dropEval, err := netlist.NewEvaluator(m.nl)
	if err != nil {
		return nil, err
	}
	goodEval, err := netlist.NewEvaluator(m.nl)
	if err != nil {
		return nil, err
	}
	sim := interpSim{m.eng}
	resolved := 0
	for fi := range faults {
		if !alive[fi] {
			continue
		}
		if err := o.Cancelled(); err != nil {
			return nil, fmt.Errorf("atpg: %w", err)
		}
		rep.PodemCalls++
		cube, backtracks, status := m.eng.podem(sim, []netlist.FaultSite{faults[fi].Site}, o.MaxBacktracks)
		rep.Backtracks += backtracks
		switch status {
		case statusRedundant:
			rep.Redundant++
			alive[fi] = false
			resolved++
			o.Report(resolved, len(faults))
			continue
		case statusAborted:
			rep.Aborted++
			alive[fi] = false
			resolved++
			o.Report(resolved, len(faults))
			continue
		}
		// Fill don't-cares randomly and drop everything the vector catches.
		pat := fillCube(cube, rng)
		rep.Vectors = append(rep.Vectors, pat)
		words := make([]uint64, len(m.nl.PIs))
		for i, v := range pat {
			if v != 0 {
				words[i] = ^uint64(0)
			}
		}
		goodOut, err := goodEval.Eval(words)
		if err != nil {
			return nil, err
		}
		goodCopy := append([]uint64(nil), goodOut...)
		for fj := range faults {
			if !alive[fj] {
				continue
			}
			badOut := dropEval.EvalWith(words, faults[fj].Site, ^uint64(0))
			for po := range badOut {
				if badOut[po] != goodCopy[po] {
					alive[fj] = false
					rep.Detected++
					resolved++
					break
				}
			}
		}
		o.Report(resolved, len(faults))
	}
	return rep, nil
}
