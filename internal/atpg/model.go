package atpg

import (
	"fmt"
	"math/rand"

	"repro/internal/engine"
	"repro/internal/faultsim"
	"repro/internal/netlist"
)

// Model is the reusable ATPG evaluation model for one circuit: the PODEM
// search structures (levelization, fanout, SCOAP) over the model netlist
// — the circuit itself for combinational sources, its time-frame
// expansion for sequential ones — plus, built on first compiled use, the
// dual-rail twin program the compiled engine evaluates. Compiling is per
// (netlist, unroll depth), so callers that run several campaigns against
// one circuit (the top-off experiments run baseline and top-off back to
// back) build one Model and share everything but the per-call state.
// A Model is not safe for concurrent use.
type Model struct {
	nl     *netlist.Netlist // source circuit
	um     *netlist.UnrollMap
	frames int // 0 for combinational models
	eng    *search
	comp   *compiledSim // lazily built: TriExpand + Compile of the model netlist
}

// dropSimConfig projects the ATPG engine options onto the drop-sim
// session: Workers/LaneWords/Ctx forward, but the progress hook does not
// — ATPG reports resolved targets on it, and interleaving the inner
// simulator's batch counts would make one hook carry two incompatible
// (Done, Total) streams.
func dropSimConfig(o engine.Options) faultsim.Config {
	o.Progress = nil
	return faultsim.Config{Options: o}
}

// NewModel builds the ATPG model of a combinational netlist.
func NewModel(nl *netlist.Netlist) (*Model, error) {
	if nl.IsSequential() {
		return nil, fmt.Errorf("atpg: sequential netlist %s not supported by the combinational model (use NewSequentialModel)", nl.Name)
	}
	eng, err := newSearch(nl)
	if err != nil {
		return nil, err
	}
	return &Model{nl: nl, eng: eng}, nil
}

// NewSequentialModel builds the ATPG model of a sequential netlist at the
// given time-frame expansion depth (8 frames when frames <= 0, matching
// SeqOptions).
func NewSequentialModel(nl *netlist.Netlist, frames int) (*Model, error) {
	if !nl.IsSequential() {
		return nil, fmt.Errorf("atpg: %s is combinational; use Generate (NewModel)", nl.Name)
	}
	if frames <= 0 {
		frames = 8
	}
	unrolled, um, err := netlist.Unroll(nl, frames)
	if err != nil {
		return nil, err
	}
	eng, err := newSearch(unrolled)
	if err != nil {
		return nil, err
	}
	return &Model{nl: nl, um: um, frames: frames, eng: eng}, nil
}

// Frames returns the model's unroll depth (0 for combinational models).
func (m *Model) Frames() int { return m.frames }

// compiled returns the dual-rail compiled backend, building it on first
// use so legacy-only runs never pay for the twin compilation.
func (m *Model) compiled() (*compiledSim, error) {
	if m.comp == nil {
		cs, err := newCompiledSim(m.eng)
		if err != nil {
			return nil, err
		}
		m.comp = cs
	}
	return m.comp, nil
}

// Generate runs combinational PODEM with fault dropping over the model's
// circuit; see the package function Generate. The fault list defaults to
// all collapsed faults when nil.
func (m *Model) Generate(faults []faultsim.Fault, opts *Options) (*Report, error) {
	if m.frames != 0 {
		return nil, fmt.Errorf("atpg: %s is a sequential model; use GenerateSequential", m.nl.Name)
	}
	o := opts.withDefaults()
	if faults == nil {
		faults = faultsim.Faults(m.nl)
	}
	if o.Serial() {
		return m.generateLegacy(faults, o)
	}
	return m.generateCompiled(faults, o)
}

// generateCompiled is the production combinational path: PODEM planes on
// the compiled twin, fault dropping through an incremental fault-sim
// session that appends each generated vector and prunes its frontier, so
// every later vector simulates only still-undetected targets. Targets the
// search resolves without a vector retire their session lane.
func (m *Model) generateCompiled(faults []faultsim.Fault, o Options) (*Report, error) {
	sim, err := m.compiled()
	if err != nil {
		return nil, err
	}
	sess, err := dropSimConfig(o.Options).New(m.nl, faults)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(o.FillSeed))
	rep := &Report{Total: len(faults)}
	alive := make([]bool, len(faults))
	for i := range alive {
		alive[i] = true
	}
	resolved := 0
	for fi := range faults {
		if !alive[fi] {
			continue
		}
		if err := o.Cancelled(); err != nil {
			return nil, fmt.Errorf("atpg: %w", err)
		}
		rep.PodemCalls++
		cube, backtracks, status := m.eng.podem(sim, []netlist.FaultSite{faults[fi].Site}, o.MaxBacktracks)
		rep.Backtracks += backtracks
		if status != statusDetected {
			if status == statusRedundant {
				rep.Redundant++
			} else {
				rep.Aborted++
			}
			alive[fi] = false
			resolved++
			if err := sess.Retire(fi); err != nil {
				return nil, err
			}
			o.Report(resolved, len(faults))
			continue
		}
		pat := fillCube(cube, rng)
		rep.Vectors = append(rep.Vectors, pat)
		res, err := sess.Append([]faultsim.Pattern{pat})
		if err != nil {
			return nil, err
		}
		for fj := range faults {
			if alive[fj] && res.FirstDetected[fj] >= 0 {
				alive[fj] = false
				rep.Detected++
				resolved++
			}
		}
		o.Report(resolved, len(faults))
	}
	return rep, nil
}

// generateLegacy is the serial reference combinational path: interpreter
// planes and a one-shot single-pattern drop simulation per vector on a
// shared Evaluator pair, exactly the pre-compiled shape.
func (m *Model) generateLegacy(faults []faultsim.Fault, o Options) (*Report, error) {
	rng := rand.New(rand.NewSource(o.FillSeed))
	rep := &Report{Total: len(faults)}
	alive := make([]bool, len(faults))
	for i := range alive {
		alive[i] = true
	}
	dropEval, err := netlist.NewEvaluator(m.nl)
	if err != nil {
		return nil, err
	}
	goodEval, err := netlist.NewEvaluator(m.nl)
	if err != nil {
		return nil, err
	}
	sim := interpSim{m.eng}
	resolved := 0
	for fi := range faults {
		if !alive[fi] {
			continue
		}
		if err := o.Cancelled(); err != nil {
			return nil, fmt.Errorf("atpg: %w", err)
		}
		rep.PodemCalls++
		cube, backtracks, status := m.eng.podem(sim, []netlist.FaultSite{faults[fi].Site}, o.MaxBacktracks)
		rep.Backtracks += backtracks
		switch status {
		case statusRedundant:
			rep.Redundant++
			alive[fi] = false
			resolved++
			o.Report(resolved, len(faults))
			continue
		case statusAborted:
			rep.Aborted++
			alive[fi] = false
			resolved++
			o.Report(resolved, len(faults))
			continue
		}
		// Fill don't-cares randomly and drop everything the vector catches.
		pat := fillCube(cube, rng)
		rep.Vectors = append(rep.Vectors, pat)
		words := make([]uint64, len(m.nl.PIs))
		for i, v := range pat {
			if v != 0 {
				words[i] = ^uint64(0)
			}
		}
		goodOut, err := goodEval.Eval(words)
		if err != nil {
			return nil, err
		}
		goodCopy := append([]uint64(nil), goodOut...)
		for fj := range faults {
			if !alive[fj] {
				continue
			}
			badOut := dropEval.EvalWith(words, faults[fj].Site, ^uint64(0))
			for po := range badOut {
				if badOut[po] != goodCopy[po] {
					alive[fj] = false
					rep.Detected++
					resolved++
					break
				}
			}
		}
		o.Report(resolved, len(faults))
	}
	return rep, nil
}
