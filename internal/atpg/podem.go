// Package atpg implements deterministic test pattern generation for
// combinational and (via time-frame expansion) sequential netlists using
// the PODEM algorithm (Goel 1981): PI-only decisions, objective/backtrace
// guidance and bounded backtracking, on a two-plane (good machine / faulty
// machine) three-valued simulation.
//
// The concrete-value simulation behind PODEM's implication step runs on
// either of two engines, selected like everywhere else in this repository
// by the shared engine.Options surface: Workers == 1 keeps the legacy
// serial path — a per-gate three-valued interpreter over the model
// netlist, plus one-shot per-fault drop simulation — as the differential
// reference, and every other setting evaluates both planes in one pass of
// a compiled dual-rail machine (netlist.TriExpand + netlist.Compile; good
// plane in lane 0, faulty plane in lane 1) and drives an incremental
// faultsim.Simulator session for fault dropping between targets. The
// decision logic (objective, backtrace, backtracking) stays three-valued
// and engine-independent, so both engines generate identical test sets —
// internal/difftest fuzzes that pin.
//
// The paper's motivation is that mutation-derived validation data can be
// applied as a free pre-test before ATPG, reducing deterministic
// test-generation effort; this package provides the ATPG whose effort is
// measured (experiment E3, see internal/core).
package atpg

import (
	"math/rand"

	"repro/internal/engine"
	"repro/internal/faultsim"
	"repro/internal/netlist"
	"repro/internal/scoap"
)

// tri is a three-valued logic level.
type tri uint8

const (
	lo tri = iota
	hi
	xx
)

func (t tri) String() string { return [...]string{"0", "1", "X"}[t] }

// Options tunes the ATPG run.
type Options struct {
	// MaxBacktracks bounds the PODEM search per fault; a fault whose search
	// exceeds it is classified aborted. Default 4096.
	MaxBacktracks int
	// FillSeed seeds the random fill of don't-care PI positions.
	FillSeed int64
	// Options is the shared engine surface (see the package comment):
	// Workers == 1 selects the legacy serial reference — the three-valued
	// interpreter plus one-shot drop simulation — and every other setting
	// runs the compiled dual-rail engine with an incremental drop-sim
	// session, forwarding Workers/LaneWords to it. Results are identical
	// for every setting.
	engine.Options
}

func (o *Options) withDefaults() Options {
	out := Options{MaxBacktracks: 4096}
	if o != nil {
		if o.MaxBacktracks > 0 {
			out.MaxBacktracks = o.MaxBacktracks
		}
		out.FillSeed = o.FillSeed
		out.Options = o.Options
	}
	return out
}

// Report summarizes an ATPG run. Backtracks and PodemCalls are the
// "effort" measures the top-off experiment compares.
type Report struct {
	Vectors    []faultsim.Pattern // generated tests, in generation order
	Detected   int                // faults detected (by PODEM tests incl. drops)
	Redundant  int                // proven undetectable
	Aborted    int                // backtrack limit exceeded
	Backtracks int                // total backtracks over all PODEM calls
	PodemCalls int
	Total      int // faults targeted
}

// Coverage returns Detected / Total (0 when no faults were targeted).
func (r *Report) Coverage() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Detected) / float64(r.Total)
}

// Generate runs PODEM over every fault in faults (all collapsed faults of
// nl when nil), with fault dropping: each generated vector is fault
// simulated against the remaining targets. Sequential netlists are
// rejected; use GenerateSequential (or extract the combinational core).
// It compiles a fresh model per call; use NewModel when several runs
// share a circuit.
func Generate(nl *netlist.Netlist, faults []faultsim.Fault, opts *Options) (*Report, error) {
	m, err := NewModel(nl)
	if err != nil {
		return nil, err
	}
	return m.Generate(faults, opts)
}

// fillCube turns a three-valued PI cube into a concrete pattern, filling
// don't-care positions from rng (one draw per X, in PI order — part of
// the engines' determinism pin).
func fillCube(cube []tri, rng *rand.Rand) faultsim.Pattern {
	pat := make(faultsim.Pattern, len(cube))
	for i, v := range cube {
		switch v {
		case lo:
			pat[i] = 0
		case hi:
			pat[i] = 1
		default:
			pat[i] = uint8(rng.Intn(2))
		}
	}
	return pat
}

// --- PODEM search engine -----------------------------------------------------

type podemStatus int

const (
	statusDetected podemStatus = iota
	statusRedundant
	statusAborted
)

// planeSim is the concrete-value simulation backend PODEM runs on: arm
// installs a target's fault sites for the coming search, and imply
// forward-simulates both planes for the current PI assignment, leaving
// three-valued results in the engine's gv (good) and fv (faulty) arrays.
// Implementations must agree bit for bit — the search takes every
// decision by reading those arrays.
type planeSim interface {
	arm(sites []netlist.FaultSite)
	imply(assign []tri)
}

// cursor is the mutable state of one PODEM search: the two value planes
// the active planeSim fills, the armed target's sites, and the decision
// scratch. The serial paths run one cursor owned by the search; the pack
// scheduler runs one cursor per lane pair, all sharing the structural
// search core, so concurrent searches backtrack independently.
type cursor struct {
	gv []tri // good-plane values per gate
	fv []tri // faulty-plane values per gate
	// sites and siteAt describe the armed target: the current fault's
	// sites, indexed by gate for imply/objective.
	sites  []netlist.FaultSite
	siteAt map[int]netlist.FaultSite
	// assign and stack are the cursor-owned decision scratch, recycled
	// across targets (one cube and one decision stack per cursor, not
	// per target).
	assign []tri
	stack  []decision
	// backtracks counts this search's backtracks so far (the pack
	// scheduler carries it across lockstep rounds; serial podem resets
	// it per call).
	backtracks int
}

// newCursor allocates a search cursor sized for the model netlist.
func newCursor(nl *netlist.Netlist) *cursor {
	return &cursor{
		gv:     make([]tri, len(nl.Gates)),
		fv:     make([]tri, len(nl.Gates)),
		siteAt: make(map[int]netlist.FaultSite),
	}
}

// arm points the cursor at a new target: sites installed and indexed,
// every PI back to X, decision stack emptied, backtrack count zeroed.
//
//repro:hotpath
func (c *cursor) arm(nl *netlist.Netlist, sites []netlist.FaultSite) {
	c.sites = sites
	for id := range c.siteAt {
		delete(c.siteAt, id)
	}
	for _, st := range sites {
		c.siteAt[st.Gate] = st
	}
	assign := engine.Grow(c.assign, len(nl.PIs))
	c.assign = assign
	for i := range assign {
		assign[i] = xx
	}
	c.stack = c.stack[:0]
	c.backtracks = 0
}

// search holds the structural PODEM search core over the model netlist
// (the circuit itself, or its time-frame expansion): levels, fanout and
// SCOAP controllabilities guiding every cursor that runs on it, plus the
// serial paths' own cursor.
type search struct {
	nl    *netlist.Netlist
	order []int // combinational evaluation order
	piIdx map[int]int
	fan   [][]int // fanout gate IDs per gate (for X-path checks)
	level []int
	// cc holds SCOAP controllabilities guiding the backtrace.
	cc *scoap.Measures
	// cur is the serial engines' single search cursor.
	cur *cursor
}

func newSearch(nl *netlist.Netlist) (*search, error) {
	order, err := nl.Levelize()
	if err != nil {
		return nil, err
	}
	e := &search{
		nl:    nl,
		order: order,
		piIdx: make(map[int]int),
		fan:   make([][]int, len(nl.Gates)),
		level: make([]int, len(nl.Gates)),
		cur:   newCursor(nl),
	}
	for i, id := range nl.PIs {
		e.piIdx[id] = i
	}
	for _, g := range nl.Gates {
		for _, f := range g.Fanin {
			e.fan[f] = append(e.fan[f], g.ID)
		}
	}
	// Approximate controllability by level for backtrace tie-breaking.
	for _, id := range order {
		g := nl.Gates[id]
		lvl := 0
		for _, f := range g.Fanin {
			if e.level[f]+1 > lvl {
				lvl = e.level[f] + 1
			}
		}
		e.level[id] = lvl
	}
	cc, err := scoap.Analyze(nl)
	if err != nil {
		return nil, err
	}
	e.cc = cc
	return e, nil
}

type decision struct {
	pi      int // PI gate ID
	value   tri
	flipped bool
}

// podem searches for a test cube for a fault occupying one or more sites
// (a single site for combinational ATPG; one copy per time frame for the
// unrolled sequential flow), running its implications on sim. It returns
// the PI cube (tri per PI, in PI order), the number of backtracks, and
// the outcome. The cube is search-owned scratch, valid until the next
// podem call — the callers concretize it (fillCube/sliceTest) before
// targeting the next fault.
func (e *search) podem(sim planeSim, sites []netlist.FaultSite, maxBacktracks int) ([]tri, int, podemStatus) {
	c := e.cur
	c.arm(e.nl, sites)
	sim.arm(sites)
	for {
		sim.imply(c.assign)
		if done, status := e.step(c, maxBacktracks); done {
			if status == statusDetected {
				return c.assign, c.backtracks, status
			}
			return nil, c.backtracks, status
		}
	}
}

// step advances one search by a single decision after an implication
// pass: check detection, extend the assignment towards the next
// objective, or backtrack. It returns done=true with the terminal status
// when the search ends; otherwise the cursor's assignment changed and the
// caller owes it another implication pass. The pack scheduler interleaves
// many cursors by broadcasting one machine pass per round and stepping
// each survivor; the serial podem loop above is the degenerate
// single-cursor schedule — both run this exact decision procedure, which
// is why packing cannot change any per-target outcome.
func (e *search) step(c *cursor, maxBacktracks int) (bool, podemStatus) {
	if e.detected(c) {
		return true, statusDetected
	}
	objGate, objVal, ok := e.objective(c)
	if ok {
		pi, v := e.backtrace(c, objGate, objVal)
		if pi >= 0 {
			c.stack = append(c.stack, decision{pi: pi, value: v})
			c.assign[e.piIdx[pi]] = v
			return false, 0
		}
	}
	// Dead end: flip the most recent unflipped decision.
	for len(c.stack) > 0 {
		top := &c.stack[len(c.stack)-1]
		if !top.flipped {
			c.backtracks++
			if c.backtracks > maxBacktracks {
				return true, statusAborted
			}
			top.flipped = true
			top.value ^= 1 // lo <-> hi
			c.assign[e.piIdx[top.pi]] = top.value
			return false, 0
		}
		c.assign[e.piIdx[top.pi]] = xx
		c.stack = c.stack[:len(c.stack)-1]
	}
	return true, statusRedundant
}

// interpSim is the legacy serial reference backend: a per-gate
// three-valued interpreter over the model netlist, with the armed fault
// injected into the faulty plane at every site. Kept (behind Workers ==
// 1) as the differential baseline for the compiled dual-rail engine.
type interpSim struct{ e *search }

func (s interpSim) arm([]netlist.FaultSite) {}

// imply forward-simulates both planes in three-valued logic. At most one
// site may occupy a given gate (guaranteed by construction: one copy per
// frame).
func (s interpSim) imply(assign []tri) {
	e := s.e
	c := e.cur
	nl := e.nl
	for id := range nl.Gates {
		c.gv[id] = xx
		c.fv[id] = xx
	}
	for i, id := range nl.PIs {
		c.gv[id] = assign[i]
		c.fv[id] = assign[i]
	}
	for _, g := range nl.Gates {
		switch g.Type {
		case netlist.Const0:
			c.gv[g.ID], c.fv[g.ID] = lo, lo
		case netlist.Const1:
			c.gv[g.ID], c.fv[g.ID] = hi, hi
		}
	}
	// Output faults on PIs or constants apply before gate evaluation.
	for _, st := range c.sites {
		if st.Pin < 0 && !nl.Gates[st.Gate].Type.IsComb() {
			c.fv[st.Gate] = tri(st.Stuck)
		}
	}
	for _, id := range e.order {
		g := nl.Gates[id]
		c.gv[id] = evalTri(g, c.gv, -1, xx)
		fpin, fval := -1, xx
		if st, ok := c.siteAt[id]; ok && st.Pin >= 0 {
			fpin, fval = st.Pin, tri(st.Stuck)
		}
		c.fv[id] = evalTri(g, c.fv, fpin, fval)
		if st, ok := c.siteAt[id]; ok && st.Pin < 0 {
			c.fv[id] = tri(st.Stuck)
		}
	}
}

// evalTri computes a gate's three-valued output on one plane, optionally
// overriding input pin fpin with fval.
func evalTri(g *netlist.Gate, vals []tri, fpin int, fval tri) tri {
	in := func(j int) tri {
		if j == fpin {
			return fval
		}
		return vals[g.Fanin[j]]
	}
	switch g.Type {
	case netlist.Buf:
		return in(0)
	case netlist.Not:
		return notTri(in(0))
	case netlist.And, netlist.Nand:
		v := hi
		for j := range g.Fanin {
			switch in(j) {
			case lo:
				v = lo
			case xx:
				if v != lo {
					v = xx
				}
			}
		}
		if g.Type == netlist.Nand {
			return notTri(v)
		}
		return v
	case netlist.Or, netlist.Nor:
		v := lo
		for j := range g.Fanin {
			switch in(j) {
			case hi:
				v = hi
			case xx:
				if v != hi {
					v = xx
				}
			}
		}
		if g.Type == netlist.Nor {
			return notTri(v)
		}
		return v
	case netlist.Xor, netlist.Xnor:
		v := lo
		for j := range g.Fanin {
			iv := in(j)
			if iv == xx {
				return xx
			}
			v ^= iv
		}
		if g.Type == netlist.Xnor {
			return notTri(v)
		}
		return v
	}
	return vals[g.ID] // PI / const / DFF keep preset values
}

func notTri(t tri) tri {
	switch t {
	case lo:
		return hi
	case hi:
		return lo
	}
	return xx
}

// detected reports whether any PO shows a definite good/faulty difference.
func (e *search) detected(c *cursor) bool {
	for _, id := range e.nl.POs {
		g, f := c.gv[id], c.fv[id]
		if g != xx && f != xx && g != f {
			return true
		}
	}
	return false
}

// objective returns the next (net, value) goal: activate the fault at
// some site whose good value is still X, otherwise advance the
// D-frontier. For branch faults the D lives on the faulted gate's pin
// (the driver net itself is healthy), so the pin's effective faulty value
// is the stuck value, not the driver's.
func (e *search) objective(c *cursor) (int, tri, bool) {
	anyActivated := false
	var pendingNet = -1
	var pendingVal tri
	for _, site := range c.sites {
		siteNet := site.Gate
		if site.Pin >= 0 {
			siteNet = e.nl.Gates[site.Gate].Fanin[site.Pin]
		}
		switch c.gv[siteNet] {
		case xx:
			if pendingNet < 0 {
				pendingNet, pendingVal = siteNet, notTri(tri(site.Stuck))
			}
		case tri(site.Stuck):
			// unactivatable at this site under the current assignment
		default:
			anyActivated = true
		}
	}
	if !anyActivated {
		if pendingNet >= 0 {
			return pendingNet, pendingVal, true
		}
		return 0, xx, false // no site can activate under this assignment
	}
	// Some site is activated; find a D-frontier gate: output X with a D
	// input (accounting for injected pin values at fault sites).
	for _, id := range e.order {
		g := e.nl.Gates[id]
		if c.gv[id] != xx && c.fv[id] != xx {
			continue
		}
		hasD := false
		for j, f := range g.Fanin {
			gvf, fvf := c.gv[f], c.fv[f]
			if st, ok := c.siteAt[id]; ok && j == st.Pin {
				fvf = tri(st.Stuck)
			}
			if gvf != xx && fvf != xx && gvf != fvf {
				hasD = true
				break
			}
		}
		if !hasD {
			continue
		}
		// Set one X input to the gate's non-controlling value.
		for _, f := range g.Fanin {
			if c.gv[f] == xx {
				return f, nonControlling(g.Type), true
			}
		}
	}
	// When the frontier is stuck but a site could still activate, try it.
	if pendingNet >= 0 {
		return pendingNet, pendingVal, true
	}
	return 0, xx, false
}

func nonControlling(t netlist.GateType) tri {
	switch t {
	case netlist.And, netlist.Nand:
		return hi
	case netlist.Or, netlist.Nor:
		return lo
	default: // XOR-family and inverters have no controlling value; 0 works
		return lo
	}
}

// backtrace maps an objective to a PI assignment by walking X-valued nets
// backwards, flipping the goal through inverting gates. It returns -1 when
// the objective is unreachable (no X input anywhere on the way).
func (e *search) backtrace(c *cursor, gate int, val tri) (int, tri) {
	id, v := gate, val
	for {
		g := e.nl.Gates[id]
		if g.Type == netlist.PI {
			return id, v
		}
		switch g.Type {
		case netlist.Not, netlist.Nand, netlist.Nor:
			v = notTri(v)
		}
		// Choose an X input by SCOAP controllability: the cheapest when
		// the goal is the gate's controlling value (any one input will
		// do — take the easiest), the costliest when every input must be
		// justified (resolve the hardest first so conflicts surface
		// early).
		next := -1
		wantControlling := isControllingGoal(g.Type, v)
		bestCost := -1
		for _, f := range g.Fanin {
			if c.gv[f] != xx {
				continue
			}
			cost := e.cc.CC1[f]
			if v == lo {
				cost = e.cc.CC0[f]
			}
			if cost >= scoap.Inf {
				cost = scoap.Inf - 1 - e.level[f] // prefer shallower among unreachables
			}
			if next == -1 ||
				(wantControlling && cost < bestCost) ||
				(!wantControlling && cost > bestCost) {
				next, bestCost = f, cost
			}
		}
		if next < 0 {
			return -1, xx
		}
		id = next
	}
}

// isControllingGoal reports whether the goal value v at the *input* side
// of gate type t is that gate's controlling value (after the inversion
// adjustment done by backtrace).
func isControllingGoal(t netlist.GateType, v tri) bool {
	switch t {
	case netlist.And, netlist.Nand:
		return v == lo
	case netlist.Or, netlist.Nor:
		return v == hi
	}
	return false
}
