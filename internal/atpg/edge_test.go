package atpg

import (
	"context"
	"errors"
	"testing"

	"repro/internal/engine"
	"repro/internal/faultsim"
)

// Edge cases for RunTestSet and GenerateSequential: empty test sets,
// zero-fault lists, single-pattern tests, depth-1 unrolls and
// already-detected fault lists, on both engines where the knob applies.

func TestRunTestSetEmptyTestSet(t *testing.T) {
	nl := buildToggle(t)
	cov, err := RunTestSet(nl, faultsim.Faults(nl), nil)
	if err != nil {
		t.Fatal(err)
	}
	if cov != 0 {
		t.Errorf("coverage %v for an empty test set", cov)
	}
	// An empty test inside a non-empty set is a zero-cycle no-op.
	cov, err = RunTestSet(nl, faultsim.Faults(nl), [][]faultsim.Pattern{{}})
	if err != nil {
		t.Fatal(err)
	}
	if cov != 0 {
		t.Errorf("coverage %v for a zero-cycle test", cov)
	}
}

func TestRunTestSetZeroFaults(t *testing.T) {
	nl := buildToggle(t)
	tests := [][]faultsim.Pattern{{{1}, {0}, {1}}}
	for _, faults := range [][]faultsim.Fault{nil, {}} {
		cov, err := RunTestSet(nl, faults, tests)
		if err != nil {
			t.Fatal(err)
		}
		if cov != 0 {
			t.Errorf("coverage %v over %d faults", cov, len(faults))
		}
	}
}

func TestRunTestSetSinglePatternTests(t *testing.T) {
	nl := buildToggle(t)
	faults := faultsim.Faults(nl)
	// Each test is one cycle long; union coverage accumulates across the
	// independently applied tests exactly as the one-shot sim says.
	tests := [][]faultsim.Pattern{{{1}}, {{0}}, {{1}}}
	cov, err := RunTestSet(nl, faults, tests)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	fs, err := faultsim.New(nl, faults)
	if err != nil {
		t.Fatal(err)
	}
	detected := make([]bool, len(faults))
	for _, test := range tests {
		res, err := fs.Run(test)
		if err != nil {
			t.Fatal(err)
		}
		for i, d := range res.FirstDetected {
			if d >= 0 && !detected[i] {
				detected[i] = true
				want++
			}
		}
	}
	if cov != float64(want)/float64(len(faults)) {
		t.Errorf("single-pattern union coverage %v, independent sims say %d/%d", cov, want, len(faults))
	}
}

// TestRunTestSetAlreadyDetected feeds a test set whose first test already
// detects everything the rest could: the remaining tests must not change
// the result (the session's frontier is empty and the loop breaks).
func TestRunTestSetAlreadyDetected(t *testing.T) {
	nl := buildToggle(t)
	faults := faultsim.Faults(nl)
	rep, err := GenerateSequential(nl, faults, &SeqOptions{Frames: 4})
	if err != nil {
		t.Fatal(err)
	}
	full, err := RunTestSet(nl, faults, rep.Tests)
	if err != nil {
		t.Fatal(err)
	}
	doubled := append(append([][]faultsim.Pattern{}, rep.Tests...), rep.Tests...)
	again, err := RunTestSet(nl, faults, doubled)
	if err != nil {
		t.Fatal(err)
	}
	if full != again {
		t.Errorf("replaying the same tests changed coverage: %v then %v", full, again)
	}
}

// TestGenerateSequentialNonPositiveFrames pins the withDefaults contract
// end to end: Frames <= 0 means "unset" (default depth 8), and must not
// trip the model's depth-mismatch guard.
func TestGenerateSequentialNonPositiveFrames(t *testing.T) {
	nl := buildToggle(t)
	for _, frames := range []int{0, -1} {
		rep, err := GenerateSequential(nl, nil, &SeqOptions{Frames: frames})
		if err != nil {
			t.Fatalf("Frames=%d: %v", frames, err)
		}
		if rep.Frames != 8 {
			t.Errorf("Frames=%d: ran at depth %d, want default 8", frames, rep.Frames)
		}
	}
}

func TestGenerateSequentialZeroFaults(t *testing.T) {
	nl := buildToggle(t)
	for _, workers := range []int{0, 1} {
		rep, err := GenerateSequential(nl, []faultsim.Fault{}, &SeqOptions{
			Frames: 2, Options: engine.Options{Workers: workers},
		})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Total != 0 || len(rep.Tests) != 0 || rep.PodemCalls != 0 {
			t.Errorf("workers=%d: empty fault list produced %+v", workers, rep)
		}
		if rep.Coverage() != 0 {
			t.Errorf("workers=%d: empty coverage %v", workers, rep.Coverage())
		}
	}
}

// TestGenerateSequentialDepthOne pins the degenerate single-frame unroll
// on both engines: frame 0 is the power-on state, so only faults
// observable in the very first cycle are detectable, and the engines must
// agree on exactly which.
func TestGenerateSequentialDepthOne(t *testing.T) {
	nl := buildShift2(t)
	legacy, err := GenerateSequential(nl, nil, &SeqOptions{Frames: 1, Options: engine.Options{Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	compiled, err := GenerateSequential(nl, nil, &SeqOptions{Frames: 1})
	if err != nil {
		t.Fatal(err)
	}
	if legacy.Detected != compiled.Detected || legacy.Untestable != compiled.Untestable ||
		len(legacy.Tests) != len(compiled.Tests) {
		t.Fatalf("depth-1 engines disagree: legacy %+v compiled %+v", legacy, compiled)
	}
	for ti := range legacy.Tests {
		if len(legacy.Tests[ti]) != 1 || len(compiled.Tests[ti]) != 1 {
			t.Fatalf("depth-1 test %d has %d/%d cycles", ti, len(legacy.Tests[ti]), len(compiled.Tests[ti]))
		}
	}
}

// TestGenerateSequentialAlreadyDetectedList targets a fault list whose
// members are all detected by the first generated test: one PODEM call
// must suffice and every later target is dropped, on both engines.
func TestGenerateSequentialAlreadyDetectedList(t *testing.T) {
	nl := buildToggle(t)
	all := faultsim.Faults(nl)
	base, err := GenerateSequential(nl, all, &SeqOptions{Frames: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Tests) == 0 {
		t.Fatal("no tests generated")
	}
	// Find the faults the first test alone detects and re-run ATPG over
	// just that list: the first target's test drops all of them.
	fs, err := faultsim.New(nl, all)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fs.Run(base.Tests[0])
	if err != nil {
		t.Fatal(err)
	}
	var detected []faultsim.Fault
	for i, d := range res.FirstDetected {
		if d >= 0 {
			detected = append(detected, all[i])
		}
	}
	if len(detected) < 2 {
		t.Skip("first test detects too few faults to be interesting")
	}
	for _, workers := range []int{0, 1} {
		rep, err := GenerateSequential(nl, detected, &SeqOptions{
			Frames: 4, Options: engine.Options{Workers: workers},
		})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Detected != len(detected) {
			t.Errorf("workers=%d: %d of %d pre-detectable faults detected", workers, rep.Detected, len(detected))
		}
	}
}

func TestGenerateZeroFaults(t *testing.T) {
	nl := buildMux(t)
	for _, workers := range []int{0, 1} {
		rep, err := Generate(nl, []faultsim.Fault{}, &Options{Options: engine.Options{Workers: workers}})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Total != 0 || len(rep.Vectors) != 0 {
			t.Errorf("workers=%d: empty fault list produced %+v", workers, rep)
		}
	}
}

// TestATPGCancellation pins cooperative cancellation through the shared
// engine surface: a cancelled context stops both generators with
// context.Canceled.
func TestATPGCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	nl := buildToggle(t)
	if _, err := GenerateSequential(nl, nil, &SeqOptions{
		Frames: 2, Options: engine.Options{Ctx: ctx},
	}); !errors.Is(err, context.Canceled) {
		t.Fatalf("sequential cancellation returned %v", err)
	}
	comb := buildMux(t)
	if _, err := Generate(comb, nil, &Options{Options: engine.Options{Ctx: ctx}}); !errors.Is(err, context.Canceled) {
		t.Fatalf("combinational cancellation returned %v", err)
	}
}
