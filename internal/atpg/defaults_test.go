package atpg

import "testing"

// TestSeqOptionsWithDefaults pins every defaulted SeqOptions field, both
// for a nil receiver and for partially-filled options, mirroring the tpg
// pin: the compiled port must not be able to silently change a knob
// default.
func TestSeqOptionsWithDefaults(t *testing.T) {
	// SeqOptions embeds engine.Options (whose Progress hook makes the
	// struct non-comparable), so the pins compare the scalar fields
	// explicitly.
	same := func(a, b SeqOptions) bool {
		return a.Frames == b.Frames && a.MaxBacktracks == b.MaxBacktracks &&
			a.FillSeed == b.FillSeed &&
			a.Workers == b.Workers && a.LaneWords == b.LaneWords
	}
	got := (*SeqOptions)(nil).withDefaults()
	want := SeqOptions{Frames: 8, MaxBacktracks: 1024}
	if !same(got, want) {
		t.Errorf("nil options: defaults %+v, want %+v", got, want)
	}
	if zero := (&SeqOptions{}).withDefaults(); !same(zero, want) {
		t.Errorf("zero options: defaults %+v, want %+v", zero, want)
	}
	// Explicit values must pass through untouched — including the
	// embedded engine knobs the compiled engine reads.
	in := &SeqOptions{Frames: 3, MaxBacktracks: 17, FillSeed: 5}
	in.Workers = 2
	in.LaneWords = 4
	if got := in.withDefaults(); !same(got, *in) {
		t.Errorf("explicit options rewritten: %+v, want %+v", got, *in)
	}
	// Zero fields of a non-nil struct still pick up defaults.
	part := (&SeqOptions{FillSeed: 9}).withDefaults()
	if part.Frames != 8 || part.MaxBacktracks != 1024 {
		t.Errorf("partial options defaults wrong: %+v", part)
	}
	if part.FillSeed != 9 || part.Workers != 0 || part.LaneWords != 0 {
		t.Errorf("partial options lost explicit fields: %+v", part)
	}
}

// TestOptionsWithDefaults is the combinational counterpart.
func TestOptionsWithDefaults(t *testing.T) {
	same := func(a, b Options) bool {
		return a.MaxBacktracks == b.MaxBacktracks && a.FillSeed == b.FillSeed &&
			a.Workers == b.Workers && a.LaneWords == b.LaneWords
	}
	got := (*Options)(nil).withDefaults()
	want := Options{MaxBacktracks: 4096}
	if !same(got, want) {
		t.Errorf("nil options: defaults %+v, want %+v", got, want)
	}
	if zero := (&Options{}).withDefaults(); !same(zero, want) {
		t.Errorf("zero options: defaults %+v, want %+v", zero, want)
	}
	in := &Options{MaxBacktracks: 12, FillSeed: 4}
	in.Workers = 3
	in.LaneWords = 8
	if got := in.withDefaults(); !same(got, *in) {
		t.Errorf("explicit options rewritten: %+v, want %+v", got, *in)
	}
}
