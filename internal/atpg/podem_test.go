package atpg

import (
	"testing"

	"repro/internal/faultsim"
	"repro/internal/netlist"
)

func buildMux(t *testing.T) *netlist.Netlist {
	t.Helper()
	n := netlist.New("mux")
	a := n.AddInput("a")
	b := n.AddInput("b")
	s := n.AddInput("s")
	ns := n.AddGate(netlist.Not, s)
	t1 := n.AddGate(netlist.And, a, s)
	t2 := n.AddGate(netlist.And, b, ns)
	y := n.AddGate(netlist.Or, t1, t2)
	n.MarkOutput(y, "y")
	return n
}

// buildC17 is the classic 6-NAND ISCAS-85 c17 benchmark.
func buildC17(t *testing.T) *netlist.Netlist {
	t.Helper()
	n := netlist.New("c17")
	g1 := n.AddInput("1")
	g2 := n.AddInput("2")
	g3 := n.AddInput("3")
	g6 := n.AddInput("6")
	g7 := n.AddInput("7")
	g10 := n.AddGate(netlist.Nand, g1, g3)
	g11 := n.AddGate(netlist.Nand, g3, g6)
	g16 := n.AddGate(netlist.Nand, g2, g11)
	g19 := n.AddGate(netlist.Nand, g11, g7)
	g22 := n.AddGate(netlist.Nand, g10, g16)
	g23 := n.AddGate(netlist.Nand, g16, g19)
	n.MarkOutput(g22, "22")
	n.MarkOutput(g23, "23")
	return n
}

func TestPodemFullCoverageMux(t *testing.T) {
	nl := buildMux(t)
	rep, err := Generate(nl, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Aborted != 0 {
		t.Errorf("aborted = %d", rep.Aborted)
	}
	if rep.Redundant != 0 {
		t.Errorf("redundant = %d for irredundant mux", rep.Redundant)
	}
	if rep.Detected != rep.Total {
		t.Errorf("detected %d of %d", rep.Detected, rep.Total)
	}
	// Verify the generated vectors really achieve full coverage.
	fs, err := faultsim.New(nl, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fs.Run(rep.Vectors)
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage() != 1 {
		t.Errorf("vectors achieve %.3f coverage", res.Coverage())
	}
}

func TestPodemC17(t *testing.T) {
	nl := buildC17(t)
	rep, err := Generate(nl, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Detected != rep.Total || rep.Redundant != 0 || rep.Aborted != 0 {
		t.Fatalf("c17: detected %d/%d redundant %d aborted %d",
			rep.Detected, rep.Total, rep.Redundant, rep.Aborted)
	}
	// c17 is testable with a handful of vectors; PODEM with dropping
	// should need far fewer than one per fault.
	if len(rep.Vectors) >= rep.Total {
		t.Errorf("no fault dropping: %d vectors for %d faults", len(rep.Vectors), rep.Total)
	}
	fs, _ := faultsim.New(nl, nil)
	res, _ := fs.Run(rep.Vectors)
	if res.Coverage() != 1 {
		t.Errorf("c17 vectors achieve %.3f", res.Coverage())
	}
}

func TestPodemFindsRedundantFault(t *testing.T) {
	// y = OR(a, 1): y s-a-1 is undetectable.
	n := netlist.New("red")
	a := n.AddInput("a")
	c1 := n.AddGate(netlist.Const1)
	y := n.AddGate(netlist.Or, a, c1)
	n.MarkOutput(y, "y")
	rep, err := Generate(n, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Redundant == 0 {
		t.Errorf("no redundancy found: %+v", rep)
	}
	if rep.Aborted != 0 {
		t.Errorf("aborted on trivial redundancy: %+v", rep)
	}
}

func TestPodemRejectsSequential(t *testing.T) {
	n := netlist.New("seq")
	d := n.AddInput("d")
	q := n.AddDFF("q", 0)
	n.SetDFFInput(q, d)
	n.MarkOutput(q, "q")
	if _, err := Generate(n, nil, nil); err == nil {
		t.Fatal("sequential netlist accepted")
	}
}

func TestPodemTargetedFaultSubset(t *testing.T) {
	nl := buildMux(t)
	all := faultsim.Faults(nl)
	sub := all[:3]
	rep, err := Generate(nl, sub, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total != 3 {
		t.Errorf("total = %d, want 3", rep.Total)
	}
	if rep.Detected+rep.Redundant+rep.Aborted != 3 {
		t.Errorf("classification does not add up: %+v", rep)
	}
}

func TestPodemDeterministicWithSeed(t *testing.T) {
	nl := buildC17(t)
	r1, _ := Generate(nl, nil, &Options{FillSeed: 42})
	r2, _ := Generate(nl, nil, &Options{FillSeed: 42})
	if len(r1.Vectors) != len(r2.Vectors) {
		t.Fatalf("vector counts differ: %d vs %d", len(r1.Vectors), len(r2.Vectors))
	}
	for i := range r1.Vectors {
		for j := range r1.Vectors[i] {
			if r1.Vectors[i][j] != r2.Vectors[i][j] {
				t.Fatalf("vector %d differs", i)
			}
		}
	}
}

func TestPreTestReducesEffort(t *testing.T) {
	// The top-off scenario: faults already covered by a pre-test are not
	// targeted, so PODEM is called fewer times and emits fewer vectors.
	nl := buildC17(t)
	all := faultsim.Faults(nl)

	// Pre-test: a few vectors, fault simulate, keep undetected faults.
	pre := []faultsim.Pattern{
		{0, 1, 1, 1, 0}, {1, 0, 1, 0, 1}, {1, 1, 0, 1, 1},
	}
	fs, _ := faultsim.New(nl, all)
	res, _ := fs.Run(pre)
	var remaining []faultsim.Fault
	for i, d := range res.FirstDetected {
		if d < 0 {
			remaining = append(remaining, all[i])
		}
	}
	if len(remaining) == 0 || len(remaining) == len(all) {
		t.Fatalf("pre-test detected %d of %d; want partial", len(all)-len(remaining), len(all))
	}

	full, _ := Generate(nl, all, nil)
	topoff, _ := Generate(nl, remaining, nil)
	if topoff.PodemCalls >= full.PodemCalls {
		t.Errorf("top-off PODEM calls %d !< full %d", topoff.PodemCalls, full.PodemCalls)
	}
	if len(topoff.Vectors) > len(full.Vectors) {
		t.Errorf("top-off vectors %d > full %d", len(topoff.Vectors), len(full.Vectors))
	}
}

func TestReportCoverage(t *testing.T) {
	r := &Report{Detected: 3, Total: 4}
	if got := r.Coverage(); got != 0.75 {
		t.Errorf("coverage = %v", got)
	}
	empty := &Report{}
	if empty.Coverage() != 0 {
		t.Error("empty coverage not 0")
	}
}
