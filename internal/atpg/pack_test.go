package atpg

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/engine"
	"repro/internal/faultsim"
	"repro/internal/netlist"
)

// packOpts builds combinational options at a given pack width.
func packOpts(pairs int) *Options {
	return &Options{FillSeed: 5, Options: engine.Options{PackPairs: pairs}}
}

// TestPackFewerTargetsThanPairs runs a full-width pack over target lists
// far smaller than the 32-pair capacity — the scheduler must leave the
// surplus pairs idle and still match the single-pair engine exactly,
// down to a single-target pack.
func TestPackFewerTargetsThanPairs(t *testing.T) {
	nl := buildMux(t)
	all := faultsim.Faults(nl)
	for _, n := range []int{1, 2, 3} {
		sub := all[:n]
		ref, err := Generate(nl, sub, packOpts(1))
		if err != nil {
			t.Fatal(err)
		}
		packed, err := Generate(nl, sub, packOpts(32))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(packed, ref) {
			t.Fatalf("%d targets: packed %+v, single-pair %+v", n, packed, ref)
		}
		if packed.Total != n {
			t.Fatalf("%d targets: total = %d", n, packed.Total)
		}
	}

	// Sequential counterpart on the toggle circuit.
	seq := buildToggle(t)
	sf := faultsim.Faults(seq)[:2]
	sopts := func(pairs int) *SeqOptions {
		return &SeqOptions{Frames: 3, FillSeed: 5, Options: engine.Options{PackPairs: pairs}}
	}
	sref, err := GenerateSequential(seq, sf, sopts(1))
	if err != nil {
		t.Fatal(err)
	}
	spacked, err := GenerateSequential(seq, sf, sopts(32))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(spacked, sref) {
		t.Fatalf("sequential: packed %+v, single-pair %+v", spacked, sref)
	}
}

// TestPackAllRedundant arms a pack consisting entirely of redundant
// targets: no test is ever generated, nothing drops, and every pair
// re-arms purely off retirements. The subset is discovered by
// classifying each fault individually with the legacy engine, so the
// test tracks the fault collapser.
func TestPackAllRedundant(t *testing.T) {
	// y = OR(OR(a,1), OR(b,1)): everything upstream of y is masked by the
	// constants, so most of the fault list is redundant.
	n := netlist.New("allred")
	a := n.AddInput("a")
	b := n.AddInput("b")
	c1 := n.AddGate(netlist.Const1)
	o1 := n.AddGate(netlist.Or, a, c1)
	o2 := n.AddGate(netlist.Or, b, c1)
	y := n.AddGate(netlist.Or, o1, o2)
	n.MarkOutput(y, "y")

	var redundant []faultsim.Fault
	for _, f := range faultsim.Faults(n) {
		rep, err := Generate(n, []faultsim.Fault{f}, &Options{Options: engine.Options{Workers: 1}})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Redundant == 1 {
			redundant = append(redundant, f)
		}
	}
	if len(redundant) < 2 {
		t.Fatalf("only %d redundant faults; circuit no longer exercises the all-redundant pack", len(redundant))
	}
	ref, err := Generate(n, redundant, packOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	packed, err := Generate(n, redundant, packOpts(32))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(packed, ref) {
		t.Fatalf("packed %+v, single-pair %+v", packed, ref)
	}
	if packed.Redundant != packed.Total || len(packed.Vectors) != 0 {
		t.Fatalf("all-redundant pack generated tests: %+v", packed)
	}
}

// TestPackMidCancellation cancels the context from the progress hook
// after the first committed target, while the pack still holds in-flight
// speculative searches: the scheduler must notice at its per-round poll
// and surface the context error instead of finishing the pack.
func TestPackMidCancellation(t *testing.T) {
	nl := buildC17(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts := &Options{FillSeed: 5, Options: engine.Options{
		PackPairs: 4,
		Ctx:       ctx,
		Progress:  func(engine.Stats) { cancel() },
	}}
	rep, err := Generate(nl, nil, opts)
	if err == nil {
		t.Fatalf("cancelled pack completed: %+v", rep)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	seq := buildToggle(t)
	sctx, scancel := context.WithCancel(context.Background())
	defer scancel()
	sopts := &SeqOptions{Frames: 3, FillSeed: 5, Options: engine.Options{
		PackPairs: 4,
		Ctx:       sctx,
		Progress:  func(engine.Stats) { scancel() },
	}}
	srep, err := GenerateSequential(seq, nil, sopts)
	if err == nil {
		t.Fatalf("cancelled sequential pack completed: %+v", srep)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("sequential err = %v, want context.Canceled", err)
	}
}

// TestPackPairsValidation pins the knob contract: 0 resolves to the full
// 32-pair capacity, 1..32 pass through, everything else is rejected by
// both generators, and the serial reference path ignores the knob
// entirely.
func TestPackPairsValidation(t *testing.T) {
	if got, err := resolvePackPairs(0); err != nil || got != packMaxPairs {
		t.Errorf("resolvePackPairs(0) = %d, %v; want %d", got, err, packMaxPairs)
	}
	for _, p := range []int{1, 2, 32} {
		if got, err := resolvePackPairs(p); err != nil || got != p {
			t.Errorf("resolvePackPairs(%d) = %d, %v", p, got, err)
		}
	}
	nl := buildMux(t)
	seq := buildToggle(t)
	for _, p := range []int{-1, 33} {
		if _, err := Generate(nl, nil, &Options{Options: engine.Options{PackPairs: p}}); err == nil {
			t.Errorf("Generate accepted PackPairs %d", p)
		}
		if _, err := GenerateSequential(seq, nil, &SeqOptions{Options: engine.Options{PackPairs: p}}); err == nil {
			t.Errorf("GenerateSequential accepted PackPairs %d", p)
		}
		// The serial reference never reaches the pack scheduler, so the
		// knob is ignored there.
		if _, err := Generate(nl, nil, &Options{Options: engine.Options{Workers: 1, PackPairs: p}}); err != nil {
			t.Errorf("serial path rejected PackPairs %d: %v", p, err)
		}
	}
}
