package atpg

import (
	"repro/internal/lane"
	"repro/internal/netlist"
)

// Lane assignment of the two PODEM planes inside one compiled machine
// pass: the fault-free good plane and the fault-injected faulty plane are
// just two lanes of the same W=1 word, which is what lets a single
// instruction-stream pass replace two interpreter sweeps.
const (
	goodLane   = 0
	faultyLane = 1
)

// compiledSim is the compiled concrete-value backend: the model netlist's
// dual-rail twin (netlist.TriExpand encodes Kleene three-valued logic as
// two-valued rails) compiled once into a flat program, and one persistent
// two-lane machine evaluating both planes per implication. Arming a
// target translates each fault site into its rail pair and injects it
// into the faulty lane only; imply is then a single Machine.Eval followed
// by a rail decode into the engine's gv/fv arrays, which the search reads
// exactly as it reads the interpreter's.
type compiledSim struct {
	e   *search
	tm  *netlist.TriMap
	m   *netlist.Machine[lane.W1]
	pis []lane.W1 // twin PI vectors: rails interleaved in model PI order
}

func newCompiledSim(e *search) (*compiledSim, error) {
	twin, tm, err := netlist.TriExpand(e.nl)
	if err != nil {
		return nil, err
	}
	prog, err := netlist.Compile(twin)
	if err != nil {
		return nil, err
	}
	return &compiledSim{
		e:   e,
		tm:  tm,
		m:   netlist.NewMachine[lane.W1](prog),
		pis: make([]lane.W1, len(twin.PIs)),
	}, nil
}

func (s *compiledSim) arm(sites []netlist.FaultSite) {
	s.m.ClearFaults()
	mask := lane.Bit[lane.W1](faultyLane)
	for _, st := range sites {
		for _, ts := range s.tm.FaultSites(s.e.nl, st) {
			s.m.InjectFault(ts, mask)
		}
	}
}

func (s *compiledSim) imply(assign []tri) {
	const bothLanes = uint64(1<<goodLane | 1<<faultyLane)
	for i, v := range assign {
		var hw, lw uint64
		switch v {
		case hi:
			hw = bothLanes
		case lo:
			lw = bothLanes
		}
		s.pis[2*i] = lane.W1{hw}
		s.pis[2*i+1] = lane.W1{lw}
	}
	s.m.Eval(s.pis)
	e := s.e
	for id := range e.nl.Gates {
		hv := s.m.Value(s.tm.Hi[id])[0]
		lv := s.m.Value(s.tm.Lo[id])[0]
		e.gv[id] = railTri(hv&(1<<goodLane), lv&(1<<goodLane))
		e.fv[id] = railTri(hv&(1<<faultyLane), lv&(1<<faultyLane))
	}
}

// railTri decodes one plane's rail pair: hi rail set means 1, lo rail set
// means 0, neither means X (both set cannot arise — the twin preserves
// the rail invariant and fault injection writes consistent pairs).
func railTri(h, l uint64) tri {
	if h != 0 {
		return hi
	}
	if l != 0 {
		return lo
	}
	return xx
}
