package atpg

import (
	"repro/internal/lane"
	"repro/internal/netlist"
)

// Lane assignment of the PODEM planes inside one compiled machine pass:
// each search occupies one lane pair — the fault-free good plane on the
// even lane, the fault-injected faulty plane on the odd lane right above
// it. The single-pair reference engine (PackPairs == 1) uses pair 0,
// i.e. lanes 0/1, which is exactly the pre-pack dual-rail layout; the
// pack scheduler fills up to packMaxPairs pairs of the same W=1 word, so
// one instruction-stream pass evaluates up to 32 concurrent searches.
const (
	goodLane   = 0
	faultyLane = 1
	// packMaxPairs is the lane-pair capacity of one W=1 machine word:
	// 64 lanes / 2 lanes per search.
	packMaxPairs = 32
)

// twin is the compiled dual-rail backend shared by the single-pair and
// packed engines: the model netlist's TriExpand twin (Kleene three-valued
// logic as two-valued rails) compiled once into a flat program, evaluated
// by one persistent W=1 machine, plus the twin PI scratch. Arming a
// target translates each fault site into its rail pair and injects it
// into the target's faulty lane only; imply is then a single Machine.Eval
// followed by a rail decode into a cursor's gv/fv arrays, which the
// search reads exactly as it reads the interpreter's.
type twin struct {
	nl  *netlist.Netlist // model netlist (the twin's source)
	tm  *netlist.TriMap
	m   *netlist.Machine[lane.W1]
	pis []lane.W1 // twin PI vectors: rails interleaved in model PI order
}

func newTwin(nl *netlist.Netlist) (*twin, error) {
	tn, tm, err := netlist.TriExpand(nl)
	if err != nil {
		return nil, err
	}
	prog, err := netlist.Compile(tn)
	if err != nil {
		return nil, err
	}
	return &twin{
		nl:  nl,
		tm:  tm,
		m:   netlist.NewMachine[lane.W1](prog),
		pis: make([]lane.W1, len(tn.PIs)),
	}, nil
}

// armPair injects a target's fault sites into pair k's faulty lane,
// leaving every other pair's batch armed.
//
//repro:hotpath
func (t *twin) armPair(k int, sites []netlist.FaultSite) {
	mask := lane.Bit[lane.W1](2*k + faultyLane)
	for _, st := range sites {
		for _, ts := range t.tm.FaultSites(t.nl, st) {
			t.m.InjectFault(ts, mask)
		}
	}
}

// clearPair retires pair k's injections (both of its lanes), leaving the
// other pairs' batches armed — the pair-scoped half of re-arming.
//
//repro:hotpath
func (t *twin) clearPair(k int) {
	both := lane.Or(lane.Bit[lane.W1](2*k+goodLane), lane.Bit[lane.W1](2*k+faultyLane))
	t.m.ClearFaultLanes(both)
}

// compiledSim is the single-pair compiled backend (PackPairs == 1, the
// packed engine's differential reference): pair 0 carries the one active
// search, so arm/imply reproduce the pre-pack dual-rail engine pass for
// pass.
type compiledSim struct {
	e *search
	t *twin
}

func (s *compiledSim) arm(sites []netlist.FaultSite) {
	s.t.m.ClearFaults()
	s.t.armPair(0, sites)
}

func (s *compiledSim) imply(assign []tri) {
	s.t.gather(assign, 0)
	s.t.m.Eval(s.t.pis)
	s.t.decode(s.e.cur, 0)
}

// gather writes one search's PI assignment into pair k's two lanes of
// the twin PI scratch: the hi rail carries assigned-1 positions, the lo
// rail assigned-0, neither rail set is X. Both of the pair's lanes see
// the same stimulus — the planes differ only through injected faults.
//
//repro:hotpath
func (t *twin) gather(assign []tri, k int) {
	pairLanes := uint64(3) << uint(2*k)
	for i, v := range assign {
		var hw, lw uint64
		switch v {
		case hi:
			hw = pairLanes
		case lo:
			lw = pairLanes
		}
		t.pis[2*i][0] = t.pis[2*i][0]&^pairLanes | hw
		t.pis[2*i+1][0] = t.pis[2*i+1][0]&^pairLanes | lw
	}
}

// decode slices pair k's two planes out of the shared evaluation into the
// cursor's three-valued gv/fv arrays.
//
//repro:hotpath
func (t *twin) decode(c *cursor, k int) {
	gb, fb := uint(2*k+goodLane), uint(2*k+faultyLane)
	for id := range t.nl.Gates {
		hv := t.m.Value(t.tm.Hi[id])[0]
		lv := t.m.Value(t.tm.Lo[id])[0]
		c.gv[id] = railTri(hv>>gb&1, lv>>gb&1)
		c.fv[id] = railTri(hv>>fb&1, lv>>fb&1)
	}
}

// railTri decodes one plane's rail pair: hi rail set means 1, lo rail set
// means 0, neither means X (both set cannot arise — the twin preserves
// the rail invariant and fault injection writes consistent pairs).
func railTri(h, l uint64) tri {
	if h != 0 {
		return hi
	}
	if l != 0 {
		return lo
	}
	return xx
}
