package atpg

import (
	"fmt"
	"math/rand"

	"repro/internal/engine"
	"repro/internal/faultsim"
	"repro/internal/netlist"
)

// SeqOptions tunes sequential ATPG.
type SeqOptions struct {
	// Frames is the time-frame expansion depth: each test is a sequence of
	// this many cycles applied from power-on. Default 8. A Model carries
	// its own depth; passing a different non-zero Frames to a model run is
	// an error.
	Frames int
	// MaxBacktracks bounds the PODEM search per fault. The sequential
	// default is 1024 (lower than combinational ATPG's 4096): most of the
	// budget is burned proving faults undetectable within the frame
	// horizon, where a deeper search rarely changes the verdict.
	MaxBacktracks int
	// FillSeed seeds random fill of don't-care positions.
	FillSeed int64
	// Options is the shared engine surface, with the same semantics as
	// atpg.Options: Workers == 1 is the legacy path (three-valued
	// interpreter implications, one-shot per-test drop simulation —
	// exactly the pre-port shape, drop-sim engine included), anything
	// else the compiled dual-rail engine with an incremental
	// reset-per-test drop-sim session. Results are identical for every
	// setting.
	engine.Options
}

func (o *SeqOptions) withDefaults() SeqOptions {
	out := SeqOptions{Frames: 8, MaxBacktracks: 1024}
	if o != nil {
		if o.Frames > 0 {
			out.Frames = o.Frames
		}
		if o.MaxBacktracks > 0 {
			out.MaxBacktracks = o.MaxBacktracks
		}
		out.FillSeed = o.FillSeed
		out.Options = o.Options
	}
	return out
}

// SeqReport summarizes a sequential ATPG run. Each test is a short input
// sequence applied from power-on state (the application discipline is
// "reset between tests").
type SeqReport struct {
	Tests      [][]faultsim.Pattern // one sequence per generated test
	Detected   int
	Untestable int // redundant within the frame horizon (may be testable deeper)
	Aborted    int
	Backtracks int
	PodemCalls int
	Total      int
	Frames     int
}

// Coverage returns Detected / Total.
func (r *SeqReport) Coverage() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Detected) / float64(r.Total)
}

// TotalCycles returns the summed length of all generated tests.
func (r *SeqReport) TotalCycles() int {
	n := 0
	for _, t := range r.Tests {
		n += len(t)
	}
	return n
}

// GenerateSequential runs time-frame-expansion ATPG on a sequential
// netlist: the circuit is unrolled into a fixed number of combinational
// frames (frame 0 holding the power-on state), each fault is injected
// into every frame copy, and PODEM searches for a PI assignment across
// frames — i.e., an input sequence — that propagates the fault to some
// frame's outputs. Faults the search proves undetectable are only
// undetectable *within the horizon* and are reported as Untestable rather
// than redundant. It compiles a fresh model per call; use
// NewSequentialModel when several runs share a (netlist, depth) pair.
func GenerateSequential(nl *netlist.Netlist, faults []faultsim.Fault, opts *SeqOptions) (*SeqReport, error) {
	o := opts.withDefaults()
	m, err := NewSequentialModel(nl, o.Frames)
	if err != nil {
		return nil, err
	}
	return m.GenerateSequential(faults, opts)
}

// GenerateSequential runs sequential ATPG on the model's circuit at the
// model's unroll depth; see the package function. The fault list defaults
// to all collapsed faults when nil.
func (m *Model) GenerateSequential(faults []faultsim.Fault, opts *SeqOptions) (*SeqReport, error) {
	if m.frames == 0 {
		return nil, fmt.Errorf("atpg: %s is a combinational model; use Generate", m.nl.Name)
	}
	if opts != nil && opts.Frames > 0 && opts.Frames != m.frames {
		return nil, fmt.Errorf("atpg: model unrolled to %d frames, options ask for %d", m.frames, opts.Frames)
	}
	o := opts.withDefaults()
	o.Frames = m.frames
	if faults == nil {
		faults = faultsim.Faults(m.nl)
	}
	if o.Serial() {
		return m.generateSeqLegacy(faults, o)
	}
	pairs, err := resolvePackPairs(o.PackPairs)
	if err != nil {
		return nil, err
	}
	if pairs == 1 {
		return m.generateSeqCompiled(faults, o)
	}
	return m.generateSeqPacked(faults, o, pairs)
}

// generateSeqPacked is the packed sequential path: up to pairs searches
// of the unrolled twin share every machine pass, scheduled by packRun,
// and the commit callback replays generateSeqCompiled's per-target
// bookkeeping — counters, random fill, incremental session AppendTest /
// Retire — in strict target-index order, so the report and test set are
// byte-identical to the single-pair engine and the legacy interpreter.
// Targets whose fault sites fall outside the frame horizon resolve as
// Untestable without a search, exactly as in the single-pair path.
func (m *Model) generateSeqPacked(faults []faultsim.Fault, o SeqOptions, pairs int) (*SeqReport, error) {
	tw, err := m.compiled()
	if err != nil {
		return nil, err
	}
	tw.m.ClearFaults()
	sess, err := dropSimConfig(o.Options).New(m.nl, faults)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(o.FillSeed))
	rep := &SeqReport{Total: len(faults), Frames: m.frames}
	alive := make([]bool, len(faults))
	for i := range alive {
		alive[i] = true
	}
	resolved := 0
	retire := func(fi int) error {
		alive[fi] = false
		resolved++
		return sess.Retire(fi)
	}
	sitesOf := func(t int) []netlist.FaultSite {
		return m.um.SitesInFrames(m.nl, faults[t].Site)
	}
	commit := func(t int, r *packResult) error {
		if r.noSearch {
			rep.Untestable++
			if err := retire(t); err != nil {
				return err
			}
			o.Report(resolved, len(faults))
			return nil
		}
		rep.PodemCalls++
		rep.Backtracks += r.backtracks
		if r.status != statusDetected {
			if r.status == statusRedundant {
				rep.Untestable++
			} else {
				rep.Aborted++
			}
			if err := retire(t); err != nil {
				return err
			}
			o.Report(resolved, len(faults))
			return nil
		}
		test := m.sliceTest(r.cube, rng)
		rep.Tests = append(rep.Tests, test)
		res, err := sess.AppendTest(test)
		if err != nil {
			return err
		}
		dropped := 0
		for fj := range faults {
			if alive[fj] && res.FirstDetected[fj] >= 0 {
				alive[fj] = false
				rep.Detected++
				dropped++
				resolved++
			}
		}
		if dropped == 0 {
			// PODEM promised detection but simulation disagrees: the random
			// fill can only add detections, so this indicates an engine bug.
			return fmt.Errorf("atpg: sequential test for %s did not detect its target", faults[t].Desc)
		}
		o.Report(resolved, len(faults))
		return nil
	}
	if err := m.packRun(tw, len(faults), pairs, o.MaxBacktracks, o.Options, alive, sitesOf, commit); err != nil {
		return nil, err
	}
	return rep, nil
}

// generateSeqCompiled is the production sequential path: PODEM planes on
// the compiled twin of the unrolled model, and fault dropping through one
// incremental reset-per-test session — each generated test is an
// AppendTest, so fault batches stay armed across targets, detected lanes
// drop at the batch level, and targets the search resolves without a test
// retire their lanes too. The remaining-target set shrinks as the session
// advances instead of being re-planned per test.
func (m *Model) generateSeqCompiled(faults []faultsim.Fault, o SeqOptions) (*SeqReport, error) {
	tw, err := m.compiled()
	if err != nil {
		return nil, err
	}
	sim := &compiledSim{e: m.eng, t: tw}
	sess, err := dropSimConfig(o.Options).New(m.nl, faults)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(o.FillSeed))
	rep := &SeqReport{Total: len(faults), Frames: m.frames}
	alive := make([]bool, len(faults))
	for i := range alive {
		alive[i] = true
	}
	resolved := 0
	retire := func(fi int) error {
		alive[fi] = false
		resolved++
		return sess.Retire(fi)
	}
	for fi := range faults {
		if !alive[fi] {
			continue
		}
		if err := o.Cancelled(); err != nil {
			return nil, fmt.Errorf("atpg: %w", err)
		}
		sites := m.um.SitesInFrames(m.nl, faults[fi].Site)
		if len(sites) == 0 {
			rep.Untestable++
			if err := retire(fi); err != nil {
				return nil, err
			}
			o.Report(resolved, len(faults))
			continue
		}
		rep.PodemCalls++
		cube, backtracks, status := m.eng.podem(sim, sites, o.MaxBacktracks)
		rep.Backtracks += backtracks
		if status != statusDetected {
			if status == statusRedundant {
				rep.Untestable++
			} else {
				rep.Aborted++
			}
			if err := retire(fi); err != nil {
				return nil, err
			}
			o.Report(resolved, len(faults))
			continue
		}
		test := m.sliceTest(cube, rng)
		rep.Tests = append(rep.Tests, test)
		res, err := sess.AppendTest(test)
		if err != nil {
			return nil, err
		}
		dropped := 0
		for fj := range faults {
			if alive[fj] && res.FirstDetected[fj] >= 0 {
				alive[fj] = false
				rep.Detected++
				dropped++
				resolved++
			}
		}
		if dropped == 0 {
			// PODEM promised detection but simulation disagrees: the random
			// fill can only add detections, so this indicates an engine bug.
			return nil, fmt.Errorf("atpg: sequential test for %s did not detect its target", faults[fi].Desc)
		}
		o.Report(resolved, len(faults))
	}
	return rep, nil
}

// generateSeqLegacy is the legacy sequential path, kept for differential
// testing: interpreter planes and a one-shot RunOn per generated test
// over the still-alive subset, on the default compiled fault simulator —
// exactly the pre-session drop-sim shape (only the cancellation context
// is threaded through), so the benchmark pair against the compiled path
// measures the port, not a drop-sim engine swap.
func (m *Model) generateSeqLegacy(faults []faultsim.Fault, o SeqOptions) (*SeqReport, error) {
	var dropCfg faultsim.Config
	dropCfg.Ctx = o.Ctx
	dropSim, err := dropCfg.New(m.nl, faults)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(o.FillSeed))
	rep := &SeqReport{Total: len(faults), Frames: m.frames}
	alive := make([]bool, len(faults))
	for i := range alive {
		alive[i] = true
	}
	aliveIdx := func() []int {
		var out []int
		for i, a := range alive {
			if a {
				out = append(out, i)
			}
		}
		return out
	}
	sim := interpSim{m.eng}
	resolved := 0
	for fi := range faults {
		if !alive[fi] {
			continue
		}
		if err := o.Cancelled(); err != nil {
			return nil, fmt.Errorf("atpg: %w", err)
		}
		sites := m.um.SitesInFrames(m.nl, faults[fi].Site)
		if len(sites) == 0 {
			rep.Untestable++
			alive[fi] = false
			resolved++
			o.Report(resolved, len(faults))
			continue
		}
		rep.PodemCalls++
		cube, backtracks, status := m.eng.podem(sim, sites, o.MaxBacktracks)
		rep.Backtracks += backtracks
		switch status {
		case statusRedundant:
			rep.Untestable++
			alive[fi] = false
			resolved++
			o.Report(resolved, len(faults))
			continue
		case statusAborted:
			rep.Aborted++
			alive[fi] = false
			resolved++
			o.Report(resolved, len(faults))
			continue
		}
		test := m.sliceTest(cube, rng)
		rep.Tests = append(rep.Tests, test)
		// Drop everything this test detects (applied from power-on); only
		// still-alive faults are worth re-simulating.
		idxs := aliveIdx()
		res, err := dropSim.RunOn(test, idxs)
		if err != nil {
			return nil, err
		}
		dropped := 0
		for _, idx := range idxs {
			if res.FirstDetected[idx] >= 0 {
				alive[idx] = false
				rep.Detected++
				dropped++
				resolved++
			}
		}
		if dropped == 0 {
			// PODEM promised detection but simulation disagrees: the random
			// fill can only add detections, so this indicates an engine bug.
			return nil, fmt.Errorf("atpg: sequential test for %s did not detect its target", faults[fi].Desc)
		}
		o.Report(resolved, len(faults))
	}
	return rep, nil
}

// sliceTest carves the frame-major PI cube into one filled pattern per
// cycle.
func (m *Model) sliceTest(cube []tri, rng *rand.Rand) []faultsim.Pattern {
	test := make([]faultsim.Pattern, m.frames)
	for f := 0; f < m.frames; f++ {
		test[f] = fillCube(cube[f*m.um.PIsPerFrame:(f+1)*m.um.PIsPerFrame], rng)
	}
	return test
}

// RunTestSet fault-simulates a set of power-on test sequences and returns
// the union coverage over the given fault list, driving one incremental
// reset-per-test session so already-detected faults are never
// re-simulated.
func RunTestSet(nl *netlist.Netlist, faults []faultsim.Fault, tests [][]faultsim.Pattern) (float64, error) {
	if len(faults) == 0 {
		return 0, nil
	}
	fs, err := faultsim.New(nl, faults)
	if err != nil {
		return 0, err
	}
	detected := 0
	for _, t := range tests {
		if detected == len(faults) {
			break
		}
		res, err := fs.AppendTest(t)
		if err != nil {
			return 0, err
		}
		detected = res.DetectedCount()
	}
	return float64(detected) / float64(len(faults)), nil
}
