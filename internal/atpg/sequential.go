package atpg

import (
	"fmt"
	"math/rand"

	"repro/internal/faultsim"
	"repro/internal/netlist"
)

// SeqOptions tunes sequential ATPG.
type SeqOptions struct {
	// Frames is the time-frame expansion depth: each test is a sequence of
	// this many cycles applied from power-on. Default 8.
	Frames int
	// MaxBacktracks bounds the PODEM search per fault. The sequential
	// default is 1024 (lower than combinational ATPG's 4096): most of the
	// budget is burned proving faults undetectable within the frame
	// horizon, where a deeper search rarely changes the verdict.
	MaxBacktracks int
	// FillSeed seeds random fill of don't-care positions.
	FillSeed int64
}

func (o *SeqOptions) withDefaults() SeqOptions {
	out := SeqOptions{Frames: 8, MaxBacktracks: 1024}
	if o != nil {
		if o.Frames > 0 {
			out.Frames = o.Frames
		}
		if o.MaxBacktracks > 0 {
			out.MaxBacktracks = o.MaxBacktracks
		}
		out.FillSeed = o.FillSeed
	}
	return out
}

// SeqReport summarizes a sequential ATPG run. Each test is a short input
// sequence applied from power-on state (the application discipline is
// "reset between tests").
type SeqReport struct {
	Tests      [][]faultsim.Pattern // one sequence per generated test
	Detected   int
	Untestable int // redundant within the frame horizon (may be testable deeper)
	Aborted    int
	Backtracks int
	PodemCalls int
	Total      int
	Frames     int
}

// Coverage returns Detected / Total.
func (r *SeqReport) Coverage() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Detected) / float64(r.Total)
}

// TotalCycles returns the summed length of all generated tests.
func (r *SeqReport) TotalCycles() int {
	n := 0
	for _, t := range r.Tests {
		n += len(t)
	}
	return n
}

// GenerateSequential runs time-frame-expansion ATPG on a sequential
// netlist: the circuit is unrolled into a fixed number of combinational
// frames (frame 0 holding the power-on state), each fault is injected
// into every frame copy, and PODEM searches for a PI assignment across
// frames — i.e., an input sequence — that propagates the fault to some
// frame's outputs. Faults the search proves undetectable are only
// undetectable *within the horizon* and are reported as Untestable rather
// than redundant.
func GenerateSequential(nl *netlist.Netlist, faults []faultsim.Fault, opts *SeqOptions) (*SeqReport, error) {
	if !nl.IsSequential() {
		return nil, fmt.Errorf("atpg: %s is combinational; use Generate", nl.Name)
	}
	o := opts.withDefaults()
	if faults == nil {
		faults = faultsim.Faults(nl)
	}
	unrolled, um, err := netlist.Unroll(nl, o.Frames)
	if err != nil {
		return nil, err
	}
	eng, err := newEngine(unrolled)
	if err != nil {
		return nil, err
	}
	// Sequential fault simulation for dropping, one evaluator pair reused.
	dropSim, err := faultsim.New(nl, faults)
	if err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(o.FillSeed))
	rep := &SeqReport{Total: len(faults), Frames: o.Frames}
	alive := make([]bool, len(faults))
	for i := range alive {
		alive[i] = true
	}
	aliveIdx := func() []int {
		var out []int
		for i, a := range alive {
			if a {
				out = append(out, i)
			}
		}
		return out
	}

	for fi := range faults {
		if !alive[fi] {
			continue
		}
		sites := um.SitesInFrames(nl, faults[fi].Site)
		if len(sites) == 0 {
			rep.Untestable++
			alive[fi] = false
			continue
		}
		rep.PodemCalls++
		cube, backtracks, status := eng.podem(sites, o.MaxBacktracks)
		rep.Backtracks += backtracks
		switch status {
		case statusRedundant:
			rep.Untestable++
			alive[fi] = false
			continue
		case statusAborted:
			rep.Aborted++
			alive[fi] = false
			continue
		}
		// Slice the frame-major PI cube into one pattern per cycle.
		test := make([]faultsim.Pattern, o.Frames)
		for f := 0; f < o.Frames; f++ {
			pat := make(faultsim.Pattern, um.PIsPerFrame)
			for i := 0; i < um.PIsPerFrame; i++ {
				switch cube[f*um.PIsPerFrame+i] {
				case lo:
					pat[i] = 0
				case hi:
					pat[i] = 1
				default:
					pat[i] = uint8(rng.Intn(2))
				}
			}
			test[f] = pat
		}
		rep.Tests = append(rep.Tests, test)
		// Drop everything this test detects (applied from power-on); only
		// still-alive faults are worth re-simulating.
		idxs := aliveIdx()
		res, err := dropSim.RunOn(test, idxs)
		if err != nil {
			return nil, err
		}
		dropped := 0
		for _, idx := range idxs {
			if res.FirstDetected[idx] >= 0 {
				alive[idx] = false
				rep.Detected++
				dropped++
			}
		}
		if dropped == 0 {
			// PODEM promised detection but simulation disagrees: the random
			// fill can only add detections, so this indicates an engine bug.
			return nil, fmt.Errorf("atpg: sequential test for %s did not detect its target", faults[fi].Desc)
		}
	}
	return rep, nil
}

// RunTestSet fault-simulates a set of power-on test sequences and returns
// the union coverage over the given fault list.
func RunTestSet(nl *netlist.Netlist, faults []faultsim.Fault, tests [][]faultsim.Pattern) (float64, error) {
	fs, err := faultsim.New(nl, faults)
	if err != nil {
		return 0, err
	}
	detected := make([]bool, len(faults))
	remaining := make([]int, len(faults))
	for i := range remaining {
		remaining[i] = i
	}
	for _, t := range tests {
		if len(remaining) == 0 {
			break
		}
		res, err := fs.RunOn(t, remaining)
		if err != nil {
			return 0, err
		}
		next := remaining[:0]
		for _, i := range remaining {
			if res.FirstDetected[i] >= 0 {
				detected[i] = true
			} else {
				next = append(next, i)
			}
		}
		remaining = next
	}
	n := 0
	for _, d := range detected {
		if d {
			n++
		}
	}
	if len(faults) == 0 {
		return 0, nil
	}
	return float64(n) / float64(len(faults)), nil
}
