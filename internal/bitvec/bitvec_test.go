package bitvec

import (
	"testing"
	"testing/quick"
)

func TestNewTruncates(t *testing.T) {
	v := New(0xFF, 4)
	if v.Uint() != 0xF {
		t.Fatalf("New(0xFF,4) = %v, want 4'b1111", v)
	}
	if v.Width() != 4 {
		t.Fatalf("width = %d, want 4", v.Width())
	}
}

func TestNewPanicsOnBadWidth(t *testing.T) {
	for _, w := range []int{0, -1, 65, 1000} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New with width %d did not panic", w)
				}
			}()
			New(0, w)
		}()
	}
}

func TestZeroOnesBool(t *testing.T) {
	if !Zero(8).IsZero() {
		t.Error("Zero(8) not zero")
	}
	if Ones(8).Uint() != 0xFF {
		t.Errorf("Ones(8) = %x", Ones(8).Uint())
	}
	if Ones(64).Uint() != ^uint64(0) {
		t.Errorf("Ones(64) = %x", Ones(64).Uint())
	}
	if Bool(true).Uint() != 1 || Bool(false).Uint() != 0 {
		t.Error("Bool broken")
	}
	if !Bool(true).IsTrue() || Bool(false).IsTrue() {
		t.Error("IsTrue broken")
	}
}

func TestBitAndSetBit(t *testing.T) {
	v := New(0b1010, 4)
	want := []uint64{0, 1, 0, 1}
	for i, w := range want {
		if v.Bit(i) != w {
			t.Errorf("bit %d = %d, want %d", i, v.Bit(i), w)
		}
	}
	v2 := v.SetBit(0, 1).SetBit(3, 0)
	if v2.Uint() != 0b0011 {
		t.Errorf("after SetBit: %v", v2)
	}
	if v.Uint() != 0b1010 {
		t.Error("SetBit mutated receiver")
	}
}

func TestBitPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Bit out of range did not panic")
		}
	}()
	New(0, 4).Bit(4)
}

func TestSliceConcat(t *testing.T) {
	v := New(0b110101, 6)
	s := v.Slice(4, 2) // bits 4..2 = 101
	if s.Width() != 3 || s.Uint() != 0b101 {
		t.Errorf("slice = %v", s)
	}
	c := New(0b11, 2).Concat(New(0b001, 3))
	if c.Width() != 5 || c.Uint() != 0b11001 {
		t.Errorf("concat = %v", c)
	}
}

func TestResize(t *testing.T) {
	v := New(0b1011, 4)
	if got := v.Resize(2); got.Uint() != 0b11 {
		t.Errorf("truncate = %v", got)
	}
	if got := v.Resize(8); got.Uint() != 0b1011 || got.Width() != 8 {
		t.Errorf("extend = %v", got)
	}
}

func TestWidthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("And with mismatched widths did not panic")
		}
	}()
	New(1, 4).And(New(1, 5))
}

func TestLogicOps(t *testing.T) {
	a, b := New(0b1100, 4), New(0b1010, 4)
	cases := []struct {
		name string
		got  BV
		want uint64
	}{
		{"and", a.And(b), 0b1000},
		{"or", a.Or(b), 0b1110},
		{"xor", a.Xor(b), 0b0110},
		{"nand", a.Nand(b), 0b0111},
		{"nor", a.Nor(b), 0b0001},
		{"xnor", a.Xnor(b), 0b1001},
		{"not", a.Not(), 0b0011},
	}
	for _, c := range cases {
		if c.got.Uint() != c.want {
			t.Errorf("%s = %04b, want %04b", c.name, c.got.Uint(), c.want)
		}
	}
}

func TestArithWraps(t *testing.T) {
	a := New(0xF, 4)
	if got := a.Add(New(1, 4)); got.Uint() != 0 {
		t.Errorf("0xF+1 = %v, want wrap to 0", got)
	}
	if got := Zero(4).Sub(New(1, 4)); got.Uint() != 0xF {
		t.Errorf("0-1 = %v, want 0xF", got)
	}
	if got := New(5, 4).Mul(New(7, 4)); got.Uint() != (35 & 0xF) {
		t.Errorf("5*7 mod 16 = %v", got)
	}
	if got := New(3, 4).Neg(); got.Uint() != 13 {
		t.Errorf("-3 = %v, want 13", got)
	}
}

func TestShifts(t *testing.T) {
	a := New(0b0110, 4)
	if got := a.Shl(New(1, 4)); got.Uint() != 0b1100 {
		t.Errorf("shl 1 = %v", got)
	}
	if got := a.Shr(New(2, 4)); got.Uint() != 0b0001 {
		t.Errorf("shr 2 = %v", got)
	}
	if got := a.Shl(New(4, 4)); !got.IsZero() {
		t.Errorf("shl >= width = %v, want 0", got)
	}
	if got := a.Shr(New(15, 4)); !got.IsZero() {
		t.Errorf("shr >= width = %v, want 0", got)
	}
}

func TestComparisons(t *testing.T) {
	a, b := New(3, 4), New(5, 4)
	checks := []struct {
		name string
		got  BV
		want bool
	}{
		{"eq", a.Eq(a), true}, {"eq2", a.Eq(b), false},
		{"ne", a.Ne(b), true}, {"lt", a.Lt(b), true},
		{"le", a.Le(a), true}, {"gt", b.Gt(a), true},
		{"ge", a.Ge(b), false},
	}
	for _, c := range checks {
		if c.got.IsTrue() != c.want {
			t.Errorf("%s: got %v, want %v", c.name, c.got, c.want)
		}
	}
}

func TestReductions(t *testing.T) {
	if !Ones(7).ReduceAnd().IsTrue() || New(0b011, 3).ReduceAnd().IsTrue() {
		t.Error("ReduceAnd broken")
	}
	if !New(0b010, 3).ReduceOr().IsTrue() || Zero(3).ReduceOr().IsTrue() {
		t.Error("ReduceOr broken")
	}
	if !New(0b0111, 4).ReduceXor().IsTrue() || New(0b0110, 4).ReduceXor().IsTrue() {
		t.Error("ReduceXor broken")
	}
}

func TestPopCount(t *testing.T) {
	if got := New(0b1011_0110, 8).PopCount(); got != 5 {
		t.Errorf("popcount = %d, want 5", got)
	}
	if got := Zero(8).PopCount(); got != 0 {
		t.Errorf("popcount zero = %d", got)
	}
}

func TestString(t *testing.T) {
	if s := New(0b101, 3).String(); s != "3'b101" {
		t.Errorf("String = %q", s)
	}
	if s := (BV{}).String(); s != "<invalid>" {
		t.Errorf("zero String = %q", s)
	}
}

// --- property-based tests -------------------------------------------------

// arb clamps arbitrary quick-generated inputs to a legal width and value.
func arb(v uint64, w uint8) BV {
	width := int(w%MaxWidth) + 1
	return New(v, width)
}

func TestPropDeMorgan(t *testing.T) {
	f := func(x, y uint64, w uint8) bool {
		a, b := arb(x, w), arb(y, uint8(arb(x, w).Width()-1))
		b = b.Resize(a.Width())
		return a.Nand(b).Equal(a.Not().Or(b.Not())) &&
			a.Nor(b).Equal(a.Not().And(b.Not()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropXorSelfInverse(t *testing.T) {
	f := func(x, y uint64, w uint8) bool {
		a := arb(x, w)
		b := New(y, a.Width())
		return a.Xor(b).Xor(b).Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropAddSubInverse(t *testing.T) {
	f := func(x, y uint64, w uint8) bool {
		a := arb(x, w)
		b := New(y, a.Width())
		return a.Add(b).Sub(b).Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropNotInvolution(t *testing.T) {
	f := func(x uint64, w uint8) bool {
		a := arb(x, w)
		return a.Not().Not().Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropConcatSliceRoundTrip(t *testing.T) {
	f := func(x, y uint64, wa, wb uint8) bool {
		a := New(x, int(wa%32)+1)
		b := New(y, int(wb%32)+1)
		c := a.Concat(b)
		gotA := c.Slice(c.Width()-1, b.Width())
		gotB := c.Slice(b.Width()-1, 0)
		return gotA.Equal(a) && gotB.Equal(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropReduceXorMatchesPopCount(t *testing.T) {
	f := func(x uint64, w uint8) bool {
		a := arb(x, w)
		return a.ReduceXor().IsTrue() == (a.PopCount()%2 == 1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
