// Package bitvec implements fixed-width unsigned bit vectors of 1 to 64
// bits. Values are the data plane of both the behavioral simulator and the
// synthesizer: every MHDL signal, register and constant carries a BV.
//
// A BV is a value type; all operations return new values and never mutate
// their operands. Operations are width-checked: combining vectors of
// different widths panics, because a width mismatch is always a programming
// error upstream (the HDL type checker rejects mismatched source before
// simulation starts).
package bitvec

import (
	"fmt"
	"strings"
)

// MaxWidth is the largest supported vector width in bits.
const MaxWidth = 64

// BV is a fixed-width unsigned bit vector. The zero value is a 0-width
// invalid vector; construct values with New, Zero, Ones or FromUint.
type BV struct {
	bits  uint64
	width uint8
}

// New returns a BV of the given width holding value v truncated to width
// bits. It panics if width is outside [1, MaxWidth].
func New(v uint64, width int) BV {
	checkWidth(width)
	return BV{bits: v & mask(width), width: uint8(width)}
}

// Zero returns the all-zeros vector of the given width.
func Zero(width int) BV { return New(0, width) }

// Ones returns the all-ones vector of the given width.
func Ones(width int) BV { return New(^uint64(0), width) }

// Bool returns a 1-bit vector holding 1 if b is true and 0 otherwise.
func Bool(b bool) BV {
	if b {
		return New(1, 1)
	}
	return New(0, 1)
}

func checkWidth(width int) {
	if width < 1 || width > MaxWidth {
		panic(fmt.Sprintf("bitvec: width %d out of range [1,%d]", width, MaxWidth))
	}
}

func mask(width int) uint64 {
	if width >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(width)) - 1
}

// Width reports the vector's width in bits. A zero-value BV has width 0.
func (a BV) Width() int { return int(a.width) }

// Uint returns the vector's value as a uint64.
func (a BV) Uint() uint64 { return a.bits }

// IsZero reports whether every bit is 0.
func (a BV) IsZero() bool { return a.bits == 0 }

// IsTrue reports whether the vector is non-zero. It is the truth test used
// by if/case guards in the simulator.
func (a BV) IsTrue() bool { return a.bits != 0 }

// Bit returns bit i (0 = least significant) as 0 or 1. It panics if i is
// out of range.
func (a BV) Bit(i int) uint64 {
	if i < 0 || i >= a.Width() {
		panic(fmt.Sprintf("bitvec: bit index %d out of range for width %d", i, a.Width()))
	}
	return (a.bits >> uint(i)) & 1
}

// SetBit returns a copy of a with bit i set to v (0 or 1).
func (a BV) SetBit(i int, v uint64) BV {
	if i < 0 || i >= a.Width() {
		panic(fmt.Sprintf("bitvec: bit index %d out of range for width %d", i, a.Width()))
	}
	if v&1 == 1 {
		return BV{bits: a.bits | (uint64(1) << uint(i)), width: a.width}
	}
	return BV{bits: a.bits &^ (uint64(1) << uint(i)), width: a.width}
}

// Slice returns bits [lo, hi] inclusive (hi >= lo) as a vector of width
// hi-lo+1. It panics on out-of-range indices.
func (a BV) Slice(hi, lo int) BV {
	if lo < 0 || hi >= a.Width() || hi < lo {
		panic(fmt.Sprintf("bitvec: slice [%d:%d] out of range for width %d", hi, lo, a.Width()))
	}
	w := hi - lo + 1
	return New(a.bits>>uint(lo), w)
}

// Concat returns a ++ b with a occupying the high-order bits. The combined
// width must not exceed MaxWidth.
func (a BV) Concat(b BV) BV {
	w := a.Width() + b.Width()
	if w > MaxWidth {
		panic(fmt.Sprintf("bitvec: concat width %d exceeds %d", w, MaxWidth))
	}
	return New(a.bits<<uint(b.Width())|b.bits, w)
}

// Resize returns a zero-extended or truncated copy of a with the new width.
func (a BV) Resize(width int) BV { return New(a.bits, width) }

func (a BV) check(b BV, op string) {
	if a.width != b.width {
		panic(fmt.Sprintf("bitvec: %s width mismatch %d vs %d", op, a.width, b.width))
	}
}

// And returns the bitwise AND of a and b.
func (a BV) And(b BV) BV { a.check(b, "and"); return BV{a.bits & b.bits, a.width} }

// Or returns the bitwise OR of a and b.
func (a BV) Or(b BV) BV { a.check(b, "or"); return BV{a.bits | b.bits, a.width} }

// Xor returns the bitwise XOR of a and b.
func (a BV) Xor(b BV) BV { a.check(b, "xor"); return BV{a.bits ^ b.bits, a.width} }

// Nand returns the bitwise NAND of a and b.
func (a BV) Nand(b BV) BV { return a.And(b).Not() }

// Nor returns the bitwise NOR of a and b.
func (a BV) Nor(b BV) BV { return a.Or(b).Not() }

// Xnor returns the bitwise XNOR of a and b.
func (a BV) Xnor(b BV) BV { return a.Xor(b).Not() }

// Not returns the bitwise complement of a.
func (a BV) Not() BV { return BV{^a.bits & mask(a.Width()), a.width} }

// Add returns a + b modulo 2^width.
func (a BV) Add(b BV) BV { a.check(b, "add"); return New(a.bits+b.bits, a.Width()) }

// Sub returns a - b modulo 2^width.
func (a BV) Sub(b BV) BV { a.check(b, "sub"); return New(a.bits-b.bits, a.Width()) }

// Mul returns a * b modulo 2^width.
func (a BV) Mul(b BV) BV { a.check(b, "mul"); return New(a.bits*b.bits, a.Width()) }

// Neg returns the two's-complement negation of a.
func (a BV) Neg() BV { return New(-a.bits, a.Width()) }

// Shl returns a shifted left by b bit positions (zero fill). Shift counts
// at or beyond the width yield zero.
func (a BV) Shl(b BV) BV {
	if b.bits >= uint64(a.Width()) {
		return Zero(a.Width())
	}
	return New(a.bits<<b.bits, a.Width())
}

// Shr returns a shifted right by b bit positions (logical, zero fill).
func (a BV) Shr(b BV) BV {
	if b.bits >= uint64(a.Width()) {
		return Zero(a.Width())
	}
	return New(a.bits>>b.bits, a.Width())
}

// Eq returns Bool(a == b).
func (a BV) Eq(b BV) BV { a.check(b, "eq"); return Bool(a.bits == b.bits) }

// Ne returns Bool(a != b).
func (a BV) Ne(b BV) BV { a.check(b, "ne"); return Bool(a.bits != b.bits) }

// Lt returns Bool(a < b), unsigned.
func (a BV) Lt(b BV) BV { a.check(b, "lt"); return Bool(a.bits < b.bits) }

// Le returns Bool(a <= b), unsigned.
func (a BV) Le(b BV) BV { a.check(b, "le"); return Bool(a.bits <= b.bits) }

// Gt returns Bool(a > b), unsigned.
func (a BV) Gt(b BV) BV { a.check(b, "gt"); return Bool(a.bits > b.bits) }

// Ge returns Bool(a >= b), unsigned.
func (a BV) Ge(b BV) BV { a.check(b, "ge"); return Bool(a.bits >= b.bits) }

// Equal reports whether a and b have the same width and the same bits.
// Unlike Eq it is a Go-level comparison, not a 1-bit HDL result.
func (a BV) Equal(b BV) bool { return a.width == b.width && a.bits == b.bits }

// ReduceAnd returns Bool(all bits set).
func (a BV) ReduceAnd() BV { return Bool(a.bits == mask(a.Width())) }

// ReduceOr returns Bool(any bit set).
func (a BV) ReduceOr() BV { return Bool(a.bits != 0) }

// ReduceXor returns the parity of a as a 1-bit vector.
func (a BV) ReduceXor() BV {
	x := a.bits
	x ^= x >> 32
	x ^= x >> 16
	x ^= x >> 8
	x ^= x >> 4
	x ^= x >> 2
	x ^= x >> 1
	return Bool(x&1 == 1)
}

// PopCount returns the number of set bits.
func (a BV) PopCount() int {
	n := 0
	for x := a.bits; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// String renders the vector as width'bBITS, e.g. 3'b101, matching common
// HDL literal notation.
func (a BV) String() string {
	if a.width == 0 {
		return "<invalid>"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d'b", a.width)
	for i := a.Width() - 1; i >= 0; i-- {
		if a.Bit(i) == 1 {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}
