// Package par provides the one concurrency shape this repository uses:
// a fixed-size worker pool fanning a function out over job indices, with
// results written by index so every caller stays deterministic regardless
// of worker count. The mutant scoring pool, batch compilation and mutant
// construction all share it.
package par

import (
	"runtime"
	"sync"
)

// Workers resolves a worker-count knob: n <= 0 selects all cores, and the
// count never exceeds jobs (no idle goroutines).
func Workers(n, jobs int) int {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > jobs {
		n = jobs
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Indexed runs fn for every index in [0, jobs) on a pool of the given
// size (resolved through Workers). fn receives the worker number and the
// job index; it must confine its writes to per-index or per-worker state.
func Indexed(jobs, workers int, fn func(w, i int)) {
	workers = Workers(workers, jobs)
	if workers <= 1 {
		for i := 0; i < jobs; i++ {
			fn(0, i)
		}
		return
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range next {
				fn(w, i)
			}
		}(w)
	}
	for i := 0; i < jobs; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
