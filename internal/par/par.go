// Package par provides the one concurrency shape this repository uses:
// a fixed-size worker pool fanning a function out over job indices, with
// results written by index so every caller stays deterministic regardless
// of worker count. The mutant scoring pool, batch compilation and mutant
// construction all share it.
package par

import (
	"context"
	"runtime"
	"sync"
)

// Workers resolves a worker-count knob: n <= 0 selects all cores, and the
// count never exceeds jobs (no idle goroutines).
func Workers(n, jobs int) int {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > jobs {
		n = jobs
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Indexed runs fn for every index in [0, jobs) on a pool of the given
// size (resolved through Workers). fn receives the worker number and the
// job index; it must confine its writes to per-index or per-worker state.
func Indexed(jobs, workers int, fn func(w, i int)) {
	IndexedCtx(nil, jobs, workers, fn, nil)
}

// IndexedCtx is Indexed with cooperative cancellation and completion
// reporting. A nil ctx never cancels. Once ctx is done, no new job is
// dispatched (jobs already running finish — fn should poll ctx itself
// when a single job is long) and the pool is drained before the
// context's error is returned, so no goroutine outlives the call. done,
// when non-nil, is invoked after each completed job with the number of
// jobs finished so far; it runs on worker goroutines, so it must be safe
// for concurrent use. The results written by fn stay deterministic under
// cancellation in the sense that every job either ran completely or not
// at all — but which jobs ran depends on timing, so callers treat a
// non-nil error as "partial, discard".
func IndexedCtx(ctx context.Context, jobs, workers int, fn func(w, i int), done func(completed int)) error {
	workers = Workers(workers, jobs)
	if workers <= 1 {
		for i := 0; i < jobs; i++ {
			if ctx != nil && ctx.Err() != nil {
				return ctx.Err()
			}
			fn(0, i)
			if done != nil {
				done(i + 1)
			}
		}
		if ctx != nil {
			return ctx.Err()
		}
		return nil
	}
	next := make(chan int)
	var doneMu sync.Mutex
	completed := 0
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range next {
				if ctx != nil && ctx.Err() != nil {
					continue // drain without working
				}
				fn(w, i)
				if done != nil {
					// Count and deliver under one lock so the reported
					// completion counts are strictly increasing — a hook
					// must never observe the count going backwards.
					doneMu.Lock()
					completed++
					done(completed)
					doneMu.Unlock()
				}
			}
		}(w)
	}
dispatch:
	for i := 0; i < jobs; i++ {
		if ctx == nil {
			next <- i
			continue
		}
		select {
		case next <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(next)
	wg.Wait()
	if ctx != nil {
		return ctx.Err()
	}
	return nil
}
