package par

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	cores := runtime.GOMAXPROCS(0)
	cases := []struct {
		n, jobs, want int
	}{
		{0, 1 << 30, cores},               // 0 selects all cores
		{-3, 1 << 30, cores},              // any non-positive value selects all cores
		{4, 2, 2},                         // capped by jobs
		{4, 0, 1},                         // jobs == 0 still resolves to at least 1
		{0, 0, 1},                         // both degenerate
		{-1, 0, 1},                        // negative + no jobs
		{1, 10, 1},                        // explicit serial
		{7, 7, 7},                         // exact fit
		{3, 1 << 30, 3},                   // explicit pool size passes through
		{0, min(2, cores), min(2, cores)}, // all cores capped by tiny job count
	}
	for _, c := range cases {
		if got := Workers(c.n, c.jobs); got != c.want {
			t.Errorf("Workers(%d, %d) = %d, want %d", c.n, c.jobs, got, c.want)
		}
	}
}

// TestIndexedCompleteness runs every (jobs, workers) combination and
// checks fn ran exactly once per index — including oversubscribed pools
// and the serial fast path. Run under -race this also proves the handoff
// between the feeding goroutine and the workers is clean.
func TestIndexedCompleteness(t *testing.T) {
	for _, jobs := range []int{0, 1, 7, 64, 257} {
		for _, workers := range []int{1, 2, 4, 9, 100, 0} {
			t.Run(fmt.Sprintf("jobs=%d/workers=%d", jobs, workers), func(t *testing.T) {
				counts := make([]int32, jobs)
				Indexed(jobs, workers, func(w, i int) {
					if i < 0 || i >= jobs {
						t.Errorf("index %d out of range [0,%d)", i, jobs)
						return
					}
					atomic.AddInt32(&counts[i], 1)
				})
				for i, c := range counts {
					if c != 1 {
						t.Errorf("index %d ran %d times", i, c)
					}
				}
			})
		}
	}
}

// TestIndexedDeterministicByIndex pins the contract callers rely on:
// writes confined to per-index slots produce identical results for every
// worker count.
func TestIndexedDeterministicByIndex(t *testing.T) {
	const jobs = 100
	var ref []int
	for _, workers := range []int{1, 2, 3, 16, 0} {
		out := make([]int, jobs)
		Indexed(jobs, workers, func(w, i int) {
			out[i] = 3*i*i + 1
		})
		if ref == nil {
			ref = out
			continue
		}
		for i := range out {
			if out[i] != ref[i] {
				t.Fatalf("workers=%d: out[%d] = %d, reference %d", workers, i, out[i], ref[i])
			}
		}
	}
}

// TestIndexedWorkerNumbers checks the worker argument stays within the
// resolved pool size, so per-worker state arrays can be sized with
// Workers().
func TestIndexedWorkerNumbers(t *testing.T) {
	const jobs, workers = 50, 4
	n := Workers(workers, jobs)
	seen := make([]int32, n)
	Indexed(jobs, workers, func(w, i int) {
		if w < 0 || w >= n {
			t.Errorf("worker number %d out of range [0,%d)", w, n)
			return
		}
		atomic.AddInt32(&seen[w], 1)
	})
	total := int32(0)
	for _, c := range seen {
		total += c
	}
	if total != jobs {
		t.Errorf("worker counts sum to %d, want %d", total, jobs)
	}
}

// TestIndexedCtxCompletion checks the done callback counts every job
// exactly once and ends at the job total, for serial and pooled paths.
func TestIndexedCtxCompletion(t *testing.T) {
	for _, workers := range []int{1, 3, 0} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			const jobs = 37
			var ran int32
			var maxDone int32
			err := IndexedCtx(context.Background(), jobs, workers, func(w, i int) {
				atomic.AddInt32(&ran, 1)
			}, func(completed int) {
				for {
					cur := atomic.LoadInt32(&maxDone)
					if int32(completed) <= cur || atomic.CompareAndSwapInt32(&maxDone, cur, int32(completed)) {
						return
					}
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			if ran != jobs || maxDone != jobs {
				t.Errorf("ran %d jobs, max completion %d, want %d", ran, maxDone, jobs)
			}
		})
	}
}

// TestIndexedCtxCancellation cancels mid-dispatch: the call must return
// the context error, run only a prefix of the jobs, and leave no worker
// goroutine behind (the -race run backs the cleanliness claim).
func TestIndexedCtxCancellation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			const jobs = 10000
			ctx, cancel := context.WithCancel(context.Background())
			var ran int32
			err := IndexedCtx(ctx, jobs, workers, func(w, i int) {
				if atomic.AddInt32(&ran, 1) == 3 {
					cancel()
				}
			}, nil)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			if n := atomic.LoadInt32(&ran); int(n) >= jobs {
				t.Errorf("all %d jobs ran despite cancellation", n)
			}
		})
	}
}

// TestIndexedCtxPreCancelled never runs a single job when the context is
// already done at call time.
func TestIndexedCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran int32
	err := IndexedCtx(ctx, 100, 4, func(w, i int) { atomic.AddInt32(&ran, 1) }, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran != 0 {
		t.Errorf("%d jobs ran under a pre-cancelled context", ran)
	}
}
