package sampling

import (
	"testing"
	"testing/quick"

	"repro/internal/circuits"
	"repro/internal/mutation"
)

func b01Mutants(t *testing.T) []*mutation.Mutant {
	t.Helper()
	return mutation.Generate(circuits.MustLoad("b01"))
}

func TestSampleSize(t *testing.T) {
	cases := []struct {
		total int
		frac  float64
		want  int
	}{
		{100, 0.10, 10}, {255, 0.10, 26}, {9, 0.10, 1}, {0, 0.10, 0},
		{10, 0.99, 10}, {10, 2.0, 10}, {3, 0.5, 2},
	}
	for _, tc := range cases {
		if got := SampleSize(tc.total, tc.frac); got != tc.want {
			t.Errorf("SampleSize(%d, %v) = %d, want %d", tc.total, tc.frac, got, tc.want)
		}
	}
}

func TestRandomSampleProperties(t *testing.T) {
	ms := b01Mutants(t)
	n := SampleSize(len(ms), 0.10)
	got := Random(ms, n, 1)
	if len(got) != n {
		t.Fatalf("sample size %d, want %d", len(got), n)
	}
	seen := make(map[int]bool)
	for _, m := range got {
		if seen[m.ID] {
			t.Fatalf("duplicate mutant %d", m.ID)
		}
		seen[m.ID] = true
	}
	// Deterministic per seed.
	again := Random(ms, n, 1)
	for i := range got {
		if got[i].ID != again[i].ID {
			t.Fatal("same seed produced different samples")
		}
	}
	other := Random(ms, n, 2)
	same := true
	for i := range got {
		if got[i].ID != other[i].ID {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical samples")
	}
}

func TestRandomSampleWholePopulation(t *testing.T) {
	ms := b01Mutants(t)
	got := Random(ms, len(ms)+10, 1)
	if len(got) != len(ms) {
		t.Errorf("oversized request returned %d of %d", len(got), len(ms))
	}
}

func TestWeightedFavorsHeavyOperators(t *testing.T) {
	ms := b01Mutants(t)
	n := SampleSize(len(ms), 0.10)
	w := Weights{mutation.CR: 100, mutation.CVR: 10, mutation.VR: 5, mutation.LOR: 1}
	alloc := Allocation(ms, n, w, 1)
	if alloc[mutation.CR] <= alloc[mutation.LOR] {
		t.Errorf("CR (w=100) got %d <= LOR (w=1) got %d", alloc[mutation.CR], alloc[mutation.LOR])
	}
	total := 0
	for _, k := range alloc {
		total += k
	}
	if total != n {
		t.Errorf("allocation total %d != %d", total, n)
	}
}

func TestWeightedAndRandomDrawSameCount(t *testing.T) {
	// The paper's comparison hinges on both strategies extracting exactly
	// the same number of mutants.
	ms := b01Mutants(t)
	n := SampleSize(len(ms), 0.10)
	w := Weights{mutation.CR: 3, mutation.LOR: 1}
	a := Weighted(ms, n, w, 5)
	b := Random(ms, n, 5)
	if len(a) != len(b) || len(a) != n {
		t.Fatalf("sizes differ: weighted %d random %d want %d", len(a), len(b), n)
	}
}

func TestWeightedCapsAtClassSize(t *testing.T) {
	ms := b01Mutants(t)
	counts := mutation.CountByOperator(ms)
	// All weight on AOR, which has very few mutants; the allocator must
	// spill the remainder to other classes.
	n := counts[mutation.AOR] + 5
	w := Weights{mutation.AOR: 1000}
	sample := Weighted(ms, n, w, 2)
	if len(sample) != n {
		t.Fatalf("sample %d, want %d", len(sample), n)
	}
	got := make(map[mutation.Operator]int)
	for _, m := range sample {
		got[m.Op]++
	}
	if got[mutation.AOR] != counts[mutation.AOR] {
		t.Errorf("AOR class not exhausted: %d of %d", got[mutation.AOR], counts[mutation.AOR])
	}
}

func TestWeightedZeroWeightsDegradeGracefully(t *testing.T) {
	ms := b01Mutants(t)
	n := SampleSize(len(ms), 0.10)
	sample := Weighted(ms, n, Weights{}, 3)
	if len(sample) != n {
		t.Fatalf("zero-weight sample size %d, want %d", len(sample), n)
	}
}

func TestWeightedDeterministic(t *testing.T) {
	ms := b01Mutants(t)
	w := Weights{mutation.CR: 2, mutation.CVR: 1}
	a := Weighted(ms, 20, w, 7)
	b := Weighted(ms, 20, w, 7)
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Fatal("same seed produced different weighted samples")
		}
	}
}

func TestWeightedNoDuplicates(t *testing.T) {
	ms := b01Mutants(t)
	sample := Weighted(ms, 25, Weights{mutation.CR: 1, mutation.VR: 1}, 11)
	seen := make(map[int]bool)
	for _, m := range sample {
		if seen[m.ID] {
			t.Fatalf("duplicate mutant %d in weighted sample", m.ID)
		}
		seen[m.ID] = true
	}
}

// Property: for any weight assignment and size, Weighted returns exactly
// min(n, M) distinct mutants.
func TestPropWeightedSizeExact(t *testing.T) {
	ms := b01Mutants(t)
	f := func(nRaw uint16, w1, w2, w3 uint8, seed int64) bool {
		n := int(nRaw) % (len(ms) + 20)
		w := Weights{
			mutation.CR:  float64(w1),
			mutation.LOR: float64(w2),
			mutation.VR:  float64(w3),
		}
		sample := Weighted(ms, n, w, seed)
		want := n
		if want > len(ms) {
			want = len(ms)
		}
		if len(sample) != want {
			return false
		}
		seen := make(map[int]bool)
		for _, m := range sample {
			if seen[m.ID] {
				return false
			}
			seen[m.ID] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
