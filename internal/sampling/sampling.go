// Package sampling implements mutant sampling strategies: the classical
// uniform-random x% sample (Offutt & Untch's "Mutation 2000" baseline the
// paper compares against) and the paper's contribution, test-oriented
// sampling, which draws from each mutation operator's class in proportion
// to that operator's measured stuck-at fault-coverage efficiency.
//
// Both strategies extract exactly the same number of mutants, so any
// difference in downstream mutation score or NLFCE is attributable to the
// allocation alone.
package sampling

import (
	"math/rand"
	"sort"

	"repro/internal/mutation"
)

// SampleSize converts a fraction into the mutant count both strategies
// draw: round(frac*M), at least 1 when M > 0.
func SampleSize(total int, frac float64) int {
	if total == 0 {
		return 0
	}
	n := int(frac*float64(total) + 0.5)
	if n < 1 {
		n = 1
	}
	if n > total {
		n = total
	}
	return n
}

// Random draws a uniform sample of n mutants (the classical strategy).
// The draw is deterministic for a given seed.
func Random(ms []*mutation.Mutant, n int, seed int64) []*mutation.Mutant {
	if n >= len(ms) {
		return append([]*mutation.Mutant(nil), ms...)
	}
	rng := rand.New(rand.NewSource(seed))
	idx := rng.Perm(len(ms))[:n]
	sort.Ints(idx)
	out := make([]*mutation.Mutant, n)
	for i, j := range idx {
		out[i] = ms[j]
	}
	return out
}

// Weights maps each operator to a non-negative sampling weight. The
// test-oriented strategy derives them from per-operator NLFCE profiles
// (see core.DeriveWeights); any non-negative figure of merit works.
type Weights map[mutation.Operator]float64

// Weighted draws n mutants with per-class sampling rates proportional to
// the class weights — "the proportion of mutants selected from each
// operator is function of its efficiency" — so a class's share is
// weight(op) × |class(op)| (largest-remainder apportionment, capped by
// class size, deficits redistributed), then uniform within each class.
// With equal weights the allocation reduces to the random strategy's
// expected composition. If all applicable weights are zero the allocation
// degenerates the same way.
func Weighted(ms []*mutation.Mutant, n int, w Weights, seed int64) []*mutation.Mutant {
	if n >= len(ms) {
		return append([]*mutation.Mutant(nil), ms...)
	}
	classes := mutation.ByOperator(ms)
	ops := make([]mutation.Operator, 0, len(classes))
	for op := range classes {
		ops = append(ops, op)
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i] < ops[j] })

	totalW := 0.0
	for _, op := range ops {
		if w[op] > 0 {
			totalW += w[op]
		}
	}
	// A class's apportionment mass is weight × size: the weight acts as a
	// per-class sampling *rate* multiplier.
	weightOf := func(op mutation.Operator) float64 {
		if totalW == 0 {
			return float64(len(classes[op])) // degenerate: rate-uniform
		}
		return w[op] * float64(len(classes[op]))
	}

	// Largest-remainder apportionment with per-class capacity caps.
	alloc := make(map[mutation.Operator]int, len(ops))
	type frac struct {
		op  mutation.Operator
		rem float64
	}
	sumW := 0.0
	for _, op := range ops {
		sumW += weightOf(op)
	}
	var fracs []frac
	assigned := 0
	for _, op := range ops {
		share := 0.0
		if sumW > 0 {
			share = float64(n) * weightOf(op) / sumW
		}
		base := int(share)
		if base > len(classes[op]) {
			base = len(classes[op])
		}
		alloc[op] = base
		assigned += base
		fracs = append(fracs, frac{op: op, rem: share - float64(base)})
	}
	sort.SliceStable(fracs, func(i, j int) bool { return fracs[i].rem > fracs[j].rem })
	for assigned < n {
		progress := false
		for _, f := range fracs {
			if assigned == n {
				break
			}
			if alloc[f.op] < len(classes[f.op]) {
				alloc[f.op]++
				assigned++
				progress = true
			}
		}
		if !progress {
			break // every class exhausted (n > total, guarded above)
		}
	}

	rng := rand.New(rand.NewSource(seed))
	var out []*mutation.Mutant
	for _, op := range ops {
		class := classes[op]
		k := alloc[op]
		if k >= len(class) {
			out = append(out, class...)
			continue
		}
		idx := rng.Perm(len(class))[:k]
		sort.Ints(idx)
		for _, j := range idx {
			out = append(out, class[j])
		}
	}
	return out
}

// Allocation reports how many mutants Weighted would draw per operator,
// for harness output and tests.
func Allocation(ms []*mutation.Mutant, n int, w Weights, seed int64) map[mutation.Operator]int {
	out := make(map[mutation.Operator]int)
	for _, m := range Weighted(ms, n, w, seed) {
		out[m.Op]++
	}
	return out
}
