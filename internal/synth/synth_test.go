package synth

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/circuits"
	"repro/internal/hdl"
	"repro/internal/netlist"
	"repro/internal/sim"
)

// crossValidate checks that the behavioral simulator and the synthesized
// netlist agree on nCycles of pseudo-random stimulus. This is the central
// synthesis-correctness property: both views derive from the same MHDL.
func crossValidate(t *testing.T, src string, nCycles int, seed int64) {
	t.Helper()
	c, err := hdl.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	nl, err := Synthesize(c)
	if err != nil {
		t.Fatalf("synth: %v", err)
	}
	bsim, err := sim.New(c)
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	ev, err := netlist.NewEvaluator(nl)
	if err != nil {
		t.Fatalf("eval: %v", err)
	}
	rng := rand.New(rand.NewSource(seed))
	bsim.Reset()
	ev.Reset()
	ins := c.Inputs()
	for cyc := 0; cyc < nCycles; cyc++ {
		v := make(sim.Vector, len(ins))
		for i, p := range ins {
			v[i] = bitvec.New(rng.Uint64(), p.Width)
		}
		want, err := bsim.Step(v)
		if err != nil {
			t.Fatalf("cycle %d: %v", cyc, err)
		}
		words, err := ev.Eval(PackVector(c, v))
		if err != nil {
			t.Fatalf("cycle %d: %v", cyc, err)
		}
		got := UnpackVector(c, words, 0)
		for j := range want {
			if !got[j].Equal(want[j]) {
				t.Fatalf("cycle %d output %d: netlist %v, simulator %v\ninput %v",
					cyc, j, got[j], want[j], v)
			}
		}
		ev.Clock()
	}
}

func TestSynthCounterMatchesSim(t *testing.T) {
	crossValidate(t, `
circuit counter {
  input en : bit;
  input rst : bit;
  output q : bits(3);
  output sat : bit;
  reg cnt : bits(3);
  const LIMIT : bits(3) = 3'd6;
  seq {
    if rst == 1 { cnt = 3'd0; }
    else if en == 1 and cnt < LIMIT { cnt = cnt + 1; }
  }
  comb {
    q = cnt;
    sat = cnt == LIMIT;
  }
}`, 200, 1)
}

func TestSynthArithmeticMatchesSim(t *testing.T) {
	crossValidate(t, `
circuit alu {
  input a : bits(6);
  input b : bits(6);
  input op : bits(2);
  output y : bits(6);
  output z : bit;
  comb {
    case op {
      when 2'd0: { y = a + b; }
      when 2'd1: { y = a - b; }
      when 2'd2: { y = a * b; }
      default: { y = -a; }
    }
    z = y == 6'd0;
  }
}`, 300, 2)
}

func TestSynthComparisonsMatchSim(t *testing.T) {
	crossValidate(t, `
circuit cmp {
  input a : bits(5);
  input b : bits(5);
  output lt : bit;
  output le : bit;
  output gt : bit;
  output ge : bit;
  output eq : bit;
  output ne : bit;
  comb {
    lt = a < b; le = a <= b; gt = a > b; ge = a >= b;
    eq = a == b; ne = a != b;
  }
}`, 300, 3)
}

func TestSynthShiftsMatchSim(t *testing.T) {
	crossValidate(t, `
circuit sh {
  input a : bits(8);
  input n : bits(4);
  output l : bits(8);
  output r : bits(8);
  output lc : bits(8);
  comb {
    l = a << n;
    r = a >> n;
    lc = a << 2;
  }
}`, 300, 4)
}

func TestSynthBitOpsMatchSim(t *testing.T) {
	crossValidate(t, `
circuit bops {
  input a : bits(4);
  input b : bits(4);
  input i : bits(3);
  output o1 : bits(4);
  output o2 : bit;
  output o3 : bits(8);
  output o4 : bits(2);
  output red : bits(3);
  comb {
    o1 = (a nand b) xor (a nor b);
    o2 = a[i];
    o3 = a ++ b;
    o4 = a[3:2];
    red = (rand a) ++ (ror b) ++ (rxor a);
  }
}`, 300, 5)
}

func TestSynthDynamicBitWriteMatchesSim(t *testing.T) {
	crossValidate(t, `
circuit dynw {
  input i : bits(2);
  input v : bit;
  output o : bits(4);
  comb {
    o = 4'b0000;
    o[i] = v;
  }
}`, 100, 6)
}

func TestSynthForLoopMatchesSim(t *testing.T) {
	crossValidate(t, `
circuit parity8 {
  input a : bits(8);
  output p : bit;
  wire acc : bits(9);
  comb {
    acc = 9'd0;
    for i in 0 .. 7 {
      acc[i + 1] = acc[i] xor a[i];
    }
    p = acc[8];
  }
}`, 200, 7)
}

func TestSynthRegisteredOutputMatchesSim(t *testing.T) {
	crossValidate(t, `
circuit pipe {
  input d : bits(4);
  output q : bits(4);
  reg st : bits(4);
  seq {
    st = d;
    q = st + 4'd1;
  }
}`, 100, 8)
}

func TestSynthSeqSwapMatchesSim(t *testing.T) {
	crossValidate(t, `
circuit swap {
  input go : bit;
  output oa : bits(4);
  output ob : bits(4);
  reg a : bits(4) = 4'd3;
  reg b : bits(4) = 4'd12;
  seq {
    if go == 1 { a = b; b = a; }
  }
  comb { oa = a; ob = b; }
}`, 60, 9)
}

func TestSynthNestedControlMatchesSim(t *testing.T) {
	crossValidate(t, `
circuit nest {
  input a : bits(3);
  input b : bits(3);
  input m : bits(2);
  output y : bits(3);
  reg acc : bits(3);
  seq {
    case m {
      when 2'd0: {
        if a > b { acc = a; } else { acc = b; }
      }
      when 2'd1: { acc = acc + 3'd1; }
      when 2'd2, 2'd3: {
        if (a and b) == 3'd0 { acc = 3'd7; }
      }
    }
  }
  comb { y = acc; }
}`, 300, 10)
}

func TestSynthNetlistShape(t *testing.T) {
	c, err := hdl.Parse(`
circuit tiny {
  input a : bit;
  input b : bit;
  output o : bit;
  comb { o = a and b; }
}`)
	if err != nil {
		t.Fatal(err)
	}
	nl, err := Synthesize(c)
	if err != nil {
		t.Fatal(err)
	}
	st := nl.Stats()
	if st.PIs != 2 || st.POs != 1 {
		t.Errorf("ports: %+v", st)
	}
	if st.Gates == 0 || st.Gates > 3 {
		t.Errorf("AND of two bits should be ~1 gate, got %d", st.Gates)
	}
	if st.FFs != 0 {
		t.Errorf("combinational circuit has FFs: %+v", st)
	}
}

func TestSynthSequentialHasFFs(t *testing.T) {
	c, _ := hdl.Parse(`
circuit r {
  input d : bits(5);
  output q : bits(5);
  reg st : bits(5);
  seq { st = d; }
  comb { q = st; }
}`)
	nl, err := Synthesize(c)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(nl.FFs); got != 5 {
		t.Errorf("FF count = %d, want 5", got)
	}
}

func TestSynthRegInitValue(t *testing.T) {
	c, _ := hdl.Parse(`
circuit iv {
  input d : bits(3);
  output q : bits(3);
  reg st : bits(3) = 3'd5;
  seq { st = d; }
  comb { q = st; }
}`)
	nl, err := Synthesize(c)
	if err != nil {
		t.Fatal(err)
	}
	ev, _ := netlist.NewEvaluator(nl)
	out, _ := ev.Eval(PackVector(c, sim.Vector{bitvec.Zero(3)}))
	got := UnpackVector(c, out, 0)
	if got[0].Uint() != 5 {
		t.Errorf("power-on q = %d, want 5", got[0].Uint())
	}
}

func TestPackVectorsLanes(t *testing.T) {
	c, _ := hdl.Parse(`
circuit id {
  input a : bits(2);
  output o : bits(2);
  comb { o = a; }
}`)
	nl, _ := Synthesize(c)
	ev, _ := netlist.NewEvaluator(nl)
	vs := []sim.Vector{
		{bitvec.New(0, 2)}, {bitvec.New(1, 2)}, {bitvec.New(2, 2)}, {bitvec.New(3, 2)},
	}
	out, _ := ev.Eval(PackVectors(c, vs))
	for lane := range vs {
		got := UnpackVector(c, out, lane)
		if got[0].Uint() != uint64(lane) {
			t.Errorf("lane %d: got %d", lane, got[0].Uint())
		}
	}
}

func TestStructuralHashingShrinksNetlist(t *testing.T) {
	// The same subexpression appears twice; hashing must share it.
	c, _ := hdl.Parse(`
circuit share {
  input a : bits(4);
  input b : bits(4);
  output o1 : bits(4);
  output o2 : bits(4);
  comb {
    o1 = (a and b) xor a;
    o2 = (a and b) xor b;
  }
}`)
	nl, err := Synthesize(c)
	if err != nil {
		t.Fatal(err)
	}
	// 4 shared ANDs + 8 XORs = 12; without sharing it would be 16.
	if g := nl.CombGateCount(); g > 12 {
		t.Errorf("gate count %d suggests no structural sharing", g)
	}
}

// TestSynthesizeDeterministic pins gate numbering run-to-run: repeated
// synthesis of the same circuit must produce deeply equal netlists in
// one process. Environments are maps, so any loop that emits gates while
// ranging one — the control-flow merges were the offender — leaks Go's
// per-process map iteration order into gate IDs: structurally identical
// netlists whose fault-list and ATPG search orders differ between runs
// (the seq top-off flake). Structural cross-checks cannot see that;
// only an in-process replay like this one can.
func TestSynthesizeDeterministic(t *testing.T) {
	for _, name := range []string{"b01", "b03", "b06", "c432"} {
		t.Run(name, func(t *testing.T) {
			c := circuits.MustLoad(name)
			ref, err := Synthesize(c)
			if err != nil {
				t.Fatal(err)
			}
			for r := 0; r < 4; r++ {
				nl, err := Synthesize(c)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(nl, ref) {
					t.Fatalf("replay %d: synthesized netlist differs (gate numbering is order-dependent)", r)
				}
			}
		})
	}
}
