// Package synth compiles MHDL circuits to gate-level netlists. The
// translation mirrors the behavioral simulator's two-phase cycle semantics
// exactly, so the netlist and the simulator are bit-identical on every
// input sequence — an invariant the test suite checks on random stimuli.
//
// Bit order convention: every multi-bit signal is blasted LSB first. The
// netlist's primary inputs are the behavioral inputs in declaration order,
// each expanded LSB first, and likewise for outputs; PackVector and
// UnpackVector convert between behavioral vectors and PI/PO words.
//
// The generated logic is structurally hashed and lightly folded (constant
// propagation, idempotence), which keeps fault lists close to what a real
// synthesis flow would hand the ATPG.
package synth

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/hdl"
	"repro/internal/netlist"
	"repro/internal/sim"
)

// Synthesize compiles a strictly-checked circuit into a netlist.
func Synthesize(c *hdl.Circuit) (*netlist.Netlist, error) {
	s := &synther{
		c:        c,
		nl:       netlist.New(c.Name),
		hash:     make(map[gateKey]int),
		loopVars: make(map[string]uint64),
	}
	if err := s.run(); err != nil {
		return nil, err
	}
	if err := s.nl.Validate(); err != nil {
		return nil, fmt.Errorf("synth: generated netlist invalid: %w", err)
	}
	return s.nl, nil
}

// env maps signal names to their per-bit gate IDs (LSB first).
type env map[string][]int

func (e env) clone() env {
	n := make(env, len(e))
	for k, v := range e {
		n[k] = append([]int(nil), v...)
	}
	return n
}

type gateKey struct {
	t    netlist.GateType
	a, b int
}

type synther struct {
	c        *hdl.Circuit
	nl       *netlist.Netlist
	c0, c1   int
	hash     map[gateKey]int
	loopVars map[string]uint64

	ffBits map[string][]int // reg / registered-output name -> DFF gate IDs
	// names lists every environment key in declaration order. Control-flow
	// merges iterate it instead of ranging an env map: the merge emits mux
	// gates, and emitting them in map order would leak the randomized map
	// iteration order into gate numbering — structurally the same netlist,
	// but with run-to-run fault-list and search orders (the seq top-off
	// flake). Determinism here is a contract, not a nicety.
	names []string

	// read is the fixed read environment of the current phase; write is
	// threaded through control flow. In the comb phase they are the same
	// map (immediate semantics); in the seq phase reads see pre-cycle
	// values while writes accumulate next-state logic.
	read  env
	write env
}

func (s *synther) run() error {
	nl := s.nl
	s.c0 = nl.AddGate(netlist.Const0)
	s.c1 = nl.AddGate(netlist.Const1)

	registered := s.c.AssignedSignals(hdl.Seq)
	s.ffBits = make(map[string][]int)

	comb := make(env)
	for _, p := range s.c.Ports {
		if p.Dir != hdl.Input {
			continue
		}
		bits := make([]int, p.Width)
		for i := range bits {
			bits[i] = nl.AddInput(bitName(p.Name, i, p.Width))
		}
		s.define(comb, p.Name, bits)
	}
	for _, r := range s.c.Regs {
		bits := make([]int, r.Width)
		for i := range bits {
			bits[i] = nl.AddDFF(bitName(r.Name, i, r.Width), r.Init.Bit(i))
		}
		s.ffBits[r.Name] = bits
		s.define(comb, r.Name, bits)
	}
	for _, p := range s.c.Ports {
		if p.Dir == hdl.Output && registered[p.Name] {
			bits := make([]int, p.Width)
			for i := range bits {
				bits[i] = nl.AddDFF(bitName(p.Name, i, p.Width)+"_ff", 0)
			}
			s.ffBits[p.Name] = bits
			s.define(comb, p.Name, bits)
		}
	}
	for _, k := range s.c.Consts {
		s.define(comb, k.Name, s.constBits(k.Value))
	}
	for _, w := range s.c.Wires {
		bits := make([]int, w.Width)
		for i := range bits {
			bits[i] = s.c0
		}
		s.define(comb, w.Name, bits)
	}
	// Combinational outputs default to zero until assigned (definite
	// assignment guarantees they are).
	for _, p := range s.c.Ports {
		if p.Dir == hdl.Output && !registered[p.Name] {
			bits := make([]int, p.Width)
			for i := range bits {
				bits[i] = s.c0
			}
			s.define(comb, p.Name, bits)
		}
	}

	// Phase 1: comb blocks with immediate-update semantics.
	s.read = comb
	s.write = comb
	for _, b := range s.c.Blocks {
		if b.Kind == hdl.Comb {
			if err := s.stmts(b.Stmts); err != nil {
				return err
			}
		}
	}

	// Phase 2: seq blocks. Reads see the comb-phase environment; writes
	// build next-state logic starting from hold (current state). The seq
	// write env holds only the flip-flop names, seeded in declaration
	// order (the merge loops skip names absent from the env).
	next := make(env)
	for _, name := range s.names {
		if bits, ok := s.ffBits[name]; ok {
			next[name] = append([]int(nil), bits...)
		}
	}
	s.read = comb
	s.write = next
	for _, b := range s.c.Blocks {
		if b.Kind == hdl.Seq {
			if err := s.stmts(b.Stmts); err != nil {
				return err
			}
		}
	}
	for _, name := range s.names {
		for i, ff := range s.ffBits[name] {
			nl.SetDFFInput(ff, next[name][i])
		}
	}

	// Primary outputs, declaration order, LSB first.
	for _, p := range s.c.Ports {
		if p.Dir != hdl.Output {
			continue
		}
		bits := comb[p.Name]
		for i, g := range bits {
			nl.MarkOutput(g, bitName(p.Name, i, p.Width))
		}
	}
	return nil
}

// define binds a fresh environment name, recording it in declaration
// order for the control-flow merges.
func (s *synther) define(e env, name string, bits []int) {
	e[name] = bits
	s.names = append(s.names, name)
}

func bitName(name string, i, width int) string {
	if width == 1 {
		return name
	}
	return fmt.Sprintf("%s_%d", name, i)
}

// --- statements --------------------------------------------------------------

func (s *synther) stmts(ss []hdl.Stmt) error {
	for _, st := range ss {
		if err := s.stmt(st); err != nil {
			return err
		}
	}
	return nil
}

func (s *synther) stmt(st hdl.Stmt) error {
	switch st := st.(type) {
	case *hdl.Assign:
		return s.assign(st)
	case *hdl.If:
		cond, err := s.truth(st.Cond)
		if err != nil {
			return err
		}
		return s.branch(cond, st.Then, st.Else)
	case *hdl.Case:
		subj, err := s.expr(st.Subject)
		if err != nil {
			return err
		}
		return s.caseChain(subj, st.Arms, st.Default)
	case *hdl.For:
		for v := st.Lo; v <= st.Hi; v++ {
			s.loopVars[st.Var] = uint64(v)
			if err := s.stmts(st.Body); err != nil {
				return err
			}
		}
		delete(s.loopVars, st.Var)
		return nil
	default:
		return fmt.Errorf("synth: unknown statement %T", st)
	}
}

// branch executes then/else against copies of the write environment and
// muxes the results under cond.
func (s *synther) branch(cond int, then, els []hdl.Stmt) error {
	base := s.write
	thenEnv := base.clone()
	s.write = thenEnv
	if err := s.stmts(then); err != nil {
		return err
	}
	elseEnv := base.clone()
	s.write = elseEnv
	if err := s.stmts(els); err != nil {
		return err
	}
	s.write = base
	for _, name := range s.names {
		tb, ok := thenEnv[name]
		if !ok {
			continue
		}
		eb := elseEnv[name]
		merged := make([]int, len(tb))
		for i := range tb {
			merged[i] = s.mux(cond, tb[i], eb[i])
		}
		base[name] = merged
	}
	return nil
}

// caseChain lowers a case to a priority if-else chain, preserving the
// simulator's first-match semantics.
func (s *synther) caseChain(subj []int, arms []*hdl.CaseArm, def []hdl.Stmt) error {
	if len(arms) == 0 {
		return s.stmts(def)
	}
	arm := arms[0]
	match := s.c0
	for _, l := range arm.Labels {
		lb, err := s.expr(l)
		if err != nil {
			return err
		}
		match = s.or2(match, s.eqBits(subj, lb))
	}
	base := s.write
	thenEnv := base.clone()
	s.write = thenEnv
	if err := s.stmts(arm.Body); err != nil {
		return err
	}
	elseEnv := base.clone()
	s.write = elseEnv
	if err := s.caseChain(subj, arms[1:], def); err != nil {
		return err
	}
	s.write = base
	for _, name := range s.names {
		tb, ok := thenEnv[name]
		if !ok {
			continue
		}
		eb := elseEnv[name]
		merged := make([]int, len(tb))
		for i := range tb {
			merged[i] = s.mux(match, tb[i], eb[i])
		}
		base[name] = merged
	}
	return nil
}

func (s *synther) assign(st *hdl.Assign) error {
	cur, ok := s.write[st.LHS.Name]
	if !ok {
		return fmt.Errorf("synth: assignment to unknown signal %q", st.LHS.Name)
	}
	rhs, err := s.expr(st.RHS)
	if err != nil {
		return err
	}
	if st.LHS.Index == nil {
		w := len(cur)
		bits := resizeBits(rhs, w, s.c0)
		s.write[st.LHS.Name] = bits
		return nil
	}
	idx, err := s.expr(st.LHS.Index)
	if err != nil {
		return err
	}
	rb := s.c0
	if len(rhs) > 0 {
		rb = rhs[0]
	}
	out := make([]int, len(cur))
	for i := range cur {
		sel := s.eqConst(idx, uint64(i))
		out[i] = s.mux(sel, rb, cur[i])
	}
	s.write[st.LHS.Name] = out
	return nil
}

// --- expressions -------------------------------------------------------------

// truth reduces an expression to a single truth bit (non-zero test).
func (s *synther) truth(e hdl.Expr) (int, error) {
	bits, err := s.expr(e)
	if err != nil {
		return 0, err
	}
	return s.orReduce(bits), nil
}

func (s *synther) expr(e hdl.Expr) ([]int, error) {
	switch e := e.(type) {
	case *hdl.Lit:
		v := e.Val
		if e.Width == 0 {
			v = bitvec.New(e.Raw, max(1, naturalWidth(e.Raw)))
		}
		return s.constBits(v), nil
	case *hdl.Ref:
		if v, ok := s.loopVars[e.Name]; ok {
			w := e.Width
			if w == 0 {
				w = 8
			}
			return s.constBits(bitvec.New(v, w)), nil
		}
		bits, ok := s.read[e.Name]
		if !ok {
			return nil, fmt.Errorf("synth: reference to unknown signal %q", e.Name)
		}
		return bits, nil
	case *hdl.Index:
		xb, err := s.expr(e.X)
		if err != nil {
			return nil, err
		}
		ib, err := s.expr(e.I)
		if err != nil {
			return nil, err
		}
		if lit, ok := e.I.(*hdl.Lit); ok {
			if lit.Raw < uint64(len(xb)) {
				return []int{xb[lit.Raw]}, nil
			}
			return []int{s.c0}, nil
		}
		// Dynamic select: OR over AND(eq(idx,k), x_k); out-of-range reads 0.
		out := s.c0
		for k, b := range xb {
			out = s.or2(out, s.and2(s.eqConst(ib, uint64(k)), b))
		}
		return []int{out}, nil
	case *hdl.SliceExpr:
		xb, err := s.expr(e.X)
		if err != nil {
			return nil, err
		}
		return xb[e.Lo : e.Hi+1], nil
	case *hdl.Unary:
		xb, err := s.expr(e.X)
		if err != nil {
			return nil, err
		}
		switch e.Op {
		case hdl.OpNot:
			out := make([]int, len(xb))
			for i, b := range xb {
				out[i] = s.not(b)
			}
			return out, nil
		case hdl.OpNeg:
			return s.negBits(xb), nil
		case hdl.OpRedAnd:
			return []int{s.andReduce(xb)}, nil
		case hdl.OpRedOr:
			return []int{s.orReduce(xb)}, nil
		case hdl.OpRedXor:
			return []int{s.xorReduce(xb)}, nil
		}
		return nil, fmt.Errorf("synth: unknown unary op %v", e.Op)
	case *hdl.Binary:
		return s.binary(e)
	default:
		return nil, fmt.Errorf("synth: unknown expression %T", e)
	}
}

func (s *synther) binary(e *hdl.Binary) ([]int, error) {
	xb, err := s.expr(e.X)
	if err != nil {
		return nil, err
	}
	yb, err := s.expr(e.Y)
	if err != nil {
		return nil, err
	}
	if e.Op != hdl.OpConcat && !e.Op.IsShift() && len(xb) != len(yb) {
		// Mirrors the simulator's defensive resize for relaxed-mode widths.
		yb = resizeBits(yb, len(xb), s.c0)
	}
	switch e.Op {
	case hdl.OpAnd, hdl.OpOr, hdl.OpXor, hdl.OpNand, hdl.OpNor, hdl.OpXnor:
		out := make([]int, len(xb))
		for i := range xb {
			out[i] = s.logic2(e.Op, xb[i], yb[i])
		}
		return out, nil
	case hdl.OpEq:
		return []int{s.eqBits(xb, yb)}, nil
	case hdl.OpNe:
		return []int{s.not(s.eqBits(xb, yb))}, nil
	case hdl.OpLt:
		lt, _ := s.compare(xb, yb)
		return []int{lt}, nil
	case hdl.OpLe:
		_, gt := s.compare(xb, yb)
		return []int{s.not(gt)}, nil
	case hdl.OpGt:
		_, gt := s.compare(xb, yb)
		return []int{gt}, nil
	case hdl.OpGe:
		lt, _ := s.compare(xb, yb)
		return []int{s.not(lt)}, nil
	case hdl.OpAdd:
		sum, _ := s.addBits(xb, yb, s.c0)
		return sum, nil
	case hdl.OpSub:
		nyb := make([]int, len(yb))
		for i, b := range yb {
			nyb[i] = s.not(b)
		}
		sum, _ := s.addBits(xb, nyb, s.c1)
		return sum, nil
	case hdl.OpMul:
		return s.mulBits(xb, yb), nil
	case hdl.OpShl:
		return s.shiftBits(xb, yb, true), nil
	case hdl.OpShr:
		return s.shiftBits(xb, yb, false), nil
	case hdl.OpConcat:
		out := make([]int, 0, len(xb)+len(yb))
		out = append(out, yb...) // Y is the low part (X ++ Y puts X high)
		out = append(out, xb...)
		return out, nil
	}
	return nil, fmt.Errorf("synth: unknown binary op %v", e.Op)
}

// --- gate constructors with folding and structural hashing -------------------

func (s *synther) gate2(t netlist.GateType, a, b int) int {
	// Commutative: canonicalize operand order for hashing.
	if a > b {
		a, b = b, a
	}
	key := gateKey{t, a, b}
	if id, ok := s.hash[key]; ok {
		return id
	}
	id := s.nl.AddGate(t, a, b)
	s.hash[key] = id
	return id
}

func (s *synther) not(a int) int {
	switch a {
	case s.c0:
		return s.c1
	case s.c1:
		return s.c0
	}
	key := gateKey{netlist.Not, a, -1}
	if id, ok := s.hash[key]; ok {
		return id
	}
	id := s.nl.AddGate(netlist.Not, a)
	s.hash[key] = id
	return id
}

func (s *synther) and2(a, b int) int {
	if a == s.c0 || b == s.c0 {
		return s.c0
	}
	if a == s.c1 {
		return b
	}
	if b == s.c1 {
		return a
	}
	if a == b {
		return a
	}
	return s.gate2(netlist.And, a, b)
}

func (s *synther) or2(a, b int) int {
	if a == s.c1 || b == s.c1 {
		return s.c1
	}
	if a == s.c0 {
		return b
	}
	if b == s.c0 {
		return a
	}
	if a == b {
		return a
	}
	return s.gate2(netlist.Or, a, b)
}

func (s *synther) xor2(a, b int) int {
	if a == b {
		return s.c0
	}
	if a == s.c0 {
		return b
	}
	if b == s.c0 {
		return a
	}
	if a == s.c1 {
		return s.not(b)
	}
	if b == s.c1 {
		return s.not(a)
	}
	return s.gate2(netlist.Xor, a, b)
}

func (s *synther) logic2(op hdl.BinOp, a, b int) int {
	switch op {
	case hdl.OpAnd:
		return s.and2(a, b)
	case hdl.OpOr:
		return s.or2(a, b)
	case hdl.OpXor:
		return s.xor2(a, b)
	case hdl.OpNand:
		return s.not(s.and2(a, b))
	case hdl.OpNor:
		return s.not(s.or2(a, b))
	case hdl.OpXnor:
		return s.not(s.xor2(a, b))
	}
	panic("synth: not a logical op")
}

// mux returns sel ? a : b.
func (s *synther) mux(sel, a, b int) int {
	if a == b {
		return a
	}
	switch sel {
	case s.c1:
		return a
	case s.c0:
		return b
	}
	return s.or2(s.and2(sel, a), s.and2(s.not(sel), b))
}

func (s *synther) constBits(v bitvec.BV) []int {
	bits := make([]int, v.Width())
	for i := range bits {
		if v.Bit(i) == 1 {
			bits[i] = s.c1
		} else {
			bits[i] = s.c0
		}
	}
	return bits
}

func (s *synther) eqBits(a, b []int) int {
	if len(a) != len(b) {
		b = resizeBits(b, len(a), s.c0)
	}
	acc := s.c1
	for i := range a {
		acc = s.and2(acc, s.not(s.xor2(a[i], b[i])))
	}
	return acc
}

func (s *synther) eqConst(a []int, v uint64) int {
	acc := s.c1
	for i, b := range a {
		if (v>>uint(i))&1 == 1 {
			acc = s.and2(acc, b)
		} else {
			acc = s.and2(acc, s.not(b))
		}
	}
	// Value bits beyond the signal width must be zero for a match.
	if naturalWidth(v) > len(a) {
		return s.c0
	}
	return acc
}

// compare returns (a<b, a>b) for unsigned operands, MSB-first scan.
func (s *synther) compare(a, b []int) (lt, gt int) {
	lt, gt = s.c0, s.c0
	eqSoFar := s.c1
	for i := len(a) - 1; i >= 0; i-- {
		ai, bi := a[i], b[i]
		lt = s.or2(lt, s.and2(eqSoFar, s.and2(s.not(ai), bi)))
		gt = s.or2(gt, s.and2(eqSoFar, s.and2(ai, s.not(bi))))
		eqSoFar = s.and2(eqSoFar, s.not(s.xor2(ai, bi)))
	}
	return lt, gt
}

// addBits is a ripple-carry adder; returns sum bits and carry out.
func (s *synther) addBits(a, b []int, cin int) ([]int, int) {
	sum := make([]int, len(a))
	c := cin
	for i := range a {
		axb := s.xor2(a[i], b[i])
		sum[i] = s.xor2(axb, c)
		c = s.or2(s.and2(a[i], b[i]), s.and2(c, axb))
	}
	return sum, c
}

func (s *synther) negBits(a []int) []int {
	na := make([]int, len(a))
	for i, b := range a {
		na[i] = s.not(b)
	}
	zero := make([]int, len(a))
	one := make([]int, len(a))
	for i := range zero {
		zero[i] = s.c0
		one[i] = s.c0
	}
	if len(one) > 0 {
		one[0] = s.c1
	}
	_ = zero
	sum, _ := s.addBits(na, one, s.c0)
	return sum
}

// mulBits is a shift-and-add array multiplier truncated to len(a) bits.
func (s *synther) mulBits(a, b []int) []int {
	w := len(a)
	acc := make([]int, w)
	for i := range acc {
		acc[i] = s.c0
	}
	for j := 0; j < w; j++ {
		// Partial product: a << j, gated by b[j].
		pp := make([]int, w)
		for i := range pp {
			if i >= j {
				pp[i] = s.and2(a[i-j], b[j])
			} else {
				pp[i] = s.c0
			}
		}
		acc, _ = s.addBits(acc, pp, s.c0)
	}
	return acc
}

// shiftBits lowers a dynamic shift: out_i = OR over k of (eq(n,k) AND a_{i∓k}).
func (s *synther) shiftBits(a, n []int, left bool) []int {
	w := len(a)
	// Constant shift folds away when n is all-constant.
	if v, ok := s.constValue(n); ok {
		out := make([]int, w)
		for i := range out {
			var src int
			if left {
				src = i - int(v)
			} else {
				src = i + int(v)
			}
			if src >= 0 && src < w && v < uint64(w) {
				out[i] = a[src]
			} else {
				out[i] = s.c0
			}
		}
		return out
	}
	out := make([]int, w)
	for i := range out {
		acc := s.c0
		for k := 0; k < w; k++ {
			var src int
			if left {
				src = i - k
			} else {
				src = i + k
			}
			if src < 0 || src >= w {
				continue
			}
			acc = s.or2(acc, s.and2(s.eqConst(n, uint64(k)), a[src]))
		}
		out[i] = acc
	}
	return out
}

// constValue recognizes an all-constant bit slice.
func (s *synther) constValue(bits []int) (uint64, bool) {
	var v uint64
	for i, b := range bits {
		switch b {
		case s.c0:
		case s.c1:
			v |= 1 << uint(i)
		default:
			return 0, false
		}
	}
	return v, true
}

func (s *synther) orReduce(bits []int) int {
	acc := s.c0
	for _, b := range bits {
		acc = s.or2(acc, b)
	}
	return acc
}

func (s *synther) andReduce(bits []int) int {
	acc := s.c1
	for _, b := range bits {
		acc = s.and2(acc, b)
	}
	return acc
}

func (s *synther) xorReduce(bits []int) int {
	acc := s.c0
	for _, b := range bits {
		acc = s.xor2(acc, b)
	}
	return acc
}

func resizeBits(bits []int, w int, zero int) []int {
	if len(bits) == w {
		return bits
	}
	out := make([]int, w)
	for i := range out {
		if i < len(bits) {
			out[i] = bits[i]
		} else {
			out[i] = zero
		}
	}
	return out
}

func naturalWidth(v uint64) int {
	n := 0
	for v != 0 {
		n++
		v >>= 1
	}
	if n == 0 {
		return 1
	}
	return n
}

// --- behavioral <-> netlist vector conversion --------------------------------

// PackVector expands a behavioral input vector into PI words (one per PI
// bit, LSB first per port in declaration order), replicating each bit
// across all 64 lanes.
func PackVector(c *hdl.Circuit, v sim.Vector) []uint64 {
	var words []uint64
	for i, p := range c.Inputs() {
		for b := 0; b < p.Width; b++ {
			w := uint64(0)
			if v[i].Bit(b) == 1 {
				w = ^uint64(0)
			}
			words = append(words, w)
		}
	}
	return words
}

// PackVectors packs up to 64 behavioral vectors into one PI word set, one
// lane per vector (pattern-parallel combinational simulation).
func PackVectors(c *hdl.Circuit, vs []sim.Vector) []uint64 {
	var words []uint64
	wi := 0
	for i, p := range c.Inputs() {
		for b := 0; b < p.Width; b++ {
			var w uint64
			for lane, v := range vs {
				if v[i].Bit(b) == 1 {
					w |= 1 << uint(lane)
				}
			}
			words = append(words, w)
			wi++
		}
	}
	return words
}

// UnpackVector reads one lane of PO words back into a behavioral output
// vector (ports in declaration order, LSB first).
func UnpackVector(c *hdl.Circuit, words []uint64, lane int) sim.Vector {
	var out sim.Vector
	wi := 0
	for _, p := range c.Outputs() {
		v := bitvec.Zero(p.Width)
		for b := 0; b < p.Width; b++ {
			v = v.SetBit(b, (words[wi]>>uint(lane))&1)
			wi++
		}
		out = append(out, v)
	}
	return out
}
