package circuits

import (
	"math/rand"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/faultsim"
	"repro/internal/hdl"
	"repro/internal/mutation"
	"repro/internal/netlist"
	"repro/internal/sim"
	"repro/internal/synth"
)

func TestAllBenchmarksParseStrict(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			if _, err := Load(name); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestAllBenchmarksSynthesize(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			c := MustLoad(name)
			nl, err := synth.Synthesize(c)
			if err != nil {
				t.Fatal(err)
			}
			st := nl.Stats()
			if st.Gates == 0 {
				t.Errorf("%s synthesized to zero gates", name)
			}
			t.Logf("%v", st)
		})
	}
}

// TestSimNetlistEquivalence is the suite-wide cross-validation: behavioral
// simulation and synthesized netlist must agree cycle-for-cycle on random
// stimulus, for every benchmark.
func TestSimNetlistEquivalence(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			c := MustLoad(name)
			nl, err := synth.Synthesize(c)
			if err != nil {
				t.Fatal(err)
			}
			bsim, err := sim.New(c)
			if err != nil {
				t.Fatal(err)
			}
			ev, err := netlist.NewEvaluator(nl)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(99))
			ins := c.Inputs()
			cycles := 300
			for cyc := 0; cyc < cycles; cyc++ {
				v := make(sim.Vector, len(ins))
				for i, p := range ins {
					v[i] = bitvec.New(rng.Uint64(), p.Width)
				}
				want, err := bsim.Step(v)
				if err != nil {
					t.Fatal(err)
				}
				words, err := ev.Eval(synth.PackVector(c, v))
				if err != nil {
					t.Fatal(err)
				}
				got := synth.UnpackVector(c, words, 0)
				for j := range want {
					if !got[j].Equal(want[j]) {
						t.Fatalf("%s cycle %d output %d: netlist %v sim %v",
							name, cyc, j, got[j], want[j])
					}
				}
				ev.Clock()
			}
		})
	}
}

func TestBenchmarksHaveMutationSites(t *testing.T) {
	// The paper's experiments depend on each table circuit yielding
	// mutants for the reported operators. CR requires constants: b01, b03
	// declare them; c432/c499 have inline literals.
	for _, name := range PaperBenchmarks() {
		t.Run(name, func(t *testing.T) {
			c := MustLoad(name)
			counts := mutation.CountByOperator(mutation.Generate(c))
			for _, op := range []mutation.Operator{mutation.VR, mutation.CVR, mutation.CR} {
				if counts[op] == 0 {
					t.Errorf("%s: no %s mutants", name, op)
				}
			}
			if counts[mutation.LOR] == 0 && name != "c499" {
				t.Errorf("%s: no LOR mutants", name)
			}
			total := 0
			for _, n := range counts {
				total += n
			}
			if total < 40 {
				t.Errorf("%s: only %d mutants; too small for sampling experiments", name, total)
			}
			t.Logf("%s mutants: %v (total %d)", name, counts, total)
		})
	}
}

func TestBenchmarksHaveDetectableFaults(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			c := MustLoad(name)
			nl, err := synth.Synthesize(c)
			if err != nil {
				t.Fatal(err)
			}
			fs, err := faultsim.New(nl, nil)
			if err != nil {
				t.Fatal(err)
			}
			tests := make([]faultsim.Pattern, 256)
			for i := range tests {
				p := make(faultsim.Pattern, len(nl.PIs))
				for j := range p {
					p[j] = uint8(rng.Intn(2))
				}
				tests[i] = p
			}
			res, err := fs.Run(tests)
			if err != nil {
				t.Fatal(err)
			}
			if res.Coverage() < 0.3 {
				t.Errorf("%s: random coverage %.2f suspiciously low", name, res.Coverage())
			}
			t.Logf("%s: %d faults, random-256 coverage %.1f%%",
				name, len(res.Faults), 100*res.Coverage())
		})
	}
}

func TestUnknownCircuit(t *testing.T) {
	if _, err := Load("nosuch"); err == nil {
		t.Fatal("unknown circuit loaded")
	}
	if _, ok := Source("nosuch"); ok {
		t.Fatal("unknown source found")
	}
}

func TestMustLoadPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustLoad did not panic")
		}
	}()
	MustLoad("nosuch")
}

func TestPaperBenchmarksAvailable(t *testing.T) {
	for _, name := range PaperBenchmarks() {
		if _, ok := Source(name); !ok {
			t.Errorf("paper benchmark %s missing", name)
		}
	}
}

// TestB01Protocol sanity-checks the b01 analog's documented behavior.
func TestB01Protocol(t *testing.T) {
	c := MustLoad("b01")
	s, err := sim.New(c)
	if err != nil {
		t.Fatal(err)
	}
	step := func(l1, l2, rst uint64) sim.Vector {
		out, err := s.Step(sim.Vector{bitvec.New(l1, 1), bitvec.New(l2, 1), bitvec.New(rst, 1)})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	step(0, 0, 1) // reset
	// Equal streams keep outp (registered) high from the following cycle.
	step(1, 1, 0)
	out := step(1, 1, 0)
	if !out[0].IsTrue() {
		t.Error("outp low while streams equal")
	}
	// 6 more equal cycles must trip overflw (CMAX=5 run length).
	sawOverflow := false
	for i := 0; i < 8; i++ {
		out = step(0, 0, 0)
		if out[1].IsTrue() {
			sawOverflow = true
		}
	}
	if !sawOverflow {
		t.Error("overflw never pulsed on a long equal run")
	}
}

// TestB03GrantsAreOneHot checks the arbiter's grant encoding.
func TestB03GrantsAreOneHot(t *testing.T) {
	c := MustLoad("b03")
	s, _ := sim.New(c)
	rng := rand.New(rand.NewSource(3))
	s.Step(sim.Vector{bitvec.Zero(4), bitvec.New(1, 1)}) // reset
	for i := 0; i < 200; i++ {
		req := bitvec.New(rng.Uint64(), 4)
		out, err := s.Step(sim.Vector{req, bitvec.Zero(1)})
		if err != nil {
			t.Fatal(err)
		}
		if g := out[0].PopCount(); g > 1 {
			t.Fatalf("grant %v not one-hot", out[0])
		}
	}
}

// TestC499CorrectsSingleBitErrors injects every single-bit data error and
// checks that the corrector restores the word.
func TestC499CorrectsSingleBitErrors(t *testing.T) {
	c := MustLoad("c499")
	s, _ := sim.New(c)
	rng := rand.New(rand.NewSource(11))

	// checkBitsFor computes the encoder side: the check word a transmitter
	// would attach to data (mirrors the circuit's syndrome equations).
	checkBitsFor := func(d uint64) uint64 {
		var chk uint64
		for j := 0; j < 5; j++ {
			var p uint64
			for i := 0; i < 32; i++ {
				if (i>>uint(j))&1 == 1 {
					p ^= (d >> uint(i)) & 1
				}
			}
			chk |= p << uint(j)
		}
		var all uint64
		for i := 0; i < 32; i++ {
			all ^= (d >> uint(i)) & 1
		}
		chk |= all << 5
		return chk
	}

	for trial := 0; trial < 20; trial++ {
		data := rng.Uint64() & 0xFFFFFFFF
		chk := checkBitsFor(data)
		// No error: q == d.
		out, _ := s.Step(sim.Vector{bitvec.New(data, 32), bitvec.New(chk, 6)})
		if out[0].Uint() != data {
			t.Fatalf("clean word altered: q=%x want %x", out[0].Uint(), data)
		}
		// Single-bit error at a random position: corrected.
		bit := rng.Intn(32)
		corrupted := data ^ (1 << uint(bit))
		out, _ = s.Step(sim.Vector{bitvec.New(corrupted, 32), bitvec.New(chk, 6)})
		if out[0].Uint() != data {
			t.Fatalf("bit %d not corrected: got %x want %x", bit, out[0].Uint(), data)
		}
	}
}

// TestC880ALUOps spot-checks the ALU against Go arithmetic.
func TestC880ALUOps(t *testing.T) {
	c := MustLoad("c880")
	s, _ := sim.New(c)
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 200; trial++ {
		a := rng.Uint64() & 0xFF
		b := rng.Uint64() & 0xFF
		op := uint64(rng.Intn(8))
		cin := uint64(rng.Intn(2))
		out, err := s.Step(sim.Vector{
			bitvec.New(a, 8), bitvec.New(b, 8), bitvec.New(op, 3), bitvec.New(cin, 1),
		})
		if err != nil {
			t.Fatal(err)
		}
		var want uint64
		switch op {
		case 0:
			want = (a + b + cin) & 0xFF
		case 1:
			want = (a - b) & 0xFF
		case 2:
			want = a & b
		case 3:
			want = a | b
		case 4:
			want = a ^ b
		case 5:
			want = ^a & 0xFF
		case 6:
			want = (a << 1) & 0xFF
		case 7:
			want = a >> 1
		}
		if out[0].Uint() != want {
			t.Fatalf("op %d a=%02x b=%02x cin=%d: y=%02x want %02x", op, a, b, cin, out[0].Uint(), want)
		}
		if out[2].IsTrue() != (want == 0) {
			t.Fatalf("zero flag wrong for y=%02x", want)
		}
	}
}

// TestB04TracksMinMax drives a stream and checks the running extremes.
func TestB04TracksMinMax(t *testing.T) {
	c := MustLoad("b04")
	s, _ := sim.New(c)
	step := func(data, restart, reset uint64) sim.Vector {
		out, err := s.Step(sim.Vector{
			bitvec.New(data, 8), bitvec.New(restart, 1), bitvec.New(reset, 1),
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	step(0, 0, 1)   // reset
	step(42, 1, 0)  // restart: seed min=max=42
	step(17, 0, 0)  // new min
	step(200, 0, 0) // new max
	out := step(100, 0, 0)
	if out[0].Uint() != 17 || out[1].Uint() != 200 {
		t.Fatalf("min/max = %d/%d, want 17/200", out[0].Uint(), out[1].Uint())
	}
	if out[2].Uint() != 183 {
		t.Fatalf("spread = %d, want 183", out[2].Uint())
	}
}

// TestC6288Multiplies verifies the array multiplier against Go arithmetic.
func TestC6288Multiplies(t *testing.T) {
	c := MustLoad("c6288")
	s, _ := sim.New(c)
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 300; trial++ {
		a := rng.Uint64() & 0xFF
		b := rng.Uint64() & 0xFF
		out, err := s.Step(sim.Vector{bitvec.New(a, 8), bitvec.New(b, 8)})
		if err != nil {
			t.Fatal(err)
		}
		if out[0].Uint() != a*b {
			t.Fatalf("%d * %d = %d, want %d", a, b, out[0].Uint(), a*b)
		}
	}
}

func TestHDLFormatRoundTripAllCircuits(t *testing.T) {
	for _, name := range Names() {
		c := MustLoad(name)
		src2 := hdl.Format(c)
		if _, err := hdl.Parse(src2); err != nil {
			t.Errorf("%s: formatted source does not re-parse: %v", name, err)
		}
	}
}
