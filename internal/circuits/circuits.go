// Package circuits provides the benchmark suite: MHDL re-implementations
// of the circuits the paper evaluates on. The originals are the ITC'99
// sequential benchmarks (b01 serial-flow comparator, b02 BCD recognizer,
// b03 resource arbiter, b06 interrupt handler) and the ISCAS'85
// combinational benchmarks (c17 NAND network, c432 27-channel priority
// interrupt controller, c499 32-bit single-error-correcting circuit, c880
// ALU). The original VHDL/netlists are not redistributable here, so each
// circuit is a functional analog written from the published circuit
// descriptions; gate counts after synthesis land in the same ballpark as
// the originals, and — what matters for the paper's experiments — the
// high-level description and the gate-level netlist are two views of the
// same design, exactly as in the paper's flow.
package circuits

import (
	"fmt"
	"sort"

	"repro/internal/hdl"
)

// sources maps circuit name to MHDL source text.
var sources = map[string]string{
	"b01":   b01Src,
	"b02":   b02Src,
	"b03":   b03Src,
	"b04":   b04Src,
	"b06":   b06Src,
	"c17":   c17Src,
	"c432":  c432Src,
	"c499":  c499Src,
	"c880":  c880Src,
	"c6288": c6288Src,
}

// Names returns all available circuit names, sorted.
func Names() []string {
	out := make([]string, 0, len(sources))
	for n := range sources {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// PaperBenchmarks returns the four circuits of the paper's Tables 1 and 2,
// in the paper's order.
func PaperBenchmarks() []string { return []string{"b01", "b03", "c432", "c499"} }

// Source returns the MHDL source for a named circuit.
func Source(name string) (string, bool) {
	s, ok := sources[name]
	return s, ok
}

// Load parses and strictly checks a named benchmark circuit.
func Load(name string) (*hdl.Circuit, error) {
	src, ok := sources[name]
	if !ok {
		return nil, fmt.Errorf("circuits: unknown benchmark %q (have %v)", name, Names())
	}
	c, err := hdl.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("circuits: %s: %w", name, err)
	}
	return c, nil
}

// MustLoad is Load for static sources that are known to parse; it panics
// on error and exists for examples and benchmarks.
func MustLoad(name string) *hdl.Circuit {
	c, err := Load(name)
	if err != nil {
		panic(err)
	}
	return c
}

// b01: serial-flow comparator FSM (ITC'99 b01 analog). Two serial lines
// are compared bit by bit; a saturating run-length counter raises overflw,
// and mismatches push the FSM through resynchronization states.
const b01Src = `
circuit b01 {
  input line1 : bit;
  input line2 : bit;
  input reset : bit;
  output outp : bit;
  output overflw : bit;
  reg stato : bits(3);
  reg cnt : bits(3);
  const S_CMP : bits(3) = 3'd0;
  const S_GT : bits(3) = 3'd1;
  const S_LT : bits(3) = 3'd2;
  const S_SYNC : bits(3) = 3'd3;
  const CMAX : bits(3) = 3'd5;
  seq {
    if reset == 1 {
      stato = S_CMP;
      cnt = 3'd0;
      outp = 0;
      overflw = 0;
    } else {
      overflw = 0;
      case stato {
        when S_CMP: {
          outp = line1 xnor line2;
          if line1 == line2 {
            if cnt == CMAX {
              overflw = 1;
              cnt = 3'd0;
            } else {
              cnt = cnt + 1;
            }
          } else {
            if line1 > line2 {
              stato = S_GT;
            } else {
              stato = S_LT;
            }
            cnt = 3'd0;
          }
        }
        when S_GT: {
          outp = line1 and line2;
          if line1 == 1 and line2 == 1 { stato = S_SYNC; }
        }
        when S_LT: {
          outp = line1 or line2;
          if line1 == 0 and line2 == 0 { stato = S_SYNC; }
        }
        when S_SYNC: {
          outp = line1 xor line2;
          if line1 == line2 {
            stato = S_CMP;
            cnt = 3'd0;
          }
        }
        default: {
          stato = S_CMP;
          outp = 0;
        }
      }
    }
  }
}
`

// b02: serial BCD digit recognizer (ITC'99 b02 analog). Bits arrive MSB
// first; after four bits the accumulated digit is flagged valid when it is
// a legal BCD code (<= 9).
const b02Src = `
circuit b02 {
  input u : bit;
  input reset : bit;
  output o : bit;
  reg st : bits(3);
  reg digit : bits(4);
  const LAST : bits(3) = 3'd4;
  const BCDMAX : bits(4) = 4'd9;
  seq {
    if reset == 1 {
      st = 3'd0;
      digit = 4'd0;
      o = 0;
    } else {
      o = 0;
      if st == LAST {
        if digit <= BCDMAX { o = 1; }
        st = 3'd0;
        digit = 4'd0;
      } else {
        digit = (digit << 1) or (3'd0 ++ u);
        st = st + 1;
      }
    }
  }
}
`

// b03: resource arbiter (ITC'99 b03 analog). Four requesters share one
// resource; pending requests are latched, grants last two cycles, and the
// scan direction alternates to avoid starvation.
const b03Src = `
circuit b03 {
  input req : bits(4);
  input reset : bit;
  output grant : bits(4);
  output busy : bit;
  reg pending : bits(4);
  reg flip : bit;
  reg timer : bits(2);
  const HOLD : bits(2) = 2'd2;
  seq {
    if reset == 1 {
      pending = 4'd0;
      flip = 0;
      timer = 2'd0;
      grant = 4'd0;
      busy = 0;
    } else {
      if timer != 2'd0 {
        timer = timer - 1;
        busy = 1;
        pending = pending or req;
        if timer == 2'd1 {
          grant = 4'd0;
          busy = 0;
        }
      } else {
        busy = 0;
        if (pending or req) != 4'd0 {
          timer = HOLD;
          busy = 1;
          flip = flip xor 1;
          if flip == 0 {
            if (pending or req)[0] == 1 {
              grant = 4'b0001;
              pending = (pending or req) and 4'b1110;
            } else if (pending or req)[1] == 1 {
              grant = 4'b0010;
              pending = (pending or req) and 4'b1101;
            } else if (pending or req)[2] == 1 {
              grant = 4'b0100;
              pending = (pending or req) and 4'b1011;
            } else {
              grant = 4'b1000;
              pending = (pending or req) and 4'b0111;
            }
          } else {
            if (pending or req)[3] == 1 {
              grant = 4'b1000;
              pending = (pending or req) and 4'b0111;
            } else if (pending or req)[2] == 1 {
              grant = 4'b0100;
              pending = (pending or req) and 4'b1011;
            } else if (pending or req)[1] == 1 {
              grant = 4'b0010;
              pending = (pending or req) and 4'b1101;
            } else {
              grant = 4'b0001;
              pending = (pending or req) and 4'b1110;
            }
          }
        } else {
          grant = 4'd0;
        }
      }
    }
  }
}
`

// b04: running min/max tracker (ITC'99 b04 analog). An 8-bit data stream
// updates registered minimum and maximum; restart re-seeds both from the
// current sample, and the spread is exported combinationally.
const b04Src = `
circuit b04 {
  input data : bits(8);
  input restart : bit;
  input reset : bit;
  output omin : bits(8);
  output omax : bits(8);
  output spread : bits(8);
  reg rmin : bits(8) = 8'd255;
  reg rmax : bits(8);
  const TOP : bits(8) = 8'd255;
  seq {
    if reset == 1 {
      rmin = TOP;
      rmax = 8'd0;
    } else if restart == 1 {
      rmin = data;
      rmax = data;
    } else {
      if data < rmin { rmin = data; }
      if data > rmax { rmax = data; }
    }
  }
  comb {
    omin = rmin;
    omax = rmax;
    spread = rmax - rmin;
  }
}
`

// b06: interrupt handshake controller (ITC'99 b06 analog): a four-state
// request/acknowledge protocol FSM with an exposed state vector.
const b06Src = `
circuit b06 {
  input irq : bit;
  input ackin : bit;
  input reset : bit;
  output irqout : bit;
  output state_o : bits(2);
  reg st : bits(2);
  const IDLE : bits(2) = 2'd0;
  const RAISE : bits(2) = 2'd1;
  const SERVE : bits(2) = 2'd2;
  const DRAIN : bits(2) = 2'd3;
  seq {
    if reset == 1 {
      st = IDLE;
      irqout = 0;
      state_o = 2'd0;
    } else {
      case st {
        when IDLE: {
          irqout = 0;
          if irq == 1 { st = RAISE; }
        }
        when RAISE: {
          irqout = 1;
          if ackin == 1 { st = SERVE; }
        }
        when SERVE: {
          irqout = 0;
          if ackin == 0 { st = DRAIN; }
        }
        when DRAIN: {
          if irq == 0 { st = IDLE; }
        }
      }
      state_o = st;
    }
  }
}
`

// c17: the six-NAND ISCAS'85 toy benchmark, transcribed literally.
const c17Src = `
circuit c17 {
  input i1 : bit;
  input i2 : bit;
  input i3 : bit;
  input i6 : bit;
  input i7 : bit;
  output o22 : bit;
  output o23 : bit;
  wire n10 : bit;
  wire n11 : bit;
  wire n16 : bit;
  wire n19 : bit;
  comb {
    n10 = i1 nand i3;
    n11 = i3 nand i6;
    n16 = i2 nand n11;
    n19 = n11 nand i7;
    o22 = n10 nand n16;
    o23 = n16 nand n19;
  }
}
`

// c432: 27-channel priority interrupt controller (ISCAS'85 c432 analog).
// Three request groups of nine channels share an enable mask; group A has
// priority over B over C, and the winning group's highest active channel
// is encoded.
const c432Src = `
circuit c432 {
  input ra : bits(9);
  input rb : bits(9);
  input rc : bits(9);
  input en : bits(9);
  output pa : bit;
  output pb : bit;
  output pc : bit;
  output chan : bits(4);
  wire ma : bits(9);
  wire mb : bits(9);
  wire mc : bits(9);
  wire sel : bits(9);
  comb {
    ma = ra and en;
    mb = rb and en;
    mc = rc and en;
    pa = ror ma;
    pb = (not (ror ma)) and (ror mb);
    pc = (not (ror ma)) and (not (ror mb)) and (ror mc);
    sel = 9'd0;
    if pa == 1 {
      sel = ma;
    } else if pb == 1 {
      sel = mb;
    } else if pc == 1 {
      sel = mc;
    }
    chan = 4'd0;
    for i in 0 .. 8 {
      if sel[i] == 1 { chan = i; }
    }
  }
}
`

// c499: 32-bit single-error-correcting circuit (ISCAS'85 c499 analog).
// Five positional parity groups plus an overall parity form a syndrome;
// a non-zero syndrome with odd overall parity locates and flips the
// erroneous data bit.
const c499Src = `
circuit c499 {
  input d : bits(32);
  input chk : bits(6);
  output q : bits(32);
  wire syn : bits(5);
  wire par : bit;
  wire synd : bits(6);
  wire flip : bits(32);
  comb {
    syn = 5'd0;
    for j in 0 .. 4 {
      for i in 0 .. 31 {
        if ((i >> j) and 1) == 1 {
          syn[j] = syn[j] xor d[i];
        }
      }
    }
    par = rxor d;
    synd = (par ++ syn) xor chk;
    flip = 32'd0;
    for i in 0 .. 31 {
      if (synd[4:0] == i) and (synd[5] == 1) {
        flip[i] = 1;
      }
    }
    q = d xor flip;
  }
}
`

// c6288: 8x8 array multiplier (ISCAS'85 c6288 analog; the original is a
// 16x16 multiplier of ~2400 gates, this synthesizes to the same order).
const c6288Src = `
circuit c6288 {
  input a : bits(8);
  input b : bits(8);
  output p : bits(16);
  comb {
    p = (8'd0 ++ a) * (8'd0 ++ b);
  }
}
`

// c880: 8-bit ALU slice (ISCAS'85 c880 analog) with carry chain, logic
// unit, shifter and zero flag.
const c880Src = `
circuit c880 {
  input a : bits(8);
  input b : bits(8);
  input op : bits(3);
  input cin : bit;
  output y : bits(8);
  output cout : bit;
  output zero : bit;
  wire sum : bits(9);
  comb {
    sum = (1'd0 ++ a) + (1'd0 ++ b) + (8'd0 ++ cin);
    y = 8'd0;
    cout = 0;
    case op {
      when 3'd0: {
        y = sum[7:0];
        cout = sum[8];
      }
      when 3'd1: {
        y = a - b;
        cout = a < b;
      }
      when 3'd2: { y = a and b; }
      when 3'd3: { y = a or b; }
      when 3'd4: { y = a xor b; }
      when 3'd5: { y = not a; }
      when 3'd6: { y = a << 1; }
      when 3'd7: { y = a >> 1; }
    }
    zero = y == 8'd0;
  }
}
`
