// Package scoap implements SCOAP testability analysis (Goldstein 1979):
// per-net 0/1-controllability (how hard it is to drive a net to a value)
// and observability (how hard it is to propagate a net's value to an
// output). The measures guide the PODEM backtrace — picking the cheapest
// input to justify a controlling value and the costliest to justify
// non-controlling values — and give designers the classic "hard fault"
// heat map.
//
// Sequential elements are handled with the usual pseudo-combinational
// approximation: a flip-flop adds one time frame of cost to both
// controllability and observability of its data input.
package scoap

import (
	"fmt"
	"sort"

	"repro/internal/netlist"
)

// Inf is the cost assigned to unreachable goals (e.g. driving a constant
// to its opposite value).
const Inf = 1 << 30

// Measures holds SCOAP costs indexed by gate ID.
type Measures struct {
	CC0 []int // cost to set the net to 0
	CC1 []int // cost to set the net to 1
	CO  []int // cost to observe the net at a primary output
}

// Analyze computes SCOAP measures. Controllability propagates forward in
// topological order (iterated to a fixpoint to absorb flip-flop loops);
// observability propagates backward.
func Analyze(nl *netlist.Netlist) (*Measures, error) {
	order, err := nl.Levelize()
	if err != nil {
		return nil, err
	}
	n := len(nl.Gates)
	m := &Measures{CC0: make([]int, n), CC1: make([]int, n), CO: make([]int, n)}
	for i := 0; i < n; i++ {
		m.CC0[i], m.CC1[i], m.CO[i] = Inf, Inf, Inf
	}
	for _, id := range nl.PIs {
		m.CC0[id], m.CC1[id] = 1, 1
	}
	for _, g := range nl.Gates {
		switch g.Type {
		case netlist.Const0:
			m.CC0[g.ID] = 0
		case netlist.Const1:
			m.CC1[g.ID] = 0
		case netlist.DFF:
			// Power-on value is free; the opposite costs a capture.
			if g.Init&1 == 1 {
				m.CC1[g.ID] = 0
			} else {
				m.CC0[g.ID] = 0
			}
		}
	}

	// Forward controllability, iterated because DFF loops feed costs back.
	for pass := 0; pass < 4*len(nl.FFs)+2; pass++ {
		changed := false
		for _, id := range order {
			g := nl.Gates[id]
			cc0, cc1 := gateControllability(g, m)
			if cc0 < m.CC0[id] {
				m.CC0[id] = cc0
				changed = true
			}
			if cc1 < m.CC1[id] {
				m.CC1[id] = cc1
				changed = true
			}
		}
		for _, id := range nl.FFs {
			d := nl.Gates[id].Fanin[0]
			if c := add(m.CC0[d], 1); c < m.CC0[id] {
				m.CC0[id] = c
				changed = true
			}
			if c := add(m.CC1[d], 1); c < m.CC1[id] {
				m.CC1[id] = c
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	// Backward observability.
	for _, id := range nl.POs {
		m.CO[id] = 0
	}
	rev := make([]int, len(order))
	copy(rev, order)
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	for pass := 0; pass < 4*len(nl.FFs)+2; pass++ {
		changed := false
		for _, id := range nl.FFs {
			// Observing the D input requires observing the FF one frame on.
			d := nl.Gates[id].Fanin[0]
			if c := add(m.CO[id], 1); c < m.CO[d] {
				m.CO[d] = c
				changed = true
			}
		}
		for _, id := range rev {
			g := nl.Gates[id]
			for j, f := range g.Fanin {
				if c := pinObservability(g, j, m); c < m.CO[f] {
					m.CO[f] = c
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return m, nil
}

func add(a, b int) int {
	if a >= Inf || b >= Inf {
		return Inf
	}
	return a + b
}

// gateControllability computes (CC0, CC1) of a combinational gate's output
// from its inputs' measures.
func gateControllability(g *netlist.Gate, m *Measures) (int, int) {
	sum := func(sel func(int) int) int {
		t := 0
		for _, f := range g.Fanin {
			t = add(t, sel(f))
		}
		return add(t, 1)
	}
	minOf := func(sel func(int) int) int {
		best := Inf
		for _, f := range g.Fanin {
			if v := sel(f); v < best {
				best = v
			}
		}
		return add(best, 1)
	}
	cc0of := func(f int) int { return m.CC0[f] }
	cc1of := func(f int) int { return m.CC1[f] }

	switch g.Type {
	case netlist.Buf:
		return add(m.CC0[g.Fanin[0]], 1), add(m.CC1[g.Fanin[0]], 1)
	case netlist.Not:
		return add(m.CC1[g.Fanin[0]], 1), add(m.CC0[g.Fanin[0]], 1)
	case netlist.And:
		return minOf(cc0of), sum(cc1of)
	case netlist.Nand:
		return sum(cc1of), minOf(cc0of)
	case netlist.Or:
		return sum(cc0of), minOf(cc1of)
	case netlist.Nor:
		return minOf(cc1of), sum(cc0of)
	case netlist.Xor, netlist.Xnor:
		return xorControllability(g, m)
	default:
		return m.CC0[g.ID], m.CC1[g.ID] // PIs, constants, DFFs keep seeds
	}
}

// xorControllability enumerates parity combinations for XOR/XNOR: the cost
// of each output value is the cheapest input assignment with the right
// parity. Fanin counts here are small (the synthesizer emits 2-input
// gates), so the 2^n enumeration is fine; wide gates fall back to an
// approximation.
func xorControllability(g *netlist.Gate, m *Measures) (int, int) {
	n := len(g.Fanin)
	if n > 10 {
		// Approximate: sum of min-costs + 1 for both values.
		t := 1
		for _, f := range g.Fanin {
			t = add(t, min(m.CC0[f], m.CC1[f]))
		}
		return t, t
	}
	best := [2]int{Inf, Inf}
	for mask := 0; mask < 1<<uint(n); mask++ {
		cost := 1
		ones := 0
		for j, f := range g.Fanin {
			if mask>>uint(j)&1 == 1 {
				cost = add(cost, m.CC1[f])
				ones++
			} else {
				cost = add(cost, m.CC0[f])
			}
		}
		parity := ones & 1
		if cost < best[parity] {
			best[parity] = cost
		}
	}
	cc1, cc0 := best[1], best[0]
	if g.Type == netlist.Xnor {
		cc0, cc1 = cc1, cc0
	}
	return cc0, cc1
}

// pinObservability computes the cost of observing fanin pin j of gate g:
// the gate's own observability plus the cost of setting every sibling to
// the gate's non-controlling value (or, for XOR, to any known value).
func pinObservability(g *netlist.Gate, j int, m *Measures) int {
	base := add(m.CO[g.ID], 1)
	switch g.Type {
	case netlist.Buf, netlist.Not:
		return base
	case netlist.And, netlist.Nand:
		for k, f := range g.Fanin {
			if k != j {
				base = add(base, m.CC1[f])
			}
		}
		return base
	case netlist.Or, netlist.Nor:
		for k, f := range g.Fanin {
			if k != j {
				base = add(base, m.CC0[f])
			}
		}
		return base
	case netlist.Xor, netlist.Xnor:
		for k, f := range g.Fanin {
			if k != j {
				base = add(base, min(m.CC0[f], m.CC1[f]))
			}
		}
		return base
	default:
		return Inf
	}
}

// Summary aggregates the measures for reports.
type Summary struct {
	MaxCC0, MaxCC1, MaxCO    int
	MeanCC0, MeanCC1, MeanCO float64
	// HardestNets lists the gate IDs with the highest CC+CO sum (the
	// classic "hard fault site" predictor), hardest first.
	HardestNets []int
}

// Summarize computes aggregate statistics over reachable nets.
func (m *Measures) Summarize(nl *netlist.Netlist, topN int) Summary {
	var s Summary
	count := 0
	type scored struct{ id, cost int }
	var all []scored
	for id := range nl.Gates {
		cc0, cc1, co := m.CC0[id], m.CC1[id], m.CO[id]
		if cc0 >= Inf || cc1 >= Inf || co >= Inf {
			continue
		}
		count++
		s.MeanCC0 += float64(cc0)
		s.MeanCC1 += float64(cc1)
		s.MeanCO += float64(co)
		if cc0 > s.MaxCC0 {
			s.MaxCC0 = cc0
		}
		if cc1 > s.MaxCC1 {
			s.MaxCC1 = cc1
		}
		if co > s.MaxCO {
			s.MaxCO = co
		}
		all = append(all, scored{id: id, cost: cc0 + cc1 + co})
	}
	if count > 0 {
		s.MeanCC0 /= float64(count)
		s.MeanCC1 /= float64(count)
		s.MeanCO /= float64(count)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].cost != all[j].cost {
			return all[i].cost > all[j].cost
		}
		return all[i].id < all[j].id
	})
	for i := 0; i < topN && i < len(all); i++ {
		s.HardestNets = append(s.HardestNets, all[i].id)
	}
	return s
}

func (s Summary) String() string {
	return fmt.Sprintf("CC0 mean %.1f max %d | CC1 mean %.1f max %d | CO mean %.1f max %d",
		s.MeanCC0, s.MaxCC0, s.MeanCC1, s.MaxCC1, s.MeanCO, s.MaxCO)
}
