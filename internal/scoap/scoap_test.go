package scoap

import (
	"testing"

	"repro/internal/circuits"
	"repro/internal/netlist"
	"repro/internal/synth"
)

func TestPIMeasures(t *testing.T) {
	n := netlist.New("pi")
	a := n.AddInput("a")
	b := n.AddInput("b")
	y := n.AddGate(netlist.And, a, b)
	n.MarkOutput(y, "y")
	m, err := Analyze(n)
	if err != nil {
		t.Fatal(err)
	}
	if m.CC0[a] != 1 || m.CC1[a] != 1 {
		t.Errorf("PI controllability = %d/%d, want 1/1", m.CC0[a], m.CC1[a])
	}
	// AND: CC1 = 1+1+1 = 3, CC0 = min(1,1)+1 = 2.
	if m.CC1[y] != 3 {
		t.Errorf("AND CC1 = %d, want 3", m.CC1[y])
	}
	if m.CC0[y] != 2 {
		t.Errorf("AND CC0 = %d, want 2", m.CC0[y])
	}
	// PO observability 0; PI a observable through the AND: CO = 0+1+CC1(b) = 2.
	if m.CO[y] != 0 {
		t.Errorf("PO CO = %d, want 0", m.CO[y])
	}
	if m.CO[a] != 2 {
		t.Errorf("PI CO = %d, want 2", m.CO[a])
	}
}

func TestInverterSwapsControllability(t *testing.T) {
	n := netlist.New("inv")
	a := n.AddInput("a")
	y := n.AddGate(netlist.Not, a)
	n.MarkOutput(y, "y")
	m, err := Analyze(n)
	if err != nil {
		t.Fatal(err)
	}
	if m.CC0[y] != 2 || m.CC1[y] != 2 {
		t.Errorf("NOT CC = %d/%d, want 2/2", m.CC0[y], m.CC1[y])
	}
}

func TestConstantsAreOneSided(t *testing.T) {
	n := netlist.New("c")
	a := n.AddInput("a")
	c1 := n.AddGate(netlist.Const1)
	y := n.AddGate(netlist.And, a, c1)
	n.MarkOutput(y, "y")
	m, err := Analyze(n)
	if err != nil {
		t.Fatal(err)
	}
	if m.CC1[c1] != 0 {
		t.Errorf("const1 CC1 = %d, want 0", m.CC1[c1])
	}
	if m.CC0[c1] < Inf {
		t.Errorf("const1 CC0 = %d, want Inf", m.CC0[c1])
	}
}

func TestXorControllability(t *testing.T) {
	n := netlist.New("x")
	a := n.AddInput("a")
	b := n.AddInput("b")
	y := n.AddGate(netlist.Xor, a, b)
	n.MarkOutput(y, "y")
	m, err := Analyze(n)
	if err != nil {
		t.Fatal(err)
	}
	// XOR=1 needs odd ones: cheapest is 1+CC1(a)+CC0(b) = 3.
	if m.CC1[y] != 3 || m.CC0[y] != 3 {
		t.Errorf("XOR CC = %d/%d, want 3/3", m.CC0[y], m.CC1[y])
	}
}

func TestDeepChainCostsGrow(t *testing.T) {
	n := netlist.New("chain")
	a := n.AddInput("a")
	b := n.AddInput("b")
	g := a
	for i := 0; i < 6; i++ {
		g = n.AddGate(netlist.And, g, b)
	}
	n.MarkOutput(g, "y")
	m, err := Analyze(n)
	if err != nil {
		t.Fatal(err)
	}
	// CC1 climbs with depth; the deepest gate is hardest to set to 1.
	if m.CC1[g] <= m.CC1[a] {
		t.Errorf("deep CC1 %d not greater than PI %d", m.CC1[g], m.CC1[a])
	}
	// The PI driving the whole chain has worse observability... b feeds
	// every level; a must pass through all 6 ANDs.
	if m.CO[a] <= m.CO[g] {
		t.Errorf("CO(a)=%d should exceed CO(output)=%d", m.CO[a], m.CO[g])
	}
}

func TestSequentialMeasuresFinite(t *testing.T) {
	// Toggle flop: q' = q XOR en. The loop must converge with finite costs.
	n := netlist.New("toggle")
	en := n.AddInput("en")
	q := n.AddDFF("q", 0)
	d := n.AddGate(netlist.Xor, q, en)
	n.SetDFFInput(q, d)
	n.MarkOutput(q, "qo")
	m, err := Analyze(n)
	if err != nil {
		t.Fatal(err)
	}
	if m.CC0[q] != 0 {
		t.Errorf("power-on-0 flop CC0 = %d, want 0", m.CC0[q])
	}
	if m.CC1[q] >= Inf {
		t.Errorf("flop CC1 unreachable")
	}
	if m.CO[d] >= Inf {
		t.Errorf("D input unobservable")
	}
}

func TestAllBenchmarksHaveFiniteMeasures(t *testing.T) {
	for _, name := range circuits.Names() {
		t.Run(name, func(t *testing.T) {
			nl, err := synth.Synthesize(circuits.MustLoad(name))
			if err != nil {
				t.Fatal(err)
			}
			m, err := Analyze(nl)
			if err != nil {
				t.Fatal(err)
			}
			inf0, inf1, infO := 0, 0, 0
			for id := range nl.Gates {
				if m.CC0[id] >= Inf {
					inf0++
				}
				if m.CC1[id] >= Inf {
					inf1++
				}
				if m.CO[id] >= Inf {
					infO++
				}
			}
			// Constants have one unreachable value by definition, and
			// sequential feedback can make further values structurally
			// unreachable (e.g. a state bit that is only ever written with
			// itself: b01's stato[2] never leaves 0). Require the bulk of
			// the circuit to stay controllable.
			if frac := float64(inf0+inf1) / float64(2*len(nl.Gates)); frac > 0.15 {
				t.Errorf("%s: %.0f%% of controllability goals unreachable (%d+%d of %d gates)",
					name, 100*frac, inf0, inf1, len(nl.Gates))
			}
			if infO > len(nl.Gates)/4 {
				t.Errorf("%s: %d of %d gates unobservable", name, infO, len(nl.Gates))
			}
			sum := m.Summarize(nl, 5)
			if len(sum.HardestNets) == 0 {
				t.Error("no hardest nets reported")
			}
			t.Logf("%s: %v", name, sum)
		})
	}
}

func TestSummarizeOrdering(t *testing.T) {
	nl, err := synth.Synthesize(circuits.MustLoad("c432"))
	if err != nil {
		t.Fatal(err)
	}
	m, err := Analyze(nl)
	if err != nil {
		t.Fatal(err)
	}
	s := m.Summarize(nl, 10)
	for i := 1; i < len(s.HardestNets); i++ {
		a, b := s.HardestNets[i-1], s.HardestNets[i]
		costA := m.CC0[a] + m.CC1[a] + m.CO[a]
		costB := m.CC0[b] + m.CC1[b] + m.CO[b]
		if costA < costB {
			t.Fatalf("hardest nets not sorted: %d < %d", costA, costB)
		}
	}
}
