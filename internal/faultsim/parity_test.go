package faultsim

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/circuits"
	"repro/internal/engine"
	"repro/internal/netlist"
	"repro/internal/synth"
)

// parityConfigs spans the interesting engine settings: the single-fault
// serial reference engine (Workers 1), and the compiled parallel-fault
// engine at every lane width × {fixed pools, all-cores default}.
var parityConfigs = []Config{
	cfgOf(1, 0),
	cfgOf(2, 1), cfgOf(5, 1), cfgOf(0, 1),
	cfgOf(2, 4), cfgOf(5, 4), cfgOf(0, 4),
	cfgOf(2, 8), cfgOf(5, 8), cfgOf(0, 8),
	cfgOf(0, 0), // LaneWords 0: the per-topology production setting
}

// cfgOf abbreviates the embedded engine.Options literal in test tables.
func cfgOf(workers, laneWords int) Config {
	return Config{Options: engine.Options{Workers: workers, LaneWords: laneWords}}
}

// randPatterns builds a deterministic random test set.
func randPatterns(nPIs, n int, seed int64) []Pattern {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Pattern, n)
	for i := range out {
		p := make(Pattern, nPIs)
		for j := range p {
			p[j] = uint8(rng.Intn(2))
		}
		out[i] = p
	}
	return out
}

// randomParityNetlist builds a random netlist with optional flip-flops
// and nGates combinational gates; it mirrors the generator in
// internal/netlist's compile tests so the engine parity is exercised on
// circuits no benchmark covers.
func randomParityNetlist(t *testing.T, seed int64, nFFs, nGates int) *netlist.Netlist {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	n := netlist.New(fmt.Sprintf("prand%d", seed))
	for i := 0; i < 4; i++ {
		n.AddInput(fmt.Sprintf("i%d", i))
	}
	for i := 0; i < nFFs; i++ {
		n.AddDFF(fmt.Sprintf("ff%d", i), uint64(rng.Intn(2)))
	}
	comb := []netlist.GateType{netlist.Buf, netlist.Not, netlist.And, netlist.Or,
		netlist.Nand, netlist.Nor, netlist.Xor, netlist.Xnor}
	for i := 0; i < nGates; i++ {
		ty := comb[rng.Intn(len(comb))]
		arity := 2 + rng.Intn(3)
		if ty == netlist.Buf || ty == netlist.Not {
			arity = 1
		}
		fanin := make([]int, arity)
		for j := range fanin {
			fanin[j] = rng.Intn(n.NumGates())
		}
		n.AddGate(ty, fanin...)
	}
	for _, ff := range n.FFs {
		n.SetDFFInput(ff, rng.Intn(n.NumGates()))
	}
	for i := 0; i < 3; i++ {
		n.MarkOutput(rng.Intn(n.NumGates()), fmt.Sprintf("o%d", i))
	}
	n.MarkOutput(n.NumGates()-1, "olast")
	if err := n.Validate(); err != nil {
		t.Fatalf("random netlist invalid: %v", err)
	}
	return n
}

// assertParity runs every configuration on the same netlist and test set
// and demands an identical FirstDetected profile, including RunOn with a
// strided fault subset.
func assertParity(t *testing.T, nl *netlist.Netlist, tests []Pattern) {
	t.Helper()
	var ref *Result
	var refOn *Result
	var subset []int
	for _, cfg := range parityConfigs {
		label := fmt.Sprintf("workers=%d/lanewords=%d", cfg.Workers, cfg.LaneWords)
		s, err := cfg.New(nl, nil)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if subset == nil {
			for i := 0; i < len(s.Faults()); i += 3 {
				subset = append(subset, i)
			}
		}
		res, err := s.Run(tests)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		resOn, err := s.RunOn(tests, subset)
		if err != nil {
			t.Fatalf("%s: RunOn: %v", label, err)
		}
		if ref == nil {
			ref, refOn = res, resOn
			continue
		}
		for i := range ref.FirstDetected {
			if res.FirstDetected[i] != ref.FirstDetected[i] {
				t.Errorf("%s: fault %d (%s) first detected at %d, reference %d",
					label, i, s.Faults()[i].Desc, res.FirstDetected[i], ref.FirstDetected[i])
			}
			if resOn.FirstDetected[i] != refOn.FirstDetected[i] {
				t.Errorf("%s: RunOn fault %d first detected at %d, reference %d",
					label, i, resOn.FirstDetected[i], refOn.FirstDetected[i])
			}
		}
	}
	// RunOn must agree with Run on included faults and stay -1 elsewhere.
	inSubset := make(map[int]bool, len(subset))
	for _, fi := range subset {
		inSubset[fi] = true
	}
	for i := range ref.FirstDetected {
		switch {
		case inSubset[i] && refOn.FirstDetected[i] != ref.FirstDetected[i]:
			t.Errorf("RunOn fault %d: %d, Run says %d", i, refOn.FirstDetected[i], ref.FirstDetected[i])
		case !inSubset[i] && refOn.FirstDetected[i] != -1:
			t.Errorf("RunOn leaked excluded fault %d: %d", i, refOn.FirstDetected[i])
		}
	}
}

// TestEngineParityBenchmarks is the differential guarantee the ISSUE
// demands, on synthesized benchmark circuits: the parallel-fault compiled
// engine must produce the exact FirstDetected profile of the single-fault
// reference for every worker count, combinational and sequential.
func TestEngineParityBenchmarks(t *testing.T) {
	for _, name := range []string{"c17", "c432", "b01", "b03", "b06"} {
		t.Run(name, func(t *testing.T) {
			nl, err := synth.Synthesize(circuits.MustLoad(name))
			if err != nil {
				t.Fatal(err)
			}
			// 150 patterns crosses two pattern batches (combinational) and
			// leaves some faults undetected (sequential), so both the
			// detection and the exhaustion paths are compared.
			assertParity(t, nl, randPatterns(len(nl.PIs), 150, 7))
		})
	}
}

// TestEngineParityRandomNetlists runs the same differential check on
// random structural netlists, combinational and sequential.
func TestEngineParityRandomNetlists(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		nFFs := int(seed) % 3 * 2 // 0 (combinational), 2, 4
		t.Run(fmt.Sprintf("seed=%d/ffs=%d", seed, nFFs), func(t *testing.T) {
			nl := randomParityNetlist(t, seed, nFFs, 25)
			assertParity(t, nl, randPatterns(len(nl.PIs), 100, seed+40))
		})
	}
}

// TestEngineParityManyFaults forces multiple parallel-fault batches: a
// sequential circuit whose collapsed fault list exceeds 64 must split
// into several lane batches and still match the reference exactly.
func TestEngineParityManyFaults(t *testing.T) {
	nl, err := synth.Synthesize(circuits.MustLoad("b03"))
	if err != nil {
		t.Fatal(err)
	}
	s, _ := New(nl, nil)
	if len(s.Faults()) <= 128 {
		t.Fatalf("want > 128 faults to cross two batches, got %d", len(s.Faults()))
	}
	assertParity(t, nl, randPatterns(len(nl.PIs), 48, 3))
}

// TestRunOnRejectsBadIndex pins index validation: out-of-range and
// duplicate indices (a duplicate would land one fault in two parallel
// batches) are both errors.
func TestRunOnRejectsBadIndex(t *testing.T) {
	nl := buildMux(t)
	s, _ := New(nl, nil)
	if _, err := s.RunOn(exhaustivePatterns(3), []int{0, 999}); err == nil {
		t.Error("out-of-range fault index accepted")
	}
	if _, err := s.RunOn(exhaustivePatterns(3), []int{3, 1, 3}); err == nil {
		t.Error("duplicate fault index accepted")
	}
}
