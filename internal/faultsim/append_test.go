package faultsim

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/circuits"
	"repro/internal/synth"
)

// splitPatterns carves a test set into deterministic random chunks,
// deliberately including empty and single-pattern chunks — the shapes
// the Append contract calls out.
func splitPatterns(tests []Pattern, seed int64) [][]Pattern {
	rng := rand.New(rand.NewSource(seed))
	var out [][]Pattern
	lo := 0
	for lo < len(tests) {
		var n int
		switch rng.Intn(4) {
		case 0:
			n = 0 // empty chunk
		case 1:
			n = 1
		default:
			n = 1 + rng.Intn(len(tests)-lo)
		}
		out = append(out, tests[lo:lo+n])
		lo += n
	}
	out = append(out, nil) // trailing empty Append
	return out
}

// assertSameProfile compares two results field by field.
func assertSameProfile(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if got.Patterns != want.Patterns {
		t.Fatalf("%s: %d patterns applied, want %d", label, got.Patterns, want.Patterns)
	}
	for i := range want.FirstDetected {
		if got.FirstDetected[i] != want.FirstDetected[i] {
			t.Errorf("%s: fault %d first detected at %d, want %d",
				label, i, got.FirstDetected[i], want.FirstDetected[i])
		}
	}
}

// TestAppendMatchesRun is the session acceptance pin on benchmark
// circuits: chunked Appends must equal the one-shot Run bit for bit, for
// every engine configuration, on sequential and combinational shapes.
func TestAppendMatchesRun(t *testing.T) {
	for _, name := range []string{"b03", "c432"} {
		t.Run(name, func(t *testing.T) {
			nl, err := synth.Synthesize(circuits.MustLoad(name))
			if err != nil {
				t.Fatal(err)
			}
			tests := randPatterns(len(nl.PIs), 120, 11)
			for ci, cfg := range parityConfigs {
				label := fmt.Sprintf("workers=%d/lanewords=%d", cfg.Workers, cfg.LaneWords)
				oneshot, err := cfg.New(nl, nil)
				if err != nil {
					t.Fatal(err)
				}
				want, err := oneshot.Run(tests)
				if err != nil {
					t.Fatal(err)
				}
				inc, err := cfg.New(nl, nil)
				if err != nil {
					t.Fatal(err)
				}
				var got *Result
				for _, chunk := range splitPatterns(tests, int64(100+ci)) {
					if got, err = inc.Append(chunk); err != nil {
						t.Fatalf("%s: %v", label, err)
					}
				}
				assertSameProfile(t, label, got, want)
				if inc.Applied() != len(tests) {
					t.Errorf("%s: Applied() = %d, want %d", label, inc.Applied(), len(tests))
				}
			}
		})
	}
}

// TestAppendPrefixSnapshots checks every intermediate Append result
// equals a fresh one-shot Run over the same prefix — the property that
// makes round-based campaigns equivalent to prefix re-simulation.
func TestAppendPrefixSnapshots(t *testing.T) {
	nl, err := synth.Synthesize(circuits.MustLoad("b01"))
	if err != nil {
		t.Fatal(err)
	}
	tests := randPatterns(len(nl.PIs), 96, 5)
	inc, err := New(nl, nil)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := New(nl, nil)
	if err != nil {
		t.Fatal(err)
	}
	for lo := 0; lo < len(tests); lo += 7 {
		hi := min(lo+7, len(tests))
		got, err := inc.Append(tests[lo:hi])
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.Run(tests[:hi])
		if err != nil {
			t.Fatal(err)
		}
		assertSameProfile(t, fmt.Sprintf("prefix %d", hi), got, want)
	}
}

// TestAppendAfterRunOnExtendsSubset pins the subset-session contract:
// Append after RunOn keeps simulating only the included frontier.
func TestAppendAfterRunOnExtendsSubset(t *testing.T) {
	nl, err := synth.Synthesize(circuits.MustLoad("b03"))
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(nl, nil)
	if err != nil {
		t.Fatal(err)
	}
	var subset []int
	for i := 0; i < len(s.Faults()); i += 2 {
		subset = append(subset, i)
	}
	tests := randPatterns(len(nl.PIs), 80, 9)
	if _, err := s.RunOn(tests[:30], subset); err != nil {
		t.Fatal(err)
	}
	got, err := s.Append(tests[30:])
	if err != nil {
		t.Fatal(err)
	}
	ref, err := New(nl, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.RunOn(tests, subset)
	if err != nil {
		t.Fatal(err)
	}
	assertSameProfile(t, "subset", got, want)
	inSubset := make(map[int]bool)
	for _, fi := range subset {
		inSubset[fi] = true
	}
	for i, d := range got.FirstDetected {
		if !inSubset[i] && d != -1 {
			t.Errorf("excluded fault %d detected at %d", i, d)
		}
	}
	// The frontier only ever contains included, undetected faults.
	for _, fi := range s.Frontier() {
		if !inSubset[fi] {
			t.Errorf("frontier leaked excluded fault %d", fi)
		}
		if got.FirstDetected[fi] >= 0 {
			t.Errorf("frontier kept detected fault %d", fi)
		}
	}
}

// TestFrontierShrinks checks the frontier bookkeeping across appends.
func TestFrontierShrinks(t *testing.T) {
	nl := buildMux(t)
	s, err := New(nl, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(s.Frontier()); got != len(s.Faults()) {
		t.Fatalf("fresh frontier has %d faults, want %d", got, len(s.Faults()))
	}
	res, err := s.Append(exhaustivePatterns(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage() != 1.0 {
		t.Fatalf("exhaustive coverage %v", res.Coverage())
	}
	if got := len(s.Frontier()); got != 0 {
		t.Fatalf("frontier not empty after full detection: %d", got)
	}
	// Appending to an exhausted frontier is a no-op that still counts
	// patterns.
	res, err = s.Append(exhaustivePatterns(3)[:2])
	if err != nil {
		t.Fatal(err)
	}
	if res.Patterns != 10 {
		t.Errorf("Patterns = %d, want 10", res.Patterns)
	}
}

// TestAppendCancelPoisonsSession pins the sticky-error contract: a
// cancelled Append fails, later Appends report the same error without
// running, and Reset (or Run) clears it.
func TestAppendCancelPoisonsSession(t *testing.T) {
	nl, err := synth.Synthesize(circuits.MustLoad("b03"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cfg := Config{}
	cfg.Ctx = ctx
	s, err := cfg.New(nl, nil)
	if err != nil {
		t.Fatal(err)
	}
	tests := randPatterns(len(nl.PIs), 64, 3)
	cancel()
	if _, err := s.Append(tests); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Append returned %v", err)
	}
	if _, err := s.Append(tests); !errors.Is(err, context.Canceled) {
		t.Fatalf("poisoned session returned %v", err)
	}
	// The session stays poisoned until reset; Run resets, but the
	// still-cancelled context fails it again — swap the context out to
	// prove Reset clears the sticky error.
	s.cfg.Ctx = context.Background()
	s.Reset()
	res, err := s.Append(tests)
	if err != nil {
		t.Fatal(err)
	}
	if res.Patterns != len(tests) {
		t.Errorf("recovered session applied %d patterns, want %d", res.Patterns, len(tests))
	}
}
