package faultsim

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"testing"

	"repro/internal/circuits"
	"repro/internal/engine"
	"repro/internal/synth"
)

// TestCheckpointResumeBitIdentical pins the campaign resume contract: a
// session checkpointed at any window boundary, restored into a fresh
// simulator (any engine configuration, through a gob round-trip like the
// on-disk store's), finishes bit-identical to one that was never
// interrupted.
func TestCheckpointResumeBitIdentical(t *testing.T) {
	nl, err := synth.Synthesize(circuits.MustLoad("b03"))
	if err != nil {
		t.Fatal(err)
	}
	tests := randPatterns(len(nl.PIs), 120, 11)

	ref, err := New(nl, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Run(tests)
	if err != nil {
		t.Fatal(err)
	}

	configs := []Config{
		{Options: engine.Options{Workers: 1, LaneWords: 1}},
		{Options: engine.Options{Workers: 2, LaneWords: 4}},
		{Options: engine.Options{Workers: 0, LaneWords: 0}},
	}
	for _, cut := range []int{20, 60, 100} {
		for ci, cfg := range configs {
			label := fmt.Sprintf("cut=%d cfg=%d", cut, ci)
			first, err := cfg.New(nl, nil)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := first.Append(tests[:cut]); err != nil {
				t.Fatal(err)
			}
			ck := first.Checkpoint()
			if ck.Applied != cut {
				t.Fatalf("%s: checkpoint Applied = %d, want %d", label, ck.Applied, cut)
			}

			// Round-trip through gob, as the disk store would.
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(ck); err != nil {
				t.Fatal(err)
			}
			loaded := new(Checkpoint)
			if err := gob.NewDecoder(&buf).Decode(loaded); err != nil {
				t.Fatal(err)
			}

			// Resume in a fresh simulator under a different configuration.
			resumedCfg := configs[(ci+1)%len(configs)]
			resumed, err := resumedCfg.New(nl, nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := resumed.Restore(loaded, tests[:cut]); err != nil {
				t.Fatalf("%s: Restore: %v", label, err)
			}
			if resumed.Applied() != cut {
				t.Fatalf("%s: Applied() after restore = %d, want %d", label, resumed.Applied(), cut)
			}
			if _, err := resumed.Append(tests[cut:]); err != nil {
				t.Fatal(err)
			}
			got := resumed.Current().Clone()
			assertSameProfile(t, label, got, want)
		}
	}
}

// TestRestoreRejectsWrongStimulus pins the integrity check: restoring a
// checkpoint against stimulus it was not taken under must fail (the
// replay detects a frontier fault), not silently continue from the
// wrong machine state.
func TestRestoreRejectsWrongStimulus(t *testing.T) {
	nl, err := synth.Synthesize(circuits.MustLoad("b03"))
	if err != nil {
		t.Fatal(err)
	}
	tests := randPatterns(len(nl.PIs), 80, 3)
	s, err := New(nl, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(tests[:40]); err != nil {
		t.Fatal(err)
	}
	ck := s.Checkpoint()

	other, err := New(nl, nil)
	if err != nil {
		t.Fatal(err)
	}
	wrong := randPatterns(len(nl.PIs), 40, 99)
	if err := other.Restore(ck, wrong); err == nil {
		t.Fatal("Restore accepted a checkpoint paired with the wrong stimulus")
	}
	if err := other.Restore(ck, tests[:10]); err == nil {
		t.Fatal("Restore accepted a truncated stimulus prefix")
	}
}

// TestRestoreValidation covers the structural rejects.
func TestRestoreValidation(t *testing.T) {
	nl, err := synth.Synthesize(circuits.MustLoad("b01"))
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(nl, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Restore(nil, nil); err == nil {
		t.Error("nil checkpoint accepted")
	}
	if err := s.Restore(&Checkpoint{FirstDetected: []int{1}}, nil); err == nil {
		t.Error("short FirstDetected accepted")
	}
	n := len(s.Faults())
	bad := &Checkpoint{FirstDetected: make([]int, n), Frontier: []int{n + 3}}
	for i := range bad.FirstDetected {
		bad.FirstDetected[i] = -1
	}
	if err := s.Restore(bad, nil); err == nil {
		t.Error("out-of-range frontier index accepted")
	}
	both := &Checkpoint{FirstDetected: make([]int, n), Frontier: []int{0}}
	for i := range both.FirstDetected {
		both.FirstDetected[i] = -1
	}
	both.FirstDetected[0] = 5
	both.Applied = 6
	if err := s.Restore(both, make([]Pattern, 6)); err == nil {
		t.Error("fault listed both detected and on the frontier accepted")
	}
}
