package faultsim

import (
	"testing"

	"repro/internal/netlist"
)

// buildMux constructs y = (a AND s) OR (b AND NOT s).
func buildMux(t *testing.T) *netlist.Netlist {
	t.Helper()
	n := netlist.New("mux")
	a := n.AddInput("a")
	b := n.AddInput("b")
	s := n.AddInput("s")
	ns := n.AddGate(netlist.Not, s)
	t1 := n.AddGate(netlist.And, a, s)
	t2 := n.AddGate(netlist.And, b, ns)
	y := n.AddGate(netlist.Or, t1, t2)
	n.MarkOutput(y, "y")
	return n
}

func exhaustivePatterns(nPIs int) []Pattern {
	out := make([]Pattern, 0, 1<<uint(nPIs))
	for v := 0; v < 1<<uint(nPIs); v++ {
		p := make(Pattern, nPIs)
		for i := 0; i < nPIs; i++ {
			p[i] = uint8((v >> uint(i)) & 1)
		}
		out = append(out, p)
	}
	return out
}

func TestFaultListCollapsing(t *testing.T) {
	nl := buildMux(t)
	fs := Faults(nl)
	if len(fs) == 0 {
		t.Fatal("empty fault list")
	}
	// Stems: 7 gates (3 PI + NOT + 2 AND + OR) x 2 = 14.
	// Branches: only s fans out (to NOT and AND t1), so pins fed by s get
	// branch faults except those equivalent to stems: NOT input faults are
	// always dropped; AND keeps only s-a-1. Also a,b,ns,t1,t2 have fanout 1.
	// So expected: 14 + 1 (t1/in-s s-a-1) = 15.
	if len(fs) != 15 {
		for _, f := range fs {
			t.Logf("%s (site %+v)", f.Desc, f.Site)
		}
		t.Fatalf("collapsed fault count = %d, want 15", len(fs))
	}
}

func TestExhaustiveDetectsAllMuxFaults(t *testing.T) {
	nl := buildMux(t)
	s, err := New(nl, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(exhaustivePatterns(3))
	if err != nil {
		t.Fatal(err)
	}
	// Every collapsed fault of an irredundant mux is detectable.
	if got := res.Coverage(); got != 1.0 {
		for _, f := range res.Undetected() {
			t.Logf("undetected: %s", f.Desc)
		}
		t.Fatalf("exhaustive coverage = %v, want 1.0", got)
	}
}

func TestSingleVectorCoverage(t *testing.T) {
	nl := buildMux(t)
	s, _ := New(nl, nil)
	res, err := s.Run([]Pattern{{1, 0, 1}}) // a=1, b=0, s=1 -> y=1
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage() <= 0 || res.Coverage() >= 1 {
		t.Errorf("single vector coverage = %v, want partial", res.Coverage())
	}
	for i, d := range res.FirstDetected {
		if d != -1 && d != 0 {
			t.Errorf("fault %d first detected at %d with 1 pattern", i, d)
		}
	}
}

func TestCurveIsMonotone(t *testing.T) {
	nl := buildMux(t)
	s, _ := New(nl, nil)
	res, err := s.Run(exhaustivePatterns(3))
	if err != nil {
		t.Fatal(err)
	}
	curve := res.Curve()
	if len(curve) != 8 {
		t.Fatalf("curve length = %d", len(curve))
	}
	for i := 1; i < len(curve); i++ {
		if curve[i] < curve[i-1] {
			t.Fatalf("curve not monotone at %d: %v", i, curve)
		}
	}
	if curve[len(curve)-1] != res.Coverage() {
		t.Errorf("curve end %v != coverage %v", curve[len(curve)-1], res.Coverage())
	}
}

func TestRedundantFaultUndetected(t *testing.T) {
	// y = OR(a, CONST1) == 1 always; the OR output s-a-1 is undetectable,
	// s-a-0 is detectable... actually y is constant 1 so s-a-0 IS
	// detectable (y reads 0 instead of 1) and s-a-1 is not.
	n := netlist.New("red")
	a := n.AddInput("a")
	c1 := n.AddGate(netlist.Const1)
	y := n.AddGate(netlist.Or, a, c1)
	n.MarkOutput(y, "y")
	s, err := New(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(exhaustivePatterns(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage() == 1 {
		t.Error("redundant circuit reports full coverage")
	}
	// The a-input faults can never propagate through OR with const-1.
	found := false
	for i, f := range res.Faults {
		if f.Site.Gate == a && res.FirstDetected[i] == -1 {
			found = true
		}
	}
	if !found {
		t.Error("expected undetectable PI fault on blocked input")
	}
}

func TestSequentialFaultDetection(t *testing.T) {
	// Toggle FF: q' = q XOR en; q observed.
	n := netlist.New("toggle")
	en := n.AddInput("en")
	q := n.AddDFF("q", 0)
	d := n.AddGate(netlist.Xor, q, en)
	n.SetDFFInput(q, d)
	n.MarkOutput(q, "qo")
	s, err := New(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Sequence: enable for 3 cycles. Good q: 0,1,0. A q stuck-at-1 shows a
	// difference at cycle 0 already.
	res, err := s.Run([]Pattern{{1}, {1}, {1}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage() == 0 {
		t.Fatal("no sequential faults detected")
	}
	var saw bool
	for i, f := range res.Faults {
		if f.Site.Gate == q && f.Site.Pin == -1 && f.Site.Stuck == 1 {
			saw = true
			if res.FirstDetected[i] != 0 {
				t.Errorf("q s-a-1 first detected at %d, want 0", res.FirstDetected[i])
			}
		}
	}
	if !saw {
		t.Error("q s-a-1 not in fault list")
	}
}

func TestSequentialFaultNeedsTime(t *testing.T) {
	// Shift register of 2 DFFs: a fault at the input pin of the first FF
	// needs 2 cycles to reach the output.
	n := netlist.New("shift2")
	d := n.AddInput("d")
	f1 := n.AddDFF("f1", 0)
	f2 := n.AddDFF("f2", 0)
	buf := n.AddGate(netlist.Buf, d)
	n.SetDFFInput(f1, buf)
	mid := n.AddGate(netlist.Buf, f1)
	n.SetDFFInput(f2, mid)
	n.MarkOutput(f2, "q")
	s, err := New(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Drive 1s; buf output s-a-0 flips f1 at cycle1, f2 at cycle2.
	res, err := s.Run([]Pattern{{1}, {1}, {1}, {1}})
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range res.Faults {
		if f.Site.Gate == buf && f.Site.Pin == -1 && f.Site.Stuck == 0 {
			if res.FirstDetected[i] != 2 {
				t.Errorf("buf s-a-0 detected at cycle %d, want 2", res.FirstDetected[i])
			}
		}
	}
}

func TestPatternLengthMismatch(t *testing.T) {
	nl := buildMux(t)
	s, _ := New(nl, nil)
	if _, err := s.Run([]Pattern{{1, 0}}); err == nil {
		t.Error("short pattern accepted")
	}
}

func TestManyPatternsCrossBatchBoundary(t *testing.T) {
	// >64 patterns exercises the multi-batch path; repeat the exhaustive
	// set 10 times (80 patterns). First detections must all fall in the
	// first 8 patterns.
	nl := buildMux(t)
	s, _ := New(nl, nil)
	var tests []Pattern
	for r := 0; r < 10; r++ {
		tests = append(tests, exhaustivePatterns(3)...)
	}
	res, err := s.Run(tests)
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage() != 1 {
		t.Fatalf("coverage = %v", res.Coverage())
	}
	for i, d := range res.FirstDetected {
		if d >= 8 {
			t.Errorf("fault %d first detected at %d, but set repeats with period 8", i, d)
		}
	}
}

// TestFirstDetectionIsAccurate re-simulates each fault's reported first
// detecting pattern in isolation and checks (a) it really detects and
// (b) no earlier pattern does.
func TestFirstDetectionIsAccurate(t *testing.T) {
	nl := buildMux(t)
	s, _ := New(nl, nil)
	tests := exhaustivePatterns(3)
	res, err := s.Run(tests)
	if err != nil {
		t.Fatal(err)
	}
	good, _ := netlist.NewEvaluator(nl)
	bad, _ := netlist.NewEvaluator(nl)
	detects := func(p Pattern, f Fault) bool {
		words := make([]uint64, len(p))
		for i, v := range p {
			if v != 0 {
				words[i] = ^uint64(0)
			}
		}
		g, _ := good.Eval(words)
		gc := append([]uint64(nil), g...)
		b := bad.EvalWith(words, f.Site, ^uint64(0))
		for po := range b {
			if b[po] != gc[po] {
				return true
			}
		}
		return false
	}
	for fi, f := range res.Faults {
		d := res.FirstDetected[fi]
		if d < 0 {
			continue
		}
		if !detects(tests[d], f) {
			t.Fatalf("fault %s: pattern %d reported detecting but is not", f.Desc, d)
		}
		for k := 0; k < d; k++ {
			if detects(tests[k], f) {
				t.Fatalf("fault %s: pattern %d detects before reported first %d", f.Desc, k, d)
			}
		}
	}
}

// TestParallelMatchesSerial pins the worker-pool fault simulation against
// a GOMAXPROCS=1-equivalent run (the pool must not perturb results).
func TestParallelMatchesSerial(t *testing.T) {
	n := netlist.New("toggle")
	en := n.AddInput("en")
	q := n.AddDFF("q", 0)
	d := n.AddGate(netlist.Xor, q, en)
	n.SetDFFInput(q, d)
	n.MarkOutput(q, "qo")

	tests := []Pattern{{1}, {0}, {1}, {1}, {0}, {1}}
	s1, _ := New(n, nil)
	r1, err := s1.Run(tests)
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := New(n, nil)
	r2, err := s2.Run(tests)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.FirstDetected {
		if r1.FirstDetected[i] != r2.FirstDetected[i] {
			t.Fatalf("fault %d: detection cycle differs across runs (%d vs %d)",
				i, r1.FirstDetected[i], r2.FirstDetected[i])
		}
	}
}

func TestResultAccessors(t *testing.T) {
	nl := buildMux(t)
	s, _ := New(nl, nil)
	res, _ := s.Run(exhaustivePatterns(3))
	if res.DetectedCount() != len(res.Faults) {
		t.Errorf("DetectedCount %d != %d", res.DetectedCount(), len(res.Faults))
	}
	if len(res.Undetected()) != 0 {
		t.Errorf("Undetected non-empty: %v", res.Undetected())
	}
	if len(s.Faults()) != len(res.Faults) {
		t.Error("Faults() mismatch")
	}
}
