package faultsim

import (
	"testing"

	"repro/internal/circuits"
	"repro/internal/synth"
)

// TestAppendSteadyStateAllocs pins the allocation diet: once a
// sequential session is warm (scratch grown, batches armed, the result
// view sized), an Append round allocates nothing — the session owns and
// recycles every buffer the window needs, and single-batch windows take
// the serial inline path with no pool fan-out. The only tolerated blip
// is the one free-list append when the batch happens to retire mid-run.
func TestAppendSteadyStateAllocs(t *testing.T) {
	for _, name := range []string{"b01", "b03"} {
		t.Run(name, func(t *testing.T) {
			nl, err := synth.Synthesize(circuits.MustLoad(name))
			if err != nil {
				t.Fatal(err)
			}
			s, err := New(nl, nil)
			if err != nil {
				t.Fatal(err)
			}
			tests := randPatterns(len(nl.PIs), 8, 11)
			for i := 0; i < 4; i++ {
				if _, err := s.Append(tests); err != nil {
					t.Fatal(err)
				}
			}
			allocs := testing.AllocsPerRun(20, func() {
				if _, err := s.Append(tests); err != nil {
					t.Fatal(err)
				}
			})
			if allocs > 0.5 {
				t.Errorf("warm Append allocates %.1f objects per round, want ~0", allocs)
			}
		})
	}
}

// TestAppendTestSteadyStateAllocs is the same pin for the reset-per-test
// discipline: rewinding every machine to power-on costs no allocations
// either.
func TestAppendTestSteadyStateAllocs(t *testing.T) {
	for _, name := range []string{"b01", "b03"} {
		t.Run(name, func(t *testing.T) {
			nl, err := synth.Synthesize(circuits.MustLoad(name))
			if err != nil {
				t.Fatal(err)
			}
			s, err := New(nl, nil)
			if err != nil {
				t.Fatal(err)
			}
			test := randPatterns(len(nl.PIs), 6, 23)
			for i := 0; i < 4; i++ {
				if _, err := s.AppendTest(test); err != nil {
					t.Fatal(err)
				}
			}
			allocs := testing.AllocsPerRun(20, func() {
				if _, err := s.AppendTest(test); err != nil {
					t.Fatal(err)
				}
			})
			if allocs > 0.5 {
				t.Errorf("warm AppendTest allocates %.1f objects per round, want ~0", allocs)
			}
		})
	}
}

// TestAppendResultOwnership pins the Result contract the diet rests on:
// Append returns a session-owned view the next call overwrites, Clone
// detaches a caller-owned copy, and Run's result is already detached.
func TestAppendResultOwnership(t *testing.T) {
	nl, err := synth.Synthesize(circuits.MustLoad("b01"))
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(nl, nil)
	if err != nil {
		t.Fatal(err)
	}
	tests := randPatterns(len(nl.PIs), 12, 5)
	view, err := s.Append(tests[:4])
	if err != nil {
		t.Fatal(err)
	}
	kept := view.Clone()
	if kept.Patterns != 4 || len(kept.FirstDetected) != len(view.FirstDetected) {
		t.Fatalf("clone diverges from its source: %+v", kept)
	}
	later, err := s.Append(tests[4:])
	if err != nil {
		t.Fatal(err)
	}
	if view != later {
		t.Fatalf("Append returned a fresh Result; the contract says it reuses the session view")
	}
	if view.Patterns != 12 {
		t.Fatalf("view reports %d patterns, want 12 (overwritten in place)", view.Patterns)
	}
	if kept.Patterns != 4 {
		t.Fatalf("clone mutated by a later Append: %d patterns", kept.Patterns)
	}

	// Run detaches: a later Append on the same session must not touch it.
	ran, err := s.Run(tests[:6])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(tests[6:]); err != nil {
		t.Fatal(err)
	}
	if ran.Patterns != 6 {
		t.Fatalf("Run result mutated by a later Append: %d patterns", ran.Patterns)
	}
}
