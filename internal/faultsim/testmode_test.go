package faultsim

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/circuits"
	"repro/internal/synth"
)

// splitTests carves a pattern list into power-on test sequences of
// varied lengths, including single-cycle tests.
func splitTests(pats []Pattern) [][]Pattern {
	lens := []int{5, 1, 7, 3, 1, 9}
	var out [][]Pattern
	lo := 0
	for i := 0; lo < len(pats); i++ {
		n := min(lens[i%len(lens)], len(pats)-lo)
		out = append(out, pats[lo:lo+n])
		lo += n
	}
	return out
}

// TestAppendTestMatchesRunOnPerTest pins the reset-per-test session
// against the discipline it replaces: a fresh RunOn over the shrinking
// undetected subset for every test, for every engine configuration. The
// session must detect exactly the same faults test by test while keeping
// its batches armed across tests.
func TestAppendTestMatchesRunOnPerTest(t *testing.T) {
	nl, err := synth.Synthesize(circuits.MustLoad("b03"))
	if err != nil {
		t.Fatal(err)
	}
	tests := splitTests(randPatterns(len(nl.PIs), 80, 21))
	for _, cfg := range parityConfigs {
		label := labelOf(cfg)
		sess, err := cfg.New(nl, nil)
		if err != nil {
			t.Fatal(err)
		}
		oneshot, err := cfg.New(nl, nil)
		if err != nil {
			t.Fatal(err)
		}
		remaining := make([]int, len(sess.Faults()))
		for i := range remaining {
			remaining[i] = i
		}
		cycles := 0
		for ti, test := range tests {
			got, err := sess.AppendTest(test)
			if err != nil {
				t.Fatalf("%s: test %d: %v", label, ti, err)
			}
			want, err := oneshot.RunOn(test, remaining)
			if err != nil {
				t.Fatal(err)
			}
			next := remaining[:0]
			for _, fi := range remaining {
				detSess := got.FirstDetected[fi] >= cycles
				detRef := want.FirstDetected[fi] >= 0
				if detSess != detRef {
					t.Fatalf("%s: test %d fault %d: session detected=%v, per-test RunOn detected=%v",
						label, ti, fi, detSess, detRef)
				}
				if detRef {
					// Detection offsets inside the test must agree too.
					if got.FirstDetected[fi]-cycles != want.FirstDetected[fi] {
						t.Fatalf("%s: test %d fault %d: session cycle %d, RunOn cycle %d",
							label, ti, fi, got.FirstDetected[fi]-cycles, want.FirstDetected[fi])
					}
				} else {
					next = append(next, fi)
				}
			}
			remaining = next
			cycles += len(test)
		}
		if sess.Applied() != cycles {
			t.Errorf("%s: Applied() = %d, want %d", label, sess.Applied(), cycles)
		}
		if len(sess.Frontier()) != len(remaining) {
			t.Errorf("%s: frontier %d faults, per-test bookkeeping says %d",
				label, len(sess.Frontier()), len(remaining))
		}
	}
}

func labelOf(cfg Config) string {
	return fmt.Sprintf("workers=%d/lanewords=%d", cfg.Workers, cfg.LaneWords)
}

// TestAppendAfterAppendTestRejected pins the discipline guard: once a
// sequential session has applied reset-per-test stimuli, a continuous
// Append is a contract violation, and Reset clears it.
func TestAppendAfterAppendTestRejected(t *testing.T) {
	nl, err := synth.Synthesize(circuits.MustLoad("b01"))
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(nl, nil)
	if err != nil {
		t.Fatal(err)
	}
	tests := randPatterns(len(nl.PIs), 6, 3)
	if _, err := s.AppendTest(tests); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(tests); err == nil {
		t.Fatal("Append accepted after AppendTest")
	}
	// The mixing error is a usage error, not a poisoned session: more
	// AppendTests still run, and Reset restores Append.
	if _, err := s.AppendTest(tests); err != nil {
		t.Fatalf("AppendTest after rejected Append: %v", err)
	}
	s.Reset()
	if _, err := s.Append(tests); err != nil {
		t.Fatalf("Append after Reset: %v", err)
	}
}

// TestAppendTestPoisonBeatsDisciplineGuard pins error precedence: a
// session poisoned by a cancelled AppendTest keeps reporting the sticky
// cancellation from Append, not the discipline-mixing error.
func TestAppendTestPoisonBeatsDisciplineGuard(t *testing.T) {
	nl, err := synth.Synthesize(circuits.MustLoad("b01"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cfg := Config{}
	cfg.Ctx = ctx
	s, err := cfg.New(nl, nil)
	if err != nil {
		t.Fatal(err)
	}
	tests := randPatterns(len(nl.PIs), 6, 3)
	cancel()
	if _, err := s.AppendTest(tests); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled AppendTest returned %v", err)
	}
	if _, err := s.Append(tests); !errors.Is(err, context.Canceled) {
		t.Fatalf("poisoned session's Append returned %v, want the sticky cancellation", err)
	}
}

// TestAppendTestCombinationalDelegates checks that on combinational
// circuits AppendTest is Append (patterns carry no state), including the
// absence of the discipline guard.
func TestAppendTestCombinationalDelegates(t *testing.T) {
	nl := buildMux(t)
	s, err := New(nl, nil)
	if err != nil {
		t.Fatal(err)
	}
	pats := exhaustivePatterns(3)
	if _, err := s.AppendTest(pats[:4]); err != nil {
		t.Fatal(err)
	}
	res, err := s.Append(pats[4:])
	if err != nil {
		t.Fatal(err)
	}
	want, err := New(nl, nil)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := want.Run(pats)
	if err != nil {
		t.Fatal(err)
	}
	assertSameProfile(t, "comb AppendTest", res, ref)
}

// TestRetire pins the frontier-retirement contract across engines: a
// retired fault stops being simulated, never reports a detection, and
// retiring every fault of a batch releases it.
func TestRetire(t *testing.T) {
	nl, err := synth.Synthesize(circuits.MustLoad("b03"))
	if err != nil {
		t.Fatal(err)
	}
	tests := splitTests(randPatterns(len(nl.PIs), 60, 33))
	for _, cfg := range parityConfigs {
		label := labelOf(cfg)
		s, err := cfg.New(nl, nil)
		if err != nil {
			t.Fatal(err)
		}
		// Retire a spread of faults before anything runs, and one more
		// between tests (exercising armed-batch lane clearing).
		pre := []int{0, 1, 65, 130}
		for _, fi := range pre {
			if err := s.Retire(fi); err != nil {
				t.Fatalf("%s: %v", label, err)
			}
		}
		var res *Result
		for ti, test := range tests {
			if res, err = s.AppendTest(test); err != nil {
				t.Fatalf("%s: test %d: %v", label, ti, err)
			}
			if ti == 0 {
				if len(s.Frontier()) > 0 {
					if err := s.Retire(s.Frontier()[0]); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		for _, fi := range pre {
			if res.FirstDetected[fi] != -1 {
				t.Errorf("%s: retired fault %d reported detected at %d", label, fi, res.FirstDetected[fi])
			}
		}
		for _, fi := range s.Frontier() {
			for _, p := range pre {
				if fi == p {
					t.Errorf("%s: retired fault %d still on the frontier", label, fi)
				}
			}
		}
		// Out-of-range retire errors; double retire is a no-op.
		if err := s.Retire(len(s.Faults())); err == nil {
			t.Errorf("%s: out-of-range Retire accepted", label)
		}
		if err := s.Retire(0); err != nil {
			t.Errorf("%s: double Retire errored: %v", label, err)
		}
	}
}

// TestRetireWholeBatch retires every fault so all batches release, then
// checks further windows are no-ops that still count cycles.
func TestRetireWholeBatch(t *testing.T) {
	nl, err := synth.Synthesize(circuits.MustLoad("b01"))
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(nl, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range s.Faults() {
		if err := s.Retire(i); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(s.Frontier()); got != 0 {
		t.Fatalf("frontier %d after retiring everything", got)
	}
	res, err := s.AppendTest(randPatterns(len(nl.PIs), 4, 9))
	if err != nil {
		t.Fatal(err)
	}
	if res.Patterns != 4 || res.DetectedCount() != 0 {
		t.Errorf("empty-frontier window: %d patterns, %d detected", res.Patterns, res.DetectedCount())
	}
}
