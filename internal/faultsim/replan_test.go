package faultsim

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/netlist"
)

// replanNetlist builds a sequential netlist whose collapsed fault list
// spills past the widest vector, so the initial W=8 plan holds several
// batches and every re-plan boundary (W8-merge, W8→W4, W4→W1) is
// reachable by retiring frontier slices.
func replanNetlist(t *testing.T) *netlist.Netlist {
	t.Helper()
	nl := randomParityNetlist(t, 99, 4, 420)
	if n := len(Faults(nl)); n <= 8*64 {
		t.Fatalf("want > %d collapsed faults to span multiple W8 batches, got %d", 8*64, n)
	}
	return nl
}

// makeWindows splits a random test sequence into fixed-size Append
// windows, so the serial window-start step (where re-planning hooks in)
// runs many times per campaign.
func makeWindows(nl *netlist.Netlist, total, per int, seed int64) [][]Pattern {
	pats := randPatterns(len(nl.PIs), total, seed)
	var out [][]Pattern
	for lo := 0; lo < len(pats); lo += per {
		out = append(out, pats[lo:min(lo+per, len(pats))])
	}
	return out
}

// batchWidths returns the lane widths of the session's live batch plan,
// in schedule order (white-box: the re-plan tests assert the compaction
// actually happened, so the parity assertions are not vacuous).
func batchWidths(s *Simulator) []int {
	var out []int
	for _, b := range s.batches {
		if !b.retired() {
			out = append(out, b.width())
		}
	}
	return out
}

// livePlanCost sums the per-window pass cost of the live plan.
func livePlanCost(s *Simulator) int {
	c := 0
	for _, w := range batchWidths(s) {
		c += passCost(w)
	}
	return c
}

// retireStep retires the half-open frontier slice [lo,hi) after the
// given window. Negative bounds count from the frontier's end, so a
// schedule can shave the back ("retire the last word") or protect a
// tail ("retire everything but the last 40") without knowing how many
// faults the window's detections already dropped.
type retireStep struct {
	afterWindow int
	lo, hi      int
}

func (st retireStep) bounds(n int) (int, int) {
	lo, hi := st.lo, st.hi
	if lo < 0 {
		lo += n
	}
	if hi < 0 {
		hi += n
	}
	lo = max(0, min(lo, n))
	hi = max(lo, min(hi, n))
	return lo, hi
}

// runScheduled replays the same windowed Append + Retire schedule on a
// simulator built under cfg and returns the final first-detection
// profile (caller-owned) plus the session for white-box inspection.
// Identical schedules across engine configurations must produce
// identical profiles.
func runScheduled(t *testing.T, nl *netlist.Netlist, cfg Config, windows [][]Pattern, steps []retireStep) ([]int, *Simulator) {
	t.Helper()
	s, err := cfg.New(nl, nil)
	if err != nil {
		t.Fatal(err)
	}
	for wi, win := range windows {
		if _, err := s.Append(win); err != nil {
			t.Fatal(err)
		}
		for _, st := range steps {
			if st.afterWindow != wi {
				continue
			}
			front := s.Frontier()
			lo, hi := st.bounds(len(front))
			for _, fi := range front[lo:hi] {
				if err := s.Retire(fi); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return s.Current().Clone().FirstDetected, s
}

func diffProfiles(t *testing.T, label string, got, want []int) {
	t.Helper()
	bad := 0
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("%s: fault %d first detected at %d, reference says %d", label, i, got[i], want[i])
			if bad++; bad > 8 {
				t.FailNow()
			}
		}
	}
	if t.Failed() {
		t.FailNow()
	}
}

// TestReplanRetireOrders drives the re-planner by retiring frontier
// words in three orders — the leading word, the trailing word, and a
// middle slice — and pins the result against the serial reference and
// the StaticPlan ablation. Each order then shaves the frontier to a
// ragged word, crossing the width boundaries on the way down.
func TestReplanRetireOrders(t *testing.T) {
	nl := replanNetlist(t)
	windows := makeWindows(nl, 96, 8, 5)
	orders := map[string][]retireStep{
		// Retire the frontier's leading word first, then everything but a
		// ragged 40-lane tail.
		"first": {
			{afterWindow: 1, lo: 0, hi: 64},
			{afterWindow: 3, lo: 0, hi: -40},
		},
		// Retire from the back: the last word first, then all but the
		// leading 40.
		"last": {
			{afterWindow: 1, lo: -64, hi: 1 << 30},
			{afterWindow: 3, lo: 40, hi: 1 << 30},
		},
		// Retire a middle slice, leaving live lanes on both sides.
		"middle": {
			{afterWindow: 1, lo: 100, hi: 420},
			{afterWindow: 3, lo: 10, hi: -3},
		},
	}
	for name, steps := range orders {
		t.Run(name, func(t *testing.T) {
			ref, _ := runScheduled(t, nl, Config{Options: engine.Options{Workers: 1}}, windows, steps)
			static, _ := runScheduled(t, nl, Config{StaticPlan: true, Options: engine.Options{LaneWords: 8}}, windows, steps)
			replan, s := runScheduled(t, nl, Config{Options: engine.Options{LaneWords: 8}}, windows, steps)
			diffProfiles(t, "static vs reference", static, ref)
			diffProfiles(t, "replan vs reference", replan, ref)
			if got := batchWidths(s); len(got) > 1 || (len(got) == 1 && got[0] != 1) {
				t.Errorf("after shaving to a ragged word, want at most one W1 batch, got widths %v", got)
			}
		})
	}
}

// TestReplanSingleLiveWordBatch pins the single-live-word case: retiring
// everything but a handful of survivors scattered across the original
// batches must collapse the plan onto one scalar-specialized W1 machine,
// bit-identically.
func TestReplanSingleLiveWordBatch(t *testing.T) {
	nl := replanNetlist(t)
	windows := makeWindows(nl, 64, 8, 9)
	// Survivors: frontier positions 1, the middle one, and the second
	// from the end; everything else retires after the first window.
	steps := []retireStep{
		{afterWindow: 0, lo: 2, hi: -400},
		{afterWindow: 0, lo: 3, hi: -1},
		{afterWindow: 0, lo: 0, hi: 1},
	}
	ref, _ := runScheduled(t, nl, Config{Options: engine.Options{Workers: 1}}, windows, steps)
	replan, s := runScheduled(t, nl, Config{Options: engine.Options{LaneWords: 8}}, windows, steps)
	diffProfiles(t, "replan vs reference", replan, ref)
	if got := batchWidths(s); len(got) > 1 || (len(got) == 1 && got[0] != 1) {
		t.Errorf("want at most one W1 batch for the scattered survivors, got widths %v", got)
	}
}

// TestReplanBoundariesObserved asserts the compaction ladder actually
// fires — W8 batches merge, then narrow through W4 down to W1 — so the
// parity tests above exercise re-planned machines, not a plan that never
// changed. The plan cost must also be monotonically non-increasing (a
// re-plan only ever replaces a plan with a strictly cheaper one).
func TestReplanBoundariesObserved(t *testing.T) {
	nl := replanNetlist(t)
	s, err := Config{Options: engine.Options{LaneWords: 8}}.New(nl, nil)
	if err != nil {
		t.Fatal(err)
	}
	if w := batchWidths(s); len(w) < 2 || w[0] != 8 {
		t.Fatalf("initial plan should start with multiple batches at W8, got %v", w)
	}
	windows := makeWindows(nl, 96, 8, 5)
	// Frontier sizes that make each rung of the ladder the cheapest plan:
	// 520 merges the half-dead W8 batches into one, 200 plans a W4, 40 a
	// W1, 3 a near-empty W1 word.
	targets := []int{520, 200, 40, 3}
	seen := map[int]bool{}
	lastCost := livePlanCost(s)
	ti := 0
	for wi, win := range windows {
		if _, err := s.Append(win); err != nil {
			t.Fatal(err)
		}
		if c := livePlanCost(s); c > lastCost {
			t.Fatalf("window %d: plan cost grew %d -> %d", wi, lastCost, c)
		} else {
			lastCost = c
		}
		for _, w := range batchWidths(s) {
			seen[w] = true
		}
		if ti < len(targets) {
			front := s.Frontier()
			for len(front) > targets[ti] {
				if err := s.Retire(front[len(front)-1]); err != nil {
					t.Fatal(err)
				}
				front = front[:len(front)-1]
			}
			ti++
		}
	}
	for _, w := range []int{8, 4, 1} {
		if !seen[w] {
			t.Errorf("compaction ladder never planned a W%d batch (saw %v)", w, seen)
		}
	}
	if got := batchWidths(s); len(got) > 1 || (len(got) == 1 && got[0] != 1) {
		t.Errorf("final plan: want at most one W1 batch, got %v", got)
	}
}

// TestReplanAppendTestDiscipline pins the interaction with the
// reset-per-test discipline: retiring between tests (the ATPG drop-sim
// pattern) re-plans survivors onto fresh machines mid-session, and the
// transplanted flip-flop state must NOT leak into the next test — every
// machine restarts from power-on, so the profile matches the serial
// reference exactly.
func TestReplanAppendTestDiscipline(t *testing.T) {
	nl := replanNetlist(t)
	tests := makeWindows(nl, 60, 6, 11) // ten six-cycle power-on tests
	n := len(Faults(nl))
	run := func(cfg Config) []int {
		s, err := cfg.New(nl, nil)
		if err != nil {
			t.Fatal(err)
		}
		for ti, test := range tests {
			if _, err := s.AppendTest(test); err != nil {
				t.Fatal(err)
			}
			// Halve the frontier between tests (keep the front), crossing
			// every width boundary over the campaign.
			front := s.Frontier()
			keep := n >> uint(ti+1)
			if keep < len(front) {
				for _, fi := range front[keep:] {
					if err := s.Retire(fi); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		return s.Current().Clone().FirstDetected
	}
	ref := run(Config{Options: engine.Options{Workers: 1}})
	static := run(Config{StaticPlan: true, Options: engine.Options{LaneWords: 8}})
	replan := run(Config{Options: engine.Options{LaneWords: 8}})
	diffProfiles(t, "static vs reference", static, ref)
	diffProfiles(t, "replan vs reference", replan, ref)
}

// TestStaticPlanKnob pins the ablation knob itself: under StaticPlan
// whole batches may retire, but no surviving lane is ever moved — every
// live batch is one of the initially planned batches, always.
func TestStaticPlanKnob(t *testing.T) {
	nl := replanNetlist(t)
	windows := makeWindows(nl, 64, 8, 5)
	static, err := Config{StaticPlan: true, Options: engine.Options{LaneWords: 8}}.New(nl, nil)
	if err != nil {
		t.Fatal(err)
	}
	initial := map[seqBatch]bool{}
	for _, b := range static.batches {
		initial[b] = true
	}
	for wi, win := range windows {
		if _, err := static.Append(win); err != nil {
			t.Fatal(err)
		}
		for _, b := range static.batches {
			if !initial[b] {
				t.Fatalf("window %d: StaticPlan scheduled a batch (W%d) outside the initial plan", wi, b.width())
			}
		}
		// Retire half the frontier to hand a re-planner its best case.
		front := static.Frontier()
		for _, fi := range front[len(front)/2:] {
			if err := static.Retire(fi); err != nil {
				t.Fatal(err)
			}
		}
	}
}
