package faultsim

import "fmt"

// Checkpoint is a serializable snapshot of a simulation session at a
// window boundary: how many patterns/cycles have been applied, the
// cumulative first-detection profile, and the live frontier. Together
// with the applied stimulus (which campaign jobs re-derive from their
// seed rather than store), it is everything needed to resume the session
// bit-identically — the machine state of the surviving fault lanes is
// reconstructed by replaying the applied prefix over the frontier subset
// only, which is cheap precisely because long campaigns shrink the
// frontier early.
//
// Checkpoints cover the continuous (Append) application discipline; a
// session in the reset-per-test (AppendTest) discipline has no
// cross-test machine state worth snapshotting — resume it by replaying
// whole tests.
type Checkpoint struct {
	// Applied is the number of patterns (combinational) or cycles
	// (sequential) applied when the checkpoint was taken.
	Applied int
	// FirstDetected is the cumulative first-detection profile over the
	// session's full fault list (global indices, -1 for undetected), as
	// Result.FirstDetected.
	FirstDetected []int
	// Frontier lists the fault indices still under simulation.
	Frontier []int
}

// Checkpoint snapshots the session state. The returned checkpoint is
// caller-owned and detached — serializing it after the window that
// produced it is safe at any later time.
func (s *Simulator) Checkpoint() *Checkpoint {
	return &Checkpoint{
		Applied:       s.applied,
		FirstDetected: append([]int(nil), s.detected...),
		Frontier:      s.Frontier(),
	}
}

// Restore rebuilds the session at a checkpoint taken by an equivalent
// simulator (same netlist, same fault list, any engine configuration —
// results are setting-independent) given the stimulus that had been
// applied when the checkpoint was taken. The frontier's machine state is
// reconstructed by replaying that stimulus over the frontier subset
// alone: a frontier fault by definition survived the prefix, so the
// replay detects nothing and leaves every surviving lane's flip-flop
// state exactly where the interrupted session left it; detections the
// checkpoint already recorded are merged back in. A later Append
// continues the campaign bit-identically to one that was never
// interrupted — the kill/resume legs in internal/difftest pin this.
//
// Restore verifies the replay against the checkpoint and fails (leaving
// the session reset) if any frontier fault is detected by the prefix —
// the signature of a checkpoint paired with the wrong stimulus.
func (s *Simulator) Restore(ck *Checkpoint, applied []Pattern) error {
	if ck == nil {
		return fmt.Errorf("faultsim: nil checkpoint")
	}
	if len(ck.FirstDetected) != len(s.faults) {
		return fmt.Errorf("faultsim: checkpoint covers %d faults, session has %d",
			len(ck.FirstDetected), len(s.faults))
	}
	if len(applied) != ck.Applied {
		return fmt.Errorf("faultsim: checkpoint applied %d patterns, got %d to replay",
			ck.Applied, len(applied))
	}
	for _, fi := range ck.Frontier {
		if fi < 0 || fi >= len(s.faults) {
			return fmt.Errorf("faultsim: checkpoint frontier index %d out of range [0,%d)",
				fi, len(s.faults))
		}
		if ck.FirstDetected[fi] >= 0 {
			return fmt.Errorf("faultsim: checkpoint lists fault %d both detected and on the frontier", fi)
		}
	}
	frontier := ck.Frontier
	if frontier == nil {
		// A decoded empty frontier may arrive nil; RunOn(nil) means "the
		// whole fault list", which is not what an exhausted campaign wants.
		frontier = []int{}
	}
	res, err := s.RunOn(applied, frontier)
	if err != nil {
		return err
	}
	for _, fi := range ck.Frontier {
		if res.FirstDetected[fi] >= 0 {
			s.Reset()
			return fmt.Errorf("faultsim: frontier fault %d detected at %d during checkpoint replay; checkpoint does not match the stimulus",
				fi, res.FirstDetected[fi])
		}
	}
	// Merge the detections recorded before the checkpoint: those faults
	// are excluded from the restored subset session, so the replay left
	// them at -1.
	for i, d := range ck.FirstDetected {
		if d >= 0 {
			s.detected[i] = d
		}
	}
	return nil
}
