package faultsim

import (
	"fmt"
	"math/bits"

	"repro/internal/lane"
	"repro/internal/netlist"
	"repro/internal/par"
)

// Pattern is one gate-level test vector: a 0/1 value per primary input, in
// netlist PI order.
type Pattern []uint8

// Result is the outcome of fault-simulating an ordered test set.
type Result struct {
	Faults []Fault
	// FirstDetected[i] is the index (pattern index for combinational
	// circuits, cycle index for sequential ones) at which fault i is first
	// detected, or -1 if the test set never detects it.
	FirstDetected []int
	// Patterns is the number of applied patterns/cycles.
	Patterns int
}

// DetectedCount returns the number of detected faults.
func (r *Result) DetectedCount() int {
	n := 0
	for _, d := range r.FirstDetected {
		if d >= 0 {
			n++
		}
	}
	return n
}

// Coverage returns detected/total in [0,1].
func (r *Result) Coverage() float64 {
	if len(r.Faults) == 0 {
		return 0
	}
	return float64(r.DetectedCount()) / float64(len(r.Faults))
}

// Curve returns the fault coverage after each applied pattern: element k is
// the coverage achieved by the first k+1 patterns.
func (r *Result) Curve() []float64 {
	counts := make([]int, r.Patterns)
	for _, d := range r.FirstDetected {
		if d >= 0 {
			counts[d]++
		}
	}
	curve := make([]float64, r.Patterns)
	acc := 0
	total := len(r.Faults)
	for k := 0; k < r.Patterns; k++ {
		acc += counts[k]
		if total > 0 {
			curve[k] = float64(acc) / float64(total)
		}
	}
	return curve
}

// Undetected returns the faults the test set missed.
func (r *Result) Undetected() []Fault {
	var out []Fault
	for i, d := range r.FirstDetected {
		if d < 0 {
			out = append(out, r.Faults[i])
		}
	}
	return out
}

// Config tunes fault simulation. The zero value is the fast default.
type Config struct {
	// Workers sizes the fault-level worker pool: 0 uses all cores
	// (compiled parallel-fault engine), n > 1 uses exactly n workers
	// (compiled engine), and 1 selects the single-fault reference engine —
	// one Evaluator pass per fault, strictly serial — kept for
	// differential testing, mirroring mutscore.Config. Results are
	// identical for every setting (see parity_test.go).
	Workers int
	// LaneWords selects the compiled engine's lane vector width in 64-bit
	// words: 1, 4 or 8 force 64, 256 or 512 fault lanes per pass, and 0
	// picks the measured auto default — 8 for sequential circuits (wide
	// vectors amortize the per-gate decode over more fault machines) and
	// 1 for combinational ones (per-fault early exit makes the first
	// 64-pattern batch decisive, so extra words are waste; see the
	// engine-ablation benchmarks). W=1 is the original single-word
	// engine, bit for bit. The serial reference engine (Workers == 1)
	// simulates one fault at a time and ignores this knob. Results are
	// identical for every setting.
	LaneWords int
}

func (c Config) reference() bool { return c.Workers == 1 }

// Simulator runs stuck-at fault simulation against a fixed netlist and
// collapsed fault list.
type Simulator struct {
	nl     *netlist.Netlist
	faults []Fault
	cfg    Config
	words  int // resolved lane vector width

	good *netlist.Evaluator // reference engine (Workers == 1)
	bad  *netlist.Evaluator
	prog *netlist.Program // compiled engine (every other setting)
}

// New builds a fault simulator with the default configuration. The fault
// list defaults to Faults(nl) when faults is nil.
func New(nl *netlist.Netlist, faults []Fault) (*Simulator, error) {
	return Config{}.New(nl, faults)
}

// New builds a fault simulator under this configuration. The fault list
// defaults to Faults(nl) when faults is nil.
func (c Config) New(nl *netlist.Netlist, faults []Fault) (*Simulator, error) {
	if _, err := lane.Resolve(c.LaneWords); err != nil {
		return nil, fmt.Errorf("faultsim: %w", err)
	}
	words := c.LaneWords
	if words == 0 {
		// Auto width, per topology: see the LaneWords comment.
		if nl.IsSequential() {
			words = 8
		} else {
			words = 1
		}
	}
	var err error
	if faults == nil {
		faults = Faults(nl)
	}
	s := &Simulator{nl: nl, faults: faults, cfg: c, words: words}
	if c.reference() {
		if s.good, err = netlist.NewEvaluator(nl); err != nil {
			return nil, err
		}
		if s.bad, err = netlist.NewEvaluator(nl); err != nil {
			return nil, err
		}
		return s, nil
	}
	if s.prog, err = netlist.Compile(nl); err != nil {
		return nil, err
	}
	return s, nil
}

// Faults returns the fault list under simulation.
func (s *Simulator) Faults() []Fault { return s.faults }

// Run fault-simulates the ordered test set and returns the first-detection
// profile. Combinational circuits treat each pattern independently (W×64
// patterns per pass); sequential circuits treat the whole set as one
// sequence applied from power-on reset, simulated W×64 faults at a time
// (parallel-fault, one fault machine per lane) with per-lane fault
// dropping at first detection. W is the configured LaneWords.
func (s *Simulator) Run(tests []Pattern) (*Result, error) {
	return s.RunOn(tests, nil)
}

// RunOn is Run restricted to the faults whose indices are listed (nil
// means the whole list; a non-nil empty list simulates nothing). Indices
// must be unique — duplicates would put the same fault in two parallel
// batches. Excluded faults keep FirstDetected == -1. Fault-dropping
// callers (ATPG) use it to re-simulate only still-alive faults.
func (s *Simulator) RunOn(tests []Pattern, include []int) (*Result, error) {
	for i, p := range tests {
		if len(p) != len(s.nl.PIs) {
			return nil, fmt.Errorf("faultsim: pattern %d has %d values for %d PIs", i, len(p), len(s.nl.PIs))
		}
	}
	if include == nil {
		include = make([]int, len(s.faults))
		for i := range include {
			include[i] = i
		}
	} else {
		seen := make([]bool, len(s.faults))
		for _, fi := range include {
			if fi < 0 || fi >= len(s.faults) {
				return nil, fmt.Errorf("faultsim: fault index %d out of range [0,%d)", fi, len(s.faults))
			}
			if seen[fi] {
				return nil, fmt.Errorf("faultsim: fault index %d listed twice", fi)
			}
			seen[fi] = true
		}
	}
	res := &Result{
		Faults:        s.faults,
		FirstDetected: make([]int, len(s.faults)),
		Patterns:      len(tests),
	}
	for i := range res.FirstDetected {
		res.FirstDetected[i] = -1
	}
	if s.nl.IsSequential() {
		if s.cfg.reference() {
			return res, s.runSequentialRef(res, tests, include)
		}
		return res, s.runSequential(res, tests, include)
	}
	if s.cfg.reference() {
		return res, s.runCombinationalRef(res, tests, include)
	}
	return res, s.runCombinational(res, tests, include)
}

const allLanes = ^uint64(0)

// laneMaskFor returns the mask selecting the first n of 64 lanes (the
// reference engine's single-word tail mask).
func laneMaskFor(n int) uint64 {
	if n >= 64 {
		return allLanes
	}
	return uint64(1)<<uint(n) - 1
}

// runCombinational dispatches the pattern-parallel scheduler at the
// resolved lane width; each width stencils its own scheduler and machine.
func (s *Simulator) runCombinational(res *Result, tests []Pattern, include []int) error {
	switch s.words {
	case 4:
		return runCombinationalLanes[lane.W4](s, res, tests, include)
	case 8:
		return runCombinationalLanes[lane.W8](s, res, tests, include)
	default:
		return runCombinationalLanes[lane.W1](s, res, tests, include)
	}
}

// packPatternBatches packs the test set into W×64-pattern PI vector
// batches (lane k·64+t of every vector is pattern lo+k·64+t).
func packPatternBatches[W lane.Word](s *Simulator, tests []Pattern) [][]W {
	L := lane.Count[W]()
	nBatches := (len(tests) + L - 1) / L
	out := make([][]W, nBatches)
	for b := 0; b < nBatches; b++ {
		lo := b * L
		hi := min(lo+L, len(tests))
		words := make([]W, len(s.nl.PIs))
		for pi := range words {
			var w W
			for ln, t := lo, 0; ln < hi; ln, t = ln+1, t+1 {
				if tests[ln][pi] != 0 {
					w[t>>6] |= 1 << uint(t&63)
				}
			}
			words[pi] = w
		}
		out[b] = words
	}
	return out
}

// broadcastWords converts each pattern to PI vectors replicated across
// all lanes (the sequential stimulus: every lane applies the same cycle).
func broadcastWords[W lane.Word](s *Simulator, tests []Pattern) [][]W {
	out := make([][]W, len(tests))
	for cyc, p := range tests {
		words := make([]W, len(s.nl.PIs))
		for pi, v := range p {
			if v != 0 {
				words[pi] = lane.Broadcast[W](allLanes)
			}
		}
		out[cyc] = words
	}
	return out
}

// runCombinationalLanes is the compiled pattern-parallel path: per fault,
// one Machine pass per W×64-pattern batch until first detection, fanned
// over a worker pool with a private Machine per worker.
func runCombinationalLanes[W lane.Word](s *Simulator, res *Result, tests []Pattern, include []int) error {
	batchPIs := packPatternBatches[W](s, tests)
	goodM := netlist.NewMachine[W](s.prog)
	batchGood := make([][]W, len(batchPIs))
	for b, words := range batchPIs {
		batchGood[b] = append([]W(nil), goodM.Eval(words)...)
	}

	L := lane.Count[W]()
	workers := par.Workers(s.cfg.Workers, len(include))
	machines := make([]*netlist.Machine[W], workers)
	machines[0] = goodM
	for w := 1; w < workers; w++ {
		machines[w] = netlist.NewMachine[W](s.prog)
	}
	all := lane.Broadcast[W](allLanes)
	par.Indexed(len(include), s.cfg.Workers, func(w, j int) {
		fi := include[j]
		m := machines[w]
		m.ClearFaults()
		m.InjectFault(s.faults[fi].Site, all)
		for b, words := range batchPIs {
			lo := b * L
			laneMask := lane.FirstN[W](len(tests) - lo)
			badOut := m.Eval(words)
			var diff W
			for po := range badOut {
				bad, good := badOut[po], batchGood[b][po]
				for k := 0; k < len(diff); k++ {
					diff[k] |= (bad[k] ^ good[k]) & laneMask[k]
				}
			}
			// First detection is the lowest set lane: words in order, then
			// the lowest bit of the first non-zero word.
			for k := 0; k < len(diff); k++ {
				if diff[k] != 0 {
					res.FirstDetected[fi] = lo + k*64 + bits.TrailingZeros64(diff[k])
					return
				}
			}
		}
	})
	return nil
}

// seqChunk is one parallel-fault work item: faults include[lo:hi]
// simulated on a machine of the given lane width.
type seqChunk struct {
	lo, hi int
	words  int
}

// passCost approximates the relative cost of one instruction-stream pass
// at each width, in tenths of a W=1 pass (measured on the benchmark
// circuits: wider passes amortize the per-gate decode but touch W times
// the data).
func passCost(words int) int {
	switch words {
	case 4:
		return 19
	case 8:
		return 22
	}
	return 10
}

// tailWidth picks the cheapest lane width ≤ maxWords for an n-fault tail:
// the width minimizing batch count × per-pass cost, preferring narrower
// machines on ties. A 55-fault tail runs on a one-word machine instead of
// wasting seven dead words per pass of an eight-word one.
func tailWidth(n, maxWords int) int {
	best, bestCost := 1, (n+63)/64*passCost(1)
	for _, w := range []int{4, 8} {
		if w > maxWords {
			break
		}
		if c := (n + w*64 - 1) / (w * 64) * passCost(w); c < bestCost {
			best, bestCost = w, c
		}
	}
	return best
}

// planSeqChunks carves the include list into lane batches: full-width
// batches at the configured width, then ragged-tail batches at whatever
// narrower width simulates the remainder cheapest.
func (s *Simulator) planSeqChunks(n int) []seqChunk {
	var out []seqChunk
	L := s.words * 64
	lo := 0
	for n-lo >= L {
		out = append(out, seqChunk{lo: lo, hi: lo + L, words: s.words})
		lo += L
	}
	for lo < n {
		w := tailWidth(n-lo, s.words)
		hi := min(lo+w*64, n)
		out = append(out, seqChunk{lo: lo, hi: hi, words: w})
		lo = hi
	}
	return out
}

// seqMachines lazily holds one machine per lane width for one worker;
// most workers only ever instantiate the configured width, and tail
// chunks borrow a narrow machine on demand.
type seqMachines struct {
	w1 *netlist.Machine[lane.W1]
	w4 *netlist.Machine[lane.W4]
	w8 *netlist.Machine[lane.W8]
}

// runSequential is the parallel-fault path the lane vectors were built
// for: the undetected queue is consumed W×64 faults per batch, one fault
// machine per lane, against broadcast stimuli. A lane is dropped at its
// first detection; a batch ends early once every lane has dropped.
// Batches are independent, so they fan out over the worker pool. The
// good trace is simulated once, single-word (every lane of a broadcast
// run is identical), and shared by chunks of every width.
func (s *Simulator) runSequential(res *Result, tests []Pattern, include []int) error {
	chunks := s.planSeqChunks(len(include))

	// Width-independent stimuli and good trace.
	pi1 := broadcastWords[lane.W1](s, tests)
	goodM := netlist.NewMachine[lane.W1](s.prog)
	goodPOs := make([][]uint64, len(tests))
	for cyc, words := range pi1 {
		out := goodM.Eval(words)
		row := make([]uint64, len(out))
		for po := range out {
			row[po] = out[po][0]
		}
		goodPOs[cyc] = row
		goodM.Clock()
	}

	// Broadcast stimuli per width actually scheduled.
	var pi4 [][]lane.W4
	var pi8 [][]lane.W8
	for _, c := range chunks {
		switch {
		case c.words == 4 && pi4 == nil:
			pi4 = broadcastWords[lane.W4](s, tests)
		case c.words == 8 && pi8 == nil:
			pi8 = broadcastWords[lane.W8](s, tests)
		}
	}

	workers := par.Workers(s.cfg.Workers, len(chunks))
	machines := make([]seqMachines, workers)
	machines[0].w1 = goodM
	par.Indexed(len(chunks), s.cfg.Workers, func(w, ci int) {
		c := chunks[ci]
		batch := include[c.lo:c.hi]
		mw := &machines[w]
		switch c.words {
		case 4:
			if mw.w4 == nil {
				mw.w4 = netlist.NewMachine[lane.W4](s.prog)
			}
			runSeqChunk(s, res, tests, batch, mw.w4, pi4, goodPOs)
		case 8:
			if mw.w8 == nil {
				mw.w8 = netlist.NewMachine[lane.W8](s.prog)
			}
			runSeqChunk(s, res, tests, batch, mw.w8, pi8, goodPOs)
		default:
			if mw.w1 == nil {
				mw.w1 = netlist.NewMachine[lane.W1](s.prog)
			}
			runSeqChunk(s, res, tests, batch, mw.w1, pi1, goodPOs)
		}
	})
	return nil
}

// runSeqChunk simulates one fault batch, one fault machine per lane,
// with per-lane dropping at first detection and early exit once every
// lane (and so every word) has dropped.
func runSeqChunk[W lane.Word](s *Simulator, res *Result, tests []Pattern, batch []int, m *netlist.Machine[W], piWords [][]W, goodPOs [][]uint64) {
	m.ClearFaults()
	for ln, fi := range batch {
		m.InjectFault(s.faults[fi].Site, lane.Bit[W](ln))
	}
	m.Reset()
	active := lane.FirstN[W](len(batch))
	for cyc := range tests {
		badOut := m.Eval(piWords[cyc])
		good := goodPOs[cyc]
		anyActive := false
		for k := 0; k < len(active); k++ {
			if active[k] == 0 {
				continue // every lane of this word already dropped
			}
			var d uint64
			for po := range badOut {
				d |= badOut[po][k] ^ good[po]
			}
			d &= active[k]
			for d != 0 {
				ln := bits.TrailingZeros64(d)
				res.FirstDetected[batch[k*64+ln]] = cyc
				d &^= 1 << uint(ln)
				active[k] &^= 1 << uint(ln)
			}
			if active[k] != 0 {
				anyActive = true
			}
		}
		if !anyActive {
			return
		}
		m.Clock()
	}
}

// runCombinationalRef is the single-fault reference: one Evaluator pass
// per fault per batch, strictly serial. Kept verbatim as the differential
// baseline for the compiled engine.
func (s *Simulator) runCombinationalRef(res *Result, tests []Pattern, include []int) error {
	batchPIs := s.packPatternBatchesRef(tests)
	batchGood := make([][]uint64, len(batchPIs))
	for b, words := range batchPIs {
		goodOut, err := s.good.Eval(words)
		if err != nil {
			return err
		}
		batchGood[b] = append([]uint64(nil), goodOut...)
	}
	for _, fi := range include {
	batches:
		for b, words := range batchPIs {
			lo := b * 64
			laneMask := laneMaskFor(len(tests) - lo)
			badOut := s.bad.EvalWith(words, s.faults[fi].Site, allLanes)
			var diff uint64
			for po := range badOut {
				diff |= (badOut[po] ^ batchGood[b][po]) & laneMask
			}
			if diff != 0 {
				res.FirstDetected[fi] = lo + bits.TrailingZeros64(diff)
				break batches
			}
		}
	}
	return nil
}

// packPatternBatchesRef packs the test set into 64-pattern PI word
// batches for the single-word Evaluator (bit t of every word is pattern
// lo+t).
func (s *Simulator) packPatternBatchesRef(tests []Pattern) [][]uint64 {
	nBatches := (len(tests) + 63) / 64
	out := make([][]uint64, nBatches)
	for b := 0; b < nBatches; b++ {
		lo := b * 64
		hi := min(lo+64, len(tests))
		words := make([]uint64, len(s.nl.PIs))
		for pi := range words {
			var w uint64
			for ln, t := lo, 0; ln < hi; ln, t = ln+1, t+1 {
				if tests[ln][pi] != 0 {
					w |= 1 << uint(t)
				}
			}
			words[pi] = w
		}
		out[b] = words
	}
	return out
}

// runSequentialRef is the single-fault reference: each fault replays the
// whole sequence from power-on reset on its own Evaluator, broadcast
// across all lanes, strictly serial.
func (s *Simulator) runSequentialRef(res *Result, tests []Pattern, include []int) error {
	piWords := make([][]uint64, len(tests))
	for cyc, p := range tests {
		words := make([]uint64, len(s.nl.PIs))
		for pi, v := range p {
			if v != 0 {
				words[pi] = allLanes
			}
		}
		piWords[cyc] = words
	}
	goodPOs := make([][]uint64, len(tests))
	s.good.Reset()
	for cyc, words := range piWords {
		out, err := s.good.Eval(words)
		if err != nil {
			return err
		}
		goodPOs[cyc] = append([]uint64(nil), out...)
		s.good.Clock()
	}
	for _, fi := range include {
		f := s.faults[fi]
		s.bad.Reset()
		for cyc := range tests {
			badOut := s.bad.EvalWith(piWords[cyc], f.Site, allLanes)
			var diff uint64
			for po := range badOut {
				diff |= badOut[po] ^ goodPOs[cyc][po]
			}
			if diff != 0 {
				res.FirstDetected[fi] = cyc
				break
			}
			s.bad.ClockWith(f.Site, allLanes)
		}
	}
	return nil
}
