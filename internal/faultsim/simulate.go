package faultsim

import (
	"context"
	"fmt"
	"math/bits"

	"repro/internal/engine"
	"repro/internal/lane"
	"repro/internal/netlist"
	"repro/internal/par"
)

// Pattern is one gate-level test vector: a 0/1 value per primary input, in
// netlist PI order.
type Pattern []uint8

// Result is the outcome of fault-simulating an ordered test set.
//
// Ownership follows the session contract (package engine): Run and RunOn
// return a caller-owned Result, while Append and AppendTest return a
// session-owned view that the next call on the same Simulator overwrites
// — Clone it to retain it across calls.
type Result struct {
	Faults []Fault
	// FirstDetected[i] is the index (pattern index for combinational
	// circuits, cycle index for sequential ones) at which fault i is first
	// detected, or -1 if the test set never detects it.
	FirstDetected []int
	// Patterns is the number of applied patterns/cycles.
	Patterns int
}

// Clone returns a caller-owned deep copy, detached from any simulator
// session. The Faults list is shared — it is immutable session input.
func (r *Result) Clone() *Result {
	return &Result{
		Faults:        r.Faults,
		FirstDetected: append([]int(nil), r.FirstDetected...),
		Patterns:      r.Patterns,
	}
}

// DetectedCount returns the number of detected faults.
func (r *Result) DetectedCount() int {
	n := 0
	for _, d := range r.FirstDetected {
		if d >= 0 {
			n++
		}
	}
	return n
}

// Coverage returns detected/total in [0,1].
func (r *Result) Coverage() float64 {
	if len(r.Faults) == 0 {
		return 0
	}
	return float64(r.DetectedCount()) / float64(len(r.Faults))
}

// Curve returns the fault coverage after each applied pattern: element k is
// the coverage achieved by the first k+1 patterns.
func (r *Result) Curve() []float64 {
	counts := make([]int, r.Patterns)
	for _, d := range r.FirstDetected {
		if d >= 0 {
			counts[d]++
		}
	}
	curve := make([]float64, r.Patterns)
	acc := 0
	total := len(r.Faults)
	for k := 0; k < r.Patterns; k++ {
		acc += counts[k]
		if total > 0 {
			curve[k] = float64(acc) / float64(total)
		}
	}
	return curve
}

// Undetected returns the faults the test set missed.
func (r *Result) Undetected() []Fault {
	var out []Fault
	for i, d := range r.FirstDetected {
		if d < 0 {
			out = append(out, r.Faults[i])
		}
	}
	return out
}

// Config tunes fault simulation. The zero value is the fast default. The
// execution knobs are the shared engine surface (see engine.Options for
// the Workers/LaneWords semantics, the progress hook and cancellation):
// Workers == 1 selects the single-fault reference engine — one Evaluator
// pass per fault, strictly serial, kept for differential testing — and a
// zero LaneWords picks the measured per-topology auto width: 8 words for
// sequential circuits (wide vectors amortize the per-gate decode over
// more fault machines) and 1 for combinational ones (per-fault early exit
// makes the first 64-pattern batch decisive, so extra words are waste;
// see the engine-ablation benchmarks). Results are identical for every
// setting (see parity_test.go and internal/difftest).
type Config struct {
	engine.Options
	// StaticPlan pins the initial parallel-fault batch plan for the
	// whole session, disabling the scheduler's mid-campaign re-planning
	// (the "masked execution" compaction that moves surviving lanes from
	// half-dead wide batches onto narrower machines; see
	// ARCHITECTURE.md). Results are bit-identical either way — lanes are
	// independent and the stimulus is broadcast — so the knob exists for
	// the scheduler-ablation benchmarks and the differential fuzz
	// harness, not for production tuning.
	StaticPlan bool
}

func (c Config) reference() bool { return c.Serial() }

// Simulator runs stuck-at fault simulation against a fixed netlist and
// collapsed fault list.
//
// A Simulator is a session: Run simulates a test set from power-on reset,
// and Append extends the applied sequence in place — the good-machine
// trace, the per-fault drop state and the live-fault frontier carry over,
// so Append(t1) followed by Append(t2) is bit-identical to Run(t1 ∥ t2)
// while only simulating the still-undetected frontier over the new
// cycles. Run is reset-plus-Append; Reset restarts the session
// explicitly. Not safe for concurrent use.
type Simulator struct {
	nl     *netlist.Netlist
	faults []Fault
	cfg    Config
	words  int // resolved lane vector width

	good *netlist.Evaluator // reference engine (Workers == 1)
	bad  *netlist.Evaluator
	prog *netlist.Program // compiled engine (every other setting)

	// Session state, rebuilt by Reset (and so by Run/RunOn).
	applied  int                       // cycles (sequential) / patterns (combinational) applied
	detected []int                     // cumulative first-detection profile over faults
	live     []int                     // frontier: included faults not yet detected
	batches  []seqBatch                // live parallel-fault batches (compiled sequential)
	batchFor map[int]seqBatch          // fault index -> planned batch (Retire lane lookup)
	goodM    *netlist.Machine[lane.W1] // persistent good machine (compiled sequential)
	combM    any                       // cached []*netlist.Machine[W] worker pool (compiled combinational)
	refSeq   []Pattern                 // accumulated stimulus (reference sequential replay)
	testMode bool                      // session is in AppendTest (reset-per-test) discipline
	err      error                     // sticky failure from a cancelled/failed Append

	// Session-owned scratch, recycled across windows so a warm Append
	// allocates nothing (see the engine package's ownership contract).
	// Only the owning session touches these between calls; the parallel
	// sections read them but never grow them.
	res     Result                      // the view snapshot() refreshes per window
	incAll  []int                       // Reset's full-fault-list include buffer
	goodPOs [][]uint64                  // good-trace PO rows for the current window
	errs    []error                     // per-batch error slots for the current window
	stim    seqStim                     // per-width broadcast stimulus buffers
	combSc  any                         // *combScratch[W]: pattern-parallel window buffers
	freeW1  []*netlist.Machine[lane.W1] // per-width armed-machine free
	freeW4  []*netlist.Machine[lane.W4] // lists: retired batches return
	freeW8  []*netlist.Machine[lane.W8] // machines here, arming redraws
	chunks  []seqChunk                  // plan scratch (planSeqChunks + re-plan cost probe)
	surv    [][]uint64                  // re-plan scratch: packed FF state per surviving lane
	shellW1 []*seqBatchW[lane.W1]       // per-width batch-shell free lists:
	shellW4 []*seqBatchW[lane.W4]       // re-planning recycles batch state
	shellW8 []*seqBatchW[lane.W8]       // like machines, so warm re-plans allocate nothing
}

// freeList returns the session's machine free list at width W (the same
// any-cast stencil trick as stimFor).
func freeList[W lane.Word](s *Simulator) *[]*netlist.Machine[W] {
	var w W
	switch len(w) {
	case 4:
		return any(&s.freeW4).(*[]*netlist.Machine[W])
	case 8:
		return any(&s.freeW8).(*[]*netlist.Machine[W])
	default:
		return any(&s.freeW1).(*[]*netlist.Machine[W])
	}
}

// getMachine draws a sanitized machine from the width-W free list, or
// builds one when the list is dry. Recycled machines are exactly fresh
// ones: ClearFaults restores the clean fast path, Reset restores power-on
// flip-flop state, and net values are recomputed from scratch every Eval.
// Serial session code only — the free lists are not locked.
func getMachine[W lane.Word](s *Simulator) *netlist.Machine[W] {
	lst := freeList[W](s)
	if n := len(*lst); n > 0 {
		m := (*lst)[n-1]
		(*lst)[n-1] = nil
		*lst = (*lst)[:n-1]
		m.ClearFaults()
		m.Reset()
		return m
	}
	return netlist.NewMachine[W](s.prog)
}

// putMachine returns a machine to the width-W free list. Serial session
// code only.
func putMachine[W lane.Word](s *Simulator, m *netlist.Machine[W]) {
	if m == nil {
		return
	}
	lst := freeList[W](s)
	*lst = append(*lst, m)
}

// shellList returns the session's batch-shell free list at width W.
func shellList[W lane.Word](s *Simulator) *[]*seqBatchW[W] {
	var w W
	switch len(w) {
	case 4:
		return any(&s.shellW4).(*[]*seqBatchW[W])
	case 8:
		return any(&s.shellW8).(*[]*seqBatchW[W])
	default:
		return any(&s.shellW1).(*[]*seqBatchW[W])
	}
}

// newBatch draws a recycled batch shell at width W (or builds one when
// the pool is dry) and fills it with a copy of the given frontier slice,
// every lane live and the machine not yet armed. Serial session code
// only.
func newBatch[W lane.Word](s *Simulator, faults []int) *seqBatchW[W] {
	lst := shellList[W](s)
	var c *seqBatchW[W]
	if n := len(*lst); n > 0 {
		c = (*lst)[n-1]
		(*lst)[n-1] = nil
		*lst = (*lst)[:n-1]
	} else {
		c = &seqBatchW[W]{}
	}
	c.faults = append(c.faults[:0], faults...)
	c.active = lane.FirstN[W](len(c.faults))
	c.m = nil
	c.done = false
	return c
}

// New builds a fault simulator with the default configuration. The fault
// list defaults to Faults(nl) when faults is nil.
func New(nl *netlist.Netlist, faults []Fault) (*Simulator, error) {
	return Config{}.New(nl, faults)
}

// New builds a fault simulator under this configuration. The fault list
// defaults to Faults(nl) when faults is nil.
func (c Config) New(nl *netlist.Netlist, faults []Fault) (*Simulator, error) {
	if _, err := c.Lanes(); err != nil {
		return nil, fmt.Errorf("faultsim: %w", err)
	}
	words := c.LaneWords
	if words == 0 {
		// Auto width, per topology: see the Config comment.
		if nl.IsSequential() {
			words = 8
		} else {
			words = 1
		}
	}
	var err error
	if faults == nil {
		faults = Faults(nl)
	}
	s := &Simulator{nl: nl, faults: faults, cfg: c, words: words}
	if c.reference() {
		if s.good, err = netlist.NewEvaluator(nl); err != nil {
			return nil, err
		}
		if s.bad, err = netlist.NewEvaluator(nl); err != nil {
			return nil, err
		}
	} else {
		if s.prog, err = netlist.Compile(nl); err != nil {
			return nil, err
		}
		if nl.IsSequential() {
			s.goodM = netlist.NewMachine[lane.W1](s.prog)
		}
	}
	s.Reset()
	return s, nil
}

// Faults returns the fault list under simulation.
func (s *Simulator) Faults() []Fault { return s.faults }

// Applied returns the number of patterns/cycles applied since the last
// reset.
func (s *Simulator) Applied() int { return s.applied }

// Frontier returns the indices of the faults still under simulation —
// the included, not-yet-detected subset the next Append will exercise.
// The slice is owned by the caller.
func (s *Simulator) Frontier() []int { return append([]int(nil), s.live...) }

// Reset restarts the session at power-on reset with the full fault list
// live and zero patterns applied. It also clears any sticky error left
// by a cancelled Append.
func (s *Simulator) Reset() {
	s.incAll = engine.Grow(s.incAll, len(s.faults))
	for i := range s.incAll {
		s.incAll[i] = i
	}
	s.resetTo(s.incAll)
}

// resetTo restarts the session with the given (validated, owned) fault
// subset as the frontier. Scratch buffers and armed machines are
// recycled, not dropped: each retiring batch returns its machine to the
// session free list before the new plan redraws.
func (s *Simulator) resetTo(include []int) {
	s.applied = 0
	s.err = nil
	s.testMode = false
	s.detected = engine.Grow(s.detected, len(s.faults))
	for i := range s.detected {
		s.detected[i] = -1
	}
	s.live = include
	s.refSeq = s.refSeq[:0]
	for _, b := range s.batches {
		b.recycle(s)
	}
	s.batches = s.batches[:0]
	if s.goodM != nil {
		s.goodM.Reset()
		s.batches = s.planBatches(include)
	}
}

// snapshot refreshes and returns the session-owned cumulative result
// view (see the Result ownership comment).
//
//repro:session-owned
func (s *Simulator) snapshot() *Result {
	s.res.Faults = s.faults
	s.res.FirstDetected = append(s.res.FirstDetected[:0], s.detected...)
	s.res.Patterns = s.applied
	return &s.res
}

// Current returns the cumulative first-detection profile since the last
// reset without applying anything: the same session-owned view Append
// returns, reflecting every pattern applied so far. Campaign drivers
// read it once at the end of a run instead of retaining the view each
// round.
//
//repro:session-owned
func (s *Simulator) Current() *Result {
	return s.snapshot()
}

// Run fault-simulates the ordered test set from power-on reset and
// returns the first-detection profile. Combinational circuits treat each
// pattern independently (W×64 patterns per pass); sequential circuits
// treat the whole set as one sequence applied from power-on reset,
// simulated W×64 faults at a time (parallel-fault, one fault machine per
// lane) with per-lane fault dropping at first detection. W is the
// configured LaneWords. Run is exactly Reset followed by Append; unlike
// Append, the returned Result is caller-owned.
func (s *Simulator) Run(tests []Pattern) (*Result, error) {
	s.Reset()
	res, err := s.Append(tests)
	if err != nil {
		return nil, err
	}
	return res.Clone(), nil
}

// RunOn is Run restricted to the faults whose indices are listed (nil
// means the whole list; a non-nil empty list simulates nothing). Indices
// must be unique — duplicates would put the same fault in two parallel
// batches. Excluded faults keep FirstDetected == -1. Fault-dropping
// callers (ATPG) use it to re-simulate only still-alive faults. The
// session continues from the subset: a later Append extends this run.
// Like Run, the returned Result is caller-owned.
func (s *Simulator) RunOn(tests []Pattern, include []int) (*Result, error) {
	if include == nil {
		return s.Run(tests)
	}
	seen := make([]bool, len(s.faults))
	for _, fi := range include {
		if fi < 0 || fi >= len(s.faults) {
			return nil, fmt.Errorf("faultsim: fault index %d out of range [0,%d)", fi, len(s.faults))
		}
		if seen[fi] {
			return nil, fmt.Errorf("faultsim: fault index %d listed twice", fi)
		}
		seen[fi] = true
	}
	s.resetTo(append([]int(nil), include...))
	res, err := s.Append(tests)
	if err != nil {
		return nil, err
	}
	return res.Clone(), nil
}

// Append extends the applied sequence with the given tests and returns
// the cumulative first-detection profile since the last reset (detection
// indices are global: an index of k names the k-th applied pattern/cycle
// overall). Only the live frontier is simulated over the new
// patterns/cycles; the good-machine trace and per-fault state carry over,
// so chunked Appends are bit-identical to one one-shot Run of the
// concatenation. A cancelled (engine.Options.Ctx) or failed Append
// poisons the session — every later Append reports the same error until
// Reset/Run/RunOn restarts it.
//
// The returned Result is a session-owned view: the next call on this
// Simulator overwrites it. Read it before the next call, or Clone it to
// retain it — the round-by-round callers (incremental generation, ATPG
// top-off) read coverage and move on, which is why a warm Append
// allocates nothing.
//
//repro:session-owned
func (s *Simulator) Append(tests []Pattern) (*Result, error) {
	// Sticky poisoning wins over the discipline check: a cancelled
	// AppendTest must keep reporting its own error, not misuse.
	if s.err == nil && s.nl.IsSequential() && s.testMode {
		return nil, fmt.Errorf("faultsim: Append after AppendTest mixes application disciplines; Reset the session first")
	}
	return s.appendWindow(tests, false)
}

// AppendTest appends one complete power-on test to the session: every
// machine restarts from power-on reset (the "reset between tests"
// application discipline), while the session's per-fault drop state, the
// live frontier and the armed fault batches all carry over — faults a
// previous test detected are not re-simulated, retired batches stay
// skipped, and live batches keep their injected faults so only flip-flop
// state is rewound. The cumulative result is exactly what per-test
// subset runs (RunOn on the shrinking frontier) would produce, with
// detection indices still counting applied cycles globally. A session
// that has seen AppendTest stays in the reset-per-test discipline until
// Reset/Run/RunOn: a plain Append would silently mean something
// different on each engine, so it is rejected instead. On combinational
// circuits patterns are independent anyway and AppendTest is identical
// to Append. The returned Result is the same session-owned view Append
// returns.
//
//repro:session-owned
func (s *Simulator) AppendTest(test []Pattern) (*Result, error) {
	if !s.nl.IsSequential() {
		return s.appendWindow(test, false)
	}
	return s.appendWindow(test, true)
}

// appendWindow is the shared Append/AppendTest engine dispatch; its
// result is the same session-owned snapshot view.
//
//repro:session-owned
func (s *Simulator) appendWindow(tests []Pattern, fromReset bool) (*Result, error) {
	if s.err != nil {
		return nil, s.err
	}
	for i, p := range tests {
		if len(p) != len(s.nl.PIs) {
			return nil, fmt.Errorf("faultsim: pattern %d has %d values for %d PIs", i, len(p), len(s.nl.PIs))
		}
	}
	if err := s.cfg.Cancelled(); err != nil {
		s.err = fmt.Errorf("faultsim: %w", err)
		return nil, s.err
	}
	if len(tests) > 0 {
		if fromReset {
			// A zero-length test is a no-op and must not lock the
			// discipline, so the flag flips only when cycles apply.
			s.testMode = true
		}
		var err error
		if s.nl.IsSequential() {
			if s.cfg.reference() {
				err = s.appendSequentialRef(tests, fromReset)
			} else {
				// Re-plan at window START, not after the previous one: a
				// compaction only pays off if more cycles actually arrive,
				// so the last window of a session (every window of a
				// one-shot Run) never pays the transplant for nothing.
				if !s.cfg.StaticPlan {
					s.maybeReplan()
				}
				err = s.appendSequential(tests, fromReset)
			}
		} else {
			if s.cfg.reference() {
				err = s.appendCombinationalRef(tests)
			} else {
				err = s.appendCombinational(tests)
			}
		}
		if err != nil {
			s.err = fmt.Errorf("faultsim: %w", err)
			return nil, s.err
		}
		s.applied += len(tests)
		s.prune()
	}
	return s.snapshot(), nil
}

// Retire removes a still-live fault from the session frontier without
// recording a detection: later windows stop simulating it and its
// FirstDetected stays -1. ATPG drop-sim sessions use it to stop paying
// for faults the search proved redundant or gave up on. Retiring frees
// the fault's lane in its parallel-fault batch; a batch whose last lane
// retires is released like a fully dropped one. Retiring a fault that is
// not on the frontier (already detected, excluded or retired) is a
// no-op. Removal costs one linear pass over the frontier — callers
// retire at most once per fault, and each retirement follows work
// (a PODEM search, say) that dwarfs it.
func (s *Simulator) Retire(fi int) error {
	if fi < 0 || fi >= len(s.faults) {
		return fmt.Errorf("faultsim: fault index %d out of range [0,%d)", fi, len(s.faults))
	}
	found := false
	for j, v := range s.live {
		if v == fi {
			s.live = append(s.live[:j], s.live[j+1:]...)
			found = true
			break
		}
	}
	if !found {
		return nil
	}
	if b, ok := s.batchFor[fi]; ok {
		b.dropLane(s, fi)
	}
	return nil
}

// prune drops detected faults from the frontier and retired batches from
// the schedule, returning each retired batch's machine and shell to the
// session free lists (prune runs serially after the parallel section, so
// it is the safe place to touch the lists). Compaction of the survivors
// onto a cheaper plan waits for the next window's start (maybeReplan).
func (s *Simulator) prune() {
	liveOut := s.live[:0]
	for _, fi := range s.live {
		if s.detected[fi] < 0 {
			liveOut = append(liveOut, fi)
		}
	}
	s.live = liveOut
	if s.batches != nil {
		batchOut := s.batches[:0]
		for _, b := range s.batches {
			if !b.retired() {
				batchOut = append(batchOut, b)
				continue
			}
			// Unindex before recycling: the shell returns to the width
			// pool and must not stay reachable through the lane map.
			for _, fi := range b.faultList() {
				delete(s.batchFor, fi)
			}
			b.recycle(s)
		}
		s.batches = batchOut
	}
}

// maybeReplan compacts the surviving lanes onto a fresh batch plan when
// that plan costs strictly fewer pass-units per window than the current
// one — the scheduler's answer to "masked exec for retired words". Long
// campaigns drop most lanes early; without compaction a batch with one
// survivor still pays a full W-word Machine pass every cycle for words
// whose every lane is dead. Re-planning moves each surviving lane's
// flip-flop state (LaneStateInto/SetLaneState, so widths can change)
// onto the cheapest plan for the shrunken frontier — typically merging
// half-dead W8 batches into one narrow batch, ending at the
// scalar-specialized W1 machine. Results are bit-identical: lanes are
// independent, the stimulus is broadcast to all of them, and detection
// indices derive from each fault's own lane. Machines and batch shells
// cycle through the session free lists, so a warm re-plan allocates
// nothing. Serial session code only, invoked at the start of each
// sequential Append window (before any fan-out).
func (s *Simulator) maybeReplan() {
	n := len(s.live)
	if n == 0 || len(s.batches) == 0 {
		return
	}
	cur := 0
	for _, b := range s.batches {
		if b.retired() {
			// Fully dead since the last prune (Retire between windows
			// releases the machine on the last lane drop): run() skips it,
			// so it prices at zero, and extractLive has nothing to take.
			continue
		}
		if !b.armed() {
			return // plan never ran a window; nothing to compact
		}
		cur += passCost(b.width())
	}
	planned := 0
	for _, c := range s.planSeqChunks(n) {
		planned += passCost(c.words)
	}
	if planned >= cur {
		return
	}
	// Carry each surviving lane's flip-flop state over, in frontier
	// order — batches hold contiguous frontier slices, so batch-major
	// lane order IS s.live order.
	s.surv = engine.Grow(s.surv, n)
	idx := 0
	for _, b := range s.batches {
		idx = b.extractLive(s, idx)
	}
	if idx != n {
		// The frontier and the lane masks disagree — never expected; keep
		// the current (correct) plan rather than compact from state we
		// cannot trust.
		return
	}
	for _, b := range s.batches {
		b.recycle(s)
	}
	s.batches = s.planBatches(s.live)
	idx = 0
	for _, b := range s.batches {
		b.arm(s)
		idx = b.implantLive(s, idx)
	}
}

const allLanes = ^uint64(0)

// --- compiled combinational (pattern-parallel) -------------------------------

// appendCombinational dispatches the pattern-parallel scheduler at the
// resolved lane width; each width stencils its own scheduler and machine.
func (s *Simulator) appendCombinational(tests []Pattern) error {
	switch s.words {
	case 4:
		return appendCombLanes[lane.W4](s, tests)
	case 8:
		return appendCombLanes[lane.W8](s, tests)
	default:
		return appendCombLanes[lane.W1](s, tests)
	}
}

// combScratch is the session-owned window scratch of the pattern-parallel
// path: the packed PI vector batches and the good-machine PO rows per
// batch, rewritten per Append. The parallel section reads both but never
// grows them.
type combScratch[W lane.Word] struct {
	batchPIs  [][]W
	batchGood [][]W
}

// combScratchFor returns the session's width-W combinational scratch,
// creating it on first use (the session width never changes, so the any
// indirection resolves to the same value every call).
func combScratchFor[W lane.Word](s *Simulator) *combScratch[W] {
	if sc, ok := s.combSc.(*combScratch[W]); ok {
		return sc
	}
	sc := &combScratch[W]{}
	s.combSc = sc
	return sc
}

// packPatternBatches packs the test set into W×64-pattern PI vector
// batches (lane k·64+t of every vector is pattern lo+k·64+t) into a
// reusable buffer.
func packPatternBatches[W lane.Word](s *Simulator, tests []Pattern, out [][]W) [][]W {
	L := lane.Count[W]()
	nBatches := (len(tests) + L - 1) / L
	out = engine.Grow(out, nBatches)
	for b := 0; b < nBatches; b++ {
		lo := b * L
		hi := min(lo+L, len(tests))
		words := engine.Grow(out[b], len(s.nl.PIs))
		for pi := range words {
			var w W
			for ln, t := lo, 0; ln < hi; ln, t = ln+1, t+1 {
				if tests[ln][pi] != 0 {
					w[t>>6] |= 1 << uint(t&63)
				}
			}
			words[pi] = w
		}
		out[b] = words
	}
	return out
}

// broadcastInto converts each pattern to PI vectors replicated across
// all lanes (the sequential stimulus: every lane applies the same cycle)
// into a reusable buffer — the session keeps one per width, so a warm
// window rewrites rows in place instead of allocating them.
func broadcastInto[W lane.Word](s *Simulator, tests []Pattern, out [][]W) [][]W {
	var zero W
	one := lane.Broadcast[W](allLanes)
	out = engine.Grow(out, len(tests))
	for cyc, p := range tests {
		words := engine.Grow(out[cyc], len(s.nl.PIs))
		for pi, v := range p {
			if v != 0 {
				words[pi] = one
			} else {
				words[pi] = zero
			}
		}
		out[cyc] = words
	}
	return out
}

// combMachines returns the session's cached worker-machine pool at the
// session width, grown to at least n machines. Machines carry no state
// across patterns (each job clears and re-injects its own fault batch),
// so reuse across Appends is free.
func combMachines[W lane.Word](s *Simulator, n int) []*netlist.Machine[W] {
	ms, _ := s.combM.([]*netlist.Machine[W])
	for len(ms) < n {
		ms = append(ms, netlist.NewMachine[W](s.prog))
	}
	s.combM = ms
	return ms
}

// appendCombLanes is the compiled pattern-parallel path: per live fault,
// one Machine pass per W×64-pattern batch of the new patterns until first
// detection, fanned over a worker pool with a private Machine per worker.
// Detection indices are offset by the patterns already applied.
func appendCombLanes[W lane.Word](s *Simulator, tests []Pattern) error {
	sc := combScratchFor[W](s)
	sc.batchPIs = packPatternBatches[W](s, tests, sc.batchPIs)
	batchPIs := sc.batchPIs
	workers := par.Workers(s.cfg.Workers, len(s.live))
	machines := combMachines[W](s, max(workers, 1))
	goodM := machines[0]
	goodM.ClearFaults()
	sc.batchGood = engine.Grow(sc.batchGood, len(batchPIs))
	batchGood := sc.batchGood
	for b, words := range batchPIs {
		if err := s.cfg.Cancelled(); err != nil {
			return err
		}
		batchGood[b] = append(batchGood[b][:0], goodM.Eval(words)...)
	}

	L := lane.Count[W]()
	all := lane.Broadcast[W](allLanes)
	base := s.applied
	live := s.live
	total := len(live)
	return par.IndexedCtx(s.cfg.Ctx, len(live), s.cfg.Workers, func(w, j int) {
		fi := live[j]
		m := machines[w]
		m.ClearFaults()
		m.InjectFault(s.faults[fi].Site, all)
		for b, words := range batchPIs {
			// IndexedCtx polls between jobs; one job spans every batch,
			// so long pattern sets poll inside the job too.
			if b&15 == 15 && s.cfg.Cancelled() != nil {
				return
			}
			lo := b * L
			laneMask := lane.FirstN[W](len(tests) - lo)
			badOut := m.Eval(words)
			var diff W
			for po := range badOut {
				bad, good := badOut[po], batchGood[b][po]
				for k := 0; k < len(diff); k++ {
					diff[k] |= (bad[k] ^ good[k]) & laneMask[k]
				}
			}
			// First detection is the lowest set lane: words in order, then
			// the lowest bit of the first non-zero word.
			for k := 0; k < len(diff); k++ {
				if diff[k] != 0 {
					s.detected[fi] = base + lo + k*64 + bits.TrailingZeros64(diff[k])
					return
				}
			}
		}
	}, func(done int) { s.cfg.Report(done, total) })
}

// --- compiled sequential (parallel-fault) ------------------------------------

// seqChunk is one planned parallel-fault batch: frontier positions
// [lo:hi) simulated on a machine of the given lane width.
type seqChunk struct {
	lo, hi int
	words  int
}

// passCost approximates the relative cost of one instruction-stream pass
// at each width, in tenths of a W=1 pass (measured on the benchmark
// circuits: wider passes amortize the per-gate decode but touch W times
// the data).
func passCost(words int) int {
	switch words {
	case 4:
		return 19
	case 8:
		return 22
	}
	return 10
}

// tailWidth picks the cheapest lane width ≤ maxWords for an n-fault tail:
// the width minimizing batch count × per-pass cost, preferring narrower
// machines on ties. A 55-fault tail runs on a one-word machine instead of
// wasting seven dead words per pass of an eight-word one.
func tailWidth(n, maxWords int) int {
	best, bestCost := 1, (n+63)/64*passCost(1)
	for _, w := range []int{4, 8} {
		if w > maxWords {
			break
		}
		if c := (n + w*64 - 1) / (w * 64) * passCost(w); c < bestCost {
			best, bestCost = w, c
		}
	}
	return best
}

// planSeqChunks carves the include list into lane batches: full-width
// batches at the configured width, then ragged-tail batches at whatever
// narrower width simulates the remainder cheapest. The returned slice is
// session-owned scratch, overwritten by the next plan (the re-planner
// probes a candidate plan at every sequential window start, so this
// must not allocate warm).
//
//repro:session-owned
func (s *Simulator) planSeqChunks(n int) []seqChunk {
	out := s.chunks[:0]
	L := s.words * 64
	lo := 0
	for n-lo >= L {
		out = append(out, seqChunk{lo: lo, hi: lo + L, words: s.words})
		lo += L
	}
	for lo < n {
		w := tailWidth(n-lo, s.words)
		hi := min(lo+w*64, n)
		out = append(out, seqChunk{lo: lo, hi: hi, words: w})
		lo = hi
	}
	s.chunks = out
	return out
}

// planBatches instantiates the chunk plan as stateful session batches and
// indexes each fault's batch (fault-to-lane positions never change while
// a plan is live, so Retire can go straight to the owning batch; a
// re-plan rebuilds the index wholesale). Batch shells come from the
// per-width shell pools, so a plan over recycled shells allocates
// nothing.
func (s *Simulator) planBatches(include []int) []seqBatch {
	chunks := s.planSeqChunks(len(include))
	out := s.batches[:0]
	if s.batchFor == nil {
		s.batchFor = make(map[int]seqBatch, len(include))
	} else {
		clear(s.batchFor)
	}
	for _, c := range chunks {
		var b seqBatch
		switch c.words {
		case 4:
			b = newBatch[lane.W4](s, include[c.lo:c.hi])
		case 8:
			b = newBatch[lane.W8](s, include[c.lo:c.hi])
		default:
			b = newBatch[lane.W1](s, include[c.lo:c.hi])
		}
		out = append(out, b)
		for _, fi := range b.faultList() {
			s.batchFor[fi] = b
		}
	}
	return out
}

// seqBatch is one live parallel-fault batch carried across Appends. Each
// implementation is the width-stenciled state: the fault list (one per
// lane), the active-lane mask, and the armed fault machine whose
// flip-flop state continues exactly where the last Append stopped.
type seqBatch interface {
	run(s *Simulator, st *seqStim, goodPOs [][]uint64, base int, ctx context.Context) error
	width() int
	retired() bool
	// arm draws and injects the batch machine if the batch is unarmed and
	// not retired. Serial session code only — it touches the machine free
	// lists, which run() (on a pool worker) must not.
	arm(s *Simulator)
	// resetState rewinds the armed machine to power-on reset, keeping the
	// injected faults and drop masks (the AppendTest discipline).
	resetState()
	// dropLane frees the lane holding the given fault without recording a
	// detection; it reports whether the fault was this batch's. Serial
	// session code only (it may release the machine).
	dropLane(s *Simulator, fault int) bool
	// release returns the batch machine, if any, to the session free list.
	// Serial session code only.
	release(s *Simulator)
	// faultList exposes the batch's lane-ordered fault indices (prune
	// uses it to unindex retired batches).
	faultList() []int
	// armed reports whether the batch machine is drawn and injected (a
	// retired or not-yet-run batch reports false).
	armed() bool
	// recycle releases the batch machine and returns the batch shell to
	// the session's per-width shell pool; the batch must already be out
	// of the schedule and the lane index. Serial session code only.
	recycle(s *Simulator)
	// extractLive packs each still-live lane's flip-flop state into
	// s.surv starting at row idx (lane order == frontier order) and
	// returns the next free row. Serial session code only (re-plan).
	extractLive(s *Simulator, idx int) int
	// implantLive loads rows idx.. of s.surv into lanes 0..n-1 of the
	// armed batch machine and returns the next unread row (a fresh plan
	// has every lane live). Serial session code only (re-plan).
	implantLive(s *Simulator, idx int) int
}

// seqBatchW is the per-width batch state. Each live batch owns its
// machine across Appends: arming (injecting up to W×64 fault sites)
// happens once per session, the machine's flip-flop state carries the
// trace forward for free, and a retiring batch returns its machine to
// the session's per-width free list for the next plan to redraw. The
// per-batch memory (one value array per W×64 faults) is a few kilobytes
// for the benchmark circuits — far cheaper than re-injecting the whole
// batch on every Append, which dominates small sequential circuits under
// fine-grained (segment-sized) appends.
type seqBatchW[W lane.Word] struct {
	faults []int
	active W
	m      *netlist.Machine[W] // armed before the first run; nil once retired
	done   bool                // every lane dropped; the batch is retired
}

func (c *seqBatchW[W]) width() int       { var w W; return len(w) }
func (c *seqBatchW[W]) retired() bool    { return c.done }
func (c *seqBatchW[W]) faultList() []int { return c.faults }
func (c *seqBatchW[W]) armed() bool      { return c.m != nil }

func (c *seqBatchW[W]) recycle(s *Simulator) {
	c.release(s)
	lst := shellList[W](s)
	*lst = append(*lst, c)
}

func (c *seqBatchW[W]) extractLive(s *Simulator, idx int) int {
	for ln := range c.faults {
		if c.active[ln>>6]>>uint(ln&63)&1 == 0 {
			continue
		}
		s.surv[idx] = c.m.LaneStateInto(ln, s.surv[idx])
		idx++
	}
	return idx
}

func (c *seqBatchW[W]) implantLive(s *Simulator, idx int) int {
	for ln := range c.faults {
		c.m.SetLaneState(ln, s.surv[idx])
		idx++
	}
	return idx
}

func (c *seqBatchW[W]) arm(s *Simulator) {
	if c.m != nil || c.done {
		return
	}
	m := getMachine[W](s)
	for ln, fi := range c.faults {
		m.InjectFault(s.faults[fi].Site, lane.Bit[W](ln))
	}
	c.m = m
}

func (c *seqBatchW[W]) resetState() {
	if c.m != nil {
		c.m.Reset()
	}
}

func (c *seqBatchW[W]) release(s *Simulator) {
	if c.m != nil {
		putMachine(s, c.m)
		c.m = nil
	}
}

func (c *seqBatchW[W]) dropLane(s *Simulator, fault int) bool {
	for ln, fi := range c.faults {
		if fi != fault {
			continue
		}
		c.active[ln>>6] &^= 1 << uint(ln&63)
		if lane.None(c.active) {
			c.done = true
			c.release(s)
		}
		return true
	}
	return false
}

// run advances this batch over the new cycles: evaluate each cycle
// against the good trace with per-lane dropping, retiring the batch once
// every lane has dropped (the machine itself is handed back to the free
// list by the serial prune that follows, since run executes on a pool
// worker). The machine continues from its own state, so a chunked run
// replays nothing; arm() has already injected it. Detection indices are
// base plus the local cycle.
func (c *seqBatchW[W]) run(s *Simulator, st *seqStim, goodPOs [][]uint64, base int, ctx context.Context) error {
	if c.done {
		return nil // retired via dropLane; prune removes it next
	}
	m := c.m
	// The drop masks live in registers/stack for the window (the batch
	// field would force a memory round-trip per word per cycle on the
	// hottest loop in the simulator) and are written back on exit.
	active := c.active
	faults := c.faults
	detected := s.detected
	pi := stimFor[W](st)
	for cyc := range pi {
		if ctx != nil && cyc&31 == 31 && ctx.Err() != nil {
			c.active = active
			return ctx.Err()
		}
		badOut := m.Eval(pi[cyc])
		good := goodPOs[cyc]
		anyActive := false
		for k := 0; k < len(active); k++ {
			if active[k] == 0 {
				continue // every lane of this word already dropped
			}
			var d uint64
			for po := range badOut {
				d |= badOut[po][k] ^ good[po]
			}
			d &= active[k]
			for d != 0 {
				ln := bits.TrailingZeros64(d)
				detected[faults[k*64+ln]] = base + cyc
				d &^= 1 << uint(ln)
				active[k] &^= 1 << uint(ln)
			}
			if active[k] != 0 {
				anyActive = true
			}
		}
		if !anyActive {
			c.active = active
			c.done = true
			return nil
		}
		m.Clock()
	}
	c.active = active
	return nil
}

// seqStim holds the per-width broadcast stimulus buffers, owned by the
// session and rewritten per Append window; only the widths live batches
// need are materialized (a stale wider buffer is simply not read once
// its last batch retires).
type seqStim struct {
	w1 [][]lane.W1
	w4 [][]lane.W4
	w8 [][]lane.W8
}

// stimFor returns the window stimulus at width W.
func stimFor[W lane.Word](st *seqStim) [][]W {
	var w W
	switch len(w) {
	case 4:
		return any(st.w4).([][]W)
	case 8:
		return any(st.w8).([][]W)
	default:
		return any(st.w1).([][]W)
	}
}

// appendSequential is the parallel-fault path the lane vectors were built
// for: the live frontier is held as W×64-fault batches, one fault machine
// per lane, against broadcast stimuli. A lane is dropped at its first
// detection; a batch is retired once every lane has dropped, and later
// Appends skip it entirely. Batches are independent, so they fan out over
// the worker pool. The good trace continues on the session's persistent
// single-word machine (every lane of a broadcast run is identical) and is
// shared by batches of every width. With fromReset (the AppendTest
// discipline) every machine — the good one and each live batch's —
// restarts from power-on before the window; arming costs are still paid
// only once per session.
func (s *Simulator) appendSequential(tests []Pattern, fromReset bool) error {
	ctx := s.cfg.Ctx
	if fromReset {
		s.goodM.Reset()
		for _, b := range s.batches {
			b.resetState()
		}
	}
	s.stim.w1 = broadcastInto[lane.W1](s, tests, s.stim.w1)
	pi1 := s.stim.w1
	goodPOs := engine.Grow(s.goodPOs, len(tests))
	s.goodPOs = goodPOs
	for cyc, words := range pi1 {
		if ctx != nil && cyc&31 == 31 && ctx.Err() != nil {
			return ctx.Err()
		}
		out := s.goodM.Eval(words)
		row := engine.Grow(goodPOs[cyc], len(out))
		for po := range out {
			row[po] = out[po][0]
		}
		goodPOs[cyc] = row
		s.goodM.Clock()
	}

	// Arm unarmed batches (first window after a plan) and materialize the
	// broadcast stimuli per width actually scheduled — both serially,
	// before the fan-out, because arming touches the machine free lists.
	need4, need8 := false, false
	for _, b := range s.batches {
		if b.retired() {
			continue
		}
		b.arm(s)
		switch b.width() {
		case 4:
			need4 = true
		case 8:
			need8 = true
		}
	}
	if need4 {
		s.stim.w4 = broadcastInto[lane.W4](s, tests, s.stim.w4)
	}
	if need8 {
		s.stim.w8 = broadcastInto[lane.W8](s, tests, s.stim.w8)
	}
	st := &s.stim

	base := s.applied
	total := len(s.batches)
	if par.Workers(s.cfg.Workers, total) <= 1 {
		// Serial fast path: the common steady state of an incremental
		// campaign is one or two live batches, where the pool fan-out
		// (closures, coordination) is the only allocation left — a warm
		// single-batch Append is allocation-free through here.
		for bi, b := range s.batches {
			if ctx != nil && ctx.Err() != nil {
				return ctx.Err()
			}
			if err := b.run(s, st, goodPOs, base, ctx); err != nil {
				return err
			}
			s.cfg.Report(bi+1, total)
		}
		return nil
	}
	errs := engine.GrowZero(s.errs, len(s.batches))
	s.errs = errs
	err := par.IndexedCtx(ctx, len(s.batches), s.cfg.Workers, func(_, bi int) {
		errs[bi] = s.batches[bi].run(s, st, goodPOs, base, ctx)
	}, func(done int) { s.cfg.Report(done, total) })
	if err != nil {
		return err
	}
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// --- reference engines -------------------------------------------------------

// appendCombinationalRef is the single-fault reference: one Evaluator
// pass per live fault per batch of the new patterns, strictly serial.
// Kept as the differential baseline for the compiled engine.
func (s *Simulator) appendCombinationalRef(tests []Pattern) error {
	batchPIs := s.packPatternBatchesRef(tests)
	batchGood := make([][]uint64, len(batchPIs))
	for b, words := range batchPIs {
		goodOut, err := s.good.Eval(words)
		if err != nil {
			return err
		}
		batchGood[b] = append([]uint64(nil), goodOut...)
	}
	base := s.applied
	total := len(s.live)
	for j, fi := range s.live {
		if err := s.cfg.Cancelled(); err != nil {
			return err
		}
	batches:
		for b, words := range batchPIs {
			lo := b * 64
			// One tail-mask implementation for both engines: the
			// reference's single-word mask is lane.FirstN at width 1.
			laneMask := lane.FirstN[lane.W1](len(tests) - lo)[0]
			badOut := s.bad.EvalWith(words, s.faults[fi].Site, allLanes)
			var diff uint64
			for po := range badOut {
				diff |= (badOut[po] ^ batchGood[b][po]) & laneMask
			}
			if diff != 0 {
				s.detected[fi] = base + lo + bits.TrailingZeros64(diff)
				break batches
			}
		}
		s.cfg.Report(j+1, total)
	}
	return nil
}

// packPatternBatchesRef packs the test set into 64-pattern PI word
// batches for the single-word Evaluator (bit t of every word is pattern
// lo+t).
func (s *Simulator) packPatternBatchesRef(tests []Pattern) [][]uint64 {
	nBatches := (len(tests) + 63) / 64
	out := make([][]uint64, nBatches)
	for b := 0; b < nBatches; b++ {
		lo := b * 64
		hi := min(lo+64, len(tests))
		words := make([]uint64, len(s.nl.PIs))
		for pi := range words {
			var w uint64
			for ln, t := lo, 0; ln < hi; ln, t = ln+1, t+1 {
				if tests[ln][pi] != 0 {
					w |= 1 << uint(t)
				}
			}
			words[pi] = w
		}
		out[b] = words
	}
	return out
}

// appendSequentialRef is the single-fault reference: each live fault
// replays a window on its own Evaluator from power-on reset, broadcast
// across all lanes, strictly serial. In the continuous (Append)
// discipline the session accumulates the applied stimulus and the window
// is the whole accumulated sequence — replaying the prefix keeps the
// reference engine trivially correct (the simulation is deterministic,
// and a live fault cannot be detected inside the prefix it already
// survived) at the cost the reference engine always pays; it exists for
// differential testing, not speed. In the reset-per-test (AppendTest)
// discipline the window is just the new test, because every test starts
// from power-on anyway.
func (s *Simulator) appendSequentialRef(tests []Pattern, fromReset bool) error {
	window := tests
	base := s.applied
	if !fromReset {
		for _, p := range tests {
			s.refSeq = append(s.refSeq, append(Pattern(nil), p...))
		}
		window = s.refSeq
		base = 0
	}
	piWords := make([][]uint64, len(window))
	for cyc, p := range window {
		words := make([]uint64, len(s.nl.PIs))
		for pi, v := range p {
			if v != 0 {
				words[pi] = allLanes
			}
		}
		piWords[cyc] = words
	}
	goodPOs := make([][]uint64, len(window))
	s.good.Reset()
	for cyc, words := range piWords {
		out, err := s.good.Eval(words)
		if err != nil {
			return err
		}
		goodPOs[cyc] = append([]uint64(nil), out...)
		s.good.Clock()
	}
	total := len(s.live)
	for j, fi := range s.live {
		if err := s.cfg.Cancelled(); err != nil {
			return err
		}
		f := s.faults[fi]
		s.bad.Reset()
		for cyc := range window {
			badOut := s.bad.EvalWith(piWords[cyc], f.Site, allLanes)
			var diff uint64
			for po := range badOut {
				diff |= badOut[po] ^ goodPOs[cyc][po]
			}
			if diff != 0 {
				s.detected[fi] = base + cyc
				break
			}
			s.bad.ClockWith(f.Site, allLanes)
		}
		s.cfg.Report(j+1, total)
	}
	return nil
}
