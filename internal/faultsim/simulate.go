package faultsim

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/netlist"
)

// Pattern is one gate-level test vector: a 0/1 value per primary input, in
// netlist PI order.
type Pattern []uint8

// Result is the outcome of fault-simulating an ordered test set.
type Result struct {
	Faults []Fault
	// FirstDetected[i] is the index (pattern index for combinational
	// circuits, cycle index for sequential ones) at which fault i is first
	// detected, or -1 if the test set never detects it.
	FirstDetected []int
	// Patterns is the number of applied patterns/cycles.
	Patterns int
}

// DetectedCount returns the number of detected faults.
func (r *Result) DetectedCount() int {
	n := 0
	for _, d := range r.FirstDetected {
		if d >= 0 {
			n++
		}
	}
	return n
}

// Coverage returns detected/total in [0,1].
func (r *Result) Coverage() float64 {
	if len(r.Faults) == 0 {
		return 0
	}
	return float64(r.DetectedCount()) / float64(len(r.Faults))
}

// Curve returns the fault coverage after each applied pattern: element k is
// the coverage achieved by the first k+1 patterns.
func (r *Result) Curve() []float64 {
	counts := make([]int, r.Patterns)
	for _, d := range r.FirstDetected {
		if d >= 0 {
			counts[d]++
		}
	}
	curve := make([]float64, r.Patterns)
	acc := 0
	total := len(r.Faults)
	for k := 0; k < r.Patterns; k++ {
		acc += counts[k]
		if total > 0 {
			curve[k] = float64(acc) / float64(total)
		}
	}
	return curve
}

// Undetected returns the faults the test set missed.
func (r *Result) Undetected() []Fault {
	var out []Fault
	for i, d := range r.FirstDetected {
		if d < 0 {
			out = append(out, r.Faults[i])
		}
	}
	return out
}

// Simulator runs stuck-at fault simulation against a fixed netlist and
// collapsed fault list.
type Simulator struct {
	nl     *netlist.Netlist
	faults []Fault
	good   *netlist.Evaluator
	bad    *netlist.Evaluator
}

// New builds a fault simulator. The fault list defaults to Faults(nl) when
// faults is nil.
func New(nl *netlist.Netlist, faults []Fault) (*Simulator, error) {
	if faults == nil {
		faults = Faults(nl)
	}
	good, err := netlist.NewEvaluator(nl)
	if err != nil {
		return nil, err
	}
	bad, err := netlist.NewEvaluator(nl)
	if err != nil {
		return nil, err
	}
	return &Simulator{nl: nl, faults: faults, good: good, bad: bad}, nil
}

// Faults returns the fault list under simulation.
func (s *Simulator) Faults() []Fault { return s.faults }

// Run fault-simulates the ordered test set and returns the first-detection
// profile. Combinational circuits treat each pattern independently
// (64-way pattern-parallel); sequential circuits treat the whole set as
// one sequence applied from power-on reset (cycle-serial per fault, with
// fault dropping at first detection).
func (s *Simulator) Run(tests []Pattern) (*Result, error) {
	for i, p := range tests {
		if len(p) != len(s.nl.PIs) {
			return nil, fmt.Errorf("faultsim: pattern %d has %d values for %d PIs", i, len(p), len(s.nl.PIs))
		}
	}
	if s.nl.IsSequential() {
		return s.runSequential(tests)
	}
	return s.runCombinational(tests)
}

const allLanes = ^uint64(0)

func (s *Simulator) runCombinational(tests []Pattern) (*Result, error) {
	res := &Result{
		Faults:        s.faults,
		FirstDetected: make([]int, len(s.faults)),
		Patterns:      len(tests),
	}
	for i := range res.FirstDetected {
		res.FirstDetected[i] = -1
	}

	nBatches := (len(tests) + 63) / 64
	batchPIs := make([][]uint64, nBatches)
	batchGood := make([][]uint64, nBatches)
	for b := 0; b < nBatches; b++ {
		lo := b * 64
		hi := min(lo+64, len(tests))
		words := make([]uint64, len(s.nl.PIs))
		for pi := range words {
			var w uint64
			for lane, t := lo, 0; lane < hi; lane, t = lane+1, t+1 {
				if tests[lane][pi] != 0 {
					w |= 1 << uint(t)
				}
			}
			words[pi] = w
		}
		batchPIs[b] = words
		goodOut, err := s.good.Eval(words)
		if err != nil {
			return nil, err
		}
		batchGood[b] = append([]uint64(nil), goodOut...)
	}

	err := s.parallelFaults(func(ev *netlist.Evaluator, fi int) {
	batches:
		for b := 0; b < nBatches; b++ {
			lo := b * 64
			laneCount := min(64, len(tests)-lo)
			laneMask := allLanes
			if laneCount < 64 {
				laneMask = (uint64(1) << uint(laneCount)) - 1
			}
			badOut := ev.EvalWith(batchPIs[b], s.faults[fi].Site, allLanes)
			var diff uint64
			for po := range badOut {
				diff |= (badOut[po] ^ batchGood[b][po]) & laneMask
			}
			if diff != 0 {
				res.FirstDetected[fi] = lo + lowestBit(diff)
				break batches
			}
		}
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// parallelFaults runs fn once per fault index on a worker pool; each
// worker owns a private evaluator, so fn must use only ev and fi.
func (s *Simulator) parallelFaults(fn func(ev *netlist.Evaluator, fi int)) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > len(s.faults) {
		workers = len(s.faults)
	}
	if workers <= 1 {
		for fi := range s.faults {
			fn(s.bad, fi)
		}
		return nil
	}
	evs := make([]*netlist.Evaluator, workers)
	evs[0] = s.bad
	for w := 1; w < workers; w++ {
		ev, err := netlist.NewEvaluator(s.nl)
		if err != nil {
			return err
		}
		evs[w] = ev
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(ev *netlist.Evaluator) {
			defer wg.Done()
			for fi := range next {
				fn(ev, fi)
			}
		}(evs[w])
	}
	for fi := range s.faults {
		next <- fi
	}
	close(next)
	wg.Wait()
	return nil
}

func (s *Simulator) runSequential(tests []Pattern) (*Result, error) {
	res := &Result{
		Faults:        s.faults,
		FirstDetected: make([]int, len(s.faults)),
		Patterns:      len(tests),
	}
	for i := range res.FirstDetected {
		res.FirstDetected[i] = -1
	}

	// Good-machine reference run.
	goodPOs := make([][]uint64, len(tests))
	s.good.Reset()
	piWords := make([][]uint64, len(tests))
	for cyc, p := range tests {
		words := make([]uint64, len(s.nl.PIs))
		for pi, v := range p {
			if v != 0 {
				words[pi] = allLanes
			}
		}
		piWords[cyc] = words
		out, err := s.good.Eval(words)
		if err != nil {
			return nil, err
		}
		goodPOs[cyc] = append([]uint64(nil), out...)
		s.good.Clock()
	}

	err := s.parallelFaults(func(ev *netlist.Evaluator, fi int) {
		f := s.faults[fi]
		ev.Reset()
		for cyc := range tests {
			badOut := ev.EvalWith(piWords[cyc], f.Site, allLanes)
			var diff uint64
			for po := range badOut {
				diff |= badOut[po] ^ goodPOs[cyc][po]
			}
			if diff != 0 {
				res.FirstDetected[fi] = cyc
				return
			}
			ev.ClockWith(f.Site, allLanes)
		}
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

func lowestBit(w uint64) int {
	for i := 0; i < 64; i++ {
		if w&(1<<uint(i)) != 0 {
			return i
		}
	}
	return -1
}
