package faultsim

import (
	"fmt"
	"math/bits"

	"repro/internal/netlist"
	"repro/internal/par"
)

// Pattern is one gate-level test vector: a 0/1 value per primary input, in
// netlist PI order.
type Pattern []uint8

// Result is the outcome of fault-simulating an ordered test set.
type Result struct {
	Faults []Fault
	// FirstDetected[i] is the index (pattern index for combinational
	// circuits, cycle index for sequential ones) at which fault i is first
	// detected, or -1 if the test set never detects it.
	FirstDetected []int
	// Patterns is the number of applied patterns/cycles.
	Patterns int
}

// DetectedCount returns the number of detected faults.
func (r *Result) DetectedCount() int {
	n := 0
	for _, d := range r.FirstDetected {
		if d >= 0 {
			n++
		}
	}
	return n
}

// Coverage returns detected/total in [0,1].
func (r *Result) Coverage() float64 {
	if len(r.Faults) == 0 {
		return 0
	}
	return float64(r.DetectedCount()) / float64(len(r.Faults))
}

// Curve returns the fault coverage after each applied pattern: element k is
// the coverage achieved by the first k+1 patterns.
func (r *Result) Curve() []float64 {
	counts := make([]int, r.Patterns)
	for _, d := range r.FirstDetected {
		if d >= 0 {
			counts[d]++
		}
	}
	curve := make([]float64, r.Patterns)
	acc := 0
	total := len(r.Faults)
	for k := 0; k < r.Patterns; k++ {
		acc += counts[k]
		if total > 0 {
			curve[k] = float64(acc) / float64(total)
		}
	}
	return curve
}

// Undetected returns the faults the test set missed.
func (r *Result) Undetected() []Fault {
	var out []Fault
	for i, d := range r.FirstDetected {
		if d < 0 {
			out = append(out, r.Faults[i])
		}
	}
	return out
}

// Config tunes fault simulation. The zero value is the fast default.
type Config struct {
	// Workers sizes the fault-level worker pool: 0 uses all cores
	// (compiled parallel-fault engine), n > 1 uses exactly n workers
	// (compiled engine), and 1 selects the single-fault reference engine —
	// one Evaluator pass per fault, strictly serial — kept for
	// differential testing, mirroring mutscore.Config. Results are
	// identical for every setting (see parity_test.go).
	Workers int
}

func (c Config) reference() bool { return c.Workers == 1 }

// Simulator runs stuck-at fault simulation against a fixed netlist and
// collapsed fault list.
type Simulator struct {
	nl     *netlist.Netlist
	faults []Fault
	cfg    Config

	good *netlist.Evaluator // reference engine (Workers == 1)
	bad  *netlist.Evaluator
	prog *netlist.Program // compiled engine (every other setting)
}

// New builds a fault simulator with the default configuration. The fault
// list defaults to Faults(nl) when faults is nil.
func New(nl *netlist.Netlist, faults []Fault) (*Simulator, error) {
	return Config{}.New(nl, faults)
}

// New builds a fault simulator under this configuration. The fault list
// defaults to Faults(nl) when faults is nil.
func (c Config) New(nl *netlist.Netlist, faults []Fault) (*Simulator, error) {
	if faults == nil {
		faults = Faults(nl)
	}
	s := &Simulator{nl: nl, faults: faults, cfg: c}
	var err error
	if c.reference() {
		if s.good, err = netlist.NewEvaluator(nl); err != nil {
			return nil, err
		}
		if s.bad, err = netlist.NewEvaluator(nl); err != nil {
			return nil, err
		}
		return s, nil
	}
	if s.prog, err = netlist.Compile(nl); err != nil {
		return nil, err
	}
	return s, nil
}

// Faults returns the fault list under simulation.
func (s *Simulator) Faults() []Fault { return s.faults }

// Run fault-simulates the ordered test set and returns the first-detection
// profile. Combinational circuits treat each pattern independently
// (64-way pattern-parallel); sequential circuits treat the whole set as
// one sequence applied from power-on reset, simulated 64 faults at a time
// (parallel-fault, one fault machine per lane) with per-lane fault
// dropping at first detection.
func (s *Simulator) Run(tests []Pattern) (*Result, error) {
	return s.RunOn(tests, nil)
}

// RunOn is Run restricted to the faults whose indices are listed (nil
// means the whole list). Indices must be unique — duplicates would put
// the same fault in two parallel batches. Excluded faults keep
// FirstDetected == -1. Fault-dropping callers (ATPG) use it to
// re-simulate only still-alive faults.
func (s *Simulator) RunOn(tests []Pattern, include []int) (*Result, error) {
	for i, p := range tests {
		if len(p) != len(s.nl.PIs) {
			return nil, fmt.Errorf("faultsim: pattern %d has %d values for %d PIs", i, len(p), len(s.nl.PIs))
		}
	}
	if include == nil {
		include = make([]int, len(s.faults))
		for i := range include {
			include[i] = i
		}
	} else {
		seen := make([]bool, len(s.faults))
		for _, fi := range include {
			if fi < 0 || fi >= len(s.faults) {
				return nil, fmt.Errorf("faultsim: fault index %d out of range [0,%d)", fi, len(s.faults))
			}
			if seen[fi] {
				return nil, fmt.Errorf("faultsim: fault index %d listed twice", fi)
			}
			seen[fi] = true
		}
	}
	res := &Result{
		Faults:        s.faults,
		FirstDetected: make([]int, len(s.faults)),
		Patterns:      len(tests),
	}
	for i := range res.FirstDetected {
		res.FirstDetected[i] = -1
	}
	if s.nl.IsSequential() {
		if s.cfg.reference() {
			return res, s.runSequentialRef(res, tests, include)
		}
		return res, s.runSequential(res, tests, include)
	}
	if s.cfg.reference() {
		return res, s.runCombinationalRef(res, tests, include)
	}
	return res, s.runCombinational(res, tests, include)
}

const allLanes = ^uint64(0)

// laneMaskFor returns the mask selecting the first n of 64 lanes.
func laneMaskFor(n int) uint64 {
	if n >= 64 {
		return allLanes
	}
	return uint64(1)<<uint(n) - 1
}

// packPatternBatches packs the test set into 64-pattern PI word batches
// (bit k of every word is pattern lo+k).
func (s *Simulator) packPatternBatches(tests []Pattern) [][]uint64 {
	nBatches := (len(tests) + 63) / 64
	out := make([][]uint64, nBatches)
	for b := 0; b < nBatches; b++ {
		lo := b * 64
		hi := min(lo+64, len(tests))
		words := make([]uint64, len(s.nl.PIs))
		for pi := range words {
			var w uint64
			for lane, t := lo, 0; lane < hi; lane, t = lane+1, t+1 {
				if tests[lane][pi] != 0 {
					w |= 1 << uint(t)
				}
			}
			words[pi] = w
		}
		out[b] = words
	}
	return out
}

// broadcastWords converts each pattern to PI words replicated across all
// 64 lanes (the sequential stimulus: every lane applies the same cycle).
func (s *Simulator) broadcastWords(tests []Pattern) [][]uint64 {
	out := make([][]uint64, len(tests))
	for cyc, p := range tests {
		words := make([]uint64, len(s.nl.PIs))
		for pi, v := range p {
			if v != 0 {
				words[pi] = allLanes
			}
		}
		out[cyc] = words
	}
	return out
}

// runCombinational is the compiled pattern-parallel path: per fault, one
// Machine pass per 64-pattern batch until first detection, fanned over a
// worker pool with a private Machine per worker.
func (s *Simulator) runCombinational(res *Result, tests []Pattern, include []int) error {
	batchPIs := s.packPatternBatches(tests)
	goodM := s.prog.NewMachine()
	batchGood := make([][]uint64, len(batchPIs))
	for b, words := range batchPIs {
		batchGood[b] = append([]uint64(nil), goodM.Eval(words)...)
	}

	workers := par.Workers(s.cfg.Workers, len(include))
	machines := make([]*netlist.Machine, workers)
	machines[0] = goodM
	for w := 1; w < workers; w++ {
		machines[w] = s.prog.NewMachine()
	}
	par.Indexed(len(include), s.cfg.Workers, func(w, k int) {
		fi := include[k]
		m := machines[w]
		m.ClearFaults()
		m.InjectFault(s.faults[fi].Site, allLanes)
		for b, words := range batchPIs {
			lo := b * 64
			laneMask := laneMaskFor(len(tests) - lo)
			badOut := m.Eval(words)
			var diff uint64
			for po := range badOut {
				diff |= (badOut[po] ^ batchGood[b][po]) & laneMask
			}
			if diff != 0 {
				res.FirstDetected[fi] = lo + bits.TrailingZeros64(diff)
				return
			}
		}
	})
	return nil
}

// runSequential is the parallel-fault path the Evaluator's 64 lanes were
// built for: the undetected queue is consumed 64 faults per batch, one
// fault machine per lane, against broadcast stimuli. A lane is dropped at
// its first detection; a batch ends early once every lane has dropped.
// Batches are independent, so they fan out over the worker pool.
func (s *Simulator) runSequential(res *Result, tests []Pattern, include []int) error {
	piWords := s.broadcastWords(tests)

	// Good-machine reference run (any single lane is the good trace, but
	// keeping all 64 identical makes the per-lane XOR below direct).
	goodM := s.prog.NewMachine()
	goodPOs := make([][]uint64, len(tests))
	for cyc, words := range piWords {
		goodPOs[cyc] = append([]uint64(nil), goodM.Eval(words)...)
		goodM.Clock()
	}

	nBatches := (len(include) + 63) / 64
	workers := par.Workers(s.cfg.Workers, nBatches)
	machines := make([]*netlist.Machine, workers)
	machines[0] = goodM
	for w := 1; w < workers; w++ {
		machines[w] = s.prog.NewMachine()
	}
	par.Indexed(nBatches, s.cfg.Workers, func(w, b int) {
		lo := b * 64
		batch := include[lo:min(lo+64, len(include))]
		m := machines[w]
		m.ClearFaults()
		for lane, fi := range batch {
			m.InjectFault(s.faults[fi].Site, 1<<uint(lane))
		}
		m.Reset()
		active := laneMaskFor(len(batch))
		for cyc := range tests {
			badOut := m.Eval(piWords[cyc])
			var diff uint64
			for po := range badOut {
				diff |= badOut[po] ^ goodPOs[cyc][po]
			}
			diff &= active
			for diff != 0 {
				lane := bits.TrailingZeros64(diff)
				res.FirstDetected[batch[lane]] = cyc
				diff &^= 1 << uint(lane)
				active &^= 1 << uint(lane)
			}
			if active == 0 {
				return
			}
			m.Clock()
		}
	})
	return nil
}

// runCombinationalRef is the single-fault reference: one Evaluator pass
// per fault per batch, strictly serial. Kept verbatim as the differential
// baseline for the compiled engine.
func (s *Simulator) runCombinationalRef(res *Result, tests []Pattern, include []int) error {
	batchPIs := s.packPatternBatches(tests)
	batchGood := make([][]uint64, len(batchPIs))
	for b, words := range batchPIs {
		goodOut, err := s.good.Eval(words)
		if err != nil {
			return err
		}
		batchGood[b] = append([]uint64(nil), goodOut...)
	}
	for _, fi := range include {
	batches:
		for b, words := range batchPIs {
			lo := b * 64
			laneMask := laneMaskFor(len(tests) - lo)
			badOut := s.bad.EvalWith(words, s.faults[fi].Site, allLanes)
			var diff uint64
			for po := range badOut {
				diff |= (badOut[po] ^ batchGood[b][po]) & laneMask
			}
			if diff != 0 {
				res.FirstDetected[fi] = lo + bits.TrailingZeros64(diff)
				break batches
			}
		}
	}
	return nil
}

// runSequentialRef is the single-fault reference: each fault replays the
// whole sequence from power-on reset on its own Evaluator, broadcast
// across all lanes, strictly serial.
func (s *Simulator) runSequentialRef(res *Result, tests []Pattern, include []int) error {
	piWords := s.broadcastWords(tests)
	goodPOs := make([][]uint64, len(tests))
	s.good.Reset()
	for cyc, words := range piWords {
		out, err := s.good.Eval(words)
		if err != nil {
			return err
		}
		goodPOs[cyc] = append([]uint64(nil), out...)
		s.good.Clock()
	}
	for _, fi := range include {
		f := s.faults[fi]
		s.bad.Reset()
		for cyc := range tests {
			badOut := s.bad.EvalWith(piWords[cyc], f.Site, allLanes)
			var diff uint64
			for po := range badOut {
				diff |= badOut[po] ^ goodPOs[cyc][po]
			}
			if diff != 0 {
				res.FirstDetected[fi] = cyc
				break
			}
			s.bad.ClockWith(f.Site, allLanes)
		}
	}
	return nil
}
