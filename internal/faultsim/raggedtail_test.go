package faultsim

import (
	"fmt"
	"testing"

	"repro/internal/engine"
	"repro/internal/lane"
)

// raggedSizes enumerates the batch sizes that stress lane masking at lane
// width W: empty, single, around the first word boundary, and around the
// full-vector boundary W×64±1, clipped to the available count.
func raggedSizes(W, avail int) []int {
	L := W * 64
	cand := []int{0, 1, 63, 64, 65, L - 1, L, L + 1}
	var out []int
	seen := make(map[int]bool)
	for _, n := range cand {
		if n < 0 || n > avail || seen[n] {
			continue
		}
		seen[n] = true
		out = append(out, n)
	}
	return out
}

// TestRaggedTailFaultBatches pins per-lane masking on ragged fault
// batches: RunOn with 0, 1, 63, 64, 65 and W×64±1 faults must reproduce
// the serial reference exactly at every lane width, on a sequential
// netlist whose fault list spills past the widest vector.
func TestRaggedTailFaultBatches(t *testing.T) {
	nl := randomParityNetlist(t, 99, 4, 420)
	tests := randPatterns(len(nl.PIs), 24, 5)

	ref, err := Config{Options: engine.Options{Workers: 1}}.New(nl, nil)
	if err != nil {
		t.Fatal(err)
	}
	nFaults := len(ref.Faults())
	if nFaults <= 8*64 {
		t.Fatalf("want > %d collapsed faults to overflow the widest vector, got %d", 8*64, nFaults)
	}

	for _, W := range lane.Widths() {
		for _, n := range raggedSizes(W, nFaults) {
			t.Run(fmt.Sprintf("W=%d/n=%d", W, n), func(t *testing.T) {
				// Strided include set: the batch spans the fault list, so
				// lanes carry unrelated sites rather than one gate's cluster.
				stride := nFaults / (n + 1)
				if stride == 0 {
					stride = 1
				}
				include := make([]int, 0, n)
				for i := 0; len(include) < n; i++ {
					include = append(include, (i*stride+i)%nFaults)
				}
				seen := make(map[int]bool)
				for i, fi := range include {
					for seen[fi] {
						fi = (fi + 1) % nFaults
					}
					include[i] = fi
					seen[fi] = true
				}
				want, err := ref.RunOn(tests, include)
				if err != nil {
					t.Fatal(err)
				}
				s, err := Config{Options: engine.Options{Workers: 2, LaneWords: W}}.New(nl, nil)
				if err != nil {
					t.Fatal(err)
				}
				got, err := s.RunOn(tests, include)
				if err != nil {
					t.Fatal(err)
				}
				for i := range want.FirstDetected {
					if got.FirstDetected[i] != want.FirstDetected[i] {
						t.Errorf("fault %d: detected at %d, reference %d",
							i, got.FirstDetected[i], want.FirstDetected[i])
					}
				}
			})
		}
	}
}

// TestRaggedTailPatternBatches pins the pattern-parallel tail mask on
// combinational circuits: test-set lengths around the word and vector
// boundaries must match the reference profile at every lane width (a
// pattern past the tail mask must never count as a detection).
func TestRaggedTailPatternBatches(t *testing.T) {
	nl := randomParityNetlist(t, 104, 0, 120)
	ref, err := Config{Options: engine.Options{Workers: 1}}.New(nl, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, W := range lane.Widths() {
		s, err := Config{Options: engine.Options{Workers: 0, LaneWords: W}}.New(nl, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range raggedSizes(W, 1<<30) {
			if n == 0 {
				continue // Run with zero patterns detects nothing everywhere
			}
			t.Run(fmt.Sprintf("W=%d/patterns=%d", W, n), func(t *testing.T) {
				tests := randPatterns(len(nl.PIs), n, int64(n))
				want, err := ref.Run(tests)
				if err != nil {
					t.Fatal(err)
				}
				got, err := s.Run(tests)
				if err != nil {
					t.Fatal(err)
				}
				for i := range want.FirstDetected {
					if got.FirstDetected[i] != want.FirstDetected[i] {
						t.Errorf("fault %d: detected at %d, reference %d",
							i, got.FirstDetected[i], want.FirstDetected[i])
					}
				}
			})
		}
	}
}

// TestRunOnEmptyAndSingle pins the degenerate include sets: a non-nil
// empty include simulates nothing (all -1), and a single-element include
// touches exactly that fault, at every lane width.
func TestRunOnEmptyAndSingle(t *testing.T) {
	nl := randomParityNetlist(t, 2, 2, 25)
	tests := randPatterns(len(nl.PIs), 40, 9)
	ref, err := Config{Options: engine.Options{Workers: 1}}.New(nl, nil)
	if err != nil {
		t.Fatal(err)
	}
	refAll, err := ref.Run(tests)
	if err != nil {
		t.Fatal(err)
	}
	// A fault the sequence actually detects makes the single-element case
	// meaningful.
	target := -1
	for i, d := range refAll.FirstDetected {
		if d >= 0 {
			target = i
			break
		}
	}
	if target < 0 {
		t.Fatal("no detected fault to single out")
	}
	for _, cfg := range []Config{{Options: engine.Options{Workers: 1}}, {Options: engine.Options{LaneWords: 1}}, {Options: engine.Options{LaneWords: 4}}, {Options: engine.Options{LaneWords: 8}}} {
		label := fmt.Sprintf("workers=%d/lanewords=%d", cfg.Workers, cfg.LaneWords)
		s, err := cfg.New(nl, nil)
		if err != nil {
			t.Fatal(err)
		}
		empty, err := s.RunOn(tests, []int{})
		if err != nil {
			t.Fatalf("%s: empty include: %v", label, err)
		}
		for i, d := range empty.FirstDetected {
			if d != -1 {
				t.Errorf("%s: empty include detected fault %d at %d", label, i, d)
			}
		}
		single, err := s.RunOn(tests, []int{target})
		if err != nil {
			t.Fatalf("%s: single include: %v", label, err)
		}
		for i, d := range single.FirstDetected {
			switch {
			case i == target && d != refAll.FirstDetected[target]:
				t.Errorf("%s: target fault at %d, reference %d", label, d, refAll.FirstDetected[target])
			case i != target && d != -1:
				t.Errorf("%s: leaked fault %d at %d", label, i, d)
			}
		}
	}
}
