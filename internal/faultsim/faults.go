// Package faultsim implements the single stuck-at fault model and fault
// simulation on gate-level netlists: fault-list generation with classical
// structural equivalence collapsing, parallel-pattern simulation for
// combinational circuits (64 test patterns per pass), and parallel-fault
// whole-sequence simulation for sequential circuits (64 faults per pass,
// one fault machine per lane of the compiled netlist engine, with
// per-lane fault dropping at first detection). Both paths run the
// compiled netlist.Program on a worker pool sized by Config.Workers;
// Workers == 1 selects the serial single-fault Evaluator path kept as the
// differential reference. The produced first-detection profile is what
// the paper's coverage metrics (MFC, RFC, ΔFC%, ΔL%, NLFCE) are computed
// from.
package faultsim

import (
	"fmt"

	"repro/internal/netlist"
)

// Fault is one collapsed single stuck-at fault.
type Fault struct {
	Site netlist.FaultSite
	Desc string
}

// Faults generates the collapsed stuck-at fault list for a netlist using
// the standard local-equivalence rules:
//
//   - every gate output (stem) carries s-a-0 and s-a-1, except constant
//     gates' trivially-undetectable same-value fault;
//   - input-pin (branch) faults are listed only where the driving net has
//     fanout greater than one (single-fanout branch faults are equivalent
//     to the driver's stem fault);
//   - branch faults equivalent to the gate's own stem fault are dropped
//     (AND in-0 ≡ out-0, NAND in-0 ≡ out-1, OR in-1 ≡ out-1, NOR in-1 ≡
//     out-0, BUF/NOT all input faults).
func Faults(nl *netlist.Netlist) []Fault {
	fanout := make([]int, len(nl.Gates))
	for _, g := range nl.Gates {
		for _, f := range g.Fanin {
			if f >= 0 {
				fanout[f]++
			}
		}
	}

	var out []Fault
	stem := func(g *netlist.Gate, v uint64) {
		out = append(out, Fault{
			Site: netlist.FaultSite{Gate: g.ID, Pin: -1, Stuck: v},
			Desc: fmt.Sprintf("%s/out s-a-%d", gateLabel(nl, g), v),
		})
	}
	for _, g := range nl.Gates {
		switch g.Type {
		case netlist.Const0:
			stem(g, 1)
			continue
		case netlist.Const1:
			stem(g, 0)
			continue
		}
		stem(g, 0)
		stem(g, 1)
		for j, d := range g.Fanin {
			if d < 0 || fanout[d] <= 1 {
				continue // branch ≡ driver stem
			}
			for v := uint64(0); v <= 1; v++ {
				if branchEquivToStem(g.Type, v) {
					continue
				}
				out = append(out, Fault{
					Site: netlist.FaultSite{Gate: g.ID, Pin: j, Stuck: v},
					Desc: fmt.Sprintf("%s/in%d s-a-%d", gateLabel(nl, g), j, v),
				})
			}
		}
	}
	return out
}

// branchEquivToStem reports whether an input s-a-v of a gate of type t is
// equivalent to one of that gate's own output faults (and hence dropped).
func branchEquivToStem(t netlist.GateType, v uint64) bool {
	switch t {
	case netlist.Buf, netlist.Not:
		return true
	case netlist.And, netlist.Nand:
		return v == 0
	case netlist.Or, netlist.Nor:
		return v == 1
	}
	return false
}

func gateLabel(nl *netlist.Netlist, g *netlist.Gate) string {
	if g.Name != "" {
		return g.Name
	}
	return fmt.Sprintf("n%d", g.ID)
}
