// Package hotalloc exercises the allocation-free hot path analyzer:
// only functions annotated //repro:hotpath are checked, and every
// allocating construct inside one is a diagnostic.
package hotalloc

import "fmt"

type state struct {
	regs []uint64
	name string
}

func grow(dst []uint64, n int) []uint64 { return dst }
func spin()                             {}

// execHot is the per-cycle interpreter loop; its allocation count is
// pinned to zero.
//
//repro:hotpath
func execHot(s *state, xs []uint64) uint64 {
	var acc uint64
	buf := make([]uint64, 8) // want `make allocates in hotpath function execHot`
	p := new(state)          // want `new allocates in hotpath function execHot`
	_ = p
	lit := state{}                 // want `composite literal allocates in hotpath function execHot`
	f := func() {}                 // want `closure allocates in hotpath function execHot`
	go spin()                      // want `go statement allocates in hotpath function execHot`
	defer spin()                   // want `defer allocates in hotpath function execHot`
	s.name = s.name + "!"          // want `string concatenation allocates in hotpath function execHot`
	s.regs = append(s.regs, 1)     // want `append may grow and allocate in hotpath function execHot`
	fmt.Println(acc)               // want `fmt.Println allocates in hotpath function execHot`
	var box any = interface{}(acc) // want `conversion to interface boxes its operand in hotpath function execHot`
	_, _, _, _ = buf, lit, f, box
	for _, x := range xs {
		acc ^= x
	}
	return acc
}

// execClean stays on the diet: arithmetic, indexing, and calls into the
// sanctioned growth primitive.
//
//repro:hotpath
func execClean(s *state, xs []uint64) uint64 {
	var acc uint64
	s.regs = grow(s.regs, len(xs))
	for i := range xs {
		acc ^= xs[i] &^ s.regs[i&7]
	}
	if len(s.regs) == 0 {
		// A panicking path is cold; its arguments may allocate.
		panic(fmt.Sprintf("empty state %q", s.name))
	}
	return acc
}

// execSuppressed documents its one deliberate allocation.
//
//repro:hotpath
func execSuppressed(n int) []uint64 {
	buf := make([]uint64, n) //repro:ok hotalloc one-time warm-up buffer, amortized
	return buf
}

// coldPath is not annotated, so it may allocate freely.
func coldPath(n int) []*state {
	out := make([]*state, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, &state{name: fmt.Sprint(i)})
	}
	return out
}
