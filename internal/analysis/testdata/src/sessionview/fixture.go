// Package sessionview exercises the session-owned view retention
// analyzer. The Session type stands in for faultsim.Simulator: View
// returns a pointer into session-owned storage that the next call
// overwrites.
package sessionview

// Result is the view payload.
type Result struct {
	Bits []uint64
}

// Clone returns a detached copy of the result.
func (r *Result) Clone() *Result {
	c := &Result{Bits: make([]uint64, len(r.Bits))}
	copy(c.Bits, r.Bits)
	return c
}

// Session owns a result buffer reused across calls.
type Session struct {
	res Result
}

// View returns the session-owned result of the last call.
//
//repro:session-owned
func (s *Session) View() *Result {
	return &s.res
}

// Bits returns the session-owned raw lane words.
//
//repro:session-owned
func (s *Session) Bits() []uint64 {
	return s.res.Bits
}

// Try is the two-valued form; the error result is never a view.
//
//repro:session-owned
func (s *Session) Try() (*Result, error) {
	return &s.res, nil
}

// Holder retains results across rounds.
type Holder struct {
	res  *Result
	tabs [][]uint64
}

var global *Result

func sink(*Result)      {}
func sinkBits([]uint64) {}

func storeField(s *Session, h *Holder) {
	h.res = s.View() // want `session-owned view from sessionview.Session.View stored in a struct field`
}

func storePackageVar(s *Session) {
	global = s.View() // want `stored in package variable global`
}

func storeViaAlias(s *Session, h *Holder) {
	v := s.View()
	h.res = v // want `stored in a struct field`
}

func storeTwoValued(s *Session, h *Holder) error {
	v, err := s.Try()
	if err != nil {
		return err
	}
	h.res = v // want `session-owned view from sessionview.Session.Try stored in a struct field`
	return nil
}

func returnView(s *Session) *Result {
	return s.View() // want `session-owned view from sessionview.Session.View returned`
}

// forward re-exposes the view and says so; returning it is legal.
//
//repro:session-owned
func forward(s *Session) *Result {
	return s.View()
}

func sendView(s *Session, ch chan *Result) {
	ch <- s.View() // want `sent on a channel`
}

func inCompositeLit(s *Session) {
	sinkSlice([]*Result{s.View()}) // want `stored in a composite literal`
}

func inKeyedLit(s *Session) {
	sinkMap(map[string]*Result{"last": s.View()}) // want `stored in a composite literal`
}

func sinkSlice([]*Result)                       {}
func sinkMap(map[string]*Result)                {}
func spawn(f func())                            {}
func element(rs []*Result, r *Result) []*Result { return append(rs, r) }

func toGoroutine(s *Session) {
	go sink(s.View()) // want `passed to a goroutine`
}

func toDefer(s *Session) {
	defer sink(s.View()) // want `passed to a deferred call`
}

func appendElement(s *Session, h *Holder) {
	h.tabs = append(h.tabs, s.Bits()) // want `appended as an element`
}

func capturedByClosure(s *Session) func() {
	v := s.View()
	return func() {
		sink(v) // want `captured by a closure`
	}
}

// Legal uses: read and move on, spread-append the contents, or Clone.

func readOnly(s *Session) uint64 {
	v := s.View()
	if len(v.Bits) == 0 {
		return 0
	}
	return v.Bits[0]
}

func spreadAppend(s *Session, out []uint64) []uint64 {
	return append(out, s.Bits()...)
}

func cloneDetaches(s *Session, h *Holder) {
	h.res = s.View().Clone()
}

func cloneAliasDetaches(s *Session, h *Holder) {
	v := s.View()
	h.res = v.Clone()
}

func passAsArgument(s *Session) {
	// An ordinary call argument is read-scoped by convention; the
	// analyzer deliberately does not track into callees.
	sink(s.View())
	sinkBits(s.Bits())
}

func suppressed(s *Session, h *Holder) {
	h.res = s.View() //repro:ok sessionview round is single-shot, no next call
}

func suppressedAbove(s *Session, h *Holder) {
	//repro:ok sessionview round is single-shot, no next call
	h.res = s.View()
}
