// Package ctxpoll exercises the cancellation-poll analyzer. The
// Machine type stands in for a compiled netlist machine; Step carries
// the //repro:step annotation that obliges driving loops to poll. The
// pragma opts the package into engine scope.
//
//repro:deterministic
package ctxpoll

import "context"

// Machine is a compiled per-cycle evaluator.
type Machine struct {
	cyc uint64
}

// Step advances the machine one cycle.
//
//repro:step
func (m *Machine) Step() {
	m.cyc++
}

// options mirrors engine.Options: Cancelled is a recognized poll.
type options struct {
	ctx context.Context
}

func (o *options) Cancelled() bool {
	return o.ctx != nil && o.ctx.Err() != nil
}

func unpolled(m *Machine, n int) {
	for i := 0; i < n; i++ {
		m.Step() // want `loop drives ctxpoll.Machine.Step without reaching a Ctx poll`
	}
}

func unpolledRange(m *Machine, vectors [][]uint64) {
	for range vectors {
		m.Step() // want `loop drives ctxpoll.Machine.Step without reaching a Ctx poll`
	}
}

func unpolledClosure(m *Machine, n int, run func(func())) {
	run(func() {
		for i := 0; i < n; i++ {
			m.Step() // want `loop drives ctxpoll.Machine.Step without reaching a Ctx poll`
		}
	})
}

// polledErr uses the engines' established gated poll: reachable per
// iteration is enough, unconditional is not required.
func polledErr(ctx context.Context, m *Machine, n int) error {
	for i := 0; i < n; i++ {
		if ctx != nil && i&31 == 31 && ctx.Err() != nil {
			return ctx.Err()
		}
		m.Step()
	}
	return nil
}

func polledDone(ctx context.Context, m *Machine, n int) {
	for i := 0; i < n; i++ {
		select {
		case <-ctx.Done():
			return
		default:
		}
		m.Step()
	}
}

func polledCancelled(o *options, m *Machine, n int) {
	for i := 0; i < n; i++ {
		if o.Cancelled() {
			return
		}
		m.Step()
	}
}

// cancelled is the unexported wrapper idiom; the name match is
// case-insensitive.
func (o *options) cancelled() bool { return o.Cancelled() }

func polledLowercase(o *options, m *Machine, n int) {
	for i := 0; i < n; i++ {
		if o.cancelled() {
			return
		}
		m.Step()
	}
}

// nestedInner drives the machine from an inner per-lane loop; the
// outermost loop polls, which covers every iteration of the nest.
func nestedInner(ctx context.Context, m *Machine, lanes, n int) {
	for i := 0; i < n; i++ {
		if ctx.Err() != nil {
			return
		}
		for l := 0; l < lanes; l++ {
			m.Step()
		}
	}
}

// RunBounded is itself annotated //repro:step: the obligation moves to
// its callers, so its internal loop needs no poll.
//
//repro:step
func RunBounded(m *Machine, n int) {
	for i := 0; i < n; i++ {
		m.Step()
	}
}

func callerOfBounded(ctx context.Context, m *Machine, rounds int) {
	for r := 0; r < rounds; r++ {
		if ctx.Err() != nil {
			return
		}
		RunBounded(m, 32)
	}
}

func suppressed(m *Machine) {
	for i := 0; i < 4; i++ {
		m.Step() //repro:ok ctxpoll bounded four-cycle settle loop
	}
}

// Stepper abstracts machines behind an interface; the method doc
// directive binds calls through the interface too.
type Stepper interface {
	// Step advances one cycle.
	//
	//repro:step
	Step()
}

func unpolledIface(s Stepper, n int) {
	for i := 0; i < n; i++ {
		s.Step() // want `loop drives ctxpoll.Stepper.Step without reaching a Ctx poll`
	}
}
