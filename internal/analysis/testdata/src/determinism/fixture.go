// Package determinism exercises the cross-run determinism analyzer.
// The package is not an engine package by path, so the pragma below
// opts it into scope the way a downstream engine extension would.
//
//repro:deterministic
package determinism

import (
	"fmt"
	"math/rand"
	"slices"
	"sort"
	"time"
)

type score struct {
	faults map[string]float64
	order  []string
}

func stamp() time.Time {
	return time.Now() // want `time.Now is nondeterministic across runs`
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time.Since is nondeterministic across runs`
}

func globalDraw() int {
	return rand.Intn(10) // want `global rand.Intn draws from the shared unseeded source`
}

func seededDraw(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

func pickAny(m map[string]int) (string, int) {
	for k, v := range m {
		return k, v // want `return inside a map range selects an arbitrary element`
	}
	return "", 0
}

func firstMatch(m map[string]int) string {
	found := ""
	for k, v := range m {
		if v > 0 {
			found = k
			break // want `break inside a map range selects an arbitrary element`
		}
	}
	return found
}

func streamOut(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want `channel send inside a map range delivers in map iteration order`
	}
}

func report(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want `printing inside a map range emits in map iteration order`
	}
}

func unsortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append inside a map range accumulates in map iteration order`
	}
	return keys
}

func accumulateFloat(s *score) float64 {
	total := 0.0
	for _, v := range s.faults {
		total += v // want `float accumulation in map iteration order is not associative`
	}
	return total
}

func accumulateString(m map[string]int) string {
	out := ""
	for k := range m {
		out += k // want `string concatenation in map iteration order varies per run`
	}
	return out
}

// Legal shapes: collect-then-sort, order-insensitive writes, integer
// counters, and local accumulation inside the body.

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func slicesSortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

func count(m map[string]int) int {
	n := 0
	for _, v := range m {
		if v > 0 {
			n++
		}
	}
	return n
}

func suppressed(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v //repro:ok determinism debug-only aggregate, never merged
	}
	return total
}
