package analysis

// ctxpoll enforces the cooperative-cancellation contract in the engine
// packages (EnginePackages, plus //repro:deterministic pragma opt-ins):
// a loop that drives the compiled machines — calls a function annotated
// //repro:step, like netlist.Machine.Eval or sim.Machine.StepInto —
// can run for millions of cycles, so it must reach a Ctx poll on every
// iteration path or a cancelled campaign hangs until the batch drains.
//
// Recognized polls are ctx.Err()/ctx.Done() on a context.Context and
// the shared engine.Options.Cancelled helper (matched by method name,
// so fixture packages need not import the engine). The check applies
// to the outermost step-driving loop of each function body (closures
// are separate bodies): an inner per-lane loop under a polling cycle
// loop is fine, and the established cyc&31 == 31 gating counts — the
// analyzer requires a poll to be reachable, not unconditional. A
// function annotated //repro:step itself is exempt: marking it moves
// the polling obligation to its callers, which is how the bounded
// helpers (sim.Machine.Run over a capped sequence) opt out. Suppress a
// known-bounded loop with //repro:ok ctxpoll <reason>.

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxPoll is the cancellation-poll analyzer.
var CtxPoll = &Analyzer{
	Name: "ctxpoll",
	Doc:  "flags loops that drive //repro:step machine functions without reaching a Ctx poll (ctx.Err/Done or Options.Cancelled)",
	Run:  runCtxPoll,
}

func runCtxPoll(pass *Pass) error {
	if !pass.engineScoped() {
		return nil
	}
	for _, file := range pass.sourceFiles() {
		// Each function body — declaration or closure — is its own
		// polling domain: a closure handed to the worker pool runs far
		// from its lexical home, so it must poll for itself. The walk
		// reaches every FuncLit exactly once; checkPollDomain itself
		// never descends into nested closures.
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body == nil {
					return true
				}
				if obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func); ok && pass.Ann.HasFunc(obj, "step") {
					// The annotation moves the obligation to callers;
					// don't also demand polls inside.
					return false
				}
				checkPollDomain(pass, fn.Body)
			case *ast.FuncLit:
				checkPollDomain(pass, fn.Body)
			}
			return true
		})
	}
	return nil
}

// checkPollDomain flags the outermost step-driving loops of one
// function body. Nested loops belong to their outermost loop (a poll
// anywhere under it is reachable per outer iteration); closures are
// separate domains, skipped here.
func checkPollDomain(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch loop := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt:
			checkLoop(pass, loop.Body)
			return false
		case *ast.RangeStmt:
			checkLoop(pass, loop.Body)
			return false
		}
		return true
	})
}

// checkLoop judges one outermost loop: a body (closures excluded) that
// calls a step function but contains no poll is reported.
func checkLoop(pass *Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo
	var step *ast.CallExpr
	var stepSym string
	polled := false
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeOf(info, call)
		if fn == nil {
			return true
		}
		if step == nil && pass.Ann.HasFunc(fn, "step") {
			step, stepSym = call, FuncSymbol(fn)
		}
		if isPoll(fn) {
			polled = true
			return false
		}
		return true
	})
	if step != nil && !polled {
		pass.Reportf(step.Pos(), "loop drives %s without reaching a Ctx poll (add a ctx.Err()/Options.Cancelled check, or annotate the enclosing function //repro:step to move the obligation to callers)", stepSym)
	}
}

// isPoll recognizes the cancellation probes the engines use:
// engine.Options.Cancelled and the unexported wrappers around it
// (matched case-insensitively by name, so fixture and downstream
// packages need not import the engine), plus ctx.Err/ctx.Done on a
// context.Context.
func isPoll(fn *types.Func) bool {
	if strings.EqualFold(fn.Name(), "cancelled") {
		return true
	}
	switch fn.Name() {
	case "Err", "Done":
		if recv := fn.Signature().Recv(); recv != nil {
			return isContextType(recv.Type())
		}
	}
	return false
}
