package analysis

// Directive grammar. Contracts are written in the source as //repro:
// comments and read here:
//
//	//repro:session-owned   (function doc) the function returns a
//	                        session-owned view, overwritten by the next
//	                        call on the same session — callers must not
//	                        retain it (sessionview enforces the rule,
//	                        and permits it to functions that carry the
//	                        same annotation themselves).
//	//repro:hotpath         (function doc) the body is a hot execution
//	                        loop and must not allocate (hotalloc).
//	//repro:step            (function doc) the function advances a
//	                        compiled machine; loops driving it must
//	                        reach a Ctx poll on every iteration path
//	                        (ctxpoll).
//	//repro:deterministic   (anywhere in a file) opts the whole package
//	                        into the engine-scope analyzers (determinism
//	                        and ctxpoll), as if it were listed in
//	                        EnginePackages.
//	//repro:ok <analyzer> <reason>
//	                        suppresses the named analyzer (or "all") on
//	                        this line and the next — the false-positive
//	                        escape hatch. The reason is required: a
//	                        suppression without a recorded why is how
//	                        contracts rot.
//
// Function annotations are indexed by symbol ("pkgpath.Name" or
// "pkgpath.Recv.Name") and, under the unitchecker driver, exported as
// vet facts so call-site analyzers see annotations from imported
// packages.

import (
	"bytes"
	"encoding/gob"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Annotations indexes //repro: function directives by symbol.
type Annotations struct {
	// Funcs maps a function symbol to its directive set.
	Funcs map[string]map[string]bool
}

// NewAnnotations returns an empty index.
func NewAnnotations() *Annotations {
	return &Annotations{Funcs: make(map[string]map[string]bool)}
}

// add records one directive for a symbol.
func (a *Annotations) add(symbol, directive string) {
	set := a.Funcs[symbol]
	if set == nil {
		set = make(map[string]bool)
		a.Funcs[symbol] = set
	}
	set[directive] = true
}

// Merge folds other (typically a dependency's exported facts) into a.
func (a *Annotations) Merge(other *Annotations) {
	if other == nil {
		return
	}
	for sym, set := range other.Funcs {
		for d := range set {
			a.add(sym, d)
		}
	}
}

// Has reports whether the symbol carries the directive.
func (a *Annotations) Has(symbol, directive string) bool {
	return a != nil && a.Funcs[symbol][directive]
}

// HasFunc reports whether the (possibly nil) function object carries
// the directive.
func (a *Annotations) HasFunc(fn *types.Func, directive string) bool {
	if fn == nil {
		return false
	}
	return a.Has(FuncSymbol(fn), directive)
}

// Encode serializes the index for a vet facts file.
func (a *Annotations) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(a.Funcs); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeAnnotations reads a facts file produced by Encode. Empty input
// decodes to an empty index (a dependency with no directives writes no
// payload).
func DecodeAnnotations(data []byte) (*Annotations, error) {
	a := NewAnnotations()
	if len(data) == 0 {
		return a, nil
	}
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&a.Funcs); err != nil {
		return nil, err
	}
	return a, nil
}

// FuncSymbol names a function object the way the annotation index keys
// it: "pkgpath.Name" for package functions, "pkgpath.Recv.Name" for
// methods (pointer receivers and generic instantiations collapse onto
// the defining named type).
func FuncSymbol(fn *types.Func) string {
	pkg := fn.Pkg()
	if pkg == nil {
		return fn.Name()
	}
	if recv := fn.Signature().Recv(); recv != nil {
		t := recv.Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			obj := named.Origin().Obj()
			return obj.Pkg().Path() + "." + obj.Name() + "." + fn.Name()
		}
		// Interface or other unnamed receiver: fall back to the
		// package-qualified method name.
		return pkg.Path() + "." + fn.Name()
	}
	return pkg.Path() + "." + fn.Name()
}

const directivePrefix = "//repro:"

// directiveOf splits one comment into its directive name and argument
// tail, or returns "" when the comment is not a //repro: directive.
func directiveOf(c *ast.Comment) (name, args string) {
	if !strings.HasPrefix(c.Text, directivePrefix) {
		return "", ""
	}
	rest := strings.TrimPrefix(c.Text, directivePrefix)
	name, args, _ = strings.Cut(rest, " ")
	if name == "" {
		return "", "" // "//repro: x" is not a directive; no space allowed
	}
	return name, strings.TrimSpace(args)
}

// scanResult is everything the directive scan of one package yields.
type scanResult struct {
	ann      *Annotations
	pragmas  map[string]bool                    // package-level directives (e.g. "deterministic")
	suppress map[string]map[int]map[string]bool // file -> line -> suppressed analyzers
}

// scanDirectives walks the package files (tests excluded) for //repro:
// directives: function annotations, package pragmas and per-line
// suppressions.
func scanDirectives(fset *token.FileSet, files []*ast.File, info *types.Info) scanResult {
	res := scanResult{
		ann:      NewAnnotations(),
		pragmas:  make(map[string]bool),
		suppress: make(map[string]map[int]map[string]bool),
	}
	for _, f := range files {
		fname := fset.Position(f.Pos()).Filename
		if strings.HasSuffix(fname, "_test.go") {
			continue
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, args := directiveOf(c)
				switch name {
				case "":
					continue
				case "deterministic":
					res.pragmas[name] = true
				case "ok":
					analyzer, _, _ := strings.Cut(args, " ")
					if analyzer == "" {
						continue
					}
					line := fset.Position(c.Pos()).Line
					lines := res.suppress[fname]
					if lines == nil {
						lines = make(map[int]map[string]bool)
						res.suppress[fname] = lines
					}
					set := lines[line]
					if set == nil {
						set = make(map[string]bool)
						lines[line] = set
					}
					set[analyzer] = true
				}
			}
		}
		addFuncDirectives := func(doc *ast.CommentGroup, ident *ast.Ident) {
			if doc == nil {
				return
			}
			for _, c := range doc.List {
				name, _ := directiveOf(c)
				switch name {
				case "session-owned", "hotpath", "step":
					if obj, ok := info.Defs[ident].(*types.Func); ok {
						res.ann.add(FuncSymbol(obj), name)
					}
				}
			}
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				addFuncDirectives(d.Doc, d.Name)
			case *ast.GenDecl:
				// Interface methods carry directives too, so calls
				// through an interface (the fault-batch scheduler)
				// keep their contract.
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					it, ok := ts.Type.(*ast.InterfaceType)
					if !ok || it.Methods == nil {
						continue
					}
					for _, m := range it.Methods.List {
						for _, name := range m.Names {
							addFuncDirectives(m.Doc, name)
						}
					}
				}
			}
		}
	}
	return res
}

// EnginePackages lists the package paths bound to the engine-scope
// contracts (determinism of every compiled path, cooperative Ctx
// polling) without needing a //repro:deterministic pragma: the compiled
// engines themselves plus the shared option surface. Shard results of a
// distributed campaign merge by construction only while these stay
// order-deterministic.
var EnginePackages = map[string]bool{
	"repro/internal/netlist":  true,
	"repro/internal/faultsim": true,
	"repro/internal/mutscore": true,
	"repro/internal/sim":      true,
	"repro/internal/tpg":      true,
	"repro/internal/atpg":     true,
	"repro/internal/engine":   true,
	"repro/internal/campaign": true,
}

// engineScoped reports whether the pass's package is bound to the
// engine-scope contracts, by path or by pragma.
func (p *Pass) engineScoped() bool {
	if EnginePackages[p.Pkg.Path()] {
		return true
	}
	return p.pragma("deterministic")
}

// pragma reports whether the package carries the given package-level
// directive. The index is built by the driver; a Pass constructed
// without one (defensive default) has no pragmas.
func (p *Pass) pragma(name string) bool {
	return p.pragmas[name]
}
