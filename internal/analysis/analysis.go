// Package analysis is the repository's contracts-as-lint suite: a small
// go/analysis-style framework plus four analyzers that mechanically
// enforce the written engine contracts — session-view ownership
// (sessionview), allocation-free hot paths (hotalloc), cross-run
// determinism (determinism) and cooperative cancellation (ctxpoll).
//
// The framework mirrors the golang.org/x/tools/go/analysis API shape
// (Analyzer, Pass, Diagnostic) but is self-contained: this repository
// vendors no dependencies, so the driver protocol that lets the suite
// run under "go vet -vettool=..." (see unitchecker.go) and the
// analysistest-style fixture harness (see the analysistest subpackage)
// are implemented here on the standard library alone.
//
// Contracts are written in the source as //repro: directives (see
// annotate.go for the grammar) and checked at every use site; the
// cmd/reprolint multichecker carries annotations across package
// boundaries as vet facts, so a session-owned view escaping three
// packages away from its definition is still a positioned diagnostic.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one named, documented check over a single package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, enable flags and
	// suppression directives. It must be a valid identifier.
	Name string
	// Doc is the one-paragraph description shown by reprolint help.
	Doc string
	// Run applies the analyzer to one package, reporting findings
	// through pass.Report.
	Run func(*Pass) error
}

// Diagnostic is one finding, positioned so editors and CI can jump to
// it.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass carries one package's parsed, type-checked state through an
// analyzer, together with the repository annotation index.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Ann indexes the //repro: directives visible to this package: the
	// package's own plus, under the unitchecker driver, those imported
	// as facts from its dependencies.
	Ann *Annotations

	// report receives diagnostics that survive suppression.
	report func(Diagnostic)

	// suppress maps file name -> line -> analyzer names suppressed
	// on that line by a //repro:ok directive.
	suppress map[string]map[int]map[string]bool

	// pragmas holds the package-level directives of this package.
	pragmas map[string]bool
}

// Report emits a diagnostic unless a //repro:ok directive on the same
// line, or on the line above, suppresses this analyzer there.
func (p *Pass) Report(d Diagnostic) {
	pos := p.Fset.Position(d.Pos)
	if lines, ok := p.suppress[pos.Filename]; ok {
		for _, ln := range [2]int{pos.Line, pos.Line - 1} {
			if m, ok := lines[ln]; ok && (m[p.Analyzer.Name] || m["all"]) {
				return
			}
		}
	}
	p.report(d)
}

// Reportf is Report with formatting.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// All returns the full analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{SessionView, HotAlloc, Determinism, CtxPoll}
}

// AnalyzePackage runs one analyzer over an already type-checked
// package and returns its diagnostics. Annotations come from the
// package's own //repro: directives; the unitchecker driver layers
// imported facts on top of this path, and the analysistest harness
// calls it directly (fixtures are single packages).
func AnalyzePackage(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Diagnostic, error) {
	scan := scanDirectives(fset, files, info)
	var out []Diagnostic
	pass := &Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		Ann:       scan.ann,
		pragmas:   scan.pragmas,
		suppress:  scan.suppress,
		report:    func(d Diagnostic) { out = append(out, d) },
	}
	if err := a.Run(pass); err != nil {
		return nil, err
	}
	return out, nil
}

// isTestFile reports whether the file sits in a _test.go file. The
// contracts bind engine code; tests deliberately do odd things (clock
// wall time, hold views hostage to probe the ownership rules), so every
// analyzer in the suite skips test files.
func (p *Pass) isTestFile(f *ast.File) bool {
	name := p.Fset.Position(f.Pos()).Filename
	const suffix = "_test.go"
	return len(name) >= len(suffix) && name[len(name)-len(suffix):] == suffix
}

// sourceFiles yields the non-test files of the pass.
func (p *Pass) sourceFiles() []*ast.File {
	out := make([]*ast.File, 0, len(p.Files))
	for _, f := range p.Files {
		if !p.isTestFile(f) {
			out = append(out, f)
		}
	}
	return out
}
