package analysis

// hotalloc enforces the allocation diet on the exec loops (see the
// //repro:hotpath grammar in annotate.go): a function annotated
// hotpath is one of the per-cycle engine loops — the netlist/sim
// instruction interpreters, the fault-batch schedulers, the ATPG plane
// sim — whose warm-path allocation count is pinned to zero by the
// AllocsPerRun tests. The analyzer rejects every allocating construct
// the compiler cannot elide in those bodies: make/new, composite
// literals, append, closures (and go/defer, which allocate and stall),
// fmt and log calls, string concatenation, and explicit conversions of
// concrete values to interface types (boxing).
//
// Calls to ordinary functions are allowed — growth goes through the
// sanctioned engine.Grow/GrowZero primitives, whose amortized
// allocations are the contract's escape valve — and arguments of panic
// calls are exempt (a panic is the cold path by definition). Implicit
// boxing at call boundaries is out of reach of a syntactic check; the
// fmt ban covers the common case. Suppress a deliberate allocation
// with //repro:ok hotalloc <reason>.

import (
	"go/ast"
	"go/types"
)

// HotAlloc is the allocation-free hot path analyzer.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "flags allocating constructs inside //repro:hotpath functions (the exec loops must stay allocation-free)",
	Run:  runHotAlloc,
}

func runHotAlloc(pass *Pass) error {
	for _, file := range pass.sourceFiles() {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok || !pass.Ann.HasFunc(obj, "hotpath") {
				continue
			}
			checkHotPath(pass, fd)
		}
	}
	return nil
}

func checkHotPath(pass *Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CompositeLit:
			pass.Reportf(e.Pos(), "composite literal allocates in hotpath function %s", fd.Name.Name)
			return false // one report per literal tree
		case *ast.FuncLit:
			pass.Reportf(e.Pos(), "closure allocates in hotpath function %s", fd.Name.Name)
			return false
		case *ast.GoStmt:
			pass.Reportf(e.Pos(), "go statement allocates in hotpath function %s", fd.Name.Name)
		case *ast.DeferStmt:
			pass.Reportf(e.Pos(), "defer allocates in hotpath function %s", fd.Name.Name)
		case *ast.BinaryExpr:
			if e.Op.String() == "+" && isStringType(info.TypeOf(e)) {
				pass.Reportf(e.Pos(), "string concatenation allocates in hotpath function %s", fd.Name.Name)
			}
		case *ast.CallExpr:
			switch builtinOf(info, e) {
			case "make", "new":
				pass.Reportf(e.Pos(), "%s allocates in hotpath function %s", builtinOf(info, e), fd.Name.Name)
			case "append":
				pass.Reportf(e.Pos(), "append may grow and allocate in hotpath function %s (preallocate via engine.Grow)", fd.Name.Name)
			case "panic":
				return false // a panicking path is cold; its arguments may allocate
			}
			if fn := calleeOf(info, e); fn != nil && fn.Pkg() != nil {
				switch fn.Pkg().Path() {
				case "fmt", "log":
					pass.Reportf(e.Pos(), "%s.%s allocates in hotpath function %s", fn.Pkg().Name(), fn.Name(), fd.Name.Name)
				}
			}
			// Explicit conversion boxing a concrete value into an
			// interface.
			if tv, ok := info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
				if isInterfaceType(tv.Type) && !isInterfaceType(info.TypeOf(e.Args[0])) {
					pass.Reportf(e.Pos(), "conversion to interface boxes its operand in hotpath function %s", fd.Name.Name)
				}
			}
		}
		return true
	})
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isInterfaceType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Interface)
	return ok
}
