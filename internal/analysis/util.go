package analysis

import (
	"go/ast"
	"go/types"
)

// withStack walks root in source order, invoking fn with each node and
// the stack of its ancestors (outermost first, not including n). fn
// returning false prunes the subtree.
func withStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// unparen strips parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// calleeOf resolves the called function object of a call expression, or
// nil for builtins, type conversions and indirect calls through
// function values.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	fun := unparen(call.Fun)
	// Unwrap explicit generic instantiation: f[T](...).
	switch ix := fun.(type) {
	case *ast.IndexExpr:
		fun = unparen(ix.X)
	case *ast.IndexListExpr:
		fun = unparen(ix.X)
	}
	var obj types.Object
	switch fn := fun.(type) {
	case *ast.Ident:
		obj = info.Uses[fn]
	case *ast.SelectorExpr:
		obj = info.Uses[fn.Sel]
	}
	f, _ := obj.(*types.Func)
	return f
}

// builtinOf returns the name of the builtin a call invokes ("make",
// "append", ...), or "".
func builtinOf(info *types.Info, call *ast.CallExpr) string {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// enclosingFunc returns the innermost function node (FuncDecl or
// FuncLit) on the stack, or nil.
func enclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}

// isErrorType reports whether t is the built-in error type.
func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}
