package analysis

// sessionview enforces the engine ownership contract on session-owned
// views (see the engine package doc and the //repro:session-owned
// grammar in annotate.go): the result of an annotated function —
// faultsim.Simulator.Append/AppendTest and friends — is overwritten by
// the next call on the same session, so callers may read it and move
// on, or Clone it, but must not retain it. The analyzer flags the
// retention shapes that have bitten or nearly bitten this repository:
// storing the view (or a local bound to it) in a struct field, slice
// or map element, package variable or composite literal; returning it
// from a function that is not itself annotated session-owned; sending
// it on a channel; capturing it in a closure; handing it to a go or
// defer call; and appending it as an element (appending its contents
// with ... copies, and stays legal).
//
// The check is syntactic and local by design: a view passed as an
// ordinary call argument is not tracked into the callee, and a
// reassigned local stays tainted. Both soundness gaps are documented
// in README.md; a deliberate retention is suppressed with
// //repro:ok sessionview <reason>.

import (
	"go/ast"
	"go/types"
)

// SessionView is the session-owned view retention analyzer.
var SessionView = &Analyzer{
	Name: "sessionview",
	Doc:  "flags retained session-owned views (results of //repro:session-owned functions must be read or Cloned, never stored)",
	Run:  runSessionView,
}

func runSessionView(pass *Pass) error {
	for _, file := range pass.sourceFiles() {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkSessionViews(pass, fd)
		}
	}
	return nil
}

// viewInfo records where a local became a session-owned view and which
// function owns it (closure-capture detection compares owners).
type viewInfo struct {
	src   string   // the annotated callee the view came from
	owner ast.Node // FuncDecl or FuncLit the variable is local to
}

func checkSessionViews(pass *Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	views := make(map[*types.Var]viewInfo)

	// bind records the assignment targets of a view-producing
	// expression: plain locals become tracked views, anything else is
	// an escape.
	bind := func(lhs ast.Expr, src string, stack []ast.Node, report bool) {
		lhs = unparen(lhs)
		if id, ok := lhs.(*ast.Ident); ok {
			if id.Name == "_" {
				return
			}
			obj := info.Defs[id]
			if obj == nil {
				obj = info.Uses[id]
			}
			v, ok := obj.(*types.Var)
			if !ok || isErrorType(v.Type()) {
				return
			}
			if v.Parent() == pass.Pkg.Scope() {
				if report {
					pass.Reportf(id.Pos(), "session-owned view from %s stored in package variable %s (next call overwrites it; Clone to retain)", src, id.Name)
				}
				return
			}
			if _, seen := views[v]; !seen {
				views[v] = viewInfo{src: src, owner: enclosingFunc(stack)}
			}
			return
		}
		if report {
			pass.Reportf(lhs.Pos(), "session-owned view from %s stored in %s (next call overwrites it; Clone to retain)", src, describeLValue(lhs))
		}
	}

	// classify judges one view-valued expression e (an annotated call,
	// or a use of a tracked view variable) against its ancestors.
	classify := func(e ast.Expr, src string, stack []ast.Node, report bool) {
		parent, grand := parentOf(stack)
		switch p := parent.(type) {
		case *ast.AssignStmt:
			for i, rhs := range p.Rhs {
				if unparen(rhs) != e {
					continue
				}
				if len(p.Lhs) == len(p.Rhs) {
					bind(p.Lhs[i], src, stack, report)
				} else {
					// Multi-value call: every non-error target binds
					// the view.
					for _, l := range p.Lhs {
						bind(l, src, stack, report)
					}
				}
			}
		case *ast.ValueSpec:
			for _, name := range p.Names {
				bind(name, src, stack, report)
			}
		case *ast.ReturnStmt:
			if fn := enclosingFunc(stack); !report || annotatedSessionOwned(pass, fn) {
				return
			}
			pass.Reportf(e.Pos(), "session-owned view from %s returned (annotate the function //repro:session-owned, or Clone the view)", src)
		case *ast.SendStmt:
			if report && unparen(p.Value) == e {
				pass.Reportf(e.Pos(), "session-owned view from %s sent on a channel (next call overwrites it; Clone to retain)", src)
			}
		case *ast.CompositeLit:
			if report {
				pass.Reportf(e.Pos(), "session-owned view from %s stored in a composite literal (next call overwrites it; Clone to retain)", src)
			}
		case *ast.KeyValueExpr:
			if report && unparen(p.Value) == e {
				pass.Reportf(e.Pos(), "session-owned view from %s stored in a composite literal (next call overwrites it; Clone to retain)", src)
			}
		case *ast.CallExpr:
			if !report {
				return
			}
			if _, isGo := grand.(*ast.GoStmt); isGo {
				pass.Reportf(e.Pos(), "session-owned view from %s passed to a goroutine (the session may overwrite it concurrently; Clone to retain)", src)
				return
			}
			if _, isDefer := grand.(*ast.DeferStmt); isDefer {
				pass.Reportf(e.Pos(), "session-owned view from %s passed to a deferred call (later session calls overwrite it; Clone to retain)", src)
				return
			}
			if builtinOf(info, p) == "append" {
				last := len(p.Args) - 1
				if p.Ellipsis.IsValid() && unparen(p.Args[last]) == e {
					return // append(dst, view...) copies the contents
				}
				pass.Reportf(e.Pos(), "session-owned view from %s appended as an element (next call overwrites it; Clone to retain)", src)
			}
		}
	}

	// Pass 1: find annotated calls, bind views, and iterate local
	// aliasing (v2 := v) to a fixpoint before judging uses.
	for {
		before := len(views)
		withStack(fd, func(n ast.Node, stack []ast.Node) bool {
			switch e := n.(type) {
			case *ast.CallExpr:
				if fn := calleeOf(info, e); pass.Ann.HasFunc(fn, "session-owned") {
					classify(e, FuncSymbol(fn), stack, false)
				}
			case *ast.Ident:
				if v, ok := info.Uses[e].(*types.Var); ok {
					if vi, tracked := views[v]; tracked {
						classify(e, vi.src, stack, false)
					}
				}
			}
			return true
		})
		if len(views) == before {
			break
		}
	}

	// Pass 2: report escapes.
	withStack(fd, func(n ast.Node, stack []ast.Node) bool {
		switch e := n.(type) {
		case *ast.CallExpr:
			if fn := calleeOf(info, e); pass.Ann.HasFunc(fn, "session-owned") {
				classify(e, FuncSymbol(fn), stack, true)
			}
		case *ast.Ident:
			v, ok := info.Uses[e].(*types.Var)
			if !ok {
				return true
			}
			vi, tracked := views[v]
			if !tracked {
				return true
			}
			if owner := enclosingFunc(stack); owner != vi.owner {
				pass.Reportf(e.Pos(), "session-owned view from %s captured by a closure (the closure may outlive the view; Clone to retain)", vi.src)
				return true
			}
			classify(e, vi.src, stack, true)
		}
		return true
	})
}

// parentOf returns the nearest non-paren ancestor and its own parent.
func parentOf(stack []ast.Node) (parent, grand ast.Node) {
	i := len(stack) - 1
	for i >= 0 {
		if _, ok := stack[i].(*ast.ParenExpr); !ok {
			break
		}
		i--
	}
	if i < 0 {
		return nil, nil
	}
	if i == 0 {
		return stack[i], nil
	}
	return stack[i], stack[i-1]
}

// annotatedSessionOwned reports whether the function node carries the
// session-owned directive (FuncLits cannot).
func annotatedSessionOwned(pass *Pass, fn ast.Node) bool {
	fd, ok := fn.(*ast.FuncDecl)
	if !ok {
		return false
	}
	obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	return ok && pass.Ann.HasFunc(obj, "session-owned")
}

// describeLValue names an escape target for the diagnostic.
func describeLValue(e ast.Expr) string {
	switch e.(type) {
	case *ast.SelectorExpr:
		return "a struct field"
	case *ast.IndexExpr:
		return "a slice or map element"
	case *ast.StarExpr:
		return "a dereferenced pointer"
	}
	return "a non-local location"
}
