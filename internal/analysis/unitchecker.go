package analysis

// The go vet driver protocol. "go vet -vettool=<binary> ./..." drives
// the binary once per package:
//
//   - "<binary> -flags" must print a JSON description of the tool's
//     flags, so cmd/go can validate what the user passes to go vet.
//   - "<binary> -V=full" must print a line whose build ID changes when
//     the tool changes; cmd/go folds it into the vet action cache key,
//     so editing an analyzer invalidates cached results.
//   - "<binary> [flags] <dir>/vet.cfg" analyzes one package described
//     by the JSON config: source files, the import map, and export
//     data files for every dependency. Findings go to stderr as
//     file:line:col: message, exit status 2. Facts (here: the //repro:
//     annotation index) are written to cfg.VetxOutput and handed back
//     as cfg.PackageVetx when dependents are analyzed, which is how a
//     //repro:session-owned annotation in faultsim reaches a call site
//     in examples/quickstart.
//
// x/tools' unitchecker implements the same protocol; this repository
// vendors nothing, so the subset the suite needs is implemented here
// on the standard library alone (the gc export-data importer does the
// heavy lifting).

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Config is the package description cmd/go writes to vet.cfg. Field
// names and meaning follow cmd/go/internal/work.vetConfig.
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	GoVersion                 string
	SucceedOnTypecheckFailure bool
}

// jsonFlag is one row of the -flags handshake.
type jsonFlag struct {
	Name  string
	Bool  bool
	Usage string
}

// Main is the entry point of a reprolint-style vettool over the given
// analyzers. It never returns.
func Main(analyzers ...*Analyzer) {
	progname := filepath.Base(os.Args[0])
	log.SetFlags(0)
	log.SetPrefix(progname + ": ")

	enabled := make(map[string]*bool, len(analyzers))
	for _, a := range analyzers {
		enabled[a.Name] = flag.Bool(a.Name, false, "run only the named analyzers: "+a.Doc)
	}
	versionFlag := flag.String("V", "", "print version and exit (cmd/go passes -V=full)")
	flagsFlag := flag.Bool("flags", false, "print the tool's flags as JSON and exit")
	jsonFlag_ := flag.Bool("json", false, "emit diagnostics as JSON")
	flag.Parse()

	if *flagsFlag {
		rows := []jsonFlag{{Name: "V", Bool: false, Usage: "print version and exit"}, {Name: "json", Bool: true, Usage: "emit JSON output"}}
		for _, a := range analyzers {
			rows = append(rows, jsonFlag{Name: a.Name, Bool: true, Usage: a.Doc})
		}
		data, err := json.Marshal(rows)
		if err != nil {
			log.Fatal(err)
		}
		os.Stdout.Write(data)
		fmt.Println()
		os.Exit(0)
	}
	if *versionFlag != "" {
		if *versionFlag != "full" {
			log.Fatalf("unsupported flag -V=%s", *versionFlag)
		}
		printVersion(progname)
		os.Exit(0)
	}

	// "go vet -vettool=t -sessionview ./..." runs only the named
	// analyzers; with no analyzer flag set, the whole suite runs.
	anySet := false
	flag.Visit(func(f *flag.Flag) {
		if _, ok := enabled[f.Name]; ok && f.Value.String() == "true" {
			anySet = true
		}
	})
	run := analyzers
	if anySet {
		run = nil
		for _, a := range analyzers {
			if *enabled[a.Name] {
				run = append(run, a)
			}
		}
	}

	args := flag.Args()
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		log.Fatalf("invoke via \"go vet -vettool=%s\"; direct use takes a single vet.cfg argument", progname)
	}
	diags, err := runConfigFile(args[0], run)
	if err != nil {
		log.Fatal(err)
	}
	if len(diags) > 0 {
		if *jsonFlag_ {
			printJSONDiagnostics(os.Stdout, diags)
		} else {
			for _, d := range diags {
				fmt.Fprintf(os.Stderr, "%s: %s\n", d.posn, d.message)
			}
		}
		os.Exit(2)
	}
	os.Exit(0)
}

// printVersion emits the -V=full line. The build ID is the content
// hash of the executable, so cmd/go's vet cache is invalidated exactly
// when the tool binary changes.
func printVersion(progname string) {
	h := sha256.New()
	exe, err := os.Executable()
	if err == nil {
		if f, err2 := os.Open(exe); err2 == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("%s version devel buildID=%x\n", progname, h.Sum(nil))
}

// posDiagnostic is one rendered finding.
type posDiagnostic struct {
	analyzer string
	posn     token.Position
	message  string
}

func printJSONDiagnostics(w io.Writer, diags []posDiagnostic) {
	type row struct {
		Posn    string `json:"posn"`
		Message string `json:"message"`
	}
	byAnalyzer := make(map[string][]row)
	for _, d := range diags {
		byAnalyzer[d.analyzer] = append(byAnalyzer[d.analyzer], row{Posn: d.posn.String(), Message: d.message})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	enc.Encode(byAnalyzer)
}

// runConfigFile loads, type-checks and analyzes the one package a
// vet.cfg describes, returning position-sorted diagnostics.
func runConfigFile(cfgPath string, analyzers []*Analyzer) ([]posDiagnostic, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, err
	}
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", cfgPath, err)
	}
	return runConfig(&cfg, analyzers)
}

// runConfig analyzes the package cfg describes. Exposed for the driver
// tests; Main is the command entry point.
func runConfig(cfg *Config, analyzers []*Analyzer) ([]posDiagnostic, error) {
	// Imported annotation facts: the union of every dependency's
	// exported index.
	ann := NewAnnotations()
	for _, vetx := range sortedValues(cfg.PackageVetx) {
		data, err := os.ReadFile(vetx)
		if err != nil {
			continue // a dependency with no facts file has no facts
		}
		dep, err := DecodeAnnotations(data)
		if err != nil {
			return nil, fmt.Errorf("reading facts %s: %w", vetx, err)
		}
		ann.Merge(dep)
	}

	writeFacts := func(a *Annotations) error {
		if cfg.VetxOutput == "" {
			return nil
		}
		data, err := a.Encode()
		if err != nil {
			return err
		}
		return os.WriteFile(cfg.VetxOutput, data, 0o666)
	}

	// Standard-library packages carry no //repro: directives; skip
	// parsing them entirely and pass the dependency facts through.
	if cfg.Standard[cfg.ImportPath] || len(cfg.GoFiles) == 0 {
		return nil, writeFacts(ann)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, writeFacts(ann)
			}
			return nil, err
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	var lookup func(path string) (io.ReadCloser, error)
	if compiler != "source" { // the source importer forbids a custom lookup
		lookup = func(path string) (io.ReadCloser, error) {
			if mapped, ok := cfg.ImportMap[path]; ok {
				path = mapped
			}
			file, ok := cfg.PackageFile[path]
			if !ok {
				return nil, fmt.Errorf("no export data for %q", path)
			}
			return os.Open(file)
		}
	}
	imp := importer.ForCompiler(fset, compiler, lookup)
	tcfg := types.Config{
		Importer:  imp,
		GoVersion: cfg.GoVersion,
		Error:     func(error) {}, // keep going; the first error is returned below
	}
	pkg, err := tcfg.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, writeFacts(ann)
		}
		return nil, fmt.Errorf("typechecking %s: %w", cfg.ImportPath, err)
	}

	scan := scanDirectives(fset, files, info)
	ann.Merge(scan.ann)
	if err := writeFacts(ann); err != nil {
		return nil, err
	}
	if cfg.VetxOnly {
		return nil, nil
	}

	var diags []posDiagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Ann:       ann,
			pragmas:   scan.pragmas,
			suppress:  scan.suppress,
		}
		name := a.Name
		pass.report = func(d Diagnostic) {
			diags = append(diags, posDiagnostic{analyzer: name, posn: fset.Position(d.Pos), message: d.Message})
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := diags[i].posn, diags[j].posn
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
	return diags, nil
}

// sortedValues returns the map's values in key order (facts merge in a
// deterministic order; the suite should hold itself to its own rule).
func sortedValues(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}
