package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTempPkg writes one Go file and returns its path.
func writeTempPkg(t *testing.T, name, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(src), 0o666); err != nil {
		t.Fatal(err)
	}
	return path
}

const hotSrc = `package hot

//repro:hotpath
func exec(xs []uint64) []uint64 {
	out := make([]uint64, len(xs))
	copy(out, xs)
	return out
}
`

func TestRunConfigDiagnosticsAndFacts(t *testing.T) {
	file := writeTempPkg(t, "hot.go", hotSrc)
	vetx := filepath.Join(t.TempDir(), "hot.vetx")
	cfg := &Config{
		ID:         "tmp/hot",
		Compiler:   "source",
		ImportPath: "tmp/hot",
		GoFiles:    []string{file},
		VetxOutput: vetx,
	}
	diags, err := runConfig(cfg, All())
	if err != nil {
		t.Fatalf("runConfig: %v", err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %+v", len(diags), diags)
	}
	d := diags[0]
	if d.analyzer != "hotalloc" || !strings.Contains(d.message, "make allocates") {
		t.Errorf("unexpected diagnostic: %+v", d)
	}
	if d.posn.Filename != file || d.posn.Line != 5 {
		t.Errorf("diagnostic at %s, want %s:5", d.posn, file)
	}

	data, err := os.ReadFile(vetx)
	if err != nil {
		t.Fatalf("facts not written: %v", err)
	}
	ann, err := DecodeAnnotations(data)
	if err != nil {
		t.Fatalf("facts not decodable: %v", err)
	}
	if !ann.Has("tmp/hot.exec", "hotpath") {
		t.Errorf("facts missing tmp/hot.exec hotpath: %v", ann.Funcs)
	}
}

func TestRunConfigVetxOnly(t *testing.T) {
	file := writeTempPkg(t, "hot.go", hotSrc)
	vetx := filepath.Join(t.TempDir(), "hot.vetx")
	cfg := &Config{
		ID:         "tmp/hot",
		Compiler:   "source",
		ImportPath: "tmp/hot",
		GoFiles:    []string{file},
		VetxOutput: vetx,
		VetxOnly:   true,
	}
	diags, err := runConfig(cfg, All())
	if err != nil {
		t.Fatalf("runConfig: %v", err)
	}
	if len(diags) != 0 {
		t.Errorf("VetxOnly produced diagnostics: %+v", diags)
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Errorf("VetxOnly did not write facts: %v", err)
	}
}

func TestRunConfigFactPropagation(t *testing.T) {
	// A dependency's facts file must flow through to this package's
	// VetxOutput even when the package itself adds nothing, so
	// annotations cross more than one package hop.
	dep := NewAnnotations()
	dep.add("repro/internal/faultsim.Simulator.Append", "session-owned")
	depData, err := dep.Encode()
	if err != nil {
		t.Fatal(err)
	}
	depVetx := filepath.Join(t.TempDir(), "dep.vetx")
	if err := os.WriteFile(depVetx, depData, 0o666); err != nil {
		t.Fatal(err)
	}

	file := writeTempPkg(t, "mid.go", "package mid\n\nfunc F() int { return 1 }\n")
	outVetx := filepath.Join(t.TempDir(), "mid.vetx")
	cfg := &Config{
		ID:         "tmp/mid",
		Compiler:   "source",
		ImportPath: "tmp/mid",
		GoFiles:    []string{file},
		PackageVetx: map[string]string{
			"repro/internal/faultsim": depVetx,
			"tmp/missing":             filepath.Join(t.TempDir(), "absent.vetx"),
		},
		VetxOutput: outVetx,
	}
	diags, err := runConfig(cfg, All())
	if err != nil {
		t.Fatalf("runConfig: %v", err)
	}
	if len(diags) != 0 {
		t.Errorf("clean package produced diagnostics: %+v", diags)
	}
	data, err := os.ReadFile(outVetx)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeAnnotations(data)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Has("repro/internal/faultsim.Simulator.Append", "session-owned") {
		t.Errorf("dependency facts not propagated: %v", out.Funcs)
	}
}

func TestRunConfigStandardPassthrough(t *testing.T) {
	vetx := filepath.Join(t.TempDir(), "std.vetx")
	cfg := &Config{
		ID:         "fmt",
		ImportPath: "fmt",
		GoFiles:    []string{"does-not-exist.go"},
		Standard:   map[string]bool{"fmt": true},
		VetxOutput: vetx,
	}
	diags, err := runConfig(cfg, All())
	if err != nil {
		t.Fatalf("runConfig on standard package: %v", err)
	}
	if len(diags) != 0 {
		t.Errorf("standard package produced diagnostics: %+v", diags)
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Errorf("standard package did not pass facts through: %v", err)
	}
}

func TestRunConfigTypecheckFailure(t *testing.T) {
	file := writeTempPkg(t, "bad.go", "package bad\n\nfunc f() { undefinedIdent() }\n")
	cfg := &Config{
		ID:         "tmp/bad",
		Compiler:   "source",
		ImportPath: "tmp/bad",
		GoFiles:    []string{file},
	}
	if _, err := runConfig(cfg, All()); err == nil {
		t.Error("expected a typecheck error")
	}
	cfg.SucceedOnTypecheckFailure = true
	if _, err := runConfig(cfg, All()); err != nil {
		t.Errorf("SucceedOnTypecheckFailure not honored: %v", err)
	}
}
