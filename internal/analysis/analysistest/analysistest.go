// Package analysistest runs an analyzer over a fixture package and
// checks its diagnostics against // want comments, in the style of
// golang.org/x/tools/go/analysis/analysistest (not vendored here; this
// harness is self-contained on the standard library).
//
// A fixture lives in testdata/src/<name>/ as one package of ordinary
// Go files. A line expecting diagnostics carries a comment of the form
//
//	x := sess.View() // want `session-owned view`
//
// with one Go string literal (quoted or backquoted) per expected
// diagnostic; each is a regular expression matched against the
// diagnostic message reported on that line. Lines without a want
// comment must stay clean, so negative fixtures are just annotated
// code with no want comments. Fixtures may import only the standard
// library: they are type-checked with the source importer, since
// module export data is not available from a bare test process.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// Run analyzes testdata/src/<fixture> (relative to the test's working
// directory) with the analyzer and reports every mismatch between
// actual diagnostics and // want expectations through t.
func Run(t *testing.T, a *analysis.Analyzer, fixture string) {
	t.Helper()
	fset, files, diags := analyze(t, a, fixture)

	wants := collectWants(t, fset, files)
	type key struct {
		file string
		line int
	}
	matched := make(map[*want]bool)
	for _, d := range diags {
		posn := fset.Position(d.Pos)
		k := key{posn.Filename, posn.Line}
		found := false
		for _, w := range wants {
			if w.file == k.file && w.line == k.line && !matched[w] && w.rx.MatchString(d.Message) {
				matched[w] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", posn, d.Message)
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	for _, w := range wants {
		if !matched[w] {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.rx)
		}
	}
}

// RunSilent analyzes the fixture and discards diagnostics: only load,
// typecheck and analyzer errors fail the test. Used to cross-run each
// analyzer over the other analyzers' fixtures as a robustness smoke.
func RunSilent(t *testing.T, a *analysis.Analyzer, fixture string) {
	t.Helper()
	analyze(t, a, fixture)
}

// analyze loads, parses and type-checks one fixture package and runs
// the analyzer over it.
func analyze(t *testing.T, a *analysis.Analyzer, fixture string) (*token.FileSet, []*ast.File, []analysis.Diagnostic) {
	t.Helper()
	dir := filepath.Join("testdata", "src", fixture)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture %s: %v", dir, err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		name := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parsing %s: %v", name, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("fixture %s has no Go files", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check(fixture, fset, files, info)
	if err != nil {
		t.Fatalf("typechecking fixture %s: %v", dir, err)
	}

	diags, err := analysis.AnalyzePackage(a, fset, files, pkg, info)
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, fixture, err)
	}
	return fset, files, diags
}

// want is one expected-diagnostic pattern.
type want struct {
	file string
	line int
	rx   *regexp.Regexp
}

// collectWants parses the // want comments of the fixture files.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*want {
	t.Helper()
	var out []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				posn := fset.Position(c.Pos())
				patterns, err := parsePatterns(rest)
				if err != nil {
					t.Fatalf("%s: bad want comment: %v", posn, err)
				}
				for _, p := range patterns {
					rx, err := regexp.Compile(p)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", posn, p, err)
					}
					out = append(out, &want{file: posn.Filename, line: posn.Line, rx: rx})
				}
			}
		}
	}
	return out
}

// parsePatterns splits a want tail into its Go string literals.
func parsePatterns(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		var lit string
		switch s[0] {
		case '"':
			end := 1
			for end < len(s) {
				if s[end] == '\\' {
					end += 2
					continue
				}
				if s[end] == '"' {
					break
				}
				end++
			}
			if end >= len(s) {
				return nil, fmt.Errorf("unterminated string in %q", s)
			}
			var err error
			lit, err = strconv.Unquote(s[:end+1])
			if err != nil {
				return nil, err
			}
			s = s[end+1:]
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated raw string in %q", s)
			}
			lit = s[1 : end+1]
			s = s[end+2:]
		default:
			return nil, fmt.Errorf("expected string literal at %q", s)
		}
		out = append(out, lit)
		s = strings.TrimSpace(s)
	}
	return out, nil
}
