package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

// The fixtures under testdata/src pair firing cases (every // want
// line) with clean idioms (unannotated lines) for each analyzer, so a
// single Run per analyzer checks both directions: missed diagnostics
// and false positives.

func TestSessionView(t *testing.T) {
	analysistest.Run(t, analysis.SessionView, "sessionview")
}

func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, analysis.HotAlloc, "hotalloc")
}

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, analysis.Determinism, "determinism")
}

func TestCtxPoll(t *testing.T) {
	analysistest.Run(t, analysis.CtxPoll, "ctxpoll")
}

// TestCrossAnalyzerSilence runs each analyzer over the other analyzers'
// fixtures: a fixture written to fire one analyzer must stay silent (or
// at least not panic) under the rest. Only panics and analyzer errors
// are failures here; the fixtures share annotation grammar, so benign
// cross-fire (hotalloc in a determinism fixture) is tolerated by
// matching nothing.
func TestCrossAnalyzerNoPanic(t *testing.T) {
	for _, a := range analysis.All() {
		for _, fixture := range []string{"sessionview", "hotalloc", "determinism", "ctxpoll"} {
			if a.Name == fixture {
				continue
			}
			a, fixture := a, fixture
			t.Run(a.Name+"/"+fixture, func(t *testing.T) {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("%s panicked on %s fixture: %v", a.Name, fixture, r)
					}
				}()
				analysistest.RunSilent(t, a, fixture)
			})
		}
	}
}
