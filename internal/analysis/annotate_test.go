package analysis

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

func TestAnnotationsRoundTrip(t *testing.T) {
	a := NewAnnotations()
	a.add("repro/internal/faultsim.Simulator.Append", "session-owned")
	a.add("repro/internal/netlist.Machine.Eval", "session-owned")
	a.add("repro/internal/netlist.Machine.Eval", "step")

	data, err := a.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	b, err := DecodeAnnotations(data)
	if err != nil {
		t.Fatalf("DecodeAnnotations: %v", err)
	}
	for sym, set := range a.Funcs {
		for d := range set {
			if !b.Has(sym, d) {
				t.Errorf("round trip lost %s %s", sym, d)
			}
		}
	}
	if b.Has("repro/internal/faultsim.Simulator.Append", "step") {
		t.Error("round trip invented a directive")
	}
}

func TestDecodeAnnotationsEmpty(t *testing.T) {
	a, err := DecodeAnnotations(nil)
	if err != nil {
		t.Fatalf("DecodeAnnotations(nil): %v", err)
	}
	if len(a.Funcs) != 0 {
		t.Errorf("empty payload decoded to %d symbols", len(a.Funcs))
	}
}

func TestAnnotationsMerge(t *testing.T) {
	a := NewAnnotations()
	a.add("p.F", "hotpath")
	b := NewAnnotations()
	b.add("p.F", "step")
	b.add("q.G", "session-owned")
	a.Merge(b)
	a.Merge(nil)
	for _, want := range []struct{ sym, dir string }{
		{"p.F", "hotpath"}, {"p.F", "step"}, {"q.G", "session-owned"},
	} {
		if !a.Has(want.sym, want.dir) {
			t.Errorf("after merge, missing %s %s", want.sym, want.dir)
		}
	}
}

func TestDirectiveOf(t *testing.T) {
	cases := []struct {
		text, name, args string
	}{
		{"//repro:session-owned", "session-owned", ""},
		{"//repro:ok hotalloc warm-up buffer", "ok", "hotalloc warm-up buffer"},
		{"// repro:session-owned", "", ""}, // directives allow no space after //
		{"//repro: session-owned", "", ""}, // or before the name
		{"// ordinary comment", "", ""},
	}
	for _, c := range cases {
		name, args := directiveOf(&ast.Comment{Text: c.text})
		if name != c.name || args != c.args {
			t.Errorf("directiveOf(%q) = (%q, %q), want (%q, %q)", c.text, name, args, c.name, c.args)
		}
	}
}

// typecheckSrc parses and type-checks one in-memory file as package
// path "p".
func typecheckSrc(t *testing.T, src string) (*token.FileSet, []*ast.File, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	if _, err := conf.Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return fset, []*ast.File{f}, info
}

func TestScanDirectives(t *testing.T) {
	const src = `//repro:deterministic
package p

type T struct{}

// Eval runs the machine.
//
//repro:session-owned
//repro:step
func (t *T) Eval() *T { return t }

//repro:hotpath
func exec() {}

// I abstracts machines.
type I interface {
	//repro:step
	Step()
}

func plain() {
	_ = 0 //repro:ok determinism because reasons
}
`
	fset, files, info := typecheckSrc(t, src)
	res := scanDirectives(fset, files, info)

	for _, want := range []struct{ sym, dir string }{
		{"p.T.Eval", "session-owned"},
		{"p.T.Eval", "step"},
		{"p.exec", "hotpath"},
	} {
		if !res.ann.Has(want.sym, want.dir) {
			t.Errorf("scan missed %s %s (have %v)", want.sym, want.dir, res.ann.Funcs)
		}
	}
	// The interface method must be indexed under a symbol that matches
	// what FuncSymbol produces at a call site through the interface.
	found := false
	for sym, set := range res.ann.Funcs {
		if set["step"] && sym != "p.T.Eval" {
			found = true
		}
	}
	if !found {
		t.Errorf("interface method directive not indexed (have %v)", res.ann.Funcs)
	}
	if !res.pragmas["deterministic"] {
		t.Error("deterministic pragma not scanned")
	}
	suppressedLine := 0
	for line, set := range res.suppress["p.go"] {
		if set["determinism"] {
			suppressedLine = line
		}
	}
	if suppressedLine == 0 {
		t.Errorf("ok directive not scanned (have %v)", res.suppress)
	}
}

func TestFuncSymbolInterfaceCallSiteAgreement(t *testing.T) {
	const src = `package p

type I interface {
	//repro:step
	Step()
}

func drive(i I) { i.Step() }
`
	fset, files, info := typecheckSrc(t, src)
	res := scanDirectives(fset, files, info)

	var call *ast.CallExpr
	ast.Inspect(files[0], func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok {
			call = c
		}
		return true
	})
	if call == nil {
		t.Fatal("no call found")
	}
	fn := calleeOf(info, call)
	if fn == nil {
		t.Fatal("callee not resolved")
	}
	if !res.ann.HasFunc(fn, "step") {
		t.Errorf("call-site symbol %q does not see the interface directive (index %v)", FuncSymbol(fn), res.ann.Funcs)
	}
}

func TestReportSuppression(t *testing.T) {
	fset := token.NewFileSet()
	file := fset.AddFile("x.go", -1, 1000)
	for i := 0; i < 20; i++ {
		file.AddLine(i * 50)
	}
	posAt := func(line int) token.Pos { return file.LineStart(line) }

	var got []Diagnostic
	pass := &Pass{
		Analyzer: SessionView,
		Fset:     fset,
		suppress: map[string]map[int]map[string]bool{
			"x.go": {
				3: {"sessionview": true},
				5: {"all": true},
				7: {"hotalloc": true},
			},
		},
		report: func(d Diagnostic) { got = append(got, d) },
	}
	pass.Report(Diagnostic{Pos: posAt(3), Message: "same line"})       // suppressed
	pass.Report(Diagnostic{Pos: posAt(4), Message: "line above"})      // suppressed (directive on 3)
	pass.Report(Diagnostic{Pos: posAt(6), Message: "all wildcard"})    // suppressed (all on 5)
	pass.Report(Diagnostic{Pos: posAt(7), Message: "other analyzer"})  // reported
	pass.Report(Diagnostic{Pos: posAt(10), Message: "no suppression"}) // reported
	if len(got) != 2 {
		t.Fatalf("got %d diagnostics, want 2: %+v", len(got), got)
	}
	if got[0].Message != "other analyzer" || got[1].Message != "no suppression" {
		t.Errorf("wrong diagnostics survived: %+v", got)
	}
}
