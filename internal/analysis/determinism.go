package analysis

// determinism enforces the cross-run reproducibility contract inside
// the engine packages (EnginePackages, plus any package opted in with a
// //repro:deterministic pragma): every compiled path must produce
// bit-identical results for a given seed and configuration, because
// shard results of a distributed campaign merge by construction only if
// re-running a shard reproduces it. Two rule families:
//
//   - Ambient nondeterminism: time.Now/Since/Until and the global
//     math/rand functions (everything except the New* constructors —
//     seeded *rand.Rand instances are the sanctioned source) are
//     forbidden outright.
//
//   - Map iteration order: a range over a map may not feed anything
//     order-sensitive. Flagged sinks are appends to slices declared
//     outside the loop (unless the slice is passed to a sort.* or
//     slices.* call later in the enclosing block — the collect-then-sort
//     idiom), returns and breaks (which select an arbitrary element),
//     channel sends, printing, and += accumulation into outer string or
//     floating-point variables (float addition is not associative, so
//     accumulation order changes the result). Writes into other maps,
//     integer counters and element writes keyed by the iteration key
//     stay legal: their result is order-insensitive.
//
// Suppress a deliberately order-free use with //repro:ok determinism
// <reason>.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Determinism is the cross-run determinism analyzer.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "flags nondeterminism in engine packages: time.Now, global math/rand, and map ranges feeding order-sensitive sinks without a sort",
	Run:  runDeterminism,
}

func runDeterminism(pass *Pass) error {
	if !pass.engineScoped() {
		return nil
	}
	info := pass.TypesInfo
	for _, file := range pass.sourceFiles() {
		withStack(file, func(n ast.Node, stack []ast.Node) bool {
			switch e := n.(type) {
			case *ast.CallExpr:
				checkAmbient(pass, e)
			case *ast.RangeStmt:
				if t := info.TypeOf(e.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						checkMapRange(pass, e, stack)
					}
				}
			}
			return true
		})
	}
	return nil
}

// checkAmbient flags calls that read ambient state no two runs share.
func checkAmbient(pass *Pass, call *ast.CallExpr) {
	fn := calleeOf(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Signature().Recv() != nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			pass.Reportf(call.Pos(), "time.%s is nondeterministic across runs (thread timing through the caller if it must be observed)", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if len(fn.Name()) >= 3 && fn.Name()[:3] == "New" {
			return // rand.New(rand.NewSource(seed)) is the sanctioned path
		}
		pass.Reportf(call.Pos(), "global %s.%s draws from the shared unseeded source; use a seeded *rand.Rand", fn.Pkg().Name(), fn.Name())
	}
}

// checkMapRange flags order-sensitive sinks inside a range over a map.
func checkMapRange(pass *Pass, rng *ast.RangeStmt, stack []ast.Node) {
	info := pass.TypesInfo

	// outerVar resolves an expression to a variable declared outside
	// the loop body, or nil.
	outerVar := func(e ast.Expr) *types.Var {
		id, ok := unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.Pos() == token.NoPos {
			return nil
		}
		if rng.Body.Pos() <= v.Pos() && v.Pos() <= rng.Body.End() {
			return nil
		}
		return v
	}

	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			pass.Reportf(e.Pos(), "return inside a map range selects an arbitrary element (map iteration order varies per run)")
		case *ast.BranchStmt:
			if e.Tok == token.BREAK && e.Label == nil {
				pass.Reportf(e.Pos(), "break inside a map range selects an arbitrary element (map iteration order varies per run)")
			}
		case *ast.SendStmt:
			pass.Reportf(e.Pos(), "channel send inside a map range delivers in map iteration order (sort the keys first)")
		case *ast.CallExpr:
			if fn := calleeOf(info, e); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
				name := fn.Name()
				if len(name) >= 5 && (name[:5] == "Print" || (len(name) >= 6 && name[:6] == "Fprint")) {
					pass.Reportf(e.Pos(), "printing inside a map range emits in map iteration order (sort the keys first)")
				}
			}
		case *ast.AssignStmt:
			checkMapRangeAssign(pass, e, rng, stack, outerVar)
		}
		return true
	})
}

// checkMapRangeAssign judges one assignment inside a map range body.
func checkMapRangeAssign(pass *Pass, as *ast.AssignStmt, rng *ast.RangeStmt, stack []ast.Node, outerVar func(ast.Expr) *types.Var) {
	info := pass.TypesInfo
	switch as.Tok {
	case token.ADD_ASSIGN:
		for _, l := range as.Lhs {
			v := outerVar(l)
			if v == nil {
				continue
			}
			if b, ok := v.Type().Underlying().(*types.Basic); ok {
				switch {
				case b.Info()&types.IsFloat != 0:
					pass.Reportf(as.Pos(), "float accumulation in map iteration order is not associative (sort the keys first)")
				case b.Info()&types.IsString != 0:
					pass.Reportf(as.Pos(), "string concatenation in map iteration order varies per run (sort the keys first)")
				}
			}
		}
	case token.ASSIGN, token.DEFINE:
		// x = append(x, ...) growing a slice declared outside the loop.
		for i, r := range as.Rhs {
			call, ok := unparen(r).(*ast.CallExpr)
			if !ok || builtinOf(info, call) != "append" || i >= len(as.Lhs) {
				continue
			}
			v := outerVar(as.Lhs[i])
			if v == nil || sortedAfter(pass, rng, stack, v) {
				continue
			}
			pass.Reportf(as.Pos(), "append inside a map range accumulates in map iteration order; sort %s after the loop (or the keys before it)", v.Name())
		}
	}
}

// sortedAfter reports whether v is passed to a sort.* or slices.* call
// in a statement after the range loop, in any enclosing block — the
// collect-then-sort idiom that makes map-order accumulation legal.
func sortedAfter(pass *Pass, rng *ast.RangeStmt, stack []ast.Node, v *types.Var) bool {
	info := pass.TypesInfo
	inner := ast.Node(rng)
	for i := len(stack) - 1; i >= 0; i-- {
		block, ok := stack[i].(*ast.BlockStmt)
		if !ok {
			inner = stack[i]
			continue
		}
		after := false
		for _, st := range block.List {
			if !after {
				if st == inner || containsNode(st, rng) {
					after = true
				}
				continue
			}
			found := false
			ast.Inspect(st, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || found {
					return !found
				}
				fn := calleeOf(info, call)
				if fn == nil || fn.Pkg() == nil {
					return true
				}
				if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
					return true
				}
				for _, arg := range call.Args {
					if id, ok := unparen(arg).(*ast.Ident); ok && info.Uses[id] == v {
						found = true
					}
				}
				return !found
			})
			if found {
				return true
			}
		}
		inner = block
	}
	return false
}

// containsNode reports whether target sits within root.
func containsNode(root, target ast.Node) bool {
	return root.Pos() <= target.Pos() && target.End() <= root.End()
}
