// Package metrics computes the paper's evaluation metrics from fault
// coverage curves. The paper defines, for a mutation-derived test sequence
// and a pseudo-random reference of the same circuit:
//
//   - MFC — Mutation Fault Coverage: stuck-at coverage reached by the
//     validation data,
//   - RFC — Random Fault Coverage: coverage reached by pseudo-random data,
//   - ΔFC% — relative fault-coverage gain at equal sequence length,
//   - ΔL%  — relative length gain to reach the same coverage,
//   - NLFCE — the Non-Linear Fault Coverage Efficiency, ΔFC% · ΔL%.
//
// NLFCE is "non-linear" because late coverage points are exponentially
// harder to reach: weighting the coverage gain by the length gain rewards
// sequences that climb the hard tail of the curve quickly.
package metrics

import "fmt"

// Efficiency is the per-comparison metric bundle of the paper's Table 1.
type Efficiency struct {
	// MFC is the mutation-data fault coverage at LMut, in [0,1].
	MFC float64
	// RFC is the random-data fault coverage at the same length LMut.
	RFC float64
	// DeltaFCPts is (MFC - RFC) in percentage points at equal length.
	DeltaFCPts float64
	// DeltaLPct is the relative length gain: 100 * (LRand - LMut) / LRand,
	// where LRand is the random-sequence length needed to reach MFC.
	DeltaLPct float64
	// NLFCE = DeltaFCPts * DeltaLPct.
	NLFCE float64
	// LMut is the mutation sequence length (patterns or cycles).
	LMut int
	// LRand is the random length that reaches MFC, or the random horizon
	// if it never does (then RandomSaturated is true and DeltaLPct is a
	// lower bound).
	LRand int
	// RandomSaturated reports that the random curve never reached MFC
	// within its horizon.
	RandomSaturated bool
}

func (e Efficiency) String() string {
	sat := ""
	if e.RandomSaturated {
		sat = " (random horizon exhausted)"
	}
	return fmt.Sprintf("MFC %.2f%% RFC %.2f%% ΔFC %.2fpt ΔL %.2f%% NLFCE %+.1f%s",
		100*e.MFC, 100*e.RFC, e.DeltaFCPts, e.DeltaLPct, e.NLFCE, sat)
}

// Compare derives the paper's efficiency metrics from two fault-coverage
// curves: mutCurve from the mutation-derived sequence (its length defines
// LMut) and randCurve from a pseudo-random sequence whose horizon should
// comfortably exceed LMut. Curves are cumulative coverages in [0,1], one
// entry per applied pattern/cycle, as produced by faultsim.Result.Curve.
func Compare(mutCurve, randCurve []float64) Efficiency {
	var e Efficiency
	if len(mutCurve) == 0 || len(randCurve) == 0 {
		return e
	}
	e.LMut = len(mutCurve)
	e.MFC = mutCurve[len(mutCurve)-1]

	// RFC at equal length: the random curve clipped to LMut.
	rfcIdx := min(e.LMut, len(randCurve)) - 1
	e.RFC = randCurve[rfcIdx]
	e.DeltaFCPts = 100 * (e.MFC - e.RFC)

	// Random length needed to reach MFC.
	e.LRand = -1
	for i, c := range randCurve {
		if c >= e.MFC {
			e.LRand = i + 1
			break
		}
	}
	if e.LRand < 0 {
		e.LRand = len(randCurve)
		e.RandomSaturated = true
	}
	if e.LRand > 0 {
		e.DeltaLPct = 100 * float64(e.LRand-e.LMut) / float64(e.LRand)
	}
	e.NLFCE = e.DeltaFCPts * e.DeltaLPct
	return e
}

// CoverageAt returns the curve value after n patterns (0 for n <= 0, the
// final value beyond the end).
func CoverageAt(curve []float64, n int) float64 {
	if len(curve) == 0 || n <= 0 {
		return 0
	}
	if n > len(curve) {
		n = len(curve)
	}
	return curve[n-1]
}

// LengthToReach returns the shortest prefix length of the curve reaching
// target coverage, or -1 if it never does.
func LengthToReach(curve []float64, target float64) int {
	for i, c := range curve {
		if c >= target {
			return i + 1
		}
	}
	return -1
}
