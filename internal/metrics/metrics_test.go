package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestCompareBasic(t *testing.T) {
	// Mutation: 3 patterns reaching 0.9; random reaches 0.6 by pattern 3
	// and 0.9 only at pattern 10.
	mut := []float64{0.5, 0.8, 0.9}
	rnd := []float64{0.2, 0.4, 0.6, 0.65, 0.7, 0.75, 0.8, 0.85, 0.88, 0.9, 0.9, 0.9}
	e := Compare(mut, rnd)
	if !almostEq(e.MFC, 0.9) || !almostEq(e.RFC, 0.6) {
		t.Fatalf("MFC/RFC = %v/%v", e.MFC, e.RFC)
	}
	if !almostEq(e.DeltaFCPts, 30) {
		t.Errorf("ΔFC = %v, want 30", e.DeltaFCPts)
	}
	if e.LMut != 3 || e.LRand != 10 {
		t.Errorf("LMut/LRand = %d/%d", e.LMut, e.LRand)
	}
	if !almostEq(e.DeltaLPct, 70) {
		t.Errorf("ΔL = %v, want 70", e.DeltaLPct)
	}
	if !almostEq(e.NLFCE, 2100) {
		t.Errorf("NLFCE = %v, want 2100", e.NLFCE)
	}
	if e.RandomSaturated {
		t.Error("saturated flag set although random reached MFC")
	}
}

func TestCompareRandomNeverReaches(t *testing.T) {
	mut := []float64{0.7, 0.95}
	rnd := []float64{0.1, 0.2, 0.3, 0.4}
	e := Compare(mut, rnd)
	if !e.RandomSaturated {
		t.Error("saturation not flagged")
	}
	if e.LRand != 4 {
		t.Errorf("LRand = %d, want horizon 4", e.LRand)
	}
	if e.DeltaLPct <= 0 {
		t.Errorf("ΔL = %v, want positive lower bound", e.DeltaLPct)
	}
}

func TestCompareMutationWorseThanRandom(t *testing.T) {
	// A bad "mutation" sequence: NLFCE must come out non-positive.
	mut := []float64{0.1, 0.2}
	rnd := []float64{0.3, 0.5, 0.6}
	e := Compare(mut, rnd)
	if e.DeltaFCPts >= 0 {
		t.Errorf("ΔFC = %v, want negative", e.DeltaFCPts)
	}
	// Random reaches 0.2 at its first pattern: LRand=1 < LMut=2.
	if e.DeltaLPct >= 0 {
		t.Errorf("ΔL = %v, want negative", e.DeltaLPct)
	}
	// Negative × negative is positive: the composite metric is only
	// meaningful when mutation wins at least one axis, which Table 1
	// guards by reporting ΔFC and ΔL alongside.
}

func TestCompareEmpty(t *testing.T) {
	if e := Compare(nil, nil); e.NLFCE != 0 || e.LMut != 0 {
		t.Errorf("empty compare = %+v", e)
	}
}

func TestCoverageAt(t *testing.T) {
	c := []float64{0.1, 0.5, 0.7}
	cases := []struct {
		n    int
		want float64
	}{{0, 0}, {-1, 0}, {1, 0.1}, {2, 0.5}, {3, 0.7}, {99, 0.7}}
	for _, tc := range cases {
		if got := CoverageAt(c, tc.n); !almostEq(got, tc.want) {
			t.Errorf("CoverageAt(%d) = %v, want %v", tc.n, got, tc.want)
		}
	}
}

func TestLengthToReach(t *testing.T) {
	c := []float64{0.1, 0.5, 0.7}
	if got := LengthToReach(c, 0.5); got != 2 {
		t.Errorf("LengthToReach(0.5) = %d", got)
	}
	if got := LengthToReach(c, 0.9); got != -1 {
		t.Errorf("LengthToReach(0.9) = %d", got)
	}
	if got := LengthToReach(c, 0.0); got != 1 {
		t.Errorf("LengthToReach(0) = %d", got)
	}
}

// Property: NLFCE always equals the product of its factors, and LRand is
// minimal (no shorter prefix of the random curve reaches MFC).
func TestPropCompareConsistency(t *testing.T) {
	f := func(mutRaw, rndRaw []uint8) bool {
		if len(mutRaw) == 0 || len(rndRaw) == 0 {
			return true
		}
		// Build monotone curves in [0,1].
		mkCurve := func(raw []uint8) []float64 {
			c := make([]float64, len(raw))
			acc := 0.0
			for i, r := range raw {
				acc += float64(r%16) / 256.0
				if acc > 1 {
					acc = 1
				}
				c[i] = acc
			}
			return c
		}
		mut, rnd := mkCurve(mutRaw), mkCurve(rndRaw)
		e := Compare(mut, rnd)
		if !almostEq(e.NLFCE, e.DeltaFCPts*e.DeltaLPct) {
			return false
		}
		if !e.RandomSaturated {
			if rnd[e.LRand-1] < e.MFC {
				return false
			}
			if e.LRand >= 2 && rnd[e.LRand-2] >= e.MFC {
				return false // not minimal
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
