package mutation

import (
	"strings"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/hdl"
	"repro/internal/sim"
)

const testSrc = `
circuit small {
  input a : bits(4);
  input b : bits(4);
  input sel : bit;
  output o : bits(4);
  output flag : bit;
  reg acc : bits(4);
  const STEP : bits(4) = 4'd3;
  seq {
    if sel == 1 {
      acc = acc + STEP;
    } else {
      acc = a and b;
    }
  }
  comb {
    o = acc;
    flag = acc > 4'd9;
  }
}
`

func parse(t *testing.T, src string) *hdl.Circuit {
	t.Helper()
	c, err := hdl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestGenerateProducesAllOperatorClasses(t *testing.T) {
	c := parse(t, testSrc)
	ms := Generate(c)
	counts := CountByOperator(ms)
	// Every class with an applicable site must be present.
	for _, op := range []Operator{LOR, ROR, AOR, CNR, UOI, SDL, VR, CVR, CR} {
		if counts[op] == 0 {
			t.Errorf("no %s mutants generated; counts = %v", op, counts)
		}
	}
	if counts[SOR] != 0 {
		t.Errorf("SOR mutants generated for a circuit without shifts")
	}
}

func TestGenerateIsDeterministic(t *testing.T) {
	c := parse(t, testSrc)
	a := Generate(c)
	b := Generate(c)
	if len(a) != len(b) {
		t.Fatalf("mutant counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Op != b[i].Op || a[i].Desc != b[i].Desc {
			t.Fatalf("mutant %d differs: %v vs %v", i, a[i].Desc, b[i].Desc)
		}
		if hdl.Format(a[i].Circuit) != hdl.Format(b[i].Circuit) {
			t.Fatalf("mutant %d source differs", i)
		}
	}
}

func TestGenerateDoesNotModifyOriginal(t *testing.T) {
	c := parse(t, testSrc)
	before := hdl.Format(c)
	Generate(c)
	if after := hdl.Format(c); after != before {
		t.Fatalf("original modified:\n%s\nvs\n%s", before, after)
	}
}

func TestEachMutantDiffersFromOriginalByOneChange(t *testing.T) {
	c := parse(t, testSrc)
	orig := strings.Split(hdl.Format(c), "\n")
	for _, m := range Generate(c) {
		mut := strings.Split(hdl.Format(m.Circuit), "\n")
		diffs := 0
		if len(orig) == len(mut) {
			for i := range orig {
				if orig[i] != mut[i] {
					diffs++
				}
			}
			// SDL removes a line, handled below; in-place edits touch 1 line.
			if diffs == 0 {
				t.Errorf("mutant %d (%s %s) is textually identical to original", m.ID, m.Op, m.Desc)
			}
			if diffs > 1 && m.Op != CNR { // CNR swaps two branch bodies
				t.Errorf("mutant %d (%s %s) changed %d lines", m.ID, m.Op, m.Desc, diffs)
			}
		} else if m.Op != SDL && m.Op != CNR {
			t.Errorf("mutant %d (%s) changed line count %d -> %d", m.ID, m.Op, len(orig), len(mut))
		}
	}
}

func TestMutantsAreSimulable(t *testing.T) {
	c := parse(t, testSrc)
	in := sim.Vector{bitvec.New(5, 4), bitvec.New(3, 4), bitvec.New(1, 1)}
	for _, m := range Generate(c) {
		s, err := sim.New(m.Circuit)
		if err != nil {
			t.Fatalf("mutant %d (%s): simulator: %v", m.ID, m.Op, err)
		}
		if _, err := s.Step(in); err != nil {
			t.Fatalf("mutant %d (%s): step: %v", m.ID, m.Op, err)
		}
	}
}

func TestSomeMutantIsBehaviorallyDifferent(t *testing.T) {
	c := parse(t, testSrc)
	ref, _ := sim.New(c)
	seq := sim.Sequence{
		{bitvec.New(5, 4), bitvec.New(3, 4), bitvec.New(0, 1)},
		{bitvec.New(9, 4), bitvec.New(6, 4), bitvec.New(1, 1)},
		{bitvec.New(1, 4), bitvec.New(2, 4), bitvec.New(1, 1)},
	}
	want, err := ref.Run(seq)
	if err != nil {
		t.Fatal(err)
	}
	killed := 0
	ms := Generate(c)
	for _, m := range ms {
		s, err := sim.New(m.Circuit)
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.Run(seq)
		if err != nil {
			t.Fatal(err)
		}
		for cyc := range got {
			for j := range got[cyc] {
				if !got[cyc][j].Equal(want[cyc][j]) {
					killed++
					cyc = len(got)
					break
				}
			}
		}
	}
	if killed == 0 {
		t.Fatal("no mutant distinguishable by a 3-cycle sequence; engine broken")
	}
	t.Logf("%d/%d mutants killed by smoke sequence", killed, len(ms))
}

func TestOperatorFiltering(t *testing.T) {
	c := parse(t, testSrc)
	ms := Generate(c, CR)
	for _, m := range ms {
		if m.Op != CR {
			t.Fatalf("filtered generation returned %s mutant", m.Op)
		}
	}
	if len(ms) == 0 {
		t.Fatal("no CR mutants")
	}
}

func TestCRCoversConstDeclAndLiterals(t *testing.T) {
	c := parse(t, testSrc)
	ms := Generate(c, CR)
	declHits, litHits := 0, 0
	for _, m := range ms {
		if strings.Contains(m.Desc, "const STEP") {
			declHits++
		} else {
			litHits++
		}
	}
	if declHits == 0 {
		t.Error("CR never mutated the const declaration")
	}
	if litHits == 0 {
		t.Error("CR never mutated an inline literal")
	}
}

func TestVRRespectsWidths(t *testing.T) {
	c := parse(t, testSrc)
	for _, m := range Generate(c, VR) {
		if err := hdl.Check(m.Circuit, hdl.Relaxed); err != nil {
			t.Fatalf("VR mutant fails checking: %v (%s)", err, m.Desc)
		}
	}
}

func TestCNRSwapsBranches(t *testing.T) {
	c := parse(t, testSrc)
	ms := Generate(c, CNR)
	if len(ms) != 1 {
		t.Fatalf("want 1 CNR mutant for 1 if, got %d", len(ms))
	}
	// In the mutant, the then-branch must contain the original else body.
	var mutIf *hdl.If
	hdl.Walk(ms[0].Circuit, hdl.Visitor{Stmt: func(s hdl.Stmt) {
		if f, ok := s.(*hdl.If); ok {
			mutIf = f
		}
	}})
	if mutIf == nil {
		t.Fatal("no if in CNR mutant")
	}
	a := mutIf.Then[0].(*hdl.Assign)
	if got := hdl.FormatExpr(a.RHS); !strings.Contains(got, "and") {
		t.Errorf("CNR then-branch RHS = %s, want the original else body (a and b)", got)
	}
}

func TestSDLDeletesOneStatement(t *testing.T) {
	c := parse(t, testSrc)
	countAssigns := func(x *hdl.Circuit) int {
		n := 0
		hdl.Walk(x, hdl.Visitor{Stmt: func(s hdl.Stmt) {
			if _, ok := s.(*hdl.Assign); ok {
				n++
			}
		}})
		return n
	}
	orig := countAssigns(c)
	ms := Generate(c, SDL)
	if len(ms) != orig {
		t.Fatalf("want %d SDL mutants (one per assignment), got %d", orig, len(ms))
	}
	for _, m := range ms {
		if got := countAssigns(m.Circuit); got != orig-1 {
			t.Errorf("SDL mutant has %d assigns, want %d", got, orig-1)
		}
	}
}

func TestParseOperator(t *testing.T) {
	for _, s := range []string{"cr", "CR", "lor", "VR"} {
		if _, err := ParseOperator(s); err != nil {
			t.Errorf("ParseOperator(%q): %v", s, err)
		}
	}
	if _, err := ParseOperator("zzz"); err == nil {
		t.Error("bad operator accepted")
	}
}

func TestPaperOperatorsSubsetOfAll(t *testing.T) {
	all := make(map[Operator]bool)
	for _, op := range AllOperators() {
		all[op] = true
	}
	if len(all) != 10 {
		t.Fatalf("expected exactly ten operators, got %d", len(all))
	}
	for _, op := range PaperOperators() {
		if !all[op] {
			t.Errorf("paper operator %s not in the full set", op)
		}
	}
}

func TestByOperatorPartition(t *testing.T) {
	c := parse(t, testSrc)
	ms := Generate(c)
	parts := ByOperator(ms)
	total := 0
	for _, part := range parts {
		total += len(part)
	}
	if total != len(ms) {
		t.Errorf("partition lost mutants: %d vs %d", total, len(ms))
	}
}
