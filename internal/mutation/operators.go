// Package mutation implements mutation analysis for MHDL circuits: the ten
// mutation operators (a reconstruction of the VHDL operator set of
// Al-Hayek & Robach, JETTA 1999, which the paper builds on), deterministic
// mutant enumeration, and mutant construction.
//
// A mutant is a clone of the original circuit with exactly one small,
// syntactically valid modification. Enumeration is deterministic: the same
// circuit always yields the same mutant list in the same order, which makes
// sampling experiments reproducible.
package mutation

import "fmt"

// Operator identifies a mutation operator.
type Operator string

// The ten mutation operators. LOR, VR, CVR and CR are the four the paper's
// evaluation tables report; the remaining six complete the set of ten that
// the paper's reference [3] defines for VHDL.
const (
	LOR Operator = "LOR" // logical operator replacement: and/or/xor/nand/nor/xnor
	ROR Operator = "ROR" // relational operator replacement: == != < <= > >=
	AOR Operator = "AOR" // arithmetic operator replacement: + - *
	SOR Operator = "SOR" // shift operator replacement: << >>
	CNR Operator = "CNR" // condition negation (if branch swap)
	UOI Operator = "UOI" // unary operator insertion: wrap a signal read in not
	SDL Operator = "SDL" // statement deletion: remove one assignment
	VR  Operator = "VR"  // variable replacement: signal read -> same-width signal
	CVR Operator = "CVR" // constant-for-variable replacement: signal read -> constant
	CR  Operator = "CR"  // constant replacement: perturb a literal or named constant
)

// AllOperators returns the full operator set in canonical order.
func AllOperators() []Operator {
	return []Operator{LOR, ROR, AOR, SOR, CNR, UOI, SDL, VR, CVR, CR}
}

// PaperOperators returns the four operators whose efficiency the paper's
// Table 1 reports, in the paper's increasing-efficiency order.
func PaperOperators() []Operator { return []Operator{LOR, VR, CVR, CR} }

// Valid reports whether op is one of the ten defined operators.
func (op Operator) Valid() bool {
	switch op {
	case LOR, ROR, AOR, SOR, CNR, UOI, SDL, VR, CVR, CR:
		return true
	}
	return false
}

// ParseOperator converts a string such as "cvr" to an Operator.
func ParseOperator(s string) (Operator, error) {
	for _, op := range AllOperators() {
		if string(op) == s || string(op) == upper(s) {
			return op, nil
		}
	}
	return "", fmt.Errorf("mutation: unknown operator %q", s)
}

func upper(s string) string {
	b := []byte(s)
	for i, c := range b {
		if 'a' <= c && c <= 'z' {
			b[i] = c - 'a' + 'A'
		}
	}
	return string(b)
}
