package mutation

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/hdl"
	"repro/internal/par"
)

// Mutant is one faulty version of a circuit.
type Mutant struct {
	ID      int          // position in the deterministic enumeration
	Op      Operator     // operator that produced it
	Desc    string       // human-readable site/change description
	Circuit *hdl.Circuit // mutated clone, checked in relaxed mode
}

// siteKind enumerates the mechanical change a site descriptor encodes.
type siteKind int

const (
	kindBinOp      siteKind = iota // replace a Binary's operator
	kindSwapIf                     // swap an If's branches (CNR)
	kindWrapNot                    // wrap a Ref in not (UOI)
	kindDeleteStmt                 // delete an Assign (SDL)
	kindRefToRef                   // replace a Ref's target (VR)
	kindRefToLit                   // replace a Ref with a literal (CVR)
	kindLitValue                   // change a Lit's value (CR)
	kindConstDecl                  // change a const declaration's value (CR)
)

// site is one (location, variant) pair found by enumeration.
type site struct {
	op       Operator
	kind     siteKind
	stmtOrd  int // matching ordinal in the deterministic statement walk
	exprOrd  int // matching ordinal in the deterministic expression walk
	declIdx  int // for kindConstDecl
	newBinOp hdl.BinOp
	newName  string
	newVal   bitvec.BV
	desc     string
}

// Generate enumerates and constructs all mutants of c for the given
// operators (all ten if none are given). Mutants that fail the relaxed
// semantic re-check (stillborn) are discarded. The input circuit must have
// passed hdl.Check; it is never modified.
//
// Construction (clone, apply, re-check) is independent per site and runs
// on a worker pool; enumeration order, surviving set and mutant IDs are
// identical to a serial build.
func Generate(c *hdl.Circuit, ops ...Operator) []*Mutant {
	if len(ops) == 0 {
		ops = AllOperators()
	}
	enabled := make(map[Operator]bool, len(ops))
	for _, op := range ops {
		if !op.Valid() {
			panic(fmt.Sprintf("mutation: invalid operator %q", op))
		}
		enabled[op] = true
	}
	sites := enumerate(c, enabled)
	built := make([]*hdl.Circuit, len(sites))
	par.Indexed(len(sites), 0, func(_, i int) {
		built[i] = buildMutant(c, sites[i])
	})
	mutants := make([]*Mutant, 0, len(sites))
	for i, mc := range built {
		if mc == nil {
			continue
		}
		mutants = append(mutants, &Mutant{
			ID:      len(mutants),
			Op:      sites[i].op,
			Desc:    sites[i].desc,
			Circuit: mc,
		})
	}
	return mutants
}

// buildMutant applies one site to a fresh clone and re-checks it,
// returning nil for stillborn mutants (syntactically produced but
// semantically dead).
func buildMutant(c *hdl.Circuit, st site) *hdl.Circuit {
	mc := apply(c, st)
	if mc == nil {
		return nil
	}
	if err := hdl.Check(mc, hdl.Relaxed); err != nil {
		return nil
	}
	return mc
}

// CountByOperator tallies a mutant population per operator.
func CountByOperator(ms []*Mutant) map[Operator]int {
	out := make(map[Operator]int)
	for _, m := range ms {
		out[m.Op]++
	}
	return out
}

// ByOperator partitions a mutant population per operator, preserving
// enumeration order within each class.
func ByOperator(ms []*Mutant) map[Operator][]*Mutant {
	out := make(map[Operator][]*Mutant)
	for _, m := range ms {
		out[m.Op] = append(out[m.Op], m)
	}
	return out
}

// --- enumeration -------------------------------------------------------------

// logicalAlts lists the LOR substitution class.
var logicalAlts = []hdl.BinOp{hdl.OpAnd, hdl.OpOr, hdl.OpXor, hdl.OpNand, hdl.OpNor, hdl.OpXnor}

// relationalAlts lists the ROR substitution class.
var relationalAlts = []hdl.BinOp{hdl.OpEq, hdl.OpNe, hdl.OpLt, hdl.OpLe, hdl.OpGt, hdl.OpGe}

// arithmeticAlts lists the AOR substitution class.
var arithmeticAlts = []hdl.BinOp{hdl.OpAdd, hdl.OpSub, hdl.OpMul}

func enumerate(c *hdl.Circuit, enabled map[Operator]bool) []site {
	var sites []site
	varWidths := variableCandidates(c)

	w := &mutWalker{
		onStmt: func(s hdl.Stmt, ord int) stmtAction {
			switch s := s.(type) {
			case *hdl.Assign:
				if enabled[SDL] {
					sites = append(sites, site{
						op: SDL, kind: kindDeleteStmt, stmtOrd: ord, exprOrd: -1,
						desc: fmt.Sprintf("%s: delete assignment to %s", s.Pos, s.LHS.Name),
					})
				}
			case *hdl.If:
				if enabled[CNR] {
					sites = append(sites, site{
						op: CNR, kind: kindSwapIf, stmtOrd: ord, exprOrd: -1,
						desc: fmt.Sprintf("%s: negate condition %s", s.Pos, hdl.FormatExpr(s.Cond)),
					})
				}
			}
			return keepStmt
		},
		onExpr: func(ep *hdl.Expr, ord int, inLabel bool) {
			e := *ep
			switch e := e.(type) {
			case *hdl.Binary:
				var op Operator
				var alts []hdl.BinOp
				switch {
				case e.Op.IsLogical():
					op, alts = LOR, logicalAlts
				case e.Op.IsRelational():
					op, alts = ROR, relationalAlts
				case e.Op.IsArithmetic():
					op, alts = AOR, arithmeticAlts
				case e.Op.IsShift():
					op = SOR
					if e.Op == hdl.OpShl {
						alts = []hdl.BinOp{hdl.OpShr}
					} else {
						alts = []hdl.BinOp{hdl.OpShl}
					}
				default:
					return
				}
				if !enabled[op] {
					return
				}
				for _, alt := range alts {
					if alt == e.Op {
						continue
					}
					sites = append(sites, site{
						op: op, kind: kindBinOp, stmtOrd: -1, exprOrd: ord, newBinOp: alt,
						desc: fmt.Sprintf("%s: %s -> %s", e.Pos, e.Op, alt),
					})
				}
			case *hdl.Ref:
				if inLabel {
					return // labels must stay constant
				}
				w := c.SignalWidth(e.Name)
				if w == 0 {
					return // loop variable
				}
				isConst := c.ConstByName(e.Name) != nil
				if isConst {
					return // const reads are CR territory (via declaration sites)
				}
				if enabled[UOI] {
					sites = append(sites, site{
						op: UOI, kind: kindWrapNot, stmtOrd: -1, exprOrd: ord,
						desc: fmt.Sprintf("%s: %s -> not %s", e.Pos, e.Name, e.Name),
					})
				}
				if enabled[VR] {
					for _, cand := range varWidths[w] {
						if cand == e.Name {
							continue
						}
						sites = append(sites, site{
							op: VR, kind: kindRefToRef, stmtOrd: -1, exprOrd: ord, newName: cand,
							desc: fmt.Sprintf("%s: %s -> %s", e.Pos, e.Name, cand),
						})
					}
				}
				if enabled[CVR] {
					for _, v := range cvrVariants(c, w) {
						sites = append(sites, site{
							op: CVR, kind: kindRefToLit, stmtOrd: -1, exprOrd: ord, newVal: v,
							desc: fmt.Sprintf("%s: %s -> %s", e.Pos, e.Name, v),
						})
					}
				}
			case *hdl.Lit:
				if !enabled[CR] || e.Width == 0 {
					return
				}
				for _, v := range constantVariants(e.Width, &e.Val) {
					sites = append(sites, site{
						op: CR, kind: kindLitValue, stmtOrd: -1, exprOrd: ord, newVal: v,
						desc: fmt.Sprintf("%s: %s -> %s", e.Pos, e.Val, v),
					})
				}
			}
		},
	}
	w.walk(c)

	if enabled[CR] {
		for i, k := range c.Consts {
			for _, v := range constantVariants(k.Width, &k.Value) {
				sites = append(sites, site{
					op: CR, kind: kindConstDecl, stmtOrd: -1, exprOrd: -1, declIdx: i, newVal: v,
					desc: fmt.Sprintf("%s: const %s %s -> %s", k.Pos, k.Name, k.Value, v),
				})
			}
		}
	}
	return sites
}

// variableCandidates maps width -> names of replaceable signals (inputs,
// registers and wires) for the VR operator.
func variableCandidates(c *hdl.Circuit) map[int][]string {
	out := make(map[int][]string)
	for _, p := range c.Ports {
		if p.Dir == hdl.Input {
			out[p.Width] = append(out[p.Width], p.Name)
		}
	}
	for _, r := range c.Regs {
		out[r.Width] = append(out[r.Width], r.Name)
	}
	for _, w := range c.Wires {
		out[w.Width] = append(out[w.Width], w.Name)
	}
	return out
}

// constantVariants returns the CR constant set for a literal or constant
// declaration of the given width: zero, all-ones, one, the bitwise
// complement, and value±1 — excluding the original value. For widths up to
// exhaustiveCRWidth every other value of the domain is enumerated instead,
// which matches the domain-exhaustive constant mutation of VHDL mutation
// tools and makes CR classes value-rich.
const exhaustiveCRWidth = 4

func constantVariants(width int, orig *bitvec.BV) []bitvec.BV {
	var cands []bitvec.BV
	if width <= exhaustiveCRWidth {
		for v := uint64(0); v < 1<<uint(width); v++ {
			cands = append(cands, bitvec.New(v, width))
		}
	} else {
		cands = append(cands, bitvec.Zero(width), bitvec.Ones(width), bitvec.New(1, width))
		if orig != nil {
			cands = append(cands,
				orig.Add(bitvec.New(1, width)),
				orig.Sub(bitvec.New(1, width)),
				orig.Not())
		}
	}
	return dedupExcluding(cands, orig)
}

// cvrVariants returns the CVR constant set for a variable of the given
// width: the domain corners (zero, one, all-ones) plus the value of every
// declared constant of matching width — the "constants of the description"
// a VHDL CVR operator substitutes.
func cvrVariants(c *hdl.Circuit, width int) []bitvec.BV {
	cands := []bitvec.BV{bitvec.Zero(width), bitvec.Ones(width), bitvec.New(1, width)}
	for _, k := range c.Consts {
		if k.Width == width {
			cands = append(cands, k.Value)
		}
	}
	return dedupExcluding(cands, nil)
}

func dedupExcluding(cands []bitvec.BV, orig *bitvec.BV) []bitvec.BV {
	var out []bitvec.BV
	seen := make(map[uint64]bool)
	for _, v := range cands {
		if orig != nil && v.Equal(*orig) {
			continue
		}
		if seen[v.Uint()] {
			continue
		}
		seen[v.Uint()] = true
		out = append(out, v)
	}
	return out
}

// --- application -------------------------------------------------------------

// apply clones c and performs the change st describes. It returns nil if
// the site was not found (which would indicate a walker mismatch and is
// asserted against in tests).
func apply(c *hdl.Circuit, st site) *hdl.Circuit {
	mc := c.Clone()
	if st.kind == kindConstDecl {
		mc.Consts[st.declIdx].Value = st.newVal
		return mc
	}
	done := false
	w := &mutWalker{
		onStmt: func(s hdl.Stmt, ord int) stmtAction {
			if done || ord != st.stmtOrd {
				return keepStmt
			}
			switch st.kind {
			case kindDeleteStmt:
				done = true
				return deleteStmt
			case kindSwapIf:
				ifs := s.(*hdl.If)
				ifs.Then, ifs.Else = ifs.Else, ifs.Then
				done = true
			}
			return keepStmt
		},
		onExpr: func(ep *hdl.Expr, ord int, inLabel bool) {
			if done || ord != st.exprOrd {
				return
			}
			switch st.kind {
			case kindBinOp:
				(*ep).(*hdl.Binary).Op = st.newBinOp
			case kindWrapNot:
				ref := (*ep).(*hdl.Ref)
				*ep = &hdl.Unary{Op: hdl.OpNot, X: ref, Width: ref.Width, Pos: ref.Pos}
			case kindRefToRef:
				ref := (*ep).(*hdl.Ref)
				ref.Name = st.newName
			case kindRefToLit:
				ref := (*ep).(*hdl.Ref)
				*ep = &hdl.Lit{
					Val: st.newVal, Raw: st.newVal.Uint(), Sized: true,
					Width: st.newVal.Width(), Pos: ref.Pos,
				}
			case kindLitValue:
				lit := (*ep).(*hdl.Lit)
				lit.Val = st.newVal
				lit.Raw = st.newVal.Uint()
				lit.Sized = true
			}
			done = true
		},
	}
	w.walk(mc)
	if !done {
		return nil
	}
	return mc
}

// --- deterministic walker ----------------------------------------------------

// stmtAction tells the walker what to do with the statement just visited.
type stmtAction int

const (
	keepStmt stmtAction = iota
	deleteStmt
)

// mutWalker visits statements and expressions in exactly the order of
// hdl.Walk, assigning each a stable ordinal, and additionally exposes
// pointer access so visitors can rewrite expressions and delete statements
// in place.
type mutWalker struct {
	stmtN  int
	exprN  int
	onStmt func(s hdl.Stmt, ord int) stmtAction
	onExpr func(ep *hdl.Expr, ord int, inLabel bool)
}

func (w *mutWalker) walk(c *hdl.Circuit) {
	for _, b := range c.Blocks {
		b.Stmts = w.stmts(b.Stmts)
	}
}

func (w *mutWalker) stmts(ss []hdl.Stmt) []hdl.Stmt {
	out := ss[:0]
	for _, s := range ss {
		ord := w.stmtN
		w.stmtN++
		act := keepStmt
		if w.onStmt != nil {
			act = w.onStmt(s, ord)
		}
		w.children(s)
		if act != deleteStmt {
			out = append(out, s)
		}
	}
	return out
}

func (w *mutWalker) children(s hdl.Stmt) {
	switch s := s.(type) {
	case *hdl.Assign:
		if s.LHS.Index != nil {
			w.expr(&s.LHS.Index, false)
		}
		w.expr(&s.RHS, false)
	case *hdl.If:
		w.expr(&s.Cond, false)
		s.Then = w.stmts(s.Then)
		s.Else = w.stmts(s.Else)
	case *hdl.Case:
		w.expr(&s.Subject, false)
		for _, arm := range s.Arms {
			for i := range arm.Labels {
				w.expr(&arm.Labels[i], true)
			}
			arm.Body = w.stmts(arm.Body)
		}
		s.Default = w.stmts(s.Default)
	case *hdl.For:
		s.Body = w.stmts(s.Body)
	}
}

func (w *mutWalker) expr(ep *hdl.Expr, inLabel bool) {
	ord := w.exprN
	w.exprN++
	if w.onExpr != nil {
		w.onExpr(ep, ord, inLabel)
	}
	switch e := (*ep).(type) {
	case *hdl.Index:
		w.expr(&e.X, inLabel)
		w.expr(&e.I, inLabel)
	case *hdl.SliceExpr:
		w.expr(&e.X, inLabel)
	case *hdl.Unary:
		w.expr(&e.X, inLabel)
	case *hdl.Binary:
		w.expr(&e.X, inLabel)
		w.expr(&e.Y, inLabel)
	}
}
