// Package lane defines the multi-word lane vector both compiled engines
// execute over. A lane is one independent simulation context (one fault
// machine, one packed pattern); a lane vector is W consecutive 64-bit
// words, so one pass over the instruction stream carries W×64 lanes.
//
// The word count is a compile-time constant per instantiation: engines are
// generic over Word, and the supported widths {1, 4, 8} each stencil their
// own exec loop with constant-length inner loops the compiler can unroll.
// W=1 reproduces the original single-word engines bit for bit; W=4/8
// amortize the per-gate instruction decode over 256/512 lanes, which is
// the single-core multiplier the schedulers in faultsim and mutscore are
// built around.
//
// Masks at the scheduler level (which lanes are active, which lanes hold a
// fault) are lane vectors too, so the same FirstN/Bit helpers describe
// ragged tails at every width.
package lane

import "fmt"

// Word is a fixed-width lane vector: W 64-bit words = W×64 lanes. The
// three widths are the supported LaneWords settings; every generic engine
// instantiates once per width.
type Word interface {
	[1]uint64 | [4]uint64 | [8]uint64
}

// Convenient names for the three instantiations.
type (
	W1 = [1]uint64
	W4 = [4]uint64
	W8 = [8]uint64
)

// DefaultWords is the generic word count selected by a zero LaneWords
// knob when the caller has no better topology signal (mutant scoring
// batches, say). The fault simulator overrides the zero value per
// circuit topology — see faultsim.Config.LaneWords and the
// engine-ablation benchmarks.
const DefaultWords = 4

// Widths lists the supported word counts, for sweeps and tests.
func Widths() []int { return []int{1, 4, 8} }

// Resolve validates a LaneWords knob: 0 selects DefaultWords, and only
// the supported widths are accepted (the engines are stenciled per width,
// so arbitrary counts cannot be dispatched).
func Resolve(laneWords int) (int, error) {
	switch laneWords {
	case 0:
		return DefaultWords, nil
	case 1, 4, 8:
		return laneWords, nil
	}
	return 0, fmt.Errorf("lane: unsupported LaneWords %d (want 0, 1, 4 or 8)", laneWords)
}

// Count returns the number of lanes a Word carries (W×64).
func Count[W Word]() int {
	var w W
	return len(w) * 64
}

// Broadcast replicates one 64-bit word across the whole vector.
func Broadcast[W Word](x uint64) W {
	var w W
	for k := 0; k < len(w); k++ {
		w[k] = x
	}
	return w
}

// Bit returns the mask selecting a single lane.
func Bit[W Word](lane int) W {
	var w W
	w[lane>>6] = 1 << uint(lane&63)
	return w
}

// FirstN returns the mask selecting the first n lanes (the ragged-tail
// mask: a batch of n < W×64 contexts leaves the remaining lanes masked
// off everywhere they are read).
func FirstN[W Word](n int) W {
	var w W
	for k := 0; k < len(w); k++ {
		switch {
		case n >= (k+1)*64:
			w[k] = ^uint64(0)
		case n > k*64:
			w[k] = uint64(1)<<uint(n-k*64) - 1
		}
	}
	return w
}

// None reports whether no lane is set.
func None[W Word](w W) bool {
	var acc uint64
	for k := 0; k < len(w); k++ {
		acc |= w[k]
	}
	return acc == 0
}

// Merge overwrites dst's masked lanes with val: dst&^mask | val. val must
// already be confined to mask (the engines construct it that way).
func Merge[W Word](dst, mask, val W) W {
	for k := 0; k < len(dst); k++ {
		dst[k] = dst[k]&^mask[k] | val[k]
	}
	return dst
}

// Or returns the lane-wise union of two masks.
func Or[W Word](a, b W) W {
	for k := 0; k < len(a); k++ {
		a[k] |= b[k]
	}
	return a
}

// AndNot clears b's lanes out of a: a &^ b. The pair-scoped fault
// clearing in netlist uses it to retire one lane pair's injections
// without touching the batches armed in the other lanes.
func AndNot[W Word](a, b W) W {
	for k := 0; k < len(a); k++ {
		a[k] &^= b[k]
	}
	return a
}
