package lane

import (
	"math/bits"
	"testing"
)

func TestResolve(t *testing.T) {
	cases := []struct {
		in, want int
		err      bool
	}{
		{0, DefaultWords, false},
		{1, 1, false},
		{4, 4, false},
		{8, 8, false},
		{2, 0, true},
		{3, 0, true},
		{-1, 0, true},
		{64, 0, true},
	}
	for _, c := range cases {
		got, err := Resolve(c.in)
		if (err != nil) != c.err {
			t.Errorf("Resolve(%d) error = %v, want error %v", c.in, err, c.err)
		}
		if err == nil && got != c.want {
			t.Errorf("Resolve(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestCount(t *testing.T) {
	if got := Count[W1](); got != 64 {
		t.Errorf("Count[W1] = %d", got)
	}
	if got := Count[W4](); got != 256 {
		t.Errorf("Count[W4] = %d", got)
	}
	if got := Count[W8](); got != 512 {
		t.Errorf("Count[W8] = %d", got)
	}
}

// popcount sums the set lanes of a mask.
func popcount[W Word](w W) int {
	n := 0
	for k := 0; k < len(w); k++ {
		n += bits.OnesCount64(w[k])
	}
	return n
}

func testFirstN[W Word](t *testing.T) {
	t.Helper()
	L := Count[W]()
	for _, n := range []int{0, 1, 63, 64, 65, L - 1, L} {
		if n > L {
			continue
		}
		m := FirstN[W](n)
		if got := popcount(m); got != n {
			t.Errorf("FirstN[%d lanes](%d): %d lanes set", L, n, got)
		}
		// The set lanes must be exactly 0..n-1.
		for l := 0; l < L; l++ {
			set := m[l>>6]>>uint(l&63)&1 == 1
			if set != (l < n) {
				t.Errorf("FirstN[%d lanes](%d): lane %d set=%v", L, n, l, set)
			}
		}
	}
	if got := FirstN[W](L + 99); popcount(got) != L {
		t.Errorf("FirstN beyond capacity: %d lanes set, want %d", popcount(got), L)
	}
}

func TestFirstN(t *testing.T) {
	testFirstN[W1](t)
	testFirstN[W4](t)
	testFirstN[W8](t)
}

func testBit[W Word](t *testing.T) {
	t.Helper()
	L := Count[W]()
	for _, l := range []int{0, 1, 63, 64 % L, L - 1} {
		b := Bit[W](l)
		if popcount(b) != 1 {
			t.Fatalf("Bit(%d): %d lanes set", l, popcount(b))
		}
		if b[l>>6]>>uint(l&63)&1 != 1 {
			t.Fatalf("Bit(%d): wrong lane", l)
		}
	}
}

func TestBit(t *testing.T) {
	testBit[W1](t)
	testBit[W4](t)
	testBit[W8](t)
}

func TestMaskOps(t *testing.T) {
	a := FirstN[W4](100)
	b := Bit[W4](200)
	u := Or(a, b)
	if popcount(u) != 101 {
		t.Errorf("Or: %d lanes", popcount(u))
	}
	if u[200>>6]>>(200&63)&1 != 1 {
		t.Error("Or lost lane 200")
	}
	if None(u) {
		t.Error("None on a set mask")
	}
	var zero W4
	if !None(zero) {
		t.Error("None on zero mask")
	}

	dst := Broadcast[W4](0xFFFF)
	mask := Bit[W4](4)
	merged := Merge(dst, mask, zero) // clear lane 4
	if merged[0] != 0xFFFF&^(uint64(1)<<4) {
		t.Errorf("Merge: word0 = %x", merged[0])
	}
	if merged[1] != 0xFFFF {
		t.Errorf("Merge disturbed word1: %x", merged[1])
	}
}

func TestBroadcast(t *testing.T) {
	w := Broadcast[W8](0xDEAD)
	for k := range w {
		if w[k] != 0xDEAD {
			t.Fatalf("word %d = %x", k, w[k])
		}
	}
}
