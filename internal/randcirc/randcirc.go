// Package randcirc generates random, semantically valid MHDL circuits.
// It is the repository's fuzzing substrate: every generated circuit must
// pass strict checking, print/re-parse identically, synthesize, and — the
// load-bearing invariant — behave bit-identically in the behavioral
// simulator and the synthesized netlist. The cross-validation tests in
// this package and in internal/circuits together pin the simulator and
// synthesizer against each other from two directions (hand-written
// benchmarks and generated corner cases).
//
// Generation is width-directed: expressions are built to satisfy a
// demanded width, so the checker accepts every circuit by construction.
// Combinational blocks assign all their targets unconditionally first,
// which satisfies definite assignment, then layer conditional logic on
// top.
package randcirc

import (
	"fmt"
	"math/rand"

	"repro/internal/bitvec"
	"repro/internal/hdl"
)

// Config bounds the generated circuit. Zero values select defaults.
type Config struct {
	Seed       int64
	Inputs     int // number of input ports (default 3)
	Outputs    int // number of output ports (default 2)
	Regs       int // number of registers (default 2; 0 for combinational)
	Wires      int // number of wires (default 2)
	Consts     int // number of named constants (default 2)
	MaxWidth   int // widest signal (default 6)
	MaxDepth   int // expression depth (default 4)
	ExtraStmts int // conditional statements layered per block (default 4)
}

// Negative counts mean "none"; zero means "default".
func defCount(v, def int) int {
	if v < 0 {
		return 0
	}
	if v == 0 {
		return def
	}
	return v
}

func (c Config) withDefaults() Config {
	if c.Inputs <= 0 {
		c.Inputs = 3
	}
	if c.Outputs <= 0 {
		c.Outputs = 2
	}
	c.Regs = defCount(c.Regs, 2)
	c.Wires = defCount(c.Wires, 2)
	c.Consts = defCount(c.Consts, 2)
	if c.MaxWidth <= 0 {
		c.MaxWidth = 6
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 4
	}
	c.ExtraStmts = defCount(c.ExtraStmts, 4)
	return c
}

type gen struct {
	rng *rand.Rand
	cfg Config
	c   *hdl.Circuit
	// readable maps width -> names currently legal to read (inputs, regs,
	// consts, and wires already definitely assigned).
	readable map[int][]string
	widths   map[string]int
	// seqOutputs lists output ports left for the seq block to drive.
	seqOutputs []string
}

// Generate builds a random circuit and verifies it against the strict
// checker before returning. It panics only on internal generator bugs
// (the returned circuit is always valid).
func Generate(cfg Config) (*hdl.Circuit, error) {
	cfg = cfg.withDefaults()
	g := &gen{
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		cfg:      cfg,
		c:        &hdl.Circuit{Name: fmt.Sprintf("rand%d", cfg.Seed)},
		readable: make(map[int][]string),
		widths:   make(map[string]int),
	}
	g.declare()
	g.buildComb()
	if cfg.Regs > 0 {
		g.buildSeq()
	}
	if err := hdl.Check(g.c, hdl.Strict); err != nil {
		return nil, fmt.Errorf("randcirc: generated circuit rejected: %w", err)
	}
	return g.c, nil
}

func (g *gen) width() int { return 1 + g.rng.Intn(g.cfg.MaxWidth) }

func (g *gen) addReadable(name string, w int) {
	g.readable[w] = append(g.readable[w], name)
	g.widths[name] = w
}

func (g *gen) declare() {
	for i := 0; i < g.cfg.Inputs; i++ {
		w := g.width()
		name := fmt.Sprintf("in%d", i)
		g.c.Ports = append(g.c.Ports, &hdl.Port{Name: name, Width: w, Dir: hdl.Input})
		g.addReadable(name, w)
	}
	for i := 0; i < g.cfg.Outputs; i++ {
		w := g.width()
		name := fmt.Sprintf("out%d", i)
		g.c.Ports = append(g.c.Ports, &hdl.Port{Name: name, Width: w, Dir: hdl.Output})
		g.widths[name] = w
	}
	for i := 0; i < g.cfg.Regs; i++ {
		w := g.width()
		name := fmt.Sprintf("r%d", i)
		init := bitvec.New(g.rng.Uint64(), w)
		g.c.Regs = append(g.c.Regs, &hdl.Reg{Name: name, Width: w, Init: init})
		g.addReadable(name, w)
	}
	for i := 0; i < g.cfg.Consts; i++ {
		w := g.width()
		name := fmt.Sprintf("K%d", i)
		g.c.Consts = append(g.c.Consts, &hdl.Const{
			Name: name, Width: w, Value: bitvec.New(g.rng.Uint64(), w),
		})
		g.addReadable(name, w)
	}
	for i := 0; i < g.cfg.Wires; i++ {
		w := g.width()
		name := fmt.Sprintf("w%d", i)
		g.c.Wires = append(g.c.Wires, &hdl.Wire{Name: name, Width: w})
		// Width known now; the name becomes *readable* only once buildComb
		// has emitted its unconditional assignment.
		g.widths[name] = w
	}
}

// lit builds a sized literal of width w.
func (g *gen) lit(w int) hdl.Expr {
	v := bitvec.New(g.rng.Uint64(), w)
	return &hdl.Lit{Val: v, Raw: v.Uint(), Sized: true, Width: w}
}

// expr builds an expression of exactly width w with the given depth
// budget.
func (g *gen) expr(w, depth int) hdl.Expr {
	if depth <= 0 {
		return g.leaf(w)
	}
	// Weighted choice among constructors that can hit width w.
	switch g.rng.Intn(10) {
	case 0, 1:
		return g.leaf(w)
	case 2: // unary not/neg
		op := hdl.OpNot
		if g.rng.Intn(2) == 0 {
			op = hdl.OpNeg
		}
		return &hdl.Unary{Op: op, X: g.expr(w, depth-1), Width: w}
	case 3: // logical binary
		ops := []hdl.BinOp{hdl.OpAnd, hdl.OpOr, hdl.OpXor, hdl.OpNand, hdl.OpNor, hdl.OpXnor}
		return &hdl.Binary{Op: ops[g.rng.Intn(len(ops))], X: g.expr(w, depth-1), Y: g.expr(w, depth-1), Width: w}
	case 4: // arithmetic binary
		ops := []hdl.BinOp{hdl.OpAdd, hdl.OpSub, hdl.OpMul}
		return &hdl.Binary{Op: ops[g.rng.Intn(len(ops))], X: g.expr(w, depth-1), Y: g.expr(w, depth-1), Width: w}
	case 5: // shift by small literal
		op := hdl.OpShl
		if g.rng.Intn(2) == 0 {
			op = hdl.OpShr
		}
		sh := bitvec.New(uint64(g.rng.Intn(w+1)), 3)
		shLit := &hdl.Lit{Val: sh, Raw: sh.Uint(), Sized: true, Width: 3}
		return &hdl.Binary{Op: op, X: g.expr(w, depth-1), Y: shLit, Width: w}
	case 6: // width-1 specials: comparison / reduction / index
		if w == 1 {
			return g.boolExpr(depth)
		}
		return g.leaf(w)
	case 7: // slice of a wider expression
		wider := w + g.rng.Intn(3)
		if wider > g.cfg.MaxWidth+2 || wider > 60 {
			wider = w
		}
		if wider == w {
			return g.leaf(w)
		}
		lo := g.rng.Intn(wider - w + 1)
		return &hdl.SliceExpr{X: g.expr(wider, depth-1), Hi: lo + w - 1, Lo: lo}
	case 8: // concat splitting the width
		if w < 2 {
			return g.leaf(w)
		}
		hiW := 1 + g.rng.Intn(w-1)
		return &hdl.Binary{Op: hdl.OpConcat, X: g.expr(hiW, depth-1), Y: g.expr(w-hiW, depth-1), Width: w}
	default:
		return g.leaf(w)
	}
}

// boolExpr builds a width-1 expression from the 1-bit-only constructors.
func (g *gen) boolExpr(depth int) hdl.Expr {
	w2 := g.width()
	switch g.rng.Intn(4) {
	case 0: // relational
		ops := []hdl.BinOp{hdl.OpEq, hdl.OpNe, hdl.OpLt, hdl.OpLe, hdl.OpGt, hdl.OpGe}
		return &hdl.Binary{Op: ops[g.rng.Intn(len(ops))], X: g.expr(w2, depth-1), Y: g.expr(w2, depth-1), Width: 1}
	case 1: // reduction
		ops := []hdl.UnOp{hdl.OpRedAnd, hdl.OpRedOr, hdl.OpRedXor}
		return &hdl.Unary{Op: ops[g.rng.Intn(len(ops))], X: g.expr(w2, depth-1), Width: 1}
	case 2: // constant bit index
		idx := bitvec.New(uint64(g.rng.Intn(w2)), 6)
		idxLit := &hdl.Lit{Val: idx, Raw: idx.Uint(), Sized: true, Width: 6}
		return &hdl.Index{X: g.expr(w2, depth-1), I: idxLit}
	default:
		return g.leaf(1)
	}
}

// leaf returns a Ref of width w when one is readable, else a literal.
func (g *gen) leaf(w int) hdl.Expr {
	if names := g.readable[w]; len(names) > 0 && g.rng.Intn(4) != 0 {
		return &hdl.Ref{Name: names[g.rng.Intn(len(names))], Width: w}
	}
	return g.lit(w)
}

// assign builds `name = expr` for a signal of known width.
func (g *gen) assign(name string) hdl.Stmt {
	return &hdl.Assign{
		LHS: &hdl.LValue{Name: name},
		RHS: g.expr(g.widths[name], g.cfg.MaxDepth),
	}
}

// buildComb creates the comb block: every wire and every comb output is
// assigned unconditionally (definite assignment by construction), then
// conditional statements are layered on top.
func (g *gen) buildComb() {
	var stmts []hdl.Stmt
	for _, wdecl := range g.c.Wires {
		stmts = append(stmts, g.assign(wdecl.Name))
		g.readable[wdecl.Width] = append(g.readable[wdecl.Width], wdecl.Name)
	}
	combOutputs := g.combOutputs()
	for _, name := range combOutputs {
		stmts = append(stmts, g.assign(name))
	}
	targets := append(append([]string{}, combOutputs...), wireNames(g.c)...)
	for i := 0; i < g.cfg.ExtraStmts && len(targets) > 0; i++ {
		stmts = append(stmts, g.condStmt(targets))
	}
	g.c.Blocks = append(g.c.Blocks, &hdl.Block{Kind: hdl.Comb, Stmts: stmts})
}

// combOutputs decides which outputs are combinational: with registers
// present, roughly half become registered (driven by the seq block).
func (g *gen) combOutputs() []string {
	var comb []string
	for _, p := range g.c.Ports {
		if p.Dir != hdl.Output {
			continue
		}
		if g.cfg.Regs > 0 && g.rng.Intn(2) == 0 {
			continue // leave for the seq block
		}
		comb = append(comb, p.Name)
	}
	// The seq block may end up with no outputs to drive; ensure at least
	// one output exists somewhere (Check requires all comb outputs be
	// driven but registered outputs can simply hold zero forever).
	if len(comb) == 0 && g.cfg.Regs == 0 {
		for _, p := range g.c.Ports {
			if p.Dir == hdl.Output {
				comb = append(comb, p.Name)
				break
			}
		}
	}
	g.seqOutputs = nil
	for _, p := range g.c.Ports {
		if p.Dir != hdl.Output {
			continue
		}
		found := false
		for _, n := range comb {
			if n == p.Name {
				found = true
			}
		}
		if !found {
			g.seqOutputs = append(g.seqOutputs, p.Name)
		}
	}
	return comb
}

// condStmt builds a random if or case assigning one of the targets.
func (g *gen) condStmt(targets []string) hdl.Stmt {
	name := targets[g.rng.Intn(len(targets))]
	if g.rng.Intn(3) != 0 {
		node := &hdl.If{
			Cond: g.boolExpr(2),
			Then: []hdl.Stmt{g.assign(name)},
		}
		if g.rng.Intn(2) == 0 {
			node.Else = []hdl.Stmt{g.assign(name)}
		}
		return node
	}
	// case over a small subject with literal labels and a default.
	w := 2
	subj := g.expr(w, 2)
	node := &hdl.Case{Subject: subj}
	used := map[uint64]bool{}
	arms := 1 + g.rng.Intn(3)
	for a := 0; a < arms; a++ {
		v := uint64(g.rng.Intn(1 << w))
		if used[v] {
			continue
		}
		used[v] = true
		lv := bitvec.New(v, w)
		node.Arms = append(node.Arms, &hdl.CaseArm{
			Labels: []hdl.Expr{&hdl.Lit{Val: lv, Raw: v, Sized: true, Width: w}},
			Body:   []hdl.Stmt{g.assign(name)},
		})
	}
	node.Default = []hdl.Stmt{g.assign(name)}
	return node
}

// buildSeq creates the seq block driving registers and registered outputs.
func (g *gen) buildSeq() {
	var targets []string
	for _, r := range g.c.Regs {
		targets = append(targets, r.Name)
	}
	targets = append(targets, g.seqOutputs...)
	var stmts []hdl.Stmt
	for _, name := range targets {
		if g.rng.Intn(3) == 0 {
			stmts = append(stmts, g.assign(name)) // unconditional update
		} else {
			stmts = append(stmts, g.condStmt([]string{name}))
		}
	}
	g.c.Blocks = append(g.c.Blocks, &hdl.Block{Kind: hdl.Seq, Stmts: stmts})
}

func wireNames(c *hdl.Circuit) []string {
	var out []string
	for _, w := range c.Wires {
		out = append(out, w.Name)
	}
	return out
}
