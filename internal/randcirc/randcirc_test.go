package randcirc

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/hdl"
	"repro/internal/mutation"
	"repro/internal/netlist"
	"repro/internal/sim"
	"repro/internal/synth"
)

const fuzzCircuits = 60

func TestGeneratedCircuitsAreValid(t *testing.T) {
	for seed := int64(0); seed < fuzzCircuits; seed++ {
		c, err := Generate(Config{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(c.Outputs()) == 0 {
			t.Fatalf("seed %d: no outputs", seed)
		}
	}
}

func TestGeneratedCircuitsFormatRoundTrip(t *testing.T) {
	for seed := int64(0); seed < fuzzCircuits; seed++ {
		c, err := Generate(Config{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		src := hdl.Format(c)
		c2, err := hdl.Parse(src)
		if err != nil {
			t.Fatalf("seed %d: formatted source rejected: %v\n%s", seed, err, src)
		}
		if hdl.Format(c2) != src {
			t.Fatalf("seed %d: format not a fixed point", seed)
		}
	}
}

// TestGeneratedCircuitsSimEqualsSynth is the repository's central fuzz
// property: for arbitrary valid circuits, the behavioral simulator and
// the synthesized netlist agree cycle-for-cycle.
func TestGeneratedCircuitsSimEqualsSynth(t *testing.T) {
	for seed := int64(0); seed < fuzzCircuits; seed++ {
		c, err := Generate(Config{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		nl, err := synth.Synthesize(c)
		if err != nil {
			t.Fatalf("seed %d: synth: %v\n%s", seed, err, hdl.Format(c))
		}
		bsim, err := sim.New(c)
		if err != nil {
			t.Fatalf("seed %d: sim: %v", seed, err)
		}
		ev, err := netlist.NewEvaluator(nl)
		if err != nil {
			t.Fatalf("seed %d: eval: %v", seed, err)
		}
		rng := rand.New(rand.NewSource(seed * 31))
		ins := c.Inputs()
		for cyc := 0; cyc < 100; cyc++ {
			v := make(sim.Vector, len(ins))
			for i, p := range ins {
				v[i] = bitvec.New(rng.Uint64(), p.Width)
			}
			want, err := bsim.Step(v)
			if err != nil {
				t.Fatalf("seed %d cycle %d: %v", seed, cyc, err)
			}
			words, err := ev.Eval(synth.PackVector(c, v))
			if err != nil {
				t.Fatal(err)
			}
			got := synth.UnpackVector(c, words, 0)
			for j := range want {
				if !got[j].Equal(want[j]) {
					t.Fatalf("seed %d cycle %d output %d: netlist %v sim %v\n%s",
						seed, cyc, j, got[j], want[j], hdl.Format(c))
				}
			}
			ev.Clock()
		}
	}
}

// TestGeneratedCircuitsBenchRoundTrip checks the .bench writer/reader on
// arbitrary synthesized netlists, comparing behavior on random patterns.
func TestGeneratedCircuitsBenchRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		c, err := Generate(Config{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		nl, err := synth.Synthesize(c)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		if err := netlist.WriteBench(&sb, nl); err != nil {
			t.Fatal(err)
		}
		nl2, err := netlist.ReadBench(strings.NewReader(sb.String()), nl.Name)
		if err != nil {
			t.Fatalf("seed %d: round-trip parse: %v", seed, err)
		}
		if len(nl2.PIs) != len(nl.PIs) || len(nl2.POs) != len(nl.POs) || len(nl2.FFs) != len(nl.FFs) {
			t.Fatalf("seed %d: interface mismatch after round-trip", seed)
		}
		e1, err := netlist.NewEvaluator(nl)
		if err != nil {
			t.Fatal(err)
		}
		e2, err := netlist.NewEvaluator(nl2)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		for trial := 0; trial < 20; trial++ {
			pis := make([]uint64, len(nl.PIs))
			for i := range pis {
				pis[i] = rng.Uint64()
			}
			o1, err := e1.Eval(pis)
			if err != nil {
				t.Fatal(err)
			}
			o1c := append([]uint64(nil), o1...)
			o2, err := e2.Eval(pis)
			if err != nil {
				t.Fatal(err)
			}
			for j := range o1c {
				if o1c[j] != o2[j] {
					t.Fatalf("seed %d trial %d: bench round-trip changed PO %d", seed, trial, j)
				}
			}
			e1.Clock()
			e2.Clock()
		}
	}
}

// TestGeneratedCircuitsSurviveMutation generates mutants of arbitrary
// circuits and checks they are all simulable — the mutation engine must
// never produce a crashing mutant regardless of circuit shape.
func TestGeneratedCircuitsSurviveMutation(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		c, err := Generate(Config{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		ms := mutation.Generate(c)
		rng := rand.New(rand.NewSource(seed))
		ins := c.Inputs()
		v := make(sim.Vector, len(ins))
		for i, p := range ins {
			v[i] = bitvec.New(rng.Uint64(), p.Width)
		}
		for _, m := range ms {
			s, err := sim.New(m.Circuit)
			if err != nil {
				t.Fatalf("seed %d mutant %s: %v", seed, m.Desc, err)
			}
			if _, err := s.Step(v); err != nil {
				t.Fatalf("seed %d mutant %s: step: %v", seed, m.Desc, err)
			}
		}
	}
}

func TestCombinationalOnlyConfig(t *testing.T) {
	// Regs: -1 requests a purely combinational circuit.
	for seed := int64(100); seed < 110; seed++ {
		c, err := Generate(Config{Seed: seed, Regs: -1, Wires: 3})
		if err != nil {
			t.Fatal(err)
		}
		nl, err := synth.Synthesize(c)
		if err != nil {
			t.Fatal(err)
		}
		if nl.IsSequential() {
			t.Fatalf("seed %d: Regs:-1 produced flip-flops", seed)
		}
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	a, err := Generate(Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if hdl.Format(a) != hdl.Format(b) {
		t.Fatal("same seed generated different circuits")
	}
}
