package engine

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"math"
)

// Digest is the canonical content hasher for Options-bearing configs:
// the campaign service derives its job keys from one. A config writes
// its semantic fields — seeds, horizons, disciplines, shard bounds —
// as labeled values in a fixed order; the label makes the stream
// self-delimiting, so two different field sequences can never collide by
// concatenation.
//
// The embedded engine.Options contributes NOTHING to a digest, by
// design: Workers, LaneWords, Progress and Ctx are execution knobs, and
// the engine contract (pinned by the parity suites and internal/difftest)
// is that results are bit-identical for every setting. Excluding them is
// what lets a result computed under one engine configuration serve a
// request made under any other — the whole point of a content-addressed
// result cache.
type Digest struct {
	h hash.Hash
}

// NewDigest starts a digest for the given kind tag (the job family —
// distinct kinds must never collide even over identical fields).
func NewDigest(kind string) *Digest {
	d := &Digest{h: sha256.New()}
	d.Str("kind", kind)
	return d
}

// Int folds a labeled integer field.
func (d *Digest) Int(label string, v int64) {
	d.label(label)
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(v))
	d.h.Write(b[:])
}

// Float folds a labeled float field (by IEEE-754 bits, so the value
// round-trips exactly).
func (d *Digest) Float(label string, v float64) {
	d.Int(label, int64(math.Float64bits(v)))
}

// Str folds a labeled string field.
func (d *Digest) Str(label, s string) {
	d.label(label)
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(len(s)))
	d.h.Write(b[:])
	d.h.Write([]byte(s))
}

// Ints folds a labeled integer list (length-prefixed).
func (d *Digest) Ints(label string, vs []int) {
	d.Int(label+"#", int64(len(vs)))
	for _, v := range vs {
		d.Int(label, int64(v))
	}
}

func (d *Digest) label(label string) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(len(label)))
	d.h.Write(b[:])
	d.h.Write([]byte(label))
}

// Sum returns the hex digest. The Digest must not be written afterwards.
func (d *Digest) Sum() string {
	return hex.EncodeToString(d.h.Sum(nil))
}
