// Buffer-ownership discipline shared by every engine session.
//
// The engines are campaign loops: the same Append / AppendTest / Generate
// round runs thousands of times against one compiled model, so per-round
// buffer churn — not working-set size — is what makes a long-running
// campaign GC-bound. Every session type therefore follows one contract:
//
//   - A session owns its scratch. Stimulus broadcasts, good-trace rows,
//     snapshot buffers, candidate segments, PODEM decision stacks and
//     armed machines are allocated once, grown to the high-water mark,
//     and recycled across rounds (Grow is the canonical primitive).
//   - Results a caller may retain are freshly allocated or documented as
//     session-owned views. A view is valid until the next call on the
//     session; retaining callers clone it (faultsim.Result.Clone).
//   - Buffers that cross goroutines — worker-pool batch scratch — come
//     from a Pool (a typed sync.Pool): a job gets a buffer, works on it
//     alone, and puts it back before the pool call returns, so no two
//     live users ever share one. The -race suites exercise this.
//
// One-shot conveniences (Run, MutationTests, package-level Kills) stay
// caller-owned end to end: they clone whatever the underlying session
// would have recycled.
package engine

import "sync"

// Grow returns a slice of length n backed by buf's storage when capacity
// allows, allocating (with slack) only past the high-water mark. Element
// values are stale, not zeroed — callers overwrite every element. It is
// the canonical reuse primitive of the session scratch discipline.
func Grow[T any](buf []T, n int) []T {
	if cap(buf) >= n {
		return buf[:n]
	}
	return append(buf[:cap(buf)], make([]T, n-cap(buf))...)
}

// GrowZero is Grow with every element reset to the zero value, for
// accumulator buffers where stale state would alias previous rounds.
func GrowZero[T any](buf []T, n int) []T {
	buf = Grow(buf, n)
	var zero T
	for i := range buf {
		buf[i] = zero
	}
	return buf
}

// Pool is a typed free list over sync.Pool for scratch that crosses
// goroutines (per-batch buffers handed to worker-pool jobs). The zero
// value is unusable; construct with NewPool.
type Pool[T any] struct {
	p sync.Pool
}

// NewPool builds a pool whose Get falls back to newT when empty.
func NewPool[T any](newT func() T) *Pool[T] {
	return &Pool[T]{p: sync.Pool{New: func() any { return newT() }}}
}

// Get takes a value from the pool, constructing one when empty. The
// caller owns it exclusively until Put.
func (p *Pool[T]) Get() T { return p.p.Get().(T) }

// Put returns a value to the pool. The caller must not touch it after.
func (p *Pool[T]) Put(v T) { p.p.Put(v) }
