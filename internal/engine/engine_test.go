package engine

import (
	"context"
	"errors"
	"testing"

	"repro/internal/lane"
)

func TestSerial(t *testing.T) {
	for n, want := range map[int]bool{0: false, 1: true, 2: false, 16: false} {
		if got := (Options{Workers: n}).Serial(); got != want {
			t.Errorf("Workers %d: Serial() = %v, want %v", n, got, want)
		}
	}
}

// TestLanes pins the knob resolution to internal/lane: 0 selects the
// package default, the stenciled widths pass through, anything else is
// rejected — the single validation every embedding Config shares.
func TestLanes(t *testing.T) {
	if w, err := (Options{}).Lanes(); err != nil || w != lane.DefaultWords {
		t.Errorf("zero LaneWords resolved to (%d, %v), want (%d, nil)", w, err, lane.DefaultWords)
	}
	for _, w := range lane.Widths() {
		got, err := (Options{LaneWords: w}).Lanes()
		if err != nil || got != w {
			t.Errorf("LaneWords %d resolved to (%d, %v)", w, got, err)
		}
	}
	for _, w := range []int{-1, 2, 3, 5, 7, 9, 64} {
		if _, err := (Options{LaneWords: w}).Lanes(); err == nil {
			t.Errorf("LaneWords %d accepted", w)
		}
	}
}

func TestContextAndCancelled(t *testing.T) {
	var o Options
	if o.Context() == nil {
		t.Fatal("nil Ctx must substitute a background context")
	}
	if err := o.Cancelled(); err != nil {
		t.Fatalf("zero Options cancelled: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	o.Ctx = ctx
	if o.Context() != ctx {
		t.Fatal("Context() must return the configured context")
	}
	if err := o.Cancelled(); err != nil {
		t.Fatalf("live context reported cancelled: %v", err)
	}
	cancel()
	if err := o.Cancelled(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Cancelled() = %v, want context.Canceled", err)
	}
}

func TestReport(t *testing.T) {
	var got []Stats
	o := Options{Progress: func(s Stats) { got = append(got, s) }}
	o.Report(1, 4)
	o.Report(4, 4)
	if len(got) != 2 || got[0] != (Stats{1, 4}) || got[1] != (Stats{4, 4}) {
		t.Fatalf("progress reports = %v", got)
	}
	(Options{}).Report(1, 1) // nil hook: must not panic
}
