package engine

import "testing"

// TestDigestSelfDelimiting pins that labeled fields make the stream
// unambiguous: shifting bytes between adjacent fields, reordering
// fields, or changing the kind tag must change the digest.
func TestDigestSelfDelimiting(t *testing.T) {
	sum := func(build func(d *Digest)) string {
		d := NewDigest("k")
		build(d)
		return d.Sum()
	}
	base := sum(func(d *Digest) { d.Str("a", "xy"); d.Str("b", "z") })
	if got := sum(func(d *Digest) { d.Str("a", "x"); d.Str("b", "yz") }); got == base {
		t.Error("byte shift between fields did not change the digest")
	}
	if got := sum(func(d *Digest) { d.Str("b", "z"); d.Str("a", "xy") }); got == base {
		t.Error("field reorder did not change the digest")
	}
	other := NewDigest("other")
	other.Str("a", "xy")
	other.Str("b", "z")
	if other.Sum() == base {
		t.Error("kind tag did not change the digest")
	}
	if sum(func(d *Digest) { d.Str("a", "xy"); d.Str("b", "z") }) != base {
		t.Error("identical streams digested differently")
	}
}

// TestDigestFieldKinds covers the scalar encoders.
func TestDigestFieldKinds(t *testing.T) {
	d1 := NewDigest("k")
	d1.Int("n", 7)
	d1.Float("f", 0.5)
	d1.Ints("v", []int{1, 2})
	s1 := d1.Sum()

	d2 := NewDigest("k")
	d2.Int("n", 7)
	d2.Float("f", 0.5)
	d2.Ints("v", []int{1, 2})
	if d2.Sum() != s1 {
		t.Error("equal field streams digested differently")
	}
	d3 := NewDigest("k")
	d3.Int("n", 7)
	d3.Float("f", 0.5)
	d3.Ints("v", []int{1, 2, 0})
	if d3.Sum() == s1 {
		t.Error("list length not folded into the digest")
	}
}
