// Package engine defines the execution-option surface every simulation
// engine in this repository shares. The fault simulator (faultsim), the
// mutant scorer (mutscore), the behavioral batch pool (sim) and the
// test generator (tpg) all run batched work over the same worker-pool /
// lane-vector machinery, so their configuration knobs are the same four
// things: a pool size, a lane width, a progress hook and a cancellation
// context. Options defines that knob set once; the per-package Configs
// embed it, which keeps the semantics (and the doc comments) from
// drifting apart.
package engine

import (
	"context"

	"repro/internal/lane"
)

// Stats is one progress report from a running engine operation. The
// unit of work is operation-specific — fault batches for the sequential
// fault simulator, undetected faults for the combinational one, mutant
// lane batches for scoring, targets for test generation — but Done/Total
// always describe the current call's completion fraction.
type Stats struct {
	Done  int // work units completed so far
	Total int // work units this operation was dispatched with
}

// Options is the execution configuration shared by every engine. The
// zero value is the fast default: compiled engines, all cores, automatic
// lane width, no progress reporting, never cancelled. faultsim.Config,
// mutscore.Config, core.Config and tpg.Options embed it, so the knobs
// read (and validate) identically everywhere.
type Options struct {
	// Workers sizes the engine worker pool: 0 uses all cores (compiled
	// engine), n > 1 uses exactly n workers (compiled engine), and 1
	// selects the serial reference engine kept for differential testing
	// (the single-fault Evaluator path in faultsim, the AST-interpreter
	// path in mutscore). Results are identical for every setting — the
	// parity tests and internal/difftest pin this.
	Workers int
	// LaneWords selects the compiled engines' lane vector width in
	// 64-bit words: 1, 4 or 8 force 64, 256 or 512 lanes (fault machines,
	// packed patterns, or lockstep mutants) per pass, and 0 picks a
	// per-engine default — lane.DefaultWords for mutant scoring, a
	// topology-dependent width for fault simulation (8 for sequential
	// circuits, where wide vectors amortize the per-gate decode over more
	// fault machines; 1 for combinational ones, where per-fault early
	// exit makes the first 64-pattern batch decisive). The serial
	// reference engines (Workers == 1) ignore this knob. Results are
	// identical for every setting.
	LaneWords int
	// Progress, when non-nil, receives completion counts while a batch
	// operation runs. It may be called concurrently from pool workers,
	// so it must be safe for concurrent use, and it should return
	// quickly — it runs on the hot path.
	Progress func(Stats)
	// Ctx cancels long-running operations cooperatively: engines poll it
	// at batch (and, inside long batches, cycle-block) boundaries and
	// return its error once it is done. Nil means never cancelled.
	Ctx context.Context
	// PackPairs selects how many concurrent PODEM searches the compiled
	// ATPG engine packs into one dual-rail machine pass (each search
	// occupies one lane pair of the W=1 twin word): 0 picks the full
	// 32-pair capacity, 1 the single-pair engine kept as the packed
	// scheduler's differential reference, and 2..32 an explicit pack
	// width. Only the test generator reads it — the other engines batch
	// through LaneWords. Results are identical for every setting: the
	// pack scheduler commits targets in index order, so detection order
	// (and therefore fault dropping) never depends on pack width.
	PackPairs int
}

// Serial reports whether the serial reference engine is selected
// (Workers == 1).
func (o Options) Serial() bool { return o.Workers == 1 }

// Lanes resolves the LaneWords knob against the generic package default
// (0 selects lane.DefaultWords) and rejects unsupported widths. Engines
// with a topology-dependent default validate through Lanes and then
// override the zero value themselves.
func (o Options) Lanes() (int, error) { return lane.Resolve(o.LaneWords) }

// Context returns the cancellation context, substituting a background
// context when none is set.
func (o Options) Context() context.Context {
	if o.Ctx == nil {
		return context.Background()
	}
	return o.Ctx
}

// Cancelled returns the context's error if the options carry a cancelled
// (or otherwise done) context, and nil otherwise. Engines poll it at
// work-unit boundaries; it never blocks.
func (o Options) Cancelled() error {
	if o.Ctx == nil {
		return nil
	}
	return o.Ctx.Err()
}

// Report invokes the progress hook, if one is set.
func (o Options) Report(done, total int) {
	if o.Progress != nil {
		o.Progress(Stats{Done: done, Total: total})
	}
}
