package core

import (
	"fmt"
	"strings"
)

// Table1Row pairs a circuit with its operator profiles.
type Table1Row struct {
	Circuit  string
	Profiles []OperatorProfile
}

// FormatTable1 renders per-operator efficiency profiles in the layout of
// the paper's Table 1 ("Operator Fault Coverage Efficiency").
func FormatTable1(rows []Table1Row) string {
	var sb strings.Builder
	sb.WriteString("Table 1: Operator Fault Coverage Efficiency\n")
	fmt.Fprintf(&sb, "%-8s %-5s %8s %8s %8s %10s %7s %7s\n",
		"Circuit", "Op", "Mutants", "ΔFC%", "ΔL%", "NLFCE", "MFC%", "RFC%")
	for _, row := range rows {
		for i, p := range row.Profiles {
			name := ""
			if i == 0 {
				name = row.Circuit
			}
			fmt.Fprintf(&sb, "%-8s %-5s %8d %8.2f %8.2f %+10.1f %7.2f %7.2f\n",
				name, p.Op, p.Mutants,
				p.Eff.DeltaFCPts, p.Eff.DeltaLPct, p.Eff.NLFCE,
				100*p.Eff.MFC, 100*p.Eff.RFC)
		}
	}
	return sb.String()
}

// FormatTable2 renders sampling comparisons in the layout of the paper's
// Table 2 ("Our Testing Strategy Vs Mutant Sampling").
func FormatTable2(cmps []*SamplingComparison) string {
	var sb strings.Builder
	sb.WriteString("Table 2: Test-oriented sampling vs random sampling\n")
	fmt.Fprintf(&sb, "%-8s %7s | %-22s | %-22s\n", "", "", "test-oriented", "random")
	fmt.Fprintf(&sb, "%-8s %7s | %8s %6s %6s | %8s %6s %6s\n",
		"Circuit", "Sample", "MS%", "NLFCE", "Len", "MS%", "NLFCE", "Len")
	for _, c := range cmps {
		fmt.Fprintf(&sb, "%-8s %7d | %8.2f %+6.0f %6d | %8.2f %+6.0f %6d\n",
			c.Circuit, c.TestOriented.SampleSize,
			c.TestOriented.MSPct, c.TestOriented.Eff.NLFCE, c.TestOriented.SeqLen,
			c.Random.MSPct, c.Random.Eff.NLFCE, c.Random.SeqLen)
	}
	return sb.String()
}

// FormatTopoff renders E3 results: ATPG effort with and without the
// mutation-derived pre-test.
func FormatTopoff(results []*TopoffResult) string {
	var sb strings.Builder
	sb.WriteString("E3: ATPG effort with and without validation-data pre-test\n")
	fmt.Fprintf(&sb, "%-8s | %-26s | %-12s | %-26s\n",
		"", "ATPG from scratch", "pre-test", "ATPG top-off after pre-test")
	fmt.Fprintf(&sb, "%-8s | %6s %8s %9s | %5s %5s | %6s %8s %9s\n",
		"Circuit", "vecs", "backtr", "calls", "len", "FC%", "vecs", "backtr", "calls")
	for _, r := range results {
		fmt.Fprintf(&sb, "%-8s | %6d %8d %9d | %5d %5.1f | %6d %8d %9d\n",
			r.Circuit,
			len(r.Baseline.Vectors), r.Baseline.Backtracks, r.Baseline.PodemCalls,
			r.PreTestLen, 100*r.PreTestCoverage,
			len(r.Topoff.Vectors), r.Topoff.Backtracks, r.Topoff.PodemCalls)
	}
	return sb.String()
}

// FormatSeqTopoff renders E4 results: sequential time-frame ATPG effort
// with and without the mutation-derived pre-test.
func FormatSeqTopoff(results []*SeqTopoffResult) string {
	var sb strings.Builder
	sb.WriteString("E4: sequential ATPG (time-frame expansion) with and without pre-test\n")
	fmt.Fprintf(&sb, "%-8s %6s | %-28s | %-12s | %-28s\n",
		"", "", "ATPG from scratch", "pre-test", "ATPG top-off after pre-test")
	fmt.Fprintf(&sb, "%-8s %6s | %6s %8s %8s %4s | %5s %5s | %6s %8s %8s %4s\n",
		"Circuit", "frames", "tests", "cycles", "backtr", "FC%", "len", "FC%", "tests", "cycles", "backtr", "FC%")
	for _, r := range results {
		fmt.Fprintf(&sb, "%-8s %6d | %6d %8d %8d %4.0f | %5d %5.1f | %6d %8d %8d %4.0f\n",
			r.Circuit, r.Frames,
			len(r.Baseline.Tests), r.Baseline.TotalCycles(), r.Baseline.Backtracks, 100*r.Baseline.Coverage(),
			r.PreTestLen, 100*r.PreTestCoverage,
			len(r.Topoff.Tests), r.Topoff.TotalCycles(), r.Topoff.Backtracks, 100*r.Topoff.Coverage())
	}
	return sb.String()
}

// FormatWeights renders a weight table for harness output.
func FormatWeights(profiles []OperatorProfile, w map[string]float64) string {
	var sb strings.Builder
	for _, p := range profiles {
		fmt.Fprintf(&sb, "  %-5s NLFCE %+9.1f  weight %.3f\n", p.Op, p.Eff.NLFCE, w[string(p.Op)])
	}
	return sb.String()
}
