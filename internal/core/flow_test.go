package core

import (
	"strings"
	"testing"

	"repro/internal/circuits"
	"repro/internal/metrics"
	"repro/internal/mutation"
	"repro/internal/sampling"
)

// fastConfig keeps unit tests quick; benchmark-grade budgets live in the
// repository-level bench harness.
func fastConfig() Config {
	return Config{
		Seed:        1,
		RandHorizon: 512,
		EquivBudget: 256,
	}
}

func newTestFlow(t *testing.T, name string) *Flow {
	t.Helper()
	f, err := NewFlow(circuits.MustLoad(name), fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNewFlowElaborates(t *testing.T) {
	f := newTestFlow(t, "b01")
	if f.Netlist.CombGateCount() == 0 {
		t.Error("no gates")
	}
	if len(f.Mutants) == 0 {
		t.Error("no mutants")
	}
	if len(f.Faults) == 0 {
		t.Error("no faults")
	}
	if len(f.RandomCurve()) != 512 {
		t.Errorf("random curve length %d", len(f.RandomCurve()))
	}
	last := f.RandomCurve()[len(f.RandomCurve())-1]
	if last <= 0 || last > 1 {
		t.Errorf("random coverage %v out of range", last)
	}
}

func TestProfileOperatorsShape(t *testing.T) {
	f := newTestFlow(t, "b01")
	profiles, err := f.ProfileOperators()
	if err != nil {
		t.Fatal(err)
	}
	if len(profiles) == 0 {
		t.Fatal("no profiles")
	}
	seen := make(map[mutation.Operator]bool)
	for _, p := range profiles {
		if seen[p.Op] {
			t.Errorf("duplicate profile for %s", p.Op)
		}
		seen[p.Op] = true
		if p.Mutants <= 0 {
			t.Errorf("%s: empty class profiled", p.Op)
		}
		if p.SeqLen <= 0 {
			t.Errorf("%s: empty sequence", p.Op)
		}
		if p.Eff.MFC < 0 || p.Eff.MFC > 1 {
			t.Errorf("%s: MFC %v", p.Op, p.Eff.MFC)
		}
	}
	// Cached: second call returns identical slice.
	again, _ := f.ProfileOperators()
	if &again[0] != &profiles[0] {
		t.Error("profiles not cached")
	}
}

func TestDeriveWeights(t *testing.T) {
	profiles := []OperatorProfile{
		{Op: mutation.LOR, Eff: metrics.Efficiency{NLFCE: 10, DeltaFCPts: 1, DeltaLPct: 10}},
		{Op: mutation.CR, Eff: metrics.Efficiency{NLFCE: 400, DeltaFCPts: 8, DeltaLPct: 50}},
		{Op: mutation.VR, Eff: metrics.Efficiency{NLFCE: -20, DeltaFCPts: -2, DeltaLPct: 10}},
	}
	w := DeriveWeights(profiles, 0.05)
	if w[mutation.CR] != 400 {
		t.Errorf("CR weight %v", w[mutation.CR])
	}
	if w[mutation.LOR] != 20 { // floored at 0.05*400
		t.Errorf("LOR weight %v, want floor 20", w[mutation.LOR])
	}
	if w[mutation.VR] != 20 {
		t.Errorf("VR weight %v, want floor 20", w[mutation.VR])
	}
}

func TestDeriveWeightsDoubleNegativeGuard(t *testing.T) {
	// ΔFC<0 and ΔL<0 multiply into a positive NLFCE; the guard must zero it.
	profiles := []OperatorProfile{
		{Op: mutation.CR, Eff: metrics.Efficiency{NLFCE: 100, DeltaFCPts: 5, DeltaLPct: 20}},
		{Op: mutation.LOR, Eff: metrics.Efficiency{NLFCE: 50, DeltaFCPts: -5, DeltaLPct: -10}},
	}
	w := DeriveWeights(profiles, 0.05)
	if w[mutation.LOR] != 5 { // floor, not 50
		t.Errorf("double-negative operator weight %v, want floor 5", w[mutation.LOR])
	}
}

func TestDeriveWeightsAllNonPositive(t *testing.T) {
	profiles := []OperatorProfile{
		{Op: mutation.LOR, Eff: metrics.Efficiency{NLFCE: -5, DeltaFCPts: -1, DeltaLPct: 5}},
		{Op: mutation.CR, Eff: metrics.Efficiency{NLFCE: 0}},
	}
	w := DeriveWeights(profiles, 0.05)
	if w[mutation.LOR] != 1 || w[mutation.CR] != 1 {
		t.Errorf("degenerate weights not uniform: %v", w)
	}
}

func TestCompareSamplingB01(t *testing.T) {
	f := newTestFlow(t, "b01")
	cmp, err := f.CompareSampling()
	if err != nil {
		t.Fatal(err)
	}
	if cmp.TestOriented.SampleSize != cmp.Random.SampleSize {
		t.Fatalf("sample sizes differ: %d vs %d",
			cmp.TestOriented.SampleSize, cmp.Random.SampleSize)
	}
	want := sampling.SampleSize(len(f.Mutants), 0.10)
	if cmp.TestOriented.SampleSize != want {
		t.Errorf("sample size %d, want %d", cmp.TestOriented.SampleSize, want)
	}
	for _, s := range []StrategyResult{cmp.TestOriented, cmp.Random} {
		if s.MSPct < 0 || s.MSPct > 100 {
			t.Errorf("%s MS%% = %v", s.Strategy, s.MSPct)
		}
		if s.SeqLen <= 0 {
			t.Errorf("%s: empty sequence", s.Strategy)
		}
		total := 0
		for _, n := range s.Alloc {
			total += n
		}
		if total != s.SampleSize {
			t.Errorf("%s: allocation sums to %d, sample is %d", s.Strategy, total, s.SampleSize)
		}
	}
	t.Logf("b01: test-oriented MS %.2f%% NLFCE %+.0f | random MS %.2f%% NLFCE %+.0f",
		cmp.TestOriented.MSPct, cmp.TestOriented.Eff.NLFCE,
		cmp.Random.MSPct, cmp.Random.Eff.NLFCE)
}

func TestEquivalentFlagsConsistent(t *testing.T) {
	f := newTestFlow(t, "b02")
	eq, err := f.Equivalent()
	if err != nil {
		t.Fatal(err)
	}
	if len(eq) != len(f.Mutants) {
		t.Fatalf("%d flags for %d mutants", len(eq), len(f.Mutants))
	}
	nEq := 0
	for _, e := range eq {
		if e {
			nEq++
		}
	}
	if nEq == len(f.Mutants) {
		t.Error("all mutants flagged equivalent; campaign broken")
	}
	// Cached.
	eq2, _ := f.Equivalent()
	if &eq2[0] != &eq[0] {
		t.Error("equivalence flags not cached")
	}
}

func TestATPGTopoffCombinational(t *testing.T) {
	f := newTestFlow(t, "c17")
	r, err := f.ATPGTopoff()
	if err != nil {
		t.Fatal(err)
	}
	if r.Baseline.PodemCalls == 0 {
		t.Error("baseline ATPG did nothing")
	}
	if r.Topoff.PodemCalls > r.Baseline.PodemCalls {
		t.Errorf("top-off calls %d > baseline %d", r.Topoff.PodemCalls, r.Baseline.PodemCalls)
	}
	if r.Remaining >= len(f.Faults) {
		t.Errorf("pre-test detected nothing: %d of %d remain", r.Remaining, len(f.Faults))
	}
	if len(r.Topoff.Vectors) > len(r.Baseline.Vectors) {
		t.Errorf("top-off needs more vectors (%d) than scratch (%d)",
			len(r.Topoff.Vectors), len(r.Baseline.Vectors))
	}
}

func TestATPGTopoffRejectsSequential(t *testing.T) {
	f := newTestFlow(t, "b02")
	if _, err := f.ATPGTopoff(); err == nil {
		t.Fatal("sequential circuit accepted")
	}
}

func TestSequentialATPGTopoff(t *testing.T) {
	f := newTestFlow(t, "b06")
	r, err := f.SequentialATPGTopoff(4)
	if err != nil {
		t.Fatal(err)
	}
	if r.Frames != 4 {
		t.Errorf("frames = %d", r.Frames)
	}
	if r.Baseline.PodemCalls == 0 || len(r.Baseline.Tests) == 0 {
		t.Error("baseline sequential ATPG did nothing")
	}
	if r.Remaining >= len(f.Faults) {
		t.Error("pre-test detected nothing")
	}
	if len(r.Topoff.Tests) > len(r.Baseline.Tests) {
		t.Errorf("top-off needs more tests (%d) than scratch (%d)",
			len(r.Topoff.Tests), len(r.Baseline.Tests))
	}
	out := FormatSeqTopoff([]*SeqTopoffResult{r})
	if !strings.Contains(out, "b06") {
		t.Errorf("report malformed:\n%s", out)
	}
}

func TestSequentialATPGTopoffRejectsCombinational(t *testing.T) {
	f := newTestFlow(t, "c17")
	if _, err := f.SequentialATPGTopoff(4); err == nil {
		t.Fatal("combinational circuit accepted")
	}
}

func TestFormatTables(t *testing.T) {
	f := newTestFlow(t, "b01")
	profiles, err := f.ProfileOperators()
	if err != nil {
		t.Fatal(err)
	}
	s1 := FormatTable1([]Table1Row{{Circuit: "b01", Profiles: profiles}})
	if !strings.Contains(s1, "b01") || !strings.Contains(s1, "NLFCE") {
		t.Errorf("table 1 malformed:\n%s", s1)
	}
	cmp, err := f.CompareSampling()
	if err != nil {
		t.Fatal(err)
	}
	s2 := FormatTable2([]*SamplingComparison{cmp})
	if !strings.Contains(s2, "test-oriented") {
		t.Errorf("table 2 malformed:\n%s", s2)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.SampleFrac != 0.10 || c.RandHorizon != 2048 || c.EquivBudget != 1024 || c.WeightFloor != 0.05 {
		t.Errorf("defaults wrong: %+v", c)
	}
}
