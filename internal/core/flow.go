// Package core implements the paper's contribution: the test-oriented
// mutation sampling flow. It wires the substrates together —
//
//	behavioral circuit ──mutation──► mutants ──tpg──► validation data
//	        │                                              │
//	      synth ──► netlist ──faultsim──► coverage curves ─┤
//	                                                       ▼
//	         metrics (MFC/RFC/ΔFC%/ΔL%/NLFCE), mutation score
//
// and exposes the paper's three experiments: per-operator efficiency
// profiling (Table 1), test-oriented versus random mutant sampling
// (Table 2), and the ATPG top-off motivation experiment (E3).
package core

import (
	"fmt"
	"sort"

	"repro/internal/atpg"
	"repro/internal/engine"
	"repro/internal/faultsim"
	"repro/internal/hdl"
	"repro/internal/metrics"
	"repro/internal/mutation"
	"repro/internal/mutscore"
	"repro/internal/netlist"
	"repro/internal/sampling"
	"repro/internal/sim"
	"repro/internal/synth"
	"repro/internal/tpg"
)

// Config tunes a Flow. The zero value selects sensible defaults.
type Config struct {
	// Seed drives every pseudo-random choice in the flow (sequence
	// generation, sampling, fills). Runs are reproducible per seed.
	Seed int64
	// SampleFrac is the mutant sampling rate shared by both strategies.
	// Default 0.10, the paper's rate.
	SampleFrac float64
	// RandHorizon is the pseudo-random reference sequence length used for
	// RFC and ΔL%. Default 2048.
	RandHorizon int
	// EquivBudget is the random-campaign length for the probable-
	// equivalence estimate E. Default 1024.
	EquivBudget int
	// WeightFloor keeps inefficient operators minimally represented in the
	// test-oriented sample: every operator weight is at least WeightFloor
	// times the maximum weight. Default 0.05.
	WeightFloor float64
	// TG forwards options to the mutation-driven test generator.
	TG tpg.Options
	// Operators restricts the mutant population; nil means all ten.
	Operators []mutation.Operator
	// Repeats averages every randomized measurement (TG stimuli, sample
	// draws) over this many independently-seeded runs. Default 3.
	Repeats int
	// ProfileCap bounds the per-class subsample used when profiling an
	// operator's efficiency (Table 1): every class is measured through at
	// most this many of its mutants (a fresh deterministic draw per
	// repeat), so operators with very different class sizes are compared
	// on the same data-length scale. Default 40.
	ProfileCap int
	// Options is the shared engine surface forwarded to every substrate
	// — mutant scoring, fault simulation and test generation. See
	// engine.Options for the Workers/LaneWords semantics (Workers:1 +
	// LaneWords:1 is the bit-identical legacy reference configuration),
	// the progress hook and cancellation. Results are identical for
	// every setting.
	engine.Options
}

// mutscoreConfig projects the flow configuration onto the scoring engine.
func (c Config) mutscoreConfig() mutscore.Config {
	return mutscore.Config{Options: c.Options}
}

// faultsimConfig projects the flow configuration onto the fault simulator.
func (c Config) faultsimConfig() faultsim.Config {
	return faultsim.Config{Options: c.Options}
}

func (c Config) withDefaults() Config {
	if c.SampleFrac <= 0 {
		c.SampleFrac = 0.10
	}
	if c.RandHorizon <= 0 {
		c.RandHorizon = 2048
	}
	if c.EquivBudget <= 0 {
		c.EquivBudget = 1024
	}
	if c.WeightFloor <= 0 {
		c.WeightFloor = 0.05
	}
	if c.TG.Seed == 0 {
		c.TG.Seed = c.Seed + 1
	}
	if c.Repeats <= 0 {
		c.Repeats = 5
	}
	if c.ProfileCap <= 0 {
		c.ProfileCap = 40
	}
	return c
}

// Flow holds one circuit's elaborated artifacts: its netlist, mutant
// population, fault list and cached reference data.
type Flow struct {
	Circuit *hdl.Circuit
	Netlist *netlist.Netlist
	Mutants []*mutation.Mutant
	Faults  []faultsim.Fault

	cfg Config

	randSeq    sim.Sequence
	randCurve  []float64
	fsim       *faultsim.Simulator
	fullTG     *tpg.Result
	equivalent []bool
	profiles   []OperatorProfile
	scorer     *mutscore.Scorer
	tg         *tpg.Session
	mutIdx     map[*mutation.Mutant]int
}

// tgSession returns the cached test-generation session over the full
// mutant population — the whole population is compiled exactly once, and
// every generation campaign (operator probes, strategy samples, the
// full-population ceiling) runs as a subset selection on it. For
// sequential circuits the flow's fault simulator is attached, so a
// campaign's gate-level coverage is maintained incrementally as segments
// are accepted instead of re-simulating the finished sequence
// afterwards.
func (f *Flow) tgSession() (*tpg.Session, error) {
	if f.tg == nil {
		opts := f.cfg.TG
		opts.Options = f.cfg.Options
		s, err := tpg.NewSession(f.Circuit, f.Mutants, &opts)
		if err != nil {
			return nil, err
		}
		// Incremental per-segment fault simulation pays only where the
		// simulator applies stimuli cycle by cycle anyway (sequential
		// parallel-fault mode). Combinational pattern-parallel mode packs
		// LaneWords×64 patterns per pass, which 1-cycle segment appends
		// would forfeit — those circuits keep the one-shot post-campaign
		// run (see campaignFaultSim).
		if f.Netlist.IsSequential() {
			s.AttachFaultSim(f.fsim)
		}
		f.tg = s
		f.mutIdx = make(map[*mutation.Mutant]int, len(f.Mutants))
		for i, m := range f.Mutants {
			f.mutIdx[m] = i
		}
	}
	return f.tg, nil
}

// fullScorer returns the cached scorer over the full mutant population,
// so repeated strategy evaluations don't recompile it.
func (f *Flow) fullScorer() (*mutscore.Scorer, error) {
	if f.scorer == nil {
		s, err := f.cfg.mutscoreConfig().NewScorer(f.Circuit, f.Mutants)
		if err != nil {
			return nil, err
		}
		f.scorer = s
	}
	return f.scorer, nil
}

// NewFlow elaborates a circuit: synthesizes the netlist, enumerates the
// mutant population and the collapsed fault list, and fault-simulates the
// pseudo-random reference sequence.
func NewFlow(c *hdl.Circuit, cfg Config) (*Flow, error) {
	cfg = cfg.withDefaults()
	nl, err := synth.Synthesize(c)
	if err != nil {
		return nil, fmt.Errorf("core: %s: %w", c.Name, err)
	}
	f := &Flow{
		Circuit: c,
		Netlist: nl,
		Mutants: mutation.Generate(c, cfg.Operators...),
		cfg:     cfg,
	}
	f.Faults = faultsim.Faults(nl)
	f.fsim, err = cfg.faultsimConfig().New(nl, f.Faults)
	if err != nil {
		return nil, err
	}
	// The RFC baseline is a raw gate-level pseudo-random set: it toggles
	// every PI including reset, like the initial test sets ATPG flows
	// start from (see tpg.RawRandomSequence).
	f.randSeq = tpg.RawRandomSequence(c, cfg.RandHorizon, cfg.Seed+1000)
	res, err := f.fsim.Run(tpg.ToPatterns(c, f.randSeq))
	if err != nil {
		return nil, err
	}
	f.randCurve = res.Curve()
	return f, nil
}

// Config returns the flow's effective (defaulted) configuration.
func (f *Flow) Config() Config { return f.cfg }

// RandomCurve returns the pseudo-random reference coverage curve (RFC as a
// function of length).
func (f *Flow) RandomCurve() []float64 { return f.randCurve }

// FaultSim fault-simulates a behavioral sequence on the synthesized
// netlist and returns the coverage profile.
func (f *Flow) FaultSim(seq sim.Sequence) (*faultsim.Result, error) {
	return f.fsim.Run(tpg.ToPatterns(f.Circuit, seq))
}

// --- E1: operator efficiency profile (Table 1) -------------------------------

// OperatorProfile is one row of the paper's Table 1: the structural-test
// efficiency of validation data generated from a single operator's mutants.
type OperatorProfile struct {
	Op      mutation.Operator
	Mutants int // class size
	Probed  int // subsample size actually measured (≤ ProfileCap)
	Killed  int // probed mutants killed by the targeted sequence (mean)
	SeqLen  int // validation sequence length (mean)
	Eff     metrics.Efficiency
}

// minProfileLen is the shortest validation sequence considered long
// enough for a meaningful efficiency measurement (see ProfileOperators).
const minProfileLen = 12

// ProfileOperators measures each operator class present in the mutant
// population: generate validation data targeting only that class (capped
// per-class probe, mutation-adequate PerMutantSkip discipline with a
// dedicated fallback for degenerate classes), fault simulate it, and
// compare against the pseudo-random reference. Results are cached on the
// Flow.
func (f *Flow) ProfileOperators() ([]OperatorProfile, error) {
	if f.profiles != nil {
		return f.profiles, nil
	}
	classes := mutation.ByOperator(f.Mutants)
	ops := make([]mutation.Operator, 0, len(classes))
	for op := range classes {
		ops = append(ops, op)
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i] < ops[j] })

	var out []OperatorProfile
	for opIdx, op := range ops {
		class := classes[op]
		var effs []metrics.Efficiency
		p := OperatorProfile{Op: op, Mutants: len(class)}
		for rep := 0; rep < f.cfg.Repeats; rep++ {
			probe := class
			if len(probe) > f.cfg.ProfileCap {
				probe = sampling.Random(class, f.cfg.ProfileCap,
					f.cfg.Seed+int64(777+101*opIdx+rep))
			}
			p.Probed = len(probe)
			tg, err := f.generateMode(probe, int64(1000+37*opIdx+rep), tpg.PerMutantSkip)
			if err != nil {
				return nil, fmt.Errorf("core: TG for %s: %w", op, err)
			}
			// Mutation-adequate selection can leave almost nothing when a
			// class has no hard mutants (every target dies collaterally);
			// an efficiency measured on a handful of vectors is noise, so
			// fall back to the dedicated discipline for this probe.
			if len(tg.Seq) < minProfileLen {
				tg, err = f.generateMode(probe, int64(1000+37*opIdx+rep), tpg.PerMutant)
				if err != nil {
					return nil, fmt.Errorf("core: TG for %s: %w", op, err)
				}
			}
			fres, err := f.campaignFaultSim(tg)
			if err != nil {
				return nil, err
			}
			effs = append(effs, metrics.Compare(fres.Curve(), f.randCurve))
			p.Killed += tg.KilledCount()
			p.SeqLen += len(tg.Seq)
		}
		p.Killed /= f.cfg.Repeats
		p.SeqLen /= f.cfg.Repeats
		p.Eff = meanEfficiency(effs)
		out = append(out, p)
	}
	f.profiles = out
	return out, nil
}

// meanEfficiency averages efficiency measurements across repeated runs.
// The composite NLFCE is re-derived from the averaged factors so that the
// reported triple stays internally consistent (mean(a·b) ≠ mean(a)·mean(b)).
func meanEfficiency(effs []metrics.Efficiency) metrics.Efficiency {
	var m metrics.Efficiency
	if len(effs) == 0 {
		return m
	}
	for _, e := range effs {
		m.MFC += e.MFC
		m.RFC += e.RFC
		m.DeltaFCPts += e.DeltaFCPts
		m.DeltaLPct += e.DeltaLPct
		m.LMut += e.LMut
		m.LRand += e.LRand
		m.RandomSaturated = m.RandomSaturated || e.RandomSaturated
	}
	n := float64(len(effs))
	m.MFC /= n
	m.RFC /= n
	m.DeltaFCPts /= n
	m.DeltaLPct /= n
	m.LMut /= len(effs)
	m.LRand /= len(effs)
	m.NLFCE = m.DeltaFCPts * m.DeltaLPct
	return m
}

// DeriveWeights converts operator profiles into sampling weights: weight ∝
// max(NLFCE, 0), floored at floor × max so no operator class disappears
// entirely, so no class loses all representation. With no positive NLFCE anywhere the
// weights degenerate to uniform.
func DeriveWeights(profiles []OperatorProfile, floor float64) sampling.Weights {
	w := make(sampling.Weights, len(profiles))
	maxW := 0.0
	for _, p := range profiles {
		v := p.Eff.NLFCE
		// Guard the degenerate double-negative case (worse coverage AND
		// longer): ΔFC<0 and ΔL<0 multiply to a positive NLFCE that must
		// not be rewarded.
		if p.Eff.DeltaFCPts < 0 && p.Eff.DeltaLPct < 0 {
			v = 0
		}
		if v < 0 {
			v = 0
		}
		w[p.Op] = v
		if v > maxW {
			maxW = v
		}
	}
	if maxW == 0 {
		for op := range w {
			w[op] = 1
		}
		return w
	}
	for op, v := range w {
		if v < floor*maxW {
			w[op] = floor * maxW
		}
	}
	return w
}

// campaignFaultSim returns a campaign's gate-level coverage result: the
// incrementally maintained one when the session carries a fault
// simulator, or a one-shot run of the final sequence otherwise.
func (f *Flow) campaignFaultSim(tg *tpg.Result) (*faultsim.Result, error) {
	if tg.FaultSim != nil {
		return tg.FaultSim, nil
	}
	return f.FaultSim(tg.Seq)
}

// generate runs mutation-driven TG with the flow's options, offsetting the
// seed so distinct calls explore distinct stimuli deterministically.
func (f *Flow) generate(targets []*mutation.Mutant, seedOffset int64) (*tpg.Result, error) {
	return f.generateMode(targets, seedOffset, f.cfg.TG.Mode)
}

func (f *Flow) generateMode(targets []*mutation.Mutant, seedOffset int64, mode tpg.Mode) (*tpg.Result, error) {
	s, err := f.tgSession()
	if err != nil {
		return nil, err
	}
	idx := make([]int, len(targets))
	for i, m := range targets {
		mi, ok := f.mutIdx[m]
		if !ok {
			return nil, fmt.Errorf("core: target mutant %q is not in the flow population", m.Desc)
		}
		idx[i] = mi
	}
	opts := f.cfg.TG
	opts.Options = f.cfg.Options
	opts.Mode = mode
	opts.Seed = f.cfg.TG.Seed + seedOffset
	return s.Generate(idx, &opts)
}

// FullTG generates (and caches) validation data targeting the entire
// mutant population — the "no sampling" ceiling, also used as evidence in
// the equivalence estimate.
func (f *Flow) FullTG() (*tpg.Result, error) {
	if f.fullTG != nil {
		return f.fullTG, nil
	}
	tg, err := f.generate(f.Mutants, 2)
	if err != nil {
		return nil, err
	}
	f.fullTG = tg
	return tg, nil
}

// Equivalent returns the cached probable-equivalence flags for the mutant
// population: a mutant is counted in E only if the random campaign, the
// full-population TG sequence, and every strategy sequence evaluated so
// far all fail to kill it.
func (f *Flow) Equivalent() ([]bool, error) {
	if f.equivalent != nil {
		return f.equivalent, nil
	}
	full, err := f.FullTG()
	if err != nil {
		return nil, err
	}
	scorer, err := f.fullScorer()
	if err != nil {
		return nil, err
	}
	eq, err := scorer.EstimateEquivalence([]sim.Sequence{full.Seq},
		&mutscore.EquivalenceOptions{Budget: f.cfg.EquivBudget, Seed: f.cfg.Seed + 2000})
	if err != nil {
		return nil, err
	}
	f.equivalent = eq
	return eq, nil
}

// --- E2: sampling strategy comparison (Table 2) -------------------------------

// StrategyResult is one half of a Table 2 row.
type StrategyResult struct {
	Strategy   string
	SampleSize int
	// Alloc is the per-operator composition of the sample.
	Alloc map[mutation.Operator]int
	// SeqLen is the length of the validation sequence generated from the
	// sample.
	SeqLen int
	// MSPct is the mutation score over the FULL mutant population,
	// in percent (the paper's MS%).
	MSPct float64
	// Eff holds the structural-test efficiency of the sequence.
	Eff metrics.Efficiency
}

// SamplingComparison bundles a Table 2 row pair plus the inputs that
// produced it.
type SamplingComparison struct {
	Circuit      string
	TestOriented StrategyResult
	Random       StrategyResult
	Weights      sampling.Weights
	Profiles     []OperatorProfile
}

// CompareSampling runs the paper's Table 2 experiment: draw the same
// number of mutants with the test-oriented and the classical random
// strategy, generate validation data from each sample, and measure both
// the mutation score over all mutants and the structural-test NLFCE.
func (f *Flow) CompareSampling() (*SamplingComparison, error) {
	profiles, err := f.ProfileOperators()
	if err != nil {
		return nil, err
	}
	weights := DeriveWeights(profiles, f.cfg.WeightFloor)
	n := sampling.SampleSize(len(f.Mutants), f.cfg.SampleFrac)

	testOriented, err := f.evalStrategy("test-oriented", func(rep int64) []*mutation.Mutant {
		return sampling.Weighted(f.Mutants, n, weights, f.cfg.Seed+10+rep)
	})
	if err != nil {
		return nil, err
	}
	random, err := f.evalStrategy("random", func(rep int64) []*mutation.Mutant {
		return sampling.Random(f.Mutants, n, f.cfg.Seed+20+rep)
	})
	if err != nil {
		return nil, err
	}
	return &SamplingComparison{
		Circuit:      f.Circuit.Name,
		TestOriented: *testOriented,
		Random:       *random,
		Weights:      weights,
		Profiles:     profiles,
	}, nil
}

// evalStrategy measures a sampling strategy averaged over cfg.Repeats
// independent draw+TG runs. The per-operator allocation reported is the
// first repetition's (representative; draws differ only by seed).
func (f *Flow) evalStrategy(name string, draw func(rep int64) []*mutation.Mutant) (*StrategyResult, error) {
	equivalent, err := f.Equivalent()
	if err != nil {
		return nil, err
	}
	scorer, err := f.fullScorer()
	if err != nil {
		return nil, err
	}
	out := &StrategyResult{Strategy: name}
	var effs []metrics.Efficiency
	for rep := 0; rep < f.cfg.Repeats; rep++ {
		sample := draw(int64(rep * 1009))
		tg, err := f.generate(sample, int64(5000+991*rep))
		if err != nil {
			return nil, err
		}
		killed, err := scorer.Kills(tg.Seq)
		if err != nil {
			return nil, err
		}
		fres, err := f.campaignFaultSim(tg)
		if err != nil {
			return nil, err
		}
		if rep == 0 {
			out.SampleSize = len(sample)
			out.Alloc = make(map[mutation.Operator]int)
			for _, m := range sample {
				out.Alloc[m.Op]++
			}
		}
		out.SeqLen += len(tg.Seq)
		out.MSPct += 100 * mutscore.Score(killed, equivalent)
		effs = append(effs, metrics.Compare(fres.Curve(), f.randCurve))
	}
	out.SeqLen /= f.cfg.Repeats
	out.MSPct /= float64(f.cfg.Repeats)
	out.Eff = meanEfficiency(effs)
	return out, nil
}

// --- E3: ATPG top-off ---------------------------------------------------------

// TopoffResult quantifies the paper's motivation claim: re-using
// validation data as a pre-test reduces deterministic ATPG effort and
// final top-off length.
type TopoffResult struct {
	Circuit string
	// Baseline is ATPG from scratch over the full collapsed fault list.
	Baseline *atpg.Report
	// PreTestLen and PreTestCoverage describe the mutation-derived
	// validation data applied first.
	PreTestLen      int
	PreTestCoverage float64
	// Remaining is the fault count left for ATPG after the pre-test.
	Remaining int
	// Topoff is ATPG restricted to the remaining faults.
	Topoff *atpg.Report
}

// SeqTopoffResult is the sequential counterpart of TopoffResult
// (experiment E4): time-frame-expansion ATPG effort with and without the
// validation-data pre-test.
type SeqTopoffResult struct {
	Circuit  string
	Frames   int
	Baseline *atpg.SeqReport
	// PreTestLen and PreTestCoverage describe the validation data.
	PreTestLen      int
	PreTestCoverage float64
	Remaining       int
	Topoff          *atpg.SeqReport
}

// SequentialATPGTopoff runs the top-off experiment on sequential circuits
// using time-frame-expansion ATPG with the given horizon (8 frames when
// frames <= 0). The paper closes by calling for exactly this extension
// ("further experiments must be conducted on more complex designs").
func (f *Flow) SequentialATPGTopoff(frames int) (*SeqTopoffResult, error) {
	if !f.Netlist.IsSequential() {
		return nil, fmt.Errorf("core: %s is combinational; use ATPGTopoff", f.Circuit.Name)
	}
	if frames <= 0 {
		frames = 8
	}
	// One model per (netlist, depth): baseline and top-off share the
	// unrolled compilation.
	model, err := atpg.NewSequentialModel(f.Netlist, frames)
	if err != nil {
		return nil, err
	}
	opts := &atpg.SeqOptions{Frames: frames, FillSeed: f.cfg.Seed + 40, Options: f.cfg.Options}
	baseline, err := model.GenerateSequential(f.Faults, opts)
	if err != nil {
		return nil, err
	}
	full, err := f.FullTG()
	if err != nil {
		return nil, err
	}
	pre, err := f.campaignFaultSim(full)
	if err != nil {
		return nil, err
	}
	var remaining []faultsim.Fault
	for i, d := range pre.FirstDetected {
		if d < 0 {
			remaining = append(remaining, f.Faults[i])
		}
	}
	topOpts := &atpg.SeqOptions{Frames: frames, FillSeed: f.cfg.Seed + 41, Options: f.cfg.Options}
	topoff, err := model.GenerateSequential(remaining, topOpts)
	if err != nil {
		return nil, err
	}
	return &SeqTopoffResult{
		Circuit:         f.Circuit.Name,
		Frames:          frames,
		Baseline:        baseline,
		PreTestLen:      len(full.Seq),
		PreTestCoverage: pre.Coverage(),
		Remaining:       len(remaining),
		Topoff:          topoff,
	}, nil
}

// ATPGTopoff runs experiment E3 on combinational circuits.
func (f *Flow) ATPGTopoff() (*TopoffResult, error) {
	if f.Netlist.IsSequential() {
		return nil, fmt.Errorf("core: ATPG top-off needs a combinational circuit; %s has flip-flops", f.Circuit.Name)
	}
	// One model for both runs: baseline and top-off share the search
	// structures and the compiled dual-rail twin.
	model, err := atpg.NewModel(f.Netlist)
	if err != nil {
		return nil, err
	}
	baseline, err := model.Generate(f.Faults, &atpg.Options{FillSeed: f.cfg.Seed + 30, Options: f.cfg.Options})
	if err != nil {
		return nil, err
	}
	full, err := f.FullTG()
	if err != nil {
		return nil, err
	}
	pre, err := f.campaignFaultSim(full)
	if err != nil {
		return nil, err
	}
	var remaining []faultsim.Fault
	for i, d := range pre.FirstDetected {
		if d < 0 {
			remaining = append(remaining, f.Faults[i])
		}
	}
	topoff, err := model.Generate(remaining, &atpg.Options{FillSeed: f.cfg.Seed + 31, Options: f.cfg.Options})
	if err != nil {
		return nil, err
	}
	return &TopoffResult{
		Circuit:         f.Circuit.Name,
		Baseline:        baseline,
		PreTestLen:      len(full.Seq),
		PreTestCoverage: pre.Coverage(),
		Remaining:       len(remaining),
		Topoff:          topoff,
	}, nil
}
