package campaign

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/engine"
)

// mustExecute runs a spec and returns its canonical bytes.
func mustExecute(t *testing.T, sp Spec, cfg *ExecConfig) []byte {
	t.Helper()
	rep, err := Execute(sp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := rep.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestJobKeyWindowInvariant pins the key design: the append window is a
// checkpoint grain, not a semantic parameter, so it must not split the
// cache; seeds and shard bounds are semantic, so they must.
func TestJobKeyWindowInvariant(t *testing.T) {
	base := Spec{Kind: FaultSim, Circuit: "b01", Seed: 7, Horizon: 64}
	k1, err := JobKey(base)
	if err != nil {
		t.Fatal(err)
	}
	windowed := base
	windowed.Window = 16
	k2, err := JobKey(windowed)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Error("window choice changed the job key")
	}
	for label, mutate := range map[string]func(*Spec){
		"seed":    func(s *Spec) { s.Seed = 8 },
		"horizon": func(s *Spec) { s.Horizon = 65 },
		"shard":   func(s *Spec) { s.FaultLo, s.FaultHi = 1, 5 },
		"circuit": func(s *Spec) { s.Circuit = "b02" },
		"kind":    func(s *Spec) { s.Kind = ATPG; s.Horizon = 0 },
	} {
		sp := base
		mutate(&sp)
		k, err := JobKey(sp)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if k == k1 {
			t.Errorf("%s change did not change the job key", label)
		}
	}
}

// TestSpecValidation covers the prepare rejects.
func TestSpecValidation(t *testing.T) {
	bad := []Spec{
		{Kind: "bogus", Circuit: "b01", Horizon: 8},
		{Kind: FaultSim, Horizon: 8},                                    // no circuit
		{Kind: FaultSim, Circuit: "b01", Bench: "INPUT(a)", Horizon: 8}, // both
		{Kind: FaultSim, Circuit: "b01"},                                // no horizon
		{Kind: FaultSim, Circuit: "nosuch", Horizon: 8},                 // unknown circuit
		{Kind: MutationTG, Bench: "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n"},  // tg needs hdl
		{Kind: FaultSim, Circuit: "b01", Horizon: 8, FaultLo: 5, FaultHi: 2},
		{Kind: ATPG, Circuit: "c17", Operator: "CR"},
		{Kind: MutationTG, Circuit: "b01", Operator: "nosuchop"},
	}
	for i, sp := range bad {
		if _, err := JobKey(sp); err == nil {
			t.Errorf("spec %d accepted: %+v", i, sp)
		}
	}
}

// TestExecuteEngineAndWindowInvariance pins the core cache-soundness
// property directly at the executor: the canonical report bytes of a
// job are identical across engine configurations and window choices.
func TestExecuteEngineAndWindowInvariance(t *testing.T) {
	specs := []Spec{
		{Kind: FaultSim, Circuit: "b01", Seed: 3, Horizon: 96},
		{Kind: FaultSim, Circuit: "c17", Seed: 3, Horizon: 32},
		{Kind: ATPG, Circuit: "c17", Seed: 1},
		{Kind: MutationTG, Circuit: "b02", Seed: 5, MaxLen: 64},
	}
	configs := []engine.Options{
		{Workers: 1, LaneWords: 1},
		{Workers: 2, LaneWords: 4},
		{Workers: 0, LaneWords: 0},
	}
	for _, sp := range specs {
		var want []byte
		for ci, opts := range configs {
			for _, win := range []int{0, 17} {
				if sp.Kind != FaultSim && win != 0 {
					continue
				}
				run := sp
				run.Window = win
				got := mustExecute(t, run, &ExecConfig{Options: opts})
				if want == nil {
					want = got
					continue
				}
				if !bytes.Equal(got, want) {
					t.Errorf("%s/%s cfg=%d win=%d: report differs\n got: %s\nwant: %s",
						sp.Kind, sp.Circuit, ci, win, got, want)
				}
			}
		}
	}
}

// TestFaultSimShardMergeExact: a FaultSim job split into arbitrary fault
// ranges merges to the byte-identical whole-job report.
func TestFaultSimShardMergeExact(t *testing.T) {
	sp := Spec{Kind: FaultSim, Circuit: "b03", Seed: 9, Horizon: 80}
	want := mustExecute(t, sp, nil)
	for _, n := range []int{2, 3, 5} {
		shards, err := Shards(sp, n)
		if err != nil {
			t.Fatal(err)
		}
		if len(shards) != n {
			t.Fatalf("Shards(%d) returned %d shards", n, len(shards))
		}
		reports := make([]*Report, len(shards))
		for i, shard := range shards {
			if reports[i], err = Execute(shard, nil); err != nil {
				t.Fatal(err)
			}
		}
		key, err := JobKey(sp)
		if err != nil {
			t.Fatal(err)
		}
		merged, err := MergeShards(sp, key, reports)
		if err != nil {
			t.Fatal(err)
		}
		got, err := merged.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("n=%d: merged report differs from whole-job report\n got: %s\nwant: %s", n, got, want)
		}
	}
}

// TestCanonicalDecompositions: TG decomposes per operator and ATPG per
// fixed-width chunk regardless of the requested width — their results
// are defined as the merged decomposition, so the decomposition must be
// a function of the spec alone.
func TestCanonicalDecompositions(t *testing.T) {
	tg := Spec{Kind: MutationTG, Circuit: "b02", Seed: 1}
	s3, err := Shards(tg, 3)
	if err != nil {
		t.Fatal(err)
	}
	s7, err := Shards(tg, 7)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(s3) != fmt.Sprint(s7) {
		t.Error("TG decomposition depends on the requested width")
	}
	for _, sh := range s3 {
		if sh.Operator == "" {
			t.Error("TG shard without an operator restriction")
		}
	}
	at := Spec{Kind: ATPG, Circuit: "c432", Seed: 1}
	a2, err := Shards(at, 2)
	if err != nil {
		t.Fatal(err)
	}
	a9, err := Shards(at, 9)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(a2) != fmt.Sprint(a9) {
		t.Error("ATPG decomposition depends on the requested width")
	}
	if len(a2) < 2 {
		t.Fatalf("c432 ATPG did not decompose (got %d shards)", len(a2))
	}
	for i, sh := range a2 {
		if sh.FaultHi-sh.FaultLo > atpgChunk {
			t.Errorf("shard %d wider than the canonical chunk: [%d,%d)", i, sh.FaultLo, sh.FaultHi)
		}
	}
}

// TestExecuteCheckpointResume kills a windowed FaultSim job mid-campaign
// (context cancelled from the progress hook) and resumes it from the
// checkpoint store: the final report must be byte-identical to an
// uninterrupted run, and the store must be emptied on completion.
func TestExecuteCheckpointResume(t *testing.T) {
	sp := Spec{Kind: FaultSim, Circuit: "b03", Seed: 4, Horizon: 120, Window: 20}
	want := mustExecute(t, sp, nil)
	key, err := JobKey(sp)
	if err != nil {
		t.Fatal(err)
	}
	for _, killAfter := range []int{1, 2, 5} {
		st, err := NewCheckpointStore(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		windows := 0
		cfg := &ExecConfig{
			Options: engine.Options{
				Ctx: ctx,
				Progress: func(engine.Stats) {
					if windows++; windows >= killAfter {
						cancel()
					}
				},
			},
			Checkpoints: st,
		}
		if _, err := Execute(sp, cfg); err == nil {
			t.Fatalf("killAfter=%d: interrupted run reported no error", killAfter)
		}
		cancel()
		ck, err := st.Load(key)
		if err != nil {
			t.Fatal(err)
		}
		if ck == nil {
			t.Fatalf("killAfter=%d: no checkpoint saved", killAfter)
		}
		if ck.Applied != killAfter*20 {
			t.Fatalf("killAfter=%d: checkpoint at %d cycles, want %d", killAfter, ck.Applied, killAfter*20)
		}

		// Resume with a fresh store instance over the same directory — the
		// killed-process shape.
		st2, err := NewCheckpointStore(st.dir)
		if err != nil {
			t.Fatal(err)
		}
		got := mustExecute(t, sp, &ExecConfig{Checkpoints: st2})
		if !bytes.Equal(got, want) {
			t.Errorf("killAfter=%d: resumed report differs\n got: %s\nwant: %s", killAfter, got, want)
		}
		if ck, _ := st2.Load(key); ck != nil {
			t.Errorf("killAfter=%d: checkpoint not dropped after completion", killAfter)
		}
	}
}

// TestCacheLRUAndDisk covers the result cache: LRU eviction, disk
// persistence across instances, and the counters.
func TestCacheLRUAndDisk(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(2, dir)
	if err != nil {
		t.Fatal(err)
	}
	c.Put("a", []byte("ra"))
	c.Put("b", []byte("rb"))
	if got := c.Get("a"); !bytes.Equal(got, []byte("ra")) {
		t.Fatalf("Get(a) = %q", got)
	}
	c.Put("c", []byte("rc")) // evicts b (a was just touched)
	st := c.Stats()
	if st.Entries != 2 {
		t.Fatalf("entries = %d, want 2", st.Entries)
	}
	if got := c.Get("b"); !bytes.Equal(got, []byte("rb")) {
		t.Fatalf("evicted entry not reloaded from disk: %q", got)
	}
	st = c.Stats()
	if st.DiskHits != 1 {
		t.Errorf("disk hits = %d, want 1", st.DiskHits)
	}

	// A fresh instance over the same directory serves the old results.
	c2, err := NewCache(2, dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := c2.Get("a"); !bytes.Equal(got, []byte("ra")) {
		t.Fatalf("fresh instance Get(a) = %q", got)
	}

	// Memory-only cache misses cleanly.
	m, err := NewCache(0, "")
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Get("a"); got != nil {
		t.Fatalf("memory cache invented %q", got)
	}
	if st := m.Stats(); st.Misses != 1 || st.Hits != 0 {
		t.Errorf("stats = %+v", st)
	}
}

// TestCacheConcurrentDiskFallback races many Gets of one disk-resident
// key: the disk fallback runs outside the cache mutex, so every racer
// must still get the bytes, exactly one promotion may count as a disk
// hit, and the hit/miss counters must stay exact. Also races a missing
// key, where every racer is one clean miss.
func TestCacheConcurrentDiskFallback(t *testing.T) {
	dir := t.TempDir()
	seed, err := NewCache(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := seed.Put("k", []byte("rk")); err != nil {
		t.Fatal(err)
	}

	// Fresh instance: "k" exists on disk only.
	c, err := NewCache(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	const racers = 16
	var wg sync.WaitGroup
	errc := make(chan error, 2*racers)
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if got := c.Get("k"); !bytes.Equal(got, []byte("rk")) {
				errc <- fmt.Errorf("Get(k) = %q", got)
			}
			if got := c.Get("absent"); got != nil {
				errc <- fmt.Errorf("Get(absent) = %q", got)
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	st := c.Stats()
	if st.Hits != racers {
		t.Errorf("hits = %d, want %d", st.Hits, racers)
	}
	if st.DiskHits != 1 {
		t.Errorf("disk hits = %d, want 1 (one promotion, no double insert)", st.DiskHits)
	}
	if st.Misses != racers {
		t.Errorf("misses = %d, want %d", st.Misses, racers)
	}
	if st.Entries != 1 {
		t.Errorf("entries = %d, want 1", st.Entries)
	}
}

// TestReportEncodeRoundTrip: canonical encoding is stable and decodes
// back to an equal report.
func TestReportEncodeRoundTrip(t *testing.T) {
	rep := &Report{Kind: FaultSim, Key: "k", Fingerprint: "fp", Seed: 3,
		Faults: 2, Detected: 1, Patterns: 8, FirstDetected: []int{4, -1}}
	b1, err := rep.Encode()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := rep.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("Encode not stable")
	}
	back, err := DecodeReport(b1)
	if err != nil {
		t.Fatal(err)
	}
	b3, err := back.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b3) {
		t.Fatal("decode/encode round trip changed the bytes")
	}
	if _, err := DecodeReport([]byte(`{"bogus":1}`)); err == nil {
		t.Error("unknown field accepted")
	}
}

// TestServerEndToEnd drives the full service over HTTP: submit a job
// set, then submit it again — the second pass must be served from cache
// (hit counters, Cached flag) with byte-identical reports. A sharded
// job (c432 ATPG decomposes into canonical chunks) must also match a
// plain in-process Execute of the same spec.
func TestServerEndToEnd(t *testing.T) {
	srv, err := NewServer(ServerConfig{Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	hs := httptest.NewServer(srv)
	defer hs.Close()
	c := &Client{Base: hs.URL}
	ctx := context.Background()

	specs := []Spec{
		{Kind: FaultSim, Circuit: "b01", Seed: 3, Horizon: 96, Window: 32},
		{Kind: ATPG, Circuit: "c432", Seed: 1, MaxBacktracks: 64},
		{Kind: MutationTG, Circuit: "b02", Seed: 5, MaxLen: 64},
	}
	first := make([][]byte, len(specs))
	for i, sp := range specs {
		st, err := c.Submit(ctx, sp)
		if err != nil {
			t.Fatal(err)
		}
		if st, err = c.Wait(ctx, st.ID, 0); err != nil {
			t.Fatal(err)
		}
		if st.State != "done" {
			t.Fatalf("spec %d: job %s: %s", i, st.State, st.Error)
		}
		if st.Cached {
			t.Errorf("spec %d: first run claims cached", i)
		}
		if first[i], err = c.Result(ctx, st.ID); err != nil {
			t.Fatal(err)
		}
		// The served bytes equal a plain in-process Execute: one semantics,
		// whoever computes it.
		if local := mustExecute(t, sp, nil); !bytes.Equal(first[i], local) {
			t.Errorf("spec %d: served report differs from local Execute\n got: %s\nwant: %s", i, first[i], local)
		}
	}
	for i, sp := range specs {
		st, err := c.Submit(ctx, sp)
		if err != nil {
			t.Fatal(err)
		}
		if !st.Cached || st.State != "done" {
			t.Errorf("spec %d: second submit not served from cache: %+v", i, st)
		}
		b, err := c.Result(ctx, st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b, first[i]) {
			t.Errorf("spec %d: cached report differs from first run", i)
		}
	}
	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Cache.Hits < uint64(len(specs)) {
		t.Errorf("cache hits = %d, want >= %d", stats.Cache.Hits, len(specs))
	}
	if stats.Jobs["done"] != 2*len(specs) {
		t.Errorf("done jobs = %d, want %d", stats.Jobs["done"], 2*len(specs))
	}
}

// TestServerPeerFanout runs a two-server deployment: the front server
// fans shards out to a peer, and the merged report is byte-identical to
// a single-machine run. The peer must have executed at least one shard
// (its cache misses prove it).
func TestServerPeerFanout(t *testing.T) {
	peerSrv, err := NewServer(ServerConfig{Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer peerSrv.Close()
	peerHTTP := httptest.NewServer(peerSrv)
	defer peerHTTP.Close()

	front, err := NewServer(ServerConfig{Parallel: 2, Peers: []string{peerHTTP.URL}})
	if err != nil {
		t.Fatal(err)
	}
	defer front.Close()
	frontHTTP := httptest.NewServer(front)
	defer frontHTTP.Close()

	c := &Client{Base: frontHTTP.URL}
	ctx := context.Background()
	sp := Spec{Kind: ATPG, Circuit: "c432", Seed: 2, MaxBacktracks: 64}
	st, err := c.Submit(ctx, sp)
	if err != nil {
		t.Fatal(err)
	}
	if st, err = c.Wait(ctx, st.ID, 0); err != nil {
		t.Fatal(err)
	}
	if st.State != "done" {
		t.Fatalf("job %s: %s", st.State, st.Error)
	}
	got, err := c.Result(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if want := mustExecute(t, sp, nil); !bytes.Equal(got, want) {
		t.Errorf("fanned-out report differs from single-machine run\n got: %s\nwant: %s", got, want)
	}
	if st := peerSrv.cache.Stats(); st.Misses == 0 {
		t.Error("peer executed nothing")
	}
}

// TestExecuteEndpoint exercises the synchronous endpoint and its cache
// header.
func TestExecuteEndpoint(t *testing.T) {
	srv, err := NewServer(ServerConfig{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	hs := httptest.NewServer(srv)
	defer hs.Close()
	c := &Client{Base: hs.URL}
	ctx := context.Background()
	sp := Spec{Kind: FaultSim, Circuit: "c17", Seed: 1, Horizon: 16}
	b1, cached, err := c.Execute(ctx, sp)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Error("first execute claims cached")
	}
	b2, cached, err := c.Execute(ctx, sp)
	if err != nil {
		t.Fatal(err)
	}
	if !cached {
		t.Error("second execute not served from cache")
	}
	if !bytes.Equal(b1, b2) {
		t.Error("cached bytes differ")
	}
}
