package campaign

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"repro/internal/engine"
)

// ServerConfig configures a campaign server.
type ServerConfig struct {
	// Exec carries the execution knobs (engine Workers/LaneWords) and the
	// optional checkpoint store local jobs run under. The Ctx and
	// Progress fields are ignored: each job gets its own cancellation
	// context and progress aggregation.
	Exec ExecConfig
	// Cache is the content-addressed result store (a memory-only default
	// is created when nil).
	Cache *Cache
	// Parallel bounds concurrently executing local shards (default 2).
	Parallel int
	// ShardsPerJob is the decomposition width offered to Shards for each
	// submitted job (default: Parallel plus one per peer; 1 disables
	// sharding).
	ShardsPerJob int
	// Peers lists base URLs of remote campaign servers (e.g.
	// "http://host:9190") that shard execution fans out to, round-robin
	// with the local pool.
	Peers []string
}

// jobState is the lifecycle of a submitted job.
type jobState string

const (
	statePending   jobState = "pending"
	stateRunning   jobState = "running"
	stateDone      jobState = "done"
	stateFailed    jobState = "failed"
	stateCancelled jobState = "cancelled"
)

// JobStatus is the wire form of a job's observable state.
type JobStatus struct {
	ID    string `json:"id"`
	Key   Key    `json:"key"`
	State string `json:"state"`
	// Cached reports that the result was served from the content cache
	// without executing.
	Cached bool   `json:"cached"`
	Error  string `json:"error,omitempty"`
	// Done/Total aggregate per-shard progress (windows for FaultSim jobs,
	// targets for MutationTG/ATPG ones).
	Done  int `json:"done"`
	Total int `json:"total"`
}

// Stats is the /v1/stats payload.
type Stats struct {
	Cache CacheStats     `json:"cache"`
	Jobs  map[string]int `json:"jobs"`
}

type job struct {
	id     string
	key    Key
	spec   Spec
	cancel context.CancelFunc

	mu       sync.Mutex
	state    jobState
	cached   bool
	err      error
	progress []engine.Stats // one slot per shard
	result   []byte         // canonical report bytes when done
}

func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{ID: j.id, Key: j.key, State: string(j.state), Cached: j.cached}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	for _, p := range j.progress {
		st.Done += p.Done
		st.Total += p.Total
	}
	return st
}

// Server is the campaign job service: it accepts job submissions,
// serves repeats from the content-addressed cache, decomposes fresh
// jobs into shards, executes them across local worker slots and remote
// peers, and merges shard reports. It implements http.Handler.
type Server struct {
	cfg   ServerConfig
	cache *Cache
	mux   *http.ServeMux
	slots chan struct{} // local execution slots

	mu     sync.Mutex
	nextID int
	jobs   map[string]*job
	wg     sync.WaitGroup
}

// NewServer builds a campaign server from the configuration.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Parallel <= 0 {
		cfg.Parallel = 2
	}
	if cfg.ShardsPerJob <= 0 {
		cfg.ShardsPerJob = cfg.Parallel + len(cfg.Peers)
	}
	cache := cfg.Cache
	if cache == nil {
		var err error
		if cache, err = NewCache(0, ""); err != nil {
			return nil, err
		}
	}
	s := &Server{
		cfg:   cfg,
		cache: cache,
		mux:   http.NewServeMux(),
		slots: make(chan struct{}, cfg.Parallel),
		jobs:  make(map[string]*job),
	}
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("POST /v1/execute", s.handleExecute)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	return s, nil
}

// ServeHTTP dispatches to the v1 API.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Close cancels every running job and waits for workers to drain.
func (s *Server) Close() {
	s.mu.Lock()
	for _, j := range s.jobs {
		j.cancel()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	http.Error(w, fmt.Sprintf(format, args...), code)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func decodeSpec(w http.ResponseWriter, r *http.Request) (Spec, bool) {
	var sp Spec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sp); err != nil {
		httpError(w, http.StatusBadRequest, "decoding job spec: %v", err)
		return sp, false
	}
	return sp, true
}

// handleSubmit registers a job and starts it. A cache hit completes the
// job synchronously without executing anything.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	sp, ok := decodeSpec(w, r)
	if !ok {
		return
	}
	key, err := JobKey(sp)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	j := &job{key: key, spec: sp, cancel: cancel, state: statePending}
	s.mu.Lock()
	s.nextID++
	j.id = fmt.Sprintf("j%d", s.nextID)
	s.jobs[j.id] = j
	s.mu.Unlock()

	if b := s.cache.Get(key); b != nil {
		j.mu.Lock()
		j.state, j.cached, j.result = stateDone, true, b
		j.mu.Unlock()
		cancel()
		writeJSON(w, j.status())
		return
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer cancel()
		s.runJob(ctx, j)
	}()
	writeJSON(w, j.status())
}

func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *job {
	s.mu.Lock()
	j := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if j == nil {
		httpError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
	}
	return j
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j := s.lookup(w, r); j != nil {
		writeJSON(w, j.status())
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	j.mu.Lock()
	state, result, err := j.state, j.result, j.err
	j.mu.Unlock()
	switch state {
	case stateDone:
		w.Header().Set("Content-Type", "application/json")
		w.Write(result)
	case stateFailed, stateCancelled:
		httpError(w, http.StatusConflict, "job %s %s: %v", j.id, state, err)
	default:
		httpError(w, http.StatusConflict, "job %s still %s", j.id, state)
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	if j := s.lookup(w, r); j != nil {
		j.cancel()
		w.WriteHeader(http.StatusNoContent)
	}
}

// handleExecute runs one spec synchronously and returns its canonical
// report bytes — the endpoint peers use for shard fan-out. The
// X-Repro-Cache trailer-free header reports hit or miss.
func (s *Server) handleExecute(w http.ResponseWriter, r *http.Request) {
	sp, ok := decodeSpec(w, r)
	if !ok {
		return
	}
	key, err := JobKey(sp)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if b := s.cache.Get(key); b != nil {
		w.Header().Set("X-Repro-Cache", "hit")
		w.Header().Set("Content-Type", "application/json")
		w.Write(b)
		return
	}
	b, err := s.executeLocal(r.Context(), sp, nil)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("X-Repro-Cache", "miss")
	w.Header().Set("Content-Type", "application/json")
	w.Write(b)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := Stats{Cache: s.cache.Stats(), Jobs: make(map[string]int)}
	s.mu.Lock()
	for _, j := range s.jobs {
		j.mu.Lock()
		st.Jobs[string(j.state)]++
		j.mu.Unlock()
	}
	s.mu.Unlock()
	writeJSON(w, st)
}

// executeLocal runs one spec on a local worker slot, consulting and
// feeding the cache, and returns the canonical report bytes.
func (s *Server) executeLocal(ctx context.Context, sp Spec, progress func(engine.Stats)) ([]byte, error) {
	key, err := JobKey(sp)
	if err != nil {
		return nil, err
	}
	if b := s.cache.Get(key); b != nil {
		return b, nil
	}
	select {
	case s.slots <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	defer func() { <-s.slots }()
	cfg := s.cfg.Exec
	cfg.Ctx = ctx
	cfg.Progress = progress
	rep, err := Execute(sp, &cfg)
	if err != nil {
		return nil, err
	}
	b, err := rep.Encode()
	if err != nil {
		return nil, err
	}
	if err := s.cache.Put(key, b); err != nil {
		return nil, err
	}
	return b, nil
}

// executeRemote runs one spec on a peer via its /v1/execute endpoint and
// feeds the local cache with the returned bytes.
func (s *Server) executeRemote(ctx context.Context, peer string, sp Spec, key Key) ([]byte, error) {
	c := &Client{Base: peer}
	b, _, err := c.execute(ctx, sp)
	if err != nil {
		return nil, err
	}
	if err := s.cache.Put(key, b); err != nil {
		return nil, err
	}
	return b, nil
}

// runJob executes one submitted job: decompose into shards, fan the
// shards across the local pool and the peers, merge, cache, complete.
func (s *Server) runJob(ctx context.Context, j *job) {
	b, err := s.runSharded(ctx, j)
	j.mu.Lock()
	defer j.mu.Unlock()
	switch {
	case err == nil:
		j.state, j.result = stateDone, b
	case ctx.Err() != nil:
		j.state, j.err = stateCancelled, ctx.Err()
	default:
		j.state, j.err = stateFailed, err
	}
}

func (s *Server) runSharded(ctx context.Context, j *job) ([]byte, error) {
	j.mu.Lock()
	j.state = stateRunning
	j.mu.Unlock()

	shards, err := Shards(j.spec, s.cfg.ShardsPerJob)
	if err != nil {
		return nil, err
	}
	if shards == nil {
		// Indivisible job: run it whole on the local pool.
		j.mu.Lock()
		j.progress = make([]engine.Stats, 1)
		j.mu.Unlock()
		return s.executeLocal(ctx, j.spec, j.progressSink(0))
	}
	j.mu.Lock()
	j.progress = make([]engine.Stats, len(shards))
	j.mu.Unlock()

	reports := make([]*Report, len(shards))
	errs := make([]error, len(shards))
	var wg sync.WaitGroup
	for i, shard := range shards {
		wg.Add(1)
		go func(i int, shard Spec) {
			defer wg.Done()
			reports[i], errs[i] = s.runShard(ctx, j, i, shard)
		}(i, shard)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	key, err := JobKey(j.spec)
	if err != nil {
		return nil, err
	}
	merged, err := MergeShards(j.spec, key, reports)
	if err != nil {
		return nil, err
	}
	b, err := merged.Encode()
	if err != nil {
		return nil, err
	}
	if err := s.cache.Put(key, b); err != nil {
		return nil, err
	}
	return b, nil
}

// runShard executes shard i of a job, round-robining across the local
// pool (slot 0) and the configured peers, with a local fallback when a
// peer is unreachable.
func (s *Server) runShard(ctx context.Context, j *job, i int, shard Spec) (*Report, error) {
	key, err := JobKey(shard)
	if err != nil {
		return nil, err
	}
	if target := i % (1 + len(s.cfg.Peers)); target > 0 {
		b, err := s.executeRemote(ctx, s.cfg.Peers[target-1], shard, key)
		if err == nil {
			j.progressSink(i)(engine.Stats{Done: 1, Total: 1})
			return DecodeReport(b)
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		// Peer failure is not job failure: fall through to local execution.
	}
	b, err := s.executeLocal(ctx, shard, j.progressSink(i))
	if err != nil {
		return nil, err
	}
	return DecodeReport(b)
}

// progressSink returns the progress hook for shard i of the job.
func (j *job) progressSink(i int) func(engine.Stats) {
	return func(st engine.Stats) {
		j.mu.Lock()
		if i < len(j.progress) {
			j.progress[i] = st
		}
		j.mu.Unlock()
	}
}
