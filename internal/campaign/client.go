package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// Client talks to a campaign server's v1 API.
type Client struct {
	// Base is the server's base URL, e.g. "http://localhost:9190".
	Base string
	// HTTP overrides the transport (http.DefaultClient when nil).
	HTTP *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) do(ctx context.Context, method, path string, body any) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return nil, err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	return c.http().Do(req)
}

// fail drains an error response into an error value.
func fail(resp *http.Response) error {
	b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	return fmt.Errorf("campaign: server returned %s: %s", resp.Status, bytes.TrimSpace(b))
}

// Submit registers a job and returns its initial status; a cache hit
// comes back already done.
func (c *Client) Submit(ctx context.Context, sp Spec) (*JobStatus, error) {
	resp, err := c.do(ctx, http.MethodPost, "/v1/jobs", sp)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fail(resp)
	}
	st := new(JobStatus)
	return st, json.NewDecoder(resp.Body).Decode(st)
}

// Status fetches a job's current status.
func (c *Client) Status(ctx context.Context, id string) (*JobStatus, error) {
	resp, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fail(resp)
	}
	st := new(JobStatus)
	return st, json.NewDecoder(resp.Body).Decode(st)
}

// Result fetches a finished job's canonical report bytes.
func (c *Client) Result(ctx context.Context, id string) ([]byte, error) {
	resp, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/result", nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fail(resp)
	}
	return io.ReadAll(resp.Body)
}

// Cancel asks the server to cancel a job.
func (c *Client) Cancel(ctx context.Context, id string) error {
	resp, err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return fail(resp)
	}
	return nil
}

// Wait polls a job until it leaves the pending/running states and
// returns its final status (nil error even for failed jobs — the state
// tells). Poll defaults to 100ms.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (*JobStatus, error) {
	if poll <= 0 {
		poll = 100 * time.Millisecond
	}
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return nil, err
		}
		switch jobState(st.State) {
		case statePending, stateRunning:
		default:
			return st, nil
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(poll):
		}
	}
}

// Execute runs one spec synchronously on the server and returns the
// canonical report bytes plus whether the server served it from cache.
func (c *Client) Execute(ctx context.Context, sp Spec) (report []byte, cached bool, err error) {
	return c.execute(ctx, sp)
}

func (c *Client) execute(ctx context.Context, sp Spec) ([]byte, bool, error) {
	resp, err := c.do(ctx, http.MethodPost, "/v1/execute", sp)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, false, fail(resp)
	}
	b, err := io.ReadAll(resp.Body)
	return b, resp.Header.Get("X-Repro-Cache") == "hit", err
}

// Stats fetches the server's cache and job counters.
func (c *Client) Stats(ctx context.Context) (*Stats, error) {
	resp, err := c.do(ctx, http.MethodGet, "/v1/stats", nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fail(resp)
	}
	st := new(Stats)
	return st, json.NewDecoder(resp.Body).Decode(st)
}
