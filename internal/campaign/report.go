package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"

	"repro/internal/engine"
	"repro/internal/faultsim"
)

// Report is a campaign job result: plain counters, profiles and content
// hashes — never session-owned views — so it serializes, caches and
// merges freely. The cache and the wire carry reports only in their
// canonical encoding (Encode), which is what the byte-identity
// assertions in difftest and the CI smoke compare.
type Report struct {
	Kind        Kind   `json:"kind"`
	Key         Key    `json:"key"`
	Fingerprint string `json:"fingerprint"`
	Circuit     string `json:"circuit,omitempty"`
	Seed        int64  `json:"seed"`

	// Faults is the number of faults the job targeted (FaultSim, ATPG).
	Faults int `json:"faults,omitempty"`
	// Detected counts detections among the targeted faults.
	Detected int `json:"detected,omitempty"`

	// FaultSim: applied pattern/cycle count and the first-detection
	// profile over the full collapsed fault list (global indices, -1
	// outside the shard or undetected) — full length so disjoint shard
	// profiles merge element-wise.
	Patterns      int   `json:"patterns,omitempty"`
	FirstDetected []int `json:"firstdetected,omitempty"`

	// MutationTG: targeted/killed mutants, greedy rounds, total sequence
	// cycles, and the content hash of the generated stimulus.
	Targets int    `json:"targets,omitempty"`
	Killed  int    `json:"killed,omitempty"`
	Rounds  int    `json:"rounds,omitempty"`
	SeqLen  int    `json:"seqlen,omitempty"`
	SeqHash string `json:"seqhash,omitempty"`

	// ATPG: classification counters, search effort, generated test count
	// and the content hash of the generated tests.
	Redundant  int    `json:"redundant,omitempty"`
	Aborted    int    `json:"aborted,omitempty"`
	Backtracks int    `json:"backtracks,omitempty"`
	PodemCalls int    `json:"podemcalls,omitempty"`
	Vectors    int    `json:"vectors,omitempty"`
	TestHash   string `json:"testhash,omitempty"`
}

// Encode renders the report in its canonical byte form: encoding/json
// with the struct's fixed field order, one trailing newline. Equal
// reports encode to equal bytes, which is the form the cache stores and
// the equality the end-to-end tests assert.
//
//repro:deterministic
func (r *Report) Encode() ([]byte, error) {
	b, err := json.Marshal(r)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// DecodeReport parses a canonically encoded report.
func DecodeReport(b []byte) (*Report, error) {
	r := new(Report)
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(r); err != nil {
		return nil, fmt.Errorf("campaign: decoding report: %w", err)
	}
	return r, nil
}

// hashPatterns content-hashes an ordered pattern set.
//
//repro:deterministic
func hashPatterns(tag string, tests []faultsim.Pattern) string {
	d := engine.NewDigest(tag)
	d.Int("n", int64(len(tests)))
	for _, p := range tests {
		d.Str("p", string(p))
	}
	return d.Sum()
}

// hashTests content-hashes an ordered set of pattern sequences.
//
//repro:deterministic
func hashTests(tag string, tests [][]faultsim.Pattern) string {
	d := engine.NewDigest(tag)
	d.Int("n", int64(len(tests)))
	for _, t := range tests {
		d.Str("t", hashPatterns(tag, t))
	}
	return d.Sum()
}

// MergeShards combines disjoint shard reports into the report of the
// parent job they decompose (Shards). The FaultSim merge is exact — the
// parent's report as if never sharded, first-detection profiles
// interleaving element-wise because shards own disjoint fault ranges and
// lanes are independent. MutationTG and ATPG merges ARE the parent
// job's definition (shard results couple within a shard, so no merge
// could reconstruct an unsharded run; instead the job means "the
// canonical decomposition, merged"): counters sum and the per-shard
// content hashes chain in shard order. The shard order is the Shards
// order, which is deterministic, so merged reports are
// content-addressable like any other.
//
//repro:deterministic
func MergeShards(parent Spec, parentKey Key, shards []*Report) (*Report, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("campaign: no shard reports to merge")
	}
	out := &Report{
		Kind:        parent.Kind,
		Key:         parentKey,
		Fingerprint: shards[0].Fingerprint,
		Circuit:     parent.Circuit,
		Seed:        parent.Seed,
	}
	for i, sh := range shards {
		if sh == nil {
			return nil, fmt.Errorf("campaign: missing shard report %d", i)
		}
		if sh.Kind != parent.Kind {
			return nil, fmt.Errorf("campaign: shard %d is a %q report, parent is %q", i, sh.Kind, parent.Kind)
		}
		if sh.Fingerprint != out.Fingerprint {
			return nil, fmt.Errorf("campaign: shard %d fingerprints a different netlist", i)
		}
	}
	switch parent.Kind {
	case FaultSim:
		out.Patterns = shards[0].Patterns
		out.FirstDetected = append([]int(nil), shards[0].FirstDetected...)
		for i, sh := range shards[1:] {
			if sh.Patterns != out.Patterns {
				return nil, fmt.Errorf("campaign: shard %d applied %d patterns, shard 0 applied %d",
					i+1, sh.Patterns, out.Patterns)
			}
			if len(sh.FirstDetected) != len(out.FirstDetected) {
				return nil, fmt.Errorf("campaign: shard %d profiles %d faults, shard 0 profiles %d",
					i+1, len(sh.FirstDetected), len(out.FirstDetected))
			}
			for fi, d := range sh.FirstDetected {
				if d < 0 {
					continue
				}
				if out.FirstDetected[fi] >= 0 {
					return nil, fmt.Errorf("campaign: fault %d detected by two shards; shards must be disjoint", fi)
				}
				out.FirstDetected[fi] = d
			}
		}
		for _, sh := range shards {
			out.Faults += sh.Faults
		}
		for _, d := range out.FirstDetected {
			if d >= 0 {
				out.Detected++
			}
		}
	case MutationTG:
		d := engine.NewDigest("campaign/tg/merge")
		for _, sh := range shards {
			out.Targets += sh.Targets
			out.Killed += sh.Killed
			out.Rounds += sh.Rounds
			out.SeqLen += sh.SeqLen
			d.Str("seq", sh.SeqHash)
		}
		out.SeqHash = d.Sum()
	case ATPG:
		d := engine.NewDigest("campaign/atpg/merge")
		for _, sh := range shards {
			out.Faults += sh.Faults
			out.Detected += sh.Detected
			out.Redundant += sh.Redundant
			out.Aborted += sh.Aborted
			out.Backtracks += sh.Backtracks
			out.PodemCalls += sh.PodemCalls
			out.Vectors += sh.Vectors
			d.Str("tests", sh.TestHash)
		}
		out.TestHash = d.Sum()
	default:
		return nil, fmt.Errorf("campaign: unknown job kind %q", parent.Kind)
	}
	return out, nil
}
