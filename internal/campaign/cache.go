package campaign

import (
	"container/list"
	"encoding/gob"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/faultsim"
)

// Cache is the content-addressed result store: canonical report bytes
// keyed by job Key, an in-memory LRU backed by an optional disk store.
// Because keys are content addresses — equal key implies equal bytes —
// eviction and crash loss are always safe: the worst case is
// re-simulating, never serving a wrong result. Entries store the
// canonical encoding rather than decoded reports so a cache hit returns
// the exact bytes the first computation produced (the byte-identity the
// end-to-end tests assert), and so disk and memory agree trivially.
//
// Cache is safe for concurrent use.
type Cache struct {
	mu     sync.Mutex
	cap    int
	lru    *list.List // front = most recent; values are *cacheEntry
	byKey  map[Key]*list.Element
	dir    string // "" = memory only
	hits   uint64
	misses uint64
	disk   uint64 // hits served from the disk store
}

type cacheEntry struct {
	key   Key
	bytes []byte
}

// NewCache builds a cache holding up to capacity reports in memory
// (default 1024 when capacity <= 0), persisted under dir when non-empty
// (created if missing; files named <key>.report survive restarts).
func NewCache(capacity int, dir string) (*Cache, error) {
	if capacity <= 0 {
		capacity = 1024
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("campaign: cache dir: %w", err)
		}
	}
	return &Cache{
		cap:   capacity,
		lru:   list.New(),
		byKey: make(map[Key]*list.Element),
		dir:   dir,
	}, nil
}

// Get returns the canonical report bytes cached under key, or nil. The
// returned slice is shared — callers must not mutate it.
//
// The disk fallback reads outside the mutex: holding c.mu across
// os.ReadFile would stall every concurrent Get (including pure memory
// hits for other keys) behind one slow disk read. Dropping the lock
// means another Get can race us to the same key; the re-check after the
// read classifies that case as a plain memory hit, keeping the
// hit/miss/disk counters exact — one promotion, no double insert.
func (c *Cache) Get(key Key) []byte {
	c.mu.Lock()
	if el, ok := c.byKey[key]; ok {
		c.lru.MoveToFront(el)
		c.hits++
		b := el.Value.(*cacheEntry).bytes
		c.mu.Unlock()
		return b
	}
	if c.dir == "" {
		c.misses++
		c.mu.Unlock()
		return nil
	}
	c.mu.Unlock()
	b, err := os.ReadFile(c.diskPath(key))
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		// A racing Get or Put inserted the key while we were on disk:
		// serve memory. Content addressing makes the bytes equal, so it
		// does not matter whose copy wins.
		c.lru.MoveToFront(el)
		c.hits++
		return el.Value.(*cacheEntry).bytes
	}
	if err != nil {
		c.misses++
		return nil
	}
	c.insert(key, b)
	c.hits++
	c.disk++
	return b
}

// Put stores the canonical report bytes under key. Storing a key twice
// is a no-op: content addressing guarantees the bytes are equal, and the
// first write wins keeps the disk file stable.
func (c *Cache) Put(key Key, b []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.byKey[key]; !ok {
		c.insert(key, b)
	}
	if c.dir == "" {
		return nil
	}
	path := c.diskPath(key)
	if _, err := os.Stat(path); err == nil {
		return nil
	}
	return atomicWrite(path, b)
}

// insert adds an entry at the LRU front, evicting from the back past
// capacity. Callers hold c.mu.
func (c *Cache) insert(key Key, b []byte) {
	c.byKey[key] = c.lru.PushFront(&cacheEntry{key: key, bytes: b})
	for c.lru.Len() > c.cap {
		el := c.lru.Back()
		c.lru.Remove(el)
		delete(c.byKey, el.Value.(*cacheEntry).key)
	}
}

func (c *Cache) diskPath(key Key) string {
	return filepath.Join(c.dir, string(key)+".report")
}

// CacheStats is a point-in-time counter snapshot.
type CacheStats struct {
	Hits     uint64 `json:"hits"`
	Misses   uint64 `json:"misses"`
	DiskHits uint64 `json:"diskhits"`
	Entries  int    `json:"entries"`
}

// Stats snapshots the hit/miss counters — the observable the CI smoke
// asserts when it replays a job set against a warm server.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, DiskHits: c.disk, Entries: c.lru.Len()}
}

// atomicWrite writes b to path via a same-directory temp file + rename,
// so concurrent writers and crashes never leave a torn file.
func atomicWrite(path string, b []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// CheckpointStore persists FaultSim window checkpoints by job key: in
// memory, and as gob files under dir when configured — the form that
// survives a killed server process. Stored checkpoints are owned by the
// store.
//
// CheckpointStore is safe for concurrent use (distinct keys; the
// campaign server never runs two jobs with the same key concurrently).
type CheckpointStore struct {
	mu  sync.Mutex
	dir string
	mem map[Key]*faultsim.Checkpoint
}

// NewCheckpointStore builds a checkpoint store, persisted under dir when
// non-empty (created if missing).
func NewCheckpointStore(dir string) (*CheckpointStore, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("campaign: checkpoint dir: %w", err)
		}
	}
	return &CheckpointStore{dir: dir, mem: make(map[Key]*faultsim.Checkpoint)}, nil
}

func (st *CheckpointStore) path(key Key) string {
	return filepath.Join(st.dir, string(key)+".ckpt")
}

// Save records the checkpoint for a job, replacing any previous one.
func (st *CheckpointStore) Save(key Key, ck *faultsim.Checkpoint) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.mem[key] = ck
	if st.dir == "" {
		return nil
	}
	f, err := os.CreateTemp(st.dir, string(key)+".tmp*")
	if err != nil {
		return err
	}
	err = gob.NewEncoder(f).Encode(ck)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(f.Name())
		return err
	}
	return os.Rename(f.Name(), st.path(key))
}

// Load returns the stored checkpoint for a job, or (nil, nil) when none
// exists. Memory wins over disk; a disk checkpoint survives the process
// that wrote it.
func (st *CheckpointStore) Load(key Key) (*faultsim.Checkpoint, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if ck, ok := st.mem[key]; ok {
		return ck, nil
	}
	if st.dir == "" {
		return nil, nil
	}
	f, err := os.Open(st.path(key))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	ck := new(faultsim.Checkpoint)
	if err := gob.NewDecoder(f).Decode(ck); err != nil {
		return nil, fmt.Errorf("campaign: decoding checkpoint %s: %w", key, err)
	}
	st.mem[key] = ck
	return ck, nil
}

// Drop removes a job's checkpoint (no-op when absent) — called when the
// job completes or its checkpoint proves stale.
func (st *CheckpointStore) Drop(key Key) {
	st.mu.Lock()
	defer st.mu.Unlock()
	delete(st.mem, key)
	if st.dir != "" {
		os.Remove(st.path(key))
	}
}
