// Package campaign is the distributed campaign service: long-running
// fault-simulation, mutation-TG and ATPG work decomposed into
// deterministic jobs that shard across local worker goroutines and
// remote worker processes, with a content-addressed result cache and
// checkpoint/resume for long sequential campaigns.
//
// Every job is keyed by content: the netlist fingerprint
// (netlist.Fingerprint, stable across processes), the seed, and a
// canonical digest of the job's semantic options (engine.Digest). The
// engine execution knobs — Workers, LaneWords — are deliberately
// excluded from the key: results are bit-identical for every engine
// setting (the repository's oldest invariant, pinned by the parity
// suites and internal/difftest), so a result computed once serves every
// later request for the same work regardless of who computes it or on
// how many cores. Shard results merge by construction for the same
// reason: each shard is deterministic per seed and owns a disjoint
// fault (or operator) subset.
package campaign

import (
	"fmt"
	"strings"

	"repro/internal/circuits"
	"repro/internal/engine"
	"repro/internal/faultsim"
	"repro/internal/hdl"
	"repro/internal/mutation"
	"repro/internal/netlist"
	"repro/internal/synth"
)

// Kind enumerates the campaign job families.
type Kind string

// Job kinds.
const (
	// FaultSim fault-simulates Horizon cycles of seed-derived
	// pseudo-random stimulus, optionally restricted to the fault shard
	// [FaultLo,FaultHi), appended in Window-cycle checkpointable windows.
	FaultSim Kind = "faultsim"
	// MutationTG runs one mutation-driven test-generation round over the
	// circuit's mutant population (one operator class when Operator is
	// set — the natural shard of a TG campaign).
	MutationTG Kind = "tg"
	// ATPG runs deterministic PODEM (time-frame expansion when the
	// circuit is sequential) over the fault shard [FaultLo,FaultHi).
	ATPG Kind = "atpg"
)

// Spec describes one campaign job. It is plain data — JSON over the
// wire, hashable into a Key — and fully determines the job's result:
// execution is deterministic per spec, whatever engine configuration
// runs it.
type Spec struct {
	Kind Kind `json:"kind"`
	// Circuit names a benchmark from internal/circuits. Bench instead
	// carries an inline ISCAS-89 .bench netlist (gate-level kinds only:
	// FaultSim and ATPG — MutationTG needs the behavioral source).
	// Exactly one of the two must be set.
	Circuit string `json:"circuit,omitempty"`
	Bench   string `json:"bench,omitempty"`
	// Seed drives every pseudo-random choice of the job (stimulus,
	// don't-care fill).
	Seed int64 `json:"seed"`

	// Horizon is the pseudo-random stimulus length of a FaultSim job.
	Horizon int `json:"horizon,omitempty"`
	// Window is the FaultSim append-window size in cycles: the
	// checkpoint grain of a long campaign. 0 applies the whole horizon
	// in one window. Windowing never changes results (chunked Appends
	// are bit-identical to one-shot runs), so Window is excluded from
	// the job key.
	Window int `json:"window,omitempty"`

	// FaultLo/FaultHi restrict FaultSim and ATPG jobs to the collapsed
	// fault-list index range [FaultLo,FaultHi) — the shard coordinate.
	// Both zero means the whole list.
	FaultLo int `json:"faultlo,omitempty"`
	FaultHi int `json:"faulthi,omitempty"`

	// Operator restricts a MutationTG job's population to one mutation
	// operator (empty targets every mutant).
	Operator string `json:"operator,omitempty"`
	// MaxLen bounds a MutationTG job's sequence length (0 = tpg default).
	MaxLen int `json:"maxlen,omitempty"`

	// Frames is the ATPG time-frame depth for sequential circuits
	// (0 = atpg default); ignored for combinational ones.
	Frames int `json:"frames,omitempty"`
	// MaxBacktracks bounds the PODEM search per fault (0 = atpg default).
	MaxBacktracks int `json:"maxbacktracks,omitempty"`
}

// Key is a content-addressed job identity: equal keys mean equal
// results, byte for byte. It is derived from the netlist fingerprint,
// the seed and the semantic option digest — never from execution knobs.
type Key string

// prepared is an elaborated spec: the artifacts execution and keying
// share. The hdl circuit is nil for inline-.bench jobs.
type prepared struct {
	spec   Spec
	c      *hdl.Circuit
	nl     *netlist.Netlist
	fp     string
	faults []faultsim.Fault
}

// prepare validates a spec and elaborates its circuit: load (or parse),
// synthesize, fingerprint, and enumerate the collapsed fault list.
func prepare(sp Spec) (*prepared, error) {
	switch sp.Kind {
	case FaultSim, MutationTG, ATPG:
	default:
		return nil, fmt.Errorf("campaign: unknown job kind %q", sp.Kind)
	}
	if (sp.Circuit == "") == (sp.Bench == "") {
		return nil, fmt.Errorf("campaign: exactly one of circuit and bench must be set")
	}
	if sp.Kind == FaultSim && sp.Horizon <= 0 {
		return nil, fmt.Errorf("campaign: faultsim job needs a positive horizon")
	}
	if sp.Window < 0 || sp.Horizon < 0 || sp.MaxLen < 0 || sp.Frames < 0 || sp.MaxBacktracks < 0 {
		return nil, fmt.Errorf("campaign: negative job parameter")
	}
	pr := &prepared{spec: sp}
	var err error
	if sp.Circuit != "" {
		if pr.c, err = circuits.Load(sp.Circuit); err != nil {
			return nil, err
		}
		if pr.nl, err = synth.Synthesize(pr.c); err != nil {
			return nil, err
		}
	} else {
		if sp.Kind == MutationTG {
			return nil, fmt.Errorf("campaign: mutation-TG jobs need a named behavioral circuit, not an inline netlist")
		}
		if pr.nl, err = netlist.ReadBench(strings.NewReader(sp.Bench), "bench"); err != nil {
			return nil, err
		}
	}
	if pr.fp, err = pr.nl.Fingerprint(); err != nil {
		return nil, err
	}
	pr.faults = faultsim.Faults(pr.nl)
	if sp.FaultLo != 0 || sp.FaultHi != 0 {
		if sp.Kind == MutationTG {
			return nil, fmt.Errorf("campaign: fault shards do not apply to mutation-TG jobs")
		}
		if sp.FaultLo < 0 || sp.FaultHi > len(pr.faults) || sp.FaultLo >= sp.FaultHi {
			return nil, fmt.Errorf("campaign: fault shard [%d,%d) out of range [0,%d)",
				sp.FaultLo, sp.FaultHi, len(pr.faults))
		}
	}
	if sp.Operator != "" {
		if sp.Kind != MutationTG {
			return nil, fmt.Errorf("campaign: operator restriction applies only to mutation-TG jobs")
		}
		if _, err := mutation.ParseOperator(sp.Operator); err != nil {
			return nil, err
		}
	}
	return pr, nil
}

// key derives the content-addressed job key. The stimulus domain tag
// distinguishes jobs whose pseudo-random stimulus derives through the
// behavioral port list (named circuits — the flow-compatible
// tpg.RawRandomSequence draw order) from jobs that draw per netlist PI
// (inline .bench), since the two generators produce different patterns
// for the same seed. Window is excluded: chunking is bit-invariant.
//
//repro:deterministic
func (pr *prepared) key() Key {
	sp := pr.spec
	d := engine.NewDigest(string(sp.Kind))
	// Schema version: bump when job semantics change (a canonical
	// decomposition constant, a stimulus generator), so stale disk caches
	// can never alias results of the new semantics.
	d.Int("v", 1)
	d.Str("netlist", pr.fp)
	d.Int("seed", sp.Seed)
	switch sp.Kind {
	case FaultSim:
		d.Str("stim", pr.stimTag())
		d.Int("horizon", int64(sp.Horizon))
		d.Int("faultlo", int64(sp.FaultLo))
		d.Int("faulthi", int64(sp.FaultHi))
	case MutationTG:
		// The mutant population derives from the behavioral source, which
		// the netlist fingerprint does not fully determine — include the
		// benchmark name.
		d.Str("circuit", sp.Circuit)
		d.Str("operator", sp.Operator)
		d.Int("maxlen", int64(sp.MaxLen))
	case ATPG:
		d.Int("frames", int64(sp.Frames))
		d.Int("maxbacktracks", int64(sp.MaxBacktracks))
		d.Int("faultlo", int64(sp.FaultLo))
		d.Int("faulthi", int64(sp.FaultHi))
	}
	return Key(d.Sum())
}

// stimTag names the stimulus derivation domain; see key.
func (pr *prepared) stimTag() string {
	if pr.c != nil {
		return "hdl:" + pr.spec.Circuit
	}
	return "pi"
}

// JobKey computes a spec's content-addressed key (elaborating the
// circuit to fingerprint it). Servers compute keys themselves; clients
// only need this to predict cache identity.
func JobKey(sp Spec) (Key, error) {
	pr, err := prepare(sp)
	if err != nil {
		return "", err
	}
	return pr.key(), nil
}

// shardRange returns the fault-index range a FaultSim/ATPG spec covers.
func (sp Spec) shardRange(nFaults int) (lo, hi int) {
	if sp.FaultLo == 0 && sp.FaultHi == 0 {
		return 0, nFaults
	}
	return sp.FaultLo, sp.FaultHi
}

// atpgChunk is the canonical ATPG shard width in collapsed faults.
// ATPG results couple faults within a run (fault dropping: earlier
// vectors retire later targets), so unlike FaultSim an ATPG decomposition
// is NOT merge-equal to an unsharded run — which is why the decomposition
// must be a function of the spec alone, never of server configuration:
// an ATPG job's result is DEFINED as the merge of its fixed-width chunks,
// and Execute computes exactly that whether it runs the chunks inline,
// on a worker pool, or on remote peers. Changing this constant changes
// job semantics; bump the key schema version with it.
const atpgChunk = 256

// Shards decomposes a job into the independent shard specs whose merge
// (MergeShards) is the job's result. MutationTG and ATPG use their
// canonical decompositions — one round per operator class present in
// the population, fixed atpgChunk-wide fault ranges — and ignore n,
// because their shard results couple within a shard and the job's
// meaning must not depend on who executes it. FaultSim fault lanes are
// independent, so any split merges exactly: n picks the width (the
// caller's worker count). Jobs that cannot be split return nil.
func Shards(sp Spec, n int) ([]Spec, error) {
	pr, err := prepare(sp)
	if err != nil {
		return nil, err
	}
	return pr.shards(n), nil
}

func (pr *prepared) shards(n int) []Spec {
	sp := pr.spec
	switch sp.Kind {
	case MutationTG:
		if sp.Operator != "" {
			return nil
		}
		counts := mutation.CountByOperator(mutation.Generate(pr.c))
		var out []Spec
		for _, op := range mutation.AllOperators() {
			if counts[op] == 0 {
				continue
			}
			shard := sp
			shard.Operator = string(op)
			out = append(out, shard)
		}
		if len(out) <= 1 {
			return nil
		}
		return out
	case ATPG:
		lo, hi := sp.shardRange(len(pr.faults))
		if hi-lo <= atpgChunk {
			return nil
		}
		var out []Spec
		for at := lo; at < hi; at += atpgChunk {
			shard := sp
			shard.FaultLo = at
			shard.FaultHi = min(at+atpgChunk, hi)
			out = append(out, shard)
		}
		return out
	default:
		lo, hi := sp.shardRange(len(pr.faults))
		if n <= 1 || hi-lo < n {
			return nil
		}
		out := make([]Spec, 0, n)
		span := hi - lo
		for i := 0; i < n; i++ {
			shard := sp
			shard.FaultLo = lo + span*i/n
			shard.FaultHi = lo + span*(i+1)/n
			out = append(out, shard)
		}
		return out
	}
}
