package campaign

import (
	"math/rand"

	"repro/internal/atpg"
	"repro/internal/engine"
	"repro/internal/faultsim"
	"repro/internal/mutation"
	"repro/internal/netlist"
	"repro/internal/tpg"
)

// ExecConfig configures local job execution. The embedded engine.Options
// carries the execution knobs (Workers/LaneWords — forwarded to the
// engines, never part of the job key), the cancellation context (polled
// at window/target boundaries) and the progress hook. For FaultSim jobs
// the hook reports windows completed — the checkpoint grain — rather
// than forwarding the engines' inner pattern stream; MutationTG and ATPG
// jobs forward the engines' own per-target stream unchanged.
type ExecConfig struct {
	engine.Options
	// Checkpoints, when set, persists FaultSim window checkpoints under
	// the job key so a killed campaign resumes bit-identically; the
	// checkpoint is dropped when the job completes.
	Checkpoints *CheckpointStore
}

// engineOpts returns the options forwarded to an engine, with or
// without the caller's progress hook.
func (c *ExecConfig) engineOpts(forwardProgress bool) engine.Options {
	var o engine.Options
	if c != nil {
		o = c.Options
	}
	if !forwardProgress {
		o.Progress = nil
	}
	return o
}

func (c *ExecConfig) checkpoints() *CheckpointStore {
	if c == nil {
		return nil
	}
	return c.Checkpoints
}

// Execute runs one campaign job to completion and returns its report.
// Execution is deterministic per spec: every ExecConfig (and every
// machine) produces the same report, byte for byte under Encode — the
// invariant that makes the content-addressed cache and shard merging
// sound, pinned by the difftest campaign legs.
//
// Jobs with a canonical decomposition (MutationTG over several operator
// classes, ATPG ranges wider than one chunk) are executed AS that
// decomposition — shard by shard, merged — because their result is
// defined that way (see Shards); a server that fans the same shards out
// to a worker pool produces the same bytes. FaultSim jobs run whole:
// their lanes are independent, so any decomposition merges to the same
// profile anyway.
func Execute(sp Spec, cfg *ExecConfig) (*Report, error) {
	pr, err := prepare(sp)
	if err != nil {
		return nil, err
	}
	if sp.Kind != FaultSim {
		if shards := pr.shards(0); shards != nil {
			reports := make([]*Report, len(shards))
			for i, shard := range shards {
				if reports[i], err = Execute(shard, cfg); err != nil {
					return nil, err
				}
			}
			return MergeShards(sp, pr.key(), reports)
		}
	}
	switch sp.Kind {
	case FaultSim:
		return executeFaultSim(pr, cfg)
	case MutationTG:
		return executeTG(pr, cfg)
	default:
		return executeATPG(pr, cfg)
	}
}

// baseReport fills the identity fields every kind shares.
func baseReport(pr *prepared) *Report {
	return &Report{
		Kind:        pr.spec.Kind,
		Key:         pr.key(),
		Fingerprint: pr.fp,
		Circuit:     pr.spec.Circuit,
		Seed:        pr.spec.Seed,
	}
}

// stimulus derives the job's pseudo-random stimulus from its seed. Named
// circuits draw through the behavioral port list (the flow-compatible
// tpg generator); inline netlists draw one bit per PI. Both are pure
// functions of (circuit, horizon, seed), so an interrupted job re-derives
// the exact stimulus its checkpoint was taken under.
//
//repro:deterministic
func stimulus(pr *prepared) []faultsim.Pattern {
	if pr.c != nil {
		return tpg.ToPatterns(pr.c, tpg.RawRandomSequence(pr.c, pr.spec.Horizon, pr.spec.Seed))
	}
	return randomPatterns(pr.nl, pr.spec.Horizon, pr.spec.Seed)
}

//repro:deterministic
func randomPatterns(nl *netlist.Netlist, n int, seed int64) []faultsim.Pattern {
	rng := rand.New(rand.NewSource(seed))
	out := make([]faultsim.Pattern, n)
	for t := range out {
		p := make(faultsim.Pattern, len(nl.PIs))
		for i := range p {
			p[i] = uint8(rng.Intn(2))
		}
		out[t] = p
	}
	return out
}

// executeFaultSim applies the job's stimulus in Window-cycle appends to
// an incremental session over the job's fault shard, checkpointing at
// every window boundary. A fresh run seeds the subset session with
// RunOn; a resumed run restores the saved checkpoint (replaying the
// applied prefix over the frontier only) and continues with Append —
// bit-identical to a run that was never interrupted.
func executeFaultSim(pr *prepared, cfg *ExecConfig) (*Report, error) {
	sp := pr.spec
	key := pr.key()
	tests := stimulus(pr)
	lo, hi := sp.shardRange(len(pr.faults))
	var include []int
	if lo != 0 || hi != len(pr.faults) {
		include = make([]int, 0, hi-lo)
		for i := lo; i < hi; i++ {
			include = append(include, i)
		}
	}
	// The engines' pattern-level progress stream is not forwarded: job
	// progress is windows completed, the observable unit of a campaign.
	eng := cfg.engineOpts(false)
	sim, err := faultsim.Config{Options: eng}.New(pr.nl, pr.faults)
	if err != nil {
		return nil, err
	}
	win := sp.Window
	if win <= 0 || win > sp.Horizon {
		win = sp.Horizon
	}
	windows := (sp.Horizon + win - 1) / win
	applied := 0
	if st := cfg.checkpoints(); st != nil {
		if ck, err := st.Load(key); err == nil && ck != nil && ck.Applied > 0 && ck.Applied <= len(tests) {
			if err := sim.Restore(ck, tests[:ck.Applied]); err == nil {
				applied = ck.Applied
			} else {
				// A stale or mismatched checkpoint is discarded, not fatal:
				// the job simply starts over.
				st.Drop(key)
				sim.Reset()
			}
		}
	}
	for applied < len(tests) {
		if err := eng.Cancelled(); err != nil {
			return nil, err
		}
		next := applied + win
		if next > len(tests) {
			next = len(tests)
		}
		if applied == 0 {
			// First window: RunOn narrows the session to the fault shard
			// (nil include means the whole list); later Appends extend it.
			if _, err := sim.RunOn(tests[:next], include); err != nil {
				return nil, err
			}
		} else {
			if _, err := sim.Append(tests[applied:next]); err != nil {
				return nil, err
			}
		}
		applied = next
		if st := cfg.checkpoints(); st != nil && applied < len(tests) {
			if err := st.Save(key, sim.Checkpoint()); err != nil {
				return nil, err
			}
		}
		if cfg != nil {
			cfg.Report((applied+win-1)/win, windows)
		}
	}
	// Current returns a session-owned view; the report must outlive the
	// session, so detach it.
	res := sim.Current().Clone()
	rep := baseReport(pr)
	rep.Faults = hi - lo
	rep.Patterns = res.Patterns
	rep.FirstDetected = res.FirstDetected
	for _, d := range res.FirstDetected {
		if d >= 0 {
			rep.Detected++
		}
	}
	if st := cfg.checkpoints(); st != nil {
		st.Drop(key)
	}
	return rep, nil
}

// executeTG runs one mutation-TG round over the job's mutant population
// (one operator class when sharded).
func executeTG(pr *prepared, cfg *ExecConfig) (*Report, error) {
	sp := pr.spec
	var targets []*mutation.Mutant
	if sp.Operator != "" {
		op, err := mutation.ParseOperator(sp.Operator)
		if err != nil {
			return nil, err
		}
		targets = mutation.Generate(pr.c, op)
	} else {
		targets = mutation.Generate(pr.c)
	}
	res, err := tpg.MutationTests(pr.c, targets, &tpg.Options{
		Options: cfg.engineOpts(true),
		Seed:    sp.Seed,
		MaxLen:  sp.MaxLen,
	})
	if err != nil {
		return nil, err
	}
	rep := baseReport(pr)
	rep.Targets = len(targets)
	rep.Killed = res.KilledCount()
	rep.Rounds = res.Rounds
	rep.SeqLen = len(res.Seq)
	rep.SeqHash = hashPatterns("campaign/tg/seq", tpg.ToPatterns(pr.c, res.Seq))
	return rep, nil
}

// executeATPG runs deterministic test generation over the job's fault
// shard: PODEM for combinational circuits, time-frame expansion at
// Frames depth for sequential ones.
func executeATPG(pr *prepared, cfg *ExecConfig) (*Report, error) {
	sp := pr.spec
	lo, hi := sp.shardRange(len(pr.faults))
	sub := pr.faults[lo:hi]
	rep := baseReport(pr)
	if pr.nl.IsSequential() {
		r, err := atpg.GenerateSequential(pr.nl, sub, &atpg.SeqOptions{
			Frames:        sp.Frames,
			MaxBacktracks: sp.MaxBacktracks,
			FillSeed:      sp.Seed,
			Options:       cfg.engineOpts(true),
		})
		if err != nil {
			return nil, err
		}
		rep.Faults = r.Total
		rep.Detected = r.Detected
		rep.Redundant = r.Untestable
		rep.Aborted = r.Aborted
		rep.Backtracks = r.Backtracks
		rep.PodemCalls = r.PodemCalls
		rep.Vectors = len(r.Tests)
		rep.TestHash = hashTests("campaign/atpg/tests", r.Tests)
		return rep, nil
	}
	r, err := atpg.Generate(pr.nl, sub, &atpg.Options{
		MaxBacktracks: sp.MaxBacktracks,
		FillSeed:      sp.Seed,
		Options:       cfg.engineOpts(true),
	})
	if err != nil {
		return nil, err
	}
	rep.Faults = r.Total
	rep.Detected = r.Detected
	rep.Redundant = r.Redundant
	rep.Aborted = r.Aborted
	rep.Backtracks = r.Backtracks
	rep.PodemCalls = r.PodemCalls
	rep.Vectors = len(r.Vectors)
	rep.TestHash = hashPatterns("campaign/atpg/tests", r.Vectors)
	return rep, nil
}
