// Package repro is a from-scratch Go reproduction of "Mutation Sampling
// Technique for the Generation of Structural Test Data" (Scholivé,
// Beroulle, Robach, Flottes, Rouzeyre — DATE 2005).
//
// The library generates validation data for behavioral hardware
// descriptions by mutation testing, re-uses that data as a free initial
// test set for gate-level stuck-at faults, and — the paper's contribution
// — samples the mutant population *test-oriented*: each mutation
// operator's class is sampled in proportion to its measured stuck-at
// fault-coverage efficiency (NLFCE) instead of uniformly.
//
// See README.md for the package inventory, build/test/benchmark entry
// points and the two-engine simulation design, and bench_test.go for the
// harness that regenerates every table of the paper's evaluation.
package repro
