// Package repro is a from-scratch Go reproduction of "Mutation Sampling
// Technique for the Generation of Structural Test Data" (Scholivé,
// Beroulle, Robach, Flottes, Rouzeyre — DATE 2005).
//
// The library generates validation data for behavioral hardware
// descriptions by mutation testing, re-uses that data as a free initial
// test set for gate-level stuck-at faults, and — the paper's contribution
// — samples the mutant population *test-oriented*: each mutation
// operator's class is sampled in proportion to its measured stuck-at
// fault-coverage efficiency (NLFCE) instead of uniformly.
//
// Both simulation substrates (behavioral mutant scoring and gate-level
// fault simulation) run on compiled engines that execute over multi-word
// lane vectors (internal/lane: W×64 lanes per pass, W ∈ {1,4,8}), so one
// pass carries up to 512 fault machines or a 512-mutant lockstep batch.
// Every engine Config embeds the shared engine.Options surface (Workers,
// LaneWords, a progress hook and context cancellation); Workers:1 +
// LaneWords:1 is the pinned serial reference every configuration is
// differentially tested against (internal/difftest).
//
// The simulation surface is session-based: faultsim.Simulator.Append
// extends an applied sequence incrementally (bit-identical to a one-shot
// Run of the concatenation, simulating only the live fault frontier over
// the new cycles), AppendTest applies independent power-on tests against
// the same shrinking frontier (the ATPG drop-sim discipline), and
// tpg.Session compiles a mutant population once and runs arbitrarily
// many generation campaigns over its subsets, driving the incremental
// fault simulator round by round (AttachFaultSim). See the "Sessions and
// incremental simulation" section of README.md.
//
// Sessions own their scratch: a warm round reuses buffers grown on the
// session (internal/engine's Grow/GrowZero/Pool primitives), so
// steady-state rounds allocate nothing. One-shot results (Run, RunOn,
// Generate, MutationTests) are caller-owned; incremental results
// (Append, AppendTest) are session-owned views overwritten by the next
// call — Clone them to retain. The contract is stated in internal/engine
// and the "Memory discipline" sections of README.md and ARCHITECTURE.md.
//
// These contracts are machine-checked: internal/analysis implements four
// //repro: annotation-driven analyzers (sessionview, hotalloc,
// determinism, ctxpoll) and cmd/reprolint packages them as a vettool —
// "make lint" runs them over the whole module; see the "Contracts as
// lint" sections of README.md and ARCHITECTURE.md.
//
// Deterministic ATPG (internal/atpg, PODEM with time-frame expansion)
// runs on the same compiled machinery: netlist.TriExpand builds a
// dual-rail twin that encodes three-valued (0/1/X) logic as plain
// two-valued gates, so one compiled Machine pass evaluates PODEM's good
// and faulty planes in two lanes, and atpg.Model compiles the (possibly
// unrolled) circuit once per depth for any number of campaigns. Fault
// dropping between PODEM targets is an incremental fault-sim session
// with batch-level retirement. Workers:1 keeps the legacy interpreter +
// one-shot drop-sim as the differential reference; both engines emit
// identical test sets (internal/difftest's ATPG parity fuzz).
//
// See README.md for the package inventory, build/test/benchmark entry
// points, the two-engine simulation design and the lane-width guidance;
// ARCHITECTURE.md for the end-to-end map of the compiled-engine stack;
// and bench_test.go for the harness that regenerates every table of the
// paper's evaluation.
package repro
