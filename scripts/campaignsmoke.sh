#!/bin/sh
# Campaign service integration smoke: build cmd/reprod under -race,
# start it, submit the same job set twice through the mutsample campaign
# client, and assert the contract the service exists for —
#
#   1. every report of the second pass is byte-identical to the first
#      pass's (content addressing: equal key, equal bytes), and
#   2. the second pass is served from the content cache (the server's
#      /v1/stats hit counter grows by the size of the job set).
#
# Usage: sh scripts/campaignsmoke.sh [port]
set -eu

PORT="${1:-19190}"
BASE="http://127.0.0.1:$PORT"
WORK="$(mktemp -d)"
trap 'kill "$SERVER_PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT INT TERM

echo "campaignsmoke: building (race-instrumented server)"
go build -race -o "$WORK/reprod" ./cmd/reprod
go build -o "$WORK/mutsample" ./cmd/mutsample

"$WORK/reprod" -listen "127.0.0.1:$PORT" -parallel 2 \
    -cache-dir "$WORK/cache" -ckpt-dir "$WORK/ckpt" &
SERVER_PID=$!

# Wait for the server to come up.
tries=0
until "$WORK/mutsample" campaign -server "$BASE" -kind faultsim \
        -horizon 16 c17 >/dev/null 2>&1; do
    tries=$((tries + 1))
    if [ "$tries" -ge 50 ]; then
        echo "campaignsmoke: server did not come up on $BASE" >&2
        exit 1
    fi
    sleep 0.2
done

submit_all() {
    pass="$1"
    "$WORK/mutsample" campaign -server "$BASE" -kind faultsim \
        -seed 3 -horizon 256 -window 64 b01 >"$WORK/$pass.faultsim.json"
    "$WORK/mutsample" campaign -server "$BASE" -kind tg \
        -seed 5 -maxlen 64 b02 >"$WORK/$pass.tg.json"
    "$WORK/mutsample" campaign -server "$BASE" -kind atpg \
        -seed 1 c432 >"$WORK/$pass.atpg.json"
}

hits() {
    curl -sf "$BASE/v1/stats" | sed 's/.*"hits":\([0-9]*\).*/\1/'
}

echo "campaignsmoke: first pass (cold cache)"
submit_all first
HITS_AFTER_FIRST="$(hits)"

echo "campaignsmoke: second pass (must be served from cache)"
submit_all second
HITS_AFTER_SECOND="$(hits)"

status=0
for kind in faultsim tg atpg; do
    if cmp -s "$WORK/first.$kind.json" "$WORK/second.$kind.json"; then
        echo "campaignsmoke: $kind reports byte-identical"
    else
        echo "campaignsmoke: FAIL: $kind reports differ between passes" >&2
        diff "$WORK/first.$kind.json" "$WORK/second.$kind.json" >&2 || true
        status=1
    fi
done

GAINED=$((HITS_AFTER_SECOND - HITS_AFTER_FIRST))
if [ "$GAINED" -lt 3 ]; then
    echo "campaignsmoke: FAIL: second pass gained $GAINED cache hits, want >= 3" >&2
    status=1
else
    echo "campaignsmoke: second pass served from cache ($GAINED hits)"
fi

exit "$status"
