#!/bin/sh
# Run the benchmark suite with -benchmem and record a machine-readable
# summary, so the perf trajectory of successive PRs is comparable.
#
# Usage: scripts/bench.sh [output.json] [extra go test args...]
#
# The default output name is BENCH_<git-sha>.json (BENCH_worktree.json
# when the tree is dirty). The raw `go test -bench` text is kept next to
# it as a .txt with the same stem, and the run's allocation profile as a
# .mem.pprof — `go tool pprof -sample_index=alloc_objects` on it answers
# "where do the allocs/op come from" without a rerun.
set -eu

cd "$(dirname "$0")/.."

out="${1:-}"
if [ $# -gt 0 ]; then shift; fi
if [ -z "$out" ]; then
    sha="$(git rev-parse --short HEAD 2>/dev/null || echo nogit)"
    if ! git diff --quiet 2>/dev/null; then
        sha="worktree"
    fi
    out="BENCH_${sha}.json"
fi
txt="${out%.json}.txt"
prof="${out%.json}.mem.pprof"

echo "running benchmarks -> ${txt}" >&2
go test -run='^$' -bench=. -benchmem -benchtime="${BENCHTIME:-1x}" \
    -memprofile "$prof" "$@" . | tee "$txt" >&2

# Convert `BenchmarkName  N  T ns/op  B B/op  A allocs/op  [M metric]`
# lines into a JSON array. awk keeps this dependency-free.
awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
BEGIN { print "[" }
/^Benchmark/ {
    name = $1; iters = $2
    ns = ""; bytes = ""; allocs = ""; extra = ""
    for (i = 3; i < NF; i++) {
        if ($(i+1) == "ns/op")     ns = $i
        if ($(i+1) == "B/op")      bytes = $i
        if ($(i+1) == "allocs/op") allocs = $i
        if ($(i+1) ~ /\/s$/)       extra = "\"" $(i+1) "\": " $i ", "
    }
    if (ns == "") next
    if (n++) printf ",\n"
    printf "  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, ", name, iters, ns
    printf "%s", extra
    if (bytes != "")  printf "\"bytes_per_op\": %s, ", bytes
    if (allocs != "") printf "\"allocs_per_op\": %s, ", allocs
    printf "\"date\": \"%s\"}", date
}
END { print "\n]" }
' "$txt" > "$out"

echo "wrote ${out} ($(grep -c '"name"' "$out") benchmarks) and ${prof}" >&2
