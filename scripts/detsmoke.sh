#!/bin/sh
# Determinism smoke: run the seq top-off flow repeatedly and byte-compare
# the reports. This is the CLI-level guard for the class of bug behind
# the PR-8 flake — per-process randomization (Go map iteration order)
# leaking into gate numbering and from there into search order. Every
# run is a fresh process, so a fresh map seed; one-shot parity checks
# and same-process replays cannot see what this loop sees.
#
# Usage: scripts/detsmoke.sh [runs] [circuit]
#
# Exits nonzero on the first run whose report differs from run 1's.
set -eu

cd "$(dirname "$0")/.."

runs="${1:-8}"
circuit="${2:-b01}"

bin="$(mktemp -d)/mutsample"
trap 'rm -rf "$(dirname "$bin")"' EXIT
go build -o "$bin" ./cmd/mutsample

for workers in 0 1; do
    ref="$(dirname "$bin")/ref_w${workers}.txt"
    i=1
    while [ "$i" -le "$runs" ]; do
        out="$(dirname "$bin")/run.txt"
        "$bin" seqtopoff -repeats 1 -equiv 128 -horizon 256 -workers "$workers" "$circuit" > "$out"
        if [ "$i" -eq 1 ]; then
            mv "$out" "$ref"
        elif ! cmp -s "$ref" "$out"; then
            echo "detsmoke: $circuit workers=$workers run $i differs from run 1:" >&2
            diff "$ref" "$out" >&2 || true
            exit 1
        fi
        i=$((i + 1))
    done
    echo "detsmoke: $circuit workers=$workers bit-stable over $runs runs" >&2
done
