package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

const baseJSON = `[
  {"name": "BenchmarkA", "iterations": 10, "ns_per_op": 1000, "date": "2026-01-01T00:00:00Z"},
  {"name": "BenchmarkB", "iterations": 10, "ns_per_op": 2000, "faultcycles/s": 50000000, "bytes_per_op": 64, "allocs_per_op": 100, "date": "2026-01-01T00:00:00Z"},
  {"name": "BenchmarkGone", "iterations": 1, "ns_per_op": 5, "date": "2026-01-01T00:00:00Z"}
]`

const curJSON = `[
  {"name": "BenchmarkA-4", "iterations": 10, "ns_per_op": 1200, "date": "2026-02-01T00:00:00Z"},
  {"name": "BenchmarkB", "iterations": 10, "ns_per_op": 1900, "faultcycles/s": 80000000, "bytes_per_op": 64, "allocs_per_op": 30, "date": "2026-02-01T00:00:00Z"},
  {"name": "BenchmarkNew", "iterations": 1, "ns_per_op": 7, "date": "2026-02-01T00:00:00Z"}
]`

func parseBoth(t *testing.T) (base, cur map[string]entry) {
	t.Helper()
	base, err := parseSummary([]byte(baseJSON))
	if err != nil {
		t.Fatal(err)
	}
	cur, err = parseSummary([]byte(curJSON))
	if err != nil {
		t.Fatal(err)
	}
	return base, cur
}

func TestParseSummary(t *testing.T) {
	base, cur := parseBoth(t)
	if len(base) != 3 {
		t.Fatalf("parsed %d entries, want 3", len(base))
	}
	// Multi-core summaries carry a -GOMAXPROCS suffix; names normalize so
	// they compare against single-core baselines.
	if _, ok := cur["BenchmarkA"]; !ok {
		t.Error("BenchmarkA-4 not normalized to BenchmarkA")
	}
	b := base["BenchmarkB"]
	if b.NsPerOp != 2000 {
		t.Errorf("BenchmarkB ns/op = %v", b.NsPerOp)
	}
	if b.Rates["faultcycles/s"] != 50000000 {
		t.Errorf("BenchmarkB rate = %v", b.Rates["faultcycles/s"])
	}
	if b.BytesPerOp != 64 || b.AllocsPerOp != 100 {
		t.Errorf("BenchmarkB B/op = %v, allocs/op = %v, want 64, 100", b.BytesPerOp, b.AllocsPerOp)
	}
	// bytes_per_op must not be mistaken for a rate.
	if _, ok := b.Rates["bytes_per_op"]; ok {
		t.Error("bytes_per_op misparsed as a rate")
	}
}

func TestParseSummaryRejectsGarbage(t *testing.T) {
	if _, err := parseSummary([]byte(`{"not": "an array"}`)); err == nil {
		t.Error("non-array accepted")
	}
	if _, err := parseSummary([]byte(`[{"iterations": 3}]`)); err == nil {
		t.Error("nameless row accepted")
	}
}

func TestCompareFlagsRegressionsAndImprovements(t *testing.T) {
	base, cur := parseBoth(t)
	deltas := compare(base, cur, 0.10)
	// Expected: A ns/op +20% (regression), B allocs/op -70% and
	// faultcycles/s +60% (improvements). B ns/op -5% is under threshold,
	// B B/op is unchanged.
	if len(deltas) != 3 {
		t.Fatalf("got %d deltas: %v", len(deltas), deltas)
	}
	// Regressions sort first, then bench name, then metric.
	if d := deltas[0]; !d.Worse || d.Bench != "BenchmarkA" || d.Metric != "ns/op" {
		t.Errorf("first delta = %+v, want BenchmarkA ns/op regression", d)
	}
	if d := deltas[1]; d.Worse || d.Bench != "BenchmarkB" || d.Metric != "allocs/op" {
		t.Errorf("second delta = %+v, want BenchmarkB allocs/op improvement", d)
	}
	if d := deltas[2]; d.Worse || d.Bench != "BenchmarkB" || d.Metric != "faultcycles/s" {
		t.Errorf("third delta = %+v, want BenchmarkB rate improvement", d)
	}
}

func TestCompareAllocDirectionality(t *testing.T) {
	// Allocation growth is a regression (lower is better), and rows
	// without allocation data (older summaries) are skipped, not treated
	// as zero baselines.
	base := map[string]entry{
		"Bench":    {NsPerOp: 1000, BytesPerOp: 1 << 20, AllocsPerOp: 100},
		"NoAllocs": {NsPerOp: 500},
	}
	cur := map[string]entry{
		"Bench":    {NsPerOp: 1000, BytesPerOp: 2 << 20, AllocsPerOp: 1000},
		"NoAllocs": {NsPerOp: 500, BytesPerOp: 64, AllocsPerOp: 2},
	}
	deltas := compare(base, cur, 0.10)
	if len(deltas) != 2 {
		t.Fatalf("got %d deltas: %v", len(deltas), deltas)
	}
	for _, d := range deltas {
		if !d.Worse || d.Bench != "Bench" {
			t.Errorf("delta = %+v, want a Bench allocation regression", d)
		}
	}
}

func TestCompareDirectionality(t *testing.T) {
	base := map[string]entry{
		"Bench": {NsPerOp: 1000, Rates: map[string]float64{"x/s": 1000}},
	}
	// A rate DROP is a regression even as ns/op holds.
	cur := map[string]entry{
		"Bench": {NsPerOp: 1000, Rates: map[string]float64{"x/s": 500}},
	}
	deltas := compare(base, cur, 0.10)
	if len(deltas) != 1 || !deltas[0].Worse {
		t.Fatalf("rate drop not flagged as regression: %v", deltas)
	}
	// Exactly at the threshold: not flagged (strict inequality). The
	// values are binary-exact so the ratio is too.
	base = map[string]entry{"Bench": {NsPerOp: 1024}}
	cur = map[string]entry{"Bench": {NsPerOp: 1152}}
	if deltas := compare(base, cur, 0.125); len(deltas) != 0 {
		t.Fatalf("exact-threshold change flagged: %v", deltas)
	}
}

func TestMissing(t *testing.T) {
	base, cur := parseBoth(t)
	gone, added := missing(base, cur)
	if len(gone) != 1 || gone[0] != "BenchmarkGone" {
		t.Errorf("gone = %v", gone)
	}
	if len(added) != 1 || added[0] != "BenchmarkNew" {
		t.Errorf("added = %v", added)
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "base.json")
	curPath := filepath.Join(dir, "cur.json")
	if err := os.WriteFile(basePath, []byte(baseJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(curPath, []byte(curJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	regressions, err := run(basePath, curPath, 0.10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if regressions != 1 {
		t.Errorf("regressions = %d, want 1", regressions)
	}
	// A generous threshold reports a clean trajectory.
	regressions, err = run(basePath, curPath, 0.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if regressions != 0 {
		t.Errorf("regressions at 50%% threshold = %d, want 0", regressions)
	}
	// -only restricted to BenchmarkB drops BenchmarkA's regression from
	// the comparison entirely.
	regressions, err = run(basePath, curPath, 0.10, regexp.MustCompile(`^BenchmarkB$`))
	if err != nil {
		t.Fatal(err)
	}
	if regressions != 0 {
		t.Errorf("regressions under -only BenchmarkB = %d, want 0", regressions)
	}
	if _, err := run(filepath.Join(dir, "absent.json"), curPath, 0.1, nil); err == nil {
		t.Error("missing baseline accepted")
	}
}

func TestFilterBenches(t *testing.T) {
	base, _ := parseBoth(t)
	got := filterBenches(base, regexp.MustCompile(`^Benchmark[AB]$`))
	if len(got) != 2 {
		t.Fatalf("filtered to %d entries, want 2: %v", len(got), got)
	}
	if same := filterBenches(base, nil); len(same) != len(base) {
		t.Errorf("nil filter dropped entries: %d vs %d", len(same), len(base))
	}
}

func TestGateExit(t *testing.T) {
	cases := []struct {
		strict      bool
		regressions int
		want        int
	}{
		{false, 0, 0},
		{false, 3, 0}, // report mode never gates
		{true, 0, 0},
		{true, 1, 1},
	}
	for _, c := range cases {
		if got := gateExit(c.strict, c.regressions); got != c.want {
			t.Errorf("gateExit(strict=%v, regressions=%d) = %d, want %d", c.strict, c.regressions, got, c.want)
		}
	}
}

// TestMainExitStatus runs the real main (re-execing the test binary)
// against a summary pair with one regression: report mode must exit 0,
// -strict must exit 1.
func TestMainExitStatus(t *testing.T) {
	if os.Getenv("BENCHCMP_TEST_MAIN") == "1" {
		os.Args = strings.Split(os.Getenv("BENCHCMP_TEST_ARGS"), "\x1f")
		main()
		os.Exit(0)
	}
	dir := t.TempDir()
	basePath := filepath.Join(dir, "base.json")
	curPath := filepath.Join(dir, "cur.json")
	if err := os.WriteFile(basePath, []byte(baseJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(curPath, []byte(curJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	exitOf := func(args ...string) int {
		cmd := exec.Command(os.Args[0], "-test.run=TestMainExitStatus$")
		cmd.Env = append(os.Environ(),
			"BENCHCMP_TEST_MAIN=1",
			"BENCHCMP_TEST_ARGS=benchcmp\x1f"+strings.Join(args, "\x1f"))
		err := cmd.Run()
		if err == nil {
			return 0
		}
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		t.Fatalf("re-exec failed: %v", err)
		return -1
	}
	if code := exitOf(basePath, curPath); code != 0 {
		t.Errorf("report mode exited %d, want 0", code)
	}
	if code := exitOf("-strict", basePath, curPath); code != 1 {
		t.Errorf("-strict with a regression exited %d, want 1", code)
	}
	if code := exitOf("-strict", "-threshold", "0.5", basePath, curPath); code != 0 {
		t.Errorf("-strict with no regression exited %d, want 0", code)
	}
}
