// Command benchcmp diffs two BENCH_<sha>.json summaries (the files
// scripts/bench.sh records) and flags regressions, so the perf
// trajectory of successive PRs is machine-checkable instead of
// eyeballed.
//
// Usage:
//
//	go run ./scripts/benchcmp [-threshold 0.10] [-only RE] baseline.json current.json
//
// A benchmark regresses when its ns/op, B/op or allocs/op grows by more
// than the threshold, or any of its throughput metrics (the "…/s" extras
// like faultcycles/s) shrinks by more than the threshold. By default the
// comparison is a report: regressions are printed but the exit status
// stays 0, matching how CI runs it (benchtime=1x smoke numbers are noisy
// for ns/op; the report is the artifact, not a gate). With -strict the
// exit status is 1 when anything regressed, for local pre-merge checks
// and any future gating job. The allocation metrics are the steadiest of
// the set — B/op and allocs/op are deterministic per iteration, so a
// flagged allocation regression at 1x is a real one.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strings"
)

// entry is one benchmark row of a BENCH json summary. Throughput extras
// have dynamic keys, so rows decode into a raw map first.
type entry struct {
	NsPerOp     float64
	BytesPerOp  float64
	AllocsPerOp float64
	// Rates maps metric name ("faultcycles/s", …) to its value.
	Rates map[string]float64
}

// delta is one flagged difference between two summaries.
type delta struct {
	Bench  string
	Metric string  // "ns/op" or a rate name
	Old    float64 // baseline value
	New    float64 // current value
	Change float64 // signed fraction: +0.25 = 25% more of the metric
	Worse  bool
}

func (d delta) String() string {
	dir := "improved"
	if d.Worse {
		dir = "REGRESSED"
	}
	return fmt.Sprintf("%-44s %-16s %14.6g -> %-14.6g %+6.1f%%  %s",
		d.Bench, d.Metric, d.Old, d.New, 100*d.Change, dir)
}

// gomaxprocsSuffix matches the "-N" go test appends to benchmark names
// when GOMAXPROCS != 1. Summaries recorded on machines with different
// core counts must still compare by benchmark, so names are normalized
// with the suffix stripped.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// parseSummary reads a bench.sh json array into per-benchmark entries.
func parseSummary(data []byte) (map[string]entry, error) {
	var rows []map[string]any
	if err := json.Unmarshal(data, &rows); err != nil {
		return nil, err
	}
	out := make(map[string]entry, len(rows))
	for i, row := range rows {
		name, _ := row["name"].(string)
		if name == "" {
			return nil, fmt.Errorf("row %d: missing benchmark name", i)
		}
		name = gomaxprocsSuffix.ReplaceAllString(name, "")
		e := entry{Rates: make(map[string]float64)}
		for k, v := range row {
			f, isNum := v.(float64)
			if !isNum {
				continue
			}
			switch {
			case k == "ns_per_op":
				e.NsPerOp = f
			case k == "bytes_per_op":
				e.BytesPerOp = f
			case k == "allocs_per_op":
				e.AllocsPerOp = f
			case strings.HasSuffix(k, "/s"):
				e.Rates[k] = f
			}
		}
		out[name] = e
	}
	return out, nil
}

// compare flags every metric whose change exceeds the threshold, in both
// directions, for benchmarks present in both summaries. Higher ns/op and
// lower rates are regressions. The result is sorted: regressions first,
// then by benchmark name.
func compare(base, cur map[string]entry, threshold float64) []delta {
	var out []delta
	flag := func(bench, metric string, old, new float64, moreIsBetter bool) {
		if old <= 0 || new <= 0 {
			return
		}
		change := new/old - 1
		if change >= -threshold && change <= threshold {
			return // flag only changes strictly beyond the threshold
		}
		worse := change > 0
		if moreIsBetter {
			worse = change < 0
		}
		out = append(out, delta{Bench: bench, Metric: metric, Old: old, New: new, Change: change, Worse: worse})
	}
	for name, b := range base {
		c, ok := cur[name]
		if !ok {
			continue
		}
		flag(name, "ns/op", b.NsPerOp, c.NsPerOp, false)
		flag(name, "B/op", b.BytesPerOp, c.BytesPerOp, false)
		flag(name, "allocs/op", b.AllocsPerOp, c.AllocsPerOp, false)
		for rate, old := range b.Rates {
			if now, ok := c.Rates[rate]; ok {
				flag(name, rate, old, now, true)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Worse != out[j].Worse {
			return out[i].Worse
		}
		if out[i].Bench != out[j].Bench {
			return out[i].Bench < out[j].Bench
		}
		return out[i].Metric < out[j].Metric
	})
	return out
}

// missing lists benchmarks present in exactly one summary (renames and
// deletions are trajectory events worth seeing, not errors).
func missing(base, cur map[string]entry) (gone, added []string) {
	for name := range base {
		if _, ok := cur[name]; !ok {
			gone = append(gone, name)
		}
	}
	for name := range cur {
		if _, ok := base[name]; !ok {
			added = append(added, name)
		}
	}
	sort.Strings(gone)
	sort.Strings(added)
	return gone, added
}

// filterBenches drops every benchmark whose (normalized) name does not
// match only. A nil regexp keeps everything.
func filterBenches(m map[string]entry, only *regexp.Regexp) map[string]entry {
	if only == nil {
		return m
	}
	out := make(map[string]entry, len(m))
	for name, e := range m {
		if only.MatchString(name) {
			out[name] = e
		}
	}
	return out
}

func run(baselinePath, currentPath string, threshold float64, only *regexp.Regexp) (regressions int, err error) {
	baseData, err := os.ReadFile(baselinePath)
	if err != nil {
		return 0, err
	}
	curData, err := os.ReadFile(currentPath)
	if err != nil {
		return 0, err
	}
	base, err := parseSummary(baseData)
	if err != nil {
		return 0, fmt.Errorf("%s: %w", baselinePath, err)
	}
	cur, err := parseSummary(curData)
	if err != nil {
		return 0, fmt.Errorf("%s: %w", currentPath, err)
	}
	base = filterBenches(base, only)
	cur = filterBenches(cur, only)
	deltas := compare(base, cur, threshold)
	for _, d := range deltas {
		fmt.Println(d)
		if d.Worse {
			regressions++
		}
	}
	gone, added := missing(base, cur)
	for _, name := range gone {
		fmt.Printf("%-44s only in baseline\n", name)
	}
	for _, name := range added {
		fmt.Printf("%-44s new benchmark\n", name)
	}
	fmt.Printf("benchcmp: %d benchmarks compared, %d regressions, %d improvements (threshold %.0f%%)\n",
		len(intersect(base, cur)), regressions, len(deltas)-regressions, 100*threshold)
	return regressions, nil
}

func intersect(base, cur map[string]entry) []string {
	var out []string
	for name := range base {
		if _, ok := cur[name]; ok {
			out = append(out, name)
		}
	}
	return out
}

func main() {
	threshold := flag.Float64("threshold", 0.10, "relative change that counts as a regression")
	strict := flag.Bool("strict", false, "exit nonzero when any metric regressed beyond the threshold")
	onlyPat := flag.String("only", "", "compare only benchmarks whose name matches this regexp")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchcmp [-threshold F] [-strict] [-only RE] baseline.json current.json")
		os.Exit(2)
	}
	var only *regexp.Regexp
	if *onlyPat != "" {
		var err error
		if only, err = regexp.Compile(*onlyPat); err != nil {
			fmt.Fprintf(os.Stderr, "benchcmp: -only: %v\n", err)
			os.Exit(2)
		}
	}
	regressions, err := run(flag.Arg(0), flag.Arg(1), *threshold, only)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcmp: %v\n", err)
		os.Exit(2)
	}
	if code := gateExit(*strict, regressions); code != 0 {
		os.Exit(code)
	}
}

// gateExit maps a completed comparison to the process exit status: 0
// always in report mode, 1 under -strict when anything regressed.
func gateExit(strict bool, regressions int) int {
	if strict && regressions > 0 {
		return 1
	}
	return 0
}
